(* Standalone fuzzing campaign runner (the `wolfc fuzz` subcommand wraps the
   same driver; this executable exists so a long campaign can run without the
   CLI's dependency footprint, e.g. under rr or a watchdog). *)

let () =
  let seed = ref 0 in
  let count = ref 200 in
  let max_size = ref 60 in
  let backends = ref "threaded,wvm" in
  let corpus = ref "" in
  let no_strings = ref false in
  let show = ref false in
  let quiet = ref false in
  let spec =
    [ ("--seed", Arg.Set_int seed, "N  campaign seed (default 0)");
      ("--count", Arg.Set_int count, "N  programs to generate (default 200)");
      ("--max-size", Arg.Set_int max_size, "N  node budget per program (default 60)");
      ("--backends", Arg.Set_string backends,
       "B,B  threaded,jit,wvm,c (default threaded,wvm)");
      ("--corpus", Arg.Set_string corpus, "DIR  write shrunk failures here");
      ("--no-strings", Arg.Set no_strings, "  disable string generation");
      ("--show", Arg.Set show, "  print the generated programs instead of fuzzing");
      ("--quiet", Arg.Set quiet, "  suppress progress output") ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz [options]";
  let backends =
    match Wolf_fuzz.Oracle.backends_of_string !backends with
    | Ok [] -> prerr_endline "no backends selected"; exit 2
    | Ok bs -> bs
    | Error e -> prerr_endline e; exit 2
  in
  if !show then begin
    let cfg =
      { Wolf_fuzz.Driver.default_config with
        Wolf_fuzz.Driver.seed = !seed; max_size = !max_size;
        strings = not !no_strings }
    in
    for i = 0 to !count - 1 do
      let case = Wolf_fuzz.Driver.case_for cfg i in
      Printf.printf "(* program %d, size %d, args: {%s} *)\n%s\n\n" i
        (Wolf_fuzz.Ast.size case.Wolf_fuzz.Ast.fn)
        (String.concat ", "
           (List.map Wolf_fuzz.Ast.arg_source case.Wolf_fuzz.Ast.args))
        (Wolf_fuzz.Ast.to_source case.Wolf_fuzz.Ast.fn)
    done;
    exit 0
  end;
  let cfg =
    { Wolf_fuzz.Driver.default_config with
      Wolf_fuzz.Driver.seed = !seed;
      count = !count;
      max_size = !max_size;
      strings = not !no_strings;
      backends;
      corpus_dir = (if !corpus = "" then None else Some !corpus);
      log = (if !quiet then ignore else prerr_endline) }
  in
  let report = Wolf_fuzz.Driver.run cfg in
  Printf.printf "fuzz: %d programs, %d disagreement(s)\n"
    report.Wolf_fuzz.Driver.generated report.Wolf_fuzz.Driver.disagreements;
  List.iter
    (fun (i, case, fs) ->
       Printf.printf "\n== program %d (shrunk to %d nodes) ==\n%s\n" i
         (Wolf_fuzz.Ast.size case.Wolf_fuzz.Ast.fn)
         (Wolf_fuzz.Ast.to_source case.Wolf_fuzz.Ast.fn);
       List.iter
         (fun f ->
            Printf.printf "  %s:\n    expected %s\n    got      %s\n"
              f.Wolf_fuzz.Oracle.fwhere f.Wolf_fuzz.Oracle.fexpected
              f.Wolf_fuzz.Oracle.fgot)
         fs)
    report.Wolf_fuzz.Driver.failures;
  exit (if report.Wolf_fuzz.Driver.disagreements = 0 then 0 else 1)
