(** The [wolfd] daemon: a Unix-domain-socket service that compiles and
    evaluates Wolfram Language programs on the {!Wolf_parallel.Executor}
    domain pool.

    Every connection is a {e session} with its own kernel value store
    ({!Wolf_kernel.Values.state}), so clients cannot observe each other's
    [Set]s; the compile cache is the one deliberately shared piece — hits
    and in-flight dedup work across all sessions.  Admission control is a
    bounded queue: when it is full the daemon answers [overloaded]
    immediately instead of building an invisible backlog.  Requests may
    carry a deadline; a cancel frame (or a client disconnect) aborts the
    targeted evaluation via the cross-domain abort flag — only ever aimed
    at the request currently holding the kernel lock, so the one global
    flag cannot hit an innocent evaluation. *)

type config = {
  socket_path : string;
  jobs : int;              (** executor worker domains *)
  queue_capacity : int;    (** bounded admission queue; beyond it: overloaded *)
  max_frame : int;         (** per-frame byte limit *)
  log : string -> unit;
  tier : bool;
  (** Tiered execution (off by default): an eval of
      [Function[…][literal args]] routes through a per-session tier
      controller — interpreted first, promoted to a background -O2 compile
      when hot.  Off, replies are byte-identical to the plain kernel path
      (the fuzzer's serve oracle relies on this default). *)
  tier_threshold : int;    (** heat before a background -O2 promotion *)
  disk_cache_dir : string option;
  (** When set, attach {!Wolf_compiler.Disk_cache} at this directory so
      compiles persist across daemon restarts and are shared (via flock)
      with concurrent wolfd processes on the same directory. *)
  parallel_loops : bool;
  (** Compile requests recognise data-parallel counted loops and run them
      chunked on the domain pool ({!Wolf_compiler.Opt_parloop}). *)
  flight_dir : string option;
  (** When set, the {!Wolf_obs.Flight} recorder dumps its rings here
      whenever a request ends cancelled / deadline-exceeded / overloaded
      or breaches [flight_threshold_ms]. *)
  flight_threshold_ms : float;
  (** Slow-request dump trigger in milliseconds; [<= 0] (the default)
      keeps only the outcome-based triggers. *)
}

val default_config : ?socket_path:string -> unit -> config
(** [/tmp/wolfd.sock], 2 worker domains, queue of 64, 4 MiB frames,
    silent log, tiering off (threshold 12), no disk cache, no flight
    directory. *)

type t

val start : config -> t
(** Bind, listen, spawn the accept loop, the deadline monitor, and the
    worker domains; (re-)register the ["serve"] metrics source.  An existing
    socket file at the path is replaced. *)

val wait : t -> unit
(** Block until a client sends [shutdown] (or {!stop} is called). *)

val stop : t -> unit
(** Stop admitting work, let claimed jobs finish and reply, shut down the
    executor, hang up every session, join all threads, remove the socket
    file.  Idempotent; safe after {!wait}. *)

val session_count : t -> int
val executor_stats : t -> Wolf_parallel.Executor.stats
