(** Client library for the [wolfd] daemon ({!Server}, {!Protocol}).

    Not thread-safe: use one client per thread.  Requests are numbered by
    the client; {!wait} buffers responses arriving out of order, so several
    requests may be in flight on one connection (that is how cancel works). *)

type t

val connect : ?max_frame:int -> string -> t
(** Dial the Unix-domain socket at the path. *)

val close : t -> unit

(** {2 Request/response} *)

val send : t -> Protocol.request -> int
(** Fire a request, return its id. *)

val wait : t -> int -> Protocol.response
(** Block until the response with that id arrives (other responses are
    buffered).  Raises {!Protocol.Closed} if the daemon hangs up first. *)

val rpc : t -> Protocol.request -> Protocol.response
(** [send] then [wait]. *)

(** {2 Typed conveniences} *)

val eval : ?deadline_ms:int -> t -> string -> Protocol.response
val compile : ?target:string -> ?opt:int -> t -> string -> Protocol.response
val cancel : t -> target:int -> Protocol.response
val stats : t -> Protocol.response
val metrics : ?format:[ `Json | `Prometheus ] -> t -> Protocol.response
val dump_flight : t -> Protocol.response
val shutdown : t -> Protocol.response

val eval_string :
  ?deadline_ms:int -> t -> string -> (string, string * string) result
(** Evaluation collapsed to a printable outcome: [Ok printed_result] or
    [Error (kind_name, message)]. *)

(** {2 Raw frame access (protocol tests)} *)

val send_raw : t -> string -> unit
(** Write an arbitrary payload as one frame. *)

val recv_any : t -> Protocol.response
(** Read whatever response comes next.  Raises {!Protocol.Closed} on EOF. *)
