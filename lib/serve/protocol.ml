(* Wire protocol of the wolfd daemon (DESIGN.md "Service layer").

   Frames are a 4-byte big-endian payload length followed by that many
   bytes of JSON — one request or response object per frame.  The length
   prefix makes framing trivial to validate: a declared length beyond the
   negotiated limit is rejected before a single payload byte is read, and a
   payload that is not a JSON object of the expected shape is a [Bad_frame]
   the daemon answers without dropping the connection (the stream is still
   in sync; only a lying length prefix forces a close).

   JSON is emitted by string concatenation like every other emitter in the
   tree and parsed with the same [Wolf_obs.Json_min] the smoke checks use,
   so client and server agree with the observability pillar on what "JSON"
   means. *)

module J = Wolf_obs.Json_min

let default_max_frame = 4 * 1024 * 1024

(* ---- frames ----------------------------------------------------------- *)

exception Closed

let write_frame oc payload =
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  output_bytes oc hdr;
  output_string oc payload;
  flush oc

let read_frame ~max_frame ic =
  match really_input_string ic 4 with
  | exception End_of_file -> Error `Eof
  | exception Sys_error _ -> Error `Eof
  | hdr ->
    let b i = Char.code hdr.[i] in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame then Error (`Oversize n)
    else
      (match really_input_string ic n with
       | payload -> Ok payload
       | exception End_of_file -> Error `Eof
       | exception Sys_error _ -> Error `Eof)

(* ---- requests --------------------------------------------------------- *)

type request =
  | Eval of { code : string; deadline_ms : int option }
  | Compile of { code : string; target : string; opt : int }
  | Cancel of { target : int }
  | Stats
  | Metrics of [ `Json | `Prometheus ]
  | Dump_flight
  | Shutdown

type req_frame = { rid : int; req : request }

let esc = J.escape

let encode_request { rid; req } =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"id\":%d" rid);
  (match req with
   | Eval { code; deadline_ms } ->
     Buffer.add_string b
       (Printf.sprintf ",\"op\":\"eval\",\"code\":\"%s\"" (esc code));
     (match deadline_ms with
      | Some d -> Buffer.add_string b (Printf.sprintf ",\"deadline_ms\":%d" d)
      | None -> ())
   | Compile { code; target; opt } ->
     Buffer.add_string b
       (Printf.sprintf
          ",\"op\":\"compile\",\"code\":\"%s\",\"target\":\"%s\",\"opt\":%d"
          (esc code) (esc target) opt)
   | Cancel { target } ->
     Buffer.add_string b (Printf.sprintf ",\"op\":\"cancel\",\"target_id\":%d" target)
   | Stats -> Buffer.add_string b ",\"op\":\"stats\""
   | Metrics `Json -> Buffer.add_string b ",\"op\":\"metrics\",\"format\":\"json\""
   | Metrics `Prometheus ->
     Buffer.add_string b ",\"op\":\"metrics\",\"format\":\"prometheus\""
   | Dump_flight -> Buffer.add_string b ",\"op\":\"dump-flight\""
   | Shutdown -> Buffer.add_string b ",\"op\":\"shutdown\"");
  Buffer.add_char b '}';
  Buffer.contents b

let int_field j name = Option.map int_of_float (Option.bind (J.member name j) J.num)
let str_field j name = Option.bind (J.member name j) J.str

let decode_request payload =
  match J.parse payload with
  | Error e -> Error (Printf.sprintf "request is not JSON: %s" e)
  | Ok j ->
    let rid = Option.value ~default:0 (int_field j "id") in
    (match str_field j "op" with
     | None -> Error "request has no \"op\""
     | Some op ->
       let code () =
         match str_field j "code" with
         | Some c -> Ok c
         | None -> Error (Printf.sprintf "%s request has no \"code\"" op)
       in
       (match op with
        | "eval" ->
          Result.map
            (fun code ->
               { rid; req = Eval { code; deadline_ms = int_field j "deadline_ms" } })
            (code ())
        | "compile" ->
          Result.map
            (fun code ->
               { rid;
                 req =
                   Compile
                     { code;
                       target = Option.value ~default:"threaded" (str_field j "target");
                       opt = Option.value ~default:1 (int_field j "opt") } })
            (code ())
        | "cancel" ->
          (match int_field j "target_id" with
           | Some target -> Ok { rid; req = Cancel { target } }
           | None -> Error "cancel request has no \"target_id\"")
        | "stats" -> Ok { rid; req = Stats }
        | "metrics" ->
          let fmt =
            if str_field j "format" = Some "prometheus" then `Prometheus else `Json
          in
          Ok { rid; req = Metrics fmt }
        | "dump-flight" -> Ok { rid; req = Dump_flight }
        | "shutdown" -> Ok { rid; req = Shutdown }
        | op -> Error (Printf.sprintf "unknown op %S" op)))

(* ---- responses -------------------------------------------------------- *)

type error_kind =
  | Overloaded       (** admission control refused: queue at capacity *)
  | Cancelled        (** a cancel frame (or disconnect) stopped the request *)
  | Deadline         (** the per-request deadline expired *)
  | Bad_frame        (** payload was not a well-formed request *)
  | Oversize         (** declared frame length beyond the limit *)
  | Parse_error      (** program text does not parse *)
  | Compile_failed   (** the pipeline rejected the program *)
  | Eval_failed      (** evaluation raised *)
  | Shutting_down    (** daemon no longer admits work *)

let error_kind_name = function
  | Overloaded -> "overloaded"
  | Cancelled -> "cancelled"
  | Deadline -> "deadline"
  | Bad_frame -> "bad-frame"
  | Oversize -> "oversize"
  | Parse_error -> "parse"
  | Compile_failed -> "compile"
  | Eval_failed -> "eval"
  | Shutting_down -> "shutting-down"

let error_kind_of_name = function
  | "overloaded" -> Some Overloaded
  | "cancelled" -> Some Cancelled
  | "deadline" -> Some Deadline
  | "bad-frame" -> Some Bad_frame
  | "oversize" -> Some Oversize
  | "parse" -> Some Parse_error
  | "compile" -> Some Compile_failed
  | "eval" -> Some Eval_failed
  | "shutting-down" -> Some Shutting_down
  | _ -> None

type payload =
  | Text of string   (** a printed result — ["result"] field *)
  | Json of string   (** an already-encoded JSON value — ["data"] field *)

type response = {
  rsp_id : int;
  rsp : (payload, error_kind * string) result;
  micros : int;
}

let encode_response { rsp_id; rsp; micros } =
  match rsp with
  | Ok (Text s) ->
    Printf.sprintf "{\"id\":%d,\"ok\":true,\"result\":\"%s\",\"micros\":%d}"
      rsp_id (esc s) micros
  | Ok (Json s) ->
    Printf.sprintf "{\"id\":%d,\"ok\":true,\"data\":%s,\"micros\":%d}"
      rsp_id s micros
  | Error (kind, msg) ->
    Printf.sprintf "{\"id\":%d,\"ok\":false,\"kind\":\"%s\",\"error\":\"%s\",\"micros\":%d}"
      rsp_id (error_kind_name kind) (esc msg) micros

let decode_response payload =
  match J.parse payload with
  | Error e -> Error (Printf.sprintf "response is not JSON: %s" e)
  | Ok j ->
    let rsp_id = Option.value ~default:0 (int_field j "id") in
    let micros = Option.value ~default:0 (int_field j "micros") in
    (match J.member "ok" j with
     | Some (J.Bool true) ->
       (match str_field j "result", J.member "data" j with
        | Some r, _ -> Ok { rsp_id; rsp = Ok (Text r); micros }
        | None, Some _ ->
          (* the raw data text is not recoverable from the parsed tree
             byte-for-byte; clients that need the structure re-parse the
             whole frame, so carrying the payload substring is enough *)
          Ok { rsp_id; rsp = Ok (Json payload); micros }
        | None, None -> Error "ok response has neither \"result\" nor \"data\"")
     | Some (J.Bool false) ->
       let kind =
         Option.bind (str_field j "kind") error_kind_of_name
         |> Option.value ~default:Eval_failed
       in
       let msg = Option.value ~default:"" (str_field j "error") in
       Ok { rsp_id; rsp = Error (kind, msg); micros }
     | _ -> Error "response has no boolean \"ok\"")
