(* wolfd: the long-running compile-and-eval daemon (DESIGN.md "Service
   layer").

   One process, three kinds of actors:

   - connection threads (systhreads on the accepting domain) own the socket
     IO: they parse frames, run the cheap control operations (cancel,
     stats, metrics, shutdown) inline, and submit compile/eval work;
   - executor worker domains (lib/parallel Executor) run the submitted
     jobs: compiles in parallel — they share the in-flight-deduped compile
     cache — and evals serialized under the big kernel lock with the
     session's own Values state swapped in;
   - a deadline monitor thread turns an expired per-request deadline into
     a targeted abort of the currently-evaluating request.

   Targeted cancellation with one global abort flag: the kernel lock means
   at most one evaluation runs at a time, so the flag is unambiguous as
   long as it is only ever raised at the request that is *currently
   evaluating* ([current_eval]).  A cancel for a request that is queued, or
   claimed but still waiting for the kernel lock, only marks it — the
   runner checks the mark immediately after acquiring the lock and replies
   [cancelled] without evaluating.  When an evaluation finishes, any
   leftover request flag is cleared under [reg_mu] before the next one can
   start, so a cancel that lost the race against completion cannot leak
   into an innocent evaluation.

   Session isolation: each connection gets a fresh [Values.state]; eval
   jobs swap it in under the kernel lock and swap it back out afterwards.
   States are moved, never copied, so tensor refcounts stay balanced.  The
   compile cache, by design, is the one deliberately shared piece. *)

open Wolf_wexpr
module P = Protocol

type config = {
  socket_path : string;
  jobs : int;              (** executor worker domains *)
  queue_capacity : int;    (** bounded admission queue; beyond it: overloaded *)
  max_frame : int;         (** per-frame byte limit *)
  log : string -> unit;
  tier : bool;             (** tiered execution of [Function[…][args]] evals *)
  tier_threshold : int;    (** heat before a background -O2 promotion *)
  disk_cache_dir : string option;  (** persistent compile cache, all workers *)
  parallel_loops : bool;   (** compile with data-parallel loop recognition *)
  flight_dir : string option;      (** flight-recorder dump directory *)
  flight_threshold_ms : float;     (** slow-request dump trigger; <=0 off *)
}

let default_config ?(socket_path = "/tmp/wolfd.sock") () =
  { socket_path; jobs = 2; queue_capacity = 64;
    max_frame = P.default_max_frame; log = ignore;
    tier = false; tier_threshold = 12; disk_cache_dir = None;
    parallel_loops = false; flight_dir = None; flight_threshold_ms = 0.0 }

type rstate = Queued | Running | Evaluating | Done

type pending = {
  p_rid : int;
  p_op : string;
  p_sid : int;
  p_deadline : float option;          (* absolute, Clock.now seconds *)
  mutable p_state : rstate;
  mutable p_cancelled : bool;
  mutable p_deadline_hit : bool;
  (* request-scoped observability: frame-arrival and admission stamps plus
     the phase timeline accumulated for the flight record.  Mutated first
     by the connection thread, then by the one worker that claimed the
     job — the executor queue's mutex is the happens-before edge. *)
  p_t0_ns : int;                      (* Clock.now_ns at frame arrival *)
  mutable p_submit_ns : int;          (* admission (executor submit) *)
  mutable p_phases : Wolf_obs.Flight.phase list;  (* reverse order *)
}

type session = {
  s_id : int;
  s_values : Wolf_kernel.Values.state;
  mutable s_seeded : bool;
  s_fd : Unix.file_descr;
  s_ic : in_channel;
  s_oc : out_channel;
  s_wmu : Mutex.t;
  mutable s_alive : bool;
  s_pending : (int, pending) Hashtbl.t;   (* rid -> pending; under reg_mu *)
  mutable s_requests : int;
  (* per-session tiering state: Function-source text -> tier controller.
     Touched only while this session's eval holds the kernel lock, so no
     extra mutex; isolation mirrors [s_values] — one session's heat never
     promotes (or pollutes counters) for another. *)
  s_tier : (string, Wolfram.compiled) Hashtbl.t;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  exec : Wolf_parallel.Executor.t;
  started_at : float;
  (* registry: sessions, request states, the currently-evaluating request *)
  reg_mu : Mutex.t;
  sessions : (int, session) Hashtbl.t;
  mutable next_sid : int;
  mutable current_eval : pending option;
  mutable conns : Thread.t list;
  (* lifecycle *)
  stop_mu : Mutex.t;
  stop_cond : Condition.t;
  mutable stop_requested : bool;
  mutable stopped : bool;
  mutable accept_thread : Thread.t option;
  mutable monitor_thread : Thread.t option;
  (* tallies (also exported as metrics) *)
  evals : int Atomic.t;
  compiles : int Atomic.t;
  cancels : int Atomic.t;
  overloaded : int Atomic.t;
  cancelled : int Atomic.t;
  deadlined : int Atomic.t;
  errors : int Atomic.t;
}

let[@inline] with_reg t f =
  Mutex.lock t.reg_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg_mu) f

(* ---- metrics ---------------------------------------------------------- *)

let m_requests = Wolf_obs.Metrics.counter "serve_requests"
    ~help:"frames admitted for execution (eval + compile)"
let m_overloaded = Wolf_obs.Metrics.counter "serve_overloaded"
    ~help:"requests refused by admission control (queue at capacity)"
let m_cancelled = Wolf_obs.Metrics.counter "serve_cancelled"
    ~help:"requests stopped by a cancel frame or client disconnect"
let m_deadlined = Wolf_obs.Metrics.counter "serve_deadline"
    ~help:"requests stopped by their per-request deadline"
let m_seconds = Wolf_obs.Metrics.histogram "serve_request_seconds"
    ~help:"service time of executed requests (queue wait included)"

(* Per-(op, phase) latency histograms.  Finer buckets than the default:
   phase durations under the daemon's typical sub-millisecond service
   times need resolution between 10µs and 5s for p50/p99 interpolation to
   mean anything.  All series share these bounds so [quantile_sum] can
   merge across ops. *)
let serve_bounds =
  [| 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3;
     1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0 |]

(* Memoized handles: [Metrics.histogram] takes the registry's global mutex
   on every call, and the phase timeline observes up to eight series per
   request from every worker at once.  The (op, phase) space is tiny, so a
   lock-free assoc snapshot in an atomic makes the steady-state lookup a
   short list walk with no contention. *)
let phase_hists :
  ((string * string) * Wolf_obs.Metrics.histogram) list Atomic.t =
  Atomic.make []

let phase_hist ~op ~phase =
  let key = (op, phase) in
  let rec find = function
    | [] -> None
    | (k, h) :: tl -> if k = key then Some h else find tl
  in
  match find (Atomic.get phase_hists) with
  | Some h -> h
  | None ->
    let h =
      Wolf_obs.Metrics.histogram "serve_request_seconds"
        ~help:"request latency by op and phase (seconds)"
        ~labels:[ ("op", op); ("phase", phase) ] ~bounds:serve_bounds
    in
    let rec publish () =
      let cur = Atomic.get phase_hists in
      match find cur with
      | Some h' -> h'
      | None ->
        if Atomic.compare_and_set phase_hists cur ((key, h) :: cur) then h
        else publish ()
    in
    publish ()

let observe_phase ~op ~phase seconds =
  Wolf_obs.Metrics.observe (phase_hist ~op ~phase) seconds

let ns_s ns = float_of_int ns *. 1e-9

(* Append to the request's phase timeline (flight record) and the matching
   histogram in one step; the domain id pins where the phase ran. *)
let add_phase p phase start_ns dur_ns =
  p.p_phases <-
    { Wolf_obs.Flight.ph_name = phase; ph_domain = (Domain.self () :> int);
      ph_start_ns = start_ns; ph_dur_ns = dur_ns }
    :: p.p_phases;
  observe_phase ~op:p.p_op ~phase (ns_s dur_ns)

let trace_label p = Printf.sprintf "s%d.r%d" p.p_sid p.p_rid

let outcome_of = function
  | Ok _ -> "ok"
  | Error (kind, _) -> P.error_kind_name kind

(* Completed-request bookkeeping shared by every terminal path: the total
   phase histogram and the flight-recorder record (whose outcome or total
   latency may trigger a ring dump). *)
let record_flight p rsp =
  let total = Wolf_obs.Clock.now_ns () - p.p_t0_ns in
  observe_phase ~op:p.p_op ~phase:"total" (ns_s total);
  ignore
    (Wolf_obs.Flight.record
       { Wolf_obs.Flight.fr_rid = p.p_rid; fr_sid = p.p_sid;
         fr_label = trace_label p; fr_op = p.p_op;
         fr_outcome = outcome_of rsp; fr_start_ns = p.p_t0_ns;
         fr_total_ns = total; fr_phases = List.rev p.p_phases })

(* The pull-time source is (re-)registered at every [start]: the name is
   the identity, so a daemon restarted in the same process replaces the
   closure capturing the dead instance instead of erroring or leaking a
   stale sampler (see the regression in test_serve). *)
let register_sources t =
  Wolf_obs.Metrics.register_source "serve" (fun () ->
      let open Wolf_obs.Metrics in
      let xs = Wolf_parallel.Executor.stats t.exec in
      let n = with_reg t (fun () -> Hashtbl.length t.sessions) in
      let gauge name help v =
        { s_name = name; s_labels = []; s_help = help; s_kind = Gauge;
          s_value = V_int v }
      in
      [ gauge "serve_sessions" "connected client sessions" n;
        gauge "serve_queue_depth" "requests waiting in the admission queue"
          xs.Wolf_parallel.Executor.queued;
        gauge "serve_queue_running" "requests executing on a worker"
          xs.Wolf_parallel.Executor.running;
        gauge "serve_queue_capacity" "admission queue bound"
          xs.Wolf_parallel.Executor.capacity ])

(* ---- replies ---------------------------------------------------------- *)

let mark_conn_dead t sess =
  (* flip under the write mutex so no half-written frame follows *)
  Mutex.lock sess.s_wmu;
  sess.s_alive <- false;
  Mutex.unlock sess.s_wmu;
  (try Unix.shutdown sess.s_fd Unix.SHUTDOWN_ALL with _ -> ());
  ignore t

let send _t sess (resp : P.response) =
  Mutex.lock sess.s_wmu;
  let ok =
    if not sess.s_alive then false
    else
      match P.write_frame sess.s_oc (P.encode_response resp) with
      | () -> true
      | exception _ -> sess.s_alive <- false; false
  in
  Mutex.unlock sess.s_wmu;
  if not ok then
    (try Unix.shutdown sess.s_fd Unix.SHUTDOWN_ALL with _ -> ())

let micros_since t0 = int_of_float ((Wolf_obs.Clock.now () -. t0) *. 1e6)

let reply t sess ~rid ~t0 rsp =
  let micros = micros_since t0 in
  (match rsp with
   | Error (P.Overloaded, _) ->
     Atomic.incr t.overloaded; Wolf_obs.Metrics.incr m_overloaded
   | Error (P.Cancelled, _) ->
     Atomic.incr t.cancelled; Wolf_obs.Metrics.incr m_cancelled
   | Error (P.Deadline, _) ->
     Atomic.incr t.deadlined; Wolf_obs.Metrics.incr m_deadlined
   | Error _ -> Atomic.incr t.errors
   | Ok _ -> ());
  send t sess { P.rsp_id = rid; rsp; micros }

(* Terminal replies that never reach a worker (overloaded, bad-frame,
   oversize, shutting-down, duplicate rid) still deserve a trace: a
   zero-child "request" span on the connection thread whose end carries
   the outcome, so [wolfc obs-check --require-outcomes] sees every reply
   accounted for. *)
let reply_with_span t sess ~rid ~t0 ~op rsp =
  let traced = Wolf_obs.Trace.enabled () in
  if traced then
    Wolf_obs.Trace.begin_span ~cat:"serve" "request"
      ~args:
        [ ("trace_id",
           Wolf_obs.Trace.arg_str (Printf.sprintf "s%d.r%d" sess.s_id rid));
          ("op", Wolf_obs.Trace.arg_str op) ];
  reply t sess ~rid ~t0 rsp;
  if traced then
    Wolf_obs.Trace.end_span "request"
      ~args:[ ("outcome", Wolf_obs.Trace.arg_str (outcome_of rsp)) ]

(* ---- the work itself -------------------------------------------------- *)

let parse_target = function
  | "jit" -> Ok Wolfram.Jit
  | "threaded" -> Ok Wolfram.Threaded
  | "bytecode" -> Ok Wolfram.Bytecode
  | s -> Error (Printf.sprintf "unknown target %S (jit, threaded, bytecode)" s)

let run_compile ~code ~target ~opt ~parallel_loops =
  match parse_target target with
  | Error e -> Error (P.Compile_failed, e)
  | Ok tgt ->
    (match Parser.parse_opt code with
     | Error e -> Error (P.Parse_error, e)
     | Ok fexpr ->
       let options =
         { Wolf_compiler.Options.default with opt_level = opt; parallel_loops }
       in
       (* the fixed name keeps the cache key a function of (source, options,
          target) alone, so identical programs from different sessions
          share one entry and in-flight compiles dedup across clients *)
       (match Wolfram.function_compile ~options ~target:tgt ~name:"Serve" fexpr with
        | cf ->
          let summary =
            match Wolfram.pipeline_of cf with
            | Some c ->
              Printf.sprintf "ok: %d instrs, %d blocks"
                (Wolf_compiler.Pass_manager.instr_count c.Wolf_compiler.Pipeline.program)
                (Wolf_compiler.Pass_manager.block_count c.Wolf_compiler.Pipeline.program)
            | None -> "ok: bytecode"
          in
          Ok (P.Text summary)
        | exception Wolf_base.Errors.Compile_error e -> Error (P.Compile_failed, e)
        | exception Wolf_base.Errors.Eval_error e -> Error (P.Compile_failed, e)
        | exception exn -> Error (P.Compile_failed, Printexc.to_string exn)))

let deadline_passed p =
  match p.p_deadline with
  | Some d -> Wolf_obs.Clock.now () > d
  | None -> false

(* ---- tiered evaluation (opt-in, [config.tier]) ------------------------- *)

(* Only a literal argument can be handed to a (possibly already promoted)
   compiled closure unevaluated; anything symbolic must go through the
   interpreter so the usual evaluation order applies. *)
let rec literal_arg (e : Expr.t) =
  match e with
  | Expr.Int _ | Expr.Real _ | Expr.Str _ | Expr.Big _ | Expr.Tensor _ -> true
  | Expr.Normal (Expr.Sym h, args) when h == Expr.Sy.list ->
    Array.for_all literal_arg args
  | Expr.Sym _ | Expr.Normal _ -> false

let m_tier_intercepts = Wolf_obs.Metrics.counter "serve_tier_intercepts"
    ~help:"evals routed through a per-session tier controller"

(* [Function[…][literals]] routed through the session's tier table: the
   first evals interpret (tier 0), the hot ones trigger a background -O2
   compile, later evals of the same Function call the promoted closure.
   Anything else — or a tier-disabled daemon — takes the plain kernel
   path.  The tier instances are deliberately per-session and uncached
   ([Wolfram.tiered]), mirroring value isolation. *)
let eval_expr t sess (expr : Expr.t) =
  if not t.cfg.tier then Wolf_kernel.Eval.eval expr
  else
    match expr with
    | Expr.Normal ((Expr.Normal (Expr.Sym h, _) as f), args)
      when h == Expr.Sy.function_ && Array.for_all literal_arg args ->
      let cf =
        let key = Expr.to_string f in
        match Hashtbl.find_opt sess.s_tier key with
        | Some cf -> cf
        | None ->
          (* heat is per-session, but the promoted compile itself goes
             through the shared caches under the fixed "Serve" name, so two
             sessions promoting the same Function dedup into one compile *)
          let cf =
            Wolfram.tiered
              ~options:
                { Wolf_compiler.Options.default with
                  parallel_loops = t.cfg.parallel_loops }
              ~threshold:t.cfg.tier_threshold ~name:"Serve" f
          in
          Hashtbl.replace sess.s_tier key cf;
          cf
      in
      Wolf_obs.Metrics.incr m_tier_intercepts;
      Wolfram.call cf (Array.to_list args)
    | _ -> Wolf_kernel.Eval.eval expr

(* Evaluate [code] in [sess]'s own kernel state.  Runs on a worker domain.
   The whole install/evaluate/restore window sits under the big kernel
   lock, so no other evaluation — daemon or in-process — can observe the
   session's state, and the state swap cannot tear. *)
let run_eval t sess p code =
  let lock_t0 = Wolf_obs.Clock.now_ns () in
  Wolf_base.Kernel_lock.with_lock @@ fun () ->
  (* the lock acquisition span itself comes from Kernel_lock (cat "lock");
     here we only attribute the wait to this request's timeline *)
  add_phase p "lock_wait" lock_t0 (Wolf_obs.Clock.now_ns () - lock_t0);
  let proceed =
    with_reg t (fun () ->
        if p.p_cancelled then `Cancelled
        else if deadline_passed p then `Deadline
        else begin
          p.p_state <- Evaluating;
          t.current_eval <- Some p;
          `Go
        end)
  in
  match proceed with
  | `Cancelled -> Error (P.Cancelled, "cancelled before evaluation")
  | `Deadline -> Error (P.Deadline, "deadline expired while queued")
  | `Go ->
    let prev = Wolf_kernel.Values.swap_state sess.s_values in
    let finish () =
      ignore (Wolf_kernel.Values.swap_state prev);
      with_reg t (fun () ->
          t.current_eval <- None;
          p.p_state <- Done;
          (* a cancel/deadline/Abort[] that fired is fully consumed here:
             the flag must not leak into the next evaluation *)
          if Wolf_base.Abort_signal.requested () then
            Wolf_base.Abort_signal.clear ())
    in
    Fun.protect ~finally:finish @@ fun () ->
    if not sess.s_seeded then begin
      Wolf_kernel.Session.seed_constants ();
      sess.s_seeded <- true
    end;
    let eval_t0 = Wolf_obs.Clock.now_ns () in
    (* the phase must land even when the eval is shot mid-flight (cancel,
       deadline): the protect below still runs before the span closes *)
    Fun.protect
      ~finally:(fun () ->
          add_phase p "eval" eval_t0 (Wolf_obs.Clock.now_ns () - eval_t0))
    @@ fun () ->
    Wolf_obs.Trace.with_span ~cat:"serve" "eval"
      ~args:(Wolf_obs.Request_ctx.args_of_current ())
    @@ fun () ->
    (match Parser.parse_opt code with
     | Error e -> Error (P.Parse_error, e)
     | Ok expr ->
       (match eval_expr t sess expr with
        | v -> Ok (P.Text (Form.input_form v))
        | exception Wolf_base.Abort_signal.Aborted ->
          (* who pulled the trigger decides the reply *)
          let cause =
            with_reg t (fun () ->
                if p.p_cancelled then `Cancel
                else if p.p_deadline_hit then `Deadline
                else `Program)
          in
          (match cause with
           | `Cancel -> Error (P.Cancelled, "evaluation aborted by cancel")
           | `Deadline -> Error (P.Deadline, "evaluation aborted at deadline")
           | `Program ->
             (* the program itself called Abort[]: notebook semantics *)
             Ok (P.Text "$Aborted"))
        | exception Wolf_base.Errors.Runtime_error f ->
          Error (P.Eval_failed, Wolf_base.Errors.describe_failure f)
        | exception Wolf_base.Errors.Eval_error e -> Error (P.Eval_failed, e)
        | exception Wolf_base.Errors.Compile_error e ->
          Error (P.Compile_failed, e)
        | exception exn -> Error (P.Eval_failed, Printexc.to_string exn)))

let job t sess p ~t0 work =
  let start_ns = Wolf_obs.Clock.now_ns () in
  (* queue wait = admission → job start.  It belongs to no track's call
     stack (the request was nowhere while queued), so it is attributed by
     the flow-event gap plus this phase entry and an instant marker, not a
     retroactive span. *)
  add_phase p "queue_wait" p.p_submit_ns (start_ns - p.p_submit_ns);
  let traced = Wolf_obs.Trace.enabled () in
  if traced then begin
    (* the ambient context was restored by [adopt]; its trace_id arg is
       pre-encoded, so labelling here costs two small list cells *)
    let targs = Wolf_obs.Request_ctx.args_of_current () in
    Wolf_obs.Trace.begin_span ~cat:"serve" "request"
      ~args:(("op", Wolf_obs.Trace.arg_str p.p_op) :: targs);
    Wolf_obs.Trace.instant ~cat:"serve" "queue-wait"
      ~args:
        (("micros", Wolf_obs.Trace.arg_int ((start_ns - p.p_submit_ns) / 1000))
         :: targs)
  end;
  let outcome = ref "ok" in
  let rsp =
    Fun.protect
      ~finally:(fun () ->
          if traced then
            Wolf_obs.Trace.end_span "request"
              ~args:[ ("outcome", Wolf_obs.Trace.arg_str !outcome) ])
    @@ fun () ->
    let claim =
      with_reg t (fun () ->
          if p.p_cancelled then `Cancelled
          else if deadline_passed p then `Deadline
          else begin p.p_state <- Running; `Go end)
    in
    let rsp =
      match claim with
      | `Cancelled -> Error (P.Cancelled, "cancelled while queued")
      | `Deadline -> Error (P.Deadline, "deadline expired while queued")
      | `Go ->
        let work_t0 = Wolf_obs.Clock.now_ns () in
        let r = work () in
        (* eval phases (lock wait, eval) are recorded inside run_eval;
           compile is opaque from here, so time it as one phase *)
        if p.p_op = "compile" then
          add_phase p "compile" work_t0 (Wolf_obs.Clock.now_ns () - work_t0);
        r
    in
    (match claim with
     | `Go -> Wolf_obs.Metrics.observe m_seconds (Wolf_obs.Clock.now () -. t0)
     | _ -> ());
    outcome := outcome_of rsp;
    with_reg t (fun () ->
        p.p_state <- Done;
        Hashtbl.remove sess.s_pending p.p_rid);
    let enc_t0 = Wolf_obs.Clock.now_ns () in
    Wolf_obs.Trace.with_span ~cat:"serve" "encode" (fun () ->
        reply t sess ~rid:p.p_rid ~t0 rsp);
    add_phase p "encode" enc_t0 (Wolf_obs.Clock.now_ns () - enc_t0);
    rsp
  in
  record_flight p rsp

(* ---- control operations (inline on the connection thread) ------------- *)

let cache_json () =
  let s = Wolfram.compile_cache_stats () in
  Printf.sprintf
    "{\"lookups\":%d,\"hits\":%d,\"misses\":%d,\"inflight_waits\":%d,\
     \"evictions\":%d,\"entries\":%d,\"bytes\":%d}"
    s.Wolf_compiler.Compile_cache.lookups s.hits s.misses s.waits s.evictions
    s.entries s.bytes

(* p50/p99 per phase read back from the (op, phase) histograms; phases
   that both ops share are merged with [quantile_sum].  Milliseconds, like
   the bench report. *)
let latency_json () =
  let find op phase =
    Wolf_obs.Metrics.find_histogram "serve_request_seconds"
      ~labels:[ ("op", op); ("phase", phase) ]
  in
  let quant hs q =
    match hs with
    | [] -> 0.0
    | hs -> Wolf_obs.Metrics.quantile_sum hs q *. 1e3
  in
  let entry name hs =
    Printf.sprintf "\"%s\":{\"p50_ms\":%.3f,\"p99_ms\":%.3f}"
      name (quant hs 0.5) (quant hs 0.99)
  in
  let merged phase =
    List.filter_map (fun op -> find op phase) [ "eval"; "compile" ]
  in
  let solo op phase = Option.to_list (find op phase) in
  "{"
  ^ String.concat ","
      [ entry "total" (merged "total");
        entry "decode" (merged "decode");
        entry "queue_wait" (merged "queue_wait");
        entry "lock_wait" (solo "eval" "lock_wait");
        entry "eval" (solo "eval" "eval");
        entry "compile" (solo "compile" "compile");
        entry "encode" (merged "encode") ]
  ^ "}"

let stats_json t =
  let xs = Wolf_parallel.Executor.stats t.exec in
  let sessions = with_reg t (fun () -> Hashtbl.length t.sessions) in
  let fl_records, fl_dumps, fl_suppressed = Wolf_obs.Flight.stats () in
  Printf.sprintf
    "{\"sessions\":%d,\"uptime_seconds\":%.3f,\
     \"evals\":%d,\"compiles\":%d,\"cancels\":%d,\
     \"overloaded\":%d,\"cancelled\":%d,\"deadline\":%d,\"errors\":%d,\
     \"queue\":{\"depth\":%d,\"running\":%d,\"capacity\":%d,\"jobs\":%d,\
     \"executed\":%d,\"crashed\":%d},\
     \"latency\":%s,\
     \"flight\":{\"records\":%d,\"dumps\":%d,\"suppressed\":%d},\
     \"cache\":%s}"
    sessions
    (Wolf_obs.Clock.now () -. t.started_at)
    (Atomic.get t.evals) (Atomic.get t.compiles) (Atomic.get t.cancels)
    (Atomic.get t.overloaded) (Atomic.get t.cancelled)
    (Atomic.get t.deadlined) (Atomic.get t.errors)
    xs.Wolf_parallel.Executor.queued xs.running xs.capacity xs.jobs
    xs.executed xs.crashed
    (latency_json ())
    fl_records fl_dumps fl_suppressed
    (cache_json ())

let handle_cancel t sess ~target =
  Atomic.incr t.cancels;
  with_reg t (fun () ->
      match Hashtbl.find_opt sess.s_pending target with
      | None -> "finished"
      | Some p ->
        (match p.p_state with
         | Done -> "finished"
         | Queued | Running ->
           p.p_cancelled <- true;
           "cancelling"
         | Evaluating ->
           p.p_cancelled <- true;
           (* only the currently-evaluating request may be shot: the kernel
              lock guarantees it is the one the flag will reach *)
           (match t.current_eval with
            | Some q when q == p -> Wolf_base.Abort_signal.request ()
            | _ -> ());
           "cancelling"))

let request_stop t =
  Mutex.lock t.stop_mu;
  let first = not t.stop_requested in
  t.stop_requested <- true;
  Condition.broadcast t.stop_cond;
  Mutex.unlock t.stop_mu;
  first

(* ---- connection loop --------------------------------------------------- *)

let disconnect t sess =
  let shoot =
    with_reg t (fun () ->
        if Hashtbl.mem t.sessions sess.s_id then begin
          Hashtbl.remove t.sessions sess.s_id;
          (* release every queue slot the session still holds: queued jobs
             are marked cancelled (workers skip them in O(1)) and a running
             evaluation is aborted *)
          Hashtbl.iter
            (fun _ p -> if p.p_state <> Done then p.p_cancelled <- true)
            sess.s_pending;
          match t.current_eval with
          | Some p when p.p_sid = sess.s_id -> true
          | _ -> false
        end
        else false)
  in
  if shoot then Wolf_base.Abort_signal.request ();
  mark_conn_dead t sess

let handle_request t sess ~t0 ~t0_ns ~decode_ns { P.rid; req } =
  match req with
  | P.Stats -> reply t sess ~rid ~t0 (Ok (P.Json (stats_json t)))
  | P.Metrics `Json -> reply t sess ~rid ~t0 (Ok (P.Json (Wolf_obs.Metrics.to_json ())))
  | P.Metrics `Prometheus ->
    reply t sess ~rid ~t0 (Ok (P.Text (Wolf_obs.Metrics.to_prometheus ())))
  | P.Cancel { target } ->
    reply t sess ~rid ~t0 (Ok (P.Text (handle_cancel t sess ~target)))
  | P.Dump_flight ->
    let path, records = Wolf_obs.Flight.dump ~reason:"manual" () in
    let path_json =
      match path with
      | None -> "null"
      | Some s -> "\"" ^ Wolf_obs.Json_min.escape s ^ "\""
    in
    reply t sess ~rid ~t0
      (Ok (P.Json (Printf.sprintf "{\"path\":%s,\"records\":%d}" path_json records)))
  | P.Shutdown ->
    t.cfg.log (Printf.sprintf "session %d requested shutdown" sess.s_id);
    reply t sess ~rid ~t0 (Ok (P.Text "stopping"));
    ignore (request_stop t)
  | P.Eval _ | P.Compile _ ->
    let op, deadline_ms =
      match req with
      | P.Eval { deadline_ms; _ } -> "eval", deadline_ms
      | _ -> "compile", None
    in
    let stopping =
      Mutex.lock t.stop_mu;
      let s = t.stop_requested in
      Mutex.unlock t.stop_mu;
      s
    in
    if stopping then
      reply_with_span t sess ~rid ~t0 ~op
        (Error (P.Shutting_down, "daemon is shutting down"))
    else begin
      let p =
        { p_rid = rid; p_op = op; p_sid = sess.s_id;
          p_deadline =
            Option.map (fun ms -> t0 +. float_of_int ms /. 1e3) deadline_ms;
          p_state = Queued; p_cancelled = false; p_deadline_hit = false;
          p_t0_ns = t0_ns; p_submit_ns = t0_ns; p_phases = [] }
      in
      add_phase p "decode" t0_ns decode_ns;
      let fresh =
        with_reg t (fun () ->
            if Hashtbl.mem sess.s_pending rid then false
            else begin
              Hashtbl.replace sess.s_pending rid p;
              sess.s_requests <- sess.s_requests + 1;
              true
            end)
      in
      if not fresh then
        reply_with_span t sess ~rid ~t0 ~op
          (Error (P.Bad_frame, Printf.sprintf "request id %d already in flight" rid))
      else begin
        let work () =
          match req with
          | P.Eval { code; _ } ->
            Atomic.incr t.evals;
            run_eval t sess p code
          | P.Compile { code; target; opt } ->
            Atomic.incr t.compiles;
            run_compile ~code ~target ~opt
              ~parallel_loops:t.cfg.parallel_loops
          | _ -> assert false
        in
        (* The admit span is the flow-start's anchor on the accept track:
           the worker's request span carries the matching flow-finish, so
           the queue wait renders as the arrow's gap.  The context is
           passed explicitly — DLS on this domain is shared by every
           connection thread and cannot be trusted as an ambient slot. *)
        let ctx = Wolf_obs.Request_ctx.make ~rid ~label:(trace_label p) in
        let admit_args =
          if Wolf_obs.Trace.enabled () then
            ("op", Wolf_obs.Trace.arg_str op)
            :: Wolf_obs.Request_ctx.span_args ctx
          else []
        in
        let submitted =
          Wolf_obs.Trace.with_span ~cat:"serve" "admit" ~args:admit_args
          @@ fun () ->
          let cap = Wolf_obs.Request_ctx.capture_of ctx in
          p.p_submit_ns <- Wolf_obs.Clock.now_ns ();
          Wolf_parallel.Executor.submit t.exec (fun () ->
              Wolf_obs.Request_ctx.adopt cap (fun () -> job t sess p ~t0 work))
        in
        match submitted with
        | `Accepted -> Wolf_obs.Metrics.incr m_requests
        | `Saturated ->
          with_reg t (fun () -> Hashtbl.remove sess.s_pending rid);
          let xs = Wolf_parallel.Executor.stats t.exec in
          let rsp =
            Error
              (P.Overloaded,
               Printf.sprintf "queue full (%d waiting, capacity %d)"
                 xs.Wolf_parallel.Executor.queued xs.capacity)
          in
          reply_with_span t sess ~rid ~t0 ~op rsp;
          record_flight p rsp
        | `Stopped ->
          with_reg t (fun () -> Hashtbl.remove sess.s_pending rid);
          let rsp = Error (P.Shutting_down, "daemon is shutting down") in
          reply_with_span t sess ~rid ~t0 ~op rsp;
          record_flight p rsp
      end
    end

let conn_loop t sess =
  let continue = ref true in
  while !continue do
    match P.read_frame ~max_frame:t.cfg.max_frame sess.s_ic with
    | Error `Eof -> continue := false
    | Error (`Oversize n) ->
      reply_with_span t sess ~rid:0 ~t0:(Wolf_obs.Clock.now ()) ~op:"frame"
        (Error
           (P.Oversize,
            Printf.sprintf "frame of %d bytes exceeds limit %d" n t.cfg.max_frame));
      (* the stream can no longer be trusted; drop the connection *)
      continue := false
    | Ok payload ->
      let t0 = Wolf_obs.Clock.now () in
      let t0_ns = Wolf_obs.Clock.now_ns () in
      let decoded =
        Wolf_obs.Trace.with_span ~cat:"serve" "decode" (fun () ->
            P.decode_request payload)
      in
      let decode_ns = Wolf_obs.Clock.now_ns () - t0_ns in
      (match decoded with
       | Error e ->
         reply_with_span t sess ~rid:0 ~t0 ~op:"frame" (Error (P.Bad_frame, e))
       | Ok frame -> handle_request t sess ~t0 ~t0_ns ~decode_ns frame)
  done;
  disconnect t sess;
  t.cfg.log (Printf.sprintf "session %d disconnected" sess.s_id);
  (try close_out_noerr sess.s_oc with _ -> ());
  (try close_in_noerr sess.s_ic with _ -> ())

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> continue := false
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | fd, _ ->
      let stopping =
        Mutex.lock t.stop_mu;
        let s = t.stop_requested in
        Mutex.unlock t.stop_mu;
        s
      in
      if stopping then begin
        (try Unix.close fd with _ -> ());
        continue := false
      end
      else begin
        let sess =
          { s_id = 0; s_values = Wolf_kernel.Values.fresh_state ();
            s_seeded = false; s_fd = fd;
            s_ic = Unix.in_channel_of_descr fd;
            s_oc = Unix.out_channel_of_descr fd;
            s_wmu = Mutex.create (); s_alive = true;
            s_pending = Hashtbl.create 8; s_requests = 0;
            s_tier = Hashtbl.create 4 }
        in
        let sess =
          with_reg t (fun () ->
              t.next_sid <- t.next_sid + 1;
              let sess = { sess with s_id = t.next_sid } in
              Hashtbl.replace t.sessions sess.s_id sess;
              sess)
        in
        t.cfg.log (Printf.sprintf "session %d connected" sess.s_id);
        let th = Thread.create (fun () -> conn_loop t sess) () in
        with_reg t (fun () -> t.conns <- th :: t.conns)
      end
  done

let monitor_loop t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.stop_mu;
    let stopping = t.stop_requested in
    Mutex.unlock t.stop_mu;
    if stopping then continue := false
    else begin
      with_reg t (fun () ->
          match t.current_eval with
          | Some p
            when (not p.p_deadline_hit) && (not p.p_cancelled)
                 && deadline_passed p ->
            p.p_deadline_hit <- true;
            Wolf_base.Abort_signal.request ()
          | _ -> ());
      Thread.delay 0.005
    end
  done

(* ---- lifecycle -------------------------------------------------------- *)

let start cfg =
  Wolfram.init ();
  (* one persistent cache shared by every worker domain and session; the
     store's flock also coordinates separate wolfd processes on the dir *)
  (match cfg.disk_cache_dir with
   | Some dir ->
     (match Wolf_compiler.Disk_cache.open_dir dir with
      | dc -> Wolfram.set_disk_cache (Some dc)
      | exception exn ->
        cfg.log
          (Printf.sprintf "wolfd: disk cache %s unavailable (%s)" dir
             (Printexc.to_string exn)))
   | None -> ());
  (* flight recorder is process-global state, like the metrics registry:
     the daemon configures it at start (and a later daemon in the same
     process reconfigures it — last one wins, mirroring register_source) *)
  Wolf_obs.Flight.set_dir cfg.flight_dir;
  Wolf_obs.Flight.set_threshold_ms cfg.flight_threshold_ms;
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
   | _ -> () | exception _ -> ());
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  let t =
    { cfg; listen_fd;
      exec =
        Wolf_parallel.Executor.create ~capacity:cfg.queue_capacity
          ~jobs:cfg.jobs ();
      started_at = Wolf_obs.Clock.now ();
      reg_mu = Mutex.create (); sessions = Hashtbl.create 16; next_sid = 0;
      current_eval = None; conns = [];
      stop_mu = Mutex.create (); stop_cond = Condition.create ();
      stop_requested = false; stopped = false;
      accept_thread = None; monitor_thread = None;
      evals = Atomic.make 0; compiles = Atomic.make 0;
      cancels = Atomic.make 0; overloaded = Atomic.make 0;
      cancelled = Atomic.make 0; deadlined = Atomic.make 0;
      errors = Atomic.make 0 }
  in
  register_sources t;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.monitor_thread <- Some (Thread.create (fun () -> monitor_loop t) ());
  t.cfg.log (Printf.sprintf "wolfd listening on %s (%d worker domain(s), queue %d)"
               cfg.socket_path cfg.jobs cfg.queue_capacity);
  t

let wait t =
  Mutex.lock t.stop_mu;
  while not t.stop_requested do
    Condition.wait t.stop_cond t.stop_mu
  done;
  Mutex.unlock t.stop_mu

let stop t =
  let proceed =
    Mutex.lock t.stop_mu;
    let p = not t.stopped in
    t.stopped <- true;
    Mutex.unlock t.stop_mu;
    p
  in
  if proceed then begin
    ignore (request_stop t);
    (* wake the accept thread with a throwaway self-connection *)
    (match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
     | fd ->
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path) with _ -> ());
       (try Unix.close fd with _ -> ())
     | exception _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.monitor_thread with Some th -> Thread.join th | None -> ());
    (* let claimed jobs finish and reply, then take the workers down;
       replies to already-gone clients fail silently *)
    Wolf_parallel.Executor.quiesce t.exec;
    Wolf_parallel.Executor.shutdown t.exec;
    (* hang up every session; connection threads see EOF and reap *)
    let sessions = with_reg t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions []) in
    List.iter (fun s -> mark_conn_dead t s) sessions;
    let conns = with_reg t (fun () -> t.conns) in
    List.iter Thread.join conns;
    (try Unix.close t.listen_fd with _ -> ());
    if Sys.file_exists t.cfg.socket_path then
      (try Sys.remove t.cfg.socket_path with _ -> ());
    t.cfg.log "wolfd stopped"
  end

let session_count t = with_reg t (fun () -> Hashtbl.length t.sessions)

let executor_stats t = Wolf_parallel.Executor.stats t.exec
