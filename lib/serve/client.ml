(* Client side of the wolfd protocol.

   Deliberately small: a connection, an id counter, and a reorder buffer.
   Responses can arrive out of request order (a cancel overtakes the eval
   it targets), so [wait] parks frames it was not asked about in [got] and
   hands them out when their id is requested.  One client per thread — the
   structure is not locked. *)

module P = Protocol

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  max_frame : int;
  mutable next_id : int;
  got : (int, P.response) Hashtbl.t;
}

let connect ?(max_frame = P.default_max_frame) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with _ -> ()); raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd;
    max_frame; next_id = 0; got = Hashtbl.create 8 }

let close t =
  (try close_out_noerr t.oc with _ -> ());
  (try close_in_noerr t.ic with _ -> ())

(* raw frame access, for tests that need to speak mis-framed bytes *)
let send_raw t bytes = P.write_frame t.oc bytes

let recv_any t =
  match P.read_frame ~max_frame:t.max_frame t.ic with
  | Error `Eof -> raise P.Closed
  | Error (`Oversize _) -> raise P.Closed
  | Ok payload ->
    (match P.decode_response payload with
     | Ok r -> r
     | Error e -> failwith ("wolfd client: bad response frame: " ^ e))

let send t req =
  t.next_id <- t.next_id + 1;
  let rid = t.next_id in
  P.write_frame t.oc (P.encode_request { P.rid; req });
  rid

let wait t rid =
  match Hashtbl.find_opt t.got rid with
  | Some r -> Hashtbl.remove t.got rid; r
  | None ->
    let rec loop () =
      let r = recv_any t in
      if r.P.rsp_id = rid then r
      else begin Hashtbl.replace t.got r.P.rsp_id r; loop () end
    in
    loop ()

let rpc t req = wait t (send t req)

let eval ?deadline_ms t code = rpc t (P.Eval { code; deadline_ms })

let compile ?(target = "threaded") ?(opt = 1) t code =
  rpc t (P.Compile { code; target; opt })

let cancel t ~target = rpc t (P.Cancel { target })

let stats t = rpc t P.Stats

let metrics ?(format = `Json) t = rpc t (P.Metrics format)

let dump_flight t = rpc t P.Dump_flight

let shutdown t = rpc t P.Shutdown

(* convenience for one-string-in, one-string-out callers (connect REPL,
   fuzz oracle): collapse the response to a printable outcome *)
let eval_string ?deadline_ms t code =
  match (eval ?deadline_ms t code).P.rsp with
  | Ok (P.Text s) -> Ok s
  | Ok (P.Json s) -> Ok s
  | Error (kind, msg) -> Error (P.error_kind_name kind, msg)
