(** Wire protocol of the [wolfd] daemon: length-prefixed JSON frames.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of JSON — one request or response object per frame.  Requests
    carry a client-chosen [id]; responses echo it, so a connection may keep
    several requests in flight (that is how a client cancels a running
    evaluation: the cancel frame overtakes it on the same socket).

    Grammar (all objects, field order irrelevant):
    {v
    request  := {"id":N, "op":"eval",    "code":S, "deadline_ms":N?}
              | {"id":N, "op":"compile", "code":S, "target":S?, "opt":N?}
              | {"id":N, "op":"cancel",  "target_id":N}
              | {"id":N, "op":"stats"}
              | {"id":N, "op":"metrics", "format":("json"|"prometheus")?}
              | {"id":N, "op":"dump-flight"}
              | {"id":N, "op":"shutdown"}
    response := {"id":N, "ok":true,  ("result":S | "data":J), "micros":N}
              | {"id":N, "ok":false, "kind":S, "error":S, "micros":N}
    v} *)

val default_max_frame : int
(** 4 MiB. *)

exception Closed
(** Raised by client helpers when the peer went away. *)

(** {2 Framing} *)

val write_frame : out_channel -> string -> unit
(** Length prefix + payload, flushed. *)

val read_frame :
  max_frame:int -> in_channel ->
  (string, [ `Eof | `Oversize of int ]) result
(** One frame.  [`Oversize n] is returned {e before} reading the payload of
    a frame whose declared length [n] exceeds [max_frame] — the stream can
    no longer be trusted and should be closed. *)

(** {2 Requests} *)

type request =
  | Eval of { code : string; deadline_ms : int option }
  | Compile of { code : string; target : string; opt : int }
  | Cancel of { target : int }
  | Stats
  | Metrics of [ `Json | `Prometheus ]
  | Dump_flight
      (** Force a flight-recorder dump; answers
          [{"path":(S|null),"records":N}]. *)
  | Shutdown

type req_frame = { rid : int; req : request }

val encode_request : req_frame -> string
val decode_request : string -> (req_frame, string) result

(** {2 Responses} *)

type error_kind =
  | Overloaded       (** admission control refused: queue at capacity *)
  | Cancelled        (** a cancel frame (or disconnect) stopped the request *)
  | Deadline         (** the per-request deadline expired *)
  | Bad_frame        (** payload was not a well-formed request *)
  | Oversize         (** declared frame length beyond the limit *)
  | Parse_error      (** program text does not parse *)
  | Compile_failed   (** the pipeline rejected the program *)
  | Eval_failed      (** evaluation raised *)
  | Shutting_down    (** daemon no longer admits work *)

val error_kind_name : error_kind -> string
val error_kind_of_name : string -> error_kind option

type payload =
  | Text of string   (** a printed result — the ["result"] field *)
  | Json of string   (** raw JSON — the ["data"] field (stats, metrics);
                         on decode this holds the whole response frame,
                         re-parse it for structure *)

type response = {
  rsp_id : int;                                  (** echoes the request id *)
  rsp : (payload, error_kind * string) result;
  micros : int;                                  (** server-side service time *)
}

val encode_response : response -> string
val decode_response : string -> (response, string) result
