(* The big kernel lock.

   The term-rewriting kernel is a deeply stateful subsystem — symbol own
   values, down values, attributes, the builtin dispatch table — whose
   semantics are a single global session (the paper's engine has exactly
   one).  Rather than pretend those tables can be updated concurrently, all
   entry points into kernel evaluation serialize on this lock; the compiler
   and the compiled-code fast paths (which touch none of that state) run in
   parallel, and only interpreter work — the reference evaluation in the
   fuzz oracle, Kernel_call escapes, interpreter fallbacks — queues here.

   The lock is reentrant per-domain: evaluation recurses into itself
   (a builtin evaluating arguments, a compiled function falling back to the
   interpreter mid-evaluation), so the owning domain passes straight
   through. *)

let mutex = Mutex.create ()

(* Owner domain id, or -1.  Written only while holding [mutex]. *)
let owner = Atomic.make (-1)

let with_lock f =
  let me = (Domain.self () :> int) in
  if Atomic.get owner = me then f ()
  else begin
    (* the acquisition is the interesting part for tracing: a long
       "kernel-lock" span on one track is time spent queued behind the
       interpreter serving another domain.  The uncontended case says
       nothing, so probe with [try_lock] first and only pay for a span
       when the lock is actually held elsewhere. *)
    if not (Mutex.try_lock mutex) then
      Wolf_obs.Trace.with_span ~cat:"lock" "kernel-lock" (fun () ->
          Mutex.lock mutex);
    Atomic.set owner me;
    Fun.protect
      ~finally:(fun () ->
          Atomic.set owner (-1);
          Mutex.unlock mutex)
      f
  end
