(** User-abort signalling (objective F3).

    The Wolfram Notebook lets the user abort a running evaluation without
    killing the session.  The interpreter polls this flag between rewrite
    steps; compiled code polls it at loop headers and function prologues
    (inserted by {!Wolf_compiler.Abort_pass}).

    Threading model: the request flag is one cross-domain [Atomic.t] —
    {!request} from any domain is observed by the next {!check} on every
    domain, never lost or torn.  The {!abort_after}/{!checks_performed}
    machinery exists only for tests and ablations and is domain-local
    (see below). *)

exception Aborted

val request : unit -> unit
(** Ask every running evaluation, on any domain, to stop at its next abort
    check.  Safe to call from a different domain than the one evaluating. *)

val clear : unit -> unit
(** Clear the global request flag and this domain's injected-abort state. *)

val requested : unit -> bool

val check : unit -> unit
(** @raise Aborted if an abort was requested (the request stays set so nested
    evaluations unwind; the session clears it when it regains control). *)

(** {2 Test hooks — domain-local}

    These exist only for tests and the abort-overhead ablation.  Each domain
    has its own poll counter and injection trigger: scheduling an injected
    abort or calling [reset_stats] on one domain can never race with, abort,
    or skew the counts of a compiled function polling on another domain.
    A real cross-domain abort is delivered via {!request} only. *)

val checks_performed : unit -> int
(** Number of [check] calls on the calling domain since its last
    [reset_stats]; used by tests and the abort-overhead ablation to observe
    where checks were inserted. *)

val reset_stats : unit -> unit
(** Zero the calling domain's poll counter. *)

val abort_after : int -> unit
(** Test hook: arrange for the [n]-th subsequent check {e on the calling
    domain} to raise, simulating a user pressing interrupt mid-evaluation.
    The injected abort is confined to the scheduling domain. *)

val with_abort_protection : (unit -> 'a) -> ('a, exn) result
(** Run a thunk, catching [Aborted] (and clearing the flag), so a session can
    return to its prompt with its state intact. *)
