(** Monotonic id supplies (MExpr node ids, SSA variable ids, gensym serials).

    Atomic: [next] is safe to call from any domain and never hands the same
    id to two callers.  There is deliberately no [reset] — resetting a live
    supply while another domain draws from it would let ids repeat, which is
    exactly the class of bug a content-addressed cache or an interned table
    cannot survive.  Per-compilation numbering is achieved by creating a
    fresh supply (see [Wolf_compiler.Lower]), not by rewinding a shared one. *)

type t

val create : unit -> t
val next : t -> int

val current : t -> int
(** Last id handed out (0 if none); observational, for tests. *)
