exception Aborted

(* The user-visible abort request is a single cross-domain atomic: Abort[]
   (or ^C in a notebook) raised on any domain must be seen by compiled code
   polling on every other domain, with no torn or lost update. *)
let flag = Atomic.make false

(* Test hooks (abort_after / checks_performed) are per-domain.  They exist
   only so tests and the abort-overhead ablation can inject an interrupt at
   a deterministic poll and count polls; keeping them domain-local means a
   fuzz worker scheduling an injected abort, or calling [reset_stats], can
   never trip or skew a compiled function polling on another domain. *)
type hooks = {
  mutable count : int;        (* checks performed on this domain *)
  mutable trigger : int;      (* fire an injected abort at this count; -1 = off *)
  mutable injected : bool;    (* sticky: an injected abort is unwinding *)
}

let hooks_key =
  Domain.DLS.new_key (fun () -> { count = 0; trigger = -1; injected = false })

let hooks () = Domain.DLS.get hooks_key

let request () = Atomic.set flag true

let clear () =
  Atomic.set flag false;
  let h = hooks () in
  h.trigger <- -1;
  h.injected <- false

let requested () = Atomic.get flag

let check () =
  Wolf_obs.Profile.note_abort_poll ();
  let h = hooks () in
  h.count <- h.count + 1;
  if h.trigger >= 0 && h.count >= h.trigger then begin
    h.trigger <- -1;
    (* sticky so nested evaluations keep unwinding, like a real request;
       confined to this domain by construction *)
    h.injected <- true
  end;
  if h.injected || Atomic.get flag then raise Aborted

let checks_performed () = (hooks ()).count
let reset_stats () = (hooks ()).count <- 0

let abort_after n =
  let h = hooks () in
  h.trigger <- h.count + n

let with_abort_protection f =
  match f () with
  | v -> Ok v
  | exception Aborted -> clear (); Error Aborted
  | exception e -> clear (); Error e
