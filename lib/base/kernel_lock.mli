(** The big kernel lock: serializes entry into the term-rewriting kernel.

    Kernel state (symbol values, down values, the builtin table) models a
    single global session, so interpreter evaluation is mutually exclusive
    across domains; compilation and compiled-code execution do not take this
    lock and run in parallel.  Reentrant per-domain: nested evaluation on
    the owning domain passes through. *)

val with_lock : (unit -> 'a) -> 'a
