open Wolf_wexpr
module B = Wolf_backends

type outcome =
  | Value of Expr.t
  | Aborted
  | Failed of string

type backend = Threaded | Jit | Wvm | C | Binary | Serve | Tier | Par

let backend_name = function
  | Threaded -> "threaded"
  | Jit -> "jit"
  | Wvm -> "wvm"
  | C -> "c"
  | Binary -> "binary"
  | Serve -> "serve"
  | Tier -> "tier"
  | Par -> "par"

let backends_of_string s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "threaded" :: r -> go (Threaded :: acc) r
    | "jit" :: r -> go (Jit :: acc) r
    | "wvm" :: r -> go (Wvm :: acc) r
    | "c" :: r -> go (C :: acc) r
    | "binary" :: r -> go (Binary :: acc) r
    | "serve" :: r -> go (Serve :: acc) r
    | "tier" :: r -> go (Tier :: acc) r
    | "par" :: r -> go (Par :: acc) r
    | x :: _ ->
      Error
        (Printf.sprintf
           "unknown backend %S (threaded,jit,wvm,c,binary,serve,tier,par)" x)
  in
  go [] parts

type failure = {
  fwhere : string;
  fexpected : string;
  fgot : string;
}

(* ---- outcome comparison --------------------------------------------- *)

let rtol = 1e-9

let close_float x y =
  x = y
  || (Float.is_nan x && Float.is_nan y)
  || Float.abs (x -. y) <= rtol *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))

(* Module-variable uniquification ("m1" -> "m1$8388") leaks into results
   when a failed binding leaves the variable symbolic, and the counter
   value depends on how many evaluations ran before — two interpreter
   runs of one program (e.g. the tier arm's tier-0 call vs the reference)
   differ textually.  Alpha-equivalence is the sound comparison: strip
   the counter, keep the base name and the '$' marker. *)
let strip_uniq name =
  let n = String.length name in
  match String.rindex_opt name '$' with
  | Some i when i > 0 && i < n - 1 ->
    let digits = ref true in
    for j = i + 1 to n - 1 do
      match name.[j] with '0' .. '9' -> () | _ -> digits := false
    done;
    if !digits then String.sub name 0 (i + 1) else name
  | _ -> name

(* normalise packed tensors to nested List expressions so Tensor-vs-List
   results (interpreter and backends box differently) compare structurally,
   and gensym'd symbols up to alpha-equivalence *)
let rec norm e =
  match e with
  | Expr.Tensor t -> norm (Wolf_runtime.Rtval.tensor_to_expr t)
  | Expr.Normal (h, args) -> Expr.Normal (norm h, Array.map norm args)
  | Expr.Sym s ->
    let n = Symbol.name s in
    let n' = strip_uniq n in
    if String.equal n n' then e else Expr.Sym (Symbol.intern n')
  | _ -> e

let rec close_expr a b =
  match a, b with
  | Expr.Real x, Expr.Real y -> close_float x y
  | Expr.Real x, Expr.Int y | Expr.Int y, Expr.Real x ->
    (* a fold can turn 2. * 3 into 6 while the interpreter keeps 6.; treat
       numerically-equal mixed kinds as agreement *)
    close_float x (float_of_int y)
  | Expr.Normal (ha, xa), Expr.Normal (hb, xb) ->
    Array.length xa = Array.length xb
    && close_expr ha hb
    && Array.for_all2 close_expr xa xb
  | _ -> Expr.equal a b

let agree a b =
  match a, b with
  | Value x, Value y -> close_expr (norm x) (norm y)
  | Aborted, Aborted -> true
  | Failed _, Failed _ -> true
  | _ -> false

let outcome_str = function
  | Value e -> Form.input_form e
  | Aborted -> "<aborted>"
  | Failed m -> "<failed: " ^ m ^ ">"

(* ---- running --------------------------------------------------------- *)

let guard f =
  match f () with
  | v -> Value v
  | exception Wolf_base.Abort_signal.Aborted ->
    Wolf_base.Abort_signal.clear ();
    Aborted
  | exception Wolf_base.Errors.Runtime_error fl ->
    Failed (Wolf_base.Errors.describe_failure fl)
  | exception Wolf_base.Errors.Eval_error m -> Failed m
  | exception Wolf_base.Errors.Compile_error m -> Failed ("compile: " ^ m)
  | exception e -> Failed (Printexc.to_string e)

let parse_case (case : Ast.case) =
  let src = Ast.to_source case.Ast.fn in
  match Parser.parse_opt src with
  | Ok fexpr ->
    let args =
      List.map (fun a -> Parser.parse (Ast.arg_source a)) case.Ast.args
    in
    Ok (fexpr, Array.of_list args)
  | Error e -> Error (Printf.sprintf "generated program does not parse: %s" e)

let reference case =
  match parse_case case with
  | Error e -> Failed e
  | Ok (fexpr, args) ->
    guard (fun () -> Wolfram.interpret_expr (Expr.Normal (fexpr, args)))

let fuzz_options level =
  { Wolf_compiler.Options.default with
    Wolf_compiler.Options.opt_level = level;
    verify_each = true;
    use_cache = false }

let target_of = function
  | Threaded -> Wolfram.Threaded
  | Jit -> Wolfram.Jit
  | Wvm -> Wolfram.Bytecode
  | C | Binary | Serve | Tier | Par ->
    Wolfram.Threaded  (* unused; these have own paths *)

let run_native backend level fexpr args =
  guard (fun () ->
      let cf =
        Wolfram.function_compile ~options:(fuzz_options level)
          ~target:(target_of backend) fexpr
      in
      Wolfram.call cf (Array.to_list args))

let run_wvm fexpr args =
  guard (fun () ->
      let w = B.Wvm.compile fexpr in
      B.Wvm.call w args)

(* C export: compile the emitted translation unit with the system compiler
   and run it; scalar params/results only (the driver prints one scalar). *)
(* memoized probe; NOT a [lazy]: concurrent forcing of a lazy from two
   domains raises CamlinternalLazy.Undefined.  0 = unknown, 1 = yes, 2 = no;
   a duplicated probe during the race window is harmless. *)
let have_cc_state = Atomic.make 0

let have_cc () =
  match Atomic.get have_cc_state with
  | 1 -> true
  | 2 -> false
  | _ ->
    let yes = Sys.command "cc --version >/dev/null 2>&1" = 0 in
    Atomic.set have_cc_state (if yes then 1 else 2);
    yes

(* A C-emitted program carries no interpreter, so unlike the in-process
   arms it cannot revert to uncompiled evaluation when the compiled code
   hits a runtime error (Wolfram.call's CompiledCodeFunction fallback).
   When such a program panics cleanly (exit 3/4), the panic is correct
   behaviour iff the very same compiled program also raises on the
   in-process native backend with no fallback — then the arm skips (the
   divergence from the interpreter reference is the fallback itself, by
   design).  If the native run succeeds where the emitted C panicked,
   that is an emitter bug and stays a reported failure. *)
let compiled_panics c args =
  match (B.Native.compile c).Wolf_runtime.Rtval.call
          (Array.map Wolf_runtime.Rtval.of_expr args)
  with
  | _ -> false
  | exception Wolf_base.Abort_signal.Aborted ->
    Wolf_base.Abort_signal.clear ();
    false
  | exception _ -> true

let run_c level fexpr args =
  let compiled =
    match
      Wolf_compiler.Pipeline.compile ~options:(fuzz_options level) ~name:"fz"
        fexpr
    with
    | c -> Ok c
    | exception e -> Error (guard (fun () -> raise e))
  in
  match compiled with
  | Error outcome -> Some outcome
  | Ok c ->
    let rargs = Array.to_list (Array.map Wolf_runtime.Rtval.of_expr args) in
    match B.C_emit.emit_with_driver c ~args:rargs with
    | Error e -> Some (Failed ("compile: " ^ e))
    | Ok emitted ->
      let dir = Filename.temp_file "wolf_fuzz" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let cfile = Filename.concat dir "fz.c" in
      let exe = Filename.concat dir "fz" in
      let oc = open_out cfile in
      output_string oc emitted.B.C_emit.source;
      close_out oc;
      let rm () = ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))) in
      Fun.protect ~finally:rm (fun () ->
          if Sys.command
              (Printf.sprintf "cc -O1 -o %s %s -lm 2>%s.log" exe cfile exe)
             <> 0
          then Some (Failed "compile: cc failed on exported C")
          else begin
            (* the emitted program reports panics on stderr (correct for a
               shipped binary, noise in a campaign): route them away, same
               courtesy as [Compiled_function.quiet] for in-process arms *)
            let ic = Unix.open_process_in (Filename.quote exe ^ " 2>/dev/null") in
            let line = try input_line ic with End_of_file -> "" in
            match Unix.close_process_in ic with
            | Unix.WEXITED 0 ->
              Some (guard (fun () -> Parser.parse (String.trim line)))
            | Unix.WEXITED (3 | 4) when compiled_panics c args -> None
            | Unix.WEXITED n ->
              Some (Failed (Printf.sprintf "exported C exited with code %d" n))
            | Unix.WSIGNALED n | Unix.WSTOPPED n ->
              Some (Failed (Printf.sprintf "exported C killed by signal %d" n))
          end)

(* Binary arm: the full [wolfc build] product, end to end.  Unlike the c
   arm (which bakes the arguments into an emitted [main]), this one goes
   through [emit_standalone] + [C_build.build] and passes the arguments on
   the command line, so the run-time argument parsers, the exit-code
   protocol and the shipped-binary printing all sit inside the tested
   surface.  Arguments travel as their InputForm (strings as raw bytes —
   the driver takes string parameters verbatim from argv). *)

let argv_of_expr = function
  | Expr.Str s -> s
  | e -> Form.input_form e

let run_binary level fexpr args =
  let compiled =
    match
      Wolf_compiler.Pipeline.compile ~options:(fuzz_options level) ~name:"fz"
        fexpr
    with
    | c -> Ok c
    | exception e -> Error (guard (fun () -> raise e))
  in
  match compiled with
  | Error outcome -> Some outcome   (* a compile failure is an outcome *)
  | Ok c ->
    match B.C_emit.emit_standalone c with
    | Error _ -> None
    (* capability gap (e.g. a shape the emitter declares unsupported), not
       a disagreement: the arm skips rather than fabricating a [Failed] the
       reference cannot match *)
    | Ok emitted ->
      let dir = Filename.temp_file "wolf_fuzz_bin" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let exe = Filename.concat dir "fz" in
      let rm () =
        ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))
      in
      Fun.protect ~finally:rm (fun () ->
          match
            B.C_build.build ~cflags:[ "-O1" ]
              ~source:emitted.B.C_emit.source ~output:exe ()
          with
          | Error e ->
            Some (Failed ("compile: cc failed on built binary: " ^ e))
          | Ok () ->
            let argv = Array.append [| exe |] (Array.map argv_of_expr args) in
            (* spawn without a shell (argument bytes must survive verbatim)
               and with stderr routed away: the binary reports panics there,
               which is right for a shipped executable and noise here *)
            let out_r, out_w = Unix.pipe () in
            let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
            let pid = Unix.create_process exe argv Unix.stdin out_w devnull in
            Unix.close out_w;
            Unix.close devnull;
            let ic = Unix.in_channel_of_descr out_r in
            let line = try input_line ic with End_of_file -> "" in
            (* drain the rest so the child never blocks on a full pipe *)
            (try
               while true do
                 ignore (input_line ic)
               done
             with End_of_file -> ());
            let _, status = Unix.waitpid [] pid in
            close_in ic;
            match status with
            | Unix.WEXITED 0 ->
              Some (guard (fun () -> Parser.parse (String.trim line)))
            | Unix.WEXITED 5 -> Some Aborted
            (* 3 runtime panic / 4 OOM: no fallback interpreter inside a
               shipped binary — correct iff the in-process native run of
               the same compiled program panics too (see [compiled_panics]) *)
            | Unix.WEXITED (3 | 4) when compiled_panics c args -> None
            | Unix.WEXITED n ->
              Some (Failed (Printf.sprintf "binary exited with code %d" n))
            | Unix.WSIGNALED n | Unix.WSTOPPED n ->
              Some (Failed (Printf.sprintf "binary killed by signal %d" n)))

(* ---- serve arm: replay through a wolfd daemon ------------------------

   The daemon evaluates with the very same interpreter, so unlike the
   backend arms the property is exact: the printed reply must be
   byte-identical to the reference's InputForm.  What the arm actually
   exercises is everything in between — protocol encode/decode, session
   state swapping, the executor, and concurrent clients (each fuzz worker
   domain keeps its own connection, so a sharded campaign is a concurrent
   protocol test for free). *)

let serve_socket : string option ref = ref None

(* one client per worker domain, reconnected if the socket path changes
   (a new embedded daemon for a new campaign) or the connection died *)
let serve_client_key : (string * Wolf_serve.Client.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let serve_connect path =
  let slot = Domain.DLS.get serve_client_key in
  (match !slot with
   | Some (p, c) when p <> path ->
     (try Wolf_serve.Client.close c with _ -> ());
     slot := None
   | _ -> ());
  match !slot with
  | Some (_, c) -> c
  | None ->
    let c = Wolf_serve.Client.connect path in
    slot := Some (path, c);
    c

let serve_eval source =
  match !serve_socket with
  | None -> failwith "serve backend requested but no daemon socket is set"
  | Some path ->
    (match Wolf_serve.Client.eval_string (serve_connect path) source with
     | r -> r
     | exception _ ->
       (* the daemon may have restarted since the last campaign; one fresh
          reconnect, then let failures surface *)
       (Domain.DLS.get serve_client_key) := None;
       Wolf_serve.Client.eval_string (serve_connect path) source)

let check_serve fexpr args ref_outcome =
  let source = Form.input_form (Expr.Normal (fexpr, args)) in
  let fail fgot = [ { fwhere = "serve"; fexpected = outcome_str ref_outcome; fgot } ] in
  match serve_eval source with
  | exception exn ->
    [ { fwhere = "serve"; fexpected = "a daemon reply";
        fgot = Printexc.to_string exn } ]
  | Error (kind, msg) ->
    (match ref_outcome with
     | Failed _ -> []   (* error reply <-> reference failure: same laxity as
                           Failed-vs-Failed between backends *)
     | _ -> fail (Printf.sprintf "<%s error: %s>" kind msg))
  | Ok "$Aborted" ->
    (match ref_outcome with Aborted -> [] | _ -> fail "$Aborted")
  | Ok printed ->
    (match ref_outcome with
     | Value v when Form.input_form v = printed -> []
     | _ -> fail printed)

let scalar = function Ast.TInt | Ast.TReal | Ast.TBool -> true | _ -> false

let c_applicable (case : Ast.case) =
  scalar case.Ast.fn.Ast.ret
  && List.for_all (fun (_, t) -> scalar t) case.Ast.fn.Ast.params
  (* the C emitter rejects residual function values, and at O0 nothing
     promotes a [Function] literal's closure to a direct call *)
  && not (Ast.uses_closures case.Ast.fn)

(* the standalone driver parses every generated parameter type (integers,
   reals, booleans, raw strings, rank-1 brace lists) but has no escaped
   string printer, so string-returning programs stay out of the arm *)
let binary_applicable (case : Ast.case) =
  case.Ast.fn.Ast.ret <> Ast.TStr
  && not (Ast.uses_closures case.Ast.fn)

(* ---- abort injection -------------------------------------------------

   A compiled call with an abort scheduled after the [k]-th check must
   either land on the reference value (the abort fired after the work, or
   inside the interpreter fallback which re-raises and is itself aborted)
   or observe the abort.  Check counts differ per backend and level — the
   strided abort optimisation exists precisely to change them — so exact
   agreement is not a sound property; membership is. *)
let abort_ks = [ 1; 5; 50 ]

let check_abort ~level fexpr args ref_outcome =
  List.filter_map
    (fun k ->
       let module A = Wolf_base.Abort_signal in
       A.clear ();
       A.abort_after k;
       let got =
         Fun.protect ~finally:(fun () -> A.clear ())
           (fun () -> run_native Threaded level fexpr args)
       in
       match got with
       | Aborted -> None
       | o when agree o ref_outcome -> None
       | o ->
         Some
           { fwhere = Printf.sprintf "abort/threaded/O%d/k=%d" level k;
             fexpected = outcome_str ref_outcome ^ " or <aborted>";
             fgot = outcome_str o })
    abort_ks

(* ---- tier arm: the full promotion lifecycle on every program ---------

   A fresh uncached controller with threshold 1: the first call runs at
   tier 0 (pure interpreter — must match the reference), crossing the
   threshold on its way out; we then wait for the background -O2 compile
   to land (promotion goes through Threaded so the arm needs no
   toolchain) and call again through the promoted closure — which must
   still match.  A promotion that ends [Failed] is legitimate only for
   programs whose compile legitimately fails; those keep interpreting,
   and the second call must still agree. *)

let fresh_tier fexpr =
  let cf =
    Wolfram.tiered ~options:(fuzz_options 2) ~threshold:1
      ~promote_target:Wolfram.Threaded ~name:"fz" fexpr
  in
  cf, Option.get (Wolfram.tier_of cf)

let check_tier fexpr args ref_outcome =
  let cf, t = fresh_tier fexpr in
  let call () = guard (fun () -> Wolfram.call cf (Array.to_list args)) in
  let mismatch where got =
    if agree got ref_outcome then None
    else
      Some
        { fwhere = where; fexpected = outcome_str ref_outcome;
          fgot = outcome_str got }
  in
  let pre = call () in
  let st = Wolfram.Tier.await_promotion ~timeout:60.0 t in
  let post = call () in
  Option.to_list (mismatch "tier/t0" pre)
  @ (match st with
     | Wolfram.Tier.Promoted | Wolfram.Tier.Failed -> []
     | s ->
       [ { fwhere = "tier/promotion"; fexpected = "promoted or failed";
           fgot = "<stuck in state " ^ Wolfram.Tier.state_name s ^ ">" } ])
  @ Option.to_list
      (mismatch
         (Printf.sprintf "tier/%s"
            (Wolfram.Tier.state_name (Wolfram.Tier.state t)))
         post)

(* Abort[] racing a promotion: schedule an abort after the k-th check and
   make the first call; the abort may land mid-tier-0 (call aborts), after
   the result (call agrees), or inside the background compile (promotion
   retreats to Cold and retries).  Whatever the interleaving: the settled
   function must still agree with the reference and the abort flag must
   not leak past the protection scope. *)
let check_tier_abort fexpr args ref_outcome =
  let module A = Wolf_base.Abort_signal in
  List.filter_map
    (fun k ->
       let cf, t = fresh_tier fexpr in
       let call () = guard (fun () -> Wolfram.call cf (Array.to_list args)) in
       A.clear ();
       A.abort_after k;
       let got = Fun.protect ~finally:(fun () -> A.clear ()) call in
       (* settle: a compile the abort shot down retries from Cold here *)
       ignore (Wolfram.Tier.force_promote t);
       let post = call () in
       let leaked = A.requested () in
       if leaked then A.clear ();
       let where what = Printf.sprintf "tier-abort/k=%d/%s" k what in
       if leaked then
         Some
           { fwhere = where "flag"; fexpected = "a clear abort flag";
             fgot = "<leaked abort request>" }
       else if not (agree post ref_outcome) then
         Some
           { fwhere = where (Wolfram.Tier.state_name (Wolfram.Tier.state t));
             fexpected = outcome_str ref_outcome; fgot = outcome_str post }
       else
         match got with
         | Aborted -> None
         | o when agree o ref_outcome -> None
         | o ->
           Some
             { fwhere = where "t0";
               fexpected = outcome_str ref_outcome ^ " or <aborted>";
               fgot = outcome_str o })
    abort_ks

(* ---- par arm: the parallel-loop backend ------------------------------

   Compile once with [parallel_loops] on, then call three ways: jobs=1
   (the runtime's serial degeneration), jobs=4 with measured schedule
   selection (exercises the measurement + cache path), and jobs=4 with a
   forced 16-way dynamic chunking (guarantees cross-domain chunked
   execution even when measurement would pick serial on this host).  All
   three must agree with the interpreter reference.  With [abort] on, the
   injected-abort membership property runs under forced chunking: a
   domain-local abort scheduled after the k-th poll must land on the
   reference value or <aborted> — the caller polls between chunk claims
   and inside the chunks it runs itself, so a mid-loop abort kills the
   parallel-for.  Unsafe loops (non-associative ops, cross-iteration
   reads) are rejected by the pass and simply run serial here — same
   property, no special-casing. *)

let par_options level =
  { (fuzz_options level) with Wolf_compiler.Options.parallel_loops = true }

(* campaign-wide coverage counters, so a par campaign can assert that the
   pass actually fired instead of silently rejecting everything *)
let par_loops_seen = Atomic.make 0
let par_programs_seen = Atomic.make 0

let reset_par_stats () =
  Atomic.set par_loops_seen 0;
  Atomic.set par_programs_seen 0

let par_stats () = (Atomic.get par_programs_seen, Atomic.get par_loops_seen)

let count_parallelized cf =
  match Wolfram.pipeline_of cf with
  | None -> ()
  | Some p ->
    let n =
      List.length
        (List.filter
           (fun (k, v) ->
              String.length k >= 8
              && String.sub k 0 8 = "parloop."
              && String.length v >= 12
              && String.sub v 0 12 = "parallelized")
           p.Wolf_compiler.Pipeline.program.Wolf_compiler.Wir.pmeta)
    in
    if n > 0 then begin
      Atomic.incr par_programs_seen;
      ignore (Atomic.fetch_and_add par_loops_seen n)
    end

let check_par ~level ~abort fexpr args ref_outcome =
  let mismatch where got =
    if agree got ref_outcome then None
    else
      Some
        { fwhere = where; fexpected = outcome_str ref_outcome;
          fgot = outcome_str got }
  in
  match
    Wolfram.function_compile ~options:(par_options level)
      ~target:Wolfram.Threaded fexpr
  with
  | exception e ->
    let msg =
      match e with
      | Wolf_base.Errors.Compile_error m -> "compile: " ^ m
      | Wolf_base.Errors.Eval_error m -> m
      | e -> Printexc.to_string e
    in
    Option.to_list
      (mismatch (Printf.sprintf "par/O%d/compile" level) (Failed msg))
  | cf ->
    count_parallelized cf;
    let module P = Wolf_runtime.Par_runtime in
    let call () = guard (fun () -> Wolfram.call cf (Array.to_list args)) in
    let runs =
      [ (Printf.sprintf "par/O%d/j1" level, fun () -> P.with_jobs 1 call);
        (Printf.sprintf "par/O%d/j4" level, fun () -> P.with_jobs 4 call);
        (Printf.sprintf "par/O%d/j4-dyn16" level,
         fun () ->
           P.with_jobs 4 (fun () ->
               P.with_forced_schedule (P.Dynamic 16) call)) ]
    in
    let fs = List.filter_map (fun (w, r) -> mismatch w (r ())) runs in
    let afs =
      if not abort then []
      else
        List.filter_map
          (fun k ->
             let module A = Wolf_base.Abort_signal in
             A.clear ();
             A.abort_after k;
             let got =
               Fun.protect
                 ~finally:(fun () -> A.clear ())
                 (fun () ->
                    P.with_jobs 4 (fun () ->
                        P.with_forced_schedule (P.Dynamic 8) call))
             in
             match got with
             | Aborted -> None
             | o when agree o ref_outcome -> None
             | o ->
               Some
                 { fwhere = Printf.sprintf "par-abort/O%d/k=%d" level k;
                   fexpected = outcome_str ref_outcome ^ " or <aborted>";
                   fgot = outcome_str o })
          abort_ks
    in
    fs @ afs

(* ---- the oracle ------------------------------------------------------ *)

let check_parsed ?(backends = [ Threaded; Wvm ]) ?(levels = [ 0; 1; 2 ])
    ?(abort = true) ~wvm_ok ~c_ok ?(binary_ok = false) fexpr args =
  Wolfram.init ();
  B.Compiled_function.quiet := true;
  let ref_outcome =
    guard (fun () -> Wolfram.interpret_expr (Expr.Normal (fexpr, args)))
  in
  let mismatch where got =
    if agree got ref_outcome then None
    else
      Some
        { fwhere = where; fexpected = outcome_str ref_outcome;
          fgot = outcome_str got }
  in
  let failures =
    List.concat_map
      (fun b ->
         match b with
         | Wvm ->
           if not wvm_ok then []
           else Option.to_list (mismatch "wvm" (run_wvm fexpr args))
         | C ->
           if not c_ok || not (have_cc ()) then []
           else
             List.filter_map
               (fun lvl ->
                  Option.bind (run_c lvl fexpr args)
                    (mismatch (Printf.sprintf "c/O%d" lvl)))
               levels
         | Binary ->
           if not binary_ok || not (have_cc ()) then []
           else
             List.filter_map
               (fun lvl ->
                  Option.bind (run_binary lvl fexpr args)
                    (mismatch (Printf.sprintf "binary/O%d" lvl)))
               levels
         | Serve -> check_serve fexpr args ref_outcome
         | Tier -> check_tier fexpr args ref_outcome
         | Par ->
           (* the parallel-loops pass is gated on opt_level > 0 *)
           let lvls =
             match List.filter (fun l -> l > 0) levels with
             | [] -> [ 2 ]
             | ls -> ls
           in
           List.concat_map
             (fun lvl -> check_par ~level:lvl ~abort fexpr args ref_outcome)
             lvls
         | Threaded | Jit ->
           List.filter_map
             (fun lvl ->
                mismatch
                  (Printf.sprintf "%s/O%d" (backend_name b) lvl)
                  (run_native b lvl fexpr args))
             levels)
      backends
  in
  let abort_failures =
    if abort && List.mem Threaded backends then
      List.concat_map (fun lvl -> check_abort ~level:lvl fexpr args ref_outcome)
        [ 0; 2 ]
    else []
  in
  let tier_abort_failures =
    if abort && List.mem Tier backends then
      check_tier_abort fexpr args ref_outcome
    else []
  in
  failures @ abort_failures @ tier_abort_failures

let check_case ?backends ?levels ?abort (case : Ast.case) =
  match parse_case case with
  | Error e ->
    [ { fwhere = "parse"; fexpected = "parseable source"; fgot = e } ]
  | Ok (fexpr, args) ->
    let abort =
      match abort with Some a -> a | None -> Gen.has_loops case.Ast.fn
    in
    check_parsed ?backends ?levels ~abort
      ~wvm_ok:
        (not (Ast.uses_strings case.Ast.fn)
         && not (Ast.uses_closures case.Ast.fn))
      ~c_ok:(c_applicable case)
      ~binary_ok:(binary_applicable case) fexpr args
