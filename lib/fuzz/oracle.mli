(** Differential oracle: the interpreter is ground truth; every backend at
    every optimisation level must agree with it (up to a relative numeric
    tolerance), and under injected aborts a compiled call may only return
    the agreed value or raise {!Wolf_base.Abort_signal.Aborted}. *)

type outcome =
  | Value of Wolf_wexpr.Expr.t
  | Aborted
  | Failed of string
  (** Two [Failed] outcomes always agree: the failure path is the soft
      fallback (F2) re-raising through the interpreter, and the exact
      message depends on the backend's entry point. *)

type backend = Threaded | Jit | Wvm | C | Binary | Serve | Tier | Par

val backend_name : backend -> string
val backends_of_string : string -> (backend list, string) result
(** Parse a comma-separated [--backends] value:
    threaded,jit,wvm,c,binary,serve,tier,par.  The [Binary] arm is the
    [wolfc build] product end to end: [C_emit.emit_standalone] +
    [C_build.build], then the executable is spawned with the arguments on
    its command line (strings as raw bytes, everything else in InputForm),
    so the run-time argument parsers and the exit-code protocol are inside
    the tested surface; exit 5 maps to [Aborted], other non-zero exits to
    [Failed] — except a clean runtime panic (exit 3/4), which is accepted
    iff the same compiled program also raises on the in-process native
    backend: a shipped binary carries no interpreter, so it cannot revert
    to uncompiled evaluation the way [Wolfram.call]'s CompiledCodeFunction
    fallback does, and that divergence from the interpreter reference is
    by design (the [C] arm applies the same rule).  The [Tier] arm runs each program
    through a fresh tier controller (threshold 1, promotion via the
    threaded backend): the tier-0 call, the promotion hand-off and the
    promoted call must all agree with the reference; with abort injection
    on, an [Abort[]] is also raced against the background promotion.
    The [Par] arm compiles with [parallel_loops] on and calls under
    jobs=1, jobs=4 (measured schedules) and jobs=4 with forced dynamic
    chunking — all must agree with the reference — and replays the
    injected-abort membership property under forced chunking, so a
    mid-loop abort must kill every chunk worker. *)

val serve_socket : string option ref
(** Socket path of the [wolfd] daemon the [Serve] arm replays through.
    {!Driver.run} sets it when it bootstraps an embedded daemon; point it at
    a running daemon to fuzz an external process.  The serve arm is exact:
    the daemon's printed reply must be byte-identical to the reference's
    InputForm (same interpreter on both sides — the protocol, session
    swapping and executor are what is under test). *)

type failure = {
  fwhere : string;   (** e.g. ["threaded/O2"], ["wvm"], ["abort/threaded/k=5"] *)
  fexpected : string;
  fgot : string;
}

val outcome_str : outcome -> string
val agree : outcome -> outcome -> bool

val reference : Ast.case -> outcome
(** Interpreter run of [fn[args]]. *)

val reset_par_stats : unit -> unit
val par_stats : unit -> int * int
(** [(programs, loops)] where the [Par] arm's compile actually
    parallelised at least one loop (read from the pipeline's ["parloop."]
    pass decisions), accumulated across every check since the last
    {!reset_par_stats}.  A par campaign uses this to assert the pass fired
    rather than silently rejecting every loop. *)

val check_parsed :
  ?backends:backend list -> ?levels:int list -> ?abort:bool ->
  wvm_ok:bool -> c_ok:bool -> ?binary_ok:bool ->
  Wolf_wexpr.Expr.t -> Wolf_wexpr.Expr.t array -> failure list
(** Differential check of an already-parsed [Function[...]] applied to
    [args] — the corpus-replay entry point.  [abort] (default true) also
    runs the abort-injection property; it is sound for any program since
    compiled prologues poll the abort flag.  [binary_ok] (default false)
    gates the [Binary] arm: the program must have a non-string result and
    only parameter shapes the standalone driver can parse from argv. *)

val check_case :
  ?backends:backend list -> ?levels:int list -> ?abort:bool -> Ast.case ->
  failure list
(** Run the case differentially.  Defaults: threaded + WVM (JIT and C shell
    out to a toolchain per program), levels [[0;1;2]], abort injection on
    for programs with loops.  WVM is skipped for programs that use strings
    (not WVM-representable) and C for programs with non-scalar parameters
    or results.  Every compile runs with [verify_each] on and the cache
    off; a verifier or compile failure is reported as a [failure]. *)
