(** Greedy failure-preserving minimiser.

    [shrink ~fails case] repeatedly applies the first one-step reduction
    that still satisfies [fails], until none does.  Every one-step
    reduction strictly decreases the measure [(size, loop-bound sum)]
    lexicographically, so shrinking terminates and the program size is
    monotonically non-growing along the chain — properties the test suite
    checks with qcheck. *)

val candidates : Ast.case -> Ast.case list
(** All one-step reductions: drop a statement, unwrap a loop or an [If]
    into one of its arms, replace an expression by a same-typed strict
    subexpression or (when smaller) a literal, reduce a loop bound to 1,
    drop an unused local/[With] binding or an unused parameter together
    with its argument, and drop a trailing array-argument element. *)

val measure : Ast.case -> int * int
(** [(size of fn + args, sum of loop bounds)]. *)

val shrink : fails:(Ast.case -> bool) -> Ast.case -> Ast.case
(** Greedy fixpoint; returns the input when no reduction preserves the
    failure.  [fails] is typically "the differential oracle reports at
    least one disagreement". *)
