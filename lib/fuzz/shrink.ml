open Ast

(* ---- variable-use scan (for safe binder removal) --------------------- *)

let rec expr_used v e =
  match e with
  | Var (n, _) -> n = v
  | Part (n, i) -> n = v || expr_used v i
  | Int _ | Real _ | Bool _ | Str _ | Arr _ -> false
  | Bin (_, _, a, b) | Cmp (_, _, a, b) | And (a, b) | Or (a, b)
  | StrJoin (a, b) ->
    expr_used v a || expr_used v b
  | Un (_, _, a) | ConstArr (a, _) -> expr_used v a
  | If (_, c, t, f) -> expr_used v c || expr_used v t || expr_used v f
  | MapArr (x, b, a) -> x = v || expr_used v b || expr_used v a
  | FoldMM (_, sv, xv, i, a) ->
    sv = v || xv = v || expr_used v i || expr_used v a

let rec stmt_used v s =
  match s with
  | Assign (n, _, e) -> n = v || expr_used v e
  | PartSet (n, i, e) -> n = v || expr_used v i || expr_used v e
  | PartSetIv (n, i, e) -> n = v || i = v || expr_used v e
  | SIf (c, ts, fs) ->
    expr_used v c || List.exists (stmt_used v) ts || List.exists (stmt_used v) fs
  | While (n, _, body) -> n = v || List.exists (stmt_used v) body
  | DoLoop (n, _, body) -> n = v || List.exists (stmt_used v) body

let fn_uses fn v =
  List.exists (fun l -> expr_used v l.linit) (fn.withs @ fn.locals)
  || List.exists (stmt_used v) fn.body
  || expr_used v fn.result

(* whether any statement writes [v] (assignment, indexed store, or use as a
   loop counter/iterator) — inlining a literal for such a name is unsound *)
let rec assigns v s =
  match s with
  | Assign (n, _, _) -> n = v
  | PartSet (n, _, _) | PartSetIv (n, _, _) -> n = v
  | SIf (_, ts, fs) -> List.exists (assigns v) ts || List.exists (assigns v) fs
  | While (n, _, body) | DoLoop (n, _, body) ->
    n = v || List.exists (assigns v) body

let fn_assigns fn v = List.exists (assigns v) fn.body

(* whether [v] appears in a [Part] target position, where only a variable
   name (not a substituted literal) is representable *)
let rec expr_part_target v e =
  match e with
  | Part (n, i) -> n = v || expr_part_target v i
  | Int _ | Real _ | Bool _ | Str _ | Arr _ | Var _ -> false
  | Bin (_, _, a, b) | Cmp (_, _, a, b) | And (a, b) | Or (a, b)
  | StrJoin (a, b) ->
    expr_part_target v a || expr_part_target v b
  | Un (_, _, a) | ConstArr (a, _) -> expr_part_target v a
  | If (_, c, t, f) ->
    expr_part_target v c || expr_part_target v t || expr_part_target v f
  | MapArr (_, b, a) -> expr_part_target v b || expr_part_target v a
  | FoldMM (_, _, _, i, a) -> expr_part_target v i || expr_part_target v a

let rec stmt_part_target v s =
  match s with
  | Assign (_, _, e) -> expr_part_target v e
  | PartSet (n, i, e) -> n = v || expr_part_target v i || expr_part_target v e
  | PartSetIv (n, i, e) -> n = v || i = v || expr_part_target v e
  | SIf (c, ts, fs) ->
    expr_part_target v c
    || List.exists (stmt_part_target v) ts
    || List.exists (stmt_part_target v) fs
  | While (_, _, body) | DoLoop (_, _, body) ->
    List.exists (stmt_part_target v) body

let fn_part_target fn v =
  List.exists (fun l -> expr_part_target v l.linit) (fn.withs @ fn.locals)
  || List.exists (stmt_part_target v) fn.body
  || expr_part_target v fn.result

let rec subst_expr v r e =
  match e with
  | Var (n, _) when n = v -> r
  | Int _ | Real _ | Bool _ | Str _ | Arr _ | Var _ -> e
  | Bin (op, t, a, b) -> Bin (op, t, subst_expr v r a, subst_expr v r b)
  | Un (op, t, a) -> Un (op, t, subst_expr v r a)
  | Cmp (op, t, a, b) -> Cmp (op, t, subst_expr v r a, subst_expr v r b)
  | And (a, b) -> And (subst_expr v r a, subst_expr v r b)
  | Or (a, b) -> Or (subst_expr v r a, subst_expr v r b)
  | If (t, c, x, y) ->
    If (t, subst_expr v r c, subst_expr v r x, subst_expr v r y)
  | Part (n, i) -> Part (n, subst_expr v r i)
  | StrJoin (a, b) -> StrJoin (subst_expr v r a, subst_expr v r b)
  | ConstArr (a, k) -> ConstArr (subst_expr v r a, k)
  | MapArr (x, b, a) ->
    MapArr (x, (if x = v then b else subst_expr v r b), subst_expr v r a)
  | FoldMM (op, sv, xv, i, a) ->
    FoldMM (op, sv, xv, subst_expr v r i, subst_expr v r a)

let rec subst_stmt v r s =
  match s with
  | Assign (n, t, e) -> Assign (n, t, subst_expr v r e)
  | PartSet (n, i, e) -> PartSet (n, subst_expr v r i, subst_expr v r e)
  | PartSetIv (n, i, e) -> PartSetIv (n, i, subst_expr v r e)
  | SIf (c, ts, fs) ->
    SIf (subst_expr v r c, List.map (subst_stmt v r) ts,
         List.map (subst_stmt v r) fs)
  | While (n, k, body) -> While (n, k, List.map (subst_stmt v r) body)
  | DoLoop (n, k, body) -> DoLoop (n, k, List.map (subst_stmt v r) body)

let subst_fn v r fn =
  { fn with
    withs = List.map (fun l -> { l with linit = subst_expr v r l.linit }) fn.withs;
    locals = List.map (fun l -> { l with linit = subst_expr v r l.linit }) fn.locals;
    body = List.map (subst_stmt v r) fn.body;
    result = subst_expr v r fn.result }

let is_literal = function
  | Int _ | Real _ | Bool _ | Str _ | Arr _ -> true
  | Var _ | Bin _ | Un _ | Cmp _ | And _ | Or _ | If _ | Part _ | StrJoin _
  | ConstArr _ | MapArr _ | FoldMM _ -> false

(* ---- expression reductions ------------------------------------------ *)

let default_lit = function
  | TInt -> Int 0
  | TReal -> Real 0.0
  | TBool -> Bool true
  | TStr -> Str "a"
  | TArr -> Arr [ 0 ]

(* strict one-step reductions of [e], all of the same type and all of
   strictly smaller node count *)
let rec expr_variants e =
  let t = expr_ty e in
  let sub_same xs = List.filter (fun s -> expr_ty s = t) xs in
  let lit =
    let l = default_lit t in
    if expr_size e > expr_size l then [ l ] else []
  in
  let direct =
    match e with
    | Int _ | Real _ | Bool _ | Str _ | Var _ -> []
    | Arr xs -> if List.length xs > 1 then [ Arr [ List.hd xs ] ] else []
    | Bin (_, _, a, b) | Cmp (_, _, a, b) | And (a, b) | Or (a, b)
    | StrJoin (a, b) ->
      sub_same [ a; b ]
    | Un (_, _, a) | ConstArr (a, _) -> sub_same [ a ]
    | Part (_, i) -> sub_same [ i ]
    | If (_, _, a, b) -> sub_same [ a; b ]
    | MapArr (_, _, a) -> sub_same [ a ]
    | FoldMM (_, _, _, i, _) -> sub_same [ i ]
  in
  let rebuilt =
    match e with
    | Int _ | Real _ | Bool _ | Str _ | Arr _ | Var _ -> []
    | Bin (op, t, a, b) ->
      List.map (fun a' -> Bin (op, t, a', b)) (expr_variants a)
      @ List.map (fun b' -> Bin (op, t, a, b')) (expr_variants b)
    | Un (op, t, a) -> List.map (fun a' -> Un (op, t, a')) (expr_variants a)
    | Cmp (op, t, a, b) ->
      List.map (fun a' -> Cmp (op, t, a', b)) (expr_variants a)
      @ List.map (fun b' -> Cmp (op, t, a, b')) (expr_variants b)
    | And (a, b) ->
      List.map (fun a' -> And (a', b)) (expr_variants a)
      @ List.map (fun b' -> And (a, b')) (expr_variants b)
    | Or (a, b) ->
      List.map (fun a' -> Or (a', b)) (expr_variants a)
      @ List.map (fun b' -> Or (a, b')) (expr_variants b)
    | If (t, c, x, y) ->
      List.map (fun c' -> If (t, c', x, y)) (expr_variants c)
      @ List.map (fun x' -> If (t, c, x', y)) (expr_variants x)
      @ List.map (fun y' -> If (t, c, x, y')) (expr_variants y)
    | Part (v, i) -> List.map (fun i' -> Part (v, i')) (expr_variants i)
    | StrJoin (a, b) ->
      List.map (fun a' -> StrJoin (a', b)) (expr_variants a)
      @ List.map (fun b' -> StrJoin (a, b')) (expr_variants b)
    | ConstArr (a, k) -> List.map (fun a' -> ConstArr (a', k)) (expr_variants a)
    | MapArr (x, b, a) ->
      List.map (fun b' -> MapArr (x, b', a)) (expr_variants b)
      @ List.map (fun a' -> MapArr (x, b, a')) (expr_variants a)
    | FoldMM (op, sv, xv, i, a) ->
      List.map (fun i' -> FoldMM (op, sv, xv, i', a)) (expr_variants i)
      @ List.map (fun a' -> FoldMM (op, sv, xv, i, a')) (expr_variants a)
  in
  lit @ direct @ rebuilt

(* ---- statement reductions -------------------------------------------- *)

(* each variant of a statement is a replacement *list* of statements:
   [[]] drops it, a loop body unwraps it, … *)
let rec stmt_variants s : stmt list list =
  let drop = [ [] ] in
  match s with
  | Assign (v, t, e) ->
    drop @ List.map (fun e' -> [ Assign (v, t, e') ]) (expr_variants e)
  | PartSet (v, i, e) ->
    drop
    @ List.map (fun i' -> [ PartSet (v, i', e) ]) (expr_variants i)
    @ List.map (fun e' -> [ PartSet (v, i, e') ]) (expr_variants e)
  | PartSetIv (v, i, e) ->
    drop @ List.map (fun e' -> [ PartSetIv (v, i, e') ]) (expr_variants e)
  | SIf (c, ts, fs) ->
    drop @ [ ts ]
    @ (if fs <> [] then [ fs ] else [])
    @ List.map (fun c' -> [ SIf (c', ts, fs) ]) (expr_variants c)
    @ List.map (fun ts' -> [ SIf (c, ts', fs) ]) (stmts_variants ts)
    @ List.map (fun fs' -> [ SIf (c, ts, fs') ]) (stmts_variants fs)
  | While (v, k, body) ->
    drop @ [ body ]
    @ (if k > 1 then [ [ While (v, 1, body) ] ] else [])
    @ List.map (fun b' -> [ While (v, k, b') ]) (stmts_variants body)
  | DoLoop (v, k, body) ->
    drop
    @ (if List.exists (stmt_used v) body then [] else [ body ])
    @ (if k > 1 then [ [ DoLoop (v, 1, body) ] ] else [])
    @ List.map (fun b' -> [ DoLoop (v, k, b') ]) (stmts_variants body)

and stmts_variants ss : stmt list list =
  (* replace one statement at a time by each of its variants *)
  let rec go before after =
    match after with
    | [] -> []
    | s :: rest ->
      List.map (fun repl -> List.rev_append before (repl @ rest)) (stmt_variants s)
      @ go (s :: before) rest
  in
  go [] ss

(* ---- whole-case reductions ------------------------------------------- *)

let measure (case : case) =
  let rec bounds_stmt s =
    match s with
    | While (_, k, body) | DoLoop (_, k, body) ->
      k + List.fold_left (fun a s -> a + bounds_stmt s) 0 body
    | SIf (_, ts, fs) ->
      List.fold_left (fun a s -> a + bounds_stmt s) 0 (ts @ fs)
    | Assign _ | PartSet _ | PartSetIv _ -> 0
  in
  let args_size =
    List.fold_left (fun a e -> a + Ast.expr_size e) 0 case.args
  in
  ( Ast.size case.fn + args_size,
    List.fold_left (fun a s -> a + bounds_stmt s) 0 case.fn.body )

let candidates (case : case) : case list =
  let fn = case.fn in
  let with_fn fn' = { case with fn = fn' } in
  let result_vs =
    List.map (fun r -> with_fn { fn with result = r }) (expr_variants fn.result)
  in
  let body_vs =
    List.map (fun b -> with_fn { fn with body = b }) (stmts_variants fn.body)
  in
  let binding_vs mk get =
    (* drop an unused binding, or shrink one binding's init *)
    let ls = get fn in
    List.concat
      (List.mapi
         (fun i l ->
            let others = List.filteri (fun j _ -> j <> i) ls in
            let fn_without = mk fn others in
            let dropped =
              if fn_uses fn_without l.lname then []
              else [ with_fn fn_without ]
            in
            dropped
            @ List.map
                (fun e' ->
                   with_fn
                     (mk fn
                        (List.mapi (fun j l' -> if j = i then { l' with linit = e' } else l')
                           ls)))
                (expr_variants l.linit))
         ls)
  in
  let local_vs = binding_vs (fun fn ls -> { fn with locals = ls }) (fun f -> f.locals) in
  let with_vs = binding_vs (fun fn ls -> { fn with withs = ls }) (fun f -> f.withs) in
  (* inline a literal-initialised binding into its uses and drop it; for
     mutable (Module) bindings only when nothing ever writes the name, and
     never when the name is a Part/indexed-store target (a literal is not
     representable there).  This collapses Var chains the pure drop/replace
     reductions cannot (replacing a Var by an equal-sized literal never
     strictly shrinks, so greedy shrinking would otherwise get stuck). *)
  let inline_vs mk get ~mutable_ =
    let ls = get fn in
    List.concat
      (List.mapi
         (fun i l ->
            if not (is_literal l.linit) then []
            else if (mutable_ && fn_assigns fn l.lname)
                 || fn_part_target fn l.lname then []
            else
              let others = List.filteri (fun j _ -> j <> i) ls in
              [ with_fn (subst_fn l.lname l.linit (mk fn others)) ])
         ls)
  in
  let inline_local_vs =
    inline_vs (fun fn ls -> { fn with locals = ls }) (fun f -> f.locals)
      ~mutable_:true
  in
  let inline_with_vs =
    inline_vs (fun fn ls -> { fn with withs = ls }) (fun f -> f.withs)
      ~mutable_:false
  in
  (* likewise inline a call argument (always a literal) for its parameter *)
  let inline_param_vs =
    List.concat
      (List.mapi
         (fun i (p, _) ->
            let arg = List.nth case.args i in
            if not (is_literal arg) || fn_assigns fn p || fn_part_target fn p
            then []
            else
              let fn' =
                { fn with params = List.filteri (fun j _ -> j <> i) fn.params }
              in
              [ { fn = subst_fn p arg fn';
                  args = List.filteri (fun j _ -> j <> i) case.args } ])
         fn.params)
  in
  let param_vs =
    List.concat
      (List.mapi
         (fun i (p, _) ->
            let fn' = { fn with params = List.filteri (fun j _ -> j <> i) fn.params } in
            if fn_uses fn' p then []
            else
              [ { fn = fn'; args = List.filteri (fun j _ -> j <> i) case.args } ])
         fn.params)
  in
  let arg_vs =
    List.concat
      (List.mapi
         (fun i a ->
            match a with
            | Arr xs when List.length xs > 1 ->
              [ { case with
                  args =
                    List.mapi (fun j a' -> if j = i then Arr [ List.hd xs ] else a')
                      case.args } ]
            | _ -> [])
         case.args)
  in
  result_vs @ body_vs @ local_vs @ with_vs @ param_vs @ arg_vs
  @ inline_local_vs @ inline_with_vs @ inline_param_vs

let rec shrink ~fails case =
  let m = measure case in
  let next =
    List.find_opt
      (fun c -> measure c < m && fails c)
      (candidates case)
  in
  match next with
  | Some c -> shrink ~fails c
  | None -> case
