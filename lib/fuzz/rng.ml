(* splitmix64 (Steele, Lea & Flood 2014) — tiny, fast, and trivially
   splittable, which is exactly what per-program substreams need. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }

let split t i =
  { state = mix (Int64.add (next t) (Int64.of_int (0x632BE59B + (i * 2) + 1))) }

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let range t lo hi = lo + int t (hi - lo + 1)
let bool t = Int64.logand (next t) 1L = 1L

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (u /. 9007199254740992.0)

let chance t p = float t 1.0 < p
let pick t xs = List.nth xs (int t (List.length xs))

let weighted t wxs =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 wxs in
  if total <= 0 then invalid_arg "Rng.weighted";
  let k = int t total in
  let rec go k = function
    | [] -> assert false
    | (w, x) :: rest -> if k < w then x else go (k - w) rest
  in
  go k wxs
