(** Typed mini-AST for generated Wolfram-subset programs.

    The fuzzer generates, shrinks and persists programs in this form; the
    oracle renders them to concrete Wolfram source ({!to_source}) and parses
    that with the production {!Wolf_wexpr.Parser}, so the fuzz pipeline
    exercises exactly the text a user would write. *)

type ty = TInt | TReal | TBool | TStr | TArr
(** [TArr] is a rank-1 ["PackedArray"["Integer64", 1]]. *)

type expr =
  | Int of int
  | Real of float
  | Bool of bool
  | Str of string                      (** non-empty ASCII *)
  | Arr of int list                    (** non-empty literal list *)
  | Var of string * ty
  | Bin of string * ty * expr * expr   (** op, result type; ["/"] on reals is
                                           rendered with a guarded divisor *)
  | Un of string * ty * expr           (** Abs, Minus, Sin, Cos, SqrtAbs,
                                           EvenQ, Not, StringLength, Length,
                                           Total, Reverse, Chars *)
  | Cmp of string * ty * expr * expr   (** comparison; [ty] is operand type *)
  | And of expr * expr
  | Or of expr * expr
  | If of ty * expr * expr * expr
  | Part of string * expr              (** [v[[1 + Mod[idx, Length[v]]]]] *)
  | StrJoin of expr * expr
  | ConstArr of expr * int             (** [ConstantArray[e, k]], k >= 1 *)
  | MapArr of string * expr * expr     (** [Map[Function[{x}, body], arr]];
                                           body is [TInt] and may use [x] *)
  | FoldMM of string * string * string * expr * expr
      (** [FoldMM (op, s, x, init, arr)] renders
          [Fold[Function[{s, x}, op[s, x]], init, arr]]; [op] is [Min]/[Max] *)

type stmt =
  | Assign of string * ty * expr
  | PartSet of string * expr * expr    (** clamped index, int value *)
  | PartSetIv of string * string * expr
      (** [v[[i]] = e] with a raw counter index the generator keeps in
          bounds — the store shape the parallel-loops pass recognises *)
  | SIf of expr * stmt list * stmt list
  | While of string * int * stmt list  (** dedicated counter, constant bound *)
  | DoLoop of string * int * stmt list (** [Do[body, {i, k}]] *)

type local = { lname : string; lty : ty; linit : expr }

type fn = {
  params : (string * ty) list;
  withs : local list;    (** immutable bindings, rendered as [With] *)
  locals : local list;   (** mutable bindings, rendered as [Module] *)
  body : stmt list;
  result : expr;
  ret : ty;
}

type case = {
  fn : fn;
  args : expr list;      (** literals matching [fn.params] *)
}

val expr_ty : expr -> ty
val ty_name : ty -> string
(** The [Typed] annotation string for a parameter of this type. *)

val to_source : fn -> string
(** Render to parseable Wolfram source. *)

val arg_source : expr -> string
(** Render one argument literal. *)

val size : fn -> int
(** Node count (statements + expressions); the shrinker must never grow it. *)

val expr_size : expr -> int

val uses_strings : fn -> bool
(** True when the program touches strings anywhere — such programs are not
    WVM-representable (L1). *)

val uses_closures : fn -> bool
(** True when the program contains a [Function] literal ([MapArr]/[FoldMM]) —
    the legacy bytecode compiler has no function values, so such programs
    are not WVM-representable either. *)
