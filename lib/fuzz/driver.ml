open Wolf_wexpr

type config = {
  seed : int;
  count : int;
  max_size : int;
  strings : bool;
  backends : Oracle.backend list;
  levels : int list;
  corpus_dir : string option;
  log : string -> unit;
  jobs : int;  (** domains to shard the campaign over; 1 = sequential *)
}

let default_config =
  { seed = 0; count = 200; max_size = 60; strings = true;
    backends = [ Oracle.Threaded; Oracle.Wvm ]; levels = [ 0; 1; 2 ];
    corpus_dir = None; log = ignore; jobs = 1 }

type report = {
  generated : int;
  disagreements : int;
  failures : (int * Ast.case * Oracle.failure list) list;
  written : string list;
  par_programs : int;
  par_loops : int;
}

(* program i depends on (seed, i) only: regenerating one program never
   requires replaying the campaign up to it *)
let case_for cfg i =
  let rng = Rng.split (Rng.create cfg.seed) i in
  Gen.case
    ~config:{ Gen.max_size = cfg.max_size; strings = cfg.strings }
    rng

(* ---- corpus persistence ---------------------------------------------- *)

let write_corpus ~dir ~name ~note (case : Ast.case) =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".wl") in
  let oc = open_out path in
  Printf.fprintf oc "(* %s *)\n" note;
  Printf.fprintf oc "(* args: {%s} *)\n"
    (String.concat ", " (List.map Ast.arg_source case.Ast.args));
  if Ast.uses_strings case.Ast.fn || Ast.uses_closures case.Ast.fn then
    Printf.fprintf oc "(* wvm: false *)\n";
  output_string oc (Ast.to_source case.Ast.fn);
  output_char oc '\n';
  close_out oc;
  path

type corpus_entry = {
  ce_path : string;
  ce_source : string;
  ce_args : Expr.t list;
  ce_wvm : bool;
  ce_note : string;
}

let strip_prefix ~prefix s =
  if String.length s >= String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then Some (String.sub s (String.length prefix)
               (String.length s - String.length prefix))
  else None

let read_corpus_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  let lines = String.split_on_char '\n' text in
  let note = ref "" and args = ref None and wvm = ref true in
  let rec headers = function
    | line :: rest
      when String.length (String.trim line) >= 2
           && String.length (String.trim line) >= 4
           && String.sub (String.trim line) 0 2 = "(*" ->
      let body = String.trim line in
      let inner = String.trim (String.sub body 2 (String.length body - 4)) in
      (match strip_prefix ~prefix:"args:" inner with
       | Some a -> args := Some (String.trim a)
       | None ->
         (match strip_prefix ~prefix:"wvm:" inner with
          | Some w -> wvm := String.trim w <> "false"
          | None -> if !note = "" then note := inner));
      headers rest
    | rest -> rest
  in
  let body_lines = headers lines in
  let source = String.trim (String.concat "\n" body_lines) in
  match !args with
  | None -> Error (path ^ ": missing (* args: {...} *) header")
  | Some a ->
    (match Parser.parse_opt a with
     | Error e -> Error (Printf.sprintf "%s: bad args %S: %s" path a e)
     | Ok (Expr.Normal (Expr.Sym l, items))
       when Symbol.name l = "List" ->
       Ok { ce_path = path; ce_source = source;
            ce_args = Array.to_list items; ce_wvm = !wvm; ce_note = !note }
     | Ok _ -> Error (path ^ ": args header is not a {…} list"))

let read_corpus_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".wl")
  |> List.sort compare
  |> List.map (fun f ->
      match read_corpus_file (Filename.concat dir f) with
      | Ok e -> e
      | Error m -> failwith m)

let scalar_param = function
  | Expr.Normal (Expr.Sym t, [| _; tye |]) when Symbol.name t = "Typed" ->
    (match tye with
     | Expr.Str ("MachineInteger" | "Integer64" | "Real64" | "Boolean") -> true
     | _ -> false)
  | _ -> false

(* parameter shapes the standalone driver can parse from argv: the scalar
   set plus raw strings and rank-1 packed arrays as brace lists *)
let binary_param = function
  | Expr.Normal (Expr.Sym t, [| _; tye |]) when Symbol.name t = "Typed" ->
    (match tye with
     | Expr.Str
         ("MachineInteger" | "Integer64" | "Real64" | "Boolean" | "String") ->
       true
     | Expr.Normal
         (Expr.Str "PackedArray", [| Expr.Str ("Integer64" | "Real64"); Expr.Int 1 |])
       ->
       true
     | _ -> false)
  | _ -> false

let check_entry ?backends ?levels entry =
  match Parser.parse_opt entry.ce_source with
  | Error e ->
    [ { Oracle.fwhere = "parse"; fexpected = "parseable corpus program";
        fgot = e } ]
  | Ok fexpr ->
    let has_function_literal =
      (* an inner Function value is not representable in standalone C *)
      let rec go = function
        | Expr.Normal (Expr.Sym h, _) when Symbol.name h = "Function" -> true
        | Expr.Normal (h, args) -> go h || Array.exists go args
        | _ -> false
      in
      match fexpr with
      | Expr.Normal (_, [| _; body |]) -> go body
      | _ -> false
    in
    let c_ok =
      (match fexpr with
       | Expr.Normal (_, [| Expr.Normal (_, params); _ |]) ->
         Array.for_all scalar_param params
       | _ -> false)
      && not has_function_literal
    in
    let binary_ok =
      (match fexpr with
       | Expr.Normal (_, [| Expr.Normal (_, params); _ |]) ->
         Array.for_all binary_param params
       | _ -> false)
      && not has_function_literal
    in
    Oracle.check_parsed ?backends ?levels ~wvm_ok:entry.ce_wvm ~c_ok ~binary_ok
      fexpr (Array.of_list entry.ce_args)

(* ---- the campaign ----------------------------------------------------- *)

(* Per-program work unit: generate, check, and (on disagreement) shrink.
   Everything here depends on (seed, i) only, so the array of outcomes is
   the same whatever the domain count; all IO (progress, corpus writes) is
   kept out of the workers and done in the deterministic merge below. *)
let check_one cfg ~progress i =
  let case = case_for cfg i in
  let check c = Oracle.check_case ~backends:cfg.backends ~levels:cfg.levels c in
  let outcome =
    match check case with
    | [] -> None
    | fs ->
      progress
        (Printf.sprintf "program %d DISAGREES (%s); shrinking …" i
           (String.concat ", " (List.map (fun f -> f.Oracle.fwhere) fs)));
      let small = Shrink.shrink ~fails:(fun c -> check c <> []) case in
      Some (small, check small)
  in
  progress "";  (* tick *)
  outcome

let run cfg =
  (* Force one-time initialisation on this domain before sharding: kernel
     builtins, the stdlib declarations, the cc probe.  Workers then only
     touch state behind the locks/atomics of the domain-safe core. *)
  Wolfram.init ();
  (* the serve arm needs a daemon: bootstrap an embedded one unless the
     caller already pointed Oracle.serve_socket at an external process *)
  let embedded =
    if List.mem Oracle.Serve cfg.backends && !Oracle.serve_socket = None
    then begin
      let path =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "wolfd-fuzz-%d.sock" (Unix.getpid ()))
      in
      let srv =
        Wolf_serve.Server.start
          (Wolf_serve.Server.default_config ~socket_path:path ())
      in
      Oracle.serve_socket := Some path;
      cfg.log (Printf.sprintf "embedded wolfd on %s" path);
      Some srv
    end
    else None
  in
  let teardown () =
    (* join the tier arm's background compile domains so a campaign never
       leaks domains into the caller (tests run many campaigns in-process) *)
    if List.mem Oracle.Tier cfg.backends then Wolfram.Tier.shutdown ();
    match embedded with
    | Some srv ->
      Oracle.serve_socket := None;
      Wolf_serve.Server.stop srv
    | None -> ()
  in
  Fun.protect ~finally:teardown @@ fun () ->
  Oracle.reset_par_stats ();
  let done_count = Atomic.make 0 in
  let progress msg =
    if msg = "" then begin
      let d = Atomic.fetch_and_add done_count 1 + 1 in
      if d mod 50 = 0 then
        cfg.log (Printf.sprintf "  … %d/%d checked" d cfg.count)
    end
    else cfg.log msg
  in
  let outcomes =
    Wolf_parallel.Pool.map ~jobs:(max 1 cfg.jobs) cfg.count
      (check_one cfg ~progress)
  in
  (* deterministic merge, in program order *)
  let failures = ref [] in
  let written = ref [] in
  let disagreements = ref 0 in
  Array.iteri
    (fun i outcome ->
       match outcome with
       | None -> ()
       | Some (small, small_fs) ->
         incr disagreements;
         failures := (i, small, small_fs) :: !failures;
         (match cfg.corpus_dir with
          | None -> ()
          | Some dir ->
            let f0 =
              match small_fs with f :: _ -> f.Oracle.fwhere | [] -> "unknown"
            in
            let path =
              write_corpus ~dir
                ~name:(Printf.sprintf "shrunk-seed%d-%d" cfg.seed i)
                ~note:(Printf.sprintf "fuzz: %s disagrees (seed %d/%d)" f0
                         cfg.seed i)
                small
            in
            written := path :: !written;
            cfg.log ("  wrote " ^ path)))
    outcomes;
  let par_programs, par_loops = Oracle.par_stats () in
  if List.mem Oracle.Par cfg.backends then
    cfg.log
      (Printf.sprintf "  par: %d loop(s) parallelised across %d program(s)"
         par_loops par_programs);
  { generated = cfg.count; disagreements = !disagreements;
    failures = List.rev !failures; written = List.rev !written;
    par_programs; par_loops }
