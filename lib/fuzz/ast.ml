type ty = TInt | TReal | TBool | TStr | TArr

type expr =
  | Int of int
  | Real of float
  | Bool of bool
  | Str of string
  | Arr of int list
  | Var of string * ty
  | Bin of string * ty * expr * expr
  | Un of string * ty * expr
  | Cmp of string * ty * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | If of ty * expr * expr * expr
  | Part of string * expr
  | StrJoin of expr * expr
  | ConstArr of expr * int
  | MapArr of string * expr * expr
  | FoldMM of string * string * string * expr * expr

type stmt =
  | Assign of string * ty * expr
  | PartSet of string * expr * expr
  | PartSetIv of string * string * expr
  | SIf of expr * stmt list * stmt list
  | While of string * int * stmt list
  | DoLoop of string * int * stmt list

type local = { lname : string; lty : ty; linit : expr }

type fn = {
  params : (string * ty) list;
  withs : local list;
  locals : local list;
  body : stmt list;
  result : expr;
  ret : ty;
}

type case = {
  fn : fn;
  args : expr list;
}

let expr_ty = function
  | Int _ -> TInt
  | Real _ -> TReal
  | Bool _ -> TBool
  | Str _ -> TStr
  | Arr _ -> TArr
  | Var (_, t) -> t
  | Bin (_, t, _, _) -> t
  | Un (_, t, _) -> t
  | Cmp _ | And _ | Or _ -> TBool
  | If (t, _, _, _) -> t
  | Part _ -> TInt
  | StrJoin _ -> TStr
  | ConstArr _ -> TArr
  | MapArr _ -> TArr
  | FoldMM _ -> TInt

let ty_name = function
  | TInt -> {|"MachineInteger"|}
  | TReal -> {|"Real64"|}
  | TBool -> {|"Boolean"|}
  | TStr -> {|"String"|}
  | TArr -> {|"PackedArray"["Integer64", 1]|}

(* ---- rendering ------------------------------------------------------ *)

let real_lit r =
  (* a parseable literal that round-trips: always keep a decimal point *)
  if Float.is_integer r && Float.abs r < 1e15 then Printf.sprintf "%.1f" r
  else Printf.sprintf "%.17g" r

(* string literal the lexer round-trips byte-for-byte: escape only what it
   un-escapes (double quote, backslash, newline, tab) and pass every other
   byte raw — OCaml's [%S] would write non-ASCII bytes as decimal escapes,
   which the lexer reads as literal digits *)
let str_lit s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b {|\"|}
       | '\\' -> Buffer.add_string b {|\\|}
       | '\n' -> Buffer.add_string b {|\n|}
       | '\t' -> Buffer.add_string b {|\t|}
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let rec expr_src e =
  match e with
  | Int i -> if i < 0 then Printf.sprintf "(%d)" i else string_of_int i
  | Real r -> if r < 0.0 then Printf.sprintf "(%s)" (real_lit r) else real_lit r
  | Bool b -> if b then "True" else "False"
  | Str s -> str_lit s
  | Arr xs -> "{" ^ String.concat ", " (List.map string_of_int xs) ^ "}"
  | Var (v, _) -> v
  | Bin (op, _, a, b) -> bin_src op a b
  | Un (op, _, a) -> un_src op a
  | Cmp (op, _, a, b) -> Printf.sprintf "(%s %s %s)" (expr_src a) op (expr_src b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (expr_src a) (expr_src b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (expr_src a) (expr_src b)
  | If (_, c, t, f) ->
    Printf.sprintf "If[%s, %s, %s]" (expr_src c) (expr_src t) (expr_src f)
  | Part (v, i) -> Printf.sprintf "%s[[%s]]" v (clamped_index v i)
  | StrJoin (a, b) -> Printf.sprintf "(%s <> %s)" (expr_src a) (expr_src b)
  | ConstArr (e, k) -> Printf.sprintf "ConstantArray[%s, %d]" (expr_src e) k
  | MapArr (x, b, a) ->
    Printf.sprintf "Map[Function[{%s}, %s], %s]" x (expr_src b) (expr_src a)
  | FoldMM (op, s, x, init, a) ->
    Printf.sprintf "Fold[Function[{%s, %s}, %s[%s, %s]], %s, %s]" s x op s x
      (expr_src init) (expr_src a)

and clamped_index v i =
  (* always in [1, Length[v]]: arrays are non-empty by construction *)
  Printf.sprintf "1 + Mod[%s, Length[%s]]" (expr_src i) v

and bin_src op a b =
  match op with
  | "+" | "-" | "*" ->
    Printf.sprintf "(%s %s %s)" (expr_src a) op (expr_src b)
  | "/" ->
    (* guarded real division: the divisor is bounded away from zero so the
       oracle never has to compare infinities *)
    Printf.sprintf "(%s / (0.5 + Abs[%s]))" (expr_src a) (expr_src b)
  | _ -> Printf.sprintf "%s[%s, %s]" op (expr_src a) (expr_src b)

and un_src op a =
  match op with
  | "Minus" -> Printf.sprintf "(-%s)" (expr_src a)
  | "SqrtAbs" -> Printf.sprintf "Sqrt[Abs[%s]]" (expr_src a)
  | "Chars" -> Printf.sprintf "ToCharacterCode[%s]" (expr_src a)
  | _ -> Printf.sprintf "%s[%s]" op (expr_src a)

let rec stmt_src ind s =
  let pad = String.make ind ' ' in
  match s with
  | Assign (v, _, e) -> Printf.sprintf "%s%s = %s" pad v (expr_src e)
  | PartSet (v, i, e) ->
    Printf.sprintf "%s%s[[%s]] = %s" pad v (clamped_index v i) (expr_src e)
  | PartSetIv (v, i, e) ->
    (* raw induction-variable index: the generator guarantees the counter
       stays within the array bounds, so no clamp — this is the store shape
       the parallel-loops pass recognises *)
    Printf.sprintf "%s%s[[%s]] = %s" pad v i (expr_src e)
  | SIf (c, ts, []) ->
    Printf.sprintf "%sIf[%s,\n%s]" pad (expr_src c) (stmts_src (ind + 1) ts)
  | SIf (c, ts, fs) ->
    Printf.sprintf "%sIf[%s,\n%s,\n%s]" pad (expr_src c) (stmts_src (ind + 1) ts)
      (stmts_src (ind + 1) fs)
  | While (c, k, body) ->
    Printf.sprintf "%sWhile[%s <= %d,\n%s;\n%s%s = %s + 1]" pad c k
      (stmts_src (ind + 1) body) (String.make (ind + 1) ' ') c c
  | DoLoop (i, k, body) ->
    Printf.sprintf "%sDo[\n%s,\n%s{%s, %d}]" pad (stmts_src (ind + 1) body)
      (String.make (ind + 1) ' ') i k

and stmts_src ind ss =
  match ss with
  | [] -> String.make ind ' ' ^ "Null"
  | _ -> String.concat ";\n" (List.map (stmt_src ind) ss)

let local_src l = Printf.sprintf "%s = %s" l.lname (expr_src l.linit)

let to_source f =
  let params =
    String.concat ", "
      (List.map (fun (p, t) -> Printf.sprintf "Typed[%s, %s]" p (ty_name t)) f.params)
  in
  let core =
    match f.body with
    | [] -> " " ^ expr_src f.result
    | _ -> Printf.sprintf "\n%s;\n %s" (stmts_src 1 f.body) (expr_src f.result)
  in
  let inner =
    match f.locals with
    | [] -> core
    | ls ->
      Printf.sprintf "Module[{%s},%s]"
        (String.concat ", " (List.map local_src ls)) core
  in
  let wrapped =
    match f.withs with
    | [] -> inner
    | ws ->
      Printf.sprintf "With[{%s}, %s]"
        (String.concat ", " (List.map local_src ws)) inner
  in
  Printf.sprintf "Function[{%s},\n %s]" params wrapped

let arg_source = expr_src

(* ---- size ----------------------------------------------------------- *)

let rec expr_size e =
  1
  + (match e with
     | Int _ | Real _ | Bool _ | Str _ | Var _ -> 0
     | Arr xs -> List.length xs
     | Bin (_, _, a, b) | Cmp (_, _, a, b) | And (a, b) | Or (a, b)
     | StrJoin (a, b) ->
       expr_size a + expr_size b
     | Un (_, _, a) | Part (_, a) | ConstArr (a, _) -> expr_size a
     | If (_, c, t, f) -> expr_size c + expr_size t + expr_size f
     | MapArr (_, b, a) -> expr_size b + expr_size a
     | FoldMM (_, _, _, i, a) -> expr_size i + expr_size a)

let rec stmt_size s =
  1
  + (match s with
     | Assign (_, _, e) -> expr_size e
     | PartSet (_, i, e) -> expr_size i + expr_size e
     | PartSetIv (_, _, e) -> expr_size e
     | SIf (c, ts, fs) -> expr_size c + stmts_size ts + stmts_size fs
     | While (_, _, body) | DoLoop (_, _, body) -> stmts_size body)

and stmts_size ss = List.fold_left (fun a s -> a + stmt_size s) 0 ss

let size f =
  List.length f.params
  + List.fold_left (fun a l -> a + 1 + expr_size l.linit) 0 (f.withs @ f.locals)
  + stmts_size f.body + expr_size f.result

(* ---- WVM representability ------------------------------------------- *)

let rec expr_strings e =
  match e with
  | Str _ | StrJoin _ -> true
  | Un (("StringLength" | "Chars"), _, _) -> true
  | Int _ | Real _ | Bool _ | Arr _ | Var _ -> false
  | Bin (_, _, a, b) | Cmp (_, _, a, b) | And (a, b) | Or (a, b) ->
    expr_strings a || expr_strings b
  | Un (_, _, a) | Part (_, a) | ConstArr (a, _) -> expr_strings a
  | If (_, c, t, f) -> expr_strings c || expr_strings t || expr_strings f
  | MapArr (_, b, a) -> expr_strings b || expr_strings a
  | FoldMM (_, _, _, i, a) -> expr_strings i || expr_strings a

let rec stmt_strings s =
  match s with
  | Assign (_, _, e) -> expr_strings e
  | PartSet (_, i, e) -> expr_strings i || expr_strings e
  | PartSetIv (_, _, e) -> expr_strings e
  | SIf (c, ts, fs) ->
    expr_strings c || List.exists stmt_strings ts || List.exists stmt_strings fs
  | While (_, _, body) | DoLoop (_, _, body) -> List.exists stmt_strings body

let uses_strings f =
  List.exists (fun (_, t) -> t = TStr) f.params
  || List.exists (fun l -> l.lty = TStr || expr_strings l.linit) (f.withs @ f.locals)
  || List.exists stmt_strings f.body
  || expr_strings f.result

(* [Map]/[Fold] with an explicit [Function] literal: representable by the
   compiler pipeline (the closure is promoted to a direct call) but not by
   the legacy bytecode compiler, which has no function values *)
let rec expr_closures e =
  match e with
  | MapArr _ | FoldMM _ -> true
  | Int _ | Real _ | Bool _ | Str _ | Arr _ | Var _ -> false
  | Bin (_, _, a, b) | Cmp (_, _, a, b) | And (a, b) | Or (a, b)
  | StrJoin (a, b) ->
    expr_closures a || expr_closures b
  | Un (_, _, a) | Part (_, a) | ConstArr (a, _) -> expr_closures a
  | If (_, c, t, f) -> expr_closures c || expr_closures t || expr_closures f

let rec stmt_closures s =
  match s with
  | Assign (_, _, e) | PartSetIv (_, _, e) -> expr_closures e
  | PartSet (_, i, e) -> expr_closures i || expr_closures e
  | SIf (c, ts, fs) ->
    expr_closures c || List.exists stmt_closures ts
    || List.exists stmt_closures fs
  | While (_, _, body) | DoLoop (_, _, body) -> List.exists stmt_closures body

let uses_closures f =
  List.exists (fun l -> expr_closures l.linit) (f.withs @ f.locals)
  || List.exists stmt_closures f.body
  || expr_closures f.result
