(** Fuzzing campaign driver: generate, compare, shrink, persist.

    Every failure is minimised with {!Shrink} against the full differential
    predicate and written to the corpus directory in a replayable text
    format — the same format [test/corpus/*.wl] uses:

    {v
    (* fuzz: <where the oracle disagreed> *)
    (* seed: 42/17 *)
    (* args: {1, {2, 3}} *)
    (* wvm: false *)            <- only when not WVM-representable
    Function[{Typed[p1, "MachineInteger"]}, ...]
    v} *)

type config = {
  seed : int;
  count : int;
  max_size : int;
  strings : bool;
  backends : Oracle.backend list;
  levels : int list;
  corpus_dir : string option;  (** write shrunk failures here *)
  log : string -> unit;        (** progress/diagnostics sink *)
  jobs : int;
      (** domains to shard the campaign over.  Any [jobs] produces the
          same report (per-program work depends on [(seed, i)] only and
          results merge in program order); [1] runs inline. *)
}

val default_config : config
(** seed 0, 200 programs, max size 60, threaded+wvm, levels 0–2, no corpus
    dir, silent, 1 job. *)

type report = {
  generated : int;
  disagreements : int;             (** programs with >= 1 oracle failure *)
  failures : (int * Ast.case * Oracle.failure list) list;
      (** program index, ALREADY-SHRUNK case, its failures *)
  written : string list;           (** corpus files persisted *)
  par_programs : int;
      (** programs where the [par] arm parallelised >= 1 loop (0 when the
          par backend was not selected) *)
  par_loops : int;                 (** total loops parallelised by the arm *)
}

val case_for : config -> int -> Ast.case
(** The [i]-th generated program of a campaign — deterministic in
    [(seed, i)] alone, so one program can be regenerated without running
    the campaign. *)

val run : config -> report

(* {2 Corpus persistence} *)

type corpus_entry = {
  ce_path : string;
  ce_source : string;              (** program text *)
  ce_args : Wolf_wexpr.Expr.t list;
  ce_wvm : bool;                   (** false when marked [(* wvm: false *)] *)
  ce_note : string;                (** first header comment *)
}

val write_corpus :
  dir:string -> name:string -> note:string -> Ast.case -> string
(** Returns the path written. *)

val read_corpus_file : string -> (corpus_entry, string) result
val read_corpus_dir : string -> corpus_entry list
(** All [*.wl] files, sorted by name; raises on malformed entries. *)

val check_entry :
  ?backends:Oracle.backend list -> ?levels:int list -> corpus_entry ->
  Oracle.failure list
(** Replay one corpus entry differentially. *)
