(** Seeded random generator of typed Wolfram-subset programs.

    Programs are generated with their call arguments and are terminating by
    construction: every loop is counted with a constant bound and a dedicated
    counter no other statement assigns, and every [Part] index is clamped
    into range by the {!Ast} renderer.  Integer overflow, [Mod[_, 0]] and
    friends are deliberately *not* prevented — they exercise the soft-failure
    fallback (F2), where every backend must agree with the interpreter. *)

type config = {
  max_size : int;       (** approximate node budget per program *)
  strings : bool;       (** generate string params/ops (not WVM-representable) *)
}

val default_config : config

val case : ?config:config -> Rng.t -> Ast.case
(** Generate one program with matching literal arguments. *)

val has_loops : Ast.fn -> bool
(** Whether the driver should also run the abort-injection property. *)
