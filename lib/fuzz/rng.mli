(** Deterministic splitmix64 PRNG for the fuzzer.

    The fuzzer must not share {!Wolf_runtime.Rand}'s global stream: generated
    programs may themselves call random primitives, and reproducibility of
    program [i] under a given seed must not depend on how many random numbers
    compilation or execution of programs [0..i-1] consumed. *)

type t

val create : int -> t
(** Seed the generator.  Equal seeds give equal streams. *)

val split : t -> int -> t
(** [split t i] derives an independent stream for item [i]; used to give
    each generated program its own stream so shrinking/replaying one program
    never perturbs the others. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice; the list must be non-empty. *)

val weighted : t -> (int * 'a) list -> 'a
(** Choice by integer weight; total weight must be positive. *)
