open Ast

type config = {
  max_size : int;
  strings : bool;
}

let default_config = { max_size = 60; strings = true }

type ctx = {
  rng : Rng.t;
  cfg : config;
  mutable fuel : int;
  (* visible variables by type; mutables are the Module locals *)
  mutable vars : (string * ty) list;
  mutable mutables : (string * ty) list;
  mutable counters : int;  (* fresh-name supply for loop counters/iterators *)
  mutable extra_locals : local list;  (* counters hoisted into the Module *)
}

let spend ctx = ctx.fuel <- ctx.fuel - 1

let vars_of ctx t = List.filter (fun (_, vt) -> vt = t) ctx.vars
let mutables_of ctx t = List.filter (fun (_, vt) -> vt = t) ctx.mutables

let str_pool =
  [ "a"; "ok"; "fuzz"; "Wolfram"; "x y"; "0123";
    (* escape-adjacent entries: bytes >= 128 followed by digits catch
       printers that write decimal escapes (a lexer reads "\233123" back as
       six digit characters), quotes and backslashes catch under-escaping —
       string semantics are UTF-8 bytes end to end, so these flow through
       every arm including built binaries' argv *)
    "caf\195\169"; "\233123"; "q\"b\\s" ]

(* ---- leaves ---------------------------------------------------------- *)

let lit ctx t =
  match t with
  | TInt -> Int (Rng.range ctx.rng (-9) 9)
  | TReal -> Real (float_of_int (Rng.range ctx.rng (-60) 60) /. 8.0)
  | TBool -> Bool (Rng.bool ctx.rng)
  | TStr -> Str (Rng.pick ctx.rng str_pool)
  | TArr ->
    Arr (List.init (Rng.range ctx.rng 1 5) (fun _ -> Rng.range ctx.rng (-9) 9))

let leaf ctx t =
  match vars_of ctx t with
  | [] -> lit ctx t
  | vs -> if Rng.chance ctx.rng 0.7 then
      let v, vt = Rng.pick ctx.rng vs in Var (v, vt)
    else lit ctx t

(* ---- expressions ----------------------------------------------------- *)

let fresh_counter ctx prefix =
  ctx.counters <- ctx.counters + 1;
  Printf.sprintf "%s%d" prefix ctx.counters

let rec expr ctx t depth =
  spend ctx;
  if depth <= 0 || ctx.fuel <= 0 then leaf ctx t
  else
    let sub t' = expr ctx t' (depth - 1) in
    let arr_var () =
      match vars_of ctx TArr with
      | [] -> None
      | vs -> Some (fst (Rng.pick ctx.rng vs))
    in
    match t with
    | TInt ->
      let part =
        match arr_var () with
        | Some v -> [ (3, fun () -> Part (v, sub TInt)) ]
        | None -> []
      in
      let fold =
        (* Fold[Function[{s, x}, Min|Max[s, x]], init, arr]: desugars to a
           counted reduction loop the parallel-loops pass recognises *)
        [ (1, fun () ->
              let sv = fresh_counter ctx "s" and xv = fresh_counter ctx "x" in
              let op = if Rng.bool ctx.rng then "Min" else "Max" in
              FoldMM (op, sv, xv, sub TInt, sub TArr)) ]
      in
      let strlen =
        if ctx.cfg.strings && (vars_of ctx TStr <> [] || Rng.chance ctx.rng 0.2)
        then [ (1, fun () -> Un ("StringLength", TInt, sub TStr)) ]
        else []
      in
      Rng.weighted ctx.rng
        ([ (6, fun () -> leaf ctx TInt);
           (4, fun () -> Bin ("+", TInt, sub TInt, sub TInt));
           (3, fun () -> Bin ("-", TInt, sub TInt, sub TInt));
           (3, fun () -> Bin ("*", TInt, sub TInt, sub TInt));
           (2, fun () -> Bin ("Mod", TInt, sub TInt, sub TInt));
           (1, fun () -> Bin ("Quotient", TInt, sub TInt, sub TInt));
           (1, fun () -> Bin ("Min", TInt, sub TInt, sub TInt));
           (1, fun () -> Bin ("Max", TInt, sub TInt, sub TInt));
           (1, fun () -> Un ("Abs", TInt, sub TInt));
           (1, fun () -> Un ("Minus", TInt, sub TInt));
           (2, fun () -> Un ("Total", TInt, sub TArr));
           (2, fun () -> Un ("Length", TInt, sub TArr));
           (2, fun () -> If (TInt, sub TBool, sub TInt, sub TInt)) ]
         @ part @ strlen @ fold)
        ()
    | TReal ->
      Rng.weighted ctx.rng
        [ (6, fun () -> leaf ctx TReal);
          (4, fun () -> Bin ("+", TReal, sub TReal, sub TReal));
          (3, fun () -> Bin ("-", TReal, sub TReal, sub TReal));
          (3, fun () -> Bin ("*", TReal, sub TReal, sub TReal));
          (2, fun () -> Bin ("/", TReal, sub TReal, sub TReal));
          (1, fun () -> Un ("Sin", TReal, sub TReal));
          (1, fun () -> Un ("Cos", TReal, sub TReal));
          (1, fun () -> Un ("SqrtAbs", TReal, sub TReal));
          (1, fun () -> Un ("Minus", TReal, sub TReal));
          (1, fun () -> Un ("Abs", TReal, sub TReal));
          (2, fun () -> If (TReal, sub TBool, sub TReal, sub TReal)) ]
        ()
    | TBool ->
      Rng.weighted ctx.rng
        [ (2, fun () -> leaf ctx TBool);
          (5, fun () ->
              let op = Rng.pick ctx.rng [ "=="; "!="; "<"; "<="; ">"; ">=" ] in
              Cmp (op, TInt, sub TInt, sub TInt));
          (2, fun () ->
              let op = Rng.pick ctx.rng [ "<"; "<="; ">"; ">=" ] in
              Cmp (op, TReal, sub TReal, sub TReal));
          (2, fun () -> And (sub TBool, sub TBool));
          (2, fun () -> Or (sub TBool, sub TBool));
          (1, fun () -> Un ("Not", TBool, sub TBool));
          (1, fun () -> Un ("EvenQ", TBool, sub TInt)) ]
        ()
    | TStr ->
      Rng.weighted ctx.rng
        [ (4, fun () -> leaf ctx TStr);
          (3, fun () -> StrJoin (sub TStr, sub TStr));
          (1, fun () -> If (TStr, sub TBool, sub TStr, sub TStr)) ]
        ()
    | TArr ->
      let chars =
        if ctx.cfg.strings && vars_of ctx TStr <> [] then
          [ (2, fun () -> Un ("Chars", TArr, sub TStr)) ]
        else []
      in
      let maparr =
        (* Map[Function[{x}, body], arr]: desugars to a counted map loop
           writing a fresh packed array — the parallel-loops pass's map
           shape.  The lambda variable is visible while the body grows. *)
        [ (2, fun () ->
              let x = fresh_counter ctx "f" in
              let saved = ctx.vars in
              ctx.vars <- (x, TInt) :: ctx.vars;
              let body = expr ctx TInt (depth - 1) in
              ctx.vars <- saved;
              MapArr (x, body, sub TArr)) ]
      in
      Rng.weighted ctx.rng
        ([ (5, fun () -> leaf ctx TArr);
           (2, fun () -> Un ("Reverse", TArr, sub TArr));
           (3, fun () -> ConstArr (sub TInt, Rng.range ctx.rng 1 5)) ]
         @ chars @ maparr)
        ()

(* ---- data-parallel loop shapes --------------------------------------- *)

(* Dedicated counted-loop families for the parallel-loops pass: map-style
   stores indexed by the counter, single-accumulator real reductions, and
   deliberately unsafe variants — non-associative accumulation, checked
   integer accumulation, reads of the array being written — that the pass
   must leave serial.  Either way the program must agree with the
   interpreter on every backend; with the [par] oracle arm the safe shapes
   additionally exercise cross-domain chunked execution. *)
let par_loop ctx ~depth =
  spend ctx;
  let n = Rng.range ctx.rng 12 40 in
  let c = fresh_counter ctx "c" in
  ctx.extra_locals <-
    ctx.extra_locals @ [ { lname = c; lty = TInt; linit = Int 1 } ];
  let iv = Var (c, TInt) in
  let add_local name lty linit =
    ctx.extra_locals <- ctx.extra_locals @ [ { lname = name; lty; linit } ];
    ctx.vars <- (name, lty) :: ctx.vars;
    ctx.mutables <- (name, lty) :: ctx.mutables
  in
  (* values may read the counter and any *outer* binding; the accumulator
     is registered only after the value is generated, so the body never
     reads its own carry except through the accumulation op itself *)
  let real_value () =
    Rng.weighted ctx.rng
      [ (3, fun () ->
            Bin ("*", TReal,
                 Real (float_of_int (Rng.range ctx.rng (-8) 8) /. 4.0), iv));
        (2, fun () ->
            Bin ("+", TReal, Bin ("*", TReal, Real 0.25, iv),
                 expr ctx TReal (max 1 (depth - 1))));
        (1, fun () -> Un ("Sin", TReal, Bin ("*", TReal, Real 0.5, iv))) ]
      ()
  in
  let int_value () =
    Rng.weighted ctx.rng
      [ (3, fun () -> Bin ("*", TInt, iv, Int (Rng.range ctx.rng (-4) 4)));
        (2, fun () ->
            Bin ("+", TInt, Bin ("*", TInt, iv, iv),
                 expr ctx TInt (max 1 (depth - 1)))) ]
      ()
  in
  let reduce ?value op init =
    let value = match value with Some v -> v | None -> real_value () in
    let r = fresh_counter ctx "r" in
    add_local r TReal (Real init);
    [ While (c, n, [ Assign (r, TReal, Bin (op, TReal, Var (r, TReal), value)) ]) ]
  in
  let reduce_int () =
    (* checked integer Plus: overflow order is observable, must stay serial *)
    let value = int_value () in
    let r = fresh_counter ctx "r" in
    add_local r TInt (Int 0);
    [ While (c, n, [ Assign (r, TInt, Bin ("+", TInt, Var (r, TInt), value)) ]) ]
  in
  let map_safe () =
    let value = int_value () in
    let a = fresh_counter ctx "a" in
    add_local a TArr (ConstArr (Int (Rng.range ctx.rng (-3) 3), n));
    [ While (c, n, [ PartSetIv (a, c, value) ]) ]
  in
  let map_unsafe () =
    (* reads the array it writes: a cross-iteration dependency in general,
       so the pass must reject it *)
    let a = fresh_counter ctx "a" in
    add_local a TArr (ConstArr (Int 1, n));
    [ While (c, n, [ PartSetIv (a, c, Bin ("+", TInt, Part (a, iv), Int 1)) ]) ]
  in
  let nested () =
    (* re-entered inner reduction under an outer Do: only the innermost
       loop may parallelise *)
    let j = fresh_counter ctx "d" in
    let value =
      Bin ("+", TReal, Bin ("*", TReal, Real 0.25, iv),
           Bin ("*", TReal, Real 0.5, Var (j, TInt)))
    in
    let r = fresh_counter ctx "r" in
    add_local r TReal (Real 0.0);
    [ DoLoop
        (j, Rng.range ctx.rng 2 3,
         [ Assign (c, TInt, Int 1);
           While (c, n,
                  [ Assign (r, TReal, Bin ("+", TReal, Var (r, TReal), value)) ]) ]) ]
  in
  let swap_pair () =
    (* rotate a loop-carried pair through a temp: after mem2reg +
       simplify-cfg jump threading the loop's back edge carries a
       permutation of the header block's own parameters, the shape that
       requires parallel (two-phase) jump-argument copies in backends that
       lower block arguments to assignments *)
    let a = fresh_counter ctx "s" and b = fresh_counter ctx "s" in
    let tmp = fresh_counter ctx "t" in
    let k = Rng.range ctx.rng (-5) 5 in
    add_local a TInt (Int k);
    add_local b TInt (Int (k + 1 + Rng.range ctx.rng 0 3));
    add_local tmp TInt (Int 0);
    [ While (c, n,
             [ Assign (tmp, TInt, Var (a, TInt));
               Assign (a, TInt, Var (b, TInt));
               Assign (b, TInt, Var (tmp, TInt)) ]) ]
  in
  Rng.weighted ctx.rng
    [ (4, fun () -> reduce "+" 0.0);
      (2, fun () -> swap_pair ());
      (1, fun () ->
          reduce "*" 1.0
            ~value:(Bin ("+", TReal, Real 1.0, Bin ("*", TReal, Real 0.001, iv))));
      (2, fun () -> reduce (if Rng.bool ctx.rng then "Min" else "Max") 0.0);
      (2, fun () -> reduce "-" 0.0);
      (2, fun () -> reduce_int ());
      (4, fun () -> map_safe ());
      (2, fun () -> map_unsafe ());
      (1, fun () -> nested ()) ]
    ()

(* ---- statements ------------------------------------------------------ *)

let rec stmts ctx ~depth ~count =
  List.concat (List.init count (fun _ -> stmt ctx ~depth))

and stmt ctx ~depth =
  spend ctx;
  if ctx.fuel <= 0 then []
  else
    let assignable = ctx.mutables in
    let choices =
      (match assignable with
       | [] -> []
       | _ ->
         [ (6, fun () ->
               let v, t = Rng.pick ctx.rng assignable in
               [ Assign (v, t, expr ctx t 2) ]) ])
      @ (match mutables_of ctx TArr with
         | [] -> []
         | arrs ->
           [ (3, fun () ->
                 let v, _ = Rng.pick ctx.rng arrs in
                 [ PartSet (v, expr ctx TInt 1, expr ctx TInt 2) ]) ])
      @ (if depth > 0 then
           [ (4, fun () -> par_loop ctx ~depth);
             (3, fun () ->
                 let c = expr ctx TBool 2 in
                 let ts = stmts ctx ~depth:(depth - 1) ~count:(Rng.range ctx.rng 1 2) in
                 let fs =
                   if Rng.bool ctx.rng then []
                   else stmts ctx ~depth:(depth - 1) ~count:1
                 in
                 if ts = [] then [] else [ SIf (c, ts, fs) ]);
             (3, fun () ->
                 (* counted While: the counter lives in the Module and is
                    only ever incremented by the loop's own back edge *)
                 let c = fresh_counter ctx "c" in
                 ctx.extra_locals <-
                   ctx.extra_locals @ [ { lname = c; lty = TInt; linit = Int 1 } ];
                 let body =
                   stmts ctx ~depth:(depth - 1) ~count:(Rng.range ctx.rng 1 2)
                 in
                 [ While (c, Rng.range ctx.rng 1 6, body) ]);
             (2, fun () ->
                 let i = fresh_counter ctx "d" in
                 let saved = ctx.vars in
                 ctx.vars <- (i, TInt) :: ctx.vars;
                 let body =
                   stmts ctx ~depth:(depth - 1) ~count:(Rng.range ctx.rng 1 2)
                 in
                 ctx.vars <- saved;
                 if body = [] then []
                 else [ DoLoop (i, Rng.range ctx.rng 1 5, body) ]) ]
         else [])
    in
    match choices with
    | [] -> []
    | _ -> Rng.weighted ctx.rng choices ()

(* ---- whole programs -------------------------------------------------- *)

let gen_arg rng t =
  match t with
  | TInt -> Int (Rng.range rng (-9) 9)
  | TReal -> Real (float_of_int (Rng.range rng (-60) 60) /. 8.0)
  | TBool -> Bool (Rng.bool rng)
  | TStr -> Str (Rng.pick rng str_pool)
  | TArr -> Arr (List.init (Rng.range rng 1 6) (fun _ -> Rng.range rng (-9) 9))

let case ?(config = default_config) rng =
  let ctx =
    { rng; cfg = config; fuel = config.max_size; vars = []; mutables = [];
      counters = 0; extra_locals = [] }
  in
  let param_ty () =
    Rng.weighted rng
      ([ (4, TInt); (2, TReal); (2, TArr); (1, TBool) ]
       @ if config.strings then [ (1, TStr) ] else [])
  in
  let params =
    List.init (Rng.range rng 1 3) (fun i -> (Printf.sprintf "p%d" (i + 1), param_ty ()))
  in
  ctx.vars <- params;
  let mk_locals prefix n =
    List.init n (fun i ->
        let name = Printf.sprintf "%s%d" prefix (i + 1) in
        let t = Rng.weighted rng [ (4, TInt); (2, TReal); (2, TArr); (1, TBool) ] in
        { lname = name; lty = t; linit = expr ctx t 1 })
  in
  let withs = if Rng.chance rng 0.3 then mk_locals "w" (Rng.range rng 1 2) else [] in
  ctx.vars <- ctx.vars @ List.map (fun l -> (l.lname, l.lty)) withs;
  let locals = mk_locals "m" (Rng.range rng 1 3) in
  ctx.vars <- ctx.vars @ List.map (fun l -> (l.lname, l.lty)) locals;
  ctx.mutables <- List.map (fun l -> (l.lname, l.lty)) locals;
  let body = stmts ctx ~depth:2 ~count:(Rng.range rng 1 4) in
  let ret =
    (* prefer returning something the body could have mutated *)
    match ctx.mutables with
    | [] -> Rng.weighted rng [ (3, TInt); (2, TReal); (1, TBool); (1, TArr) ]
    | ms -> snd (Rng.pick rng ms)
  in
  ctx.fuel <- max ctx.fuel 6;
  let result = expr ctx ret 2 in
  let fn =
    { params; withs; locals = locals @ ctx.extra_locals; body; result; ret }
  in
  let args = List.map (fun (_, t) -> gen_arg rng t) params in
  { fn; args }

let rec stmt_loops = function
  | While _ | DoLoop _ -> true
  | SIf (_, ts, fs) -> List.exists stmt_loops ts || List.exists stmt_loops fs
  | Assign _ | PartSet _ | PartSetIv _ -> false

let has_loops f =
  (* Map/Fold expressions desugar to counted loops too, so they count for
     the abort-injection property *)
  List.exists stmt_loops f.body || Ast.uses_closures f
