(* Chunked parallel-for: the runtime half of {!Wolf_compiler.Opt_parloop}.

   The compiler outlines a recognised map/reduce loop into a closure
   [f(carry, lo, hi)] that runs iterations [lo..hi] (inclusive) serially, and
   replaces the loop with a call to [parallel_for_map] / [parallel_reduce].
   This module decides how to cut [lo..hi] into chunks, runs the chunks on
   the shared domain pool, and merges the results:

   - map: the carry is a packed tensor.  One private copy of the initial
     tensor is taken up front (exactly what serial copy-on-write would do at
     the first write when the input is aliased), every chunk writes its
     disjoint index range into that copy in place, and the copy is the
     result.
   - reduce: the carry is a scalar.  Each chunk folds its range onto the
     operator's identity; the per-chunk partials are merged in chunk order
     and folded onto the real initial value, which equals the serial fold
     up to reassociation (the compiler only parallelises ops where that is
     observationally safe: float [Plus]/[Times] within the oracle tolerance,
     [Min]/[Max] exactly).

   Deadlock-freedom by construction: the caller never blocks on the pool.
   Helper workers are *offered* to the executor ([submit] is non-blocking;
   [`Saturated] just means fewer helpers), while the calling domain claims
   chunks from the same atomic cursor until the range is drained.  A
   parallel-for inside a tier-promoted function therefore completes even if
   the shared executor is busy compiling — worst case it runs serially on
   the caller.

   Abort semantics: chunk bodies are compiled code and poll the global abort
   flag themselves; the caller additionally polls between chunk claims (so a
   domain-local injected abort fires at chunk granularity).  [Aborted] from
   any chunk wins over any other failure; otherwise the lowest failing chunk
   wins, which is exactly the serial first-failure because chunks are
   contiguous ascending ranges and every lower chunk completed cleanly.

   Schedule search: per loop (identified by a compiler fingerprint) and
   per shape class (log2 of the trip count) the first execution measures
   3–4 candidate schedules — serial, one chunk per worker ("static"), and
   4×/16× oversubscribed chunking ("dynamic", claimed from the atomic
   cursor) — and caches the winner, optionally persisting it next to the
   disk compile cache.  Cache hits never re-measure. *)

open Wolf_wexpr
open Rtval

type schedule = Serial | Static of int | Dynamic of int

let schedule_to_string = function
  | Serial -> "serial"
  | Static k -> Printf.sprintf "static/%d" k
  | Dynamic k -> Printf.sprintf "dynamic/%d" k

(* ------------------------------------------------------------------ *)
(* Configuration: global defaults with domain-local overrides, so the
   fuzz oracle can compare jobs=1 and jobs=4 on one domain while a
   campaign runs other programs on sibling domains. *)

let jobs_default = Atomic.make 1

let dls_jobs : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let dls_force : schedule option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_jobs j = Atomic.set jobs_default (max 1 j)
let current_jobs () =
  match !(Domain.DLS.get dls_jobs) with
  | Some j -> j
  | None -> Atomic.get jobs_default

let with_jobs j f =
  let cell = Domain.DLS.get dls_jobs in
  let saved = !cell in
  cell := Some (max 1 j);
  Fun.protect ~finally:(fun () -> cell := saved) f

let with_forced_schedule s f =
  let cell = Domain.DLS.get dls_force in
  let saved = !cell in
  cell := Some s;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* ------------------------------------------------------------------ *)
(* Helper executor.  Either injected (to share domains with the tier
   compiler or wolfd) or grown on demand to [jobs - 1] workers. *)

let exec : Wolf_parallel.Executor.t option ref = ref None
let exec_injected = ref false
let exec_lock = Mutex.create ()

let set_executor e =
  Mutex.lock exec_lock;
  exec := Some e;
  exec_injected := true;
  Mutex.unlock exec_lock

let ensure_executor n =
  Mutex.lock exec_lock;
  let e =
    match !exec with
    | Some e when !exec_injected -> e
    | Some e when (Wolf_parallel.Executor.stats e).Wolf_parallel.Executor.jobs >= n
      -> e
    | prev ->
      (match prev with
       | Some old -> Wolf_parallel.Executor.shutdown old
       | None -> ());
      let e = Wolf_parallel.Executor.create ~capacity:256 ~jobs:n () in
      Wolf_parallel.Executor.register_metrics ~name:"parloop" e;
      exec := Some e;
      e
  in
  Mutex.unlock exec_lock;
  e

(* ------------------------------------------------------------------ *)
(* Metrics *)

let m_chunks =
  lazy
    (Wolf_obs.Metrics.counter
       ~help:"chunks executed by the parallel-loop runtime" "parloop_chunks_total")

let m_measurements =
  lazy
    (Wolf_obs.Metrics.counter
       ~help:"schedule candidates measured (cache misses only)"
       "parloop_measurements_total")

let measurements () = Wolf_obs.Metrics.counter_value (Lazy.force m_measurements)

(* ------------------------------------------------------------------ *)
(* Chunked execution *)

let ranges lo hi k =
  let n = hi - lo + 1 in
  if n <= 0 then [||]
  else begin
    let k = max 1 (min k n) in
    Array.init k (fun i -> (lo + n * i / k, lo + (n * (i + 1) / k) - 1))
  end

let chunk_count = function
  | Serial -> 1
  | Static k | Dynamic k -> max 1 k

let run_chunks ~jobs (chunks : (int * int) array) (body : int -> int -> int -> unit) =
  let n = Array.length chunks in
  Wolf_obs.Metrics.add (Lazy.force m_chunks) n;
  if n = 0 then ()
  else if jobs <= 1 || n = 1 then begin
    (* in ascending order on the caller: a failure in chunk i is already
       the serial first failure *)
    Array.iteri (fun i (a, b) -> body i a b) chunks
  end
  else begin
    let cursor = Atomic.make 0 in
    let finished = Atomic.make 0 in
    let errs = Array.make n None in
    let worker ~caller () =
      let continue = ref true in
      while !continue do
        if caller then Wolf_base.Abort_signal.check ();
        let i = Atomic.fetch_and_add cursor 1 in
        if i >= n then continue := false
        else begin
          let a, b = chunks.(i) in
          (try body i a b with e -> errs.(i) <- Some e);
          ignore (Atomic.fetch_and_add finished 1)
        end
      done
    in
    let e = ensure_executor (jobs - 1) in
    for _ = 2 to jobs do
      (* best effort: [`Saturated]/[`Stopped] just means fewer helpers *)
      ignore (Wolf_parallel.Executor.submit e (fun () -> worker ~caller:false ()))
    done;
    worker ~caller:true ();
    (* the caller drained the cursor; wait for helpers mid-chunk so the
       output tensor is quiescent before anyone reads it *)
    while Atomic.get finished < n do Domain.cpu_relax () done;
    let aborted = ref false in
    let first = ref None in
    for i = n - 1 downto 0 do
      match errs.(i) with
      | Some Wolf_base.Abort_signal.Aborted -> aborted := true
      | Some e -> first := Some e
      | None -> ()
    done;
    if !aborted then raise Wolf_base.Abort_signal.Aborted;
    match !first with Some e -> raise e | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Schedule cache: (loop fingerprint, shape class) -> winner.  Optionally
   persisted as a sidecar of the disk compile cache. *)

let cache : (string * int, schedule) Hashtbl.t = Hashtbl.create 32
let cache_lock = Mutex.create ()
let persist_path : string option ref = ref None

let persist_magic = "wolf-parloop-schedules-v1"

let shape_class n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 (max n 1)

let save_cache_locked () =
  match !persist_path with
  | None -> ()
  | Some p ->
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) cache [] in
    let tmp = p ^ ".tmp" in
    (try
       let oc = open_out_bin tmp in
       output_string oc persist_magic;
       Marshal.to_channel oc (entries : ((string * int) * schedule) list) [];
       close_out oc;
       Sys.rename tmp p
     with _ -> (try Sys.remove tmp with _ -> ()))

let load_cache_locked p =
  try
    let ic = open_in_bin p in
    let magic = really_input_string ic (String.length persist_magic) in
    if magic <> persist_magic then begin
      close_in ic;
      raise Exit
    end;
    let entries : ((string * int) * schedule) list = Marshal.from_channel ic in
    close_in ic;
    List.iter (fun (k, v) -> Hashtbl.replace cache k v) entries
  with _ -> (try Sys.remove p with _ -> ())

let set_persist_path p =
  Mutex.lock cache_lock;
  persist_path := Some p;
  if Sys.file_exists p then load_cache_locked p;
  Mutex.unlock cache_lock

let clear_schedules () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  Mutex.unlock cache_lock

let schedules_size () =
  Mutex.lock cache_lock;
  let n = Hashtbl.length cache in
  Mutex.unlock cache_lock;
  n

let cached_schedule ~fp ~n =
  Mutex.lock cache_lock;
  let r = Hashtbl.find_opt cache (fp, shape_class n) in
  Mutex.unlock cache_lock;
  r

let remember_schedule ~fp ~n s =
  Mutex.lock cache_lock;
  Hashtbl.replace cache (fp, shape_class n) s;
  save_cache_locked ();
  Mutex.unlock cache_lock

(* Candidate schedules for [n] iterations on [jobs] workers, serial first
   (its time is the speedup baseline).  Chunk counts clamp to [n]; drop
   candidates that collapse to one chunk or to each other. *)
let candidates ~n ~jobs =
  if jobs <= 1 then [ Serial ]
  else begin
    let seen = Hashtbl.create 8 in
    Serial
    :: List.filter
         (fun s ->
            let k = min n (chunk_count s) in
            if k <= 1 || Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
         [ Static jobs; Dynamic (4 * jobs); Dynamic (16 * jobs) ]
  end

(* last schedule this domain ran a loop under, for bench/report tooling *)
let dls_last : schedule option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let last_schedule () = !(Domain.DLS.get dls_last)

(* Pick a schedule: forced (tests/fuzz) > cached > measured.  [run] executes
   the whole loop under a given schedule and is re-entrant; measurement is
   safe because the compiler only parallelises pure bodies. *)
let choose_schedule_inner ~fp ~n ~jobs ~run =
  match !(Domain.DLS.get dls_force) with
  | Some s -> s
  | None ->
    (match cached_schedule ~fp ~n with
     | Some s -> s
     | None ->
       let cs = candidates ~n ~jobs in
       let timed s =
         let t0 = Wolf_obs.Clock.now_ns () in
         run s;
         (s, Wolf_obs.Clock.now_ns () - t0)
       in
       let measured = List.map timed cs in
       Wolf_obs.Metrics.add (Lazy.force m_measurements) (List.length measured);
       let best, best_t =
         List.fold_left
           (fun (bs, bt) (s, t) -> if t < bt then (s, t) else (bs, bt))
           (Serial, max_int) measured
       in
       (match measured with
        | (Serial, serial_t) :: _ when best_t > 0 ->
          let g =
            Wolf_obs.Metrics.gauge
              ~help:"serial time / best schedule time, per loop"
              ~labels:
                [ ("loop", String.sub fp 0 (min 8 (String.length fp))) ]
              "parloop_speedup"
          in
          Wolf_obs.Metrics.set_gauge g
            (float_of_int serial_t /. float_of_int best_t)
        | _ -> ());
       remember_schedule ~fp ~n best;
       best)

let choose_schedule ~fp ~n ~jobs ~run =
  let s = choose_schedule_inner ~fp ~n ~jobs ~run in
  Domain.DLS.get dls_last := Some s;
  s

(* ------------------------------------------------------------------ *)
(* The two primitives.  Uniform argument shape (see Opt_parloop):
   [| Fun f; carry; Int lo; Int hi; Int opcode; Str fingerprint |]. *)

let bad args =
  raise
    (Wolf_base.Errors.Runtime_error
       (Wolf_base.Errors.Invalid_runtime_argument
          (Printf.sprintf "parallel_for: bad arguments (%s)"
             (String.concat ", "
                (Array.to_list (Array.map type_name args))))))

let exec_schedule ~jobs ~lo ~hi s (chunk : int -> int -> int -> unit) =
  match s with
  | Serial -> run_chunks ~jobs:1 [| (lo, hi) |] chunk
  | _ -> run_chunks ~jobs (ranges lo hi (chunk_count s)) chunk

let parallel_for_map args =
  match args with
  | [| Fun f; Tensor init; Int lo; Int hi; Int _; Str fp |] ->
    if hi < lo then Tensor init
    else begin
      let jobs = current_jobs () in
      let n = hi - lo + 1 in
      let run s =
        (* one private copy up front = serial COW at the first write *)
        let out = Tensor.copy init in
        exec_schedule ~jobs ~lo ~hi s (fun _ a b ->
            ignore (f.call [| Tensor out; Int a; Int b |]));
        out
      in
      let s =
        choose_schedule ~fp ~n ~jobs ~run:(fun s -> ignore (run s))
      in
      Wolf_obs.Trace.with_span ~cat:"parloop"
        ~args:(("schedule", Wolf_obs.Trace.arg_str (schedule_to_string s))
               :: Wolf_obs.Request_ctx.args_of_current ())
        "parallel_for_map"
        (fun () -> Tensor (run s))
    end
  | _ -> bad args

(* opcode: 1 = Plus (Real64), 2 = Times (Real64), 3 = Min Int, 4 = Min Real,
   5 = Max Int, 6 = Max Real.  Int Plus/Times are never emitted: checked
   overflow makes their result order-observable. *)
let identity = function
  | 1 -> Real 0.0
  | 2 -> Real 1.0
  | 3 -> Int max_int
  | 4 -> Real infinity
  | 5 -> Int min_int
  | 6 -> Real neg_infinity
  | _ -> invalid_arg "Par_runtime: bad reduce opcode"

let merge opcode a b =
  let r v = match v with Int i -> float_of_int i | Real r -> r | _ -> nan in
  match (opcode, a, b) with
  | 1, _, _ -> Real (r a +. r b)
  | 2, _, _ -> Real (r a *. r b)
  | 3, Int x, Int y -> Int (min x y)
  | 4, _, _ -> Real (Float.min (r a) (r b))
  | 5, Int x, Int y -> Int (max x y)
  | 6, _, _ -> Real (Float.max (r a) (r b))
  | _ -> invalid_arg "Par_runtime: bad reduce merge"

let parallel_reduce args =
  match args with
  | [| Fun f; init; Int lo; Int hi; Int opcode; Str fp |] ->
    if hi < lo then init
    else begin
      let jobs = current_jobs () in
      let n = hi - lo + 1 in
      let run s =
        match s with
        | Serial -> f.call [| init; Int lo; Int hi |]
        | _ ->
          let chunks = ranges lo hi (chunk_count s) in
          let partials = Array.make (Array.length chunks) None in
          run_chunks ~jobs chunks (fun i a b ->
              partials.(i) <- Some (f.call [| identity opcode; Int a; Int b |]));
          Array.fold_left
            (fun acc p ->
               match p with Some v -> merge opcode acc v | None -> acc)
            init partials
      in
      let s = choose_schedule ~fp ~n ~jobs ~run:(fun s -> ignore (run s)) in
      Wolf_obs.Trace.with_span ~cat:"parloop"
        ~args:(("schedule", Wolf_obs.Trace.arg_str (schedule_to_string s))
               :: Wolf_obs.Request_ctx.args_of_current ())
        "parallel_reduce"
        (fun () -> run s)
    end
  | _ -> bad args
