open Wolf_base
open Wolf_wexpr
open Rtval

let bad name args =
  raise
    (Errors.Runtime_error
       (Errors.Invalid_runtime_argument
          (Printf.sprintf "%s: bad arguments (%s)" name
             (String.concat ", " (Array.to_list (Array.map type_name args))))))

let real = function
  | Real r -> r
  | Int i -> float_of_int i
  | v -> raise (Errors.Runtime_error (Errors.Invalid_runtime_argument (type_name v)))

let num_binary name fi fr args =
  match args with
  | [| Int a; Int b |] -> Int (fi a b)
  | [| (Int _ | Real _) as a; (Int _ | Real _) as b |] -> Real (fr (real a) (real b))
  | _ -> bad name args

let complex_binary name f args =
  match args with
  | [| Complex (ar, ai); Complex (br, bi) |] ->
    let r, i = f (ar, ai) (br, bi) in
    Complex (r, i)
  | [| Complex (ar, ai); (Int _ | Real _) as b |] ->
    let r, i = f (ar, ai) (real b, 0.0) in
    Complex (r, i)
  | [| (Int _ | Real _) as a; Complex (br, bi) |] ->
    let r, i = f (real a, 0.0) (br, bi) in
    Complex (r, i)
  | _ -> bad name args

let expr_binary head args =
  match args with
  | [| Expr a; Expr b |] ->
    (* threaded through the engine: construct and evaluate directly *)
    Expr (Hooks.eval (Wolf_wexpr.Expr.apply head [ a; b ]))
  | [| a; b |] -> Expr (Hooks.eval (Wolf_wexpr.Expr.apply head [ to_expr a; to_expr b ]))
  | _ -> bad head args

let expr_unary head args =
  match args with
  | [| Expr a |] -> Expr (Hooks.eval (Wolf_wexpr.Expr.apply head [ a ]))
  | [| a |] -> Expr (Hooks.eval (Wolf_wexpr.Expr.apply head [ to_expr a ]))
  | _ -> bad head args

let array_binary name fi fr args =
  match args with
  | [| Tensor a; Tensor b |] ->
    if Tensor.dims a <> Tensor.dims b then bad name args
    else begin
      let n = Tensor.flat_length a in
      if Tensor.is_int a && Tensor.is_int b then begin
        let out = Array.init n (fun i -> fi (Tensor.get_int a i) (Tensor.get_int b i)) in
        Tensor (Tensor.create_int (Array.copy (Tensor.dims a)) out)
      end
      else begin
        let out = Array.init n (fun i -> fr (Tensor.get_real a i) (Tensor.get_real b i)) in
        Tensor (Tensor.create_real (Array.copy (Tensor.dims a)) out)
      end
    end
  | _ -> bad name args

let array_scalar name fi fr args =
  match args with
  | [| Tensor a; Int s |] when Tensor.is_int a ->
    let n = Tensor.flat_length a in
    Tensor
      (Tensor.create_int (Array.copy (Tensor.dims a))
         (Array.init n (fun i -> fi (Tensor.get_int a i) s)))
  | [| Tensor a; ((Int _ | Real _) as s) |] ->
    let n = Tensor.flat_length a and sv = real s in
    Tensor
      (Tensor.create_real (Array.copy (Tensor.dims a))
         (Array.init n (fun i -> fr (Tensor.get_real a i) sv)))
  | _ -> bad name args

let array_unary name f args =
  match args with
  | [| Tensor a |] -> Tensor (Tensor.map_real f a)
  | _ -> bad name args

let cmp name op args =
  match args with
  | [| Int a; Int b |] -> Bool (op (compare a b) 0)
  | [| (Int _ | Real _) as a; (Int _ | Real _) as b |] ->
    Bool (op (compare (real a) (real b)) 0)
  | [| Str a; Str b |] -> Bool (op (String.compare a b) 0)
  | [| Bool a; Bool b |] -> Bool (op (compare a b) 0)
  | [| Expr a; Expr b |] -> Bool (op (Wolf_wexpr.Expr.compare a b) 0)
  | [| Complex (ar, ai); Complex (br, bi) |] -> Bool (op (compare (ar, ai) (br, bi)) 0)
  | _ -> bad name args

let part_index len i =
  let j = if i < 0 then len + i else i - 1 in
  if i = 0 || j < 0 || j >= len then
    raise (Errors.Runtime_error (Errors.Part_out_of_range (i, len)));
  j

let tensor_get t i =
  if Tensor.is_int t then Int (Tensor.get_int t i) else Real (Tensor.get_real t i)

let set_flat t j v =
  match v with
  | Int x -> if Tensor.is_int t then Tensor.set_int t j x else Tensor.set_real t j (float_of_int x)
  | Real x -> Tensor.set_real t j x
  | _ -> raise (Errors.Runtime_error (Errors.Invalid_runtime_argument "SetPart value"))

(* Copy-on-write unless the mutability pass proved the update unaliased. *)
let part_set_1 ~inplace args =
  match args with
  | [| Tensor t; Int i; v |] ->
    let j = part_index (Tensor.dims t).(0) i in
    let t = if inplace then t else Tensor.ensure_unique t in
    set_flat t j v;
    Tensor t
  | _ -> bad "part_set_1" args

let part_set_2 ~inplace args =
  match args with
  | [| Tensor t; Int i; Int k; v |] ->
    let dims = Tensor.dims t in
    let j1 = part_index dims.(0) i in
    let j2 = part_index dims.(1) k in
    let t = if inplace then t else Tensor.ensure_unique t in
    set_flat t ((j1 * dims.(1)) + j2) v;
    Tensor t
  | _ -> bad "part_set_2" args

let checked name f args =
  match args with
  | [| Int a; Int b |] -> Int (f a b)
  | _ -> bad name args

let apply ~base args =
  match base with
  | "checked_binary_plus" -> checked base Checked.add args
  | "checked_binary_subtract" -> checked base Checked.sub args
  | "checked_binary_times" -> checked base Checked.mul args
  | "checked_binary_mod" -> checked base Checked.modulo args
  | "checked_binary_quotient" -> checked base Checked.quotient args
  | "checked_binary_power" -> checked base Checked.pow args
  | "checked_unary_minus" ->
    (match args with [| Int a |] -> Int (Checked.neg a) | _ -> bad base args)
  | "checked_unary_abs" ->
    (match args with
     | [| Int a |] -> Int (if a = min_int then raise (Errors.Runtime_error Errors.Integer_overflow) else abs a)
     | _ -> bad base args)
  | "binary_plus" -> num_binary base ( + ) ( +. ) args
  | "binary_subtract" -> num_binary base ( - ) ( -. ) args
  | "binary_times" -> num_binary base ( * ) ( *. ) args
  | "binary_divide" ->
    (match args with
     | [| a; b |] ->
       let d = real b in
       if d = 0.0 then raise (Errors.Runtime_error Errors.Division_by_zero)
       else Real (real a /. d)
     | _ -> bad base args)
  | "binary_power" ->
    (match args with
     | [| a; b |] -> Real (Float.pow (real a) (real b))
     | _ -> bad base args)
  | "binary_power_ri" ->
    (match args with
     | [| a; Int e |] ->
       let x = real a in
       let rec go acc x e =
         if e = 0 then acc
         else go (if e land 1 = 1 then acc *. x else acc) (x *. x) (e lsr 1)
       in
       if e >= 0 then Real (go 1.0 x e) else Real (1.0 /. go 1.0 x (-e))
     | _ -> bad base args)
  | "unary_minus" -> (match args with [| a |] -> Real (-.real a) | _ -> bad base args)
  | "unary_abs" -> (match args with [| a |] -> Real (Float.abs (real a)) | _ -> bad base args)
  | "complex_binary_plus" ->
    complex_binary base (fun (ar, ai) (br, bi) -> (ar +. br, ai +. bi)) args
  | "complex_binary_subtract" ->
    complex_binary base (fun (ar, ai) (br, bi) -> (ar -. br, ai -. bi)) args
  | "complex_binary_times" ->
    complex_binary base
      (fun (ar, ai) (br, bi) -> ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br)))
      args
  | "complex_binary_divide" ->
    complex_binary base
      (fun (ar, ai) (br, bi) ->
         let d = (br *. br) +. (bi *. bi) in
         (((ar *. br) +. (ai *. bi)) /. d, ((ai *. br) -. (ar *. bi)) /. d))
      args
  | "complex_binary_power" ->
    (match args with
     | [| Complex (r, i); Int e |] ->
       let mul (ar, ai) (br, bi) = ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br)) in
       let rec go acc b e =
         if e = 0 then acc else go (if e land 1 = 1 then mul acc b else acc) (mul b b) (e lsr 1)
       in
       if e >= 0 then begin
         let r, i = go (1.0, 0.0) (r, i) e in
         Complex (r, i)
       end
       else bad base args
     | _ -> bad base args)
  | "complex_abs" ->
    (match args with [| Complex (r, i) |] -> Real (Float.hypot r i) | _ -> bad base args)
  | "complex_re" -> (match args with [| Complex (r, _) |] -> Real r | _ -> bad base args)
  | "complex_im" -> (match args with [| Complex (_, i) |] -> Real i | _ -> bad base args)
  | "complex_make" ->
    (match args with [| a; b |] -> Complex (real a, real b) | _ -> bad base args)
  | "expr_binary_plus" -> expr_binary "Plus" args
  | "expr_binary_subtract" -> expr_binary "Subtract" args
  | "expr_binary_times" -> expr_binary "Times" args
  | "expr_unary_sin" -> expr_unary "Sin" args
  | "expr_unary_cos" -> expr_unary "Cos" args
  | "expr_unary_tan" -> expr_unary "Tan" args
  | "expr_unary_exp" -> expr_unary "Exp" args
  | "expr_unary_log" -> expr_unary "Log" args
  | "expr_unary_sqrt" -> expr_unary "Sqrt" args
  | "expr_part" ->
    (match args with
     | [| Expr (Wolf_wexpr.Expr.Normal (_, items)); Int i |] ->
       Expr items.(part_index (Array.length items) i)
     | _ -> bad base args)
  | "expr_length" ->
    (match args with
     | [| Expr (Wolf_wexpr.Expr.Normal (_, items)) |] -> Int (Array.length items)
     | [| Expr _ |] -> Int 0
     | _ -> bad base args)
  | "binary_less" -> cmp base ( < ) args
  | "binary_greater" -> cmp base ( > ) args
  | "binary_less_equal" -> cmp base ( <= ) args
  | "binary_greater_equal" -> cmp base ( >= ) args
  | "binary_equal" -> cmp base ( = ) args
  | "binary_unequal" -> cmp base ( <> ) args
  | "unary_not" -> (match args with [| Bool b |] -> Bool (not b) | _ -> bad base args)
  | "binary_bitand" -> checked base ( land ) args
  | "binary_bitor" -> checked base ( lor ) args
  | "binary_bitxor" -> checked base ( lxor ) args
  | "binary_shiftleft" -> checked base ( lsl ) args
  | "binary_shiftright" -> checked base ( asr ) args
  | "binary_min" ->
    (match args with
     | [| Int a; Int b |] -> Int (min a b)
     | [| a; b |] -> Real (Float.min (real a) (real b))
     | _ -> bad base args)
  | "binary_max" ->
    (match args with
     | [| Int a; Int b |] -> Int (max a b)
     | [| a; b |] -> Real (Float.max (real a) (real b))
     | _ -> bad base args)
  | "unary_sin" -> Real (sin (real args.(0)))
  | "unary_cos" -> Real (cos (real args.(0)))
  | "unary_tan" -> Real (tan (real args.(0)))
  | "unary_exp" -> Real (exp (real args.(0)))
  | "unary_log" -> Real (log (real args.(0)))
  | "unary_sqrt" -> Real (sqrt (real args.(0)))
  | "unary_floor" -> Int (int_of_float (Float.floor (real args.(0))))
  | "unary_ceiling" -> Int (int_of_float (Float.ceil (real args.(0))))
  | "unary_round" -> Int (Checked.round_half_even (real args.(0)))
  | "unary_truncate" -> Int (int_of_float (Float.trunc (real args.(0))))
  | "unary_identity_int" | "unary_identity_real" -> args.(0)
  | "int_to_real" -> Real (real args.(0))
  | "unary_evenq" ->
    (match args with [| Int a |] -> Bool (a land 1 = 0) | _ -> bad base args)
  | "unary_oddq" ->
    (match args with [| Int a |] -> Bool (a land 1 = 1) | _ -> bad base args)
  | "unary_boole" ->
    (match args with [| Bool b |] -> Int (if b then 1 else 0) | _ -> bad base args)
  | "array_binary_plus" -> array_binary base ( + ) ( +. ) args
  | "array_binary_subtract" -> array_binary base ( - ) ( -. ) args
  | "array_binary_times" -> array_binary base ( * ) ( *. ) args
  | "array_scalar_plus" -> array_scalar base ( + ) ( +. ) args
  | "array_scalar_subtract" -> array_scalar base ( - ) ( -. ) args
  | "array_scalar_times" -> array_scalar base ( * ) ( *. ) args
  | "array_unary_sin" -> array_unary base sin args
  | "array_unary_cos" -> array_unary base cos args
  | "array_unary_tan" -> array_unary base tan args
  | "array_unary_exp" -> array_unary base exp args
  | "array_unary_log" -> array_unary base log args
  | "array_unary_sqrt" -> array_unary base sqrt args
  | "part_get_1" ->
    (match args with
     | [| Tensor t; Int i |] -> tensor_get t (part_index (Tensor.dims t).(0) i)
     | _ -> bad base args)
  | "part_get_1_unchecked" ->
    (* emitted by the loop optimiser when the index is provably in range *)
    (match args with
     | [| Tensor t; Int i |] -> tensor_get t (i - 1)
     | _ -> bad base args)
  | "part_get_2" ->
    (match args with
     | [| Tensor t; Int i; Int k |] ->
       let dims = Tensor.dims t in
       let j1 = part_index dims.(0) i and j2 = part_index dims.(1) k in
       tensor_get t ((j1 * dims.(1)) + j2)
     | _ -> bad base args)
  | "part_get_row" ->
    (match args with
     | [| Tensor t; Int i |] -> Tensor (Tensor.slice t (part_index (Tensor.dims t).(0) i))
     | _ -> bad base args)
  | "part_set_1" -> part_set_1 ~inplace:false args
  | "part_set_1_inplace" -> part_set_1 ~inplace:true args
  | "part_set_2" -> part_set_2 ~inplace:false args
  | "part_set_2_inplace" -> part_set_2 ~inplace:true args
  | "array_length" ->
    (match args with [| Tensor t |] -> Int (Tensor.dims t).(0) | _ -> bad base args)
  | "array_total" ->
    (match args with
     | [| Tensor t |] ->
       (match Tensor.total t with `Int i -> Int i | `Real r -> Real r)
     | _ -> bad base args)
  | "array_reverse" ->
    (match args with
     | [| Tensor t |] ->
       let n = Tensor.flat_length t in
       if Tensor.is_int t then
         Tensor (Tensor.of_int_array (Array.init n (fun i -> Tensor.get_int t (n - 1 - i))))
       else
         Tensor (Tensor.of_real_array (Array.init n (fun i -> Tensor.get_real t (n - 1 - i))))
     | _ -> bad base args)
  | "array_join" ->
    (match args with
     | [| Tensor a; Tensor b |] when Tensor.is_int a = Tensor.is_int b ->
       let na = Tensor.flat_length a and nb = Tensor.flat_length b in
       if Tensor.is_int a then begin
         let out = Array.make (na + nb) 0 in
         for i = 0 to na - 1 do out.(i) <- Tensor.get_int a i done;
         for i = 0 to nb - 1 do out.(na + i) <- Tensor.get_int b i done;
         Tensor (Tensor.of_int_array out)
       end
       else begin
         let out = Array.make (na + nb) 0.0 in
         for i = 0 to na - 1 do out.(i) <- Tensor.get_real a i done;
         for i = 0 to nb - 1 do out.(na + i) <- Tensor.get_real b i done;
         Tensor (Tensor.of_real_array out)
       end
     | _ -> bad base args)
  | "array_append" ->
    (match args with
     | [| Tensor a; v |] ->
       let na = Tensor.flat_length a in
       (match v with
        | Int x when Tensor.is_int a ->
          let out = Array.init (na + 1) (fun i -> if i < na then Tensor.get_int a i else x) in
          Tensor (Tensor.of_int_array out)
        | _ ->
          let xv = real v in
          let out =
            Array.init (na + 1) (fun i -> if i < na then Tensor.get_real a i else xv)
          in
          Tensor (Tensor.of_real_array out))
     | _ -> bad base args)
  | "dot_mm" | "dot_mv" ->
    (match args with
     | [| Tensor a; Tensor b |] -> Tensor (Tensor.dot a b)
     | _ -> bad base args)
  | "dot_vv" | "dot_vv_int" ->
    (match args with
     | [| Tensor a; Tensor b |] ->
       let r = Tensor.dot a b in
       if Tensor.is_int r then Int (Tensor.get_int r 0) else Real (Tensor.get_real r 0)
     | _ -> bad base args)
  | "range" ->
    (match args with
     | [| Int n |] -> Tensor (Tensor.of_int_array (Array.init (max n 0) (fun i -> i + 1)))
     | _ -> bad base args)
  | "range2" ->
    (match args with
     | [| Int lo; Int hi |] ->
       let n = max (hi - lo + 1) 0 in
       Tensor (Tensor.of_int_array (Array.init n (fun i -> lo + i)))
     | _ -> bad base args)
  | "constant_array_int" ->
    (match args with
     | [| Int v; Int n |] -> Tensor (Tensor.of_int_array (Array.make (max n 0) v))
     | _ -> bad base args)
  | "array_take" ->
    (match args with
     | [| Tensor t; Int k |] when k >= 0 && k <= Tensor.flat_length t ->
       if Tensor.is_int t then
         Tensor (Tensor.of_int_array (Array.init k (fun i -> Tensor.get_int t i)))
       else Tensor (Tensor.of_real_array (Array.init k (fun i -> Tensor.get_real t i)))
     | _ -> bad base args)
  | "constant_array_real2" ->
    (match args with
     | [| Real v; Int n; Int m |] when n >= 0 && m >= 0 ->
       Tensor (Tensor.create_real [| n; m |] (Array.make (n * m) v))
     | _ -> bad base args)
  | "constant_array_int2" ->
    (match args with
     | [| Int v; Int n; Int m |] when n >= 0 && m >= 0 ->
       Tensor (Tensor.create_int [| n; m |] (Array.make (n * m) v))
     | _ -> bad base args)
  | "constant_array_real" ->
    (match args with
     | [| Real v; Int n |] -> Tensor (Tensor.of_real_array (Array.make (max n 0) v))
     | _ -> bad base args)
  | "string_length" ->
    (match args with [| Str s |] -> Int (String.length s) | _ -> bad base args)
  | "string_join" ->
    (match args with [| Str a; Str b |] -> Str (a ^ b) | _ -> bad base args)
  | "string_byte" ->
    (match args with
     | [| Str s; Int i |] -> Int (Char.code s.[part_index (String.length s) i])
     | _ -> bad base args)
  | "string_byte_unchecked" ->
    (match args with
     | [| Str s; Int i |] -> Int (Char.code s.[i - 1])
     | _ -> bad base args)
  | "string_take" ->
    (match args with
     | [| Str s; Int n |] when n >= 0 && n <= String.length s -> Str (String.sub s 0 n)
     | _ -> bad base args)
  | "to_character_code" ->
    (match args with
     | [| Str s |] ->
       Tensor (Tensor.of_int_array (Array.init (String.length s) (fun i -> Char.code s.[i])))
     | _ -> bad base args)
  | "from_character_code" ->
    (match args with
     | [| Tensor t |] when Tensor.is_int t ->
       Str (String.init (Tensor.flat_length t) (fun i -> Char.chr (Tensor.get_int t i land 255)))
     | _ -> bad base args)
  | "random_real" -> Real (Rand.uniform ())
  | "random_real_range" ->
    (match args with
     | [| Tensor t |] when Tensor.flat_length t = 2 ->
       Real (Rand.uniform_range (Tensor.get_real t 0) (Tensor.get_real t 1))
     | _ -> bad base args)
  | "random_integer" ->
    (match args with [| Int hi |] -> Int (Rand.int_range 0 hi) | _ -> bad base args)
  | "int_to_expr" ->
    (match args with [| Int i |] -> Expr (Wolf_wexpr.Expr.Int i) | _ -> bad base args)
  | "real_to_expr" ->
    (match args with [| Real r |] -> Expr (Wolf_wexpr.Expr.Real r) | _ -> bad base args)
  | "expr_to_int" ->
    (match args with
     | [| Expr e |] ->
       (match Wolf_wexpr.Expr.int_of e with
        | Some i -> Int i
        | None -> raise (Errors.Runtime_error (Errors.Invalid_runtime_argument "expr_to_int")))
     | _ -> bad base args)
  | "parallel_for_map" -> Par_runtime.parallel_for_map args
  | "parallel_reduce" -> Par_runtime.parallel_reduce args
  | "materializeconstant" | "MaterializeConstant" ->
    (* the E7 ablation: deep-copy the constant on every evaluation *)
    (match args with
     | [| Tensor t |] -> Tensor (Tensor.copy t)
     | [| v |] -> v
     | _ -> bad base args)
  | _ -> invalid_arg ("Prims.apply: unknown primitive " ^ base)

let known base =
  match apply ~base [||] with
  | _ -> true
  | exception Invalid_argument _ -> false
  | exception _ -> true
