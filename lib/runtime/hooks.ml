let kernel_eval =
  ref (fun (_ : Wolf_wexpr.Expr.t) : Wolf_wexpr.Expr.t ->
      raise (Wolf_base.Errors.Eval_error "no kernel installed (call Session.init)"))

let set_kernel_eval f = kernel_eval := f

(* Every escape from compiled code into the kernel — Kernel_call
   instructions, interpreter fallbacks, EvalEscape in the WVM — funnels
   through here, so taking the big kernel lock at this one point serializes
   all cross-domain access to interpreter state.  Reentrant: an evaluation
   already on this domain passes through. *)
let eval e =
  Wolf_obs.Profile.note_kernel_escape ();
  Wolf_obs.Trace.with_span ~cat:"kernel" "kernel-escape" (fun () ->
      Wolf_base.Kernel_lock.with_lock (fun () -> !kernel_eval e))

let auto_compile_scalar =
  ref (fun (_ : Wolf_wexpr.Expr.t) (_ : Wolf_wexpr.Symbol.t) : (float -> float) option ->
      None)

let auto_compile_enabled = ref true
