(** Chunked parallel-for runtime behind {!Wolf_compiler.Opt_parloop}'s
    [parallel_for_map] / [parallel_reduce] primitives: cuts [lo..hi] into
    chunks, runs them on the shared domain pool (the caller always claims
    chunks itself, so saturation degrades to serial instead of deadlocking),
    merges per-chunk results deterministically, and picks the chunking by
    measurement, cached per (loop fingerprint, trip-count shape class). *)

type schedule = Serial | Static of int | Dynamic of int
(** [Static k]/[Dynamic k] = [k] contiguous chunks claimed from an atomic
    cursor; static uses one chunk per worker, dynamic oversubscribes. *)

val schedule_to_string : schedule -> string

val set_jobs : int -> unit
(** Process-wide default worker count (clamped to [>= 1]; 1 = serial). *)

val current_jobs : unit -> int

val with_jobs : int -> (unit -> 'a) -> 'a
(** Domain-local override, for comparing jobs settings inside one process
    (the fuzz oracle's jobs∈{1,4} equality check). *)

val with_forced_schedule : schedule -> (unit -> 'a) -> 'a
(** Domain-local override skipping lookup and measurement entirely. *)

val set_executor : Wolf_parallel.Executor.t -> unit
(** Share an existing executor (e.g. the tier compiler's pool) for helper
    workers instead of growing a dedicated one.  Submission is always
    non-blocking, so a busy shared pool only costs parallelism. *)

val set_persist_path : string -> unit
(** Persist schedule selections to this file (sidecar of the disk compile
    cache): loaded now, rewritten temp+rename after every new selection.
    Corrupt files are deleted and ignored. *)

val clear_schedules : unit -> unit
val schedules_size : unit -> int

val measurements : unit -> int
(** Total schedule candidates measured so far (reads
    [parloop_measurements_total]) — cache hits add zero. *)

val last_schedule : unit -> schedule option
(** The schedule the most recent loop on this domain ran under (forced,
    cached or freshly measured) — bench/report tooling. *)

val shape_class : int -> int
(** floor(log2 n): the trip-count bucket of the schedule cache key. *)

val parallel_for_map : Rtval.t array -> Rtval.t
(** [[| Fun f; Tensor init; Int lo; Int hi; Int _; Str fingerprint |]]:
    copy [init] once, run [f(copy, a, b)] over disjoint subranges writing in
    place, return the copy.  [lo > hi] returns [init] unchanged. *)

val parallel_reduce : Rtval.t array -> Rtval.t
(** [[| Fun f; init; Int lo; Int hi; Int opcode; Str fingerprint |]]: fold
    chunks onto the opcode's identity with [f], merge partials in chunk
    order onto [init].  Opcodes: 1 Plus(Real) · 2 Times(Real) · 3 Min(Int) ·
    4 Min(Real) · 5 Max(Int) · 6 Max(Real). *)
