(* Runtime RNG for RandomReal/RandomInteger.

   State is domain-local: compiled code on several domains draws from
   independent splitmix streams instead of racing one global cell (losing
   increments under contention and entangling otherwise-unrelated runs).
   Each domain's stream starts from the same default seed; [seed] re-seeds
   the calling domain only, which is what the deterministic tests use. *)

let state_key = Domain.DLS.new_key (fun () -> ref 0x9E3779B97F4A7C15L)

let state () = Domain.DLS.get state_key

let seed n = state () := Int64.add (Int64.of_int n) 0x9E3779B97F4A7C15L

let next_int64 () =
  let state = state () in
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform () =
  let bits = Int64.shift_right_logical (next_int64 ()) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform_range lo hi = lo +. ((hi -. lo) *. uniform ())

let int_range lo hi =
  if hi < lo then invalid_arg "Rand.int_range";
  let span = hi - lo + 1 in
  lo + abs (Int64.to_int (next_int64 ())) mod span
