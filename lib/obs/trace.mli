(** Span/event tracing in Chrome [trace_event] format.

    The recorder is built for the compiler's threading model: every domain
    owns a bounded per-domain buffer (created on first use, registered
    globally), so emitting an event never contends with another domain's
    hot path; the buffer's own mutex is uncontended except while a snapshot
    is being taken.  Domain ids double as Perfetto track ids, so a fuzz
    campaign at [--jobs 4] renders as four overlapping tracks.

    Events are begin/end pairs ([with_span] guarantees the end is emitted
    even when the body raises) plus instants.  Buffers are bounded: once a
    domain's budget is exhausted, whole spans are dropped (a dropped begin
    suppresses its matching end, and room is always reserved for the ends
    of spans already recorded), so the emitted stream stays balanced no
    matter where the budget ran out.  The drop count is reported in the
    JSON under ["otherData"].

    When tracing is disabled — the default — the only cost at every
    instrumentation point is one atomic load and a branch. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val set_capacity : int -> unit
(** Per-domain event budget (default 2^19).  Applies to every buffer,
    including already-registered ones; shrinking below a buffer's current
    length truncates nothing but stops further recording in it. *)

val reset : unit -> unit
(** Clear every buffer and the drop counts.  Buffers stay registered. *)

(* emission *)

val with_span : ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [with_span name f] wraps [f] in a begin/end pair on the calling
    domain's track.  [args] values must already be JSON-encoded — use
    {!arg_str}/{!arg_int}.  Balanced under exceptions. *)

val begin_span : ?cat:string -> ?args:(string * string) list -> string -> unit
val end_span : ?args:(string * string) list -> string -> unit
(** Explicit pair for spans that cannot be expressed as a [with_span]
    (e.g. waiting sections inside a condition-variable loop, or spans whose
    args — an outcome — are only known at the end).  Callers own the
    balance obligation. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker (cache hits/misses, abort requests, …). *)

val new_flow_id : unit -> int
val flow_start : id:int -> ?cat:string -> ?args:(string * string) list ->
  string -> unit
val flow_finish : id:int -> ?cat:string -> ?args:(string * string) list ->
  string -> unit
(** Chrome flow events ([ph:"s"]/[ph:"f"]) drawing a causal arrow from the
    slice enclosing the start to the slice enclosing the finish — emit them
    inside spans on both sides.  Ids are process-wide; allocate one per
    hand-off with {!new_flow_id}.  The finish is emitted with [bp:"e"]. *)

val arg_str : string -> string
val arg_int : int -> string
(** Encode an argument value as JSON. *)

(* output *)

val dropped : unit -> int
(** Events refused because some domain exhausted its budget. *)

val to_json : unit -> string
(** The whole recording as a Chrome trace JSON object
    ([{"traceEvents": [...], ...}]) — load it in Perfetto or
    [chrome://tracing]. *)

val write_file : string -> unit
(** [to_json] into a file. *)
