(* Request-scoped context, propagated across domain hops.

   The ambient slot is domain-local (DLS), which is safe for the places
   that read it — executor worker domains, tier's promote domain, parloop
   helpers — because each of those runs one job at a time.  It is NOT safe
   as an ambient slot on the daemon's accept domain, where many connection
   systhreads interleave; those callers must build the captured value
   explicitly with [capture_of] instead of relying on [capture]. *)

type t = {
  rid : int;
  label : string;
  targs : (string * string) list;
  (* [("trace_id", <encoded label>)], built once at request creation so the
     hot path (flow events, span labelling) never re-escapes or re-allocates *)
}

let make ~rid ~label =
  { rid; label; targs = [ ("trace_id", Trace.arg_str label) ] }

let rid c = c.rid
let label c = c.label

let slot : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get slot)

let with_request c f =
  let cell = Domain.DLS.get slot in
  let saved = !cell in
  cell := Some c;
  Fun.protect ~finally:(fun () -> cell := saved) f

type captured = (t * int) option

let none : captured = None

let flow_args c = c.targs
let span_args = flow_args

let capture_of c : captured =
  let id = Trace.new_flow_id () in
  if Trace.enabled () then
    Trace.flow_start ~id ~cat:"serve" ~args:(flow_args c) "request-flow";
  Some (c, id)

let capture () : captured =
  match current () with None -> None | Some c -> capture_of c

let adopt (cap : captured) f =
  match cap with
  | None -> f ()
  | Some (c, id) ->
    if Trace.enabled () then
      Trace.flow_finish ~id ~cat:"serve" ~args:(flow_args c) "request-flow";
    with_request c f

let args_of_current () =
  match current () with None -> [] | Some c -> flow_args c
