type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;                       (* 'B' | 'E' | 'i' | 's' | 'f' *)
  ev_ts_ns : int;                     (* Clock.now_ns at emission *)
  ev_id : int;                        (* flow id for 's'/'f'; 0 = none *)
  ev_args : (string * string) list;   (* values pre-encoded as JSON *)
}

(* One buffer per domain.  Only the owning domain appends; the mutex exists
   so a snapshot taken from another domain (to_json) sees a consistent
   prefix, and is otherwise uncontended. *)
type buffer = {
  tid : int;
  lock : Mutex.t;
  mutable events : event array;
  mutable len : int;
  mutable open_depth : int;       (* recorded 'B' events not yet closed *)
  mutable suppressed_depth : int; (* open spans whose 'B' was dropped *)
  mutable dropped : int;
}

let dummy_event =
  { ev_name = ""; ev_cat = ""; ev_ph = 'i'; ev_ts_ns = 0; ev_id = 0; ev_args = [] }

let enabled_flag = Atomic.make false
let capacity = Atomic.make (1 lsl 19)

let registry : buffer list ref = ref []
let registry_lock = Mutex.create ()

let new_buffer () =
  let b =
    { tid = (Domain.self () :> int); lock = Mutex.create ();
      events = Array.make (min 1024 (Atomic.get capacity)) dummy_event;
      len = 0; open_depth = 0; suppressed_depth = 0; dropped = 0 }
  in
  Mutex.lock registry_lock;
  registry := b :: !registry;
  Mutex.unlock registry_lock;
  b

let buffer_key = Domain.DLS.new_key new_buffer

let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let set_capacity n = Atomic.set capacity (max 16 n)

let reset () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  List.iter
    (fun b ->
       Mutex.lock b.lock;
       b.len <- 0;
       b.open_depth <- 0;
       b.suppressed_depth <- 0;
       b.dropped <- 0;
       Mutex.unlock b.lock)
    buffers

(* Append under the budget discipline that keeps the stream balanced:
   - room is always reserved for the 'E' of every recorded 'B'
     (invariant: capacity - len >= open_depth), so a recorded span can
     always close;
   - a 'B' that does not fit is suppressed together with its matching 'E'
     (spans close LIFO per domain, so while suppressed_depth > 0 the
     innermost open span is always a suppressed one). *)
let push b (ev : event) =
  Mutex.lock b.lock;
  let cap = Atomic.get capacity in
  let slots_left = cap - b.len in
  let store () =
    if b.len >= Array.length b.events then begin
      let grown = Array.make (min cap (max 16 (2 * Array.length b.events))) dummy_event in
      Array.blit b.events 0 grown 0 b.len;
      b.events <- grown
    end;
    b.events.(b.len) <- ev;
    b.len <- b.len + 1
  in
  (match ev.ev_ph with
   | 'B' ->
     if b.suppressed_depth = 0 && slots_left > b.open_depth + 1 then begin
       store ();
       b.open_depth <- b.open_depth + 1
     end
     else begin
       b.suppressed_depth <- b.suppressed_depth + 1;
       b.dropped <- b.dropped + 1
     end
   | 'E' ->
     if b.suppressed_depth > 0 then begin
       b.suppressed_depth <- b.suppressed_depth - 1;
       b.dropped <- b.dropped + 1
     end
     else if b.open_depth > 0 then begin
       (* reserved slot: the invariant guarantees slots_left >= 1 *)
       store ();
       b.open_depth <- b.open_depth - 1
     end
     else b.dropped <- b.dropped + 1 (* unmatched end: refuse, stay balanced *)
   | _ ->
     if slots_left > b.open_depth then store ()
     else b.dropped <- b.dropped + 1);
  Mutex.unlock b.lock

let emit ?(id = 0) ph ?(cat = "") ?(args = []) name =
  if Atomic.get enabled_flag then
    push (Domain.DLS.get buffer_key)
      { ev_name = name; ev_cat = cat; ev_ph = ph; ev_ts_ns = Clock.now_ns ();
        ev_id = id; ev_args = args }

let begin_span ?cat ?args name = emit 'B' ?cat ?args name
let end_span ?args name = emit 'E' ?args name
let instant ?cat ?args name = emit 'i' ?cat ?args name

(* Flow events stitch spans on different tracks into one causal arrow: the
   's' binds to the slice enclosing it at the producer, the 'f' to the slice
   enclosing it at the consumer.  Ids come from one process-wide counter so
   an (s, f) pair is unambiguous across domains. *)
let flow_counter = Atomic.make 1
let new_flow_id () = Atomic.fetch_and_add flow_counter 1
let flow_start ~id ?cat ?args name = emit ~id 's' ?cat ?args name
let flow_finish ~id ?cat ?args name = emit ~id 'f' ?cat ?args name

let with_span ?cat ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    begin_span ?cat ?args name;
    Fun.protect ~finally:(fun () -> end_span name) f
  end

let arg_str s = "\"" ^ Json_min.escape s ^ "\""
let arg_int i = string_of_int i

let dropped () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  List.fold_left
    (fun acc b ->
       Mutex.lock b.lock;
       let d = b.dropped in
       Mutex.unlock b.lock;
       acc + d)
    0 buffers

let snapshot () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  List.rev_map
    (fun b ->
       Mutex.lock b.lock;
       let evs = Array.sub b.events 0 b.len in
       let d = b.dropped in
       Mutex.unlock b.lock;
       (b.tid, evs, d))
    buffers

let to_json () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let total_dropped = ref 0 in
  List.iter
    (fun (tid, evs, d) ->
       total_dropped := !total_dropped + d;
       Array.iter
         (fun ev ->
            if !first then first := false else Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
                 (Json_min.escape ev.ev_name)
                 (Json_min.escape (if ev.ev_cat = "" then "wolf" else ev.ev_cat))
                 ev.ev_ph
                 (float_of_int (ev.ev_ts_ns - Clock.epoch_ns) /. 1e3)
                 tid);
            if ev.ev_ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
            if ev.ev_id <> 0 then
              Buffer.add_string buf (Printf.sprintf ",\"id\":%d" ev.ev_id);
            (* bind the flow-finish to the enclosing slice, not the next one *)
            if ev.ev_ph = 'f' then Buffer.add_string buf ",\"bp\":\"e\"";
            (match ev.ev_args with
             | [] -> ()
             | args ->
               Buffer.add_string buf ",\"args\":{";
               List.iteri
                 (fun i (k, v) ->
                    if i > 0 then Buffer.add_char buf ',';
                    Buffer.add_string buf
                      (Printf.sprintf "\"%s\":%s" (Json_min.escape k) v))
                 args;
               Buffer.add_char buf '}');
            Buffer.add_char buf '}')
         evs)
    (snapshot ());
  Buffer.add_string buf
    (Printf.sprintf
       "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":%d,\"clock\":\"CLOCK_MONOTONIC\"}}"
       !total_dropped);
  Buffer.contents buf

let write_file path =
  let oc = open_out path in
  output_string oc (to_json ());
  output_char oc '\n';
  close_out oc
