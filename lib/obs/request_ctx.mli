(** Request-scoped context for cross-domain trace stitching.

    A wolfd request is decoded on the accept domain, runs on an executor
    worker, and may fan further out (tier background compiles, parloop
    helper chunks).  The context — request id plus the ["s<sid>.r<rid>"]
    label used as [trace_id] in spans — is captured explicitly at every
    submit site and restored into domain-local storage at job start, with a
    Chrome flow event ([s] at capture, [f] at adopt) drawing the causal
    arrow between the two tracks.

    The ambient slot is per-domain.  Worker-side domains run one job at a
    time so [capture]/[current] are safe there; the daemon's accept domain
    multiplexes connection systhreads, so code on it must pass the context
    explicitly via [capture_of]. *)

type t

val make : rid:int -> label:string -> t
(** Build a context; the [trace_id] span argument is encoded once here so
    per-event labelling on the hot path is allocation-light. *)

val rid : t -> int
val label : t -> string

val span_args : t -> (string * string) list
(** The cached [("trace_id", …)] pair, for labelling spans from code that
    holds the context explicitly (accept-domain paths). *)

val current : unit -> t option
(** The context adopted by the current domain's running job, if any. *)

val with_request : t -> (unit -> 'a) -> 'a
(** Run with the ambient context set; restores the previous value. *)

type captured
(** A context captured at a submit site, tied to a fresh flow id. *)

val none : captured

val capture : unit -> captured
(** Capture the ambient context (emitting the flow-start inside the
    caller's current span).  [none] when no context is set. *)

val capture_of : t -> captured
(** Like {!capture} but from an explicit context — for accept-domain code
    where the ambient slot cannot be trusted. *)

val adopt : captured -> (unit -> 'a) -> 'a
(** Run a job under a captured context: emits the flow-finish (call it
    inside the job's span so the arrow binds to it) and sets the ambient
    slot for the job's duration. *)

val args_of_current : unit -> (string * string) list
(** [["trace_id", …]] for the ambient context, or [[]] — for labelling
    spans in downstream subsystems (tier, parloop). *)
