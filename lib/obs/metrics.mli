(** Central metrics registry: counters, gauges and histograms, each
    identified by a name plus an optional label set, exported as JSON or
    Prometheus text.

    Instruments are process-global and get-or-create: asking twice for the
    same (name, labels) returns the same instrument, so independent
    subsystems can meet on a metric without coordination.  Updates are
    atomic and safe from any domain; creation takes the registry lock and
    is expected to happen at setup time (hot paths hold the instrument).

    Subsystems whose counters live elsewhere (the compile cache, the
    runtime profiler) register a {e source}: a closure producing samples at
    export time, so occupancy gauges are always current without polling. *)

type kind = Counter | Gauge | Histogram

type value =
  | V_int of int
  | V_float of float
  | V_histogram of (float * int) list * float * int
      (** cumulative (upper-bound, count) buckets, sum, total count *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_kind : kind;
  s_value : value;
}

type counter
type gauge
type histogram

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val find_gauge : ?labels:(string * string) list -> string -> float option
(** Read a gauge back without creating it — [None] if never registered. *)

val histogram : ?help:string -> ?labels:(string * string) list ->
  ?bounds:float array -> string -> histogram
(** [bounds] are bucket upper bounds in ascending order (an implicit +inf
    bucket is added); the default covers 1µs…10s exponentially. *)

val observe : histogram -> float -> unit

val find_histogram : ?labels:(string * string) list -> string -> histogram option
(** Read a histogram back without creating it — [None] if never
    registered (or registered as another kind). *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0..1]) by linear
    interpolation inside the bucket holding the target rank
    (histogram_quantile-style); 0 when empty, clamped to the last finite
    bound for observations beyond it. *)

val quantile_sum : histogram list -> float -> float
(** Like {!quantile} over the merged counts of several same-bounds series
    (e.g. one family's per-label histograms). *)

val register_source : string -> (unit -> sample list) -> unit
(** Install (or replace — the name is the identity) a pull-time sample
    producer. *)

val samples : unit -> sample list
(** Everything: registered instruments first, then sources, in
    registration order. *)

val to_json : unit -> string
(** [{"metrics": [...]}], one object per sample. *)

val to_prometheus : unit -> string
(** Prometheus text exposition format (counters get a [_total] suffix,
    histograms expand to [_bucket]/[_sum]/[_count]). *)

val write_file : ?format:[ `Json | `Prometheus ] -> string -> unit

val reset : unit -> unit
(** Zero every instrument and forget every source (tests). Instruments
    stay registered so held references keep working. *)
