let now_ns () = Int64.to_int (Monotonic_clock.now ())
let epoch_ns = now_ns ()
let now () = float_of_int (now_ns ()) *. 1e-9
