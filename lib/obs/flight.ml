(* Flight recorder: a bounded per-domain ring of completed request
   timelines, dumped to disk when a request ends badly (deadline,
   cancelled, overloaded) or breaches the latency threshold.

   Records are kept in the ring already encoded — a compact binary layout
   (LEB128 varints, length-prefixed strings), not JSON — so steady-state
   recording costs one small encode and an array store.  Dump files are
   written temp+rename (like disk_cache) so readers never see a torn
   file, and dumps are rate-limited: one trigger per suppression window
   wins, the rest just count. *)

type phase = {
  ph_name : string;
  ph_domain : int;
  ph_start_ns : int;
  ph_dur_ns : int;
}

type record = {
  fr_rid : int;
  fr_sid : int;
  fr_label : string;                  (* "s<sid>.r<rid>" — the trace_id *)
  fr_op : string;                     (* eval | compile | ... *)
  fr_outcome : string;                (* ok | deadline | cancelled | ... *)
  fr_start_ns : int;                  (* Clock.now_ns at frame arrival *)
  fr_total_ns : int;
  fr_phases : phase list;             (* in chronological order *)
}

type dump = {
  d_reason : string;
  d_trigger : record option;
  d_records : record list;
}

(* ---- binary codec ---- *)

let put_varint b n =
  let n = ref (max 0 n) in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let put_str b s =
  put_varint b (String.length s);
  Buffer.add_string b s

exception Corrupt of string

let get_varint s pos =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= String.length s then raise (Corrupt "truncated varint");
    let byte = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if !shift > 62 then raise (Corrupt "varint overflow");
    continue := byte land 0x80 <> 0
  done;
  !v

let get_str s pos =
  let n = get_varint s pos in
  if !pos + n > String.length s then raise (Corrupt "truncated string");
  let r = String.sub s !pos n in
  pos := !pos + n;
  r

let encode_record r =
  let b = Buffer.create 128 in
  put_varint b r.fr_rid;
  put_varint b r.fr_sid;
  put_str b r.fr_label;
  put_str b r.fr_op;
  put_str b r.fr_outcome;
  put_varint b r.fr_start_ns;
  put_varint b r.fr_total_ns;
  put_varint b (List.length r.fr_phases);
  List.iter
    (fun p ->
       put_str b p.ph_name;
       put_varint b p.ph_domain;
       put_varint b p.ph_start_ns;
       put_varint b p.ph_dur_ns)
    r.fr_phases;
  Buffer.contents b

let decode_record s pos =
  let fr_rid = get_varint s pos in
  let fr_sid = get_varint s pos in
  let fr_label = get_str s pos in
  let fr_op = get_str s pos in
  let fr_outcome = get_str s pos in
  let fr_start_ns = get_varint s pos in
  let fr_total_ns = get_varint s pos in
  let n = get_varint s pos in
  if n > 10_000 then raise (Corrupt "implausible phase count");
  let phases = ref [] in
  for _ = 1 to n do
    let ph_name = get_str s pos in
    let ph_domain = get_varint s pos in
    let ph_start_ns = get_varint s pos in
    let ph_dur_ns = get_varint s pos in
    phases := { ph_name; ph_domain; ph_start_ns; ph_dur_ns } :: !phases
  done;
  { fr_rid; fr_sid; fr_label; fr_op; fr_outcome; fr_start_ns; fr_total_ns;
    fr_phases = List.rev !phases }

(* ---- per-domain rings ---- *)

type ring = {
  r_dom : int;
  r_lock : Mutex.t;
  mutable r_slots : string array;     (* encoded records *)
  mutable r_len : int;
  mutable r_next : int;               (* overwrite cursor once full *)
}

let ring_cap = Atomic.make 256
let registry : ring list ref = ref []
let registry_lock = Mutex.create ()

let new_ring () =
  let r =
    { r_dom = (Domain.self () :> int); r_lock = Mutex.create ();
      r_slots = Array.make (Atomic.get ring_cap) ""; r_len = 0; r_next = 0 }
  in
  Mutex.lock registry_lock;
  registry := r :: !registry;
  Mutex.unlock registry_lock;
  r

let ring_key = Domain.DLS.new_key new_ring

let push_ring r enc =
  Mutex.lock r.r_lock;
  let cap = Array.length r.r_slots in
  if r.r_len < cap then begin
    r.r_slots.(r.r_len) <- enc;
    r.r_len <- r.r_len + 1
  end
  else begin
    r.r_slots.(r.r_next) <- enc;
    r.r_next <- (r.r_next + 1) mod cap
  end;
  Mutex.unlock r.r_lock

let ring_contents r =
  Mutex.lock r.r_lock;
  let out =
    (* oldest first: the overwrite cursor points at the oldest slot *)
    List.init r.r_len (fun i ->
        r.r_slots.((r.r_next + i) mod r.r_len))
  in
  Mutex.unlock r.r_lock;
  out

(* ---- configuration and trigger state ---- *)

let cfg_lock = Mutex.create ()
let cfg_dir = ref (None : string option)
let threshold_ns = Atomic.make max_int
let suppress_window_ns = Atomic.make 100_000_000
let last_dump_ns = Atomic.make min_int
let seq = Atomic.make 0

let n_records = Atomic.make 0
let n_dumps = Atomic.make 0
let n_suppressed = Atomic.make 0

let m_records =
  lazy (Metrics.counter ~help:"flight records appended" "flight_records")
let m_dumps =
  lazy (Metrics.counter ~help:"flight dumps written" "flight_dumps")
let m_suppressed =
  lazy (Metrics.counter ~help:"flight dumps suppressed by rate limit"
          "flight_dumps_suppressed")

let set_dir d =
  Mutex.lock cfg_lock;
  cfg_dir := d;
  Mutex.unlock cfg_lock;
  match d with
  | Some dir -> (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | None -> ()

let get_dir () =
  Mutex.lock cfg_lock;
  let d = !cfg_dir in
  Mutex.unlock cfg_lock;
  d

let set_threshold_ms ms =
  Atomic.set threshold_ns
    (if ms <= 0.0 then max_int else int_of_float (ms *. 1e6))

let set_capacity n = Atomic.set ring_cap (max 4 n)

let set_suppress_window_ms ms =
  Atomic.set suppress_window_ns (int_of_float (Float.max 0.0 ms *. 1e6))

let stats () =
  (Atomic.get n_records, Atomic.get n_dumps, Atomic.get n_suppressed)

let reset () =
  Mutex.lock registry_lock;
  let rings = !registry in
  Mutex.unlock registry_lock;
  List.iter
    (fun r ->
       Mutex.lock r.r_lock;
       r.r_len <- 0;
       r.r_next <- 0;
       Mutex.unlock r.r_lock)
    rings;
  Atomic.set n_records 0;
  Atomic.set n_dumps 0;
  Atomic.set n_suppressed 0;
  Atomic.set last_dump_ns min_int

let snapshot () =
  Mutex.lock registry_lock;
  let rings = !registry in
  Mutex.unlock registry_lock;
  let encs = List.concat_map ring_contents rings in
  let recs = List.map (fun e -> decode_record e (ref 0)) encs in
  List.sort (fun a b -> compare a.fr_start_ns b.fr_start_ns) recs

(* ---- dump files ---- *)

let magic = "WFLT1\n"

let encode_dump ~reason ~trigger encs =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  put_str b reason;
  (match trigger with
   | None -> put_varint b 0
   | Some enc ->
     put_varint b 1;
     Buffer.add_string b enc);
  put_varint b (List.length encs);
  List.iter (Buffer.add_string b) encs;
  Buffer.contents b

let dump ~reason ?trigger () =
  let dir = get_dir () in
  Mutex.lock registry_lock;
  let rings = !registry in
  Mutex.unlock registry_lock;
  let encs = List.concat_map ring_contents rings in
  let count = List.length encs in
  match dir with
  | None -> (None, count)
  | Some dir ->
    let trigger = Option.map encode_record trigger in
    let payload = encode_dump ~reason ~trigger encs in
    let name =
      Printf.sprintf "flight-%d-%d.wfr" (Unix.getpid ())
        (Atomic.fetch_and_add seq 1)
    in
    let final = Filename.concat dir name in
    let tmp = final ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc payload;
    close_out oc;
    Sys.rename tmp final;
    Atomic.incr n_dumps;
    Metrics.incr (Lazy.force m_dumps);
    (Some final, count)

let bad_outcome = function
  | "deadline" | "cancelled" | "overloaded" -> true
  | _ -> false

let record r =
  let enc = encode_record r in
  push_ring (Domain.DLS.get ring_key) enc;
  Atomic.incr n_records;
  Metrics.incr (Lazy.force m_records);
  let triggered =
    bad_outcome r.fr_outcome || r.fr_total_ns >= Atomic.get threshold_ns
  in
  if not (triggered && get_dir () <> None) then None
  else begin
    let now = Clock.now_ns () in
    let last = Atomic.get last_dump_ns in
    (* min_int means "never dumped"; subtracting it would overflow *)
    if (last <> min_int && now - last < Atomic.get suppress_window_ns)
       || not (Atomic.compare_and_set last_dump_ns last now)
    then begin
      Atomic.incr n_suppressed;
      Metrics.incr (Lazy.force m_suppressed);
      None
    end
    else begin
      let reason = if bad_outcome r.fr_outcome then r.fr_outcome else "slow" in
      fst (dump ~reason ~trigger:r ())
    end
  end

(* ---- reading and rendering ---- *)

let read_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s ->
    if String.length s < String.length magic
       || String.sub s 0 (String.length magic) <> magic
    then Error "not a flight dump (bad magic)"
    else begin
      let pos = ref (String.length magic) in
      match
        let d_reason = get_str s pos in
        let d_trigger =
          match get_varint s pos with
          | 0 -> None
          | _ -> Some (decode_record s pos)
        in
        let n = get_varint s pos in
        if n > 1_000_000 then raise (Corrupt "implausible record count");
        let recs = List.init n (fun _ -> decode_record s pos) in
        { d_reason; d_trigger; d_records = recs }
      with
      | d -> Ok d
      | exception Corrupt e -> Error e
    end

let ms ns = float_of_int ns /. 1e6

let describe_record ?(origin = 0) b r =
  Printf.bprintf b "%-10s %-8s %-10s total=%8.2fms  t+%.2fms\n"
    r.fr_label r.fr_op r.fr_outcome (ms r.fr_total_ns)
    (ms (r.fr_start_ns - origin));
  List.iter
    (fun p ->
       Printf.bprintf b "    %-16s dom%-3d +%8.2fms  %8.3fms\n"
         p.ph_name p.ph_domain
         (ms (p.ph_start_ns - r.fr_start_ns))
         (ms p.ph_dur_ns))
    r.fr_phases

let describe d =
  let b = Buffer.create 1024 in
  Printf.bprintf b "reason: %s\n" d.d_reason;
  let origin =
    let starts =
      (match d.d_trigger with Some t -> [ t.fr_start_ns ] | None -> [])
      @ List.map (fun r -> r.fr_start_ns) d.d_records
    in
    match starts with [] -> 0 | s -> List.fold_left min max_int s
  in
  (match d.d_trigger with
   | None -> ()
   | Some t ->
     Buffer.add_string b "trigger:\n  ";
     describe_record ~origin b t);
  Printf.bprintf b "ring: %d record%s\n" (List.length d.d_records)
    (if List.length d.d_records = 1 then "" else "s");
  List.iter
    (fun r ->
       Buffer.add_string b "  ";
       describe_record ~origin b r)
    d.d_records;
  Buffer.contents b
