type kind = Counter | Gauge | Histogram

type value =
  | V_int of int
  | V_float of float
  | V_histogram of (float * int) list * float * int

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_kind : kind;
  s_value : value;
}

(* atomic float accumulator: CAS loop over a boxed float *)
let float_add (a : float Atomic.t) d =
  let rec go () =
    let v = Atomic.get a in
    if not (Atomic.compare_and_set a v (v +. d)) then go ()
  in
  go ()

type counter = { c_meta : meta; c_v : int Atomic.t }
and gauge = { g_meta : meta; g_v : float Atomic.t }

and histogram = {
  h_meta : meta;
  h_bounds : float array;          (* ascending upper bounds; +inf implicit *)
  h_counts : int Atomic.t array;   (* one per bound, plus the +inf bucket *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

and meta = { m_name : string; m_labels : (string * string) list; m_help : string }

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of histogram

let lock = Mutex.create ()
let table : (string, instrument) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []            (* reverse registration order *)
let sources : (string * (unit -> sample list)) list ref = ref []

let ident name labels =
  match labels with
  | [] -> name
  | ls ->
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=\"" ^ v ^ "\"") ls)
    ^ "}"

let sorted_labels ls = List.sort (fun (a, _) (b, _) -> compare a b) ls

let get_or_create ~name ~labels ~help ~(make : meta -> instrument) ~(cast : instrument -> 'a option) : 'a =
  let labels = sorted_labels labels in
  let key = ident name labels in
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
  match Hashtbl.find_opt table key with
  | Some i ->
    (match cast i with
     | Some x -> x
     | None -> invalid_arg (Printf.sprintf "Metrics: %s already registered with another kind" key))
  | None ->
    let i = make { m_name = name; m_labels = labels; m_help = help } in
    Hashtbl.replace table key i;
    order := key :: !order;
    (match cast i with Some x -> x | None -> assert false)

let counter ?(help = "") ?(labels = []) name =
  get_or_create ~name ~labels ~help
    ~make:(fun m -> I_counter { c_meta = m; c_v = Atomic.make 0 })
    ~cast:(function I_counter c -> Some c | _ -> None)

let incr c = Atomic.incr c.c_v
let add c n = ignore (Atomic.fetch_and_add c.c_v n)
let counter_value c = Atomic.get c.c_v

let gauge ?(help = "") ?(labels = []) name =
  get_or_create ~name ~labels ~help
    ~make:(fun m -> I_gauge { g_meta = m; g_v = Atomic.make 0.0 })
    ~cast:(function I_gauge g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.g_v v
let add_gauge g d = float_add g.g_v d
let gauge_value g = Atomic.get g.g_v

let find_gauge ?(labels = []) name =
  let key = ident name (sorted_labels labels) in
  Mutex.lock lock;
  let r = Hashtbl.find_opt table key in
  Mutex.unlock lock;
  match r with Some (I_gauge g) -> Some (Atomic.get g.g_v) | _ -> None

let find_histogram ?(labels = []) name =
  let key = ident name (sorted_labels labels) in
  Mutex.lock lock;
  let r = Hashtbl.find_opt table key in
  Mutex.unlock lock;
  match r with Some (I_histogram h) -> Some h | _ -> None

let default_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

let histogram ?(help = "") ?(labels = []) ?(bounds = default_bounds) name =
  get_or_create ~name ~labels ~help
    ~make:(fun m ->
        I_histogram
          { h_meta = m; h_bounds = Array.copy bounds;
            h_counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.0; h_count = Atomic.make 0 })
    ~cast:(function I_histogram h -> Some h | _ -> None)

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
  Atomic.incr h.h_counts.(bucket 0);
  float_add h.h_sum v;
  Atomic.incr h.h_count

(* Quantile estimate in the Prometheus histogram_quantile style: find the
   bucket holding the target rank and interpolate linearly inside it.  The
   +inf bucket clamps to the last finite bound.  [quantile_sum] merges
   several series of one family (they share bounds by construction) so an
   op-agnostic p99 can be read from per-op histograms. *)
let quantile_sum hs q =
  match hs with
  | [] -> 0.0
  | h0 :: _ ->
    let n = Array.length h0.h_bounds in
    let counts = Array.make (n + 1) 0 in
    List.iter
      (fun h ->
         Array.iteri
           (fun i a -> if i <= n then counts.(i) <- counts.(i) + Atomic.get a)
           h.h_counts)
      hs;
    let total = Array.fold_left ( + ) 0 counts in
    if total = 0 then 0.0
    else begin
      let rank = q *. float_of_int total in
      let rec go i cum =
        if i > n then h0.h_bounds.(n - 1)
        else begin
          let cum' = cum + counts.(i) in
          if float_of_int cum' >= rank then begin
            let lo = if i = 0 then 0.0 else h0.h_bounds.(i - 1) in
            if i = n then lo
            else begin
              let hi = h0.h_bounds.(i) in
              if counts.(i) = 0 then hi
              else
                lo
                +. (hi -. lo) *. (rank -. float_of_int cum)
                   /. float_of_int counts.(i)
            end
          end
          else go (i + 1) cum'
        end
      in
      go 0 0
    end

let quantile h q = quantile_sum [ h ] q

let register_source name f =
  Mutex.lock lock;
  sources := (name, f) :: List.remove_assoc name !sources;
  Mutex.unlock lock

let sample_of = function
  | I_counter c ->
    { s_name = c.c_meta.m_name; s_labels = c.c_meta.m_labels;
      s_help = c.c_meta.m_help; s_kind = Counter; s_value = V_int (Atomic.get c.c_v) }
  | I_gauge g ->
    { s_name = g.g_meta.m_name; s_labels = g.g_meta.m_labels;
      s_help = g.g_meta.m_help; s_kind = Gauge; s_value = V_float (Atomic.get g.g_v) }
  | I_histogram h ->
    (* cumulative buckets, Prometheus-style *)
    let acc = ref 0 in
    let buckets =
      Array.to_list
        (Array.mapi
           (fun i bound ->
              acc := !acc + Atomic.get h.h_counts.(i);
              (bound, !acc))
           h.h_bounds)
    in
    { s_name = h.h_meta.m_name; s_labels = h.h_meta.m_labels;
      s_help = h.h_meta.m_help; s_kind = Histogram;
      s_value = V_histogram (buckets, Atomic.get h.h_sum, Atomic.get h.h_count) }

let samples () =
  Mutex.lock lock;
  let keys = List.rev !order in
  let instruments = List.map (fun k -> Hashtbl.find table k) keys in
  let srcs = List.rev !sources in
  Mutex.unlock lock;
  List.map sample_of instruments
  @ List.concat_map (fun (_, f) -> f ()) srcs

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

let json_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"metrics\":[";
  List.iteri
    (fun i s ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf "{\"name\":\"%s\",\"type\":\"%s\"" (Json_min.escape s.s_name)
            (kind_name s.s_kind));
       if s.s_help <> "" then
         Buffer.add_string b (Printf.sprintf ",\"help\":\"%s\"" (Json_min.escape s.s_help));
       if s.s_labels <> [] then begin
         Buffer.add_string b ",\"labels\":{";
         List.iteri
           (fun j (k, v) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "\"%s\":\"%s\"" (Json_min.escape k) (Json_min.escape v)))
           s.s_labels;
         Buffer.add_char b '}'
       end;
       (match s.s_value with
        | V_int n -> Buffer.add_string b (Printf.sprintf ",\"value\":%d" n)
        | V_float f -> Buffer.add_string b (Printf.sprintf ",\"value\":%s" (json_num f))
        | V_histogram (buckets, sum, count) ->
          Buffer.add_string b ",\"buckets\":[";
          List.iteri
            (fun j (le, c) ->
               if j > 0 then Buffer.add_char b ',';
               Buffer.add_string b
                 (Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_num le) c))
            buckets;
          Buffer.add_string b
            (Printf.sprintf "],\"sum\":%s,\"count\":%d" (json_num sum) count));
       Buffer.add_char b '}')
    (samples ());
  Buffer.add_string b "]}";
  Buffer.contents b

(* Exposition-format escaping.  OCaml's [%S] is wrong here: it emits
   decimal escapes ["\013"] for control bytes, which Prometheus parsers
   take literally.  Label values escape backslash, double-quote and
   newline; HELP text escapes only backslash and newline. *)
let prom_escape ~quote s =
  let plain =
    String.for_all
      (fun c -> c <> '\\' && c <> '\n' && not (quote && c = '"'))
      s
  in
  if plain then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
         match c with
         | '\\' -> Buffer.add_string b "\\\\"
         | '\n' -> Buffer.add_string b "\\n"
         | '"' when quote -> Buffer.add_string b "\\\""
         | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let prom_labels = function
  | [] -> ""
  | ls ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape ~quote:true v))
           ls)
    ^ "}"

let to_prometheus () =
  let b = Buffer.create 4096 in
  let seen_header : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
       let base =
         match s.s_kind with Counter -> s.s_name ^ "_total" | _ -> s.s_name
       in
       if not (Hashtbl.mem seen_header base) then begin
         Hashtbl.replace seen_header base ();
         if s.s_help <> "" then
           Buffer.add_string b
             (Printf.sprintf "# HELP %s %s\n" base
                (prom_escape ~quote:false s.s_help));
         Buffer.add_string b
           (Printf.sprintf "# TYPE %s %s\n" base (kind_name s.s_kind))
       end;
       match s.s_value with
       | V_int n ->
         Buffer.add_string b
           (Printf.sprintf "%s%s %d\n" base (prom_labels s.s_labels) n)
       | V_float f ->
         Buffer.add_string b
           (Printf.sprintf "%s%s %s\n" base (prom_labels s.s_labels) (json_num f))
       | V_histogram (buckets, sum, count) ->
         List.iter
           (fun (le, c) ->
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" base
                   (prom_labels (s.s_labels @ [ ("le", json_num le) ]))
                   c))
           buckets;
         Buffer.add_string b
           (Printf.sprintf "%s_bucket%s %d\n" base
              (prom_labels (s.s_labels @ [ ("le", "+Inf") ]))
              count);
         Buffer.add_string b
           (Printf.sprintf "%s_sum%s %s\n" base (prom_labels s.s_labels) (json_num sum));
         Buffer.add_string b
           (Printf.sprintf "%s_count%s %d\n" base (prom_labels s.s_labels) count))
    (samples ());
  Buffer.contents b

let write_file ?(format = `Json) path =
  let oc = open_out path in
  output_string oc (match format with `Json -> to_json () | `Prometheus -> to_prometheus ());
  output_char oc '\n';
  close_out oc

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ i ->
       match i with
       | I_counter c -> Atomic.set c.c_v 0
       | I_gauge g -> Atomic.set g.g_v 0.0
       | I_histogram h ->
         Array.iter (fun a -> Atomic.set a 0) h.h_counts;
         Atomic.set h.h_sum 0.0;
         Atomic.set h.h_count 0)
    table;
  sources := [];
  Mutex.unlock lock
