(** Opt-in runtime profiling of compiled code.

    When a program is compiled with [Options.profile], the backend wraps
    every emitted function in {!wrap_fn}, which records call counts plus
    cumulative total and {e self} time (total minus time spent in profiled
    callees, tracked by a per-domain shadow stack — recursion is safe,
    though a recursive function's total time double-counts nested
    activations, as in every flat profiler).

    Alongside the per-function table, three always-compiled-in event
    counters cover the runtime costs the paper's abort/memory machinery
    introduces: abort polls, compiled→kernel escapes, and tensor
    copy-on-write copies.  All of it is disabled by default: the only cost
    at each site is an atomic load and branch. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every per-function cell and event counter. *)

type fn_stat = {
  pf_name : string;
  pf_calls : int;
  pf_self : float;    (** seconds, excluding profiled callees *)
  pf_total : float;   (** seconds, including them *)
}

val wrap_fn : string -> ('a -> 'b) -> 'a -> 'b
(** Instrument one emitted function.  The cell is resolved once, at wrap
    time; the per-call cost when profiling is off is one atomic load. *)

(* event counters *)

val note_abort_poll : unit -> unit
val note_kernel_escape : unit -> unit
val note_cow_copy : unit -> unit

val abort_polls : unit -> int
val kernel_escapes : unit -> int
val cow_copies : unit -> int

(* reporting *)

val stats : unit -> fn_stat list
(** Hottest first (by self time). *)

val report : unit -> string
(** The hot-function table plus the event counters, human-readable. *)

val to_json : unit -> string
(** Same data as a JSON object. *)

val register_metrics : unit -> unit
(** Expose the event counters and per-function totals through
    {!Metrics.register_source} under the ["runtime_profile"] source. *)
