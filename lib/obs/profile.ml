let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

type cell = {
  name : string;
  calls : int Atomic.t;
  self_ns : int Atomic.t;
  total_ns : int Atomic.t;
}

let lock = Mutex.create ()
let cells : (string, cell) Hashtbl.t = Hashtbl.create 32

let cell_of name =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt cells name with
    | Some c -> c
    | None ->
      let c = { name; calls = Atomic.make 0; self_ns = Atomic.make 0;
                total_ns = Atomic.make 0 } in
      Hashtbl.replace cells name c;
      c
  in
  Mutex.unlock lock;
  c

(* per-domain shadow stack: each live profiled activation accumulates the
   total time of its profiled callees, so self = total - children *)
type pframe = { mutable child_ns : int }

let stack_key : pframe list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let wrap_fn name f =
  let c = cell_of name in
  fun x ->
    if not (Atomic.get on) then f x
    else begin
      let stack = Domain.DLS.get stack_key in
      let fr = { child_ns = 0 } in
      stack := fr :: !stack;
      let t0 = Clock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
            let total = Clock.now_ns () - t0 in
            (stack := match !stack with _ :: tl -> tl | [] -> []);
            (match !stack with p :: _ -> p.child_ns <- p.child_ns + total | [] -> ());
            Atomic.incr c.calls;
            ignore (Atomic.fetch_and_add c.total_ns total);
            ignore (Atomic.fetch_and_add c.self_ns (max 0 (total - fr.child_ns))))
        (fun () -> f x)
    end

(* event counters *)

let abort_poll_count = Atomic.make 0
let kernel_escape_count = Atomic.make 0
let cow_copy_count = Atomic.make 0

let[@inline] note_abort_poll () =
  if Atomic.get on then Atomic.incr abort_poll_count

let[@inline] note_kernel_escape () =
  if Atomic.get on then Atomic.incr kernel_escape_count

let[@inline] note_cow_copy () =
  if Atomic.get on then Atomic.incr cow_copy_count

let abort_polls () = Atomic.get abort_poll_count
let kernel_escapes () = Atomic.get kernel_escape_count
let cow_copies () = Atomic.get cow_copy_count

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ c ->
       Atomic.set c.calls 0;
       Atomic.set c.self_ns 0;
       Atomic.set c.total_ns 0)
    cells;
  Mutex.unlock lock;
  Atomic.set abort_poll_count 0;
  Atomic.set kernel_escape_count 0;
  Atomic.set cow_copy_count 0

type fn_stat = {
  pf_name : string;
  pf_calls : int;
  pf_self : float;
  pf_total : float;
}

let stats () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) cells [] in
  Mutex.unlock lock;
  all
  |> List.filter_map (fun c ->
      let calls = Atomic.get c.calls in
      if calls = 0 then None
      else
        Some
          { pf_name = c.name; pf_calls = calls;
            pf_self = float_of_int (Atomic.get c.self_ns) *. 1e-9;
            pf_total = float_of_int (Atomic.get c.total_ns) *. 1e-9 })
  |> List.sort (fun a b -> compare b.pf_self a.pf_self)

let report () =
  let b = Buffer.create 512 in
  let rows = stats () in
  let grand_self = List.fold_left (fun acc r -> acc +. r.pf_self) 0.0 rows in
  Buffer.add_string b
    (Printf.sprintf "%-28s %10s %12s %12s %7s\n" "function" "calls" "self-ms"
       "total-ms" "self%");
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "%-28s %10d %12.3f %12.3f %6.1f%%\n" r.pf_name r.pf_calls
            (r.pf_self *. 1e3) (r.pf_total *. 1e3)
            (if grand_self > 0.0 then 100.0 *. r.pf_self /. grand_self else 0.0)))
    rows;
  Buffer.add_string b
    (Printf.sprintf
       "events: %d abort polls, %d kernel escapes, %d copy-on-write copies\n"
       (abort_polls ()) (kernel_escapes ()) (cow_copies ()));
  Buffer.contents b

let to_json () =
  let rows = stats () in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"functions\":[";
  List.iteri
    (fun i r ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf
            "{\"name\":\"%s\",\"calls\":%d,\"self_seconds\":%.9f,\"total_seconds\":%.9f}"
            (Json_min.escape r.pf_name) r.pf_calls r.pf_self r.pf_total))
    rows;
  Buffer.add_string b
    (Printf.sprintf
       "],\"counters\":{\"abort_polls\":%d,\"kernel_escapes\":%d,\"cow_copies\":%d}}"
       (abort_polls ()) (kernel_escapes ()) (cow_copies ()));
  Buffer.contents b

let register_metrics () =
  Metrics.register_source "runtime_profile" (fun () ->
      let open Metrics in
      let c name help v =
        { s_name = name; s_labels = []; s_help = help; s_kind = Counter;
          s_value = V_int v }
      in
      [ c "runtime_abort_polls" "abort-flag polls executed by compiled code"
          (abort_polls ());
        c "runtime_kernel_escapes" "compiled->kernel evaluator escapes"
          (kernel_escapes ());
        c "runtime_cow_copies" "tensor copy-on-write copies" (cow_copies ()) ]
      @ List.concat_map
          (fun r ->
             [ { s_name = "runtime_function_calls";
                 s_labels = [ ("fn", r.pf_name) ]; s_help = "";
                 s_kind = Counter; s_value = V_int r.pf_calls };
               { s_name = "runtime_function_self_seconds";
                 s_labels = [ ("fn", r.pf_name) ]; s_help = "";
                 s_kind = Counter; s_value = V_float r.pf_self } ])
          (stats ()))
