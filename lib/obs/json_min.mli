(** A deliberately tiny JSON reader/writer helper.

    The observability exporters emit JSON by string concatenation (no
    external dependency), and the smoke checks and tests need to confirm
    those emissions actually parse and have the right shape.  This module is
    that checker: a strict recursive-descent parser for the JSON subset we
    emit (RFC 8259 minus surrogate-pair decoding — escapes are validated but
    [\uXXXX] is kept literal in the decoded string), plus the escaping
    function every emitter in the tree shares. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error.
    The error string includes the byte offset of the failure. *)

val parse_exn : string -> t
(** [parse] raising [Failure]. *)

(* accessors (shape checks read much better through these) *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val to_list : t -> t list
(** Elements of an array; [] for non-arrays. *)

val str : t -> string option
val num : t -> float option

val escape : string -> string
(** Escape a string for inclusion inside JSON quotes: backslash, quote,
    control characters. *)
