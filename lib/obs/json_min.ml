type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of int * string

let parse_exn_at (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance (); Buffer.contents b
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape");
          (match s.[!pos] with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'u' ->
             if !pos + 4 >= n then fail "truncated \\u escape";
             let hex = String.sub s (!pos + 1) 4 in
             String.iter
               (fun c ->
                  match c with
                  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                  | _ -> fail "bad \\u escape")
               hex;
             (* validated but kept literal: the checkers only need
                well-formedness, not the decoded code point *)
             Buffer.add_string b ("\\u" ^ hex);
             pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let any cs = match peek () with Some c when String.contains cs c -> advance (); true | _ -> false in
    let digits () =
      let seen = ref false in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        advance (); seen := true
      done;
      !seen
    in
    ignore (any "-");
    if not (digits ()) then fail "bad number";
    if any "." then if not (digits ()) then fail "bad fraction";
    if any "eE" then begin
      ignore (any "+-");
      if not (digits ()) then fail "bad exponent"
    end;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn_at s with
  | v -> Ok v
  | exception Bad (pos, msg) -> Error (Printf.sprintf "at byte %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Error e -> failwith ("Json_min.parse: " ^ e)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function Arr xs -> xs | _ -> []
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
