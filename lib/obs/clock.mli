(** Monotonic time base shared by every observability pillar.

    All span timestamps, histogram observations and profile self-times come
    from one clock so that durations measured in different subsystems are
    directly comparable.  The clock is CLOCK_MONOTONIC (via a noalloc C
    stub), so NTP steps and wall-clock adjustments can never produce
    negative spans. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary (per-process) origin.  Monotonic,
    noalloc, safe from any domain. *)

val now : unit -> float
(** [now_ns] in seconds. *)

val epoch_ns : int
(** The process-start reading of the clock; trace timestamps are reported
    relative to it so they stay small and positive. *)
