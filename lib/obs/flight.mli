(** Slow-request flight recorder.

    Completed request timelines are appended to a bounded per-domain ring
    as compact binary records (varints + length-prefixed strings, not
    JSON).  A request that ends with a triggering outcome ([deadline],
    [cancelled], [overloaded]) or whose total latency breaches the
    configured threshold causes the whole ring — every domain's recent
    history — to be dumped atomically (temp+rename) into the configured
    directory, rate-limited to one dump per suppression window.  Dumps are
    read back with {!read_file} and rendered with {!describe} (the
    [wolfc flight] pretty-printer). *)

type phase = {
  ph_name : string;                   (** decode, queue_wait, eval, … *)
  ph_domain : int;                    (** domain id the phase ran on *)
  ph_start_ns : int;
  ph_dur_ns : int;
}

type record = {
  fr_rid : int;
  fr_sid : int;
  fr_label : string;                  (** ["s<sid>.r<rid>"] — the trace_id *)
  fr_op : string;
  fr_outcome : string;
  fr_start_ns : int;
  fr_total_ns : int;
  fr_phases : phase list;             (** chronological *)
}

type dump = {
  d_reason : string;                  (** deadline/cancelled/overloaded/slow/manual *)
  d_trigger : record option;          (** the offending request, if any *)
  d_records : record list;            (** ring contents, oldest first per ring *)
}

(* configuration *)

val set_dir : string option -> unit
(** Where dumps go; [None] (the default) disables dumping — records still
    accumulate in the rings.  Creates the directory if missing. *)

val set_threshold_ms : float -> unit
(** Latency trigger; [<= 0] disables the threshold (outcome triggers
    remain).  Default: disabled. *)

val set_capacity : int -> unit
(** Per-domain ring capacity (default 256); applies to rings created
    afterwards. *)

val set_suppress_window_ms : float -> unit
(** Minimum spacing between automatic dumps (default 100ms). *)

(* recording *)

val record : record -> string option
(** Append to the calling domain's ring; returns the dump path if this
    record triggered one. *)

val dump : reason:string -> ?trigger:record -> unit -> string option * int
(** Force a dump of every ring ([dump-flight] protocol op).  Returns the
    path ([None] when no directory is configured) and the record count. *)

val snapshot : unit -> record list
(** Decoded ring contents, all domains, sorted by start time (tests). *)

val stats : unit -> int * int * int
(** (records appended, dumps written, dumps suppressed). *)

val reset : unit -> unit
(** Clear rings and counters (tests).  Configuration is kept. *)

(* reading *)

val read_file : string -> (dump, string) result
val describe : dump -> string

(* codec, exposed for tests *)

val encode_record : record -> string
val decode_record : string -> int ref -> record
