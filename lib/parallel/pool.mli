(** Domain pool: shard independent tasks across domains with deterministic
    merge order.

    The work queue is an atomic cursor over task indices (bounded, every
    index claimed exactly once, idle domains steal remaining work); results
    accumulate into per-index slots, so output order equals task order — the
    same answer at every [jobs], only faster.  Used by [wolfc fuzz --jobs],
    [wolfc compile --jobs] and [bench fig2 --jobs]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [Array.init n f] computed on up to [jobs] domains
    (clamped to [max 1 (min jobs n)]; [jobs <= 1] runs inline with zero
    overhead).  If any [f i] raises, the first failure is re-raised on the
    calling domain after all domains join. *)

val map_list : jobs:int -> 'a list -> ('a -> 'b) -> 'b list
(** List version of {!map}; result order matches input order. *)

val run : jobs:int -> (unit -> unit) list -> unit
(** Run side-effecting thunks across the pool; returns when all finish. *)
