(** Persistent domain pool with a bounded, non-blocking submission queue.

    Where {!Pool.map} shards one known-size batch and joins, an executor's
    workers outlive any single request: [wolfd] schedules every compile and
    eval job here.  The queue bound is the admission-control signal —
    [submit] never blocks, it reports [`Saturated] so the caller can answer
    "overloaded" instead of silently queuing without bound. *)

type t

type stats = {
  queued : int;      (** jobs waiting in the queue *)
  running : int;     (** jobs currently executing on a worker *)
  capacity : int;    (** queue bound *)
  jobs : int;        (** worker domains *)
  executed : int;    (** jobs completed since [create] *)
  crashed : int;     (** jobs that escaped with an exception (a job bug —
                         the worker survives and keeps serving) *)
  saturated : int;   (** [submit]s refused with [`Saturated] since [create]
                         (the backpressure observability signal: a saturated
                         parallel-for shows up here, not as a hang) *)
}

val create : ?capacity:int -> jobs:int -> unit -> t
(** Spawn [max 1 jobs] worker domains sharing one FIFO queue bounded at
    [capacity] (default 64) waiting entries; running jobs do not count
    against the bound. *)

val submit : t -> (unit -> unit) -> [ `Accepted | `Saturated | `Stopped ]
(** Enqueue a job, or refuse immediately: [`Saturated] when the queue is at
    capacity, [`Stopped] after {!shutdown} began.  Jobs own their error
    handling; an escaping exception is counted in [crashed] and dropped. *)

val stats : t -> stats

val register_metrics : name:string -> t -> unit
(** Install a pull-time metrics source named [executor:<name>] exporting
    [executor_queue_depth], [executor_running], [executor_queue_capacity],
    [executor_workers], [executor_utilization] (gauges) and
    [executor_executed]/[executor_crashed]/[executor_saturated] (counters), all labelled
    [pool=<name>].  Replaces any previous source of the same name, so
    restarting a pool never duplicates samples. *)

val quiesce : t -> unit
(** Block until the queue is empty and no job is running (tests). *)

val shutdown : t -> unit
(** Stop accepting work, let queued jobs drain, join all workers.
    Idempotent-ish: second call joins an empty worker list. *)
