(* Domain pool: shard [n] independent tasks over [jobs] domains.

   The work queue is the interval [0, n): an atomic next-index cursor is the
   bounded queue (every task is claimed exactly once, no task is lost, and a
   domain that finishes early steals the remaining indices instead of
   idling behind a static partition).  Each result lands in its own slot of
   a preallocated array, so the merge order is by construction the task
   order — a [map ~jobs:4] returns bit-identical output to [~jobs:1]
   regardless of scheduling.

   Exceptions: the first failure (by completion time) is remembered, the
   cursor is drained so workers stop promptly, and the exception is re-raised
   on the calling domain with its backtrace after every domain has joined. *)

let default_jobs () = Domain.recommended_domain_count ()

type first_error = { exn : exn; bt : Printexc.raw_backtrace }

let map ~jobs n (f : int -> 'a) : 'a array =
  if n <= 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then Array.init n f
    else begin
      let next = Atomic.make 0 in
      let results : 'a option array = Array.make n None in
      let error : first_error option Atomic.t = Atomic.make None in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            match
              Wolf_obs.Trace.with_span ~cat:"pool" "job"
                ~args:[ ("index", Wolf_obs.Trace.arg_int i) ]
                (fun () -> f i)
            with
            | v -> results.(i) <- Some v
            | exception exn ->
              let bt = Printexc.get_raw_backtrace () in
              if Atomic.compare_and_set error None (Some { exn; bt }) then
                (* drain the queue so other workers wind down *)
                Atomic.set next n;
              continue := false
        done
      in
      let domains =
        Array.init (jobs - 1) (fun _ ->
            (* per-domain capture: each spawned worker adopts the caller's
               request context (tier -O2 compiles under wolfd reach here) *)
            let cap = Wolf_obs.Request_ctx.capture () in
            Domain.spawn (fun () -> Wolf_obs.Request_ctx.adopt cap worker))
      in
      worker ();
      Array.iter Domain.join domains;
      (* Domain.join is the happens-before edge publishing every slot *)
      match Atomic.get error with
      | Some { exn; bt } -> Printexc.raise_with_backtrace exn bt
      | None ->
        Array.map
          (function
            | Some v -> v
            | None -> invalid_arg "Pool.map: task skipped (worker died?)")
          results
    end
  end

let map_list ~jobs (xs : 'a list) (f : 'a -> 'b) : 'b list =
  let arr = Array.of_list xs in
  Array.to_list (map ~jobs (Array.length arr) (fun i -> f arr.(i)))

let run ~jobs (thunks : (unit -> unit) list) : unit =
  ignore (map_list ~jobs thunks (fun f -> f ()))
