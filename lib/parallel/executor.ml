(* Persistent domain pool with a bounded submission queue.

   [Pool.map] shards a known-size batch and tears its domains down when the
   batch is done; a long-running service needs the dual shape: workers that
   outlive any one request and a queue whose depth is the admission-control
   signal.  [submit] never blocks — when the queue is at capacity the caller
   gets [`Saturated] back immediately and turns it into an explicit
   "overloaded" reply instead of an invisible convoy.

   Jobs are fire-and-forget thunks that carry their own reply channel; an
   exception escaping a job is the job's bug, so it is counted and dropped
   rather than allowed to kill the worker (the daemon must survive any one
   request). *)

type stats = {
  queued : int;      (** jobs waiting in the queue *)
  running : int;     (** jobs currently executing on a worker *)
  capacity : int;    (** queue bound ([submit] beyond it is [`Saturated]) *)
  jobs : int;        (** worker domains *)
  executed : int;    (** jobs completed since [create] *)
  crashed : int;     (** jobs that escaped with an exception *)
  saturated : int;   (** [submit]s bounced with [`Saturated] since [create] *)
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;                  (* signalled when a worker finishes *)
  queue : (unit -> unit) Queue.t;
  capacity : int;
  mutable stopping : bool;
  mutable running : int;
  mutable executed : int;
  mutable crashed : int;
  mutable saturated : int;
  mutable workers : unit Domain.t list;
}

let create ?(capacity = 64) ~jobs () =
  let t =
    { lock = Mutex.create (); nonempty = Condition.create ();
      idle = Condition.create (); queue = Queue.create ();
      capacity = max 1 capacity; stopping = false; running = 0;
      executed = 0; crashed = 0; saturated = 0; workers = [] }
  in
  let worker () =
    let continue = ref true in
    while !continue do
      Mutex.lock t.lock;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.nonempty t.lock
      done;
      if Queue.is_empty t.queue && t.stopping then begin
        Mutex.unlock t.lock;
        continue := false
      end
      else begin
        let job = Queue.pop t.queue in
        t.running <- t.running + 1;
        Mutex.unlock t.lock;
        (match Wolf_obs.Trace.with_span ~cat:"pool" "job" job with
         | () -> ()
         | exception _ ->
           Mutex.lock t.lock;
           t.crashed <- t.crashed + 1;
           Mutex.unlock t.lock);
        Mutex.lock t.lock;
        t.running <- t.running - 1;
        t.executed <- t.executed + 1;
        Condition.broadcast t.idle;
        Mutex.unlock t.lock
      end
    done
  in
  t.workers <- List.init (max 1 jobs) (fun _ -> Domain.spawn worker);
  t

let submit t job =
  (* Capture the submitter's request context (if any): the flow-start
     lands in the submitter's open span, and the worker restores the
     context — emitting the flow-finish inside its "job" span — before
     running the thunk, so cross-domain spans stitch under one request. *)
  let cap = Wolf_obs.Request_ctx.capture () in
  let job () = Wolf_obs.Request_ctx.adopt cap job in
  Mutex.lock t.lock;
  let r =
    if t.stopping then `Stopped
    else if Queue.length t.queue >= t.capacity then begin
      t.saturated <- t.saturated + 1;
      `Saturated
    end
    else begin
      Queue.push job t.queue;
      Condition.signal t.nonempty;
      `Accepted
    end
  in
  Mutex.unlock t.lock;
  r

let stats t =
  Mutex.lock t.lock;
  let s =
    { queued = Queue.length t.queue; running = t.running;
      capacity = t.capacity; jobs = List.length t.workers;
      executed = t.executed; crashed = t.crashed; saturated = t.saturated }
  in
  Mutex.unlock t.lock;
  s

let register_metrics ~name t =
  (* Pull-time source: queue depth / utilization are read fresh at every
     export, so `wolfc stats` and --metrics-out see the live executor
     without the daemon's stats op in the loop.  register_source replaces
     by name, so re-registering after a restart never duplicates samples. *)
  let labels = [ ("pool", name) ] in
  Wolf_obs.Metrics.register_source ("executor:" ^ name) (fun () ->
      let s = stats t in
      let g mname help v =
        { Wolf_obs.Metrics.s_name = mname; s_labels = labels; s_help = help;
          s_kind = Wolf_obs.Metrics.Gauge; s_value = Wolf_obs.Metrics.V_float v }
      in
      let c mname help v =
        { Wolf_obs.Metrics.s_name = mname; s_labels = labels; s_help = help;
          s_kind = Wolf_obs.Metrics.Counter; s_value = Wolf_obs.Metrics.V_int v }
      in
      [ g "executor_queue_depth" "jobs waiting in the executor queue"
          (float_of_int s.queued);
        g "executor_queue_capacity" "executor queue bound" (float_of_int s.capacity);
        g "executor_running" "jobs currently executing" (float_of_int s.running);
        g "executor_workers" "worker domains" (float_of_int s.jobs);
        g "executor_utilization" "running workers / total workers"
          (if s.jobs = 0 then 0.0 else float_of_int s.running /. float_of_int s.jobs);
        c "executor_executed" "jobs completed since create" s.executed;
        c "executor_crashed" "jobs that escaped with an exception" s.crashed;
        c "executor_saturated" "submissions bounced at a full queue" s.saturated ])

let quiesce t =
  Mutex.lock t.lock;
  while not (Queue.is_empty t.queue) || t.running > 0 do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  Mutex.lock t.lock;
  t.workers <- [];
  Mutex.unlock t.lock
