type t = { id : int; name : string; mutable attrs : Attributes.set }

(* One process-wide intern table, guarded by [lock].  Interning must be
   globally unique AND physically unique (Symbol.equal is [==]), so every
   read-modify-write on the table — including the read side of intern, which
   otherwise races a resize in another domain — happens under the lock. *)
let table : (string, t) Hashtbl.t = Hashtbl.create 512
let counter = Wolf_base.Id_gen.create ()
let lock = Mutex.create ()

let[@inline] locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let intern name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some s -> s
      | None ->
        let s = { id = Wolf_base.Id_gen.next counter; name; attrs = Attributes.empty } in
        Hashtbl.add table name s;
        s)

let fresh base =
  (* id draw and table insert happen under one critical section: two domains
     generating serials concurrently each claim a distinct id, and a name a
     user program already interned (say x$3) is skipped — the existing symbol
     keeps sole ownership of that name and its physical identity. *)
  locked (fun () ->
      let rec try_serial () =
        let n = Wolf_base.Id_gen.next counter in
        let name = Printf.sprintf "%s$%d" base n in
        if Hashtbl.mem table name then try_serial ()
        else begin
          let s = { id = n; name; attrs = Attributes.empty } in
          Hashtbl.add table name s;
          s
        end
      in
      try_serial ())

let name s = s.name
let id s = s.id
let equal a b = a == b
let compare a b = Stdlib.compare a.id b.id
let hash s = s.id

(* [attrs] holds an immutable set value, so unlocked reads see a consistent
   (if possibly slightly stale) set — a single word can't tear.  Writes are
   read-modify-write and go under the lock. *)
let attributes s = s.attrs
let set_attributes s a = locked (fun () -> s.attrs <- a)
let add_attribute s a = locked (fun () -> s.attrs <- Attributes.add a s.attrs)
let has_attribute s a = Attributes.mem a s.attrs
let pp fmt s = Format.pp_print_string fmt s.name
