open Expr

let full_form = Expr.to_string

(* Precedence levels mirror Parser's binding powers. *)
let prec_of = function
  | "CompoundExpression" -> 10
  | "Set" | "SetDelayed" | "AddTo" | "SubtractFrom" | "TimesBy" | "DivideBy" -> 40
  | "Function" -> 90
  | "ReplaceAll" | "ReplaceRepeated" -> 110
  | "Rule" | "RuleDelayed" -> 120
  | "Or" -> 215
  | "And" -> 225
  | "Not" -> 230
  | "Equal" | "Unequal" | "Less" | "Greater" | "LessEqual" | "GreaterEqual"
  | "SameQ" | "UnsameQ" -> 290
  | "Plus" | "Subtract" -> 310
  | "Times" | "Divide" -> 400
  | "Dot" -> 490
  | "Power" -> 590
  | "StringJoin" -> 600
  | "Map" | "Apply" -> 620
  | _ -> 1000

let op_of = function
  | "CompoundExpression" -> "; "
  | "Set" -> " = " | "SetDelayed" -> " := "
  | "AddTo" -> " += " | "SubtractFrom" -> " -= "
  | "TimesBy" -> " *= " | "DivideBy" -> " /= "
  | "ReplaceAll" -> " /. " | "ReplaceRepeated" -> " //. "
  | "Rule" -> " -> " | "RuleDelayed" -> " :> "
  | "Or" -> " || " | "And" -> " && "
  | "Equal" -> " == " | "Unequal" -> " != "
  | "Less" -> " < " | "Greater" -> " > "
  | "LessEqual" -> " <= " | "GreaterEqual" -> " >= "
  | "SameQ" -> " === " | "UnsameQ" -> " =!= "
  | "Plus" -> " + " | "Subtract" -> " - "
  | "Times" -> "*" | "Divide" -> "/"
  | "Dot" -> " . "
  | "Power" -> "^"
  | "StringJoin" -> " <> "
  | "Map" -> " /@ " | "Apply" -> " @@ "
  | h -> invalid_arg ("Form.op_of: " ^ h)

let is_infix = function
  | "CompoundExpression" | "Set" | "SetDelayed" | "AddTo" | "SubtractFrom"
  | "TimesBy" | "DivideBy" | "ReplaceAll" | "ReplaceRepeated" | "Rule"
  | "RuleDelayed" | "Or" | "And" | "Equal" | "Unequal" | "Less" | "Greater"
  | "LessEqual" | "GreaterEqual" | "SameQ" | "UnsameQ" | "Plus" | "Subtract"
  | "Times" | "Divide" | "Dot" | "Power" | "StringJoin" | "Map" | "Apply" -> true
  | _ -> false

let blank_suffix head underscores =
  let u = String.make underscores '_' in
  match head with
  | [| |] -> u
  | [| Sym h |] -> u ^ Symbol.name h
  | _ -> u (* non-symbol heads have no operator syntax; approximated *)

(* A bare negative literal re-parses as unary minus (precedence 480), so in
   tighter contexts (Power, Part, Map, …) it must be parenthesised:
   Power[-2, 2] is "(-2)^2", not "-2^2" = Times[-1, Power[2, 2]]. *)
let negative_atom = function
  | Int i -> i < 0
  | Real r -> r < 0.0
  | Big b -> Wolf_base.Bignum.sign b < 0
  | _ -> false

let rec pp_prec fmt ctx e =
  match e with
  | Tensor t -> pp_tensor fmt t
  | (Int _ | Big _ | Real _) when negative_atom e && ctx >= 480 ->
    Format.pp_print_char fmt '(';
    Expr.pp fmt e;
    Format.pp_print_char fmt ')'
  | Int _ | Big _ | Real _ | Str _ | Sym _ -> Expr.pp fmt e
  | Normal (Sym h, args) -> pp_normal fmt ctx (Symbol.name h) args
  | Normal (h, args) ->
    Format.fprintf fmt "%a[%a]" (fun f -> pp_prec f 1000) h pp_args args

and pp_tensor fmt t =
  Format.pp_print_char fmt '{';
  if Tensor.rank t = 1 then begin
    let n = Tensor.flat_length t in
    for i = 0 to n - 1 do
      if i > 0 then Format.pp_print_string fmt ", ";
      if Tensor.is_int t then Format.pp_print_int fmt (Tensor.get_int t i)
      else Expr.pp fmt (Real (Tensor.get_real t i))
    done
  end
  else begin
    let n = (Tensor.dims t).(0) in
    for i = 0 to n - 1 do
      if i > 0 then Format.pp_print_string fmt ", ";
      pp_tensor fmt (Tensor.slice t i)
    done
  end;
  Format.pp_print_char fmt '}'

and pp_args fmt args =
  Array.iteri
    (fun i a ->
       if i > 0 then Format.pp_print_string fmt ", ";
       pp_prec fmt 0 a)
    args

and pp_normal fmt ctx name args =
  let paren_if cond body =
    if cond then begin
      Format.pp_print_char fmt '(';
      body ();
      Format.pp_print_char fmt ')'
    end
    else body ()
  in
  match name, args with
  | "List", _ ->
    Format.pp_print_char fmt '{';
    pp_args fmt args;
    Format.pp_print_char fmt '}'
  | "Blank", _ when Array.length args <= 1 ->
    Format.pp_print_string fmt (blank_suffix args 1)
  | "BlankSequence", _ when Array.length args <= 1 ->
    Format.pp_print_string fmt (blank_suffix args 2)
  | "BlankNullSequence", _ when Array.length args <= 1 ->
    Format.pp_print_string fmt (blank_suffix args 3)
  | "Pattern", [| Sym nm; Normal (Sym bh, bargs) |]
    when (match Symbol.name bh with
        | "Blank" | "BlankSequence" | "BlankNullSequence" -> Array.length bargs <= 1
        | _ -> false) ->
    let unders = match Symbol.name bh with
      | "Blank" -> 1 | "BlankSequence" -> 2 | _ -> 3
    in
    Format.fprintf fmt "%s%s" (Symbol.name nm) (blank_suffix bargs unders)
  | "Slot", [| Int 1 |] -> Format.pp_print_string fmt "#"
  | "Slot", [| Int i |] -> Format.fprintf fmt "#%d" i
  | "Function", [| body |] ->
    paren_if (ctx >= 90) (fun () ->
        pp_prec fmt 90 body;
        Format.pp_print_string fmt " & ")
  | "Part", _ when Array.length args >= 2 ->
    paren_if (ctx >= 700) (fun () ->
        pp_prec fmt 700 args.(0);
        Format.pp_print_string fmt "[[";
        pp_args fmt (Array.sub args 1 (Array.length args - 1));
        Format.pp_print_string fmt "]]")
  | "Not", [| a |] ->
    paren_if (ctx >= 230) (fun () ->
        Format.pp_print_char fmt '!';
        pp_prec fmt 230 a)
  | "Times", [| Int (-1); rest |] ->
    (* only the 2-ary product may print as unary minus: "-(x*y)" would
       re-parse as Times[-1, Times[x, y]], losing the flat structure *)
    paren_if (ctx >= 480) (fun () ->
        Format.pp_print_char fmt '-';
        pp_prec fmt 480 rest)
  | _ when is_infix name && Array.length args >= 2 ->
    let p = prec_of name in
    let op = op_of name in
    paren_if (ctx >= p) (fun () ->
        Array.iteri
          (fun i a ->
             if i > 0 then Format.pp_print_string fmt op;
             (* left operand at p-1 so equal-precedence nests parenthesize on
                the right for right-assoc ops and vice versa; a uniform p
                keeps output re-parseable even if slightly conservative *)
             pp_prec fmt p a)
          args)
  | _ ->
    Format.fprintf fmt "%s[%a]" name pp_args args

let pp_input fmt e = pp_prec fmt 0 e
let input_form e = Format.asprintf "%a" pp_input e
