(** Interned Wolfram symbols.

    Symbols are the only mutable binding sites in the language (objective F5);
    the interpreter stores their values in side tables keyed by [id], keeping
    this module free of any dependency on expression or evaluator types.

    Domain-safe: the intern table is guarded by a mutex, so [intern] from any
    number of domains returns the one physically-unique symbol per name (the
    [==] in {!equal} stays correct), and [fresh] allocates its serial and its
    table entry in one critical section. *)

type t = private { id : int; name : string; mutable attrs : Attributes.set }

val intern : string -> t
(** Same name ⇒ physically equal symbol. *)

val fresh : string -> t
(** Gensym: a new symbol named ["base$<serial>"], distinct from every interned
    or previously generated symbol.  Used by [Module] scoping and by the
    hygienic macro expander. *)

val name : t -> string
val id : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val attributes : t -> Attributes.set
val set_attributes : t -> Attributes.set -> unit
val add_attribute : t -> Attributes.t -> unit
val has_attribute : t -> Attributes.t -> bool
val pp : Format.formatter -> t -> unit
