open Wolf_base

type data =
  | Ints of int array
  | Reals of float array

type t = {
  dims : int array;
  data : data;
  mutable refcount : int;
}

let data_length = function Ints a -> Array.length a | Reals a -> Array.length a

let product dims = Array.fold_left ( * ) 1 dims

let check dims data =
  if Array.length dims = 0 then invalid_arg "Tensor: rank must be >= 1";
  if product dims <> data_length data then invalid_arg "Tensor: dims/data mismatch"

let create_int dims a =
  let data = Ints a in
  check dims data;
  { dims; data; refcount = 1 }

let create_real dims a =
  let data = Reals a in
  check dims data;
  { dims; data; refcount = 1 }

let of_int_array a = create_int [| Array.length a |] a
let of_real_array a = create_real [| Array.length a |] a

let of_real_matrix rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Tensor.of_real_matrix: empty";
  let m = Array.length rows.(0) in
  let flat = Array.make (n * m) 0.0 in
  Array.iteri
    (fun i row ->
       if Array.length row <> m then invalid_arg "Tensor.of_real_matrix: ragged";
       Array.blit row 0 flat (i * m) m)
    rows;
  create_real [| n; m |] flat

let rank t = Array.length t.dims
let dims t = t.dims
let flat_length t = data_length t.data
let is_int t = match t.data with Ints _ -> true | Reals _ -> false

let acquire t = t.refcount <- t.refcount + 1
let release t = t.refcount <- t.refcount - 1
let refcount t = t.refcount

let copy t =
  let data = match t.data with
    | Ints a -> Ints (Array.copy a)
    | Reals a -> Reals (Array.copy a)
  in
  { dims = Array.copy t.dims; data; refcount = 1 }

(* Return a tensor safe to mutate in place: [t] itself when the caller holds
   the only claim, a fresh copy otherwise.  This never consumes the caller's
   claim on [t] — acquire/release pairing is owned by the caller (the
   compiler's MemoryAcquire/MemoryRelease, or the kernel symbol store's
   retain/forget).  An internal release here would double-count against that
   paired release, letting a shared array's count decay to "exclusive" while
   still aliased, so an indexed update would then corrupt every alias. *)
let ensure_unique t =
  if t.refcount <= 1 then t
  else begin
    Wolf_obs.Profile.note_cow_copy ();
    copy t
  end

let get_int t i =
  match t.data with
  | Ints a -> a.(i)
  | Reals a -> int_of_float a.(i)

let get_real t i =
  match t.data with
  | Ints a -> float_of_int a.(i)
  | Reals a -> a.(i)

let set_int t i v =
  match t.data with
  | Ints a -> a.(i) <- v
  | Reals a -> a.(i) <- float_of_int v

let set_real t i v =
  match t.data with
  | Ints a -> a.(i) <- int_of_float v
  | Reals a -> a.(i) <- v

let normalize_index t i =
  let n = t.dims.(0) in
  let j = if i < 0 then n + i else i - 1 in
  if i = 0 || j < 0 || j >= n then
    raise (Errors.Runtime_error (Errors.Part_out_of_range (i, n)));
  j

let sub_size t = product t.dims / t.dims.(0)

let slice t i =
  let size = sub_size t in
  let dims = Array.sub t.dims 1 (Array.length t.dims - 1) in
  let data = match t.data with
    | Ints a -> Ints (Array.sub a (i * size) size)
    | Reals a -> Reals (Array.sub a (i * size) size)
  in
  { dims; data; refcount = 1 }

let set_slice t i sub =
  let size = sub_size t in
  if flat_length sub <> size then invalid_arg "Tensor.set_slice: size mismatch";
  match t.data, sub.data with
  | Ints a, Ints b -> Array.blit b 0 a (i * size) size
  | Reals a, Reals b -> Array.blit b 0 a (i * size) size
  | Ints _, Reals _ | Reals _, Ints _ ->
    invalid_arg "Tensor.set_slice: element type mismatch"

let equal a b =
  a.dims = b.dims
  && (match a.data, b.data with
      | Ints x, Ints y -> x = y
      | Reals x, Reals y -> x = y
      | Ints x, Reals y | Reals y, Ints x ->
        Array.for_all2 (fun i r -> float_of_int i = r) x y)

let map_real f t =
  let n = flat_length t in
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do out.(i) <- f (get_real t i) done;
  { dims = Array.copy t.dims; data = Reals out; refcount = 1 }

let to_real t =
  match t.data with
  | Reals _ -> t
  | Ints _ -> map_real (fun x -> x) t

let dot_vv a b =
  let n = flat_length a in
  if flat_length b <> n then invalid_arg "Tensor.dot: length mismatch";
  match a.data, b.data with
  | Ints x, Ints y ->
    let s = ref 0 in
    for i = 0 to n - 1 do s := !s + (x.(i) * y.(i)) done;
    `Int !s
  | _ ->
    let s = ref 0.0 in
    for i = 0 to n - 1 do s := !s +. (get_real a i *. get_real b i) done;
    `Real !s

(* Blocked ikj matrix multiply on the flat representation; this is the MKL
   stand-in shared by all execution paths. *)
let dgemm n k m x y =
  let out = Array.make (n * m) 0.0 in
  let bs = 64 in
  let ii = ref 0 in
  while !ii < n do
    let i_hi = min (!ii + bs) n in
    let kk = ref 0 in
    while !kk < k do
      let k_hi = min (!kk + bs) k in
      for i = !ii to i_hi - 1 do
        for l = !kk to k_hi - 1 do
          let a = x.((i * k) + l) in
          if a <> 0.0 then begin
            let yoff = l * m and ooff = i * m in
            for j = 0 to m - 1 do
              out.(ooff + j) <- out.(ooff + j) +. (a *. y.(yoff + j))
            done
          end
        done
      done;
      kk := k_hi
    done;
    ii := i_hi
  done;
  out

let real_flat t =
  match t.data with
  | Reals a -> a
  | Ints a -> Array.map float_of_int a

let dot a b =
  match rank a, rank b with
  | 1, 1 ->
    (match dot_vv a b with
     | `Int i -> create_int [| 1 |] [| i |]
     | `Real r -> create_real [| 1 |] [| r |])
  | 2, 1 ->
    let n = a.dims.(0) and k = a.dims.(1) in
    if b.dims.(0) <> k then invalid_arg "Tensor.dot: shape mismatch";
    let x = real_flat a and y = real_flat b in
    let out = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let s = ref 0.0 in
      for l = 0 to k - 1 do s := !s +. (x.((i * k) + l) *. y.(l)) done;
      out.(i) <- !s
    done;
    create_real [| n |] out
  | 2, 2 ->
    let n = a.dims.(0) and k = a.dims.(1) in
    let k' = b.dims.(0) and m = b.dims.(1) in
    if k <> k' then invalid_arg "Tensor.dot: shape mismatch";
    create_real [| n; m |] (dgemm n k m (real_flat a) (real_flat b))
  | _ -> invalid_arg "Tensor.dot: unsupported ranks"

let total t =
  match t.data with
  | Ints a -> `Int (Array.fold_left ( + ) 0 a)
  | Reals a -> `Real (Array.fold_left ( +. ) 0.0 a)

let pp fmt t =
  Format.fprintf fmt "Tensor[%s, {%s}]"
    (if is_int t then "Integer64" else "Real64")
    (String.concat ", " (Array.to_list (Array.map string_of_int t.dims)))
