type t =
  | Int of int
  | Big of Wolf_base.Bignum.t
  | Real of float
  | Str of string
  | Sym of Symbol.t
  | Tensor of Tensor.t
  | Normal of t * t array

let sym name = Sym (Symbol.intern name)
let int i = Int i
let real r = Real r
let str s = Str s
let big b = Big b

let normal_a h args = Normal (h, args)
let normal h args = Normal (h, Array.of_list args)
let apply name args = normal (sym name) args
let list_a args = Normal (sym "List", args)
let list args = list_a (Array.of_list args)

let true_ = sym "True"
let false_ = sym "False"
let null = sym "Null"
let bool b = if b then true_ else false_

module Sy = struct
  let list = Symbol.intern "List"
  let plus = Symbol.intern "Plus"
  let times = Symbol.intern "Times"
  let power = Symbol.intern "Power"
  let rule = Symbol.intern "Rule"
  let rule_delayed = Symbol.intern "RuleDelayed"
  let blank = Symbol.intern "Blank"
  let blank_sequence = Symbol.intern "BlankSequence"
  let blank_null_sequence = Symbol.intern "BlankNullSequence"
  let pattern = Symbol.intern "Pattern"
  let condition = Symbol.intern "Condition"
  let pattern_test = Symbol.intern "PatternTest"
  let sequence = Symbol.intern "Sequence"
  let function_ = Symbol.intern "Function"
  let slot = Symbol.intern "Slot"
  let true_ = Symbol.intern "True"
  let false_ = Symbol.intern "False"
  let null = Symbol.intern "Null"
  let set = Symbol.intern "Set"
  let set_delayed = Symbol.intern "SetDelayed"
  let if_ = Symbol.intern "If"
  let module_ = Symbol.intern "Module"
  let block = Symbol.intern "Block"
  let with_ = Symbol.intern "With"
  let compound = Symbol.intern "CompoundExpression"
  let typed = Symbol.intern "Typed"
  let part = Symbol.intern "Part"
  let complex = Symbol.intern "Complex"
  let integer = Symbol.intern "Integer"
  let real = Symbol.intern "Real"
  let string = Symbol.intern "String"
  let symbol = Symbol.intern "Symbol"
  let hold = Symbol.intern "Hold"
  let kernel_function = Symbol.intern "KernelFunction"
end

let head = function
  | Int _ | Big _ -> Sym Sy.integer
  | Real _ -> Sym Sy.real
  | Str _ -> Sym Sy.string
  | Sym _ -> Sym Sy.symbol
  | Tensor _ -> Sym Sy.list (* packed arrays present as lists *)
  | Normal (h, _) -> h

let head_name e =
  match head e with
  | Sym s -> Some (Symbol.name s)
  | _ -> None

let is_atom = function Normal _ -> false | _ -> true
let is_true = function Sym s -> Symbol.equal s Sy.true_ | _ -> false
let is_false = function Sym s -> Symbol.equal s Sy.false_ | _ -> false

let args = function Normal (_, a) -> a | _ -> [||]

let int_of = function
  | Int i -> Some i
  | Big b -> Wolf_base.Bignum.to_int_opt b
  | _ -> None

let float_of = function
  | Real r -> Some r
  | Int i -> Some (float_of_int i)
  | Big b ->
    (match Wolf_base.Bignum.to_int_opt b with
     | Some i -> Some (float_of_int i)
     | None -> Some (float_of_string (Wolf_base.Bignum.to_string b)))
  | _ -> None

(* A packed tensor and its unpacked List form are the same expression
   (SameQ), as in the engine: packing is an invisible optimisation. *)
let rec tensor_equals_list t items =
  if Tensor.rank t = 1 then begin
    Tensor.flat_length t = Array.length items
    && (let rec go i =
          i >= Array.length items
          || ((match items.(i) with
               | Int x -> Tensor.is_int t && Tensor.get_int t i = x
               | Real r -> (not (Tensor.is_int t)) && Tensor.get_real t i = r
               | _ -> false)
              && go (i + 1))
        in
        go 0)
  end
  else begin
    (Tensor.dims t).(0) = Array.length items
    && (let rec go i =
          i >= Array.length items
          || ((match items.(i) with
               | Normal (Sym l, sub) when Symbol.equal l Sy.list ->
                 tensor_equals_list (Tensor.slice t i) sub
               | _ -> false)
              && go (i + 1))
        in
        go 0)
  end

and equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Big x, Big y -> Wolf_base.Bignum.equal x y
  | Int x, Big y | Big y, Int x -> Wolf_base.Bignum.equal y (Wolf_base.Bignum.of_int x)
  | Real x, Real y -> x = y
  | Str x, Str y -> String.equal x y
  | Sym x, Sym y -> Symbol.equal x y
  | Tensor x, Tensor y -> Tensor.equal x y
  | Tensor t, Normal (Sym l, items) | Normal (Sym l, items), Tensor t
    when Symbol.equal l Sy.list ->
    tensor_equals_list t items
  | Normal (h1, a1), Normal (h2, a2) ->
    Array.length a1 = Array.length a2
    && equal h1 h2
    && (let rec go i = i >= Array.length a1 || (equal a1.(i) a2.(i) && go (i + 1)) in
        go 0)
  | (Int _ | Big _ | Real _ | Str _ | Sym _ | Tensor _ | Normal _), _ -> false

(* Symbol equality is physical (one process-wide intern table), so an
   expression that crossed a process boundary — e.g. unmarshaled from the
   on-disk compile cache — carries symbol copies that compare unequal to
   every live symbol.  Re-intern by name before letting such an expression
   near the kernel.  Atoms other than symbols are plain data and shared. *)
let rec reintern e =
  match e with
  | Sym s -> Sym (Symbol.intern (Symbol.name s))
  | Normal (h, a) -> Normal (reintern h, Array.map reintern a)
  | Int _ | Big _ | Real _ | Str _ | Tensor _ -> e

let class_rank = function
  | Int _ | Big _ | Real _ -> 0
  | Str _ -> 1
  | Sym _ -> 2
  | Tensor _ -> 3
  | Normal _ -> 4

let numeric_value = function
  | Int i -> float_of_int i
  | Real r -> r
  | Big b ->
    (match Wolf_base.Bignum.to_int_opt b with
     | Some i -> float_of_int i
     | None -> float_of_string (Wolf_base.Bignum.to_string b))
  | _ -> assert false

let rec compare a b =
  let ca = class_rank a and cb = class_rank b in
  if ca <> cb then Stdlib.compare ca cb
  else
    match a, b with
    | (Int _ | Big _ | Real _), (Int _ | Big _ | Real _) ->
      Stdlib.compare (numeric_value a) (numeric_value b)
    | Str x, Str y -> String.compare x y
    | Sym x, Sym y -> String.compare (Symbol.name x) (Symbol.name y)
    | Tensor x, Tensor y -> Stdlib.compare (Tensor.dims x) (Tensor.dims y)
    | Normal (h1, a1), Normal (h2, a2) ->
      let c = compare h1 h2 in
      if c <> 0 then c
      else begin
        let la = Array.length a1 and lb = Array.length a2 in
        let c = Stdlib.compare la lb in
        if c <> 0 then c
        else begin
          let rec go i =
            if i >= la then 0
            else begin
              let c = compare a1.(i) a2.(i) in
              if c <> 0 then c else go (i + 1)
            end
          in
          go 0
        end
      end
    | (Int _ | Big _ | Real _ | Str _ | Sym _ | Tensor _ | Normal _), _ ->
      assert false

let rec hash = function
  | Int i -> Hashtbl.hash i
  | Big b -> Wolf_base.Bignum.hash b
  | Real r -> Hashtbl.hash r
  | Str s -> Hashtbl.hash s
  | Sym s -> Symbol.hash s lxor 0x5ca1ab1e
  | Tensor t -> Hashtbl.hash (Tensor.dims t)
  | Normal (h, a) ->
    Array.fold_left (fun acc e -> (acc * 31) + hash e) (hash h * 17) a

(* Only the escapes the lexer undoes: double quote, backslash, newline,
   tab.  OCaml's [%S] writes decimal escapes for bytes outside printable
   ASCII, which the lexer would read as literal digit characters — raw
   bytes round-trip, decimal escapes do not. *)
let pp_string fmt s =
  Format.pp_print_char fmt '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Format.pp_print_string fmt {|\"|}
       | '\\' -> Format.pp_print_string fmt {|\\|}
       | '\n' -> Format.pp_print_string fmt {|\n|}
       | '\t' -> Format.pp_print_string fmt {|\t|}
       | c -> Format.pp_print_char fmt c)
    s;
  Format.pp_print_char fmt '"'

let rec pp fmt = function
  | Int i -> Format.pp_print_int fmt i
  | Big b -> Wolf_base.Bignum.pp fmt b
  | Real r ->
    if Float.is_integer r && Float.abs r < 1e16 then Format.fprintf fmt "%.1f" r
    else Format.fprintf fmt "%.17g" r
  | Str s -> pp_string fmt s
  | Sym s -> Symbol.pp fmt s
  | Tensor t -> pp_tensor fmt t
  | Normal (h, a) ->
    Format.fprintf fmt "%a[%a]" pp h
      (Format.pp_print_array ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
      a

and pp_tensor fmt t =
  (* Printed in unpacked FullForm so results are comparable across paths. *)
  if Tensor.rank t = 1 then begin
    Format.pp_print_string fmt "List[";
    let n = Tensor.flat_length t in
    for i = 0 to n - 1 do
      if i > 0 then Format.pp_print_string fmt ", ";
      if Tensor.is_int t then Format.pp_print_int fmt (Tensor.get_int t i)
      else pp fmt (Real (Tensor.get_real t i))
    done;
    Format.pp_print_string fmt "]"
  end
  else begin
    Format.pp_print_string fmt "List[";
    let n = (Tensor.dims t).(0) in
    for i = 0 to n - 1 do
      if i > 0 then Format.pp_print_string fmt ", ";
      pp_tensor fmt (Tensor.slice t i)
    done;
    Format.pp_print_string fmt "]"
  end

let to_string e = Format.asprintf "%a" pp e
