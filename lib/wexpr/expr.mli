(** Wolfram expressions.

    Everything in the language is an expression: an atomic leaf (number,
    string, symbol, packed tensor) or a normal expression [head[arg1, …]].
    This is the MExpr of the paper minus node identity/metadata, which the
    compiler layers on top (see {!Wolf_compiler.Mexpr}). *)

type t =
  | Int of int                     (** machine integer *)
  | Big of Wolf_base.Bignum.t      (** arbitrary-precision integer *)
  | Real of float
  | Str of string
  | Sym of Symbol.t
  | Tensor of Tensor.t             (** packed numeric array *)
  | Normal of t * t array          (** head and arguments *)

val sym : string -> t
val int : int -> t
val real : float -> t
val str : string -> t
val big : Wolf_base.Bignum.t -> t

val normal : t -> t list -> t
val normal_a : t -> t array -> t
val apply : string -> t list -> t
(** [apply "f" args] = [f[args…]] with [f] interned. *)

val list : t list -> t
val list_a : t array -> t

val true_ : t
val false_ : t
val null : t
val bool : bool -> t

val head : t -> t
(** [head 5 = Integer], [head f[x] = f], … (Wolfram's [Head]). *)

val head_name : t -> string option
(** [Some name] when the head is a symbol. *)

val is_atom : t -> bool
val is_true : t -> bool
val is_false : t -> bool

val args : t -> t array
(** Arguments of a normal expression; [||] for atoms. *)

val int_of : t -> int option
val float_of : t -> float option
(** Numeric coercions; [float_of] accepts integers. *)

val equal : t -> t -> bool
(** Structural equality ([SameQ]); [Int 2] and [Real 2.0] are unequal,
    [Big] equals [Int] when values agree (canonical forms avoid that case). *)

val compare : t -> t -> int
(** Canonical (Orderless) ordering: numbers by value, then strings, then
    symbols by name, then normals by head and arguments. *)

val hash : t -> int

val reintern : t -> t
(** Rebuild every [Sym] leaf through the live intern table.  Required after
    unmarshaling an expression (symbol equality is physical): the copy's
    symbols match nothing until re-interned.  Non-symbol atoms are shared. *)

(** Interned symbols for heads used throughout the system. *)
module Sy : sig
  val list : Symbol.t
  val plus : Symbol.t
  val times : Symbol.t
  val power : Symbol.t
  val rule : Symbol.t
  val rule_delayed : Symbol.t
  val blank : Symbol.t
  val blank_sequence : Symbol.t
  val blank_null_sequence : Symbol.t
  val pattern : Symbol.t
  val condition : Symbol.t
  val pattern_test : Symbol.t
  val sequence : Symbol.t
  val function_ : Symbol.t
  val slot : Symbol.t
  val true_ : Symbol.t
  val false_ : Symbol.t
  val null : Symbol.t
  val set : Symbol.t
  val set_delayed : Symbol.t
  val if_ : Symbol.t
  val module_ : Symbol.t
  val block : Symbol.t
  val with_ : Symbol.t
  val compound : Symbol.t
  val typed : Symbol.t
  val part : Symbol.t
  val complex : Symbol.t
  val integer : Symbol.t
  val real : Symbol.t
  val string : Symbol.t
  val symbol : Symbol.t
  val hold : Symbol.t
  val kernel_function : Symbol.t
end

val pp : Format.formatter -> t -> unit
(** FullForm printing (see {!Form} for InputForm). *)

val to_string : t -> string
