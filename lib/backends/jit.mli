(** The ocamlopt JIT — this repo's stand-in for the paper's LLVM ORC JIT
    (see DESIGN.md substitutions).

    The emitted OCaml module ({!Ocaml_emit}) is compiled to a native shared
    object with [ocamlopt -shared] against the host build's interfaces and
    loaded with [Dynlink]; its entry point registers itself through
    {!Wolf_plugin}.  Compilation happens once per FunctionCompile, like an
    LLVM JIT's module finalisation.

    [available] is false when the toolchain or the build tree cannot be
    found (e.g. an installed binary far from its _build directory); callers
    fall back to the {!Native} threaded backend. *)

open Wolf_runtime

val available : unit -> bool

val compile : Wolf_compiler.Pipeline.compiled -> (Rtval.closure, string) result
(** Returns [Error reason] (toolchain missing, compile failure with the
    ocamlopt diagnostic) rather than raising; JIT failures must never break
    compilation, only deoptimise it. *)

(** Everything needed to relink a JIT-compiled module in another process of
    the same build, short of the .cmxs bytes themselves: the entry symbol,
    the host-side constants its initialiser reads, and the entry arity.
    This is what the persistent compile cache marshals; symbols inside
    [a_constants] must be re-interned after unmarshaling, before
    {!link_artifact}. *)
type artifact = {
  a_entry_symbol : string;
  a_constants : (string * Rtval.t) list;
  a_arity : int;
}

val compile_artifact :
  Wolf_compiler.Pipeline.compiled ->
  (artifact * string * Rtval.closure, string) result
(** Like {!compile} but also returns the relink recipe and the .cmxs path
    (for the disk cache to slurp). *)

val link_artifact : cmxs:string -> artifact -> (Rtval.closure, string) result
(** Register the constants, dynlink [cmxs] privately, look up the entry.
    Only meaningful for a .cmxs produced by the same executable build —
    the disk cache enforces that with an executable digest. *)

val export_library : Wolf_compiler.Pipeline.compiled -> path:string -> (string, string) result
(** [FunctionCompileExportLibrary] analogue: leave the compiled shared
    object at [path] and return the entry symbol; the object can be loaded
    into a later session with [Dynlink]. *)

val sessions_dir : unit -> string
(** Scratch directory used for generated sources and objects. *)
