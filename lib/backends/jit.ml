open Wolf_runtime

(* module-name serial: atomic so concurrent JIT compiles on different
   domains never write the same .ml/.cmxs path *)
let counter = Atomic.make 0

(* Dynlink gives no thread-safety guarantee, and a load publishes entries in
   the Wolf_plugin registry; serialize load+lookup so two domains plugging
   modules concurrently can't interleave *)
let dynlink_lock = Mutex.create ()

(* Locate the dune build tree to find the host libraries' .cmi files. *)
let find_build_root () =
  let rec search dir depth =
    if depth > 8 then None
    else begin
      let candidate = Filename.concat dir "_build/default/lib" in
      if Sys.file_exists candidate && Sys.is_directory candidate then
        Some (Filename.concat dir "_build/default")
      else begin
        let parent = Filename.dirname dir in
        if parent = dir then None else search parent (depth + 1)
      end
    end
  in
  let from_exe =
    let exe = Sys.executable_name in
    search (Filename.dirname exe) 0
  in
  match from_exe with
  | Some _ as r -> r
  | None -> search (Sys.getcwd ()) 0

let include_dirs () =
  match find_build_root () with
  | None -> None
  | Some root ->
    let libs =
      [ "lib/base/.wolf_base.objs/byte";
        "lib/wexpr/.wolf_wexpr.objs/byte";
        "lib/runtime/.wolf_runtime.objs/byte";
        "lib/plugin_api/.wolf_plugin_api.objs/byte" ]
    in
    let dirs = List.map (Filename.concat root) libs in
    if List.for_all Sys.file_exists dirs then Some dirs else None

let ocamlopt () =
  let candidates = [ "ocamlfind ocamlopt"; "ocamlopt.opt"; "ocamlopt" ] in
  List.find_opt
    (fun c ->
       let cmd = Printf.sprintf "%s -version >/dev/null 2>&1" c in
       Sys.command cmd = 0)
    (List.tl candidates) (* prefer plain ocamlopt; ocamlfind adds noise *)
  |> function
  | Some c -> Some c
  | None -> List.find_opt (fun c -> Sys.command (c ^ " -version >/dev/null 2>&1") = 0) candidates

let sessions_dir () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "wolfram-compiler-jit" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let available () =
  Dynlink.is_native && Option.is_some (include_dirs ()) && Option.is_some (ocamlopt ())

let compile_to_cmxs (c : Wolf_compiler.Pipeline.compiled) =
  Wolf_obs.Trace.with_span ~cat:"codegen" "jit-codegen" @@ fun () ->
  match include_dirs (), ocamlopt () with
  | None, _ -> Error "JIT unavailable: cannot locate the dune build tree (.cmi files)"
  | _, None -> Error "JIT unavailable: no ocamlopt on PATH"
  | Some dirs, Some compiler ->
    let serial = Atomic.fetch_and_add counter 1 + 1 in
    let module_name = Printf.sprintf "Wolfjit_%d_%d" (Unix.getpid ()) serial in
    let emitted = Ocaml_emit.emit ~module_name c in
    let dir = sessions_dir () in
    let ml = Filename.concat dir (String.lowercase_ascii module_name ^ ".ml") in
    let cmxs = Filename.concat dir (String.lowercase_ascii module_name ^ ".cmxs") in
    let oc = open_out ml in
    output_string oc emitted.source;
    close_out oc;
    let includes = String.concat " " (List.map (Printf.sprintf "-I %s") dirs) in
    let log = ml ^ ".log" in
    let cmd =
      Printf.sprintf "%s -w -a -O2 %s -shared -o %s %s >%s 2>&1" compiler includes
        (Filename.quote cmxs) (Filename.quote ml) (Filename.quote log)
    in
    let cmd =
      (* -O2 only exists under flambda; retry without it on failure *)
      if Sys.command cmd = 0 then None
      else begin
        let cmd2 =
          Printf.sprintf "%s -w -a %s -shared -o %s %s >%s 2>&1" compiler includes
            (Filename.quote cmxs) (Filename.quote ml) (Filename.quote log)
        in
        if Sys.command cmd2 = 0 then None else Some cmd2
      end
    in
    (match cmd with
     | Some _ ->
       let diag =
         try
           let ic = open_in log in
           let n = in_channel_length ic in
           let s = really_input_string ic (min n 2000) in
           close_in ic;
           s
         with _ -> "(no diagnostic)"
       in
       Error (Printf.sprintf "ocamlopt failed:\n%s" diag)
     | None -> Ok (emitted, cmxs))

(* Everything needed to relink a compiled module in another process of the
   same build: the .cmxs on disk plus the host-side state its entry needs.
   The persistent compile cache stores [a_constants] marshaled — callers
   must re-intern any symbols inside before handing the artifact here. *)
type artifact = {
  a_entry_symbol : string;
  a_constants : (string * Rtval.t) list;
  a_arity : int;
}

let link_artifact ~cmxs art =
  Wolf_obs.Trace.with_span ~cat:"codegen" "jit-dynlink" @@ fun () ->
  Mutex.lock dynlink_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock dynlink_lock) @@ fun () ->
  (* host-side constants must be visible before the module initialises;
     the linked module pools each constant for its lifetime, so hold a
     claim on tensors — a COW store then copies instead of mutating the
     pooled value on the next call *)
  List.iter
    (fun (key, rt) ->
       (match rt with
        | Rtval.Tensor t -> Wolf_wexpr.Tensor.acquire t
        | _ -> ());
       Wolf_plugin.register key (Obj.repr (rt : Rtval.t)))
    art.a_constants;
  (match Dynlink.loadfile_private cmxs with
   | () ->
     (match Wolf_plugin.lookup art.a_entry_symbol with
      | Some entry ->
        let call : Rtval.t array -> Rtval.t = Obj.obj entry in
        Ok { Rtval.arity = art.a_arity; call }
      | None -> Error "JIT: plugin loaded but entry symbol missing")
   | exception Dynlink.Error e -> Error ("Dynlink: " ^ Dynlink.error_message e)
   | exception e -> Error ("Dynlink: " ^ Printexc.to_string e))

let compile_artifact c =
  match compile_to_cmxs c with
  | Error e -> Error e
  | Ok (emitted, cmxs) ->
    let main = Wolf_compiler.Wir.main c.Wolf_compiler.Pipeline.program in
    let art =
      { a_entry_symbol = emitted.Ocaml_emit.entry_symbol;
        a_constants = emitted.Ocaml_emit.constants;
        a_arity = Array.length main.Wolf_compiler.Wir.fparams }
    in
    (match link_artifact ~cmxs art with
     | Ok closure -> Ok (art, cmxs, closure)
     | Error e -> Error e)

let compile c =
  match compile_artifact c with
  | Error e -> Error e
  | Ok (_, _, closure) -> Ok closure

let export_library c ~path =
  match compile_to_cmxs c with
  | Error _ as e -> e
  | Ok (emitted, cmxs) ->
    let ic = open_in_bin cmxs in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    let oc = open_out_bin path in
    output_string oc contents;
    close_out oc;
    Ok emitted.Ocaml_emit.entry_symbol
