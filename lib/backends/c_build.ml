(* Invoke the system C compiler on an emitted translation unit and produce
   a self-contained executable.  The compile goes to a temporary path next
   to the requested output and is renamed into place only on success, so a
   failed build never leaves a half-written or stale binary behind. *)

let default_cc () =
  match Sys.getenv_opt "WOLF_CC" with Some cc when cc <> "" -> cc | _ -> "cc"

(* memoized probe (same discipline as the fuzz oracle's: an atomic int, not
   a lazy, so concurrent domains can race the probe harmlessly) *)
let cc_state = Atomic.make 0

let available ?cc () =
  match cc, Atomic.get cc_state with
  | None, 1 -> true
  | None, 2 -> false
  | _ ->
    let cc = match cc with Some c -> c | None -> default_cc () in
    let yes =
      Sys.command (Printf.sprintf "%s --version >/dev/null 2>&1" (Filename.quote cc))
      = 0
    in
    (match Atomic.get cc_state with
     | 0 -> Atomic.set cc_state (if yes then 1 else 2)
     | _ -> ());
    yes

(* run [argv] without a shell, capturing stderr (diagnostics) to a string *)
let run_command argv =
  let err_file = Filename.temp_file "wolf_cc" ".err" in
  let read_and_remove () =
    let text =
      try
        let ic = open_in_bin err_file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with _ -> ""
    in
    (try Sys.remove err_file with _ -> ());
    text
  in
  match
    let fd = Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
    let pid =
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          Unix.create_process argv.(0) argv Unix.stdin Unix.stdout fd)
    in
    let _, status = Unix.waitpid [] pid in
    status
  with
  | Unix.WEXITED 0 -> Ok (read_and_remove ())
  | Unix.WEXITED n ->
    Error (Printf.sprintf "%s exited %d:\n%s" argv.(0) n (read_and_remove ()))
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
    Error (Printf.sprintf "%s killed by signal %d:\n%s" argv.(0) n (read_and_remove ()))
  | exception Unix.Unix_error (e, _, _) ->
    ignore (read_and_remove ());
    Error (Printf.sprintf "cannot run %s: %s" argv.(0) (Unix.error_message e))

let build ?cc ?(cflags = []) ?keep_c ~source ~output () =
  let cc = match cc with Some c -> c | None -> default_cc () in
  let dir = Filename.dirname output in
  let base = Filename.basename output in
  let tmp_exe =
    Filename.concat dir (Printf.sprintf ".%s.tmp.%d" base (Unix.getpid ()))
  in
  let c_file =
    match keep_c with
    | Some path -> path
    | None -> Filename.temp_file "wolf_build" ".c"
  in
  let cleanup () =
    if keep_c = None then (try Sys.remove c_file with _ -> ());
    (try Sys.remove tmp_exe with _ -> ())
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let oc = open_out c_file in
  output_string oc source;
  close_out oc;
  let argv =
    Array.of_list
      ([ cc; "-O2" ] @ cflags @ [ "-o"; tmp_exe; c_file; "-lm" ])
  in
  match run_command argv with
  | Error e -> Error e
  | Ok _warnings ->
    (try
       (* temp + rename: the output path is never observed half-written *)
       Unix.rename tmp_exe output;
       Ok ()
     with Unix.Unix_error (e, _, _) ->
       Error
         (Printf.sprintf "cannot move binary to %s: %s" output
            (Unix.error_message e)))
