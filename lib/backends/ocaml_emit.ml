open Wolf_runtime
open Wolf_compiler
open Wir

type emitted = {
  source : string;
  entry_symbol : string;
  constants : (string * Rtval.t) list;
}

let sanitize name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                       || (c >= '0' && c <= '9') then c else '_') name

(* OCaml surface type of a TWIR type. *)
let rec ocaml_ty t =
  match Types.repr t with
  | Types.Con ("Integer64", _) -> "int"
  | Types.Con ("Real64", _) -> "float"
  | Types.Con ("Boolean", _) -> "bool"
  | Types.Con ("String", _) -> "string"
  | Types.Con ("ComplexReal64", _) -> "(float * float)"
  | Types.Con ("PackedArray", _) -> "Wolf_wexpr.Tensor.t"
  | Types.Con ("Expression", _) -> "Wolf_wexpr.Expr.t"
  | Types.Con ("Void", _) -> "unit"
  | Types.Fun (args, ret) ->
    let parts = Array.to_list (Array.map ocaml_ty args) @ [ ocaml_ty ret ] in
    "(" ^ String.concat " -> " parts ^ ")"
  | Types.Con (_, _) | Types.Lit _ -> "Wolf_runtime.Rtval.t"
  | Types.Var _ -> "Wolf_runtime.Rtval.t"

(* Boxing an OCaml expression of the given type into Rtval. *)
let rec box ty expr =
  match Types.repr ty with
  | Types.Con ("Integer64", _) -> Printf.sprintf "(Wolf_runtime.Rtval.Int (%s))" expr
  | Types.Con ("Real64", _) -> Printf.sprintf "(Wolf_runtime.Rtval.Real (%s))" expr
  | Types.Con ("Boolean", _) -> Printf.sprintf "(Wolf_runtime.Rtval.Bool (%s))" expr
  | Types.Con ("String", _) -> Printf.sprintf "(Wolf_runtime.Rtval.Str (%s))" expr
  | Types.Con ("ComplexReal64", _) ->
    Printf.sprintf "(let (re_, im_) = %s in Wolf_runtime.Rtval.Complex (re_, im_))" expr
  | Types.Con ("PackedArray", _) -> Printf.sprintf "(Wolf_runtime.Rtval.Tensor (%s))" expr
  | Types.Con ("Expression", _) -> Printf.sprintf "(Wolf_runtime.Rtval.Expr (%s))" expr
  | Types.Con ("Void", _) -> Printf.sprintf "(ignore (%s); Wolf_runtime.Rtval.Unit)" expr
  | Types.Fun (args, ret) ->
    (* typed closure -> boxed closure for the Rtval boundary *)
    let params = Array.to_list (Array.mapi (fun i _ -> Printf.sprintf "_p%d" i) args) in
    let unboxed =
      List.mapi (fun i a -> unbox_fwd a (Printf.sprintf "_a.(%d)" i))
        (Array.to_list args)
    in
    ignore params;
    Printf.sprintf
      "(Wolf_runtime.Rtval.Fun { arity = %d; call = (fun _a -> %s) })"
      (Array.length args)
      (box_ret ret (Printf.sprintf "(%s) %s" expr (String.concat " " unboxed)))
  | _ -> Printf.sprintf "(%s)" expr

and box_ret ty expr = box ty expr

and unbox_fwd ty expr = unbox ty expr

and unbox ty expr =
  match Types.repr ty with
  | Types.Con ("Integer64", _) -> Printf.sprintf "(Wolf_runtime.Rtval.as_int %s)" expr
  | Types.Con ("Real64", _) -> Printf.sprintf "(Wolf_runtime.Rtval.as_real %s)" expr
  | Types.Con ("Boolean", _) -> Printf.sprintf "(Wolf_runtime.Rtval.as_bool %s)" expr
  | Types.Con ("String", _) -> Printf.sprintf "(Wolf_runtime.Rtval.as_str %s)" expr
  | Types.Con ("ComplexReal64", _) ->
    Printf.sprintf
      "(match %s with Wolf_runtime.Rtval.Complex (r_, i_) -> (r_, i_) | v_ -> (Wolf_runtime.Rtval.as_real v_, 0.0))"
      expr
  | Types.Con ("PackedArray", _) -> Printf.sprintf "(Wolf_runtime.Rtval.as_tensor %s)" expr
  | Types.Con ("Expression", _) -> Printf.sprintf "(Wolf_runtime.Rtval.to_expr %s)" expr
  | Types.Con ("Void", _) -> Printf.sprintf "(ignore %s)" expr
  | Types.Fun (args, ret) ->
    (* boxed closure -> typed closure: box arguments per call *)
    let params = Array.to_list (Array.mapi (fun i _ -> Printf.sprintf "_p%d" i) args) in
    let boxed =
      List.map2 (fun a p -> box a p) (Array.to_list args) params
    in
    Printf.sprintf
      "(let _f = Wolf_runtime.Rtval.as_fun %s in fun %s -> %s)"
      expr (String.concat " " params)
      (unbox ret (Printf.sprintf "(_f.call [| %s |])" (String.concat "; " boxed)))
  | _ -> Printf.sprintf "(%s)" expr

let float_lit r =
  if Float.is_nan r then "Float.nan"
  else if r = Float.infinity then "Float.infinity"
  else if r = Float.neg_infinity then "Float.neg_infinity"
  else begin
    let s = Printf.sprintf "%.17g" r in
    if String.contains s '.' || String.contains s 'e' then Printf.sprintf "(%s)" s
    else Printf.sprintf "(%s.)" s
  end

type ectx = {
  buf : Buffer.t;
  einline : bool;
  vars : (int, var) Hashtbl.t;
  mutable consts : (string * Rtval.t * Types.t) list;
  mutable const_count : int;
  mutable polls : (int * int) list;  (* (site, stride): module-level counters *)
  module_key : string;
  fn_names : (string, string) Hashtbl.t;   (* program name -> ocaml name *)
  prog : program;
}

let var_ty v =
  match v.vty with
  | Some t -> t
  | None -> Types.expression

let const_name ctx (rt : Rtval.t) ty =
  let key = Printf.sprintf "%s:const:%d" ctx.module_key ctx.const_count in
  let name = Printf.sprintf "k%d" ctx.const_count in
  ctx.const_count <- ctx.const_count + 1;
  ctx.consts <- (key, rt, ty) :: ctx.consts;
  (name, key)

(* operand -> OCaml expression of the operand's own type *)
let rec operand_expr ctx op =
  match op with
  | Ovar v -> Printf.sprintf "v%d" v.vid
  | Oconst Cvoid -> "()"
  | Oconst (Cint i) -> if i < 0 then Printf.sprintf "(%d)" i else string_of_int i
  | Oconst (Creal r) -> float_lit r
  | Oconst (Cbool b) -> string_of_bool b
  | Oconst (Cstr s) -> Printf.sprintf "%S" s
  | Oconst (Cexpr e) ->
    let rt = Rtval.of_expr e in
    let name, _key = const_named ctx rt (Wir.const_ty (Cexpr e)) in
    name

and const_named ctx rt ty = const_name ctx rt ty

let op_ty_of op =
  match op with
  | Ovar v -> var_ty v
  | Oconst c -> Wir.const_ty c

let as_int_expr ctx op =
  match Types.repr (op_ty_of op) with
  | Types.Con ("Integer64", _) -> operand_expr ctx op
  | _ -> Printf.sprintf "(int_of_float %s)" (operand_expr ctx op)

let as_real_expr ctx op =
  match Types.repr (op_ty_of op) with
  | Types.Con ("Real64", _) -> operand_expr ctx op
  | Types.Con ("Integer64", _) -> Printf.sprintf "(float_of_int %s)" (operand_expr ctx op)
  | _ -> operand_expr ctx op

(* Open-coded primitive call; None falls back to the boxed dispatcher. *)
let prim_expr ctx ~base ~(args : operand array) ~dst_ty : string option =
  let a i = operand_expr ctx args.(i) in
  let ri i = as_real_expr ctx args.(i) in
  let ii i = as_int_expr ctx args.(i) in
  let all_int =
    Array.for_all
      (fun o -> match Types.repr (op_ty_of o) with
         | Types.Con ("Integer64", _) -> true | _ -> false)
      args
  in
  let dst_is name =
    match Types.repr dst_ty with Types.Con (n, _) -> n = name | _ -> false
  in
  match base with
  | "checked_binary_plus" when all_int -> Some (Printf.sprintf "wolf_add %s %s" (a 0) (a 1))
  | "checked_binary_subtract" when all_int -> Some (Printf.sprintf "wolf_sub %s %s" (a 0) (a 1))
  | "checked_binary_times" when all_int -> Some (Printf.sprintf "wolf_mul %s %s" (a 0) (a 1))
  | "checked_binary_mod" when all_int -> Some (Printf.sprintf "wolf_mod %s %s" (a 0) (a 1))
  | "checked_binary_quotient" when all_int -> Some (Printf.sprintf "wolf_quotient %s %s" (a 0) (a 1))
  | "checked_binary_power" when all_int -> Some (Printf.sprintf "wolf_ipow %s %s" (a 0) (a 1))
  | "checked_unary_minus" -> Some (Printf.sprintf "wolf_neg %s" (a 0))
  | "checked_unary_abs" -> Some (Printf.sprintf "abs %s" (a 0))
  | "binary_plus" when dst_is "Real64" -> Some (Printf.sprintf "%s +. %s" (ri 0) (ri 1))
  | "binary_subtract" when dst_is "Real64" -> Some (Printf.sprintf "%s -. %s" (ri 0) (ri 1))
  | "binary_times" when dst_is "Real64" -> Some (Printf.sprintf "%s *. %s" (ri 0) (ri 1))
  | "binary_divide" when dst_is "Real64" -> Some (Printf.sprintf "%s /. %s" (ri 0) (ri 1))
  | "binary_power" when dst_is "Real64" -> Some (Printf.sprintf "Float.pow %s %s" (ri 0) (ri 1))
  | "binary_power_ri" when dst_is "Real64" ->
    (match args.(1) with
     | Oconst (Cint 2) -> Some (Printf.sprintf "(let x_ = %s in x_ *. x_)" (ri 0))
     | _ -> Some (Printf.sprintf "wolf_pow_ri %s %s" (ri 0) (ii 1)))
  | "unary_minus" when dst_is "Real64" -> Some (Printf.sprintf "-. %s" (ri 0))
  | "complex_binary_plus" when dst_is "ComplexReal64" ->
    Some (Printf.sprintf
            "(let (ar_, ai_) = %s in let (br_, bi_) = %s in (ar_ +. br_, ai_ +. bi_))"
            (a 0) (a 1))
  | "complex_binary_subtract" when dst_is "ComplexReal64" ->
    Some (Printf.sprintf
            "(let (ar_, ai_) = %s in let (br_, bi_) = %s in (ar_ -. br_, ai_ -. bi_))"
            (a 0) (a 1))
  | "complex_binary_times" when dst_is "ComplexReal64" ->
    Some (Printf.sprintf
            "(let (ar_, ai_) = %s in let (br_, bi_) = %s in \
             ((ar_ *. br_) -. (ai_ *. bi_), (ar_ *. bi_) +. (ai_ *. br_)))"
            (a 0) (a 1))
  | "complex_binary_power" when dst_is "ComplexReal64" ->
    (match args.(1) with
     | Oconst (Cint 2) ->
       Some (Printf.sprintf
               "(let (r_, i_) = %s in ((r_ *. r_) -. (i_ *. i_), 2.0 *. r_ *. i_))"
               (a 0))
     | _ -> None)
  | "complex_abs" when dst_is "Real64" ->
    Some (Printf.sprintf "(let (r_, i_) = %s in Float.hypot r_ i_)" (a 0))
  | "complex_re" when dst_is "Real64" -> Some (Printf.sprintf "(fst %s)" (a 0))
  | "complex_im" when dst_is "Real64" -> Some (Printf.sprintf "(snd %s)" (a 0))
  | "complex_make" when dst_is "ComplexReal64" ->
    Some (Printf.sprintf "(%s, %s)" (ri 0) (ri 1))
  | "unary_abs" when dst_is "Real64" -> Some (Printf.sprintf "Float.abs %s" (ri 0))
  | "binary_less" | "binary_greater" | "binary_less_equal" | "binary_greater_equal"
  | "binary_equal" | "binary_unequal" ->
    let op = match base with
      | "binary_less" -> "<" | "binary_greater" -> ">"
      | "binary_less_equal" -> "<=" | "binary_greater_equal" -> ">="
      | "binary_equal" -> "=" | _ -> "<>"
    in
    let t0 = Types.repr (op_ty_of args.(0)) and t1 = Types.repr (op_ty_of args.(1)) in
    (match t0, t1 with
     | Types.Con ("Integer64", _), Types.Con ("Integer64", _)
     | Types.Con ("Real64", _), Types.Con ("Real64", _)
     | Types.Con ("Boolean", _), Types.Con ("Boolean", _)
     | Types.Con ("String", _), Types.Con ("String", _) ->
       Some (Printf.sprintf "%s %s %s" (a 0) op (a 1))
     | (Types.Con (("Integer64" | "Real64"), _)), (Types.Con (("Integer64" | "Real64"), _)) ->
       Some (Printf.sprintf "%s %s %s" (ri 0) op (ri 1))
     | _ -> None)
  | "unary_not" -> Some (Printf.sprintf "not %s" (a 0))
  | "binary_bitand" -> Some (Printf.sprintf "%s land %s" (a 0) (a 1))
  | "binary_bitor" -> Some (Printf.sprintf "%s lor %s" (a 0) (a 1))
  | "binary_bitxor" -> Some (Printf.sprintf "%s lxor %s" (a 0) (a 1))
  | "binary_shiftleft" -> Some (Printf.sprintf "%s lsl %s" (a 0) (a 1))
  | "binary_shiftright" -> Some (Printf.sprintf "%s asr %s" (a 0) (a 1))
  | "unary_sin" -> Some (Printf.sprintf "sin %s" (ri 0))
  | "unary_cos" -> Some (Printf.sprintf "cos %s" (ri 0))
  | "unary_tan" -> Some (Printf.sprintf "tan %s" (ri 0))
  | "unary_exp" -> Some (Printf.sprintf "exp %s" (ri 0))
  | "unary_log" -> Some (Printf.sprintf "log %s" (ri 0))
  | "unary_sqrt" -> Some (Printf.sprintf "sqrt %s" (ri 0))
  | "unary_floor" -> Some (Printf.sprintf "int_of_float (Float.floor %s)" (ri 0))
  | "unary_ceiling" -> Some (Printf.sprintf "int_of_float (Float.ceil %s)" (ri 0))
  | "unary_round" -> Some (Printf.sprintf "Wolf_base.Checked.round_half_even %s" (ri 0))
  | "unary_truncate" -> Some (Printf.sprintf "int_of_float (Float.trunc %s)" (ri 0))
  | "int_to_real" -> Some (Printf.sprintf "float_of_int %s" (a 0))
  | "unary_identity_int" | "unary_identity_real" -> Some (a 0)
  | "binary_min" when all_int -> Some (Printf.sprintf "min %s %s" (a 0) (a 1))
  | "binary_max" when all_int -> Some (Printf.sprintf "max %s %s" (a 0) (a 1))
  | "binary_min" when dst_is "Real64" -> Some (Printf.sprintf "Float.min %s %s" (ri 0) (ri 1))
  | "binary_max" when dst_is "Real64" -> Some (Printf.sprintf "Float.max %s %s" (ri 0) (ri 1))
  | "unary_evenq" -> Some (Printf.sprintf "(%s land 1 = 0)" (a 0))
  | "unary_oddq" -> Some (Printf.sprintf "(%s land 1 = 1)" (a 0))
  | "unary_boole" -> Some (Printf.sprintf "(if %s then 1 else 0)" (a 0))
  | "string_length" -> Some (Printf.sprintf "String.length %s" (a 0))
  | "string_byte" -> Some (Printf.sprintf "wolf_string_byte %s %s" (a 0) (ii 1))
  | "string_byte_unchecked" ->
    Some (Printf.sprintf "Char.code (String.unsafe_get %s (%s - 1))" (a 0) (ii 1))
  | "string_join" -> Some (Printf.sprintf "%s ^ %s" (a 0) (a 1))
  | "array_length" -> Some (Printf.sprintf "(Wolf_wexpr.Tensor.dims %s).(0)" (a 0))
  | "part_get_1" when dst_is "Integer64" ->
    Some (Printf.sprintf "wolf_part1_int %s %s" (a 0) (ii 1))
  | "part_get_1" when dst_is "Real64" ->
    Some (Printf.sprintf "wolf_part1_real %s %s" (a 0) (ii 1))
  | "part_get_1_unchecked" when dst_is "Integer64" ->
    Some (Printf.sprintf "wolf_iread %s (%s - 1)" (a 0) (ii 1))
  | "part_get_1_unchecked" when dst_is "Real64" ->
    Some (Printf.sprintf "wolf_rread %s (%s - 1)" (a 0) (ii 1))
  | "part_get_2" when dst_is "Integer64" ->
    Some (Printf.sprintf "(wolf_part2_int %s %s %s)" (a 0) (ii 1) (ii 2))
  | "part_get_2" when dst_is "Real64" ->
    Some (Printf.sprintf "(wolf_part2_real %s %s %s)" (a 0) (ii 1) (ii 2))
  | "part_set_1" | "part_set_1_inplace" ->
    let inplace = if base = "part_set_1_inplace" then "true" else "false" in
    (match Types.repr (op_ty_of args.(2)) with
     | Types.Con ("Integer64", _) ->
       Some (Printf.sprintf "(wolf_set1_int ~inplace:%s %s %s %s)" inplace (a 0) (ii 1) (a 2))
     | Types.Con ("Real64", _) ->
       Some (Printf.sprintf "(wolf_set1_real ~inplace:%s %s %s %s)" inplace (a 0) (ii 1) (ri 2))
     | _ -> None)
  | "part_set_2" | "part_set_2_inplace" ->
    let inplace = if base = "part_set_2_inplace" then "true" else "false" in
    (match Types.repr (op_ty_of args.(3)) with
     | Types.Con ("Integer64", _) ->
       Some (Printf.sprintf "(wolf_set2_int ~inplace:%s %s %s %s %s)" inplace (a 0) (ii 1) (ii 2) (a 3))
     | Types.Con ("Real64", _) ->
       Some (Printf.sprintf "(wolf_set2_real ~inplace:%s %s %s %s %s)" inplace (a 0) (ii 1) (ii 2) (ri 3))
     | _ -> None)
  | _ -> None

let prelude = {|
(* generated by the Wolfram compiler OCaml backend *)
[@@@warning "-a"]

exception Wolf_rt = Wolf_base.Errors.Runtime_error

let[@inline always] wolf_add a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then
    raise (Wolf_rt Wolf_base.Errors.Integer_overflow)
  else s

let[@inline always] wolf_sub a b =
  let s = a - b in
  if (a >= 0) <> (b >= 0) && (s >= 0) <> (a >= 0) then
    raise (Wolf_rt Wolf_base.Errors.Integer_overflow)
  else s

let[@inline always] wolf_mul a b =
  if a = 0 || b = 0 then 0
  else begin
    let p = a * b in
    if p / b <> a || (a = -1 && b = min_int) || (b = -1 && a = min_int) then
      raise (Wolf_rt Wolf_base.Errors.Integer_overflow)
    else p
  end

let[@inline always] wolf_mod a b =
  if b = 0 then raise (Wolf_rt Wolf_base.Errors.Division_by_zero)
  else begin
    let r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then r + b else r
  end

let[@inline always] wolf_quotient a b =
  if b = 0 then raise (Wolf_rt Wolf_base.Errors.Division_by_zero)
  else if a = min_int && b = -1 then raise (Wolf_rt Wolf_base.Errors.Integer_overflow)
  else begin
    let q = a / b in
    if (a < 0) <> (b < 0) && a mod b <> 0 then q - 1 else q
  end

let[@inline always] wolf_neg a =
  if a = min_int then raise (Wolf_rt Wolf_base.Errors.Integer_overflow) else -a

let wolf_ipow b e = Wolf_base.Checked.pow b e

let wolf_pow_ri x e =
  let rec go acc x e =
    if e = 0 then acc else go (if e land 1 = 1 then acc *. x else acc) (x *. x) (e lsr 1)
  in
  if e >= 0 then go 1.0 x e else 1.0 /. go 1.0 x (-e)

let[@inline always] wolf_string_byte s i =
  let n = String.length s in
  let j = if i < 0 then n + i else i - 1 in
  if j < 0 || j >= n then
    raise (Wolf_rt (Wolf_base.Errors.Part_out_of_range (i, n)));
  Char.code (String.unsafe_get s j)

(* Packed arrays: element access open-coded over the private representation
   so the JIT competes with hand-written loops (no cross-module calls). *)
let[@inline always] wolf_index1 (t : Wolf_wexpr.Tensor.t) i =
  let n = Array.unsafe_get t.Wolf_wexpr.Tensor.dims 0 in
  let j = if i < 0 then n + i else i - 1 in
  if i = 0 || j < 0 || j >= n then
    raise (Wolf_rt (Wolf_base.Errors.Part_out_of_range (i, n)));
  j

let[@inline always] wolf_flat2 (t : Wolf_wexpr.Tensor.t) i k =
  let dims = t.Wolf_wexpr.Tensor.dims in
  let n = Array.unsafe_get dims 0 and m = Array.unsafe_get dims 1 in
  let j1 = if i < 0 then n + i else i - 1 in
  let j2 = if k < 0 then m + k else k - 1 in
  if i = 0 || j1 < 0 || j1 >= n then
    raise (Wolf_rt (Wolf_base.Errors.Part_out_of_range (i, n)));
  if k = 0 || j2 < 0 || j2 >= m then
    raise (Wolf_rt (Wolf_base.Errors.Part_out_of_range (k, m)));
  (j1 * m) + j2

let[@inline always] wolf_iread (t : Wolf_wexpr.Tensor.t) j =
  match t.Wolf_wexpr.Tensor.data with
  | Wolf_wexpr.Tensor.Ints a -> Array.unsafe_get a j
  | Wolf_wexpr.Tensor.Reals a -> int_of_float (Array.unsafe_get a j)

let[@inline always] wolf_rread (t : Wolf_wexpr.Tensor.t) j =
  match t.Wolf_wexpr.Tensor.data with
  | Wolf_wexpr.Tensor.Reals a -> Array.unsafe_get a j
  | Wolf_wexpr.Tensor.Ints a -> float_of_int (Array.unsafe_get a j)

let[@inline always] wolf_iwrite (t : Wolf_wexpr.Tensor.t) j v =
  match t.Wolf_wexpr.Tensor.data with
  | Wolf_wexpr.Tensor.Ints a -> Array.unsafe_set a j v
  | Wolf_wexpr.Tensor.Reals a -> Array.unsafe_set a j (float_of_int v)

let[@inline always] wolf_rwrite (t : Wolf_wexpr.Tensor.t) j v =
  match t.Wolf_wexpr.Tensor.data with
  | Wolf_wexpr.Tensor.Reals a -> Array.unsafe_set a j v
  | Wolf_wexpr.Tensor.Ints a -> Array.unsafe_set a j (int_of_float v)

let[@inline always] wolf_part1_int t i = wolf_iread t (wolf_index1 t i)
let[@inline always] wolf_part1_real t i = wolf_rread t (wolf_index1 t i)
let[@inline always] wolf_part2_int t i k = wolf_iread t (wolf_flat2 t i k)
let[@inline always] wolf_part2_real t i k = wolf_rread t (wolf_flat2 t i k)

let[@inline always] wolf_cow ~inplace (t : Wolf_wexpr.Tensor.t) =
  if inplace || t.Wolf_wexpr.Tensor.refcount <= 1 then t
  else Wolf_wexpr.Tensor.ensure_unique t

let[@inline always] wolf_set1_int ~inplace t i v =
  let t = wolf_cow ~inplace t in
  wolf_iwrite t (wolf_index1 t i) v; t

let[@inline always] wolf_set1_real ~inplace t i v =
  let t = wolf_cow ~inplace t in
  wolf_rwrite t (wolf_index1 t i) v; t

let[@inline always] wolf_set2_int ~inplace t i k v =
  let t = wolf_cow ~inplace t in
  wolf_iwrite t (wolf_flat2 t i k) v; t

let[@inline always] wolf_set2_real ~inplace t i k v =
  let t = wolf_cow ~inplace t in
  wolf_rwrite t (wolf_flat2 t i k) v; t

let[@inline always] wolf_abort_check () = Wolf_base.Abort_signal.check ()
|}

let fn_ocaml_name ctx name =
  match Hashtbl.find_opt ctx.fn_names name with
  | Some n -> n
  | None ->
    let base = "fn_" ^ sanitize name in
    let unique =
      if Hashtbl.fold (fun _ v acc -> acc || v = base) ctx.fn_names false then
        Printf.sprintf "%s_%d" base (Hashtbl.length ctx.fn_names)
      else base
    in
    Hashtbl.replace ctx.fn_names name unique;
    unique

let boxed_prim_call ctx ~base ~args ~dst_ty =
  let boxed_args =
    Array.to_list args
    |> List.map (fun o -> box (op_ty_of o) (operand_expr ctx o))
  in
  unbox dst_ty
    (Printf.sprintf "(Wolf_runtime.Prims.apply ~base:%S [| %s |])" base
       (String.concat "; " boxed_args))

let emit_instr ctx b i =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b ("      " ^ s ^ "\n")) fmt in
  match i with
  | Load_argument _ -> ()
  | Abort_check -> line "let () = wolf_abort_check () in"
  | Abort_poll { stride; site } ->
    if not (List.mem_assoc site ctx.polls) then ctx.polls <- (site, stride) :: ctx.polls;
    line "let () = decr wolf_poll_%d in" site;
    line "let () = if !wolf_poll_%d <= 0 then (wolf_poll_%d := %d; wolf_abort_check ()) in"
      site site stride
  | Copy { dst; src } | Copy_value { dst; src } ->
    line "let v%d : %s = %s in" dst.vid (ocaml_ty (var_ty dst)) (operand_expr ctx src)
  | Mem_acquire op ->
    (match Types.repr (op_ty_of op) with
     | Types.Con ("PackedArray", _) ->
       line "let () = Wolf_wexpr.Tensor.acquire %s in" (operand_expr ctx op)
     | _ -> ())
  | Mem_release op ->
    (match Types.repr (op_ty_of op) with
     | Types.Con ("PackedArray", _) ->
       line "let () = Wolf_wexpr.Tensor.release %s in" (operand_expr ctx op)
     | _ -> ())
  | Kernel_call { dst; head; args } ->
    let hname, _ = const_named ctx (Rtval.Expr head) Types.expression in
    let arg_exprs =
      Array.to_list args
      |> List.map (fun o ->
          Printf.sprintf "Wolf_runtime.Rtval.to_expr %s" (box (op_ty_of o) (operand_expr ctx o)))
    in
    line "let v%d : Wolf_wexpr.Expr.t = Wolf_runtime.Hooks.eval (Wolf_wexpr.Expr.Normal (%s, [| %s |])) in"
      dst.vid hname (String.concat "; " arg_exprs)
  | New_closure { dst; fname; captured } ->
    (match Wir.find_func ctx.prog fname with
     | None -> invalid_arg ("ocaml_emit: missing closure target " ^ fname)
     | Some lifted ->
       let ncap = Array.length captured in
       let nargs = Array.length lifted.fparams - ncap in
       let caps = Array.to_list (Array.map (operand_expr ctx) captured) in
       let params = List.init nargs (fun k -> Printf.sprintf "_p%d" k) in
       line "let v%d : %s = (fun %s -> %s %s) in" dst.vid (ocaml_ty (var_ty dst))
         (if params = [] then "()" else String.concat " " params)
         (fn_ocaml_name ctx fname)
         (String.concat " " (caps @ params)))
  | Call { dst; callee = Func name; args } ->
    line "let v%d : %s = %s %s in" dst.vid (ocaml_ty (var_ty dst))
      (fn_ocaml_name ctx name)
      (if Array.length args = 0 then "()"
       else String.concat " "
           (Array.to_list (Array.map (fun o -> operand_expr ctx o) args)))
  | Call { dst; callee = Indirect fop; args } ->
    line "let v%d : %s = %s %s in" dst.vid (ocaml_ty (var_ty dst))
      (operand_expr ctx fop)
      (if Array.length args = 0 then "()"
       else String.concat " " (Array.to_list (Array.map (operand_expr ctx) args)))
  | Call { dst; callee = Resolved { base; _ }; args } ->
    let body =
      match (if ctx.einline then prim_expr ctx ~base ~args ~dst_ty:(var_ty dst) else None) with
      | Some s -> s
      | None -> boxed_prim_call ctx ~base ~args ~dst_ty:(var_ty dst)
    in
    line "let v%d : %s = %s in" dst.vid (ocaml_ty (var_ty dst)) body
  | Call { callee = Prim name; _ } ->
    invalid_arg ("ocaml_emit: unresolved primitive " ^ name)

let emit_func ctx (f : func) ~first =
  let b = ctx.buf in
  let live_in = Analysis.live_in f in
  let fparam_ids = Hashtbl.create 8 in
  Array.iter (fun v -> Hashtbl.replace fparam_ids v.vid ()) f.fparams;
  let block_extra bl =
    (* Live-in variables become extra leading parameters, sorted by id.
       Function parameters are lexically in scope inside every block
       function, so threading them would only lengthen the knot's argument
       lists (pushing hot loops past the native tail-call register limit). *)
    Hashtbl.fold (fun vid () acc -> vid :: acc) (Hashtbl.find live_in bl.label) []
    |> List.filter (fun vid -> not (Hashtbl.mem fparam_ids vid))
    |> List.sort compare
    |> List.map (fun vid -> Hashtbl.find ctx.vars vid)
  in
  let fname = fn_ocaml_name ctx f.fname in
  let params =
    if Array.length f.fparams = 0 then "()"
    else
      String.concat " "
        (Array.to_list
           (Array.map
              (fun v -> Printf.sprintf "(v%d : %s)" v.vid (ocaml_ty (var_ty v)))
              f.fparams))
  in
  let ret = match f.ret_ty with Some t -> ocaml_ty t | None -> "Wolf_runtime.Rtval.t" in
  Buffer.add_string b
    (Printf.sprintf "%s %s %s : %s =\n" (if first then "let rec" else "and") fname params ret);
  (* blocks as mutually recursive local functions *)
  let jump_call (j : jump) =
    let tgt = Wir.find_block f j.target in
    let extra = block_extra tgt in
    let args =
      List.map (fun v -> Printf.sprintf "v%d" v.vid) extra
      @ Array.to_list (Array.map (operand_expr ctx) j.jargs)
    in
    if args = [] then Printf.sprintf "blk%d ()" j.target
    else Printf.sprintf "blk%d %s" j.target (String.concat " " args)
  in
  List.iteri
    (fun bi bl ->
       let extra = block_extra bl in
       let params =
         List.map (fun v -> Printf.sprintf "(v%d : %s)" v.vid (ocaml_ty (var_ty v))) extra
         @ Array.to_list
             (Array.map
                (fun v -> Printf.sprintf "(v%d : %s)" v.vid (ocaml_ty (var_ty v)))
                bl.bparams)
       in
       let header =
         Printf.sprintf "  %s blk%d %s =\n"
           (if bi = 0 then "let rec" else "and")
           bl.label
           (if params = [] then "()" else String.concat " " params)
       in
       Buffer.add_string b header;
       List.iter (emit_instr ctx b) bl.instrs;
       let term =
         match bl.term with
         | Return op -> Printf.sprintf "      %s\n" (operand_expr ctx op)
         | Jump j -> Printf.sprintf "      %s\n" (jump_call j)
         | Branch { cond; if_true; if_false } ->
           Printf.sprintf "      if %s then %s else %s\n" (operand_expr ctx cond)
             (jump_call if_true) (jump_call if_false)
         | Unreachable -> "      assert false\n"
       in
       Buffer.add_string b term)
    f.blocks;
  let entry_label = (Wir.entry f).label in
  Buffer.add_string b (Printf.sprintf "  in blk%d ()\n\n" entry_label)

let emit ~module_name (c : Pipeline.compiled) =
  let prog = c.Pipeline.program in
  let ctx =
    {
      buf = Buffer.create 4096;
      einline = c.Pipeline.coptions.Wolf_compiler.Options.inline_level > 0;
      vars = Hashtbl.create 128;
      consts = [];
      const_count = 0;
      polls = [];
      module_key = module_name;
      fn_names = Hashtbl.create 8;
      prog;
    }
  in
  List.iter (fun f -> Wir.iter_vars f (fun v -> Hashtbl.replace ctx.vars v.vid v)) prog.funcs;
  Buffer.add_string ctx.buf prelude;
  (* constants are registered in Wolf_plugin by the host before loading;
     emitted below as module-level lets after function emission (we only know
     them then), so functions go into a second buffer *)
  let fnbuf = Buffer.create 4096 in
  let fctx = { ctx with buf = fnbuf } in
  List.iteri (fun i f -> emit_func fctx f ~first:(i = 0)) prog.funcs;
  ctx.consts <- fctx.consts;
  ctx.const_count <- fctx.const_count;
  ctx.polls <- fctx.polls;
  (* module-level poll counters: persist across calls like the threaded
     backend's per-site refs *)
  List.iter
    (fun (site, stride) ->
       Buffer.add_string ctx.buf (Printf.sprintf "let wolf_poll_%d = ref %d\n" site stride))
    (List.rev ctx.polls);
  (* constant bindings, in creation order so names match k{n} references *)
  List.iteri
    (fun i (key, _, ty) ->
       let fetch =
         Printf.sprintf "((Obj.obj (Option.get (Wolf_plugin.lookup %S))) : Wolf_runtime.Rtval.t)" key
       in
       Buffer.add_string ctx.buf
         (Printf.sprintf "let k%d : %s = %s\n" i (ocaml_ty ty) (unbox ty fetch)))
    (List.rev ctx.consts);
  Buffer.add_string ctx.buf "\n";
  Buffer.add_buffer ctx.buf fnbuf;
  (* entry wrapper *)
  let main = Wir.main prog in
  let entry_symbol = Printf.sprintf "%s:entry" module_name in
  let unboxed_args =
    Array.to_list
      (Array.mapi (fun i v -> unbox (var_ty v) (Printf.sprintf "_args.(%d)" i)) main.fparams)
  in
  let ret_ty = match main.ret_ty with Some t -> t | None -> Types.expression in
  Buffer.add_string ctx.buf
    (Printf.sprintf
       "let () =\n  Wolf_plugin.register %S\n    (Obj.repr (fun (_args : Wolf_runtime.Rtval.t array) : Wolf_runtime.Rtval.t ->\n      %s))\n"
       entry_symbol
       (box ret_ty
          (Printf.sprintf "%s %s" (fn_ocaml_name ctx main.fname)
             (if unboxed_args = [] then "()" else String.concat " " unboxed_args))));
  {
    source = Buffer.contents ctx.buf;
    entry_symbol;
    constants = List.rev_map (fun (k, rt, _) -> (k, rt)) ctx.consts |> List.rev;
  }
