(** System-C-compiler invocation for [wolfc build]: turn an emitted
    translation unit (see {!C_emit.emit_standalone}) into a self-contained
    native executable. *)

val default_cc : unit -> string
(** [$WOLF_CC] when set and non-empty, else ["cc"]. *)

val available : ?cc:string -> unit -> bool
(** Whether the compiler responds to [--version].  The default-compiler
    probe is memoized process-wide; an explicit [?cc] always re-probes. *)

val build :
  ?cc:string -> ?cflags:string list -> ?keep_c:string ->
  source:string -> output:string -> unit -> (unit, string) result
(** Write [source] to a C file, compile it ([cc -O2 ... -lm] plus
    [cflags], no shell involved), and atomically rename the resulting
    binary to [output].  [keep_c] writes the C source to the given path
    and leaves it there; otherwise a temp file is used and removed.  On
    failure the compiler's diagnostics are returned and [output] is left
    untouched. *)
