open Wolf_base
open Wolf_runtime
open Wolf_compiler
open Wir

type bank = I | R | O

type frame = {
  ri : int array;
  rr : float array;
  ro : Rtval.t array;
  mutable ret : Rtval.t;
}

type slot = { bank : bank; idx : int }

let bank_of_ty ty =
  match Types.repr ty with
  | Types.Con ("Integer64", _) | Types.Con ("Boolean", _) -> I
  | Types.Con ("Real64", _) -> R
  | _ -> O

let bank_of_var v =
  match v.vty with
  | Some t -> bank_of_ty t
  | None -> O

(* ------------------------------------------------------------------ *)

type fctx = {
  slots : (int, slot) Hashtbl.t;      (* var id -> register slot *)
  funcs : (string, (Rtval.t array -> Rtval.t) ref) Hashtbl.t;
  inline : bool;
}

let slot_of ctx v =
  match Hashtbl.find_opt ctx.slots v.vid with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "native: unallocated %%%d" v.vid)

let const_rtval = function
  | Cvoid -> Rtval.Unit
  | Cint i -> Rtval.Int i
  | Creal r -> Rtval.Real r
  | Cbool b -> Rtval.Bool b
  | Cstr s -> Rtval.Str s
  | Cexpr e -> Rtval.of_expr e

(* typed operand getters *)
let get_i ctx op : frame -> int =
  match op with
  | Oconst (Cint i) -> fun _ -> i
  | Oconst (Cbool b) -> let v = if b then 1 else 0 in fun _ -> v
  | Oconst c -> let v = Rtval.as_int (const_rtval c) in fun _ -> v
  | Ovar v ->
    let s = slot_of ctx v in
    (match s.bank with
     | I -> let i = s.idx in fun fr -> fr.ri.(i)
     | R -> let i = s.idx in fun fr -> int_of_float fr.rr.(i)
     | O -> let i = s.idx in fun fr -> Rtval.as_int fr.ro.(i))

let get_r ctx op : frame -> float =
  match op with
  | Oconst (Creal r) -> fun _ -> r
  | Oconst (Cint i) -> let v = float_of_int i in fun _ -> v
  | Oconst c -> let v = Rtval.as_real (const_rtval c) in fun _ -> v
  | Ovar v ->
    let s = slot_of ctx v in
    (match s.bank with
     | R -> let i = s.idx in fun fr -> fr.rr.(i)
     | I -> let i = s.idx in fun fr -> float_of_int fr.ri.(i)
     | O -> let i = s.idx in fun fr -> Rtval.as_real fr.ro.(i))

let get_o ctx op : frame -> Rtval.t =
  match op with
  | Oconst c ->
    let v = const_rtval c in
    (* the closure pools this value across calls: hold a claim so a COW
       store inside the function copies instead of mutating the pool *)
    (match v with Rtval.Tensor t -> Wolf_wexpr.Tensor.acquire t | _ -> ());
    fun _ -> v
  | Ovar v ->
    let s = slot_of ctx v in
    (match s.bank with
     | O -> let i = s.idx in fun fr -> fr.ro.(i)
     | I ->
       let i = s.idx in
       let is_bool =
         match v.vty with
         | Some t -> Types.equal (Types.repr t) Types.boolean
         | None -> false
       in
       if is_bool then fun fr -> Rtval.Bool (fr.ri.(i) <> 0)
       else fun fr -> Rtval.Int fr.ri.(i)
     | R -> let i = s.idx in fun fr -> Rtval.Real fr.rr.(i))

(* typed destination setters *)
let set_var ctx v : frame -> Rtval.t -> unit =
  let s = slot_of ctx v in
  match s.bank with
  | I ->
    let i = s.idx in
    fun fr value ->
      fr.ri.(i) <-
        (match value with
         | Rtval.Int x -> x
         | Rtval.Bool b -> if b then 1 else 0
         | v -> Rtval.as_int v)
  | R ->
    let i = s.idx in
    fun fr value -> fr.rr.(i) <- Rtval.as_real value
  | O ->
    let i = s.idx in
    fun fr value -> fr.ro.(i) <- value

let set_i ctx v =
  let s = slot_of ctx v in
  match s.bank with
  | I -> let i = s.idx in fun (fr : frame) (x : int) -> fr.ri.(i) <- x
  | R -> let i = s.idx in fun fr x -> fr.rr.(i) <- float_of_int x
  | O -> let i = s.idx in fun fr x -> fr.ro.(i) <- Rtval.Int x

let set_b ctx v =
  let s = slot_of ctx v in
  match s.bank with
  | I -> let i = s.idx in fun (fr : frame) b -> fr.ri.(i) <- (if b then 1 else 0)
  | R -> invalid_arg "native: boolean into real bank"
  | O -> let i = s.idx in fun fr b -> fr.ro.(i) <- Rtval.Bool b

let set_r ctx v =
  let s = slot_of ctx v in
  match s.bank with
  | R -> let i = s.idx in fun (fr : frame) (x : float) -> fr.rr.(i) <- x
  | I -> let i = s.idx in fun fr x -> fr.ri.(i) <- int_of_float x
  | O -> let i = s.idx in fun fr x -> fr.ro.(i) <- Rtval.Real x

let operand_bank ctx = function
  | Ovar v -> (slot_of ctx v).bank
  | Oconst c -> bank_of_ty (Wir.const_ty c)

(* ------------------------------------------------------------------ *)
(* Open-coded primitives                                               *)

let compile_prim ctx ~base ~dst ~(args : operand array) : (frame -> unit) option =
  if not ctx.inline then None
  else begin
    let dst_bank = bank_of_var dst in
    let b2 mk = mk args.(0) args.(1) in
    let ints = Array.for_all (fun a -> operand_bank ctx a = I) args in
    match base, dst_bank with
    | "checked_binary_plus", I when ints ->
      let ga = get_i ctx args.(0) and gb = get_i ctx args.(1) and set = set_i ctx dst in
      Some (fun fr -> set fr (Checked.add (ga fr) (gb fr)))
    | "checked_binary_subtract", I when ints ->
      let ga = get_i ctx args.(0) and gb = get_i ctx args.(1) and set = set_i ctx dst in
      Some (fun fr -> set fr (Checked.sub (ga fr) (gb fr)))
    | "checked_binary_times", I when ints ->
      let ga = get_i ctx args.(0) and gb = get_i ctx args.(1) and set = set_i ctx dst in
      Some (fun fr -> set fr (Checked.mul (ga fr) (gb fr)))
    | "checked_binary_mod", I when ints ->
      let ga = get_i ctx args.(0) and gb = get_i ctx args.(1) and set = set_i ctx dst in
      Some (fun fr -> set fr (Checked.modulo (ga fr) (gb fr)))
    | "checked_binary_quotient", I when ints ->
      let ga = get_i ctx args.(0) and gb = get_i ctx args.(1) and set = set_i ctx dst in
      Some (fun fr -> set fr (Checked.quotient (ga fr) (gb fr)))
    | "checked_binary_power", I when ints ->
      let ga = get_i ctx args.(0) and gb = get_i ctx args.(1) and set = set_i ctx dst in
      Some (fun fr -> set fr (Checked.pow (ga fr) (gb fr)))
    | "checked_unary_minus", I ->
      let ga = get_i ctx args.(0) and set = set_i ctx dst in
      Some (fun fr -> set fr (Checked.neg (ga fr)))
    | "checked_unary_abs", I ->
      let ga = get_i ctx args.(0) and set = set_i ctx dst in
      Some (fun fr -> set fr (abs (ga fr)))
    | ("binary_bitand" | "binary_bitor" | "binary_bitxor"
      | "binary_shiftleft" | "binary_shiftright"), I when ints ->
      let op = match base with
        | "binary_bitand" -> ( land )
        | "binary_bitor" -> ( lor )
        | "binary_bitxor" -> ( lxor )
        | "binary_shiftleft" -> ( lsl )
        | _ -> ( asr )
      in
      b2 (fun a b ->
          let ga = get_i ctx a and gb = get_i ctx b and set = set_i ctx dst in
          Some (fun fr -> set fr (op (ga fr) (gb fr))))
    | ("binary_plus" | "binary_subtract" | "binary_times" | "binary_divide"), R ->
      let op = match base with
        | "binary_plus" -> ( +. )
        | "binary_subtract" -> ( -. )
        | "binary_times" -> ( *. )
        | _ -> ( /. )
      in
      b2 (fun a b ->
          let ga = get_r ctx a and gb = get_r ctx b and set = set_r ctx dst in
          Some (fun fr -> set fr (op (ga fr) (gb fr))))
    | "binary_power", R ->
      b2 (fun a b ->
          let ga = get_r ctx a and gb = get_r ctx b and set = set_r ctx dst in
          Some (fun fr -> set fr (Float.pow (ga fr) (gb fr))))
    | "binary_power_ri", R ->
      (match args.(1) with
       | Oconst (Cint 2) ->
         let ga = get_r ctx args.(0) and set = set_r ctx dst in
         Some (fun fr -> let x = ga fr in set fr (x *. x))
       | _ ->
         let ga = get_r ctx args.(0) and gb = get_i ctx args.(1) and set = set_r ctx dst in
         Some
           (fun fr ->
              let x = ga fr and e = gb fr in
              let rec go acc x e =
                if e = 0 then acc
                else go (if e land 1 = 1 then acc *. x else acc) (x *. x) (e lsr 1)
              in
              set fr (if e >= 0 then go 1.0 x e else 1.0 /. go 1.0 x (-e))))
    | "unary_minus", R ->
      let ga = get_r ctx args.(0) and set = set_r ctx dst in
      Some (fun fr -> set fr (-.(ga fr)))
    | "unary_abs", R ->
      let ga = get_r ctx args.(0) and set = set_r ctx dst in
      Some (fun fr -> set fr (Float.abs (ga fr)))
    | ("binary_less" | "binary_greater" | "binary_less_equal" | "binary_greater_equal"
      | "binary_equal" | "binary_unequal"), I when ints ->
      let op : int -> int -> bool = match base with
        | "binary_less" -> ( < )
        | "binary_greater" -> ( > )
        | "binary_less_equal" -> ( <= )
        | "binary_greater_equal" -> ( >= )
        | "binary_equal" -> ( = )
        | _ -> ( <> )
      in
      b2 (fun a b ->
          let ga = get_i ctx a and gb = get_i ctx b and set = set_b ctx dst in
          Some (fun fr -> set fr (op (ga fr) (gb fr))))
    | ("binary_less" | "binary_greater" | "binary_less_equal" | "binary_greater_equal"
      | "binary_equal" | "binary_unequal"), I
      when Array.for_all (fun a -> operand_bank ctx a <> O) args ->
      let op : float -> float -> bool = match base with
        | "binary_less" -> ( < )
        | "binary_greater" -> ( > )
        | "binary_less_equal" -> ( <= )
        | "binary_greater_equal" -> ( >= )
        | "binary_equal" -> ( = )
        | _ -> ( <> )
      in
      b2 (fun a b ->
          let ga = get_r ctx a and gb = get_r ctx b and set = set_b ctx dst in
          Some (fun fr -> set fr (op (ga fr) (gb fr))))
    | "unary_not", I ->
      let ga = get_i ctx args.(0) and set = set_b ctx dst in
      Some (fun fr -> set fr (ga fr = 0))
    | ("unary_sin" | "unary_cos" | "unary_tan" | "unary_exp" | "unary_log"
      | "unary_sqrt"), R ->
      let f = match base with
        | "unary_sin" -> sin
        | "unary_cos" -> cos
        | "unary_tan" -> tan
        | "unary_exp" -> exp
        | "unary_log" -> log
        | _ -> sqrt
      in
      let ga = get_r ctx args.(0) and set = set_r ctx dst in
      Some (fun fr -> set fr (f (ga fr)))
    | "unary_floor", I ->
      let ga = get_r ctx args.(0) and set = set_i ctx dst in
      Some (fun fr -> set fr (int_of_float (Float.floor (ga fr))))
    | "unary_ceiling", I ->
      let ga = get_r ctx args.(0) and set = set_i ctx dst in
      Some (fun fr -> set fr (int_of_float (Float.ceil (ga fr))))
    | "unary_round", I ->
      let ga = get_r ctx args.(0) and set = set_i ctx dst in
      Some (fun fr -> set fr (Checked.round_half_even (ga fr)))
    | "unary_truncate", I ->
      let ga = get_r ctx args.(0) and set = set_i ctx dst in
      Some (fun fr -> set fr (int_of_float (Float.trunc (ga fr))))
    | "int_to_real", R ->
      let ga = get_i ctx args.(0) and set = set_r ctx dst in
      Some (fun fr -> set fr (float_of_int (ga fr)))
    | ("unary_identity_int" | "unary_identity_real"), _ ->
      let g = get_o ctx args.(0) and set = set_var ctx dst in
      Some (fun fr -> set fr (g fr))
    | "binary_min", I when ints ->
      b2 (fun a b ->
          let ga = get_i ctx a and gb = get_i ctx b and set = set_i ctx dst in
          Some (fun fr -> set fr (min (ga fr) (gb fr))))
    | "binary_max", I when ints ->
      b2 (fun a b ->
          let ga = get_i ctx a and gb = get_i ctx b and set = set_i ctx dst in
          Some (fun fr -> set fr (max (ga fr) (gb fr))))
    | "binary_min", R ->
      b2 (fun a b ->
          let ga = get_r ctx a and gb = get_r ctx b and set = set_r ctx dst in
          Some (fun fr -> set fr (Float.min (ga fr) (gb fr))))
    | "binary_max", R ->
      b2 (fun a b ->
          let ga = get_r ctx a and gb = get_r ctx b and set = set_r ctx dst in
          Some (fun fr -> set fr (Float.max (ga fr) (gb fr))))
    | "unary_evenq", I ->
      let ga = get_i ctx args.(0) and set = set_b ctx dst in
      Some (fun fr -> set fr (ga fr land 1 = 0))
    | "unary_oddq", I ->
      let ga = get_i ctx args.(0) and set = set_b ctx dst in
      Some (fun fr -> set fr (ga fr land 1 = 1))
    | "unary_boole", I ->
      let ga = get_i ctx args.(0) and set = set_i ctx dst in
      Some (fun fr -> set fr (ga fr))
    | "string_length", I ->
      let g = get_o ctx args.(0) and set = set_i ctx dst in
      Some (fun fr -> set fr (String.length (Rtval.as_str (g fr))))
    | "string_byte", I ->
      let gs = get_o ctx args.(0) and gi = get_i ctx args.(1) and set = set_i ctx dst in
      Some
        (fun fr ->
           let s = Rtval.as_str (gs fr) in
           let i = gi fr in
           let j = if i < 0 then String.length s + i else i - 1 in
           if j < 0 || j >= String.length s then
             raise (Errors.Runtime_error (Errors.Part_out_of_range (i, String.length s)));
           set fr (Char.code (String.unsafe_get s j)))
    | "array_length", I ->
      let g = get_o ctx args.(0) and set = set_i ctx dst in
      Some (fun fr -> set fr (Wolf_wexpr.Tensor.dims (Rtval.as_tensor (g fr))).(0))
    | "part_get_1", (I | R) ->
      let gt = get_o ctx args.(0) and gi = get_i ctx args.(1) in
      let norm = Wolf_wexpr.Tensor.normalize_index in
      if dst_bank = I then begin
        let set = set_i ctx dst in
        Some
          (fun fr ->
             let t = Rtval.as_tensor (gt fr) in
             set fr (Wolf_wexpr.Tensor.get_int t (norm t (gi fr))))
      end
      else begin
        let set = set_r ctx dst in
        Some
          (fun fr ->
             let t = Rtval.as_tensor (gt fr) in
             set fr (Wolf_wexpr.Tensor.get_real t (norm t (gi fr))))
      end
    | "part_get_1_unchecked", (I | R) ->
      (* bounds proven by the loop optimiser; only positive in-range indices
         reach here, so skip normalize_index *)
      let gt = get_o ctx args.(0) and gi = get_i ctx args.(1) in
      if dst_bank = I then begin
        let set = set_i ctx dst in
        Some
          (fun fr ->
             set fr (Wolf_wexpr.Tensor.get_int (Rtval.as_tensor (gt fr)) (gi fr - 1)))
      end
      else begin
        let set = set_r ctx dst in
        Some
          (fun fr ->
             set fr (Wolf_wexpr.Tensor.get_real (Rtval.as_tensor (gt fr)) (gi fr - 1)))
      end
    | "string_byte_unchecked", I ->
      let gs = get_o ctx args.(0) and gi = get_i ctx args.(1) and set = set_i ctx dst in
      Some
        (fun fr ->
           set fr (Char.code (String.unsafe_get (Rtval.as_str (gs fr)) (gi fr - 1))))
    | "part_get_2", (I | R) ->
      let gt = get_o ctx args.(0) and gi = get_i ctx args.(1) and gk = get_i ctx args.(2) in
      let flat t i k =
        let dims = Wolf_wexpr.Tensor.dims t in
        let j1 = if i < 0 then dims.(0) + i else i - 1 in
        let j2 = if k < 0 then dims.(1) + k else k - 1 in
        if j1 < 0 || j1 >= dims.(0) then
          raise (Errors.Runtime_error (Errors.Part_out_of_range (i, dims.(0))));
        if j2 < 0 || j2 >= dims.(1) then
          raise (Errors.Runtime_error (Errors.Part_out_of_range (k, dims.(1))));
        (j1 * dims.(1)) + j2
      in
      if dst_bank = I then begin
        let set = set_i ctx dst in
        Some
          (fun fr ->
             let t = Rtval.as_tensor (gt fr) in
             set fr (Wolf_wexpr.Tensor.get_int t (flat t (gi fr) (gk fr))))
      end
      else begin
        let set = set_r ctx dst in
        Some
          (fun fr ->
             let t = Rtval.as_tensor (gt fr) in
             set fr (Wolf_wexpr.Tensor.get_real t (flat t (gi fr) (gk fr))))
      end
    | ("part_set_1" | "part_set_1_inplace"), O ->
      let inplace = base = "part_set_1_inplace" in
      let gt = get_o ctx args.(0) and gi = get_i ctx args.(1) in
      let gv_bank = operand_bank ctx args.(2) in
      let set = set_var ctx dst in
      let norm = Wolf_wexpr.Tensor.normalize_index in
      (match gv_bank with
       | I ->
         let gv = get_i ctx args.(2) in
         Some
           (fun fr ->
              let t = Rtval.as_tensor (gt fr) in
              let t = if inplace then t else Wolf_wexpr.Tensor.ensure_unique t in
              Wolf_wexpr.Tensor.set_int t (norm t (gi fr)) (gv fr);
              set fr (Rtval.Tensor t))
       | R ->
         let gv = get_r ctx args.(2) in
         Some
           (fun fr ->
              let t = Rtval.as_tensor (gt fr) in
              let t = if inplace then t else Wolf_wexpr.Tensor.ensure_unique t in
              Wolf_wexpr.Tensor.set_real t (norm t (gi fr)) (gv fr);
              set fr (Rtval.Tensor t))
       | O -> None)
    | ("part_set_2" | "part_set_2_inplace"), O ->
      let inplace = base = "part_set_2_inplace" in
      let gt = get_o ctx args.(0) and gi = get_i ctx args.(1) and gk = get_i ctx args.(2) in
      let set = set_var ctx dst in
      let flat t i k =
        let dims = Wolf_wexpr.Tensor.dims t in
        let j1 = if i < 0 then dims.(0) + i else i - 1 in
        let j2 = if k < 0 then dims.(1) + k else k - 1 in
        if j1 < 0 || j1 >= dims.(0) then
          raise (Errors.Runtime_error (Errors.Part_out_of_range (i, dims.(0))));
        if j2 < 0 || j2 >= dims.(1) then
          raise (Errors.Runtime_error (Errors.Part_out_of_range (k, dims.(1))));
        (j1 * dims.(1)) + j2
      in
      (match operand_bank ctx args.(3) with
       | I ->
         let gv = get_i ctx args.(3) in
         Some
           (fun fr ->
              let t = Rtval.as_tensor (gt fr) in
              let t = if inplace then t else Wolf_wexpr.Tensor.ensure_unique t in
              Wolf_wexpr.Tensor.set_int t (flat t (gi fr) (gk fr)) (gv fr);
              set fr (Rtval.Tensor t))
       | R ->
         let gv = get_r ctx args.(3) in
         Some
           (fun fr ->
              let t = Rtval.as_tensor (gt fr) in
              let t = if inplace then t else Wolf_wexpr.Tensor.ensure_unique t in
              Wolf_wexpr.Tensor.set_real t (flat t (gi fr) (gk fr)) (gv fr);
              set fr (Rtval.Tensor t))
       | O -> None)
    | _ -> None
  end

(* ------------------------------------------------------------------ *)

let compile_instr ctx (i : instr) : frame -> unit =
  match i with
  | Load_argument _ -> fun _ -> () (* handled at function entry *)
  | Abort_check -> fun _ -> Abort_signal.check ()
  | Abort_poll { stride; _ } ->
    (* the budget cell is captured by this site's closure, so it persists
       across iterations and calls: one real check per [stride] executions.
       Atomic because the same compiled function may run on several domains
       at once (e.g. out of the compile cache); a plain ref would lose
       decrements under contention and stretch the poll interval. *)
    let budget = Atomic.make stride in
    fun _ ->
      if Atomic.fetch_and_add budget (-1) <= 1 then begin
        Atomic.set budget stride;
        Abort_signal.check ()
      end
  | Copy { dst; src } | Copy_value { dst; src } ->
    (match (slot_of ctx dst).bank with
     | I -> let g = get_i ctx src and set = set_i ctx dst in fun fr -> set fr (g fr)
     | R -> let g = get_r ctx src and set = set_r ctx dst in fun fr -> set fr (g fr)
     | O -> let g = get_o ctx src and set = set_var ctx dst in fun fr -> set fr (g fr))
  | Mem_acquire op ->
    let g = get_o ctx op in
    fun fr ->
      (match g fr with
       | Rtval.Tensor t -> Wolf_wexpr.Tensor.acquire t
       | _ -> ())
  | Mem_release op ->
    let g = get_o ctx op in
    fun fr ->
      (match g fr with
       | Rtval.Tensor t -> Wolf_wexpr.Tensor.release t
       | _ -> ())
  | Kernel_call { dst; head; args } ->
    let getters = Array.map (get_o ctx) args in
    let set = set_var ctx dst in
    fun fr ->
      let arg_exprs = Array.map (fun g -> Rtval.to_expr (g fr)) getters in
      let result = Hooks.eval (Wolf_wexpr.Expr.Normal (head, arg_exprs)) in
      set fr (Rtval.Expr result)
  | New_closure { dst; fname; captured } ->
    let target =
      match Hashtbl.find_opt ctx.funcs fname with
      | Some r -> r
      | None -> invalid_arg ("native: unknown closure target " ^ fname)
    in
    let getters = Array.map (get_o ctx) captured in
    let set = set_var ctx dst in
    fun fr ->
      let cap = Array.map (fun g -> g fr) getters in
      set fr
        (Rtval.Fun
           { arity = -1; call = (fun args -> !target (Array.append cap args)) })
  | Call { dst; callee = Indirect fop; args } ->
    let gf = get_o ctx fop in
    let getters = Array.map (get_o ctx) args in
    let set = set_var ctx dst in
    fun fr ->
      let f = Rtval.as_fun (gf fr) in
      set fr (f.call (Array.map (fun g -> g fr) getters))
  | Call { dst; callee = Func name; args } ->
    let target =
      match Hashtbl.find_opt ctx.funcs name with
      | Some r -> r
      | None -> invalid_arg ("native: unknown function " ^ name)
    in
    let getters = Array.map (get_o ctx) args in
    let set = set_var ctx dst in
    fun fr -> set fr (!target (Array.map (fun g -> g fr) getters))
  | Call { dst; callee = Resolved { base; _ }; args } ->
    (match compile_prim ctx ~base ~dst ~args with
     | Some fast -> fast
     | None ->
       let getters = Array.map (get_o ctx) args in
       let set = set_var ctx dst in
       fun fr -> set fr (Prims.apply ~base (Array.map (fun g -> g fr) getters)))
  | Call { callee = Prim name; _ } ->
    invalid_arg ("native: unresolved primitive " ^ name)

(* Parallel move for jump arguments: read everything, then write. *)
let compile_jump ctx (target_params : var array) (j : jump) : frame -> unit =
  let moves =
    Array.mapi
      (fun i arg ->
         let param = target_params.(i) in
         match (slot_of ctx param).bank with
         | I ->
           let g = get_i ctx arg and s = set_i ctx param in
           `I (g, s)
         | R ->
           let g = get_r ctx arg and s = set_r ctx param in
           `R (g, s)
         | O ->
           let g = get_o ctx arg and s = set_var ctx param in
           `O (g, s))
      j.jargs
  in
  let n = Array.length moves in
  if n = 0 then fun _ -> ()
  else
    fun fr ->
      (* stage reads before writes (loop-carried params may swap) *)
      let staged_i = Array.make n 0 in
      let staged_r = Array.make n 0.0 in
      let staged_o = Array.make n Rtval.Unit in
      Array.iteri
        (fun i m ->
           match m with
           | `I (g, _) -> staged_i.(i) <- g fr
           | `R (g, _) -> staged_r.(i) <- g fr
           | `O (g, _) -> staged_o.(i) <- g fr)
        moves;
      Array.iteri
        (fun i m ->
           match m with
           | `I (_, s) -> s fr staged_i.(i)
           | `R (_, s) -> s fr staged_r.(i)
           | `O (_, s) -> s fr staged_o.(i))
        moves

let compile_func ctx (f : func) : Rtval.t array -> Rtval.t =
  (* allocate slots *)
  let counts = [| 0; 0; 0 |] in
  let alloc v =
    if not (Hashtbl.mem ctx.slots v.vid) then begin
      let bank = bank_of_var v in
      let k = match bank with I -> 0 | R -> 1 | O -> 2 in
      Hashtbl.replace ctx.slots v.vid { bank; idx = counts.(k) };
      counts.(k) <- counts.(k) + 1
    end
  in
  Wir.iter_vars f alloc;
  let ni = counts.(0) and nr = counts.(1) and no = counts.(2) in
  (* compile blocks *)
  let labels = List.map (fun b -> b.label) f.blocks in
  let index_of l =
    let rec go i = function
      | [] -> invalid_arg "native: missing block"
      | x :: rest -> if x = l then i else go (i + 1) rest
    in
    go 0 labels
  in
  let compile_term (t : terminator) : frame -> int =
    match t with
    | Return op ->
      let g = get_o ctx op in
      fun fr ->
        fr.ret <- g fr;
        -1
    | Jump j ->
      let tgt = Wir.find_block f j.target in
      let move = compile_jump ctx tgt.bparams j in
      let idx = index_of j.target in
      fun fr -> move fr; idx
    | Branch { cond; if_true; if_false } ->
      let g = get_i ctx cond in
      let tb = Wir.find_block f if_true.target in
      let fb = Wir.find_block f if_false.target in
      let tmove = compile_jump ctx tb.bparams if_true in
      let fmove = compile_jump ctx fb.bparams if_false in
      let ti = index_of if_true.target and fi = index_of if_false.target in
      fun fr ->
        if g fr <> 0 then begin tmove fr; ti end
        else begin fmove fr; fi end
    | Unreachable -> fun _ -> invalid_arg ("native: unreachable block in " ^ f.fname)
  in
  let blocks =
    Array.of_list
      (List.map
         (fun b ->
            let body =
              List.fold_left
                (fun acc i ->
                   let ci = compile_instr ctx i in
                   match acc with
                   | None -> Some ci
                   | Some prev -> Some (fun fr -> prev fr; ci fr))
                None b.instrs
            in
            let term = compile_term b.term in
            match body with
            | None -> term
            | Some body -> fun fr -> body fr; term fr)
         f.blocks)
  in
  (* argument binding: Load_argument instructions of the entry block *)
  let binders =
    List.concat_map
      (fun b ->
         List.filter_map
           (fun i ->
              match i with
              | Load_argument { dst; index } ->
                let set = set_var ctx dst in
                Some (fun fr (args : Rtval.t array) -> set fr args.(index))
              | _ -> None)
           b.instrs)
      f.blocks
  in
  fun args ->
    let fr = { ri = Array.make (max ni 1) 0;
               rr = Array.make (max nr 1) 0.0;
               ro = Array.make (max no 1) Rtval.Unit;
               ret = Rtval.Unit }
    in
    List.iter (fun bind -> bind fr args) binders;
    let pc = ref 0 in
    while !pc >= 0 do
      pc := blocks.(!pc) fr
    done;
    fr.ret

let compile (c : Pipeline.compiled) : Rtval.closure =
  Wolf_obs.Trace.with_span ~cat:"codegen" "native-codegen" @@ fun () ->
  let prog = c.Pipeline.program in
  let funcs : (string, (Rtval.t array -> Rtval.t) ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun f ->
       Hashtbl.replace funcs f.fname
         (ref (fun _ -> invalid_arg ("native: " ^ f.fname ^ " not yet compiled"))))
    prog.funcs;
  let inline = c.Pipeline.coptions.Options.inline_level > 0 in
  let profile = c.Pipeline.coptions.Options.profile in
  List.iter
    (fun f ->
       let ctx = { slots = Hashtbl.create 64; funcs; inline } in
       let compiled = compile_func ctx f in
       (* under --profile every WIR function body is wrapped at its call
          boundary, so the hot-function table sees calls/self-time per
          function, including recursive and cross-function calls through
          the [funcs] indirection *)
       let compiled =
         if profile then Wolf_obs.Profile.wrap_fn f.fname compiled else compiled
       in
       Hashtbl.find funcs f.fname := compiled)
    prog.funcs;
  let main = Wir.main prog in
  let entry = !(Hashtbl.find funcs main.fname) in
  { Rtval.arity = Array.length main.fparams; call = entry }
