(** The legacy bytecode compiler and Wolfram Virtual Machine — the paper's
    baseline (§2.2), rebuilt with its documented cost model and limitations:

    - fixed datatypes only (machine int64, real, complex, boolean, and
      tensors thereof); unknown argument types are assumed Real;
    - boxed registers with per-instruction dispatch, no inlining;
    - copy-on-read for tensor slices;
    - no strings and no function values (L1 Expressiveness: [Compile_error]);
    - unsupported expressions fall back to an embedded interpreter escape;
    - runtime numerical errors revert the call to the interpreter (F2);
    - an abort check per backward jump (F3).

    [compile] is the [Compile[…]] analogue; the instruction listing can be
    rendered like the paper's [CompiledFunction] InputForm dump. *)

open Wolf_wexpr
open Wolf_runtime

type compiled_function

val compile : ?name:string -> Expr.t -> compiled_function
(** Compile [Function[{args…}, body]]; parameters may carry [Typed]
    annotations restricted to the WVM datatypes, otherwise Real is assumed.
    @raise Wolf_base.Errors.Compile_error for unsupported parameter types. *)

val call : compiled_function -> Expr.t array -> Expr.t
(** Run in the VM; runtime errors revert to the interpreter. *)

val call_values : compiled_function -> Rtval.t array -> Rtval.t
(** Raw VM entry; raises on runtime failures. *)

val serialize : compiled_function -> string
(** Marshal the image through a data-only instruction twin (opcode
    dispatchers are closures rebuilt from their names on load).  The bytes
    are only meaningful to {!deserialize} in a binary of the same build —
    the disk cache guards that with an executable digest. *)

val deserialize : string -> compiled_function option
(** Rebuild an image: re-resolve opcode dispatchers, re-intern every
    symbol (equality is physical, so marshaled copies match nothing),
    reset poll budgets, and re-verify the bytecode.  [None] on any
    mismatch or corruption. *)

val arity : compiled_function -> int
val instruction_count : compiled_function -> int
val dump : compiled_function -> string
(** Serialised form in the spirit of the paper's CompiledFunction dump. *)
