(** CompiledCodeFunction: the wrapper the interpreter actually calls
    (paper §4.5 "Expression Boxing and Unboxing" and §4.5 "Soft Numerical
    Failure").

    To the Wolfram interpreter every function is Expression → Expression;
    this wrapper unpacks the input expressions, checks the argument count
    and types against the compiled signature, calls the compiled entry, and
    packs the result.  On a runtime numerical error (integer overflow,
    division by zero, part range) it prints the paper's warning and
    re-evaluates the original function with the interpreter — which promotes
    to arbitrary precision (cfib[200] returns the exact integer).  Argument
    type mismatches skip the compiled path silently (F1). *)

open Wolf_wexpr
open Wolf_runtime
open Wolf_compiler

type t = {
  cf_name : string;
  arg_tys : Types.t array;
  ret_ty : Types.t;
  cf_source : Expr.t;                (** original Function, for fallback *)
  entry : Rtval.closure;
  compiler_version : string;
  engine_version : string;
  fallbacks : int Atomic.t;          (** soft-failure reverts so far *)
}

val versions : string * string
(** (compiler version, engine version) baked into every compiled function;
    checked at call time like the paper's CompiledFunction header. *)

val wrap :
  name:string -> source:Expr.t -> arg_tys:Types.t array -> ret_ty:Types.t ->
  Rtval.closure -> t

val call : t -> Expr.t array -> Expr.t
(** Evaluate on expressions, with unbox/typecheck/soft-fallback semantics.
    Requires an installed kernel ({!Wolf_runtime.Hooks}). *)

val call_values : t -> Rtval.t array -> Rtval.t
(** Raw compiled entry (no fallback): raises on runtime failures. *)

val kernel_closure : t -> Rtval.closure
(** Closure suitable for {!Wolf_kernel.Values.set_compiled_value}: performs
    the full wrapper semantics, so the interpreter transparently runs
    compiled definitions. *)

val quiet : bool ref
(** Suppress the soft-failure warning line (benchmarks). *)
