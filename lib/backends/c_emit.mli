(** Standalone C export (objective F10, the
    [FunctionCompileExportString[…, "C"]] analogue).

    Emits a self-contained C translation unit: a miniature tensor runtime
    (refcounted packed arrays with copy-on-write, mirroring the
    interpreter's [Tensor.ensure_unique] aliasing semantics), checked
    allocation, overflow-checked arithmetic via compiler builtins, literal
    tensor constants materialised as immutable static data, and one C
    function per program function with the CFG rendered as labelled blocks
    and gotos.  Interpreter integration is disabled as in the paper's
    standalone mode: programs using [KernelCall] or [Expression] values are
    rejected.  Abortability survives without a kernel: every abort site
    tests a [volatile] stop flag that [wolf_request_stop] (wired to SIGINT
    by the standalone driver, or called by an embedding host) sets.

    Generated binaries exit with a distinct code per failure kind:
    2 usage/argument errors, 3 runtime panics, 4 out-of-memory, 5 abort. *)

type emitted = {
  source : string;
  entry_name : string;      (** C symbol of the compiled entry point *)
}

val emit : Wolf_compiler.Pipeline.compiled -> (emitted, string) result

val emit_with_driver :
  Wolf_compiler.Pipeline.compiled -> args:Wolf_runtime.Rtval.t list ->
  (emitted, string) result
(** Additionally emits a [main] that calls the entry with the given
    arguments baked in as constants and prints the result in InputForm —
    used by the differential test that compiles the export with the system
    C compiler and compares output. *)

val emit_standalone :
  Wolf_compiler.Pipeline.compiled -> (emitted, string) result
(** Additionally emits a [main(argc, argv)] that installs SIGINT/SIGTERM →
    [wolf_request_stop] handlers, parses one typed command-line argument
    per program parameter at run time (integers, reals, True/False, raw
    strings, and rank-1 brace lists like [{1, 2, 3}]), calls the entry and
    prints the result in InputForm.  This is the [wolfc build] driver. *)
