open Wolf_base
open Wolf_wexpr
open Wolf_runtime
open Wolf_compiler

type t = {
  cf_name : string;
  arg_tys : Types.t array;
  ret_ty : Types.t;
  cf_source : Expr.t;
  entry : Rtval.closure;
  compiler_version : string;
  engine_version : string;
  fallbacks : int Atomic.t;  (* incremented from any domain calling this function *)
}

let versions = ("1.0.1.0", "12.0")

let quiet = ref false

let wrap ~name ~source ~arg_tys ~ret_ty entry =
  let compiler_version, engine_version = versions in
  {
    cf_name = name;
    arg_tys;
    ret_ty;
    cf_source = source;
    entry;
    compiler_version;
    engine_version;
    fallbacks = Atomic.make 0;
  }

(* Check and coerce one unboxed argument against its declared type. *)
let admit ty (v : Rtval.t) : Rtval.t option =
  match Types.repr ty, v with
  | Types.Con ("Integer64", _), Rtval.Int _ -> Some v
  | Types.Con ("Real64", _), Rtval.Real _ -> Some v
  | Types.Con ("Real64", _), Rtval.Int i -> Some (Rtval.Real (float_of_int i))
  | Types.Con ("Boolean", _), Rtval.Bool _ -> Some v
  | Types.Con ("String", _), Rtval.Str _ -> Some v
  | Types.Con ("ComplexReal64", _), Rtval.Complex _ -> Some v
  | Types.Con ("ComplexReal64", _), (Rtval.Real _ | Rtval.Int _) ->
    Some (Rtval.Complex (Rtval.as_real v, 0.0))
  | Types.Con ("Expression", _), v -> Some (Rtval.Expr (Rtval.to_expr v))
  | Types.Con ("PackedArray", [| elt; Types.Lit rank |]), Rtval.Tensor t ->
    let elt_ok =
      match Types.repr elt with
      | Types.Con ("Integer64", _) -> Tensor.is_int t
      | Types.Con ("Real64", _) -> not (Tensor.is_int t)
      | _ -> false
    in
    if elt_ok && Tensor.rank t = rank then Some v
    else if (not (Tensor.is_int t)) || rank <> Tensor.rank t then None
    else begin
      (* integer data admitted at Real element type *)
      match Types.repr elt with
      | Types.Con ("Real64", _) -> Some (Rtval.Tensor (Tensor.to_real t))
      | _ -> None
    end
  | _ -> None

let interpret_fallback t args =
  Atomic.incr t.fallbacks;
  Hooks.eval (Expr.Normal (t.cf_source, args))

let call t (args : Expr.t array) : Expr.t =
  let compiler_version, engine_version = versions in
  if t.compiler_version <> compiler_version || t.engine_version <> engine_version then
    (* stale compiled code: behave like the paper and re-evaluate uncompiled *)
    interpret_fallback t args
  else if Array.length args <> Array.length t.arg_tys then
    interpret_fallback t args
  else begin
    let unboxed = Array.map Rtval.of_expr args in
    let admitted = Array.map2 admit t.arg_tys unboxed in
    if Array.exists Option.is_none admitted then interpret_fallback t args
    else begin
      let vals = Array.map Option.get admitted in
      (* pin packed-array arguments: the interpreter still owns them, so an
         indexed update inside compiled code must copy (F5) *)
      let pinned =
        Array.to_list vals
        |> List.filter_map (function Rtval.Tensor pt -> Some pt | _ -> None)
      in
      List.iter Tensor.acquire pinned;
      let release () = List.iter Tensor.release pinned in
      match t.entry.Rtval.call vals with
      | v -> release (); Rtval.to_expr v
      | exception Errors.Runtime_error failure ->
        release ();
        if not !quiet then
          Printf.eprintf
            "CompiledCodeFunction: A compiled code runtime error occurred; \
             reverting to uncompiled evaluation: %s\n%!"
            (Errors.describe_failure failure);
        interpret_fallback t args
      | exception e -> release (); raise e
    end
  end

let call_values t args = t.entry.Rtval.call args

let kernel_closure t =
  {
    Rtval.arity = Array.length t.arg_tys;
    call =
      (fun vals ->
         (* values arrive unboxed from the evaluator; re-box minimal *)
         let admitted = Array.map2 admit t.arg_tys vals in
         if Array.exists Option.is_none admitted then
           raise (Errors.Runtime_error (Errors.Invalid_runtime_argument "signature"))
         else begin
           let vals = Array.map Option.get admitted in
           let pinned =
             Array.to_list vals
             |> List.filter_map (function Rtval.Tensor pt -> Some pt | _ -> None)
           in
           List.iter Tensor.acquire pinned;
           let release () = List.iter Tensor.release pinned in
           match t.entry.Rtval.call vals with
           | v -> release (); v
           | exception Errors.Runtime_error failure ->
             if not !quiet then
               Printf.eprintf
                 "CompiledCodeFunction: A compiled code runtime error occurred; \
                  reverting to uncompiled evaluation: %s\n%!"
                 (Errors.describe_failure failure);
             release ();
             Atomic.incr t.fallbacks;
             Rtval.of_expr
               (Hooks.eval (Expr.Normal (t.cf_source, Array.map Rtval.to_expr vals)))
           | exception e -> release (); raise e
         end);
  }
