open Wolf_base
open Wolf_wexpr
open Wolf_runtime
open Wolf_compiler

(* Boxed VM values: the fixed datatype set of the bytecode compiler. *)
type wval =
  | WNull
  | WI of int
  | WR of float
  | WB of bool
  | WC of float * float
  | WT of Tensor.t
  | WE of Expr.t   (* only produced by interpreter escapes *)

type winstr =
  | LoadArg of { dst : int; index : int; assume_real : bool }
  | ConstV of { dst : int; v : wval }
  | Move of { dst : int; src : int }
  | Op of { dst : int; op : string;
            fn : wval array -> int array -> wval;
            srcs : int array }
  | JumpIfFalse of { src : int; target : int }
  | Goto of { target : int }
  | Poll of { stride : int; mutable budget : int }
    (* strided abort poll at a loop top; [budget] is the live countdown and
       persists across calls (the instruction is the counter storage) *)
  | EvalEscape of { dst : int; expr : Expr.t; env : (Symbol.t * int) list }
  | Ret of { src : int }

type compiled_function = {
  wname : string;
  params : (Symbol.t * string) array;  (* name, declared type tag *)
  code : winstr array;
  nregs : int;
  wsource : Expr.t;
}

let resolve_op_ref : (string -> wval array -> int array -> wval) ref =
  ref (fun _ _ _ -> assert false)

(* Back-edges between real abort checks in compiled loops (strided
   polling); mirrors [Options.abort_stride] for the WIR backends. *)
let abort_stride = ref 1024

(* Memoising wrapper: the opcode-name lookup happens once per instruction,
   not once per execution; dispatchers read registers directly so no
   argument array is allocated per executed instruction. *)
let resolve_op name =
  let resolved = ref None in
  fun regs srcs ->
    match !resolved with
    | Some f -> f regs srcs
    | None ->
      let f = !resolve_op_ref name in
      resolved := Some f;
      f regs srcs

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

type cstate = {
  buf : winstr ref array ref;
  mutable len : int;
  mutable regs : int;
  env : (int, int) Hashtbl.t;        (* symbol id -> register *)
  names : (int, Symbol.t) Hashtbl.t; (* register env reverse map for escapes *)
}

let emit st i =
  if st.len >= Array.length !(st.buf) then begin
    let bigger = Array.make (max 16 (2 * Array.length !(st.buf))) (ref (Goto { target = 0 })) in
    Array.blit !(st.buf) 0 bigger 0 st.len;
    st.buf := bigger
  end;
  !(st.buf).(st.len) <- ref i;
  st.len <- st.len + 1;
  st.len - 1

let fresh_reg st =
  let r = st.regs in
  st.regs <- st.regs + 1;
  r

let supported_ops =
  [ "Plus"; "Subtract"; "Times"; "Divide"; "Power"; "Mod"; "Quotient"; "Minus";
    "Less"; "Greater"; "LessEqual"; "GreaterEqual"; "Equal"; "Unequal";
    "SameQ"; "UnsameQ"; "Not"; "Min"; "Max"; "Abs"; "Sin"; "Cos"; "Tan";
    "Exp"; "Log"; "Sqrt"; "Floor"; "Ceiling"; "Round"; "IntegerPart"; "N";
    "BitAnd"; "BitOr"; "BitXor"; "BitShiftLeft"; "BitShiftRight";
    "EvenQ"; "OddQ"; "Boole"; "Part"; "SetPart"; "Length"; "Total"; "Dot";
    "Range"; "ConstantArray"; "RandomReal"; "RandomInteger"; "Re"; "Im";
    "Complex"; "Reverse"; "Join"; "Append"; "Take" ]

let rec free_locals st e acc =
  match e with
  | Expr.Sym s -> if Hashtbl.mem st.env (Symbol.id s) then (s :: acc) else acc
  | Expr.Normal (h, args) ->
    Array.fold_left (fun acc a -> free_locals st a acc) (free_locals st h acc) args
  | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Tensor _ -> acc

(* Compile an expression into a register; returns the register. *)
let rec compile_expr st e =
  match e with
  | Expr.Int i ->
    let r = fresh_reg st in
    ignore (emit st (ConstV { dst = r; v = WI i }));
    r
  | Expr.Real x ->
    let r = fresh_reg st in
    ignore (emit st (ConstV { dst = r; v = WR x }));
    r
  | Expr.Tensor t ->
    let r = fresh_reg st in
    (* the instruction array pools this tensor across executions: hold a
       claim so SetPart's COW copies instead of mutating the constant *)
    Tensor.acquire t;
    ignore (emit st (ConstV { dst = r; v = WT t }));
    r
  | Expr.Str _ ->
    Errors.compile_errorf "Compile: strings are not supported by the bytecode compiler"
  | Expr.Big _ ->
    Errors.compile_errorf "Compile: arbitrary-precision constants are not supported"
  | Expr.Sym s ->
    if Expr.is_true e then begin
      let r = fresh_reg st in
      ignore (emit st (ConstV { dst = r; v = WB true }));
      r
    end
    else if Expr.is_false e then begin
      let r = fresh_reg st in
      ignore (emit st (ConstV { dst = r; v = WB false }));
      r
    end
    else if Symbol.equal s Expr.Sy.null then begin
      let r = fresh_reg st in
      ignore (emit st (ConstV { dst = r; v = WNull }));
      r
    end
    else begin
      match Hashtbl.find_opt st.env (Symbol.id s) with
      | Some r -> r
      | None -> escape st e
    end
  | Expr.Normal (Expr.Sym h, args) when Symbol.equal h Expr.Sy.list ->
    ignore args;
    (match Rtval.of_expr e with
     | Rtval.Tensor t ->
       let r = fresh_reg st in
       Tensor.acquire t;  (* pooled in the instruction array, see above *)
       ignore (emit st (ConstV { dst = r; v = WT t }));
       r
     | _ -> escape st e)
  | Expr.Normal (Expr.Sym h, args) -> compile_normal st h args e
  | Expr.Normal (_, _) -> escape st e

and compile_normal st h args whole =
  match Symbol.name h, args with
  | "CompoundExpression", _ ->
    let last = ref (-1) in
    Array.iter (fun a -> last := compile_expr st a) args;
    if !last < 0 then compile_expr st Expr.null else !last
  | "Set", [| Expr.Sym v; rhs |] ->
    let src = compile_expr st rhs in
    (match Hashtbl.find_opt st.env (Symbol.id v) with
     | Some r ->
       ignore (emit st (Move { dst = r; src }));
       r
     | None ->
       let r = fresh_reg st in
       Hashtbl.replace st.env (Symbol.id v) r;
       Hashtbl.replace st.names r v;
       ignore (emit st (Move { dst = r; src }));
       r)
  | "Set", [| Expr.Normal (Expr.Sym p, pargs); rhs |]
    when Symbol.equal p Expr.Sy.part && Array.length pargs >= 2 ->
    (match pargs.(0) with
     | Expr.Sym v ->
       (match Hashtbl.find_opt st.env (Symbol.id v) with
        | Some target ->
          let idxs =
            Array.map (compile_expr st) (Array.sub pargs 1 (Array.length pargs - 1))
          in
          let value = compile_expr st rhs in
          (* the updated array replaces the target register directly: no
             register-level aliasing is introduced, so copy-on-read moves
             stay out of the loop *)
          ignore
            (emit st
               (Op { dst = target; op = "SetPart"; fn = resolve_op "SetPart";
                     srcs = Array.concat [ [| target |]; idxs; [| value |] ] }));
          value
        | None -> escape st whole)
     | _ -> escape st whole)
  | "If", _ when Array.length args >= 2 && Array.length args <= 3 ->
    let cond = compile_expr st args.(0) in
    let result = fresh_reg st in
    let jmp_false = emit st (JumpIfFalse { src = cond; target = -1 }) in
    let tval = compile_expr st args.(1) in
    ignore (emit st (Move { dst = result; src = tval }));
    let jmp_end = emit st (Goto { target = -1 }) in
    let else_pc = st.len in
    (if Array.length args = 3 then begin
       let fval = compile_expr st args.(2) in
       ignore (emit st (Move { dst = result; src = fval }))
     end
     else ignore (emit st (ConstV { dst = result; v = WNull })));
    let end_pc = st.len in
    !(st.buf).(jmp_false) := JumpIfFalse { src = cond; target = else_pc };
    !(st.buf).(jmp_end) := Goto { target = end_pc };
    result
  | "While", _ when Array.length args >= 1 ->
    (* the poll at the loop top replaces the former per-back-edge abort
       check: one real check every [abort_stride] iterations *)
    let top = st.len in
    ignore (emit st (Poll { stride = !abort_stride; budget = !abort_stride }));
    let cond = compile_expr st args.(0) in
    let jmp_exit = emit st (JumpIfFalse { src = cond; target = -1 }) in
    if Array.length args = 2 then ignore (compile_expr st args.(1));
    ignore (emit st (Goto { target = top }));
    let exit_pc = st.len in
    !(st.buf).(jmp_exit) := JumpIfFalse { src = cond; target = exit_pc };
    let r = fresh_reg st in
    ignore (emit st (ConstV { dst = r; v = WNull }));
    r
  | "Function", _ ->
    Errors.compile_errorf
      "Compile: function values cannot be represented in the bytecode compiler"
  | name, _ when List.mem name supported_ops ->
    (* n-ary numeric heads fold left-to-right *)
    let srcs = Array.map (compile_expr st) args in
    if Array.length srcs > 2 && (name = "Plus" || name = "Times") then begin
      let acc = ref srcs.(0) in
      Array.iteri
        (fun i s ->
           if i > 0 then begin
             let r = fresh_reg st in
             ignore
               (emit st
                  (Op { dst = r; op = name; fn = resolve_op name; srcs = [| !acc; s |] }));
             acc := r
           end)
        srcs;
      !acc
    end
    else begin
      let r = fresh_reg st in
      ignore (emit st (Op { dst = r; op = name; fn = resolve_op name; srcs }));
      r
    end
  | _ -> escape st whole

(* Unsupported expression: evaluate with the interpreter at runtime, with
   current register values substituted for local variables (paper §2.2). *)
and escape st e =
  let locals = List.sort_uniq Symbol.compare (free_locals st e []) in
  let env = List.map (fun s -> (s, Hashtbl.find st.env (Symbol.id s))) locals in
  let r = fresh_reg st in
  ignore (emit st (EvalEscape { dst = r; expr = e; env }));
  r

let param_tag = function
  | None -> "Real"
  | Some spec ->
    (match spec with
     | Expr.Str ("MachineInteger" | "Integer" | "Integer64") -> "Integer"
     | Expr.Str ("Real" | "Real64") -> "Real"
     | Expr.Str ("Boolean" | "Bool" | "True|False") -> "Boolean"
     | Expr.Str ("Complex" | "ComplexReal64") -> "Complex"
     | Expr.Normal (Expr.Str ("PackedArray" | "Tensor"), _) -> "Tensor"
     | s ->
       Errors.compile_errorf "Compile: unsupported argument type %s" (Expr.to_string s))

let surface_spec fexpr i =
  match fexpr with
  | Expr.Normal (_, [| params; _ |]) ->
    let items =
      match params with
      | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list -> items
      | single -> [| single |]
    in
    if i < Array.length items then
      match items.(i) with
      | Expr.Normal (Expr.Sym t, [| _; spec |]) when Symbol.equal t Expr.Sy.typed ->
        Some spec
      | _ -> None
    else None
  | _ -> None

(* Bytecode verifier, run once at the end of compilation: every jump target
   in range, every register below [nregs], every poll stride positive.
   Catches malformed emission (e.g. an unpatched -1 jump placeholder) before
   the interpreter executes it blindly. *)
let verify cf =
  let len = Array.length cf.code in
  let reg r what i =
    if r < 0 || r >= cf.nregs then
      Errors.compile_errorf "WVM verifier: %s register %d out of range at pc %d" what r i
  in
  let target t i =
    if t < 0 || t >= len then
      Errors.compile_errorf "WVM verifier: jump target %d out of range at pc %d" t i
  in
  Array.iteri
    (fun i instr ->
       match instr with
       | LoadArg { dst; index; _ } ->
         reg dst "destination" i;
         if index < 0 || index >= Array.length cf.params then
           Errors.compile_errorf "WVM verifier: argument index %d out of range at pc %d"
             index i
       | ConstV { dst; _ } -> reg dst "destination" i
       | Move { dst; src } ->
         reg dst "destination" i;
         reg src "source" i
       | Op { dst; srcs; _ } ->
         reg dst "destination" i;
         Array.iter (fun s -> reg s "source" i) srcs
       | JumpIfFalse { src; target = t } ->
         reg src "source" i;
         target t i
       | Goto { target = t } -> target t i
       | Poll { stride; _ } ->
         if stride < 1 then
           Errors.compile_errorf "WVM verifier: poll stride %d < 1 at pc %d" stride i
       | EvalEscape { dst; env; _ } ->
         reg dst "destination" i;
         List.iter (fun (_, r) -> reg r "environment" i) env
       | Ret { src } -> reg src "source" i)
    cf.code

let compile ?(name = "CompiledFunction") fexpr =
  (* reuse the front end's scope flattening and desugaring *)
  let expanded = Macro.expand (Macro.builtin_env ()) fexpr in
  let analyzed = Binding.analyze_function expanded in
  let st =
    { buf = ref (Array.make 64 (ref (Goto { target = 0 })));
      len = 0; regs = 0; env = Hashtbl.create 16; names = Hashtbl.create 16 }
  in
  let params =
    Array.of_list
      (List.mapi
         (fun i (p : Binding.param) ->
            let tag =
              match p.pspec with
              | None -> "Real"
              | Some _ ->
                (* recover the original surface spec from the source *)
                param_tag (surface_spec fexpr i)
            in
            let r = fresh_reg st in
            Hashtbl.replace st.env (Symbol.id p.psym) r;
            Hashtbl.replace st.names r p.psym;
            ignore
              (emit st (LoadArg { dst = r; index = i; assume_real = tag = "Real" }));
            (p.psym, tag))
         analyzed.params)
  in
  let result = compile_expr st analyzed.body in
  ignore (emit st (Ret { src = result }));
  let cf =
    {
      wname = name;
      params;
      code = Array.map (fun r -> !r) (Array.sub !(st.buf) 0 st.len);
      nregs = st.regs;
      wsource = fexpr;
    }
  in
  verify cf;
  cf

(* ------------------------------------------------------------------ *)
(* The virtual machine                                                 *)

let wval_to_expr = function
  | WNull -> Expr.null
  | WI i -> Expr.Int i
  | WR r -> Expr.Real r
  | WB b -> Expr.bool b
  | WC (re, im) -> Expr.Normal (Expr.Sym Expr.Sy.complex, [| Expr.Real re; Expr.Real im |])
  | WT t -> Expr.Tensor t
  | WE e -> e

let wval_of_expr e =
  match Rtval.of_expr e with
  | Rtval.Unit -> WNull
  | Rtval.Int i -> WI i
  | Rtval.Real r -> WR r
  | Rtval.Bool b -> WB b
  | Rtval.Complex (re, im) -> WC (re, im)
  | Rtval.Tensor t -> WT t
  | Rtval.Str _ | Rtval.Expr _ | Rtval.Fun _ -> WE e

let to_rt = function
  | WNull -> Rtval.Unit
  | WI i -> Rtval.Int i
  | WR r -> Rtval.Real r
  | WB b -> Rtval.Bool b
  | WC (re, im) -> Rtval.Complex (re, im)
  | WT t -> Rtval.Tensor t
  | WE e -> Rtval.Expr e

let of_rt = function
  | Rtval.Unit -> WNull
  | Rtval.Int i -> WI i
  | Rtval.Real r -> WR r
  | Rtval.Bool b -> WB b
  | Rtval.Complex (re, im) -> WC (re, im)
  | Rtval.Tensor t -> WT t
  | Rtval.Str s -> WE (Expr.Str s)
  | Rtval.Expr e -> WE e
  | Rtval.Fun _ ->
    raise (Errors.Runtime_error (Errors.Invalid_runtime_argument "WVM function value"))

(* All operations dispatch through the boxed primitive library: this IS the
   bytecode interpretation overhead the paper measures.  The opcode-name
   match is resolved at compile time (real bytecode VMs dispatch on opcode
   integers); the per-call value-shape dispatch and boxing remain. *)
let op_shape_dispatch op (srcs : wval array) : wval =
  let rt = Array.map to_rt srcs in
  let prim base = of_rt (Prims.apply ~base rt) in
  match op, srcs with
  | "Plus", [| WI _; WI _ |] -> prim "checked_binary_plus"
  | "Plus", [| (WC _ | WR _ | WI _); (WC _ | WR _ | WI _) |] ->
    if Array.exists (function WC _ -> true | _ -> false) srcs
    then prim "complex_binary_plus"
    else prim "binary_plus"
  | "Plus", [| WT _; WT _ |] -> prim "array_binary_plus"
  | "Plus", [| WT _; _ |] -> prim "array_scalar_plus"
  | "Subtract", [| WI _; WI _ |] -> prim "checked_binary_subtract"
  | "Subtract", _ when Array.exists (function WC _ -> true | _ -> false) srcs ->
    prim "complex_binary_subtract"
  | "Subtract", [| WT _; WT _ |] -> prim "array_binary_subtract"
  | "Subtract", _ -> prim "binary_subtract"
  | "Times", [| WI _; WI _ |] -> prim "checked_binary_times"
  | "Times", _ when Array.exists (function WC _ -> true | _ -> false) srcs ->
    prim "complex_binary_times"
  | "Times", [| WT _; WT _ |] -> prim "array_binary_times"
  | "Times", [| WT _; _ |] -> prim "array_scalar_times"
  | "Times", _ -> prim "binary_times"
  | "Plus", _ -> prim "binary_plus"
  | "Divide", _ when Array.exists (function WC _ -> true | _ -> false) srcs ->
    prim "complex_binary_divide"
  | "Divide", _ -> prim "binary_divide"
  | "Minus", [| WI _ |] -> prim "checked_unary_minus"
  | "Minus", _ -> prim "unary_minus"
  | "Power", [| WI _; WI _ |] -> prim "checked_binary_power"
  | "Power", [| WR _; WI _ |] -> prim "binary_power_ri"
  | "Power", [| WC _; WI _ |] -> prim "complex_binary_power"
  | "Power", _ -> prim "binary_power"
  | "Mod", _ -> prim "checked_binary_mod"
  | "Quotient", _ -> prim "checked_binary_quotient"
  | "Less", _ -> prim "binary_less"
  | "Greater", _ -> prim "binary_greater"
  | "LessEqual", _ -> prim "binary_less_equal"
  | "GreaterEqual", _ -> prim "binary_greater_equal"
  | ("Equal" | "SameQ"), _ -> prim "binary_equal"
  | ("Unequal" | "UnsameQ"), _ -> prim "binary_unequal"
  | "Not", _ -> prim "unary_not"
  | "Min", _ -> prim "binary_min"
  | "Max", _ -> prim "binary_max"
  | "Abs", [| WI _ |] -> prim "checked_unary_abs"
  | "Abs", [| WC _ |] -> prim "complex_abs"
  | "Abs", _ -> prim "unary_abs"
  | "Sin", _ -> prim "unary_sin"
  | "Cos", _ -> prim "unary_cos"
  | "Tan", _ -> prim "unary_tan"
  | "Exp", _ -> prim "unary_exp"
  | "Log", _ -> prim "unary_log"
  | "Sqrt", _ -> prim "unary_sqrt"
  | "Floor", [| WI _ |] -> srcs.(0)
  | "Floor", _ -> prim "unary_floor"
  | "Ceiling", [| WI _ |] -> srcs.(0)
  | "Ceiling", _ -> prim "unary_ceiling"
  | "Round", [| WI _ |] -> srcs.(0)
  | "Round", _ -> prim "unary_round"
  | "IntegerPart", _ -> prim "unary_truncate"
  | "N", [| WI _ |] -> prim "int_to_real"
  | "N", _ -> srcs.(0)
  | "BitAnd", _ -> prim "binary_bitand"
  | "BitOr", _ -> prim "binary_bitor"
  | "BitXor", _ -> prim "binary_bitxor"
  | "BitShiftLeft", _ -> prim "binary_shiftleft"
  | "BitShiftRight", _ -> prim "binary_shiftright"
  | "EvenQ", _ -> prim "unary_evenq"
  | "OddQ", _ -> prim "unary_oddq"
  | "Boole", _ -> prim "unary_boole"
  | "Re", [| WC _ |] -> prim "complex_re"
  | "Re", _ -> srcs.(0)
  | "Im", [| WC _ |] -> prim "complex_im"
  | "Im", [| WI _ |] -> WI 0
  | "Im", _ -> WR 0.0
  | "Complex", _ -> prim "complex_make"
  | "Part", [| WT t; WI _ |] when Tensor.rank t > 1 -> prim "part_get_row"
  | "Part", [| WT _; WI _ |] -> prim "part_get_1"
  | "Part", [| WT _; WI _; WI _ |] -> prim "part_get_2"
  | "SetPart", [| WT _; WI _; _ |] -> prim "part_set_1"
  | "SetPart", [| WT _; WI _; WI _; _ |] -> prim "part_set_2"
  | "Length", _ -> prim "array_length"
  | "Total", _ -> prim "array_total"
  | "Dot", [| WT a; WT b |] ->
    if Tensor.rank a = 1 && Tensor.rank b = 1 then prim "dot_vv" else prim "dot_mm"
  | "Range", [| WI _ |] -> prim "range"
  | "Range", [| WI _; WI _ |] -> prim "range2"
  | "ConstantArray", [| WI _; WI _ |] -> prim "constant_array_int"
  | "ConstantArray", [| WR _; WI _ |] -> prim "constant_array_real"
  | "ConstantArray", [| WI _; WI _; WI _ |] -> prim "constant_array_int2"
  | "ConstantArray", [| WR _; WI _; WI _ |] -> prim "constant_array_real2"
  | "RandomReal", [||] -> prim "random_real"
  | "RandomReal", [| WT _ |] -> prim "random_real_range"
  | "RandomInteger", [| WI _ |] -> prim "random_integer"
  | "Reverse", _ -> prim "array_reverse"
  | "Join", _ -> prim "array_join"
  | "Append", _ -> prim "array_append"
  | "Take", _ -> prim "array_take"
  | _ ->
    raise
      (Errors.Runtime_error
         (Errors.Invalid_runtime_argument (Printf.sprintf "WVM op %s" op)))

(* Hot opcodes get dedicated dispatchers (value-shape match + boxing only);
   everything else falls back to the generic shape dispatch. *)
let () =
  let fallthrough name regs (srcs : int array) =
    op_shape_dispatch name (Array.map (fun s -> regs.(s)) srcs)
  in
  let num2 name fi fr regs (srcs : int array) =
    match regs.(srcs.(0)), regs.(srcs.(1)) with
    | WI a, WI b -> WI (fi a b)
    | WR a, WR b -> WR (fr a b)
    | WI a, WR b -> WR (fr (float_of_int a) b)
    | WR a, WI b -> WR (fr a (float_of_int b))
    | _ -> fallthrough name regs srcs
  in
  let cmp2 name (ci : int -> int -> bool) (cr : float -> float -> bool) regs srcs =
    match regs.(srcs.(0)), regs.(srcs.(1)) with
    | WI a, WI b -> WB (ci a b)
    | WR a, WR b -> WB (cr a b)
    | WI a, WR b -> WB (cr (float_of_int a) b)
    | WR a, WI b -> WB (cr a (float_of_int b))
    | _ -> fallthrough name regs srcs
  in
  let int2 name f regs srcs =
    match regs.(srcs.(0)), regs.(srcs.(1)) with
    | WI a, WI b -> WI (f a b)
    | _ -> fallthrough name regs srcs
  in
  let set_elt t j v =
    match v with
    | WI x ->
      if Tensor.is_int t then Tensor.set_int t j x else Tensor.set_real t j (float_of_int x)
    | WR x -> Tensor.set_real t j x
    | _ -> raise (Errors.Runtime_error (Errors.Invalid_runtime_argument "SetPart"))
  in
  let flat2 t i k =
    let dims = Tensor.dims t in
    let j1 = if i < 0 then dims.(0) + i else i - 1 in
    let j2 = if k < 0 then dims.(1) + k else k - 1 in
    if i = 0 || j1 < 0 || j1 >= dims.(0) then
      raise (Errors.Runtime_error (Errors.Part_out_of_range (i, dims.(0))));
    if k = 0 || j2 < 0 || j2 >= dims.(1) then
      raise (Errors.Runtime_error (Errors.Part_out_of_range (k, dims.(1))));
    (j1 * dims.(1)) + j2
  in
  let dispatch = function
    | "Plus" -> num2 "Plus" Checked.add ( +. )
    | "Subtract" -> num2 "Subtract" Checked.sub ( -. )
    | "Times" -> num2 "Times" Checked.mul ( *. )
    | "Mod" -> int2 "Mod" Checked.modulo
    | "Quotient" -> int2 "Quotient" Checked.quotient
    | "BitAnd" -> int2 "BitAnd" ( land )
    | "BitOr" -> int2 "BitOr" ( lor )
    | "BitXor" -> int2 "BitXor" ( lxor )
    | "Divide" ->
      (fun regs srcs ->
         match regs.(srcs.(0)), regs.(srcs.(1)) with
         | WR a, WR b when b <> 0.0 -> WR (a /. b)
         | _ -> fallthrough "Divide" regs srcs)
    | "Less" -> cmp2 "Less" ( < ) ( < )
    | "Greater" -> cmp2 "Greater" ( > ) ( > )
    | "LessEqual" -> cmp2 "LessEqual" ( <= ) ( <= )
    | "GreaterEqual" -> cmp2 "GreaterEqual" ( >= ) ( >= )
    | "Equal" -> cmp2 "Equal" ( = ) ( = )
    | "Unequal" -> cmp2 "Unequal" ( <> ) ( <> )
    | "Part" ->
      (fun regs srcs ->
         match Array.length srcs with
         | 2 ->
           (match regs.(srcs.(0)), regs.(srcs.(1)) with
            | WT t, WI i when Tensor.rank t = 1 ->
              let j = Tensor.normalize_index t i in
              if Tensor.is_int t then WI (Tensor.get_int t j) else WR (Tensor.get_real t j)
            | _ -> fallthrough "Part" regs srcs)
         | 3 ->
           (match regs.(srcs.(0)), regs.(srcs.(1)), regs.(srcs.(2)) with
            | WT t, WI i, WI k when Tensor.rank t = 2 ->
              let j = flat2 t i k in
              if Tensor.is_int t then WI (Tensor.get_int t j) else WR (Tensor.get_real t j)
            | _ -> fallthrough "Part" regs srcs)
         | _ -> fallthrough "Part" regs srcs)
    | "SetPart" ->
      (fun regs srcs ->
         match Array.length srcs with
         | 3 ->
           (match regs.(srcs.(0)), regs.(srcs.(1)) with
            | WT t, WI i when Tensor.rank t = 1 ->
              let t = Tensor.ensure_unique t in
              set_elt t (Tensor.normalize_index t i) regs.(srcs.(2));
              WT t
            | _ -> fallthrough "SetPart" regs srcs)
         | 4 ->
           (match regs.(srcs.(0)), regs.(srcs.(1)), regs.(srcs.(2)) with
            | WT t, WI i, WI k when Tensor.rank t = 2 ->
              let t = Tensor.ensure_unique t in
              set_elt t (flat2 t i k) regs.(srcs.(3));
              WT t
            | _ -> fallthrough "SetPart" regs srcs)
         | _ -> fallthrough "SetPart" regs srcs)
    | "Length" ->
      (fun regs srcs ->
         match regs.(srcs.(0)) with
         | WT t -> WI (Tensor.dims t).(0)
         | _ -> fallthrough "Length" regs srcs)
    | "Sin" ->
      (fun regs srcs ->
         match regs.(srcs.(0)) with WR x -> WR (sin x) | _ -> fallthrough "Sin" regs srcs)
    | "Cos" ->
      (fun regs srcs ->
         match regs.(srcs.(0)) with WR x -> WR (cos x) | _ -> fallthrough "Cos" regs srcs)
    | "Min" -> num2 "Min" min Float.min
    | "Max" -> num2 "Max" max Float.max
    | other -> fallthrough other
  in
  resolve_op_ref := dispatch

let truthy = function
  | WB b -> b
  | WE e -> Expr.is_true e
  | _ -> raise (Errors.Runtime_error (Errors.Invalid_runtime_argument "WVM condition"))

(* Copy-on-read: a register-to-register move of a tensor copies it (paper
   §2.2: "the bytecode compiler performs copying on read", and "too much
   copying can be a major performance limiting factor").  Indexed updates
   write their result register directly, so loops do not pay this per
   element. *)
let read_for_move = function
  | WT t -> WT (Tensor.copy t)
  | v -> v

let call_values cf (args : Rtval.t array) : Rtval.t =
  if Array.length args <> Array.length cf.params then
    raise (Errors.Runtime_error (Errors.Invalid_runtime_argument "WVM arity"));
  let regs = Array.make (max cf.nregs 1) WNull in
  let pc = ref 0 in
  let result = ref WNull in
  let running = ref true in
  let code = cf.code in
  while !running do
    (match code.(!pc) with
     | LoadArg { dst; index; assume_real } ->
       let v = of_rt args.(index) in
       regs.(dst) <-
         (match v, assume_real with
          | WI i, true -> WR (float_of_int i)  (* untyped arguments assume Real *)
          | WT t, _ -> WT (Tensor.copy t)      (* copy-on-read at entry *)
          | v, _ -> v);
       incr pc
     | ConstV { dst; v } ->
       regs.(dst) <- (match v with WT t -> WT (Tensor.copy t) | v -> v);
       incr pc
     | Move { dst; src } ->
       regs.(dst) <- read_for_move regs.(src);
       incr pc
     | Op { dst; fn; srcs; _ } ->
       regs.(dst) <- fn regs srcs;
       incr pc
     | JumpIfFalse { src; target } ->
       if truthy regs.(src) then incr pc else pc := target
     | Goto { target } -> pc := target
     | Poll p ->
       p.budget <- p.budget - 1;
       if p.budget <= 0 then begin
         p.budget <- p.stride;
         Abort_signal.check ()
       end;
       incr pc
     | EvalEscape { dst; expr; env } ->
       let bindings =
         List.map (fun (s, r) -> (s, wval_to_expr regs.(r))) env
       in
       let substituted = Pattern.substitute bindings expr in
       regs.(dst) <- wval_of_expr (Hooks.eval substituted);
       incr pc
     | Ret { src } ->
       result := regs.(src);
       running := false)
  done;
  to_rt !result

let call cf (args : Expr.t array) : Expr.t =
  match call_values cf (Array.map Rtval.of_expr args) with
  | v -> Rtval.to_expr v
  | exception Errors.Runtime_error _ ->
    (* soft failure: revert to the interpreter (F2) *)
    Hooks.eval (Expr.Normal (cf.wsource, args))

(* ------------------------------------------------------------------ *)
(* Image serialization (the persistent compile cache stores WVM images).

   [winstr] is not marshalable as-is: [Op.fn] is a closure.  It is,
   however, a pure function of the opcode name, so images are written
   through a data-only twin of the instruction set and [fn] is rebuilt
   with [resolve_op] on load.  Symbols marshal as dead copies (equality
   is physical), so parameter/escape-environment symbols travel by name
   and every embedded expression is re-interned on load.  [Poll.budget]
   is live countdown state and restarts at [stride]. *)

type sinstr =
  | SLoadArg of int * int * bool
  | SConstV of int * wval
  | SMove of int * int
  | SOp of int * string * int array
  | SJumpIfFalse of int * int
  | SGoto of int
  | SPoll of int
  | SEvalEscape of int * Expr.t * (string * int) list
  | SRet of int

type simage = {
  s_version : int;
  s_name : string;
  s_params : (string * string) array;
  s_code : sinstr array;
  s_nregs : int;
  s_source : Expr.t;
}

let image_version = 1

let serialize cf =
  let instr_out = function
    | LoadArg { dst; index; assume_real } -> SLoadArg (dst, index, assume_real)
    | ConstV { dst; v } -> SConstV (dst, v)
    | Move { dst; src } -> SMove (dst, src)
    | Op { dst; op; srcs; _ } -> SOp (dst, op, srcs)
    | JumpIfFalse { src; target } -> SJumpIfFalse (src, target)
    | Goto { target } -> SGoto target
    | Poll { stride; _ } -> SPoll stride
    | EvalEscape { dst; expr; env } ->
      SEvalEscape (dst, expr, List.map (fun (s, r) -> (Symbol.name s, r)) env)
    | Ret { src } -> SRet src
  in
  let img =
    { s_version = image_version; s_name = cf.wname;
      s_params = Array.map (fun (s, tag) -> (Symbol.name s, tag)) cf.params;
      s_code = Array.map instr_out cf.code; s_nregs = cf.nregs;
      s_source = cf.wsource }
  in
  Marshal.to_string img []

let deserialize data =
  match (Marshal.from_string data 0 : simage) with
  | exception _ -> None
  | img ->
    if img.s_version <> image_version then None
    else begin
      let reintern_wval = function
        | WE e -> WE (Expr.reintern e)
        | v -> v
      in
      let instr_in = function
        | SLoadArg (dst, index, assume_real) -> LoadArg { dst; index; assume_real }
        | SConstV (dst, v) -> ConstV { dst; v = reintern_wval v }
        | SMove (dst, src) -> Move { dst; src }
        | SOp (dst, op, srcs) -> Op { dst; op; fn = resolve_op op; srcs }
        | SJumpIfFalse (src, target) -> JumpIfFalse { src; target }
        | SGoto target -> Goto { target }
        | SPoll stride -> Poll { stride; budget = stride }
        | SEvalEscape (dst, expr, env) ->
          EvalEscape
            { dst; expr = Expr.reintern expr;
              env = List.map (fun (n, r) -> (Symbol.intern n, r)) env }
        | SRet src -> Ret { src }
      in
      let cf =
        { wname = img.s_name;
          params =
            Array.map (fun (n, tag) -> (Symbol.intern n, tag)) img.s_params;
          code = Array.map instr_in img.s_code; nregs = img.s_nregs;
          wsource = Expr.reintern img.s_source }
      in
      match verify cf with () -> Some cf | exception _ -> None
    end

let arity cf = Array.length cf.params
let instruction_count cf = Array.length cf.code

let dump cf =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "CompiledFunction[{11, 12, 5468}, {%s},\n"
       (String.concat ", "
          (Array.to_list (Array.map (fun (_, tag) -> "_" ^ tag) cf.params))));
  Array.iteri
    (fun i instr ->
       let text =
         match instr with
         | LoadArg { dst; index; _ } -> Printf.sprintf "{3, %d, %d} (* LoadArg *)" index dst
         | ConstV { dst; _ } -> Printf.sprintf "{4, _, %d} (* Const *)" dst
         | Move { dst; src } -> Printf.sprintf "{5, %d, %d} (* Move *)" src dst
         | Op { dst; op; srcs; _ } ->
           Printf.sprintf "{40, %s, %s, %d} (* %s Op *)" op
             (String.concat ", " (Array.to_list (Array.map string_of_int srcs)))
             dst op
         | JumpIfFalse { src; target } ->
           Printf.sprintf "{30, %d, %d} (* JumpIfFalse *)" src target
         | Goto { target } -> Printf.sprintf "{31, %d} (* Goto *)" target
         | Poll { stride; _ } -> Printf.sprintf "{32, %d} (* Poll *)" stride
         | EvalEscape { dst; _ } -> Printf.sprintf "{90, %d} (* EvalExpr *)" dst
         | Ret { src } -> Printf.sprintf "{1, %d} (* Return *)" src
       in
       Buffer.add_string b (Printf.sprintf "  %3d | %s\n" i text))
    cf.code;
  Buffer.add_string b
    (Printf.sprintf "  %s, Evaluate]\n" (Form.input_form cf.wsource));
  Buffer.contents b
