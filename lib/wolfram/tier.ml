(* Tiered adaptive execution: tier 0 is the interpreter, tier 1 a -O2
   compiled closure produced on a background domain and hot-swapped in.

   A tiered function starts life as a thunk over [Hooks.eval] — creating
   one costs a hashtable insert, so time-to-first-result is the
   interpreter's.  Every tier-0 call contributes heat: one unit per
   invocation plus a loop-backedge estimate read from the abort-poll
   delta ([Abort_signal.checks_performed] — the interpreter polls once
   per loop iteration, so the per-domain poll counter is a backedge
   counter we already pay for).  Crossing the threshold submits one
   compile job to a shared single-worker executor; the caller never
   blocks on it.

   Publication protocol: the callable is an [Atomic.t] closure slot.
   Callers read the slot exactly once per call, so an in-flight tier-0
   activation finishes on the code it started with while the next call
   picks up the compiled closure — no pause, no lock on the call path.
   The state word ([Cold | Queued | Promoted | Failed]) is advisory
   bookkeeping: correctness needs only the slot swap, which is a single
   atomic store.  A compile killed by a stray in-flight Abort[] resets to
   [Cold] (heat re-accumulates and promotion retries); any other compile
   failure parks the function at [Failed], interpreting forever. *)

open Wolf_base

type state = Cold | Queued | Promoted | Failed

type t = {
  tr_name : string;
  tr_source : Wolf_wexpr.Expr.t;
  tr_arity : int;
  tr_threshold : int;
  slot : (Wolf_wexpr.Expr.t array -> Wolf_wexpr.Expr.t) Atomic.t;
  st : int Atomic.t;
  calls : int Atomic.t;
  backedges : int Atomic.t;
  promoted_at : int Atomic.t;    (* calls completed when the swap landed *)
  promote : unit -> Wolf_wexpr.Expr.t array -> Wolf_wexpr.Expr.t;
}

let st_cold = 0
let st_queued = 1
let st_promoted = 2
let st_failed = 3

let state_of_int = function
  | 0 -> Cold
  | 1 -> Queued
  | 2 -> Promoted
  | _ -> Failed

let state_name = function
  | Cold -> "cold"
  | Queued -> "queued"
  | Promoted -> "promoted"
  | Failed -> "failed"

(* one loop iteration ~ one abort poll; weight backedges so a single call
   spinning a long loop promotes about as fast as many short calls *)
let backedge_weight = 64

let default_threshold = Atomic.make 12

(* ------------------------------------------------------------------ *)
(* The shared background compile pool: one worker domain, created on the
   first promotion request (a plain wolfc run with tiering off must not
   spawn domains).  Not Lazy.t — concurrent forcing of a lazy raises. *)

let exec_lock = Mutex.create ()
let exec_ref : Wolf_parallel.Executor.t option ref = ref None
let exec_jobs = Atomic.make 1

let set_jobs n = Atomic.set exec_jobs (max 1 n)

let executor () =
  Mutex.lock exec_lock;
  let e =
    match !exec_ref with
    | Some e -> e
    | None ->
      let e =
        Wolf_parallel.Executor.create ~capacity:256 ~jobs:(Atomic.get exec_jobs) ()
      in
      Wolf_parallel.Executor.register_metrics ~name:"tier" e;
      exec_ref := Some e;
      e
  in
  Mutex.unlock exec_lock;
  e

let executor_stats () =
  Mutex.lock exec_lock;
  let r = Option.map Wolf_parallel.Executor.stats !exec_ref in
  Mutex.unlock exec_lock;
  r

let drain () =
  Mutex.lock exec_lock;
  let e = !exec_ref in
  Mutex.unlock exec_lock;
  Option.iter Wolf_parallel.Executor.quiesce e

let shutdown () =
  Mutex.lock exec_lock;
  let e = !exec_ref in
  exec_ref := None;
  Mutex.unlock exec_lock;
  Option.iter Wolf_parallel.Executor.shutdown e

(* ------------------------------------------------------------------ *)

let m_promotions () =
  Wolf_obs.Metrics.counter ~help:"tier-1 promotions landed" "tier_promotions"

let m_failures () =
  Wolf_obs.Metrics.counter ~help:"background promotions that failed" "tier_promotion_failures"

let m_seconds () =
  Wolf_obs.Metrics.histogram ~help:"background -O2 promotion latency" "tier_promotion_seconds"

let create ?threshold ~name ~source ~promote () =
  let arity =
    match source with
    | Wolf_wexpr.Expr.Normal (_, [| params; _ |]) ->
      (match params with
       | Wolf_wexpr.Expr.Normal (Wolf_wexpr.Expr.Sym l, items)
         when Wolf_wexpr.Symbol.equal l Wolf_wexpr.Expr.Sy.list ->
         Array.length items
       | _ -> 1)
    | _ -> 0
  in
  let tier0 args =
    Wolf_runtime.Hooks.eval (Wolf_wexpr.Expr.Normal (source, args))
  in
  { tr_name = name; tr_source = source; tr_arity = arity;
    tr_threshold =
      max 1 (Option.value ~default:(Atomic.get default_threshold) threshold);
    slot = Atomic.make tier0; st = Atomic.make st_cold;
    calls = Atomic.make 0; backedges = Atomic.make 0;
    promoted_at = Atomic.make (-1); promote }

let promote_now t =
  (* runs on the background worker (or inline from [force_promote]); must
     not leak any exception — a failed promotion only deoptimises *)
  let t0 = Unix.gettimeofday () in
  match
    Wolf_obs.Trace.with_span ~cat:"tier" "tier-promote"
      ~args:(("function", Wolf_obs.Trace.arg_str t.tr_name)
             :: Wolf_obs.Request_ctx.args_of_current ())
      t.promote
  with
  | fn ->
    (* order matters only loosely: the slot swap is the publication; the
       state/stat stores after it are bookkeeping for observers *)
    Atomic.set t.slot fn;
    Atomic.set t.promoted_at (Atomic.get t.calls);
    Atomic.set t.st st_promoted;
    Wolf_obs.Metrics.incr (m_promotions ());
    Wolf_obs.Metrics.observe (m_seconds ()) (Unix.gettimeofday () -. t0)
  | exception Abort_signal.Aborted ->
    (* a program Abort[] raced the compile's kernel escapes: not the
       function's fault — cool down and let heat requeue it *)
    Wolf_obs.Metrics.incr (m_failures ());
    Atomic.set t.st st_cold
  | exception _ ->
    Wolf_obs.Metrics.incr (m_failures ());
    Atomic.set t.st st_failed

let enqueue t =
  if Atomic.compare_and_set t.st st_cold st_queued then begin
    match Wolf_parallel.Executor.submit (executor ()) (fun () -> promote_now t) with
    | `Accepted -> ()
    | `Saturated ->
      (* queue full: uncommit and let a later call retry *)
      Atomic.set t.st st_cold
    | `Stopped -> Atomic.set t.st st_failed
  end

let heat t = Atomic.get t.calls + (Atomic.get t.backedges / backedge_weight)

let call t args =
  let fn = Atomic.get t.slot in
  if Atomic.get t.st >= st_promoted then fn args
  else begin
    let polls0 = Abort_signal.checks_performed () in
    let account () =
      let polls = Abort_signal.checks_performed () - polls0 in
      if polls > 0 then ignore (Atomic.fetch_and_add t.backedges polls);
      ignore (Atomic.fetch_and_add t.calls 1);
      if heat t >= t.tr_threshold then enqueue t
    in
    (* heat counts even when the call aborts: the function is still hot *)
    Fun.protect ~finally:account (fun () -> fn args)
  end

let state t = state_of_int (Atomic.get t.st)
let calls t = Atomic.get t.calls
let backedges t = Atomic.get t.backedges
let promoted_at t =
  match Atomic.get t.promoted_at with -1 -> None | n -> Some n
let name t = t.tr_name
let source t = t.tr_source
let arity t = t.tr_arity
let threshold t = t.tr_threshold

let await_promotion ?(timeout = 30.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    let s = Atomic.get t.st in
    if s = st_promoted || s = st_failed then state_of_int s
    else if Unix.gettimeofday () > deadline then state_of_int s
    else begin
      Unix.sleepf 0.002;
      wait ()
    end
  in
  wait ()

let force_promote t =
  (* tests and `wolfc run --tier` teardown: make the outcome deterministic *)
  if Atomic.compare_and_set t.st st_cold st_queued then promote_now t;
  (match Atomic.get t.st with
   | s when s = st_queued -> ignore (await_promotion t)
   | _ -> ());
  state t
