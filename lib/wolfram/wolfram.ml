open Wolf_wexpr
open Wolf_compiler
open Wolf_backends

type target =
  | Jit
  | Threaded
  | Bytecode

type compiled =
  | Native of Compiled_function.t
  | Wvm of Wvm.compiled_function

(* The auto-compilation service used by numerical solvers (paper §1 / E4):
   compile a scalar real expression in one free variable into float -> float.
   The threaded backend keeps auto-compilation latency small, like the
   bytecode compiler the engine historically used for this. *)
let auto_compile_cache : (string, (float -> float) option) Hashtbl.t = Hashtbl.create 32
let auto_compile_lock = Mutex.create ()

let rec auto_compile_scalar expr sym =
  let key = Expr.to_string expr ^ "|" ^ Symbol.name sym in
  let cached =
    Mutex.lock auto_compile_lock;
    let r = Hashtbl.find_opt auto_compile_cache key in
    Mutex.unlock auto_compile_lock;
    r
  in
  match cached with
  | Some cached -> cached
  | None ->
    (* compiled outside the lock; a concurrent duplicate compile of the same
       scalar is harmless (last writer wins, results are interchangeable) *)
    let result = auto_compile_scalar_uncached expr sym in
    Mutex.lock auto_compile_lock;
    Hashtbl.replace auto_compile_cache key result;
    Mutex.unlock auto_compile_lock;
    result

and auto_compile_scalar_uncached expr sym =
  let fexpr =
    Expr.normal (Expr.Sym Expr.Sy.function_)
      [ Expr.list
          [ Expr.normal (Expr.Sym Expr.Sy.typed) [ Expr.Sym sym; Expr.Str "Real64" ] ];
        expr ]
  in
  match
    Pipeline.compile
      ~options:{ Options.default with abort_handling = false; lint = false }
      ~name:"autocompiled" fexpr
  with
  | c ->
    let f = Native.compile c in
    Some
      (fun (x : float) ->
         match f.Wolf_runtime.Rtval.call [| Wolf_runtime.Rtval.Real x |] with
         | Wolf_runtime.Rtval.Real r -> r
         | Wolf_runtime.Rtval.Int i -> float_of_int i
         | _ -> raise (Wolf_base.Errors.Eval_error "autocompile: non-numeric"))
  | exception _ -> None

(* once-only init, race-free: the first caller wins, concurrent callers wait
   until installation has finished rather than observing a half-built kernel *)
let initialized = Atomic.make false
let init_lock = Mutex.create ()

let init () =
  if not (Atomic.get initialized) then begin
    Mutex.lock init_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock init_lock) (fun () ->
        if not (Atomic.get initialized) then begin
          Wolf_kernel.Session.init ();
          Wolf_runtime.Hooks.auto_compile_scalar := auto_compile_scalar;
          Atomic.set initialized true
        end)
  end

let pipelines : (string, Pipeline.compiled) Hashtbl.t = Hashtbl.create 16
let pipelines_lock = Mutex.create ()

let pipelines_put name c =
  Mutex.lock pipelines_lock;
  Hashtbl.replace pipelines name c;
  Mutex.unlock pipelines_lock

let pipelines_get name =
  Mutex.lock pipelines_lock;
  let r = Hashtbl.find_opt pipelines name in
  Mutex.unlock pipelines_lock;
  r

(* The content-addressed compile cache (DESIGN.md "Pass manager & compile
   cache"): repeated Compile/run calls on identical (source, options,
   target, name) are near-free.  Only the plain path is cached — a custom
   type/macro environment or user passes can change the result in ways the
   key cannot see. *)
(* Occupancy estimate for the metrics registry: the words reachable from a
   cached closure (compiled code, captured IR, constants).  Only paid once
   per insert, against a multi-millisecond compile. *)
let weigh_compiled (c : compiled) = 8 * Obj.reachable_words (Obj.repr c)

let compile_cache : compiled Compile_cache.t =
  Compile_cache.create ~capacity:256 ~weigh:weigh_compiled ()

let () = Compile_cache.register_metrics ~prefix:"compile_cache" compile_cache
let () = Wolf_obs.Profile.register_metrics ()

let compile_cache_stats () = Compile_cache.stats compile_cache
let compile_cache_clear () = Compile_cache.clear compile_cache

let target_name = function
  | Jit -> "jit"
  | Threaded -> "threaded"
  | Bytecode -> "bytecode"

let function_compile ?options ?type_env ?macro_env ?user_passes
    ?(target = Jit) ?(name = "Main") fexpr =
  init ();
  let opts = Option.value ~default:Options.default options in
  let build () =
    Wolf_obs.Trace.with_span ~cat:"compile" "function-compile"
      ~args:[ ("name", Wolf_obs.Trace.arg_str name);
              ("target", Wolf_obs.Trace.arg_str (target_name target)) ]
    @@ fun () ->
    match target with
    | Bytecode -> Wvm (Wvm.compile ~name fexpr)
    | Jit | Threaded ->
      let c = Pipeline.compile ~options:opts ?type_env ?macro_env ?user_passes ~name fexpr in
      let closure =
        match target with
        | Jit when not opts.Options.profile ->
          (match Jit.compile c with
           | Ok f -> f
           | Error _ -> Native.compile c)
        | Jit | Threaded | Bytecode ->
          (* profiling instruments per function, which only the threaded
             backend's closure tree supports — a profiled jit request runs
             threaded so the hot-function table is per-function, not one
             opaque entry *)
          Native.compile c
      in
      let main = Wir.main c.Pipeline.program in
      let arg_tys =
        Array.map
          (fun (v : Wir.var) -> Option.value ~default:Types.expression v.Wir.vty)
          main.Wir.fparams
      in
      let ret_ty = Option.value ~default:Types.expression main.Wir.ret_ty in
      let wrapped =
        Compiled_function.wrap ~name ~source:fexpr ~arg_tys ~ret_ty closure
      in
      (* keep the pipeline result reachable for tooling *)
      pipelines_put wrapped.Compiled_function.cf_name c;
      Native wrapped
  in
  let cacheable =
    opts.Options.use_cache && Option.is_none type_env && Option.is_none macro_env
    && (match user_passes with None | Some [] -> true | Some _ -> false)
  in
  if not cacheable then build ()
  else
    let key =
      Compile_cache.key ~source:fexpr ~options:opts
        ~target:(target_name target ^ ":" ^ name)
    in
    (* per-key in-flight dedup: two domains compiling the same source see
       one compile; the second blocks briefly and shares the result *)
    Compile_cache.find_or_compute compile_cache key ~build

let function_compile_src ?options ?target ?name src =
  function_compile ?options ?target ?name (Parser.parse src)

let call cf args =
  init ();
  match cf with
  | Native t -> Compiled_function.call t (Array.of_list args)
  | Wvm w -> Wvm.call w (Array.of_list args)

let call_values cf args =
  match cf with
  | Native t -> Compiled_function.call_values t (Array.of_list args)
  | Wvm w -> Wvm.call_values w (Array.of_list args)

let install name cf =
  init ();
  let sym = Symbol.intern name in
  match cf with
  | Native t ->
    Wolf_kernel.Values.set_compiled_value sym (Compiled_function.kernel_closure t)
  | Wvm w ->
    Wolf_kernel.Values.set_compiled_value sym
      { Wolf_runtime.Rtval.arity = Wvm.arity w;
        call = (fun vals -> Wvm.call_values w vals) }

let interpret src =
  init ();
  Wolf_kernel.Session.run src

let interpret_expr e =
  init ();
  Wolf_kernel.Session.eval e

let compile_to_ast ?options src =
  Mexpr.to_string (Pipeline.compile_to_ast ?options (Parser.parse src))

let compile_to_ir ?options ?(optimize = true) ?(name = "Main") src =
  let fexpr = Parser.parse src in
  if optimize then begin
    let c = Pipeline.compile ?options ~name fexpr in
    Wir_print.program_to_string c.Pipeline.program
  end
  else
    Wir_print.program_to_string (Pipeline.compile_to_wir ?options ~name fexpr)

let export_string ?options ?(name = "Main") ~format src =
  init ();
  let c = Pipeline.compile ?options ~name (Parser.parse src) in
  match format with
  | `C ->
    (match C_emit.emit c with
     | Ok e -> Ok e.C_emit.source
     | Error _ as e -> e)
  | `OCaml -> Ok (Ocaml_emit.emit ~module_name:"Exported" c).Ocaml_emit.source

let export_library ?options ?(name = "Main") ~path src =
  init ();
  let c = Pipeline.compile ?options ~name (Parser.parse src) in
  Jit.export_library c ~path

let pipeline_of = function
  | Native t -> pipelines_get t.Compiled_function.cf_name
  | Wvm _ -> None

let fallback_count = function
  | Native t -> Atomic.get t.Compiled_function.fallbacks
  | Wvm _ -> 0
