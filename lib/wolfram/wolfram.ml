open Wolf_wexpr
open Wolf_compiler
open Wolf_backends

type target =
  | Jit
  | Threaded
  | Bytecode
  | Tier

type compiled =
  | Native of Compiled_function.t
  | Wvm of Wvm.compiled_function
  | Tiered of Tier.t

module Tier = Tier

(* The auto-compilation service used by numerical solvers (paper §1 / E4):
   compile a scalar real expression in one free variable into float -> float.
   The threaded backend keeps auto-compilation latency small, like the
   bytecode compiler the engine historically used for this. *)
let auto_compile_cache : (string, (float -> float) option) Hashtbl.t = Hashtbl.create 32
let auto_compile_lock = Mutex.create ()

let rec auto_compile_scalar expr sym =
  let key = Expr.to_string expr ^ "|" ^ Symbol.name sym in
  let cached =
    Mutex.lock auto_compile_lock;
    let r = Hashtbl.find_opt auto_compile_cache key in
    Mutex.unlock auto_compile_lock;
    r
  in
  match cached with
  | Some cached -> cached
  | None ->
    (* compiled outside the lock; a concurrent duplicate compile of the same
       scalar is harmless (last writer wins, results are interchangeable) *)
    let result = auto_compile_scalar_uncached expr sym in
    Mutex.lock auto_compile_lock;
    Hashtbl.replace auto_compile_cache key result;
    Mutex.unlock auto_compile_lock;
    result

and auto_compile_scalar_uncached expr sym =
  let fexpr =
    Expr.normal (Expr.Sym Expr.Sy.function_)
      [ Expr.list
          [ Expr.normal (Expr.Sym Expr.Sy.typed) [ Expr.Sym sym; Expr.Str "Real64" ] ];
        expr ]
  in
  match
    Pipeline.compile
      ~options:{ Options.default with abort_handling = false; lint = false }
      ~name:"autocompiled" fexpr
  with
  | c ->
    let f = Native.compile c in
    Some
      (fun (x : float) ->
         match f.Wolf_runtime.Rtval.call [| Wolf_runtime.Rtval.Real x |] with
         | Wolf_runtime.Rtval.Real r -> r
         | Wolf_runtime.Rtval.Int i -> float_of_int i
         | _ -> raise (Wolf_base.Errors.Eval_error "autocompile: non-numeric"))
  | exception _ -> None

(* once-only init, race-free: the first caller wins, concurrent callers wait
   until installation has finished rather than observing a half-built kernel *)
let initialized = Atomic.make false
let init_lock = Mutex.create ()

let init () =
  if not (Atomic.get initialized) then begin
    Mutex.lock init_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock init_lock) (fun () ->
        if not (Atomic.get initialized) then begin
          Wolf_kernel.Session.init ();
          Wolf_runtime.Hooks.auto_compile_scalar := auto_compile_scalar;
          Atomic.set initialized true
        end)
  end

let pipelines : (string, Pipeline.compiled) Hashtbl.t = Hashtbl.create 16
let pipelines_lock = Mutex.create ()

let pipelines_put name c =
  Mutex.lock pipelines_lock;
  Hashtbl.replace pipelines name c;
  Mutex.unlock pipelines_lock

let pipelines_get name =
  Mutex.lock pipelines_lock;
  let r = Hashtbl.find_opt pipelines name in
  Mutex.unlock pipelines_lock;
  r

(* The content-addressed compile cache (DESIGN.md "Pass manager & compile
   cache"): repeated Compile/run calls on identical (source, options,
   target, name) are near-free.  Only the plain path is cached — a custom
   type/macro environment or user passes can change the result in ways the
   key cannot see. *)
(* Occupancy estimate for the metrics registry: the words reachable from a
   cached closure (compiled code, captured IR, constants).  Only paid once
   per insert, against a multi-millisecond compile. *)
let weigh_compiled (c : compiled) = 8 * Obj.reachable_words (Obj.repr c)

let compile_cache : compiled Compile_cache.t =
  Compile_cache.create ~capacity:256 ~weigh:weigh_compiled ()

let () = Compile_cache.register_metrics ~prefix:"compile_cache" compile_cache
let () = Wolf_obs.Profile.register_metrics ()

let compile_cache_stats () = Compile_cache.stats compile_cache
let compile_cache_clear () = Compile_cache.clear compile_cache

let target_name = function
  | Jit -> "jit"
  | Threaded -> "threaded"
  | Bytecode -> "bytecode"
  | Tier -> "tier"

(* The persistent layer: when a directory is attached, cacheable compiles
   probe it between the in-memory cache and the pipeline, and publish
   what they build.  Facade-level so wolfc, wolfd and the bench harness
   share one switch. *)
let set_disk_cache dc = Disk_store.set dc
let disk_cache () = Disk_store.get ()
let disk_cache_stats () = Option.map Disk_cache.stats (Disk_store.get ())

let rec function_compile ?options ?type_env ?macro_env ?user_passes
    ?(target = Jit) ?(name = "Main") fexpr =
  init ();
  let opts = Option.value ~default:Options.default options in
  let cacheable =
    opts.Options.use_cache && Option.is_none type_env && Option.is_none macro_env
    && (match user_passes with None | Some [] -> true | Some _ -> false)
  in
  let key =
    if cacheable then
      Some
        (Compile_cache.key ~source:fexpr ~options:opts
           ~target:(target_name target ^ ":" ^ name))
    else None
  in
  let disk = if cacheable then Disk_store.get () else None in
  let build () =
    Wolf_obs.Trace.with_span ~cat:"compile" "function-compile"
      ~args:[ ("name", Wolf_obs.Trace.arg_str name);
              ("target", Wolf_obs.Trace.arg_str (target_name target)) ]
    @@ fun () ->
    (* the disk probe sits under the in-memory layer: an in-memory hit
       never touches disk, a disk hit skips the whole pipeline *)
    let disk_hit =
      match disk, key with
      | Some d, Some k ->
        (match target with
         | Bytecode ->
           (match Disk_store.load_wvm d ~key:k with
            | Some w -> Some (Wvm w)
            | None -> None)
         | Jit when not opts.Options.profile ->
           (match Disk_store.load_jit d ~key:k ~name ~source:fexpr with
            | Some cf -> Some (Native cf)
            | None -> None)
         | Jit | Threaded | Tier -> None)
      | _ -> None
    in
    match disk_hit with
    | Some r -> r
    | None ->
      match target with
      | Tier -> Tiered (make_tiered ~options:opts ~name fexpr)
      | Bytecode ->
        let w = Wvm.compile ~name fexpr in
        (match disk, key with
         | Some d, Some k -> Disk_store.store_wvm d ~key:k w
         | _ -> ());
        Wvm w
      | Jit | Threaded ->
        let c = Pipeline.compile ~options:opts ?type_env ?macro_env ?user_passes ~name fexpr in
        let closure, jit_artifact =
          match target with
          | Jit when not opts.Options.profile ->
            (match Jit.compile_artifact c with
             | Ok (art, cmxs, f) -> f, Some (art, cmxs)
             | Error _ -> Native.compile c, None)
          | Jit | Threaded | Bytecode | Tier ->
            (* profiling instruments per function, which only the threaded
               backend's closure tree supports — a profiled jit request runs
               threaded so the hot-function table is per-function, not one
               opaque entry *)
            Native.compile c, None
        in
        let main = Wir.main c.Pipeline.program in
        let arg_tys =
          Array.map
            (fun (v : Wir.var) -> Option.value ~default:Types.expression v.Wir.vty)
            main.Wir.fparams
        in
        let ret_ty = Option.value ~default:Types.expression main.Wir.ret_ty in
        let wrapped =
          Compiled_function.wrap ~name ~source:fexpr ~arg_tys ~ret_ty closure
        in
        (match disk, key, jit_artifact with
         | Some d, Some k, Some (art, cmxs) ->
           Disk_store.store_jit d ~key:k ~art ~cmxs ~arg_tys ~ret_ty
         | _ -> ());
        (* keep the pipeline result reachable for tooling *)
        pipelines_put wrapped.Compiled_function.cf_name c;
        Native wrapped
  in
  match key with
  | None -> build ()
  | Some key ->
    (* per-key in-flight dedup: two domains compiling the same source see
       one compile; the second blocks briefly and shares the result.
       Tiered entries are cached too: the instance (with its heat and its
       promoted closure) is shared by every requester of the same
       (source, options, name), so one wolfd session's heat promotes for
       all of them. *)
    Compile_cache.find_or_compute compile_cache key ~build

(* Build a tiered callable: tier 0 applies the source through the
   interpreter; the promotion thunk runs the normal compile path (at
   opt_level 2, through both cache layers) on the background domain and
   returns a closure with identical call semantics (admission, soft
   fallback, abort) to an AOT compile. *)
and make_tiered ?threshold ?(promote_target = Jit) ~options ~name fexpr =
  let promote () =
    let popts = { options with Options.opt_level = 2 } in
    let target = match promote_target with Tier -> Jit | t -> t in
    let cf = function_compile ~options:popts ~target ~name fexpr in
    (* unwrap the common case so a promoted call costs exactly an AOT
       call: no list round-trip, no re-dispatch through the facade *)
    (match cf with
     | Native t -> fun args -> Compiled_function.call t args
     | Wvm w -> fun args -> Wvm.call w args
     | Tiered _ -> fun args -> call cf (Array.to_list args))
  in
  Tier.create ?threshold ~name ~source:fexpr ~promote ()

and call cf args =
  init ();
  match cf with
  | Native t -> Compiled_function.call t (Array.of_list args)
  | Wvm w -> Wvm.call w (Array.of_list args)
  | Tiered t -> Tier.call t (Array.of_list args)

let tiered ?options ?threshold ?promote_target ?(name = "Main") fexpr =
  init ();
  let opts = Option.value ~default:Options.default options in
  Tiered (make_tiered ?threshold ?promote_target ~options:opts ~name fexpr)

let tier_of = function
  | Tiered t -> Some t
  | Native _ | Wvm _ -> None

let function_compile_src ?options ?target ?name src =
  function_compile ?options ?target ?name (Parser.parse src)

let call_values cf args =
  match cf with
  | Native t -> Compiled_function.call_values t (Array.of_list args)
  | Wvm w -> Wvm.call_values w (Array.of_list args)
  | Tiered t ->
    Wolf_runtime.Rtval.of_expr
      (Tier.call t
         (Array.of_list (List.map Wolf_runtime.Rtval.to_expr args)))

let install name cf =
  init ();
  let sym = Symbol.intern name in
  match cf with
  | Native t ->
    Wolf_kernel.Values.set_compiled_value sym (Compiled_function.kernel_closure t)
  | Wvm w ->
    Wolf_kernel.Values.set_compiled_value sym
      { Wolf_runtime.Rtval.arity = Wvm.arity w;
        call = (fun vals -> Wvm.call_values w vals) }
  | Tiered t ->
    Wolf_kernel.Values.set_compiled_value sym
      { Wolf_runtime.Rtval.arity = Tier.arity t;
        call =
          (fun vals ->
            Wolf_runtime.Rtval.of_expr
              (Tier.call t (Array.map Wolf_runtime.Rtval.to_expr vals))) }

let interpret src =
  init ();
  Wolf_kernel.Session.run src

let interpret_expr e =
  init ();
  Wolf_kernel.Session.eval e

let compile_to_ast ?options src =
  Mexpr.to_string (Pipeline.compile_to_ast ?options (Parser.parse src))

let compile_to_ir ?options ?(optimize = true) ?(name = "Main") src =
  let fexpr = Parser.parse src in
  if optimize then begin
    let c = Pipeline.compile ?options ~name fexpr in
    Wir_print.program_to_string c.Pipeline.program
  end
  else
    Wir_print.program_to_string (Pipeline.compile_to_wir ?options ~name fexpr)

let export_string ?options ?(name = "Main") ~format src =
  init ();
  let c = Pipeline.compile ?options ~name (Parser.parse src) in
  match format with
  | `C ->
    (match C_emit.emit c with
     | Ok e -> Ok e.C_emit.source
     | Error _ as e -> e)
  | `OCaml -> Ok (Ocaml_emit.emit ~module_name:"Exported" c).Ocaml_emit.source

let export_library ?options ?(name = "Main") ~path src =
  init ();
  let c = Pipeline.compile ?options ~name (Parser.parse src) in
  Jit.export_library c ~path

let pipeline_of = function
  | Native t -> pipelines_get t.Compiled_function.cf_name
  | Wvm _ | Tiered _ -> None

let fallback_count = function
  | Native t -> Atomic.get t.Compiled_function.fallbacks
  | Wvm _ | Tiered _ -> 0
