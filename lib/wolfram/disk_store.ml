(* Per-target artifact codec over the generic Disk_cache blob store.

   What persists, per backend:
   - Bytecode: the WVM image (data-only instruction twin, Wvm.serialize).
   - Jit: the relink recipe — entry symbol, host-side constants, arity,
     argument/return types — plus the .cmxs bytes; on load the .cmxs is
     materialised as a content-addressed blob (revalidated by digest) and
     dynlinked privately.
   - Threaded: nothing.  Its compilation result is an OCaml closure tree,
     which no marshal format can ship across processes; threaded entries
     live only in the in-memory cache, by design.

   Marshaled payloads carry Symbols and Exprs as dead copies (symbol
   equality is physical), so everything expression-shaped is re-interned
   on the way in.  Any marshal failure on the way out (e.g. a function
   value hiding in a constant) just skips the store: the disk layer must
   never fail a compile. *)

open Wolf_compiler
open Wolf_backends

let active : Disk_cache.t option Atomic.t = Atomic.make None

let set dc =
  Atomic.set active dc;
  match dc with
  | Some d -> Disk_cache.register_metrics d
  | None -> ()

let get () = Atomic.get active

let payload_version = 1

(* ------------------------------------------------------------------ *)
(* WVM images *)

let store_wvm d ~key w =
  match Wvm.serialize w with
  | bytes -> Disk_cache.store d ~key ~kind:"wvm" bytes
  | exception _ -> ()

let load_wvm d ~key =
  match Disk_cache.load d ~key ~kind:"wvm" with
  | None -> None
  | Some bytes -> Wvm.deserialize bytes

(* ------------------------------------------------------------------ *)
(* Jit artifacts *)

type jit_payload = {
  jp_version : int;
  jp_entry : string;
  jp_constants : (string * Wolf_runtime.Rtval.t) list;
  jp_arity : int;
  jp_cmxs : string;          (* raw .cmxs bytes *)
  jp_cmxs_digest : string;   (* hex MD5 of jp_cmxs, revalidated at reuse *)
  jp_arg_tys : Types.t array;
  jp_ret_ty : Types.t;
}

let rtval_reintern (v : Wolf_runtime.Rtval.t) =
  match v with
  | Wolf_runtime.Rtval.Expr e -> Wolf_runtime.Rtval.Expr (Wolf_wexpr.Expr.reintern e)
  | Wolf_runtime.Rtval.Str _ | Wolf_runtime.Rtval.Unit | Wolf_runtime.Rtval.Int _
  | Wolf_runtime.Rtval.Real _ | Wolf_runtime.Rtval.Bool _
  | Wolf_runtime.Rtval.Complex _ | Wolf_runtime.Rtval.Tensor _
  | Wolf_runtime.Rtval.Fun _ -> v

let store_jit d ~key ~(art : Jit.artifact) ~cmxs ~arg_tys ~ret_ty =
  match
    let ic = open_in_bin cmxs in
    let bytes =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    let payload =
      { jp_version = payload_version; jp_entry = art.Jit.a_entry_symbol;
        jp_constants = art.Jit.a_constants; jp_arity = art.Jit.a_arity;
        jp_cmxs = bytes; jp_cmxs_digest = Digest.to_hex (Digest.string bytes);
        jp_arg_tys = arg_tys; jp_ret_ty = ret_ty }
    in
    (* raises on closures (Rtval.Fun constants); that skips the store *)
    Marshal.to_string payload []
  with
  | bytes -> Disk_cache.store d ~key ~kind:"jit" bytes
  | exception _ -> ()

let load_jit d ~key ~name ~source =
  match Disk_cache.load d ~key ~kind:"jit" with
  | None -> None
  | Some bytes ->
    match (Marshal.from_string bytes 0 : jit_payload) with
    | exception _ -> None
    | p ->
      if p.jp_version <> payload_version then None
      else begin
        match
          Disk_cache.ensure_blob d ~name:(p.jp_cmxs_digest ^ ".cmxs")
            ~digest:p.jp_cmxs_digest p.jp_cmxs
        with
        | None -> None
        | Some cmxs_path ->
          let art =
            { Jit.a_entry_symbol = p.jp_entry;
              a_constants =
                List.map (fun (k, v) -> (k, rtval_reintern v)) p.jp_constants;
              a_arity = p.jp_arity }
          in
          match Jit.link_artifact ~cmxs:cmxs_path art with
          | Error _ -> None
          | Ok closure ->
            Some
              (Compiled_function.wrap ~name ~source ~arg_tys:p.jp_arg_tys
                 ~ret_ty:p.jp_ret_ty closure)
      end
