(** Tiered adaptive execution: interpret first, compile hot functions at
    -O2 on a background domain, hot-swap the closure in.

    The callable lives in an atomic closure slot read once per call —
    in-flight tier-0 activations finish on the code they started with,
    new calls pick up the promoted closure; nothing ever pauses.  Heat =
    invocations + loop backedges (estimated from the interpreter's
    abort-poll count, which increments once per loop iteration).  See
    DESIGN.md "Tiered execution". *)

type t

type state = Cold | Queued | Promoted | Failed

val state_name : state -> string

val default_threshold : int Atomic.t
(** Heat needed to queue a promotion when [create] gets no [?threshold]
    (initially 12). *)

val set_jobs : int -> unit
(** Worker domains for the shared background compile pool; must be set
    before the first promotion is queued (the pool is created lazily). *)

val create :
  ?threshold:int ->
  name:string ->
  source:Wolf_wexpr.Expr.t ->
  promote:(unit -> Wolf_wexpr.Expr.t array -> Wolf_wexpr.Expr.t) ->
  unit ->
  t
(** A tier-0 callable over [source] (a [Function[…]] expression, applied
    via the interpreter).  [promote] runs on a background domain when the
    function gets hot and must return the replacement closure; if it
    raises, the function keeps interpreting ([Failed] — or back to [Cold]
    when the exception was a stray [Abort[]], which is the caller's
    program racing the compile, not a compile bug). *)

val call : t -> Wolf_wexpr.Expr.t array -> Wolf_wexpr.Expr.t
(** Apply through the current tier.  Never blocks on promotion. *)

val state : t -> state
val calls : t -> int
val backedges : t -> int
(** Loop-backedge estimate accumulated during tier-0 calls. *)

val promoted_at : t -> int option
(** Tier-0 call count when the compiled closure was published. *)

val heat : t -> int
val name : t -> string
val source : t -> Wolf_wexpr.Expr.t
val arity : t -> int
val threshold : t -> int

val await_promotion : ?timeout:float -> t -> state
(** Wait (polling) until the pending promotion lands or fails; returns the
    state reached.  Times out after [timeout] seconds (default 30). *)

val force_promote : t -> state
(** Promote synchronously if still cold, else await the in-flight job —
    for tests and for deterministic teardown in `wolfc run --tier`. *)

val executor_stats : unit -> Wolf_parallel.Executor.stats option
(** Stats of the shared background pool, once it exists. *)

val drain : unit -> unit
(** Block until every queued promotion has run (no-op if the pool was
    never created). *)

val shutdown : unit -> unit
(** Join the background worker domains; later promotions recreate the
    pool. *)
