(** Public API of the Wolfram Language compiler reproduction.

    Mirrors the paper's user-visible surface: [FunctionCompile] (§4.1),
    the intermediate-representation inspectors from the artifact appendix
    ([CompileToAST] / [CompileToIR]), export ([FunctionCompileExportString],
    [FunctionCompileExportLibrary]), the legacy [Compile] (bytecode, §2.2),
    and seamless interpreter integration (F1): compiled functions install
    into the kernel and are then called like any other definition. *)

open Wolf_wexpr

type target =
  | Jit              (** ocamlopt native JIT (default; the LLVM stand-in) *)
  | Threaded         (** closure-threaded native backend (no toolchain needed) *)
  | Bytecode         (** the legacy WVM bytecode compiler (the baseline) *)
  | Tier             (** interpret now, promote to -O2 in the background *)

(** Tiering controller (re-export; see DESIGN.md "Tiered execution"). *)
module Tier : module type of Tier

type compiled =
  | Native of Wolf_backends.Compiled_function.t
  | Wvm of Wolf_backends.Wvm.compiled_function
  | Tiered of Tier.t

val init : unit -> unit
(** Start the kernel session, and install the compiler's auto-compilation
    hook used by numerical solvers such as [FindRoot] (E4).  Idempotent. *)

val function_compile :
  ?options:Wolf_compiler.Options.t ->
  ?type_env:Wolf_compiler.Type_env.t ->
  ?macro_env:Wolf_compiler.Macro.env ->
  ?user_passes:Wolf_compiler.Pipeline.user_pass list ->
  ?target:target ->
  ?name:string ->
  Expr.t ->
  compiled
(** Compile a [Function[…]].  With [target = Jit], silently falls back to
    [Threaded] when the toolchain is unavailable. *)

val function_compile_src :
  ?options:Wolf_compiler.Options.t -> ?target:target -> ?name:string ->
  string -> compiled
(** Parse then compile. *)

val tiered :
  ?options:Wolf_compiler.Options.t ->
  ?threshold:int ->
  ?promote_target:target ->
  ?name:string ->
  Expr.t ->
  compiled
(** A [Tiered] callable without touching any cache: tier 0 is the
    interpreter, and once heat crosses [threshold] (default
    {!Tier.default_threshold}) a background domain compiles at -O2 via
    [promote_target] (default [Jit]; [Tier] coerces to [Jit]) and
    hot-swaps the closure.  [function_compile ~target:Tier] is the cached
    variant: the instance — heat, state, promoted closure — is shared by
    everyone who asks for the same (source, options, name). *)

val tier_of : compiled -> Tier.t option
(** The controller behind a [Tiered] value (state, counters, await). *)

val call : compiled -> Expr.t list -> Expr.t
(** Apply with full language semantics (boxing, soft failure, abort). *)

val call_values :
  compiled -> Wolf_runtime.Rtval.t list -> Wolf_runtime.Rtval.t
(** Raw entry: raises on runtime failures (used by benchmarks to measure
    without the fallback wrapper). *)

val install : string -> compiled -> unit
(** Bind a compiled function to a symbol so interpreted code calls it
    transparently (F1): [install "f" cf] makes [f[…]] use compiled code. *)

val interpret : string -> Expr.t
val interpret_expr : Expr.t -> Expr.t

val compile_to_ast : ?options:Wolf_compiler.Options.t -> string -> string
(** The artifact's [CompileToAST[…]["toString"]]. *)

val compile_to_ir :
  ?options:Wolf_compiler.Options.t -> ?optimize:bool -> ?name:string ->
  string -> string
(** The artifact's [CompileToIR[…]["toString"]]: untyped WIR with
    [optimize:false]; typed, resolved, optimised TWIR otherwise. *)

val export_string :
  ?options:Wolf_compiler.Options.t -> ?name:string ->
  format:[ `C | `OCaml ] -> string -> (string, string) result
(** [FunctionCompileExportString] analogue. *)

val export_library :
  ?options:Wolf_compiler.Options.t -> ?name:string -> path:string -> string ->
  (string, string) result
(** [FunctionCompileExportLibrary]: native shared object on disk. *)

val pipeline_of : compiled -> Wolf_compiler.Pipeline.compiled option
(** Pass timings, instrumentation stats, resolution table, IR — for tooling
    and the E8 benchmark. *)

val fallback_count : compiled -> int

val compile_cache_stats : unit -> Wolf_compiler.Compile_cache.stats
(** Hit/miss/eviction counters of the facade's compile cache.  A second
    identical [function_compile] in-process is a cache hit; any change to
    the source text, any {!Wolf_compiler.Options.t} field, the target, or
    the name misses.  Compiles with custom environments or user passes
    bypass the cache entirely (counters untouched). *)

val compile_cache_clear : unit -> unit
(** Drop all cached compilations and zero the counters. *)

val set_disk_cache : Wolf_compiler.Disk_cache.t option -> unit
(** Attach (or detach) a persistent on-disk compile cache.  While attached,
    cacheable compiles probe it between the in-memory cache and the
    pipeline — WVM images and JIT artifacts (.cmxs + relink recipe) are
    loaded/stored by the same fingerprint keys; threaded results stay
    memory-only (closure trees don't marshal).  Attaching registers the
    cache's metrics source ([disk_cache_*]). *)

val disk_cache : unit -> Wolf_compiler.Disk_cache.t option

val disk_cache_stats : unit -> Wolf_compiler.Disk_cache.stats option
