(** The Wolfram compiler IR (paper §4.3).

    SSA from construction (the paper lowers directly to SSA, citing Braun et
    al.); join points use basic-block parameters rather than phi
    instructions, which keeps passes and the linter simple.  A WIR whose
    variables all carry types is the TWIR (§4.5) — same representation, as
    the paper requires so that passes may introduce untyped instructions and
    re-run inference. *)

open Wolf_wexpr

type var = {
  vid : int;
  vname : string;
  mutable vty : Types.t option;  (** None = WIR; Some = TWIR *)
}

type const =
  | Cvoid
  | Cint of int
  | Creal of float
  | Cbool of bool
  | Cstr of string
  | Cexpr of Expr.t  (** embedded expression constants, incl. constant arrays *)

type operand =
  | Ovar of var
  | Oconst of const

type callee =
  | Prim of string      (** unresolved language-level operation, e.g. "Plus" *)
  | Resolved of { base : string; mangled : string }
      (** runtime primitive after function resolution *)
  | Func of string      (** program function by name (user or instantiated) *)
  | Indirect of operand (** first-class function value *)

type instr =
  | Load_argument of { dst : var; index : int }
  | Copy of { dst : var; src : operand }
  | Call of { dst : var; callee : callee; args : operand array }
  | New_closure of { dst : var; fname : string; captured : operand array }
  | Kernel_call of { dst : var; head : Expr.t; args : operand array }
      (** escape to the interpreter (KernelFunction / gradual compilation) *)
  | Abort_check                        (** inserted by {!Abort_pass} *)
  | Abort_poll of { stride : int; site : int }
      (** strided abort poll: runs the real check every [stride] executions;
          [site] identifies the per-loop counter.  Inserted by
          {!Opt_abort_stride}. *)
  | Mem_acquire of operand
  | Mem_release of operand             (** inserted by {!Memory_pass} *)
  | Copy_value of { dst : var; src : operand }
      (** deep copy inserted by {!Mutability_pass} *)

type jump = { target : int; jargs : operand array }

type terminator =
  | Jump of jump
  | Branch of { cond : operand; if_true : jump; if_false : jump }
  | Return of operand
  | Unreachable

type block = {
  label : int;
  mutable bparams : var array;
  mutable instrs : instr list;   (** in execution order *)
  mutable term : terminator;
}

type func = {
  fname : string;
  mutable fparams : var array;
  mutable ret_ty : Types.t option;
  mutable blocks : block list;   (** entry first *)
  mutable finline : bool;        (** eligible/marked for inlining *)
  mutable fsource : Expr.t option;  (** originating MExpr (debug/errors) *)
}

type program = {
  mutable funcs : func list;    (** main first *)
  mutable pmeta : (string * string) list;
}

val fresh_var : ?name:string -> ?ty:Types.t -> unit -> var
(** Draw from one atomic process-wide id supply: variable ids are unique
    across all compilations on all domains.  (There is deliberately no
    counter reset; see the note in the implementation.) *)

val const_ty : const -> Types.t
val operand_ty : operand -> Types.t option

val entry : func -> block
val find_block : func -> int -> block
val find_func : program -> string -> func option
val main : program -> func

val instr_defs : instr -> var list
val instr_uses : instr -> operand list
val term_uses : terminator -> operand list
val successors : terminator -> int list

val map_instr_operands : (operand -> operand) -> instr -> instr
val map_term_operands : (operand -> operand) -> terminator -> terminator

val iter_vars : func -> (var -> unit) -> unit
(** Every SSA variable defined in the function (params, block params,
    instruction defs). *)
