(** Instrumented pass manager (paper §4: the compiler is a sequence of WIR
    passes with language-obligation passes interleaved).

    Every transformation of a {!Wir.program} — optimisation passes, the
    language-obligation passes, type inference, user-injected passes — runs
    through one uniform [pass] record.  The manager owns, per pass:

    - wall-clock time (cumulative over repeated runs in a fixpoint),
    - before/after instruction- and basic-block-count deltas,
    - post-pass {!Wir_lint} verification when linting is enabled,
    - dump-IR-after-pass hooks ([--dump-after] in wolfc).

    Front-end stages that do not yet have a program (macro expansion,
    lowering) are timed with {!record} and appear in the same report with no
    IR delta. *)

type pass = {
  pass_name : string;
  pass_run : Wir.program -> bool;
      (** Returns [true] when the program may have changed (drives the
          optimisation fixpoint). *)
}

val mk : string -> (Wir.program -> bool) -> pass

val of_unit : string -> (Wir.program -> unit) -> pass
(** Wrap a pass without a change report; treated as always-changing. *)

type delta = {
  d_instrs_before : int;
  d_instrs_after : int;
  d_blocks_before : int;
  d_blocks_after : int;
}
(** Instruction/basic-block counts at the pass's first run (before) and its
    most recent run (after). *)

type stat = {
  st_pass : string;
  st_runs : int;      (** executions (a fixpoint pass runs many times) *)
  st_changed : int;   (** runs that reported a change *)
  st_time : float;    (** cumulative seconds *)
  st_verify : float;  (** cumulative seconds spent in the post-pass
                          {!Wir_verify} run, attributed to this pass *)
  st_delta : delta option;  (** [None] for {!record}ed front-end stages *)
}

type t

val create :
  ?lint:bool ->
  ?verify:bool ->
  ?dump_after:string list ->
  ?dump:(string -> Wir.program -> unit) ->
  unit ->
  t
(** [lint] and [verify] (both default false) each run the full
    {!Wir_verify.assert_ok} after every pass — [verify] is the explicit
    [--verify-each] switch and is reported per pass in {!stats}.
    [dump_after] names passes after which [dump] fires; the name ["all"]
    matches every pass.  The default [dump] prints the IR to stderr. *)

val run_pass : t -> pass -> Wir.program -> bool
(** Run one pass with full instrumentation; returns the pass's change
    report. *)

val run_list : t -> pass list -> Wir.program -> unit
(** Run each pass once, in order. *)

val run_fixpoint : ?budget:int -> t -> pass list -> Wir.program -> bool
(** Iterate the pass list until no pass reports a change or [budget]
    (default 16) rounds elapse; returns [true] if any run changed the
    program. *)

val record : t -> string -> (unit -> 'a) -> 'a
(** Time a stage that is not a WIR-to-WIR pass (e.g. macro expansion +
    lowering); contributes to {!timings} and {!stats} without an IR delta. *)

val checkpoint : t -> string -> Wir.program -> unit
(** Lint and run the dump hook for a stage boundary that was not executed
    via {!run_pass} (e.g. right after lowering). *)

val stats : t -> stat list
(** Aggregated per-pass statistics in first-execution order.  A stage that
    was only {!checkpoint}ed (verified but never run as a pass) appears as
    a zero-run row carrying its verify time, so the verify column is
    complete. *)

type totals = { tot_pass : float; tot_verify : float }

val totals : stat list -> totals
(** The report footer's numbers, derived from the per-pass rows and nothing
    else.  Pass time and verify time are disjoint by construction —
    [st_time] never includes verification — so each is reported exactly
    once: [tot_pass] is the fold of the ms column, [tot_verify] the fold of
    the verify-ms column. *)

val timings : t -> (string * float) list
(** Per-run (pass name, seconds) in chronological order — the legacy
    pipeline timings format (experiment E8). *)

val instr_count : Wir.program -> int
val block_count : Wir.program -> int

val stats_to_string : stat list -> string
(** Human-readable table: runs, changed, cumulative ms, instr/block deltas. *)

val stats_to_json : stat list -> string
(** The same report as a JSON array (one object per pass). *)
