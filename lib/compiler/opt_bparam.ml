(* Dead block-parameter elimination.

   Lowering threads every Module variable through every block as a
   parameter, so loop headers accumulate arguments that nothing in or after
   the loop reads (they only circulate through jump arguments back into
   themselves or into other dead parameters).  Regular DCE cannot remove
   them: each circulating argument *is* a use.  This pass computes parameter
   liveness as a fixpoint — a parameter is live only if it reaches an
   instruction operand, a branch condition or a return, directly or through
   a chain of live parameters — and deletes the dead ones together with the
   corresponding jump arguments.

   Beyond tidiness this is a real optimisation for the OCaml-emitting
   backends: blocks become mutually recursive functions, and tail calls
   whose arguments exceed the native argument registers are compiled as
   genuine calls.  Dropping dead parameters keeps hot loop knots under that
   limit.  Only scalar-typed parameters are removed, so the mutability and
   memory-management passes never see a packed array's lifetime change
   shape here; a dead tensor parameter simply dies a block earlier, which
   those passes handle themselves.

   Runs inside the optimisation fixpoint: deleting a parameter strips jump
   arguments, which lets DCE delete their defining instructions, which can
   expose more dead parameters on the next round. *)

open Wir

let scalar v =
  match v.vty with
  | Some t ->
    (match Types.repr t with
     | Types.Con (("Integer64" | "Real64" | "Boolean" | "String" | "ComplexReal64"), _) ->
       true
     | _ -> false)
  | None -> false

let run_func f =
  let entry_label = (entry f).label in
  (* candidate parameters: vid -> () for scalar params of non-entry blocks *)
  let candidate = Hashtbl.create 32 in
  List.iter
    (fun b ->
       if b.label <> entry_label then
         Array.iter (fun p -> if scalar p then Hashtbl.replace candidate p.vid ()) b.bparams)
    f.blocks;
  if Hashtbl.length candidate = 0 then false
  else begin
    let params_of = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace params_of b.label b.bparams) f.blocks;
    (* deps: candidate param vid -> variables flowing into it via jumps *)
    let deps : (int, var list ref) Hashtbl.t = Hashtbl.create 32 in
    let dep_of pid =
      match Hashtbl.find_opt deps pid with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace deps pid r;
        r
    in
    let live = Hashtbl.create 64 in
    let work = ref [] in
    let root v =
      if not (Hashtbl.mem live v.vid) then begin
        Hashtbl.replace live v.vid ();
        work := v :: !work
      end
    in
    let root_op = function Ovar v -> root v | Oconst _ -> () in
    let flow (j : jump) =
      let ps = Option.value ~default:[||] (Hashtbl.find_opt params_of j.target) in
      Array.iteri
        (fun k arg ->
           match arg with
           | Oconst _ -> ()
           | Ovar v ->
             if k < Array.length ps && Hashtbl.mem candidate ps.(k).vid then
               dep_of ps.(k).vid := v :: !(dep_of ps.(k).vid)
             else root v)
        j.jargs
    in
    List.iter
      (fun b ->
         List.iter (fun i -> List.iter root_op (instr_uses i)) b.instrs;
         match b.term with
         | Return op -> root_op op
         | Unreachable -> ()
         | Jump j -> flow j
         | Branch { cond; if_true; if_false } ->
           root_op cond;
           flow if_true;
           flow if_false)
      f.blocks;
    (* propagate: a var feeding a live parameter is live *)
    while !work <> [] do
      let v = List.hd !work in
      work := List.tl !work;
      if Hashtbl.mem candidate v.vid then
        match Hashtbl.find_opt deps v.vid with
        | Some srcs -> List.iter root !srcs
        | None -> ()
    done;
    (* keep masks per block, then rewrite parameter lists and jump args *)
    let keep = Hashtbl.create 16 in
    let changed = ref false in
    List.iter
      (fun b ->
         if b.label <> entry_label then begin
           let mask =
             Array.map
               (fun p -> (not (Hashtbl.mem candidate p.vid)) || Hashtbl.mem live p.vid)
               b.bparams
           in
           if Array.exists not mask then begin
             changed := true;
             Hashtbl.replace keep b.label mask
           end
         end)
      f.blocks;
    if not !changed then false
    else begin
      let filter_by mask arr =
        let out = ref [] in
        Array.iteri (fun k x -> if mask.(k) then out := x :: !out) arr;
        Array.of_list (List.rev !out)
      in
      let rewrite_jump (j : jump) =
        match Hashtbl.find_opt keep j.target with
        | Some mask -> { j with jargs = filter_by mask j.jargs }
        | None -> j
      in
      List.iter
        (fun b ->
           (match Hashtbl.find_opt keep b.label with
            | Some mask -> b.bparams <- filter_by mask b.bparams
            | None -> ());
           b.term <-
             (match b.term with
              | Jump j -> Jump (rewrite_jump j)
              | Branch { cond; if_true; if_false } ->
                Branch
                  { cond;
                    if_true = rewrite_jump if_true;
                    if_false = rewrite_jump if_false }
              | (Return _ | Unreachable) as t -> t))
        f.blocks;
      true
    end
  end

let run (p : program) =
  List.fold_left (fun acc f -> run_func f || acc) false p.funcs
