open Wolf_base
open Wir

type resolved = {
  rdecl : Type_env.decl;
  rarg_tys : Types.t array;
  rret_ty : Types.t;
}

(* A pending AlternativeConstraint: an overloaded call awaiting resolution. *)
type alternative = {
  aname : string;                       (* language-level operation name *)
  afunc : string;                       (* enclosing function, for errors *)
  ablock : int;
  aindex : int;                         (* instruction index within block *)
  asig : Types.t;                       (* Fun(arg types, result type) *)
  aret : Types.t;
  mutable candidates : Type_env.decl list;
  mutable chosen : Type_env.decl option;
  mutable kernel : bool;                (* resolved to an interpreter escape *)
}

let var_ty v =
  match v.vty with
  | Some t -> t
  | None ->
    let t = Types.fresh_var () in
    v.vty <- Some t;
    t

let op_ty op =
  match op with
  | Ovar v -> var_ty v
  | Oconst c -> Wir.const_ty c

let unify_or_fail ~where a b =
  match Unify.unify a b with
  | Ok () -> ()
  | Error msg -> Errors.compile_errorf "type error in %s: %s" where msg

(* ------------------------------------------------------------------ *)
(* Constraint generation                                               *)

let rec generate ~env (p : program) =
  let alternatives : alternative list ref = ref [] in
  let func_ret f =
    match f.ret_ty with
    | Some t -> t
    | None ->
      let t = Types.fresh_var () in
      f.ret_ty <- Some t;
      t
  in
  List.iter
    (fun f ->
       Array.iter (fun v -> ignore (var_ty v)) f.fparams;
       ignore (func_ret f))
    p.funcs;
  List.iter
    (fun f ->
       let where = f.fname in
       List.iter
         (fun b ->
            Array.iter (fun v -> ignore (var_ty v)) b.bparams;
            List.iteri
              (fun idx i ->
                 match i with
                 | Load_argument { dst; index } ->
                   if index < Array.length f.fparams then
                     unify_or_fail ~where (var_ty dst) (var_ty f.fparams.(index))
                 | Copy { dst; src } | Copy_value { dst; src } ->
                   unify_or_fail ~where (var_ty dst) (op_ty src)
                 | Call { dst; callee = Prim name; args } ->
                   let ret = var_ty dst in
                   let sig_ = Types.Fun (Array.map op_ty args, ret) in
                   (match name with
                    | "MaterializeConstant" ->
                      unify_or_fail ~where ret (op_ty args.(0))
                    | _ ->
                      let candidates = Type_env.lookup env name in
                      let arity_ok d =
                        match d.Type_env.scheme.Types.body with
                        | Types.Fun (ps, _) -> Array.length ps = Array.length args
                        | _ -> false
                      in
                      let candidates = List.filter arity_ok candidates in
                      alternatives :=
                        { aname = name; afunc = f.fname; ablock = b.label;
                          aindex = idx; asig = sig_; aret = ret; candidates;
                          chosen = None; kernel = false }
                        :: !alternatives)
                 | Call { callee = Resolved _; _ } -> ()
                 | Call { dst; callee = Func name; args } ->
                   (match Wir.find_func p name with
                    | Some callee ->
                      Array.iteri
                        (fun k a ->
                           if k < Array.length callee.fparams then
                             unify_or_fail ~where (op_ty a) (var_ty callee.fparams.(k)))
                        args;
                      unify_or_fail ~where (var_ty dst) (func_ret callee)
                    | None ->
                      Errors.compile_errorf "call to unknown function %s" name)
                 | Call { dst; callee = Indirect fop; args } ->
                   unify_or_fail ~where (op_ty fop)
                     (Types.Fun (Array.map op_ty args, var_ty dst))
                 | New_closure { dst; fname; captured } ->
                   (match Wir.find_func p fname with
                    | Some lifted ->
                      let ncap = Array.length captured in
                      Array.iteri
                        (fun k c ->
                           unify_or_fail ~where (op_ty c) (var_ty lifted.fparams.(k)))
                        captured;
                      let rest =
                        Array.sub lifted.fparams ncap (Array.length lifted.fparams - ncap)
                      in
                      unify_or_fail ~where (var_ty dst)
                        (Types.Fun (Array.map var_ty rest, func_ret lifted))
                    | None -> Errors.compile_errorf "closure over unknown function %s" fname)
                 | Kernel_call { dst; _ } ->
                   unify_or_fail ~where (var_ty dst) Types.expression
                 | Abort_check | Abort_poll _ | Mem_acquire _ | Mem_release _ -> ())
              b.instrs;
            (match b.term with
             | Jump j -> unify_jump ~where f j
             | Branch { cond; if_true; if_false } ->
               unify_or_fail ~where (op_ty cond) Types.boolean;
               unify_jump ~where f if_true;
               unify_jump ~where f if_false
             | Return op -> unify_or_fail ~where (op_ty op) (func_ret f)
             | Unreachable -> ()))
         f.blocks)
    p.funcs;
  List.rev !alternatives

and unify_jump ~where f j =
  let tgt = Wir.find_block f j.target in
  Array.iteri
    (fun k a ->
       if k < Array.length tgt.bparams then
         unify_or_fail ~where (op_ty a) (var_ty tgt.bparams.(k)))
    j.jargs

(* ------------------------------------------------------------------ *)
(* Alternative solving                                                 *)

(* Feasibility test: can this declaration still unify with the call
   signature?  Always rolled back. *)
let candidate_fits alt decl =
  let fits = ref false in
  ignore
    (Unify.speculate (fun () ->
         let inst = Types.instantiate decl.Type_env.scheme in
         (match Unify.unify inst alt.asig with
          | Ok () -> fits := true
          | Error _ -> ());
         None));
  !fits

let commit alt decl =
  let inst = Types.instantiate decl.Type_env.scheme in
  (match Unify.unify inst alt.asig with
   | Ok () -> ()
   | Error msg ->
     Errors.compile_errorf "resolution of %s in %s failed: %s" alt.aname alt.afunc msg);
  alt.chosen <- Some decl

let solve ~kernel_escape p alternatives =
  ignore p;
  let pending = ref alternatives in
  let progress = ref true in
  let handle_empty alt =
    if kernel_escape then begin
      alt.kernel <- true;
      match Unify.unify alt.aret Types.expression with
      | Ok () -> ()
      | Error msg ->
        Errors.compile_errorf
          "kernel escape for %s in %s needs an Expression result: %s" alt.aname
          alt.afunc msg
    end
    else
      Errors.compile_errorf
        "no matching definition for %s in %s (signature %s); \
         declare it in the type environment or enable KernelEscape"
        alt.aname alt.afunc (Types.to_string alt.asig)
  in
  while !pending <> [] && !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun alt ->
         let viable = List.filter (candidate_fits alt) alt.candidates in
         if List.length viable < List.length alt.candidates then progress := true;
         alt.candidates <- viable;
         match viable with
         | [] ->
           handle_empty alt;
           progress := true
         | [ only ] ->
           commit alt only;
           progress := true
         | _ -> still := alt :: !still)
      !pending;
    pending := List.rev !still;
    if (not !progress) && !pending <> [] then begin
      (* No more information will arrive: commit the most specific surviving
         candidate (declaration order = the computed ordering, §4.4) of the
         first pending alternative, then resume propagation. *)
      match !pending with
      | alt :: rest ->
        (match alt.candidates with
         | best :: _ ->
           commit alt best;
           pending := rest;
           progress := true
         | [] -> assert false)
      | [] -> ()
    end
  done

(* ------------------------------------------------------------------ *)
(* Write-back                                                          *)

let mangled_name decl arg_tys =
  let tys = String.concat "_" (Array.to_list (Array.map Types.mangle arg_tys)) in
  match decl.Type_env.impl with
  | Type_env.Prim base -> Printf.sprintf "%s_%s" base tys
  | Type_env.Wolfram _ -> Printf.sprintf "%s$%s" decl.Type_env.dname tys
  | Type_env.External name -> name

let write_back p alternatives table =
  List.iter
    (fun alt ->
       let f = List.find (fun f -> String.equal f.fname alt.afunc) p.funcs in
       let b = Wir.find_block f alt.ablock in
       b.instrs <-
         List.mapi
           (fun idx i ->
              if idx <> alt.aindex then i
              else
                match i, alt.chosen, alt.kernel with
                | Call { dst; callee = Prim name; args }, _, true ->
                  Kernel_call { dst; head = Wolf_wexpr.Expr.sym name; args }
                | Call { dst; callee = Prim _; args }, Some decl, _ ->
                  let arg_tys = Array.map op_ty args in
                  let ret_ty = var_ty dst in
                  let mangled = mangled_name decl arg_tys in
                  Hashtbl.replace table mangled
                    { rdecl = decl; rarg_tys = arg_tys; rret_ty = ret_ty };
                  let base =
                    match decl.Type_env.impl with
                    | Type_env.Prim base -> base
                    | Type_env.Wolfram _ -> decl.Type_env.dname
                    | Type_env.External name -> name
                  in
                  Call { dst; callee = Resolved { base; mangled }; args }
                | other, _, _ -> other)
           b.instrs)
    alternatives

let infer ~env ~options p =
  let alternatives = generate ~env p in
  solve ~kernel_escape:options.Options.kernel_escape p alternatives;
  let table : (string, resolved) Hashtbl.t = Hashtbl.create 32 in
  write_back p alternatives table;
  (* the constant-materialisation pseudo-primitive resolves to itself *)
  List.iter
    (fun f ->
       List.iter
         (fun b ->
            b.instrs <-
              List.map
                (function
                  | Call { dst; callee = Prim "MaterializeConstant"; args } ->
                    Call
                      { dst;
                        callee =
                          Resolved
                            { base = "materializeconstant";
                              mangled = "materializeconstant" };
                        args }
                  | i -> i)
                b.instrs)
         f.blocks)
    p.funcs;
  table

let check_ground p =
  List.iter
    (fun f ->
       Wir.iter_vars f (fun v ->
           match v.vty with
           | Some t when Types.is_ground t -> ()
           | Some t ->
             Errors.compile_errorf
               "variable %%%d in %s has unresolved type %s (annotate with Typed)"
               v.vid f.fname (Types.to_string t)
           | None ->
             Errors.compile_errorf "variable %%%d in %s has no type" v.vid f.fname))
    p.funcs
