(** Data-parallel loop recognition ([Options.parallel_loops]).

    Outlines innermost counted loops with a single carried accumulator —
    map-style [part_set_1] chains indexed by the induction variable, or
    associative Plus/Times/Min/Max reductions — into fresh
    [<fname>$par<k>] functions and replaces them with guarded calls to the
    [parallel_for_map] / [parallel_reduce] runtime primitives
    ({!Wolf_runtime.Par_runtime}), which own chunking, measured schedule
    search and merging.  Runs once after the optimisation fixpoint, before
    the mutability/abort/memory obligation passes.  Appends per-loop
    decisions ([parallelized …] / [rejected: reason]) to [program.pmeta]
    under ["parloop."] keys. *)

val run : Wir.program -> bool
(** Returns whether any loop was outlined. *)
