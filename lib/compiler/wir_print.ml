open Wir

let ty_suffix v =
  match v.vty with
  | Some t -> ":" ^ Types.to_string t
  | None -> ""

let var_to_string v = Printf.sprintf "%%%d%s" v.vid (ty_suffix v)
let var_ref v = Printf.sprintf "%%%d" v.vid

let const_to_string = function
  | Cvoid -> "Null"
  | Cint i -> string_of_int i
  | Creal r -> Printf.sprintf "%.17g" r
  | Cbool b -> if b then "True" else "False"
  | Cstr s -> Printf.sprintf "%S" s
  | Cexpr e -> Printf.sprintf "<<%s>>" (Wolf_wexpr.Form.input_form e)

let operand_to_string = function
  | Ovar v -> var_ref v
  | Oconst c -> const_to_string c

let callee_to_string = function
  | Prim name -> name
  | Resolved { mangled; _ } -> Printf.sprintf "Native`PrimitiveFunction[%s]" mangled
  | Func name -> name
  | Indirect op -> Printf.sprintf "*%s" (operand_to_string op)

let args_to_string args =
  String.concat ", " (Array.to_list (Array.map operand_to_string args))

let instr_to_string = function
  | Load_argument { dst; index } ->
    Printf.sprintf "%s = LoadArgument arg%d" (var_to_string dst) index
  | Copy { dst; src } ->
    Printf.sprintf "%s = Copy %s" (var_to_string dst) (operand_to_string src)
  | Call { dst; callee; args } ->
    Printf.sprintf "%s = Call %s [%s]" (var_to_string dst) (callee_to_string callee)
      (args_to_string args)
  | New_closure { dst; fname; captured } ->
    Printf.sprintf "%s = NewClosure %s [%s]" (var_to_string dst) fname
      (args_to_string captured)
  | Kernel_call { dst; head; args } ->
    Printf.sprintf "%s = KernelCall %s [%s]" (var_to_string dst)
      (Wolf_wexpr.Form.input_form head) (args_to_string args)
  | Abort_check -> "AbortCheck"
  | Abort_poll { stride; site } -> Printf.sprintf "AbortPoll stride=%d site=%d" stride site
  | Mem_acquire op -> Printf.sprintf "MemoryAcquire %s" (operand_to_string op)
  | Mem_release op -> Printf.sprintf "MemoryRelease %s" (operand_to_string op)
  | Copy_value { dst; src } ->
    Printf.sprintf "%s = CopyValue %s" (var_to_string dst) (operand_to_string src)

let jump_to_string j =
  if Array.length j.jargs = 0 then Printf.sprintf "b%d" j.target
  else Printf.sprintf "b%d(%s)" j.target (args_to_string j.jargs)

let term_to_string = function
  | Jump j -> Printf.sprintf "Jump %s" (jump_to_string j)
  | Branch { cond; if_true; if_false } ->
    Printf.sprintf "Branch %s ? %s : %s" (operand_to_string cond)
      (jump_to_string if_true) (jump_to_string if_false)
  | Return op -> Printf.sprintf "Return %s" (operand_to_string op)
  | Unreachable -> "Unreachable"

let block_to_string b =
  let params =
    if Array.length b.bparams = 0 then ""
    else
      Printf.sprintf "(%s)"
        (String.concat ", " (Array.to_list (Array.map var_to_string b.bparams)))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "b%d%s:\n" b.label params);
  List.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "  | %s\n" (instr_to_string i)))
    b.instrs;
  Buffer.add_string buf (Printf.sprintf "  | %s\n" (term_to_string b.term));
  Buffer.contents buf

let func_to_string f =
  let buf = Buffer.create 1024 in
  let sig_ =
    match f.ret_ty with
    | Some ret ->
      Printf.sprintf " : (%s) -> %s"
        (String.concat ", "
           (Array.to_list
              (Array.map
                 (fun v ->
                    match v.vty with
                    | Some t -> Types.to_string t
                    | None -> "?")
                 f.fparams)))
        (Types.to_string ret)
    | None -> ""
  in
  Buffer.add_string buf
    (Printf.sprintf "%s%s  (* inline=%b *)\n" f.fname sig_ f.finline);
  List.iter (fun b -> Buffer.add_string buf (block_to_string b)) f.blocks;
  Buffer.contents buf

let program_to_string p =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s::%s=%s\n" "Main" k v))
    p.pmeta;
  List.iteri
    (fun i f ->
       if i > 0 then Buffer.add_char buf '\n';
       Buffer.add_string buf (func_to_string f))
    p.funcs;
  Buffer.contents buf
