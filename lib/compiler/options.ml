type t = {
  abort_handling : bool;
  inline_level : int;
  kernel_escape : bool;
  opt_level : int;
  static_constants : bool;
  memory_management : bool;
  lint : bool;
  verify_each : bool;
  self_name : string option;
  target_system : string;
  dump_after : string list;
  use_cache : bool;
  loop_opts : bool;
  abort_stride : int;
  profile : bool;
  parallel_loops : bool;
}

let default = {
  abort_handling = true;
  inline_level = 1;
  kernel_escape = false;
  opt_level = 1;
  static_constants = true;
  memory_management = true;
  lint = true;
  verify_each = false;
  self_name = None;
  target_system = "LLVM";
  dump_after = [];
  use_cache = true;
  loop_opts = true;
  abort_stride = 1024;
  profile = false;
  parallel_loops = false;
}

let to_macro_options t =
  [ ("AbortHandling", Wolf_wexpr.Expr.bool t.abort_handling);
    ("TargetSystem", Wolf_wexpr.Expr.str t.target_system);
    ("InlineLevel", Wolf_wexpr.Expr.int t.inline_level) ]

(* Every field participates so that any option change produces a distinct
   compile-cache key. *)
let fingerprint t =
  String.concat ";"
    [ "abort=" ^ string_of_bool t.abort_handling;
      "inline=" ^ string_of_int t.inline_level;
      "escape=" ^ string_of_bool t.kernel_escape;
      "opt=" ^ string_of_int t.opt_level;
      "consts=" ^ string_of_bool t.static_constants;
      "mem=" ^ string_of_bool t.memory_management;
      "lint=" ^ string_of_bool t.lint;
      "verify=" ^ string_of_bool t.verify_each;
      "self=" ^ Option.value ~default:"" t.self_name;
      "target=" ^ t.target_system;
      "dump=" ^ String.concat "," t.dump_after;
      "cache=" ^ string_of_bool t.use_cache;
      "loops=" ^ string_of_bool t.loop_opts;
      "stride=" ^ string_of_int t.abort_stride;
      "profile=" ^ string_of_bool t.profile;
      "parloops=" ^ string_of_bool t.parallel_loops ]
