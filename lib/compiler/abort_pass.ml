open Wir

let run (p : program) =
  List.iter
    (fun f ->
       let cfg = Analysis.build_cfg f in
       let headers = Analysis.loop_headers f cfg in
       let entry_label = (entry f).label in
       (* when the entry block is itself a loop header, the prologue check
          inserted below already runs once per iteration — adding a header
          check too would double it *)
       List.iter
         (fun b ->
            if List.mem b.label headers && b.label <> entry_label then
              b.instrs <- Abort_check :: b.instrs)
         f.blocks;
       let e = entry f in
       (* prologue check after the argument loads *)
       let rec insert_after_loads acc = function
         | (Load_argument _ as i) :: rest -> insert_after_loads (i :: acc) rest
         | rest -> List.rev_append acc (Abort_check :: rest)
       in
       e.instrs <- insert_after_loads [] e.instrs)
    p.funcs
