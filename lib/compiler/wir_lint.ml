(* The original structural SSA lint, kept as a compatibility alias: the
   checks grew into the full verifier ({!Wir_verify}), which subsumes the
   lint (SSA + dominance + jump arity) with type agreement, terminator
   well-formedness and orphan-block detection.  Every call site gets the
   stronger checks. *)

let check_func = Wir_verify.check_func
let check_program = Wir_verify.check_program
let assert_ok = Wir_verify.assert_ok
