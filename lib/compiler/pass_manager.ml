type pass = {
  pass_name : string;
  pass_run : Wir.program -> bool;
}

let mk name run = { pass_name = name; pass_run = run }
let of_unit name run = { pass_name = name; pass_run = (fun prog -> run prog; true) }

type delta = {
  d_instrs_before : int;
  d_instrs_after : int;
  d_blocks_before : int;
  d_blocks_after : int;
}

type stat = {
  st_pass : string;
  st_runs : int;
  st_changed : int;
  st_time : float;
  st_verify : float;
  st_delta : delta option;
}

(* mutable accumulator behind the exposed immutable [stat] *)
type acc = {
  a_pass : string;
  mutable a_runs : int;
  mutable a_changed : int;
  mutable a_time : float;
  mutable a_verify : float;
  mutable a_delta : delta option;
}

type t = {
  lint : bool;
  verify : bool;
  dump_after : string list;
  dump : string -> Wir.program -> unit;
  accs : (string, acc) Hashtbl.t;
  mutable order : string list;          (* reverse first-seen order *)
  mutable timeline : (string * float) list;  (* reverse chronological *)
}

let instr_count (prog : Wir.program) =
  List.fold_left
    (fun n (f : Wir.func) ->
       List.fold_left (fun n (b : Wir.block) -> n + List.length b.Wir.instrs) n f.Wir.blocks)
    0 prog.Wir.funcs

let block_count (prog : Wir.program) =
  List.fold_left (fun n (f : Wir.func) -> n + List.length f.Wir.blocks) 0 prog.Wir.funcs

let default_dump name prog =
  Printf.eprintf "; ---- IR after %s ----\n%s\n%!" name (Wir_print.program_to_string prog)

let create ?(lint = false) ?(verify = false) ?(dump_after = []) ?(dump = default_dump)
    () =
  { lint; verify; dump_after; dump; accs = Hashtbl.create 16; order = [];
    timeline = [] }

(* Registry instruments shared by every pass-manager instance: the central
   place later perf PRs read compile-side costs from.  Created lazily so
   that merely linking the compiler never touches the registry. *)
let m_pass_seconds =
  lazy (Wolf_obs.Metrics.histogram
          ~help:"wall-clock seconds per pass execution" "compile_pass_seconds")

let m_pass_runs =
  lazy (Wolf_obs.Metrics.counter ~help:"pass executions" "compile_pass_runs")

let m_verify_seconds =
  lazy (Wolf_obs.Metrics.histogram
          ~help:"wall-clock seconds per post-pass IR verification"
          "compile_verify_seconds")

let acc_of t name =
  match Hashtbl.find_opt t.accs name with
  | Some a -> a
  | None ->
    let a = { a_pass = name; a_runs = 0; a_changed = 0; a_time = 0.0;
              a_verify = 0.0; a_delta = None } in
    Hashtbl.replace t.accs name a;
    t.order <- name :: t.order;
    a

let wants_dump t name = List.mem name t.dump_after || List.mem "all" t.dump_after

(* Post-pass invariant checking: [lint] and [verify] both run the full
   {!Wir_verify} checker (the lint grew into it); the time is attributed to
   the pass that produced the IR so [--verify-each] overhead is visible in
   the report. *)
let run_check t a name prog =
  if t.lint || t.verify then begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
          let dt = Unix.gettimeofday () -. t0 in
          a.a_verify <- a.a_verify +. dt;
          Wolf_obs.Metrics.observe (Lazy.force m_verify_seconds) dt)
      (fun () ->
         Wolf_obs.Trace.with_span ~cat:"verify" ("verify:" ^ name) (fun () ->
             Wir_verify.assert_ok name prog))
  end

let run_pass t pass prog =
  let a = acc_of t pass.pass_name in
  let ib = instr_count prog and bb = block_count prog in
  let t0 = Unix.gettimeofday () in
  let changed =
    Wolf_obs.Trace.with_span ~cat:"pass" pass.pass_name (fun () ->
        pass.pass_run prog)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Wolf_obs.Metrics.observe (Lazy.force m_pass_seconds) dt;
  Wolf_obs.Metrics.incr (Lazy.force m_pass_runs);
  let ia = instr_count prog and ba = block_count prog in
  a.a_runs <- a.a_runs + 1;
  if changed then a.a_changed <- a.a_changed + 1;
  a.a_time <- a.a_time +. dt;
  a.a_delta <-
    Some
      (match a.a_delta with
       | None ->
         { d_instrs_before = ib; d_instrs_after = ia;
           d_blocks_before = bb; d_blocks_after = ba }
       | Some d -> { d with d_instrs_after = ia; d_blocks_after = ba });
  t.timeline <- (pass.pass_name, dt) :: t.timeline;
  (* a pass reporting no change (corroborated by identical instruction and
     block counts) left the already-verified IR of the previous step in
     place; re-verifying the same structure would only inflate the
     overhead — fixpoint loops end every pass with one unchanged run *)
  if changed || ia <> ib || ba <> bb then run_check t a pass.pass_name prog;
  if wants_dump t pass.pass_name then t.dump pass.pass_name prog;
  changed

let run_list t passes prog = List.iter (fun p -> ignore (run_pass t p prog)) passes

let run_fixpoint ?(budget = 16) t passes prog =
  let any = ref false in
  let budget = ref budget in
  let changed = ref true in
  while !changed && !budget > 0 do
    decr budget;
    changed := false;
    List.iter (fun p -> if run_pass t p prog then changed := true) passes;
    if !changed then any := true
  done;
  !any

let record t name f =
  let a = acc_of t name in
  let t0 = Unix.gettimeofday () in
  let r = Wolf_obs.Trace.with_span ~cat:"stage" name f in
  let dt = Unix.gettimeofday () -. t0 in
  Wolf_obs.Metrics.observe (Lazy.force m_pass_seconds) dt;
  Wolf_obs.Metrics.incr (Lazy.force m_pass_runs);
  a.a_runs <- a.a_runs + 1;
  a.a_time <- a.a_time +. dt;
  t.timeline <- (name, dt) :: t.timeline;
  r

let checkpoint t name prog =
  (* Every verifier run is attributed to exactly one stats row — stage
     boundaries without one (e.g. "lower") get a zero-run row — so the
     per-pass verify column always sums to the verifier total in the
     report footer (asserted by a unit test). *)
  if t.lint || t.verify then run_check t (acc_of t name) name prog;
  if wants_dump t name then t.dump name prog

let stats t =
  List.rev_map
    (fun name ->
       let a = Hashtbl.find t.accs name in
       { st_pass = a.a_pass; st_runs = a.a_runs; st_changed = a.a_changed;
         st_time = a.a_time; st_verify = a.a_verify; st_delta = a.a_delta })
    t.order

let timings t = List.rev t.timeline

(* The one source of truth for report footers: pass seconds and verify
   seconds are disjoint by construction ([run_pass] times the pass body
   only; [run_check] times the verifier only), so the report total is their
   fold over the rows — verify time is counted exactly once, in the verify
   column, never inside the per-pass ms column. *)
type totals = { tot_pass : float; tot_verify : float }

let totals stats =
  List.fold_left
    (fun acc s ->
       { tot_pass = acc.tot_pass +. s.st_time;
         tot_verify = acc.tot_verify +. s.st_verify })
    { tot_pass = 0.0; tot_verify = 0.0 }
    stats

let stats_to_string stats =
  let b = Buffer.create 512 in
  let verifying = List.exists (fun s -> s.st_verify > 0.0) stats in
  Buffer.add_string b
    (Printf.sprintf "%-24s %5s %8s %10s%s %14s %12s\n" "pass" "runs" "changed" "ms"
       (if verifying then Printf.sprintf " %10s" "verify-ms" else "")
       "instrs" "blocks");
  List.iter
    (fun s ->
       let instrs, blocks =
         match s.st_delta with
         | None -> ("-", "-")
         | Some d ->
           ( Printf.sprintf "%d->%d" d.d_instrs_before d.d_instrs_after,
             Printf.sprintf "%d->%d" d.d_blocks_before d.d_blocks_after )
       in
       Buffer.add_string b
         (Printf.sprintf "%-24s %5d %8d %10.3f%s %14s %12s\n" s.st_pass s.st_runs
            s.st_changed (s.st_time *. 1e3)
            (if verifying then Printf.sprintf " %10.3f" (s.st_verify *. 1e3) else "")
            instrs blocks))
    stats;
  let t = totals stats in
  Buffer.add_string b
    (Printf.sprintf "%-24s %5s %8s %10.3f%s\n" "total" "" ""
       (t.tot_pass *. 1e3)
       (if verifying then Printf.sprintf " %10.3f" (t.tot_verify *. 1e3) else ""));
  if verifying then
    Buffer.add_string b
      (Printf.sprintf
         "verifier total: %.3fms over %.3fms of passes (%.1f%% overhead)\n"
         (t.tot_verify *. 1e3) (t.tot_pass *. 1e3)
         (if t.tot_pass > 0.0 then 100.0 *. t.tot_verify /. t.tot_pass else 0.0));
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let stats_to_json stats =
  let field_list s =
    let base =
      [ Printf.sprintf "\"pass\":\"%s\"" (json_escape s.st_pass);
        Printf.sprintf "\"runs\":%d" s.st_runs;
        Printf.sprintf "\"changed\":%d" s.st_changed;
        Printf.sprintf "\"seconds\":%.6f" s.st_time;
        Printf.sprintf "\"verify_seconds\":%.6f" s.st_verify ]
    in
    match s.st_delta with
    | None -> base
    | Some d ->
      base
      @ [ Printf.sprintf "\"instrs_before\":%d" d.d_instrs_before;
          Printf.sprintf "\"instrs_after\":%d" d.d_instrs_after;
          Printf.sprintf "\"blocks_before\":%d" d.d_blocks_before;
          Printf.sprintf "\"blocks_after\":%d" d.d_blocks_after ]
  in
  "["
  ^ String.concat ","
      (List.map (fun s -> "{" ^ String.concat "," (field_list s) ^ "}") stats)
  ^ "]"
