open Wir

type cfg = {
  order : int array;
  preds : (int, int list) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;
  idom : (int, int) Hashtbl.t;
}

let build_cfg f =
  let succs = Hashtbl.create 16 and preds = Hashtbl.create 16 in
  List.iter
    (fun b ->
       let ss = successors b.term in
       Hashtbl.replace succs b.label ss;
       List.iter
         (fun s ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt preds s) in
            Hashtbl.replace preds s (b.label :: cur))
         ss)
    f.blocks;
  List.iter
    (fun b ->
       if not (Hashtbl.mem preds b.label) then Hashtbl.replace preds b.label [])
    f.blocks;
  (* reverse postorder from entry *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter dfs (Option.value ~default:[] (Hashtbl.find_opt succs l));
      post := l :: !post
    end
  in
  let entry_label = (entry f).label in
  dfs entry_label;
  let order = Array.of_list !post in
  (* Cooper–Harvey–Kennedy iterative dominators *)
  let rpo_index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace rpo_index l i) order;
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom entry_label entry_label;
  let intersect a b =
    let rec go a b =
      if a = b then a
      else begin
        let ia = Hashtbl.find rpo_index a and ib = Hashtbl.find rpo_index b in
        if ia > ib then go (Hashtbl.find idom a) b
        else go a (Hashtbl.find idom b)
      end
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun l ->
         if l <> entry_label then begin
           let ps =
             List.filter (Hashtbl.mem idom) (Hashtbl.find preds l)
             |> List.filter (Hashtbl.mem rpo_index)
           in
           match ps with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if Hashtbl.find_opt idom l <> Some new_idom then begin
               Hashtbl.replace idom l new_idom;
               changed := true
             end
           end)
      order
  done;
  { order; preds; succs; idom }

let dominates cfg a b =
  (* does a dominate b? *)
  let rec go b =
    if a = b then true
    else
      match Hashtbl.find_opt cfg.idom b with
      | Some d when d <> b -> go d
      | _ -> false
  in
  go b

let loop_headers f cfg =
  let headers = Hashtbl.create 8 in
  List.iter
    (fun b ->
       List.iter
         (fun succ -> if dominates cfg succ b.label then Hashtbl.replace headers succ ())
         (successors b.term))
    f.blocks;
  Hashtbl.fold (fun l () acc -> l :: acc) headers []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Natural loops (paper §4.5's loop obligations; used by the loop
   optimisation layer).  A back edge src -> hdr has [hdr] dominating [src];
   the loop body is everything that reaches a latch without passing the
   header. *)

type loop = {
  lheader : int;
  latches : int list;      (* back-edge sources, sorted *)
  lbody : int list;        (* body labels including the header, sorted *)
  ldepth : int;            (* nesting depth, 1 = outermost *)
}

let natural_loops f cfg =
  (* back edges, grouped by header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun b ->
       if Hashtbl.mem cfg.idom b.label then
         List.iter
           (fun succ ->
              if dominates cfg succ b.label then begin
                let cur = Option.value ~default:[] (Hashtbl.find_opt by_header succ) in
                Hashtbl.replace by_header succ (b.label :: cur)
              end)
           (successors b.term))
    f.blocks;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
         (* backward walk from the latches, stopping at the header *)
         let body = Hashtbl.create 8 in
         Hashtbl.replace body header ();
         let rec walk l =
           if not (Hashtbl.mem body l) then begin
             Hashtbl.replace body l ();
             List.iter
               (fun p -> if Hashtbl.mem cfg.idom p then walk p)
               (Option.value ~default:[] (Hashtbl.find_opt cfg.preds l))
           end
         in
         List.iter walk latches;
         let lbody = Hashtbl.fold (fun l () acc -> l :: acc) body [] |> List.sort compare in
         { lheader = header; latches = List.sort compare latches; lbody; ldepth = 0 }
         :: acc)
      by_header []
  in
  (* depth = number of loops whose body contains this header *)
  let loops =
    List.map
      (fun l ->
         let d =
           List.length (List.filter (fun m -> List.mem l.lheader m.lbody) loops)
         in
         { l with ldepth = d })
      loops
  in
  List.sort (fun a b -> compare a.lheader b.lheader) loops

let loop_contains l label = List.mem label l.lbody

let innermost loops l =
  (* no distinct loop is nested inside l *)
  not (List.exists (fun m -> m.lheader <> l.lheader && loop_contains l m.lheader) loops)

(* Ensure the loop at [header] has a preheader: a block outside the loop
   that is the unique non-latch predecessor of the header and ends in an
   unconditional jump to it.  Reuses an existing block when one qualifies;
   otherwise splits the entry edges with a fresh block whose parameters
   mirror the header's.  The caller must not pass the entry block (it has no
   incoming entry edges to split). *)
let ensure_preheader f ~header ~latches =
  let hdr = find_block f header in
  let preds =
    List.filter (fun b -> List.mem header (successors b.term)) f.blocks
  in
  let entry_preds = List.filter (fun b -> not (List.mem b.label latches)) preds in
  match entry_preds with
  | [ p ] when (match p.term with
                | Jump { target; _ } -> target = header
                | _ -> false) ->
    p.label
  | _ ->
    let fresh_label =
      1 + List.fold_left (fun acc b -> max acc b.label) 0 f.blocks
    in
    let params =
      Array.map (fun v -> fresh_var ~name:v.vname ?ty:v.vty ()) hdr.bparams
    in
    let pre =
      { label = fresh_label;
        bparams = params;
        instrs = [];
        term = Jump { target = header; jargs = Array.map (fun v -> Ovar v) params } }
    in
    List.iter
      (fun p ->
         let retarget (j : jump) =
           if j.target = header then { j with target = fresh_label } else j
         in
         p.term <-
           (match p.term with
            | Jump j -> Jump (retarget j)
            | Branch { cond; if_true; if_false } ->
              Branch { cond; if_true = retarget if_true; if_false = retarget if_false }
            | (Return _ | Unreachable) as t -> t))
      entry_preds;
    (* insert just before the header for readable dumps; entry stays first *)
    let rec insert = function
      | [] -> [ pre ]
      | b :: rest when b.label = header -> pre :: b :: rest
      | b :: rest -> b :: insert rest
    in
    f.blocks <- insert f.blocks;
    fresh_label

(* ---- small SSA utilities shared by the loop passes ---- *)

let def_table f =
  let t = Hashtbl.create 64 in
  List.iter
    (fun b ->
       List.iter
         (fun i -> List.iter (fun v -> Hashtbl.replace t v.vid i) (instr_defs i))
         b.instrs)
    f.blocks;
  t

(* Follow SSA Copy chains to the root variable (value-preserving; the depth
   bound guards against un-linted cyclic input). *)
let chase_copies defs v =
  let rec go (v : var) depth =
    if depth > 8 then v
    else
      match Hashtbl.find_opt defs v.vid with
      | Some (Copy { src = Ovar u; _ }) -> go u (depth + 1)
      | _ -> v
  in
  go v 0

let resolved_def defs v = Hashtbl.find_opt defs (chase_copies defs v).vid

let incoming_jumps f label =
  List.concat_map
    (fun b ->
       let js =
         match b.term with
         | Jump j -> [ (b.label, j) ]
         | Branch { if_true; if_false; _ } -> [ (b.label, if_true); (b.label, if_false) ]
         | Return _ | Unreachable -> []
       in
       List.filter (fun (_, j) -> j.target = label) js)
    f.blocks

(* Does every value reaching position [pos] of [label] over non-latch edges
   come from an integer constant >= [bound]?  Follows forwarding block
   parameters (e.g. a preheader introduced by LICM) a bounded number of
   steps. *)
let rec entry_consts_ge f ~latches ~label ~pos ~bound ~depth =
  depth < 3
  && List.for_all
       (fun (src, (j : jump)) ->
          List.mem src latches
          || (match j.jargs.(pos) with
              | Oconst (Cint k) -> k >= bound
              | Oconst _ -> false
              | Ovar v ->
                let src_block = find_block f src in
                (match
                   Array.to_list src_block.bparams
                   |> List.mapi (fun q p -> (q, p))
                   |> List.find_opt (fun (_, p) -> p.vid = v.vid)
                 with
                 | Some (q, _) ->
                   (* forwarded parameter: check the forwarder's own edges *)
                   entry_consts_ge f ~latches:[] ~label:src ~pos:q ~bound
                     ~depth:(depth + 1)
                 | None -> false)))
       (incoming_jumps f label)

let op_var_ids ops =
  List.filter_map (function Ovar v -> Some v.vid | Oconst _ -> None) ops

let liveness f =
  let cfg = build_cfg f in
  let live_in : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let live_out_t : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
       Hashtbl.replace live_in b.label (Hashtbl.create 8);
       Hashtbl.replace live_out_t b.label (Hashtbl.create 8))
    f.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate blocks in postorder (reverse of rpo) for fast convergence *)
    for i = Array.length cfg.order - 1 downto 0 do
      let l = cfg.order.(i) in
      let b = Wir.find_block f l in
      let out = Hashtbl.find live_out_t l in
      List.iter
        (fun s ->
           match Hashtbl.find_opt live_in s with
           | Some si ->
             Hashtbl.iter
               (fun v () ->
                  if not (Hashtbl.mem out v) then begin
                    Hashtbl.replace out v ();
                    changed := true
                  end)
               si
           | None -> ())
        (Hashtbl.find cfg.succs l);
      (* in = (out - defs) + uses, walking instructions backwards *)
      let live = Hashtbl.copy out in
      List.iter (fun v -> Hashtbl.replace live v ()) (op_var_ids (term_uses b.term));
      List.iter
        (fun i ->
           List.iter (fun v -> Hashtbl.remove live v.vid) (instr_defs i);
           List.iter (fun v -> Hashtbl.replace live v ()) (op_var_ids (instr_uses i)))
        (List.rev b.instrs);
      Array.iter (fun v -> Hashtbl.remove live v.vid) b.bparams;
      let inn = Hashtbl.find live_in l in
      Hashtbl.iter
        (fun v () ->
           if not (Hashtbl.mem inn v) then begin
             Hashtbl.replace inn v ();
             changed := true
           end)
        live
    done
  done;
  (live_in, live_out_t)

let live_out f = snd (liveness f)
let live_in f = fst (liveness f)

let use_counts f =
  let counts = Hashtbl.create 64 in
  let bump op =
    match op with
    | Ovar v ->
      Hashtbl.replace counts v.vid (1 + Option.value ~default:0 (Hashtbl.find_opt counts v.vid))
    | Oconst _ -> ()
  in
  List.iter
    (fun b ->
       List.iter (fun i -> List.iter bump (instr_uses i)) b.instrs;
       List.iter bump (term_uses b.term))
    f.blocks;
  counts
