open Wolf_wexpr

type var = {
  vid : int;
  vname : string;
  mutable vty : Types.t option;
}

type const =
  | Cvoid
  | Cint of int
  | Creal of float
  | Cbool of bool
  | Cstr of string
  | Cexpr of Expr.t

type operand =
  | Ovar of var
  | Oconst of const

type callee =
  | Prim of string
  | Resolved of { base : string; mangled : string }
  | Func of string
  | Indirect of operand

type instr =
  | Load_argument of { dst : var; index : int }
  | Copy of { dst : var; src : operand }
  | Call of { dst : var; callee : callee; args : operand array }
  | New_closure of { dst : var; fname : string; captured : operand array }
  | Kernel_call of { dst : var; head : Expr.t; args : operand array }
  | Abort_check
  | Abort_poll of { stride : int; site : int }
  | Mem_acquire of operand
  | Mem_release of operand
  | Copy_value of { dst : var; src : operand }

type jump = { target : int; jargs : operand array }

type terminator =
  | Jump of jump
  | Branch of { cond : operand; if_true : jump; if_false : jump }
  | Return of operand
  | Unreachable

type block = {
  label : int;
  mutable bparams : var array;
  mutable instrs : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  mutable fparams : var array;
  mutable ret_ty : Types.t option;
  mutable blocks : block list;
  mutable finline : bool;
  mutable fsource : Expr.t option;
}

type program = {
  mutable funcs : func list;
  mutable pmeta : (string * string) list;
}

(* SSA variable ids come from one atomic process-wide supply: ids are unique
   across every compilation on every domain, so concurrently-built functions
   can never alias each other's variables.  The old [reset_var_counter]
   (rewinding this supply between compilations) is gone — resetting a shared
   supply while another domain is lowering would hand out duplicate vids;
   callers that want small per-compilation numbering renumber at print time
   instead (see Wir_print). *)
let var_counter = Wolf_base.Id_gen.create ()

let fresh_var ?(name = "v") ?ty () =
  { vid = Wolf_base.Id_gen.next var_counter; vname = name; vty = ty }

let const_ty = function
  | Cvoid -> Types.void
  | Cint _ -> Types.int64
  | Creal _ -> Types.real64
  | Cbool _ -> Types.boolean
  | Cstr _ -> Types.string_
  | Cexpr (Expr.Tensor t) ->
    Types.packed (if Tensor.is_int t then Types.int64 else Types.real64) (Tensor.rank t)
  | Cexpr _ -> Types.expression

let operand_ty = function
  | Ovar v -> v.vty
  | Oconst c -> Some (const_ty c)

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "Wir.entry: empty function"

let find_block f label =
  match List.find_opt (fun b -> b.label = label) f.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Wir.find_block: no block %d in %s" label f.fname)

let find_func p name = List.find_opt (fun f -> String.equal f.fname name) p.funcs

let main p =
  match p.funcs with
  | f :: _ -> f
  | [] -> invalid_arg "Wir.main: empty program"

let instr_defs = function
  | Load_argument { dst; _ } | Copy { dst; _ } | Call { dst; _ }
  | New_closure { dst; _ } | Kernel_call { dst; _ } | Copy_value { dst; _ } ->
    [ dst ]
  | Abort_check | Abort_poll _ | Mem_acquire _ | Mem_release _ -> []

let instr_uses = function
  | Load_argument _ | Abort_check | Abort_poll _ -> []
  | Copy { src; _ } | Copy_value { src; _ } -> [ src ]
  | Call { callee; args; _ } ->
    let base = Array.to_list args in
    (match callee with Indirect op -> op :: base | Prim _ | Resolved _ | Func _ -> base)
  | New_closure { captured; _ } -> Array.to_list captured
  | Kernel_call { args; _ } -> Array.to_list args
  | Mem_acquire op | Mem_release op -> [ op ]

let jump_uses j = Array.to_list j.jargs

let term_uses = function
  | Jump j -> jump_uses j
  | Branch { cond; if_true; if_false } -> cond :: (jump_uses if_true @ jump_uses if_false)
  | Return op -> [ op ]
  | Unreachable -> []

let successors = function
  | Jump j -> [ j.target ]
  | Branch { if_true; if_false; _ } ->
    if if_true.target = if_false.target then [ if_true.target ]
    else [ if_true.target; if_false.target ]
  | Return _ | Unreachable -> []

let map_instr_operands f = function
  | Load_argument _ as i -> i
  | (Abort_check | Abort_poll _) as i -> i
  | Copy { dst; src } -> Copy { dst; src = f src }
  | Copy_value { dst; src } -> Copy_value { dst; src = f src }
  | Call { dst; callee; args } ->
    let callee = match callee with
      | Indirect op -> Indirect (f op)
      | (Prim _ | Resolved _ | Func _) as c -> c
    in
    Call { dst; callee; args = Array.map f args }
  | New_closure { dst; fname; captured } ->
    New_closure { dst; fname; captured = Array.map f captured }
  | Kernel_call { dst; head; args } -> Kernel_call { dst; head; args = Array.map f args }
  | Mem_acquire op -> Mem_acquire (f op)
  | Mem_release op -> Mem_release (f op)

let map_jump f j = { j with jargs = Array.map f j.jargs }

let map_term_operands f = function
  | Jump j -> Jump (map_jump f j)
  | Branch { cond; if_true; if_false } ->
    Branch { cond = f cond; if_true = map_jump f if_true; if_false = map_jump f if_false }
  | Return op -> Return (f op)
  | Unreachable -> Unreachable

let iter_vars func f =
  Array.iter f func.fparams;
  List.iter
    (fun b ->
       Array.iter f b.bparams;
       List.iter (fun i -> List.iter f (instr_defs i)) b.instrs)
    func.blocks
