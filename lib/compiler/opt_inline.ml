open Wir

let func_size f =
  List.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 f.blocks

let calls_func f name =
  List.exists
    (fun b ->
       List.exists
         (fun i -> match i with Call { callee = Func n; _ } -> n = name | _ -> false)
         b.instrs)
    f.blocks

(* Clone a callee body for splicing: fresh variables and labels. *)
let clone_for_inline (callee : func) ~label_base =
  let var_map : (int, var) Hashtbl.t = Hashtbl.create 32 in
  let label_map : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i b -> Hashtbl.replace label_map b.label (label_base + i))
    callee.blocks;
  let clone_var v =
    match Hashtbl.find_opt var_map v.vid with
    | Some w -> w
    | None ->
      let w = fresh_var ~name:v.vname ?ty:v.vty () in
      Hashtbl.replace var_map v.vid w;
      w
  in
  let clone_op = function
    | Ovar v -> Ovar (clone_var v)
    | Oconst c -> Oconst c
  in
  let clone_jump j =
    { target = Hashtbl.find label_map j.target; jargs = Array.map clone_op j.jargs }
  in
  let clone_instr i =
    match i with
    | Load_argument { dst; index } -> Load_argument { dst = clone_var dst; index }
    | Copy { dst; src } -> Copy { dst = clone_var dst; src = clone_op src }
    | Copy_value { dst; src } -> Copy_value { dst = clone_var dst; src = clone_op src }
    | Call { dst; callee; args } ->
      let callee = match callee with
        | Indirect op -> Indirect (clone_op op)
        | c -> c
      in
      Call { dst = clone_var dst; callee; args = Array.map clone_op args }
    | New_closure { dst; fname; captured } ->
      New_closure { dst = clone_var dst; fname; captured = Array.map clone_op captured }
    | Kernel_call { dst; head; args } ->
      Kernel_call { dst = clone_var dst; head; args = Array.map clone_op args }
    | Abort_check -> Abort_check
    | Abort_poll _ as i -> i
    | Mem_acquire op -> Mem_acquire (clone_op op)
    | Mem_release op -> Mem_release (clone_op op)
  in
  let blocks =
    List.map
      (fun b ->
         {
           label = Hashtbl.find label_map b.label;
           bparams = Array.map clone_var b.bparams;
           instrs = List.map clone_instr b.instrs;
           term =
             (match b.term with
              | Jump j -> Jump (clone_jump j)
              | Branch { cond; if_true; if_false } ->
                Branch
                  { cond = clone_op cond;
                    if_true = clone_jump if_true;
                    if_false = clone_jump if_false }
              | Return op -> Return (clone_op op)
              | Unreachable -> Unreachable);
         })
      callee.blocks
  in
  (blocks, var_map)

let next_label f =
  List.fold_left (fun acc b -> max acc b.label) 0 f.blocks + 1

(* Inline the first eligible call found in [f]; true if one was inlined. *)
let inline_one (p : program) ~max_instrs (f : func) =
  let eligible name =
    match Wir.find_func p name with
    | Some callee ->
      if callee.fname = f.fname then None
      else if not callee.finline then None
      else if func_size callee > max_instrs then None
      else if calls_func callee callee.fname || calls_func callee f.fname then None
      else Some callee
    | None -> None
  in
  let found = ref false in
  let blocks_snapshot = f.blocks in
  List.iter
    (fun b ->
       if not !found then begin
         let rec split acc = function
           | [] -> ()
           | (Call { dst; callee = Func name; args } as i) :: rest ->
             (match eligible name with
              | Some callee ->
                found := true;
                let base = next_label f in
                let cloned, _ = clone_for_inline callee ~label_base:base in
                (* continuation block receives the return value as parameter *)
                let cont_label = base + List.length cloned in
                let cont =
                  { label = cont_label; bparams = [| dst |]; instrs = rest; term = b.term }
                in
                (* returns in cloned blocks jump to cont; argument loads copy *)
                let cloned =
                  List.map
                    (fun cb ->
                       cb.instrs <-
                         List.map
                           (fun ci ->
                              match ci with
                              | Load_argument { dst; index } when index < Array.length args ->
                                Copy { dst; src = args.(index) }
                              | ci -> ci)
                           cb.instrs;
                       (match cb.term with
                        | Return op ->
                          cb.term <- Jump { target = cont_label; jargs = [| op |] }
                        | _ -> ());
                       cb)
                    cloned
                in
                b.instrs <- List.rev acc;
                (match cloned with
                 | first :: _ ->
                   b.term <- Jump { target = first.label; jargs = [||] }
                 | [] -> ());
                f.blocks <- f.blocks @ cloned @ [ cont ]
              | None -> split (i :: acc) rest)
           | i :: rest -> split (i :: acc) rest
         in
         split [] b.instrs
       end)
    blocks_snapshot;
  !found

let run ~max_instrs (p : program) =
  let changed = ref false in
  List.iter
    (fun f ->
       let budget = ref 64 in
       while !budget > 0 && inline_one p ~max_instrs f do
         changed := true;
         decr budget
       done)
    p.funcs;
  !changed
