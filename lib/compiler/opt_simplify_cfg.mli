(** CFG clean-up (the paper's dead-branch deletion and basic-block fusion):
    unreachable blocks are dropped, single-predecessor blocks are fused into
    that predecessor when it ends in an unconditional jump, and trivial
    forwarding blocks are threaded. *)

val run : Wir.program -> bool

val drop_unreachable : Wir.func -> bool
(** Delete blocks unreachable from the entry; true when any were dropped.
    Exposed so passes that rewrite terminators (e.g. {!Opt_fold} turning a
    constant branch into a jump) can restore the verifier's no-orphan
    invariant without waiting for the next simplify-cfg run. *)
