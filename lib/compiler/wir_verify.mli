(** The full WIR/TWIR verifier (ISSUE 3; MLIR-style IR contracts as
    checkable invariants).

    Grown out of the original structural SSA lint, this module checks every
    invariant the passes and backends rely on:

    {ol
    {- {b Structure}: non-empty block list, unique block labels, unique SSA
       definitions, jump targets exist, the entry block has no parameters
       and is never a jump target, [Load_argument] appears only in the entry
       block with an in-range index.}
    {- {b Dominance}: every use of an SSA variable is dominated by its
       definition (computed as a definite-assignment dataflow over the
       reachable CFG, which coincides with dominance for block-argument
       SSA).}
    {- {b Jump agreement}: every jump passes exactly as many arguments as
       the target declares parameters, and each argument's type agrees with
       the parameter's type wherever both are ground.}
    {- {b TWIR types}: [Copy]/[Copy_value] source and destination agree,
       branch conditions are Boolean, [Return] operands agree with the
       function's return type, [Load_argument] destinations agree with the
       declared parameter types — all modulo gradual typing: a check only
       fires when both sides carry ground types, because passes may
       introduce untyped instructions and re-run inference (paper §4.5).}
    {- {b Terminators}: every reachable block ends in a well-formed
       terminator (this is structural in the IR type, but arm agreement and
       operand types are checked here).}
    {- {b No orphans}: every block is reachable from the entry block.}
    {- {b Program level}: [Func] callees and [New_closure] targets resolve
       to program functions, and call arity matches the callee's parameter
       count.}}

    The verifier is pure: it never mutates the program and reports every
    violation it finds (not just the first), each prefixed with the
    function and block. *)

val check_func : Wir.func -> (unit, string list) result

val check_program : Wir.program -> (unit, string list) result

val assert_ok : string -> Wir.program -> unit
(** Raise [Wolf_base.Errors.Compile_error] naming [pass] when
    [check_program] fails — the hook {!Pass_manager} runs after every pass
    under [--verify-each] so a pass that breaks an invariant is named in
    the error. *)
