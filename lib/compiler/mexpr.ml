open Wolf_wexpr

type t = { id : int; desc : desc }

and desc =
  | Atom of Expr.t
  | Node of t * t array

let counter = Wolf_base.Id_gen.create ()

(* Node properties live in a process-global side table (node ids are globally
   unique, so entries from concurrent compilations never collide); the table
   itself still needs a lock because Hashtbl reads race resizes. *)
let meta : (int, (string * string) list) Hashtbl.t = Hashtbl.create 256
let meta_lock = Mutex.create ()

let[@inline] locked f =
  Mutex.lock meta_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock meta_lock) f

let atom e = { id = Wolf_base.Id_gen.next counter; desc = Atom e }
let node h args = { id = Wolf_base.Id_gen.next counter; desc = Node (h, args) }

let rec of_expr e =
  match e with
  | Expr.Normal (h, args) -> node (of_expr h) (Array.map of_expr args)
  | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Sym _ | Expr.Tensor _ ->
    atom e

let rec to_expr m =
  match m.desc with
  | Atom e -> e
  | Node (h, args) -> Expr.Normal (to_expr h, Array.map to_expr args)

let set_prop m key value =
  locked (fun () ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt meta m.id) in
      Hashtbl.replace meta m.id ((key, value) :: List.remove_assoc key existing))

let get_prop m key =
  locked (fun () ->
      Option.bind (Hashtbl.find_opt meta m.id) (List.assoc_opt key))

let props m =
  locked (fun () -> Option.value ~default:[] (Hashtbl.find_opt meta m.id))

let rec visit ~pre ?post m =
  pre m;
  (match m.desc with
   | Atom _ -> ()
   | Node (h, args) ->
     visit ~pre ?post h;
     Array.iter (visit ~pre ?post) args);
  match post with
  | Some f -> f m
  | None -> ()

let rec map f m =
  let rewritten =
    match m.desc with
    | Atom _ -> m
    | Node (h, args) ->
      let h' = map f h in
      let args' = Array.map (map f) args in
      if h' == h && Array.for_all2 ( == ) args' args then m else node h' args'
  in
  match f rewritten with
  | Some m' -> m'
  | None -> rewritten

let to_string m = Form.input_form (to_expr m)
