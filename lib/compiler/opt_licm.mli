(** Loop-invariant code motion into preheaders, plus bounds-check
    elimination for induction-variable accesses provably within
    [Length]/[StringLength] (rewritten to the [_unchecked] primitives).
    Runs in the -O1+ fixpoint when [Options.loop_opts] is set. *)

val run : Wir.program -> bool
