(** The IR linter the paper mentions (§4.3 footnote): checks that the SSA
    property is maintained by every pass — each variable defined exactly
    once, every use dominated by its definition, jump arities matching block
    parameters, and no dangling block references.

    The lint has since grown into the full verifier, {!Wir_verify}; this
    module is a compatibility alias that applies the complete invariant
    set (structure, dominance, jump arity {e and} types, terminator
    well-formedness, orphan blocks). *)

val check_func : Wir.func -> (unit, string list) result
val check_program : Wir.program -> (unit, string list) result

val assert_ok : string -> Wir.program -> unit
(** @raise Wolf_base.Errors.Compile_error listing violations, prefixed with
    the pass name that produced the IR. *)
