(** Content-addressed on-disk artifact store — the persistent layer under
    {!Compile_cache}.

    Keys are the same fingerprints as the in-memory cache ({!Compile_cache.key}:
    source FullForm + every {!Options.t} field + target), so opt-level and
    --profile variants cannot collide.  One artifact per file under
    [<dir>/objects/], published by write-to-temp + rename: a concurrent or
    crashed writer can never expose a torn artifact — readers see the old
    entry or a clean miss.  Destructive phases (eviction, clear, verify
    [~fix]) take an fcntl lock on [<dir>/lock] so concurrent [wolfd]
    workers can share one cache directory; an in-process mutex backs the
    fcntl lock up (fcntl does not exclude threads of one process).

    Payloads are caller-marshaled bytes.  Marshal is not type-safe across
    differing binaries, so every entry records a digest of the writing
    executable; a mismatch reads as a clean miss (the entry stays for the
    binary that wrote it, until eviction).  Corrupt entries (bad magic,
    torn payload, digest mismatch) are deleted on sight and counted in
    [errors]. *)

type t

type stats = {
  lookups : int;
  hits : int;
  misses : int;    (** includes stale entries written by other binaries *)
  writes : int;
  evictions : int;
  errors : int;    (** corrupt entries and failed writes *)
  entries : int;   (** live artifacts + blobs on disk (scanned fresh) *)
  bytes : int;     (** their total size *)
}

val default_dir : unit -> string
(** [$WOLFC_CACHE_DIR], else [$XDG_CACHE_HOME/wolfc], else
    [~/.cache/wolfc], else a temp-dir fallback. *)

val open_dir : ?budget_bytes:int -> string -> t
(** Open (creating if needed) a cache directory.  [budget_bytes]
    (default 256 MiB) bounds artifacts + blobs together; crossing it
    triggers oldest-first eviction after the next store. *)

val dir : t -> string

val load : t -> key:string -> kind:string -> string option
(** Payload bytes for [(key, kind)], or [None].  [kind] names the artifact
    family ("wvm", "jit", …) so one fingerprint can carry several artifact
    shapes.  A hit refreshes the entry's mtime (eviction is ~LRU). *)

val store : t -> key:string -> kind:string -> string -> unit
(** Publish atomically, then evict if over budget.  Best-effort: a full
    disk or permission error counts in [errors] and is otherwise silent —
    the cache must never fail a compile. *)

val ensure_blob : t -> name:string -> digest:string -> string -> string option
(** [ensure_blob t ~name ~digest data] guarantees [<dir>/blobs/<name>]
    exists with content matching [digest] (hex MD5), writing [data]
    atomically if absent or mismatched, and returns its path.  For
    artifacts that must live as real files — dynlinked [.cmxs] images are
    revalidated by content hash here on every reuse. *)

val blob_path : t -> name:string -> string

val stats : t -> stats

val clear : t -> int
(** Remove every artifact, blob and temp file; returns the count. *)

val verify : ?fix:bool -> t -> int * (string * string) list
(** Full integrity walk: magic, header, payload digest of every entry.
    Returns (intact count, [(path, problem)] list); [~fix:true] deletes
    the offenders.  Entries from other binaries count as intact. *)

val register_metrics : ?prefix:string -> t -> unit
(** Pull-time {!Wolf_obs.Metrics} source (default prefix ["disk_cache"]):
    [<prefix>_{lookups,hits,misses,writes,evictions,errors}] counters and
    [<prefix>_{entries,bytes}] gauges. *)

val fault_before_rename : (unit -> unit) ref
(** Test hook, called between completing a temp file and the rename that
    publishes it.  Raising simulates a writer killed mid-publish. *)
