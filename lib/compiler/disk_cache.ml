(* Content-addressed on-disk artifact store under the compile cache.

   The in-memory cache dies with the process; wolfd workers and repeated
   wolfc runs should never recompile what any previous process already
   built.  Entries are keyed by the same fingerprint as the in-memory
   layer (Compile_cache.key — source FullForm + every Options field +
   target), so --profile / opt-level variants cannot collide.

   Layout:
     <dir>/objects/<k2>/<key>.<kind>   one artifact per file
     <dir>/blobs/<name>               side blobs (dynlinkable .cmxs images)
     <dir>/lock                       fcntl lock for cross-process phases

   Crash safety is write-to-temp + rename: a reader either sees the old
   complete entry or a clean miss, never a torn artifact; a writer that
   dies before rename leaves only a tmp.* file that the next eviction or
   clear sweeps.  Concurrent processes sharing one directory coordinate
   destructive phases (eviction, clear, verify --fix) through an fcntl
   region lock on <dir>/lock; fcntl locks are per-process, so an
   in-process mutex backs it up.

   Entry format: an 8-byte magic, a marshaled header carrying the format
   version, a digest of the writing executable, the kind and the payload
   digest/length, then the payload bytes.  The payload itself is
   Marshal-encoded by the caller, which is not type-safe across differing
   binaries — hence the executable digest: an entry written by another
   build reads back as a clean miss, never as a segfault. *)

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  errors : int;      (** corrupt/unreadable entries encountered *)
  entries : int;     (** on-disk artifact count (scanned at read time) *)
  bytes : int;       (** on-disk artifact + blob bytes *)
}

type t = {
  dir : string;
  budget_bytes : int;
  exe_digest : string;
  mu : Mutex.t;                  (* backs up the per-process fcntl lock *)
  c_lookups : int Atomic.t;
  c_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_writes : int Atomic.t;
  c_evictions : int Atomic.t;
  c_errors : int Atomic.t;
}

let magic = "WOLFDC1\n"
let format_version = 1

type header = {
  h_version : int;
  h_exe : string;
  h_kind : string;
  h_digest : string;
  h_len : int;
}

(* test fault point: called after the temp file is complete, immediately
   before the rename that publishes it — raising here simulates a writer
   killed mid-publish (satellite: crash-safety coverage) *)
let fault_before_rename : (unit -> unit) ref = ref (fun () -> ())

let exe_digest_memo = Mutex.create ()
let exe_digest_v = ref None

let exe_digest () =
  Mutex.lock exe_digest_memo;
  let d =
    match !exe_digest_v with
    | Some d -> d
    | None ->
      let d =
        try Digest.to_hex (Digest.file Sys.executable_name)
        with _ -> "unknown-executable"
      in
      exe_digest_v := Some d;
      d
  in
  Mutex.unlock exe_digest_memo;
  d

let mkdir_p path =
  let rec go p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      (try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go path

let objects_dir t = Filename.concat t.dir "objects"
let blobs_dir t = Filename.concat t.dir "blobs"
let lock_path t = Filename.concat t.dir "lock"

let default_dir () =
  match Sys.getenv_opt "WOLFC_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ ->
    let base =
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> d
      | _ ->
        (match Sys.getenv_opt "HOME" with
         | Some h when h <> "" -> Filename.concat h ".cache"
         | _ -> Filename.get_temp_dir_name ())
    in
    Filename.concat base "wolfc"

let open_dir ?(budget_bytes = 256 * 1024 * 1024) dir =
  let t =
    { dir; budget_bytes = max 1 budget_bytes; exe_digest = exe_digest ();
      mu = Mutex.create ();
      c_lookups = Atomic.make 0; c_hits = Atomic.make 0;
      c_misses = Atomic.make 0; c_writes = Atomic.make 0;
      c_evictions = Atomic.make 0; c_errors = Atomic.make 0 }
  in
  mkdir_p (objects_dir t);
  mkdir_p (blobs_dir t);
  (* create the lock file eagerly so with_flock never races mkdir *)
  (try Unix.close (Unix.openfile (lock_path t) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644)
   with _ -> ());
  t

let dir t = t.dir

(* fcntl whole-file lock around destructive phases; fcntl locks do not
   exclude threads of the same process, so pair with the mutex *)
let with_flock t f =
  Mutex.lock t.mu;
  let fd =
    try Some (Unix.openfile (lock_path t) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644)
    with _ -> None
  in
  let unlock () =
    (match fd with
     | Some fd ->
       (try Unix.lockf fd Unix.F_ULOCK 0 with _ -> ());
       (try Unix.close fd with _ -> ())
     | None -> ());
    Mutex.unlock t.mu
  in
  (match fd with
   | Some fd -> (try Unix.lockf fd Unix.F_LOCK 0 with _ -> ())
   | None -> ());
  Fun.protect ~finally:unlock f

let key_ok key =
  key <> ""
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z') || c = '-' || c = '_')
       key

let entry_path t ~key ~kind =
  let shard = if String.length key >= 2 then String.sub key 0 2 else "xx" in
  Filename.concat (objects_dir t) (Filename.concat shard (key ^ "." ^ kind))

let tmp_serial = Atomic.make 0

let is_tmp name =
  String.length name >= 4 && String.sub name 0 4 = "tmp."

(* every artifact and blob under the cache, as (path, size, mtime) *)
let scan_files t =
  let acc = ref [] in
  let dir_files d =
    match Sys.readdir d with exception _ -> [||] | a -> a
  in
  let note path =
    match Unix.stat path with
    | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
      acc := (path, st_size, st_mtime) :: !acc
    | _ | (exception _) -> ()
  in
  Array.iter
    (fun shard ->
      let sd = Filename.concat (objects_dir t) shard in
      if (try Sys.is_directory sd with _ -> false) then
        Array.iter (fun f -> note (Filename.concat sd f)) (dir_files sd))
    (dir_files (objects_dir t));
  Array.iter (fun f -> note (Filename.concat (blobs_dir t) f))
    (dir_files (blobs_dir t));
  !acc

let occupancy t =
  let files = List.filter (fun (p, _, _) -> not (is_tmp (Filename.basename p)))
      (scan_files t) in
  (List.length files, List.fold_left (fun a (_, s, _) -> a + s) 0 files)

let stats t =
  let entries, bytes = occupancy t in
  { lookups = Atomic.get t.c_lookups; hits = Atomic.get t.c_hits;
    misses = Atomic.get t.c_misses; writes = Atomic.get t.c_writes;
    evictions = Atomic.get t.c_evictions; errors = Atomic.get t.c_errors;
    entries; bytes }

let read_entry t ~kind path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let m = really_input_string ic (String.length magic) in
  if m <> magic then Error `Corrupt
  else begin
    match (input_value ic : header) with
    | exception _ -> Error `Corrupt
    | h ->
      if h.h_version <> format_version then Error `Stale
      else if h.h_exe <> t.exe_digest then Error `Stale
      else if h.h_kind <> kind then Error `Corrupt
      else if h.h_len < 0 || h.h_len > 1 lsl 30 then Error `Corrupt
      else begin
        match really_input_string ic h.h_len with
        | exception _ -> Error `Corrupt
        | payload ->
          if Digest.to_hex (Digest.string payload) <> h.h_digest then Error `Corrupt
          else Ok payload
      end
  end

let load t ~key ~kind =
  Atomic.incr t.c_lookups;
  let miss () = Atomic.incr t.c_misses; None in
  if not (key_ok key) then miss ()
  else begin
    let path = entry_path t ~key ~kind in
    if not (Sys.file_exists path) then miss ()
    else begin
      match read_entry t ~kind path with
      | Ok payload ->
        Atomic.incr t.c_hits;
        (* refresh mtime so eviction is approximately LRU *)
        (try Unix.utimes path 0.0 0.0 with _ -> ());
        Some payload
      | Error `Stale ->
        (* written by a different binary or format: valid for someone
           else, a clean miss for us — leave it to eviction *)
        miss ()
      | Error `Corrupt ->
        Atomic.incr t.c_errors;
        (try Sys.remove path with _ -> ());
        miss ()
      | exception _ ->
        (* unreadable or truncated before the magic: as corrupt as a bad
           digest — delete on sight *)
        Atomic.incr t.c_errors;
        (try Sys.remove path with _ -> ());
        miss ()
    end
  end

let write_file_atomic ~dir ~dest (emit : out_channel -> unit) =
  mkdir_p dir;
  let tmp =
    Filename.concat dir
      (Printf.sprintf "tmp.%d.%d.%s" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_serial 1)
         (Filename.basename dest))
  in
  let oc = open_out_bin tmp in
  (match emit oc with
   | () -> close_out oc
   | exception e -> close_out_noerr oc; (try Sys.remove tmp with _ -> ()); raise e);
  (* the crash window under test: dying here must leave dest untouched *)
  (match !fault_before_rename () with
   | () -> ()
   | exception e -> (try Sys.remove tmp with _ -> ()); raise e);
  Sys.rename tmp dest

let evict_locked t =
  let files = scan_files t in
  let now = Unix.gettimeofday () in
  (* sweep orphaned temp files from crashed writers (older than 60s so we
     never yank a live writer's in-progress file) *)
  let files =
    List.filter
      (fun (p, _, mt) ->
        if is_tmp (Filename.basename p) && now -. mt > 60.0 then begin
          (try Sys.remove p with _ -> ());
          false
        end
        else not (is_tmp (Filename.basename p)))
      files
  in
  let total = List.fold_left (fun a (_, s, _) -> a + s) 0 files in
  if total > t.budget_bytes then begin
    let by_age =
      List.sort (fun (_, _, m1) (_, _, m2) -> Float.compare m1 m2) files
    in
    let remaining = ref total in
    List.iter
      (fun (p, sz, _) ->
        if !remaining > t.budget_bytes then begin
          match Sys.remove p with
          | () ->
            remaining := !remaining - sz;
            Atomic.incr t.c_evictions
          | exception _ -> ()
        end)
      by_age
  end

let store t ~key ~kind payload =
  if key_ok key then begin
    try
      let dest = entry_path t ~key ~kind in
      let h =
        { h_version = format_version; h_exe = t.exe_digest; h_kind = kind;
          h_digest = Digest.to_hex (Digest.string payload);
          h_len = String.length payload }
      in
      write_file_atomic ~dir:(Filename.dirname dest) ~dest (fun oc ->
          output_string oc magic;
          output_value oc h;
          output_string oc payload);
      Atomic.incr t.c_writes;
      with_flock t (fun () -> evict_locked t)
    with _ -> Atomic.incr t.c_errors
  end

(* side blobs: dynlinkable images that must exist as real files (Dynlink
   wants a path, not bytes), revalidated by content hash on every reuse *)
let blob_path t ~name = Filename.concat (blobs_dir t) name

let ensure_blob t ~name ~digest data =
  let path = blob_path t ~name in
  let current () =
    try Sys.file_exists path && Digest.to_hex (Digest.file path) = digest
    with _ -> false
  in
  if current () then Some path
  else begin
    try
      write_file_atomic ~dir:(blobs_dir t) ~dest:path (fun oc ->
          output_string oc data);
      if current () then Some path
      else begin
        Atomic.incr t.c_errors;
        None
      end
    with _ ->
      Atomic.incr t.c_errors;
      None
  end

let clear t =
  with_flock t @@ fun () ->
  let files = scan_files t in
  List.iter (fun (p, _, _) -> try Sys.remove p with _ -> ()) files;
  List.length files

let verify ?(fix = false) t =
  with_flock t @@ fun () ->
  let ok = ref 0 and bad = ref [] in
  List.iter
    (fun (path, _, _) ->
      let base = Filename.basename path in
      if is_tmp base then begin
        bad := (path, "orphaned temp file") :: !bad;
        if fix then (try Sys.remove path with _ -> ())
      end
      else if Filename.dirname path = blobs_dir t then
        (* blobs are validated against their recorded digest at reuse
           time; here just check readability *)
        (match Digest.file path with
         | _ -> incr ok
         | exception _ ->
           bad := (path, "unreadable blob") :: !bad;
           if fix then (try Sys.remove path with _ -> ()))
      else begin
        let kind =
          match String.rindex_opt base '.' with
          | Some i -> String.sub base (i + 1) (String.length base - i - 1)
          | None -> ""
        in
        match read_entry t ~kind path with
        | Ok _ | Error `Stale -> incr ok
        | Error `Corrupt ->
          bad := (path, "corrupt entry") :: !bad;
          if fix then (try Sys.remove path with _ -> ())
        | exception e ->
          bad := (path, Printexc.to_string e) :: !bad;
          if fix then (try Sys.remove path with _ -> ())
      end)
    (scan_files t);
  (!ok, List.rev !bad)

let register_metrics ?(prefix = "disk_cache") t =
  Wolf_obs.Metrics.register_source prefix (fun () ->
      let s = stats t in
      let c name v =
        { Wolf_obs.Metrics.s_name = prefix ^ "_" ^ name; s_labels = [];
          s_help = "on-disk compile cache " ^ name;
          s_kind = Wolf_obs.Metrics.Counter; s_value = Wolf_obs.Metrics.V_int v }
      in
      let g name v =
        { Wolf_obs.Metrics.s_name = prefix ^ "_" ^ name; s_labels = [];
          s_help = "on-disk compile cache " ^ name;
          s_kind = Wolf_obs.Metrics.Gauge;
          s_value = Wolf_obs.Metrics.V_int v }
      in
      [ c "lookups" s.lookups; c "hits" s.hits; c "misses" s.misses;
        c "writes" s.writes; c "evictions" s.evictions; c "errors" s.errors;
        g "entries" s.entries; g "bytes" s.bytes ])
