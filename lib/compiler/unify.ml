open Types

(* Trail entries remember the previous contents of each bound cell so that
   speculative unification (AlternativeConstraint candidate testing) can be
   rolled back exactly.

   The trail is domain-local: type variables are created per inference run
   and never shared across domains, but the trail head itself was a process
   global — two domains inferring concurrently would interleave their undo
   records and roll back each other's bindings.  Domain.DLS gives every
   domain its own trail at zero cost to the single-domain fast path. *)
let trail_key : (tv ref * tv) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let trail () = Domain.DLS.get trail_key

let bind r t =
  let trail = trail () in
  trail := (r, !r) :: !trail;
  r := Link t

let commit_depth () = List.length !(trail ())

let rec unify a b =
  let a = repr a and b = repr b in
  if a == b then Ok ()
  else
    match a, b with
    | Var ({ contents = Unbound ua } as ra), Var { contents = Unbound ub } ->
      (* Merge qualifier sets onto the surviving variable.  The class merge is
         monotone (adds constraints); rollback of the binding is what matters
         for correctness of speculation, and a spuriously widened qualifier
         set can only reject candidates later, never accept wrong ones. *)
      ub.classes <- List.sort_uniq String.compare (ua.classes @ ub.classes);
      bind ra b;
      Ok ()
    | Var ({ contents = Unbound u } as r), t | t, Var ({ contents = Unbound u } as r) ->
      if occurs u.id t then
        Error ("occurs check: " ^ to_string (Var r) ^ " in " ^ to_string t)
      else begin
        let unsatisfied =
          List.filter (fun cls -> not (Type_class.satisfiable cls ~ty:t)) u.classes
        in
        match unsatisfied with
        | [] ->
          (* Propagate qualifiers into a variable nested at the top of t. *)
          (match repr t with
           | Var { contents = Unbound inner } ->
             inner.classes <- List.sort_uniq String.compare (u.classes @ inner.classes)
           | _ -> ());
          bind r t;
          Ok ()
        | cls :: _ ->
          Error
            (Printf.sprintf "type %s does not implement class %S" (to_string t) cls)
      end
    | Con (n1, a1), Con (n2, a2)
      when String.equal n1 n2 && Array.length a1 = Array.length a2 ->
      unify_all a1 a2
    | Lit x, Lit y when x = y -> Ok ()
    | Fun (a1, r1), Fun (a2, r2) when Array.length a1 = Array.length a2 ->
      (match unify_all a1 a2 with
       | Ok () -> unify r1 r2
       | Error _ as e -> e)
    | _ -> Error (Printf.sprintf "cannot unify %s with %s" (to_string a) (to_string b))

and unify_all xs ys =
  let n = Array.length xs in
  let rec go i =
    if i >= n then Ok ()
    else
      match unify xs.(i) ys.(i) with
      | Ok () -> go (i + 1)
      | Error _ as e -> e
  in
  go 0

let speculate f =
  let trail = trail () in
  let saved = !trail in
  trail := [];
  let result = match f () with v -> v | exception _ -> None in
  (match result with
   | Some _ -> trail := !trail @ saved
   | None ->
     List.iter (fun (r, old) -> r := old) !trail;
     trail := saved);
  result
