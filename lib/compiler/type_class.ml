(* Class membership is written at init (install_builtin) and by user class
   declarations, and read on every qualified unification; a mutex covers both
   sides so a lookup never races a resize.  Member lists are immutable
   values, re-bound whole under the lock. *)
let table : (string, string list) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()

let[@inline] locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let declare name ~members =
  locked (fun () ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt table name) in
      Hashtbl.replace table name (List.sort_uniq String.compare (members @ existing)))

let constructor_name ty =
  match Types.repr ty with
  | Types.Con (name, _) -> Some name
  | Types.Lit _ | Types.Fun _ | Types.Var _ -> None

let member cls ~ty =
  match constructor_name ty with
  | Some name ->
    (match locked (fun () -> Hashtbl.find_opt table cls) with
     | Some members -> List.mem name members
     | None -> false)
  | None -> false

let satisfiable cls ~ty =
  match Types.repr ty with
  | Types.Var _ -> true
  | _ -> member cls ~ty

let classes_of ty =
  locked (fun () -> Hashtbl.fold (fun cls _ acc -> cls :: acc) table [])
  |> List.filter (fun cls -> member cls ~ty)
  |> List.sort String.compare

let install_builtin () =
  declare "Integral" ~members:[ "Integer64" ];
  declare "Reals" ~members:[ "Integer64"; "Real64" ];
  declare "Ordered" ~members:[ "Integer64"; "Real64"; "String" ];
  declare "Number" ~members:[ "Integer64"; "Real64"; "ComplexReal64" ];
  declare "Indexed" ~members:[ "PackedArray"; "Expression" ];
  declare "MemoryManaged" ~members:[ "PackedArray"; "Expression"; "String" ];
  declare "Container" ~members:[ "PackedArray" ];
  declare "Equatable"
    ~members:[ "Integer64"; "Real64"; "ComplexReal64"; "Boolean"; "String"; "Expression" ]
