(* Data-parallel loop recognition (the "parallel loops" arm of the paper's
   optimisation story, enabled by [Options.parallel_loops]).

   The pass runs once, after the scalar optimisation fixpoint and before the
   mutability/abort/memory obligation passes.  It looks for innermost
   counted loops of the shape the macro expansions of [Table], [Map],
   [Fold] and [Total] produce after inlining —

     header:  c = binary_less{,_equal}(iv, n)     (n loop-invariant)
              Branch c ? body : exit
     ...      one carried accumulator, stepped bodies, single latch
     latch:   iv' = checked_binary_plus(iv, 1); Jump header(iv', acc', ...)

   — and proves three things about the body: every instruction is a pure
   resolved primitive (no calls, closures, kernel escapes, or aliasing
   copies of memory-managed values); nothing defined in the loop is
   observable outside it except through the header's block parameters; and
   the single carried value is updated through a linear chain that is
   either a map (part_set_1 writes indexed by the induction variable,
   values independent of the accumulator) or an associative reduction
   (Plus/Times over Real64, Min/Max over Integer64/Real64 — integer
   Plus/Times stay serial because checked-overflow order is observable).

   A recognised loop is outlined verbatim into a fresh function
   [<fname>$par<k>] taking [captures..., carry, lo, hi] whose guard is
   replaced by [iv <= hi], and the original loop is replaced by

     check: c0 = <original guard>(lo, n); Branch c0 ? run : skip
     run:   clo = New_closure <outlined> [captures]
            res = parallel_for_map|parallel_reduce(clo, init, lo, hi,
                                                   opcode, fingerprint)
     join:  (original header params) -> original exit

   so the zero-trip case never enters the runtime, and the runtime
   ({!Wolf_runtime.Par_runtime}) owns chunking, schedule search, and the
   merge.  Map chains are rewritten to [part_set_1_inplace] inside the
   outline: the runtime hands every chunk a disjoint slice of one private
   copy, which is exactly the copy-on-write outcome of the serial loop.

   The fingerprint passed to the runtime is a digest of the outlined
   function's printed body with variable ids renumbered densely, so the
   measured schedule cache keys on loop structure, not on compilation
   order.  Decisions — parallelised and rejected-with-reason — are
   appended to [program.pmeta] under "parloop." keys for the CLI report
   and the fuzz generator's assertions. *)

open Wir

exception Reject of string

let reject msg = raise (Reject msg)

let is_outlined name =
  let marker = "$par" in
  let ln = String.length name and lm = String.length marker in
  let rec scan i = i + lm <= ln && (String.sub name i lm = marker || scan (i + 1)) in
  scan 0

(* ---------- fingerprint ---------- *)

(* Printed body with the name dropped from the signature line and %ids
   renumbered in first-occurrence order: stable across compilations (the
   var supply is process-global) and equal for structurally equal loops. *)
let fingerprint (fn : func) =
  let s = Wir_print.func_to_string fn in
  let s =
    let ln = String.length fn.fname in
    if String.length s >= ln && String.sub s 0 ln = fn.fname then
      String.sub s ln (String.length s - ln)
    else s
  in
  let buf = Buffer.create (String.length s) in
  let map = Hashtbl.create 64 in
  let next = ref 0 in
  let n = String.length s in
  let i = ref 0 in
  let digit c = c >= '0' && c <= '9' in
  while !i < n do
    if s.[!i] = '%' && !i + 1 < n && digit s.[!i + 1] then begin
      let j = ref (!i + 1) in
      while !j < n && digit s.[!j] do incr j done;
      let tok = String.sub s !i (!j - !i) in
      let id =
        match Hashtbl.find_opt map tok with
        | Some d -> d
        | None ->
          let d = !next in
          incr next;
          Hashtbl.add map tok d;
          d
      in
      Buffer.add_string buf "%";
      Buffer.add_string buf (string_of_int id);
      i := !j
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---------- purity ---------- *)

(* Resolved primitives that neither mutate, allocate shared state, consult
   global state (random, kernel hooks), nor retain their arguments.  A loop
   body made of these can be re-executed and chunked freely. *)
let pure_base = function
  | "checked_binary_plus" | "checked_binary_subtract" | "checked_binary_times"
  | "checked_binary_quotient" | "checked_binary_mod" | "checked_binary_power"
  | "checked_unary_minus" | "checked_unary_abs"
  | "binary_plus" | "binary_subtract" | "binary_times" | "binary_divide"
  | "binary_power" | "binary_power_ri" | "unary_minus" | "unary_abs"
  | "binary_less" | "binary_greater" | "binary_less_equal"
  | "binary_greater_equal" | "binary_equal" | "binary_unequal" | "unary_not"
  | "binary_bitand" | "binary_bitor" | "binary_bitxor"
  | "binary_shiftleft" | "binary_shiftright"
  | "binary_min" | "binary_max"
  | "unary_sin" | "unary_cos" | "unary_tan" | "unary_exp" | "unary_log"
  | "unary_sqrt" | "unary_floor" | "unary_ceiling" | "unary_round"
  | "unary_truncate" | "unary_identity_int" | "unary_identity_real"
  | "int_to_real" | "unary_evenq" | "unary_oddq" | "unary_boole"
  | "complex_make" | "complex_re" | "complex_im" | "complex_abs"
  | "part_get_1" | "part_get_1_unchecked" | "part_get_2"
  | "array_length" | "string_length" | "string_byte" | "string_byte_unchecked" ->
    true
  | _ -> false

(* ---------- recognition ---------- *)

type kind =
  | Kmap
  | Kreduce of int  (* Par_runtime opcode *)

let kind_name = function Kmap -> "map" | Kreduce _ -> "reduce"

type reco = {
  r_loop : Analysis.loop;
  r_latch : int;
  r_iv_pos : int;
  r_carry_pos : int;
  r_guard_base : string;   (* binary_less | binary_less_equal *)
  r_guard_mangled : string;
  r_bound : operand;
  r_kind : kind;
  r_tainted : (int, unit) Hashtbl.t;
}

let recognize (f : func) (l : Analysis.loop) : (reco, string) result =
  try
    let def_of = Analysis.def_table f in
    let counts = Analysis.use_counts f in
    let hdr = find_block f l.lheader in
    let latch_label =
      match l.latches with [ x ] -> x | _ -> reject "multiple latches"
    in
    if latch_label = l.lheader then reject "bottom-tested loop";
    let in_body lbl = Analysis.loop_contains l lbl in
    let body_blocks = List.filter (fun b -> in_body b.label) f.blocks in
    (* loop-defined variable ids *)
    let loop_defs = Hashtbl.create 32 in
    List.iter
      (fun b ->
         Array.iter (fun v -> Hashtbl.replace loop_defs v.vid ()) b.bparams;
         List.iter
           (fun i ->
              List.iter (fun v -> Hashtbl.replace loop_defs v.vid ()) (instr_defs i))
           b.instrs)
      body_blocks;
    let invariant_op = function
      | Oconst _ -> true
      | Ovar v -> not (Hashtbl.mem loop_defs v.vid)
    in
    let is_hdr_param v = Array.exists (fun p -> p.vid = v.vid) hdr.bparams in
    (* guard: header exits the loop on a <=|< comparison of a header
       parameter against an invariant bound *)
    let guard_base, guard_mangled, iv, bound, exit_jump =
      match hdr.term with
      | Branch { cond = Ovar c; if_true; if_false }
        when in_body if_true.target && not (in_body if_false.target) -> (
        if Hashtbl.find_opt counts c.vid <> Some 1 then
          reject "loop condition escapes";
        match Hashtbl.find_opt def_of c.vid with
        | Some
            (Call
               { callee =
                   Resolved
                     { base = ("binary_less" | "binary_less_equal") as base;
                       mangled };
                 args = [| Ovar iv0; bound |];
                 _ })
          when invariant_op bound ->
          if
            not
              (List.exists
                 (fun i -> List.exists (fun v -> v.vid = c.vid) (instr_defs i))
                 hdr.instrs)
          then reject "guard not computed in the header";
          let iv = Analysis.chase_copies def_of iv0 in
          if not (is_hdr_param iv) then
            reject "guard does not test a loop carry";
          (base, mangled, iv, bound, if_false)
        | _ -> reject "not a counted loop")
      | _ -> reject "no counted exit test"
    in
    let iv_pos =
      let p = ref (-1) in
      Array.iteri (fun q v -> if v.vid = iv.vid then p := q) hdr.bparams;
      !p
    in
    (* all other body blocks stay inside the loop *)
    List.iter
      (fun b ->
         if b.label <> l.lheader then
           match b.term with
           | Jump j -> if not (in_body j.target) then reject "multiple exits"
           | Branch { if_true; if_false; _ } ->
             if not (in_body if_true.target && in_body if_false.target) then
               reject "multiple exits"
           | Return _ | Unreachable -> reject "multiple exits")
      body_blocks;
    (* single latch stepping iv by one *)
    let latch = find_block f latch_label in
    let latch_jump =
      match latch.term with
      | Jump j when j.target = l.lheader -> j
      | Branch { if_true; _ } when if_true.target = l.lheader -> if_true
      | Branch { if_false; _ } when if_false.target = l.lheader -> if_false
      | _ -> reject "irregular latch"
    in
    (match latch_jump.jargs.(iv_pos) with
     | Ovar s -> (
       match Analysis.resolved_def def_of s with
       | Some
           (Call
              { callee = Resolved { base = "checked_binary_plus"; _ };
                args = [| Ovar iv'; Oconst (Cint 1) |];
                _ })
         when (Analysis.chase_copies def_of iv').vid = iv.vid ->
         ()
       | _ -> reject "induction step is not +1")
     | _ -> reject "induction step is not +1");
    (* exactly one carried accumulator besides the induction variable *)
    let carried = ref [] in
    Array.iteri
      (fun q p ->
         if q <> iv_pos then
           match latch_jump.jargs.(q) with
           | Ovar v when (Analysis.chase_copies def_of v).vid = p.vid -> ()
           | _ -> carried := q :: !carried)
      hdr.bparams;
    let carry_pos =
      match !carried with
      | [ q ] -> q
      | [] -> reject "no carried accumulator"
      | _ -> reject "more than one carried value"
    in
    let carry = hdr.bparams.(carry_pos) in
    let kind0 =
      match Option.map Types.repr carry.vty with
      | Some (Types.Con ("PackedArray", [| _; Types.Lit 1 |])) -> `Map
      | Some t when Types.equal t Types.int64 || Types.equal t Types.real64 ->
        `Reduce (Types.equal t Types.real64)
      | _ -> reject "unsupported accumulator type"
    in
    (* values leaving the loop must be header parameters *)
    Array.iter
      (function
        | Oconst _ -> ()
        | Ovar v ->
          if Hashtbl.mem loop_defs v.vid && not (is_hdr_param v) then
            reject "loop value escapes on exit")
      exit_jump.jargs;
    List.iter
      (fun b ->
         if not (in_body b.label) then begin
           List.iter
             (fun i ->
                List.iter
                  (function
                    | Ovar v
                      when Hashtbl.mem loop_defs v.vid && not (is_hdr_param v) ->
                      reject "loop value used after the loop"
                    | _ -> ())
                  (instr_uses i))
             b.instrs;
           List.iter
             (function
               | Ovar v
                 when Hashtbl.mem loop_defs v.vid && not (is_hdr_param v) ->
                 reject "loop value used after the loop"
               | _ -> ())
             (term_uses b.term)
         end)
      f.blocks;
    (* body instruction legality *)
    List.iter
      (fun b ->
         List.iter
           (fun i ->
              match i with
              | Copy { dst; _ } ->
                if
                  match dst.vty with
                  | Some t -> Type_class.member "MemoryManaged" ~ty:t
                  | None -> false
                then reject "aliases a managed value"
              | Call { callee = Resolved { base; _ }; _ } ->
                if String.length base >= 8 && String.sub base 0 8 = "part_set"
                then begin
                  if base <> "part_set_1" then
                    reject ("unsupported write primitive " ^ base)
                end
                else if not (pure_base base) then
                  reject ("unsupported primitive " ^ base)
              | Call { callee = Prim name; _ } ->
                reject ("unresolved primitive " ^ name)
              | Call { callee = Func _; _ } -> reject "calls a function"
              | Call { callee = Indirect _; _ } -> reject "indirect call"
              | New_closure _ -> reject "builds a closure"
              | Kernel_call _ -> reject "escapes to the kernel"
              | Copy_value _ -> reject "deep-copies a value"
              | Mem_acquire _ | Mem_release _ -> reject "reference-counted body"
              | Load_argument _ -> reject "argument load in loop"
              | Abort_check | Abort_poll _ -> ())
           b.instrs)
      body_blocks;
    (* taint: everything data-dependent on the accumulator *)
    let tainted = Hashtbl.create 8 in
    Hashtbl.replace tainted carry.vid ();
    let again = ref true in
    while !again do
      again := false;
      List.iter
        (fun b ->
           List.iter
             (fun i ->
                if
                  List.exists
                    (function
                      | Ovar v -> Hashtbl.mem tainted v.vid
                      | Oconst _ -> false)
                    (instr_uses i)
                then
                  List.iter
                    (fun d ->
                       if not (Hashtbl.mem tainted d.vid) then begin
                         Hashtbl.replace tainted d.vid ();
                         again := true
                       end)
                    (instr_defs i))
             b.instrs)
        body_blocks
    done;
    (* the accumulator may flow only along the latch's carry slot and out of
       the exit; in particular not through inner joins or branch conditions *)
    List.iter
      (fun b ->
         let jumps =
           match b.term with
           | Jump j -> [ j ]
           | Branch { cond; if_true; if_false } ->
             (match cond with
              | Ovar v when Hashtbl.mem tainted v.vid ->
                reject "control depends on the accumulator"
              | _ -> ());
             [ if_true; if_false ]
           | Return _ | Unreachable -> []
         in
         List.iter
           (fun j ->
              Array.iteri
                (fun k op ->
                   match op with
                   | Ovar v when Hashtbl.mem tainted v.vid ->
                     let ok =
                       (j.target = l.lheader && b.label = latch_label
                        && k = carry_pos)
                       || ((not (in_body j.target)) && v.vid = carry.vid)
                     in
                     if not ok then reject "accumulator flows through a join"
                   | _ -> ())
                j.jargs)
           jumps)
      body_blocks;
    (* header must not update the accumulator (keeps the loop pre-tested) *)
    List.iter
      (fun i ->
         if List.exists (fun d -> Hashtbl.mem tainted d.vid) (instr_defs i)
         then reject "accumulator updated in the header")
      hdr.instrs;
    (* every part_set must be on the accumulator chain *)
    List.iter
      (fun b ->
         List.iter
           (fun i ->
              match i with
              | Call { dst; callee = Resolved { base = "part_set_1"; _ }; _ }
                when not (Hashtbl.mem tainted dst.vid) ->
                reject "writes a shared value"
              | _ -> ())
           b.instrs)
      body_blocks;
    (* walk the linear update chain from the carry to the latch argument *)
    let users : (int, instr list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun b ->
         List.iter
           (fun i ->
              List.iter
                (function
                  | Ovar v when Hashtbl.mem tainted v.vid ->
                    Hashtbl.replace users v.vid
                      (i :: Option.value ~default:[] (Hashtbl.find_opt users v.vid))
                  | _ -> ())
                (instr_uses i))
           b.instrs)
      body_blocks;
    let chain_end =
      match latch_jump.jargs.(carry_pos) with
      | Ovar v when Hashtbl.mem tainted v.vid -> v
      | _ -> reject "accumulator does not accumulate"
    in
    let step_ops = ref [] in
    let rec walk v =
      if v.vid = chain_end.vid then begin
        if Hashtbl.mem users v.vid then reject "accumulator read after update"
      end
      else
        match Hashtbl.find_opt users v.vid with
        | Some [ i ] -> (
          match kind0, i with
          | ( `Map,
              Call
                { dst;
                  callee = Resolved { base = "part_set_1"; _ };
                  args = [| Ovar t; idx; value |] } )
            when t.vid = v.vid ->
            (match idx with
             | Ovar ixv when (Analysis.chase_copies def_of ixv).vid = iv.vid ->
               ()
             | _ -> reject "write index is not the loop counter");
            (match value with
             | Ovar u when Hashtbl.mem tainted u.vid ->
               reject "write value reads the accumulator"
             | _ -> ());
            walk dst
          | `Reduce _, Copy { dst; src = Ovar s } when s.vid = v.vid -> walk dst
          | ( `Reduce _,
              Call { dst; callee = Resolved { base; _ }; args = [| x; y |] } )
            when (match x with Ovar u -> u.vid = v.vid | _ -> false)
                 || (match y with Ovar u -> u.vid = v.vid | _ -> false) ->
            let other =
              match x with Ovar u when u.vid = v.vid -> y | _ -> x
            in
            (match other with
             | Ovar u when Hashtbl.mem tainted u.vid ->
               reject "accumulator combined with itself"
             | _ -> ());
            step_ops := base :: !step_ops;
            walk dst
          | _ -> reject "unsupported accumulator update")
        | Some _ -> reject "accumulator used twice in one iteration"
        | None -> reject "accumulator chain is broken"
    in
    walk carry;
    let kind =
      match kind0 with
      | `Map -> Kmap
      | `Reduce is_real -> (
        match List.sort_uniq compare !step_ops with
        | [ op ] -> (
          match op, is_real with
          | "binary_plus", true -> Kreduce 1
          | "binary_times", true -> Kreduce 2
          | "binary_min", false -> Kreduce 3
          | "binary_min", true -> Kreduce 4
          | "binary_max", false -> Kreduce 5
          | "binary_max", true -> Kreduce 6
          | ("checked_binary_plus" | "checked_binary_times"), _ ->
            reject "integer overflow order is observable"
          | _ -> reject ("non-associative reduction " ^ op))
        | [] -> reject "accumulator is only copied"
        | _ -> reject "mixed reduction operators")
    in
    let suffix_ok =
      String.length guard_mangled >= String.length guard_base
      && String.sub guard_mangled 0 (String.length guard_base) = guard_base
    in
    if not suffix_ok then reject "unexpected guard mangling";
    Ok
      { r_loop = l;
        r_latch = latch_label;
        r_iv_pos = iv_pos;
        r_carry_pos = carry_pos;
        r_guard_base = guard_base;
        r_guard_mangled = guard_mangled;
        r_bound = bound;
        r_kind = kind;
        r_tainted = tainted }
  with Reject msg -> Error msg

(* ---------- transformation ---------- *)

let unique_fname p base counter =
  let rec go () =
    let name = Printf.sprintf "%s$par%d" base !counter in
    incr counter;
    if Wir.find_func p name = None then name else go ()
  in
  go ()

let transform (p : program) (f : func) (r : reco) counter =
  let l = r.r_loop in
  let hdr = find_block f l.lheader in
  let iv = hdr.bparams.(r.r_iv_pos) in
  let carry = hdr.bparams.(r.r_carry_pos) in
  let exit_jump =
    match hdr.term with
    | Branch { if_false; _ } -> if_false
    | _ -> assert false
  in
  let suffix =
    String.sub r.r_guard_mangled
      (String.length r.r_guard_base)
      (String.length r.r_guard_mangled - String.length r.r_guard_base)
  in
  let resolved b = Resolved { base = b; mangled = b ^ suffix } in
  let pre_label =
    Analysis.ensure_preheader f ~header:l.lheader ~latches:l.latches
  in
  let pre = find_block f pre_label in
  let entry_jargs =
    match pre.term with
    | Jump j when j.target = l.lheader -> j.jargs
    | _ -> assert false
  in
  let in_body lbl = Analysis.loop_contains l lbl in
  let body_blocks = List.filter (fun b -> in_body b.label) f.blocks in
  let loop_defs = Hashtbl.create 32 in
  List.iter
    (fun b ->
       Array.iter (fun v -> Hashtbl.replace loop_defs v.vid ()) b.bparams;
       List.iter
         (fun i ->
            List.iter (fun v -> Hashtbl.replace loop_defs v.vid ()) (instr_defs i))
         b.instrs)
    body_blocks;
  (* invariant variables used by the body (except through the exit edge)
     become closure captures, in deterministic first-use order *)
  let cap_order = ref [] in
  let caps : (int, var) Hashtbl.t = Hashtbl.create 8 in
  let note_use = function
    | Oconst _ -> ()
    | Ovar v ->
      if (not (Hashtbl.mem loop_defs v.vid)) && not (Hashtbl.mem caps v.vid)
      then begin
        let pv = fresh_var ~name:v.vname ?ty:v.vty () in
        Hashtbl.replace caps v.vid pv;
        cap_order := v :: !cap_order
      end
  in
  List.iter
    (fun b ->
       List.iter (fun i -> List.iter note_use (instr_uses i)) b.instrs;
       match b.term with
       | Jump j -> Array.iter note_use j.jargs
       | Branch { cond; if_true; if_false } ->
         note_use cond;
         Array.iter note_use if_true.jargs;
         if b.label <> l.lheader then Array.iter note_use if_false.jargs
       | Return _ | Unreachable -> ())
    body_blocks;
  (* entry values of passthrough parameters are also needed inside *)
  Array.iteri
    (fun q op ->
       if q <> r.r_iv_pos && q <> r.r_carry_pos then note_use op)
    entry_jargs;
  let cap_vars = List.rev !cap_order in
  let carry_p = fresh_var ~name:"carry" ?ty:carry.vty () in
  let lo_p = fresh_var ~name:"lo" ?ty:iv.vty () in
  let hi_p = fresh_var ~name:"hi" ?ty:iv.vty () in
  let ofname = unique_fname p f.fname counter in
  (* clone the body *)
  let vmap : (int, var) Hashtbl.t = Hashtbl.create 32 in
  let clone_var v =
    match Hashtbl.find_opt vmap v.vid with
    | Some v' -> v'
    | None ->
      let v' = fresh_var ~name:v.vname ?ty:v.vty () in
      Hashtbl.replace vmap v.vid v';
      v'
  in
  let map_op = function
    | Oconst c -> Oconst c
    | Ovar v ->
      if Hashtbl.mem loop_defs v.vid then Ovar (clone_var v)
      else (
        match Hashtbl.find_opt caps v.vid with
        | Some pv -> Ovar pv
        | None -> assert false)
  in
  let label_map : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let next_label = ref 1 in
  List.iter
    (fun b ->
       Hashtbl.replace label_map b.label !next_label;
       incr next_label)
    body_blocks;
  let ret_label = !next_label in
  let map_jump (j : jump) =
    { target = Hashtbl.find label_map j.target;
      jargs = Array.map map_op j.jargs }
  in
  let guard_vid =
    match hdr.term with
    | Branch { cond = Ovar c; _ } -> c.vid
    | _ -> assert false
  in
  let clone_instr i =
    match i with
    | Call { dst; callee = Resolved { base = "part_set_1"; mangled }; args }
      when Hashtbl.mem r.r_tainted dst.vid ->
      let msuffix =
        String.sub mangled (String.length "part_set_1")
          (String.length mangled - String.length "part_set_1")
      in
      Call
        { dst = clone_var dst;
          callee =
            Resolved
              { base = "part_set_1_inplace";
                mangled = "part_set_1_inplace" ^ msuffix };
          args = Array.map map_op args }
    | Call { dst; callee; args } when dst.vid = guard_vid ->
      ignore callee;
      ignore args;
      Call
        { dst = clone_var dst;
          callee = resolved "binary_less_equal";
          args = [| Ovar (clone_var iv); Ovar hi_p |] }
    | Copy { dst; src } -> Copy { dst = clone_var dst; src = map_op src }
    | Call { dst; callee; args } ->
      Call { dst = clone_var dst; callee; args = Array.map map_op args }
    | Abort_check -> Abort_check
    | Abort_poll a -> Abort_poll a
    | Load_argument _ | New_closure _ | Kernel_call _ | Copy_value _
    | Mem_acquire _ | Mem_release _ ->
      assert false
  in
  let cloned =
    List.map
      (fun b ->
         let bparams = Array.map clone_var b.bparams in
         let instrs = List.map clone_instr b.instrs in
         let term =
           if b.label = l.lheader then
             match b.term with
             | Branch { cond; if_true; _ } ->
               Branch
                 { cond = map_op cond;
                   if_true = map_jump if_true;
                   if_false = { target = ret_label; jargs = [||] } }
             | _ -> assert false
           else
             match b.term with
             | Jump j -> Jump (map_jump j)
             | Branch { cond; if_true; if_false } ->
               Branch
                 { cond = map_op cond;
                   if_true = map_jump if_true;
                   if_false = map_jump if_false }
             | Return _ | Unreachable -> assert false
         in
         { label = Hashtbl.find label_map b.label; bparams; instrs; term })
      body_blocks
  in
  let ret_block =
    { label = ret_label;
      bparams = [||];
      instrs = [];
      term = Return (Ovar (clone_var carry)) }
  in
  let fparams = Array.of_list (List.map (fun v -> Hashtbl.find caps v.vid) cap_vars @ [ carry_p; lo_p; hi_p ]) in
  let oentry =
    { label = 0;
      bparams = [||];
      instrs =
        Array.to_list
          (Array.mapi (fun idx v -> Load_argument { dst = v; index = idx }) fparams);
      term =
        Jump
          { target = Hashtbl.find label_map l.lheader;
            jargs =
              Array.mapi
                (fun q _ ->
                   if q = r.r_iv_pos then Ovar lo_p
                   else if q = r.r_carry_pos then Ovar carry_p
                   else
                     match entry_jargs.(q) with
                     | Oconst c -> Oconst c
                     | Ovar v -> Ovar (Hashtbl.find caps v.vid))
                hdr.bparams } }
  in
  let ofunc =
    { fname = ofname;
      fparams;
      ret_ty = carry.vty;
      blocks = oentry :: cloned @ [ ret_block ];
      finline = false;
      fsource = f.fsource }
  in
  let fp = fingerprint ofunc in
  (* rewrite the original site *)
  let max_label = List.fold_left (fun acc b -> max acc b.label) 0 f.blocks in
  let check_l = max_label + 1
  and run_l = max_label + 2
  and skip_l = max_label + 3
  and join_l = max_label + 4 in
  let lo_op = entry_jargs.(r.r_iv_pos) in
  let carry_op = entry_jargs.(r.r_carry_pos) in
  let c0 = fresh_var ~name:"c0" ~ty:Types.boolean () in
  let check_block =
    { label = check_l;
      bparams = [||];
      instrs =
        [ Call
            { dst = c0;
              callee =
                Resolved
                  { base = r.r_guard_base; mangled = r.r_guard_mangled };
              args = [| lo_op; r.r_bound |] } ];
      term =
        Branch
          { cond = Ovar c0;
            if_true = { target = run_l; jargs = [||] };
            if_false = { target = skip_l; jargs = [||] } } }
  in
  let prim_base =
    match r.r_kind with
    | Kmap -> "parallel_for_map"
    | Kreduce _ -> "parallel_reduce"
  in
  let opcode = match r.r_kind with Kmap -> 0 | Kreduce k -> k in
  let hi_instrs, hi_op =
    if r.r_guard_base = "binary_less_equal" then ([], r.r_bound)
    else
      let last = fresh_var ~name:"last" ?ty:iv.vty () in
      ( [ Call
            { dst = last;
              callee = resolved "checked_binary_subtract";
              args = [| r.r_bound; Oconst (Cint 1) |] } ],
        Ovar last )
  in
  let clo_ty =
    match carry.vty, iv.vty with
    | Some cty, Some ity -> Some (Types.fn [ cty; ity; ity ] cty)
    | _ -> None
  in
  let clo = fresh_var ~name:"parfn" ?ty:clo_ty () in
  let res = fresh_var ~name:"parres" ?ty:carry.vty () in
  let post_instrs, iv_final =
    if r.r_guard_base = "binary_less_equal" then
      let ivf = fresh_var ~name:"ivf" ?ty:iv.vty () in
      ( [ Call
            { dst = ivf;
              callee = resolved "checked_binary_plus";
              args = [| r.r_bound; Oconst (Cint 1) |] } ],
        Ovar ivf )
    else ([], r.r_bound)
  in
  let join_args_of ~ivv ~carryv =
    Array.mapi
      (fun q _ ->
         if q = r.r_iv_pos then ivv
         else if q = r.r_carry_pos then carryv
         else entry_jargs.(q))
      hdr.bparams
  in
  let run_block =
    { label = run_l;
      bparams = [||];
      instrs =
        hi_instrs
        @ [ New_closure
              { dst = clo;
                fname = ofname;
                captured =
                  Array.of_list (List.map (fun v -> Ovar v) cap_vars) };
            Call
              { dst = res;
                callee = Resolved { base = prim_base; mangled = prim_base };
                args =
                  [| Ovar clo; carry_op; lo_op; hi_op;
                     Oconst (Cint opcode); Oconst (Cstr fp) |] } ]
        @ post_instrs;
      term =
        Jump
          { target = join_l;
            jargs = join_args_of ~ivv:iv_final ~carryv:(Ovar res) } }
  in
  let skip_block =
    { label = skip_l;
      bparams = [||];
      instrs = [];
      term =
        Jump { target = join_l; jargs = join_args_of ~ivv:lo_op ~carryv:carry_op } }
  in
  let join_block =
    { label = join_l;
      bparams = Array.copy hdr.bparams;
      instrs = [];
      term = Jump exit_jump }
  in
  pre.term <- Jump { target = check_l; jargs = [||] };
  f.blocks <-
    List.concat_map
      (fun b ->
         if b.label = pre_label then
           [ b; check_block; run_block; skip_block; join_block ]
         else if in_body b.label then []
         else [ b ])
      f.blocks;
  p.funcs <- p.funcs @ [ ofunc ];
  (ofname, fp)

(* ---------- driver ---------- *)

let run (p : program) =
  let changed = ref false in
  let notes = ref [] in
  let counter = ref 0 in
  let note fname header v =
    notes := (Printf.sprintf "parloop.%s.b%d" fname header, v) :: !notes
  in
  let snapshot = List.filter (fun f -> not (is_outlined f.fname)) p.funcs in
  List.iter
    (fun f ->
       let budget = ref 16 in
       let rec attempt () =
         if !budget > 0 then begin
           let cfg = Analysis.build_cfg f in
           let loops = Analysis.natural_loops f cfg in
           let entry_label = (Wir.entry f).label in
           let candidate l =
             Analysis.innermost loops l && l.lheader <> entry_label
           in
           let rec go = function
             | [] -> ()
             | l :: rest -> (
               if not (candidate l) then go rest
               else
                 match recognize f l with
                 | Ok r ->
                   let ofname, fp = transform p f r counter in
                   note f.fname l.Analysis.lheader
                     (Printf.sprintf "parallelized %s outlined=%s fp=%s"
                        (kind_name r.r_kind) ofname fp);
                   changed := true;
                   decr budget;
                   attempt ()
                 | Error _ -> go rest)
           in
           go loops
         end
       in
       attempt ();
       (* report the loops that stayed serial *)
       let cfg = Analysis.build_cfg f in
       let loops = Analysis.natural_loops f cfg in
       let entry_label = (Wir.entry f).label in
       List.iter
         (fun l ->
            if l.Analysis.lheader = entry_label then ()
            else if not (Analysis.innermost loops l) then
              note f.fname l.Analysis.lheader "rejected: contains a nested loop"
            else
              match recognize f l with
              | Ok _ -> note f.fname l.Analysis.lheader "rejected: budget exhausted"
              | Error msg ->
                note f.fname l.Analysis.lheader ("rejected: " ^ msg))
         loops)
    snapshot;
  p.pmeta <- p.pmeta @ List.rev !notes;
  !changed
