type stats = {
  lookups : int;
  hits : int;
  misses : int;
  waits : int;
  evictions : int;
  entries : int;
  bytes : int;
}

type 'a entry = { value : 'a; weight : int; mutable last_use : int }

type 'a t = {
  capacity : int;
  weigh : 'a -> int;
  tbl : (string, 'a entry) Hashtbl.t;
  (* keys some domain is currently compiling; waiters sleep on [cond] *)
  inflight : (string, unit) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable clock : int;              (* LRU recency; guarded by [lock] *)
  mutable bytes : int;              (* resident weight; guarded by [lock] *)
  lookups : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  waits : int Atomic.t;
  evictions : int Atomic.t;
}

let create ?(capacity = 128) ?(weigh = fun _ -> 0) () =
  { capacity = max 1 capacity; weigh; tbl = Hashtbl.create 64;
    inflight = Hashtbl.create 8; lock = Mutex.create ();
    cond = Condition.create (); clock = 0; bytes = 0;
    lookups = Atomic.make 0; hits = Atomic.make 0; misses = Atomic.make 0;
    waits = Atomic.make 0; evictions = Atomic.make 0 }

let key ~source ~options ~target =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ Wolf_wexpr.Expr.to_string source; Options.fingerprint options; target ]))

let[@inline] locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

(* callers hold c.lock *)
let find_locked c k =
  match Hashtbl.find_opt c.tbl k with
  | Some e ->
    c.clock <- c.clock + 1;
    e.last_use <- c.clock;
    Some e.value
  | None -> None

let evict_lru_locked c =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
         match acc with
         | Some (_, use) when use <= e.last_use -> acc
         | _ -> Some (k, e.last_use))
      c.tbl None
  in
  match victim with
  | Some (k, _) ->
    (match Hashtbl.find_opt c.tbl k with
     | Some e -> c.bytes <- c.bytes - e.weight
     | None -> ());
    Hashtbl.remove c.tbl k;
    Atomic.incr c.evictions
  | None -> ()

let add_locked c k v =
  c.clock <- c.clock + 1;
  let w = c.weigh v in
  match Hashtbl.find_opt c.tbl k with
  | Some old ->
    c.bytes <- c.bytes - old.weight + w;
    Hashtbl.replace c.tbl k { value = v; weight = w; last_use = c.clock }
  | None ->
    if Hashtbl.length c.tbl >= c.capacity then evict_lru_locked c;
    c.bytes <- c.bytes + w;
    Hashtbl.replace c.tbl k { value = v; weight = w; last_use = c.clock }

let find c k =
  Atomic.incr c.lookups;
  locked c (fun () ->
      match find_locked c k with
      | Some v ->
        Atomic.incr c.hits;
        Wolf_obs.Trace.instant ~cat:"cache" "cache-hit";
        Some v
      | None ->
        Atomic.incr c.misses;
        Wolf_obs.Trace.instant ~cat:"cache" "cache-miss";
        None)

let add c k v = locked c (fun () -> add_locked c k v)

let find_or_compute c k ~build =
  Atomic.incr c.lookups;
  Mutex.lock c.lock;
  let rec claim () =
    match find_locked c k with
    | Some v ->
      (* Counting invariant: every lookup resolves as exactly one hit or
         one miss — hits + misses = lookups — and [waits] counts, on top
         of that, the condition-variable sleeps a lookup took first.  A
         dedup-satisfied lookup is therefore a hit with waits >= 1, not a
         third outcome: it waited for the in-flight compile of the same
         key and then claimed its result. *)
      Atomic.incr c.hits;
      Wolf_obs.Trace.instant ~cat:"cache" "cache-hit";
      Mutex.unlock c.lock;
      v
    | None ->
      if Hashtbl.mem c.inflight k then begin
        (* another domain is compiling this key: wait rather than duplicating
           the compile and racing the LRU clock with a second insert *)
        Atomic.incr c.waits;
        Wolf_obs.Trace.begin_span ~cat:"cache" "cache-inflight-wait";
        Fun.protect
          ~finally:(fun () -> Wolf_obs.Trace.end_span "cache-inflight-wait")
          (fun () -> Condition.wait c.cond c.lock);
        claim ()
      end
      else begin
        Atomic.incr c.misses;
        Wolf_obs.Trace.instant ~cat:"cache" "cache-miss";
        Hashtbl.replace c.inflight k ();
        Mutex.unlock c.lock;
        let finish g =
          Mutex.lock c.lock;
          Hashtbl.remove c.inflight k;
          let r = g () in
          Condition.broadcast c.cond;
          Mutex.unlock c.lock;
          r
        in
        match build () with
        | v -> finish (fun () -> add_locked c k v); v
        | exception e ->
          (* failed compiles are not cached; wake waiters so one of them
             retries (and likely reports the same error in its own context) *)
          finish (fun () -> ());
          raise e
      end
  in
  claim ()

let length c = locked c (fun () -> Hashtbl.length c.tbl)

let stats c =
  locked c (fun () ->
      { lookups = Atomic.get c.lookups;
        hits = Atomic.get c.hits;
        misses = Atomic.get c.misses;
        waits = Atomic.get c.waits;
        evictions = Atomic.get c.evictions;
        entries = Hashtbl.length c.tbl;
        bytes = c.bytes })

let clear c =
  locked c (fun () ->
      Hashtbl.reset c.tbl;
      c.clock <- 0;
      c.bytes <- 0;
      Atomic.set c.lookups 0;
      Atomic.set c.hits 0;
      Atomic.set c.misses 0;
      Atomic.set c.waits 0;
      Atomic.set c.evictions 0)

let register_metrics ~prefix c =
  Wolf_obs.Metrics.register_source prefix (fun () ->
      let s = stats c in
      let open Wolf_obs.Metrics in
      let counter name help v =
        { s_name = prefix ^ "_" ^ name; s_labels = []; s_help = help;
          s_kind = Counter; s_value = V_int v }
      in
      let gauge name help v =
        { s_name = prefix ^ "_" ^ name; s_labels = []; s_help = help;
          s_kind = Gauge; s_value = V_int v }
      in
      [ counter "lookups" "cache lookups (= hits + misses)" s.lookups;
        counter "hits" "lookups satisfied from the cache (incl. after an in-flight wait)" s.hits;
        counter "misses" "lookups that ran a compile" s.misses;
        counter "inflight_waits" "lookups that slept behind an in-flight compile of the same key" s.waits;
        counter "evictions" "LRU evictions" s.evictions;
        gauge "entries" "resident entries" s.entries;
        gauge "bytes" "estimated resident bytes (per-entry weight sum)" s.bytes ])
