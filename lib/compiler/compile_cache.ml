type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

type 'a entry = { value : 'a; mutable last_use : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 128) () =
  { capacity = max 1 capacity; tbl = Hashtbl.create 64; clock = 0;
    hits = 0; misses = 0; evictions = 0 }

let key ~source ~options ~target =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ Wolf_wexpr.Expr.to_string source; Options.fingerprint options; target ]))

let find c k =
  match Hashtbl.find_opt c.tbl k with
  | Some e ->
    c.clock <- c.clock + 1;
    e.last_use <- c.clock;
    c.hits <- c.hits + 1;
    Some e.value
  | None ->
    c.misses <- c.misses + 1;
    None

let evict_lru c =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
         match acc with
         | Some (_, use) when use <= e.last_use -> acc
         | _ -> Some (k, e.last_use))
      c.tbl None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove c.tbl k;
    c.evictions <- c.evictions + 1
  | None -> ()

let add c k v =
  c.clock <- c.clock + 1;
  match Hashtbl.find_opt c.tbl k with
  | Some _ -> Hashtbl.replace c.tbl k { value = v; last_use = c.clock }
  | None ->
    if Hashtbl.length c.tbl >= c.capacity then evict_lru c;
    Hashtbl.replace c.tbl k { value = v; last_use = c.clock }

let length c = Hashtbl.length c.tbl

let stats c =
  { hits = c.hits; misses = c.misses; evictions = c.evictions;
    entries = Hashtbl.length c.tbl }

let clear c =
  Hashtbl.reset c.tbl;
  c.clock <- 0;
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0
