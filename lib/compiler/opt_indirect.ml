(* Indirect-call promotion.

   The lowerer gives every applied [Function] literal the general shape

     c = New_closure { fname; captured }
     r = Call { callee = Indirect c; args }

   even when the closure never escapes — the common case for the
   [f /@ list] / [Fold[f, …]] macro expansions, whose lambda is applied
   exactly once per iteration inside the loop the macro built.  The
   indirection blocks every later pass: the inliner only considers direct
   [Func] calls, and the parallel-loop recognizer must reject bodies with
   indirect calls (it cannot prove them pure).

   When the callee is locally evident — the call operand chases through SSA
   copies to a [New_closure] in the same function — the call is rewritten to
   a direct [Func] call with the captured operands prepended (the lifted
   function's parameter convention, see {!Lower.lower_closure}).  This is
   sound: the closure value is immutable, the captured operands dominate the
   [New_closure] which dominates (transitively through the copy chain) the
   call site, and {!Infer} already unified argument and result types through
   the closure's [Types.Fun] type.  The [New_closure] itself is left for DCE
   to collect once no other use remains.

   Promoted lambdas are additionally marked inlinable: [finline] is false on
   lifted closures only because inlining never applied to them — as the
   target of a direct call they are ordinary small functions. *)

open Wir

let promote_in_func (p : program) (f : func) =
  let def_of = Analysis.def_table f in
  let changed = ref false in
  List.iter
    (fun b ->
       b.instrs <-
         List.map
           (fun i ->
              match i with
              | Call { dst; callee = Indirect (Ovar c); args } -> (
                match Analysis.resolved_def def_of c with
                | Some (New_closure { fname; captured; _ }) -> (
                  match Wir.find_func p fname with
                  | Some lifted
                    when Array.length lifted.fparams
                         = Array.length captured + Array.length args ->
                    changed := true;
                    if lifted.fname <> f.fname then lifted.finline <- true;
                    Call
                      { dst;
                        callee = Func fname;
                        args = Array.append captured args }
                  | _ -> i)
                | _ -> i)
              | i -> i)
           b.instrs)
    f.blocks;
  !changed

let run (p : program) =
  List.fold_left (fun acc f -> promote_in_func p f || acc) false p.funcs
