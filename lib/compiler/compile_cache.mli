(** Content-addressed compile cache.

    Repeated [Compile]/[run] calls on identical sources are the common case
    under interactive and serving workloads; a compile is 10³–10⁶× the cost
    of a call, so the facade memoizes compilation results keyed by a content
    hash of (source expression FullForm, every {!Options.t} field, backend
    target).  Bounded LRU with lookup/hit/miss/wait/eviction counters and a
    byte-occupancy gauge.

    Domain-safe: the table, LRU clock and byte gauge are guarded by a
    mutex, the counters are atomics (so a lookup interleaving an insert
    can't drift them), and {!find_or_compute} deduplicates in-flight
    compiles per key: two domains asking for the same missing key run one
    compile, not two.

    Counting invariant: [hits + misses = lookups] always — a lookup that
    slept behind an in-flight compile of its key resolves as a {e hit} once
    that compile lands, with the sleep counted separately in [waits].
    [waits] is therefore not a third outcome but an annotation: it can
    exceed zero only under concurrent compilation, and a single lookup can
    contribute several waits if it is woken and finds its key still
    in flight (spurious wakeup or a failed build). *)

type stats = {
  lookups : int;   (** find + find_or_compute calls; = hits + misses *)
  hits : int;      (** includes dedup-satisfied lookups *)
  misses : int;
  waits : int;     (** condition-variable sleeps behind in-flight compiles *)
  evictions : int;
  entries : int;   (** current resident entries *)
  bytes : int;     (** current resident weight (see [weigh]) *)
}

type 'a t

val create : ?capacity:int -> ?weigh:('a -> int) -> unit -> 'a t
(** LRU-bounded cache; default capacity 128.  [weigh] estimates an entry's
    resident size in bytes (default: 0, i.e. occupancy tracking off); it is
    called once per insert, under the cache lock. *)

val key : source:Wolf_wexpr.Expr.t -> options:Options.t -> target:string -> string
(** Content hash of the compilation inputs.  [target] should name the
    backend (and anything else that selects a different compilation
    result, e.g. the function name). *)

val find : 'a t -> string -> 'a option
(** Lookup; records a hit or a miss and refreshes LRU recency. *)

val add : 'a t -> string -> 'a -> unit
(** Insert, evicting the least-recently-used entry when full. *)

val find_or_compute : 'a t -> string -> build:(unit -> 'a) -> 'a
(** [find_or_compute c k ~build] returns the cached value for [k], or runs
    [build] (outside the cache lock) and inserts the result.  If another
    domain is already building [k], blocks until that compile lands and
    returns its value — one compile per key, however many domains miss
    simultaneously.  Counts one hit or one miss per call (plus [waits] for
    time spent queued).  If [build] raises, nothing is cached and one
    waiter retries. *)

val stats : 'a t -> stats
val length : 'a t -> int

val clear : 'a t -> unit
(** Drop all entries and zero the counters. *)

val register_metrics : prefix:string -> 'a t -> unit
(** Expose this cache through {!Wolf_obs.Metrics} as a pull-time source
    named [prefix]: [prefix_lookups], [prefix_hits], [prefix_misses],
    [prefix_inflight_waits], [prefix_evictions] (counters) and
    [prefix_entries], [prefix_bytes] (gauges), always-current at export
    time. *)
