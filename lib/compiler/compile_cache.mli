(** Content-addressed compile cache.

    Repeated [Compile]/[run] calls on identical sources are the common case
    under interactive and serving workloads; a compile is 10³–10⁶× the cost
    of a call, so the facade memoizes compilation results keyed by a content
    hash of (source expression FullForm, every {!Options.t} field, backend
    target).  Bounded LRU with lookup/hit/miss/eviction counters.

    Domain-safe: the table and LRU clock are guarded by a mutex, the
    counters are atomics (so a lookup interleaving an insert can't drift
    them — [hits + misses = lookups] always holds), and
    {!find_or_compute} deduplicates in-flight compiles per key: two domains
    asking for the same missing key run one compile, not two. *)

type stats = {
  lookups : int;   (** find + find_or_compute calls; = hits + misses *)
  hits : int;
  misses : int;
  evictions : int;
  entries : int;   (** current resident entries *)
}

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** LRU-bounded cache; default capacity 128. *)

val key : source:Wolf_wexpr.Expr.t -> options:Options.t -> target:string -> string
(** Content hash of the compilation inputs.  [target] should name the
    backend (and anything else that selects a different compilation
    result, e.g. the function name). *)

val find : 'a t -> string -> 'a option
(** Lookup; records a hit or a miss and refreshes LRU recency. *)

val add : 'a t -> string -> 'a -> unit
(** Insert, evicting the least-recently-used entry when full. *)

val find_or_compute : 'a t -> string -> build:(unit -> 'a) -> 'a
(** [find_or_compute c k ~build] returns the cached value for [k], or runs
    [build] (outside the cache lock) and inserts the result.  If another
    domain is already building [k], blocks until that compile lands and
    returns its value — one compile per key, however many domains miss
    simultaneously.  Counts one hit or one miss per call.  If [build]
    raises, nothing is cached and one waiter retries. *)

val stats : 'a t -> stats
val length : 'a t -> int

val clear : 'a t -> unit
(** Drop all entries and zero the counters. *)
