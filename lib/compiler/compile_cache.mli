(** Content-addressed compile cache.

    Repeated [Compile]/[run] calls on identical sources are the common case
    under interactive and serving workloads; a compile is 10³–10⁶× the cost
    of a call, so the facade memoizes compilation results keyed by a content
    hash of (source expression FullForm, every {!Options.t} field, backend
    target).  Bounded LRU with hit/miss/eviction counters. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;   (** current resident entries *)
}

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** LRU-bounded cache; default capacity 128. *)

val key : source:Wolf_wexpr.Expr.t -> options:Options.t -> target:string -> string
(** Content hash of the compilation inputs.  [target] should name the
    backend (and anything else that selects a different compilation
    result, e.g. the function name). *)

val find : 'a t -> string -> 'a option
(** Lookup; records a hit or a miss and refreshes LRU recency. *)

val add : 'a t -> string -> 'a -> unit
(** Insert, evicting the least-recently-used entry when full. *)

val stats : 'a t -> stats
val length : 'a t -> int

val clear : 'a t -> unit
(** Drop all entries and zero the counters. *)
