open Wir

(* Constant evaluation of pure primitives on constant operands.  Overflow or
   any runtime failure aborts the fold (the check then happens at runtime,
   preserving soft-failure semantics). *)
let eval_prim base (args : const array) : const option =
  let open Wolf_base in
  let ii f = match args with [| Cint a; Cint b |] -> Some (f a b) | _ -> None in
  let rr f = match args with [| Creal a; Creal b |] -> Some (f a b) | _ -> None in
  try
    match base with
    | "checked_binary_plus" -> Option.map (fun v -> Cint v) (ii Checked.add)
    | "checked_binary_subtract" -> Option.map (fun v -> Cint v) (ii Checked.sub)
    | "checked_binary_times" -> Option.map (fun v -> Cint v) (ii Checked.mul)
    | "checked_binary_mod" -> Option.map (fun v -> Cint v) (ii Checked.modulo)
    | "checked_binary_quotient" -> Option.map (fun v -> Cint v) (ii Checked.quotient)
    | "checked_binary_power" -> Option.map (fun v -> Cint v) (ii Checked.pow)
    | "binary_plus" -> Option.map (fun v -> Creal v) (rr ( +. ))
    | "binary_subtract" -> Option.map (fun v -> Creal v) (rr ( -. ))
    | "binary_times" -> Option.map (fun v -> Creal v) (rr ( *. ))
    | "binary_divide" -> Option.map (fun v -> Creal v) (rr ( /. ))
    | "binary_bitand" -> Option.map (fun v -> Cint v) (ii ( land ))
    | "binary_bitor" -> Option.map (fun v -> Cint v) (ii ( lor ))
    | "binary_bitxor" -> Option.map (fun v -> Cint v) (ii ( lxor ))
    | "binary_shiftleft" -> Option.map (fun v -> Cint v) (ii ( lsl ))
    | "binary_shiftright" -> Option.map (fun v -> Cint v) (ii ( asr ))
    | "binary_less" -> ii (fun a b -> if a < b then 1 else 0)
                       |> Option.map (fun v -> Cbool (v = 1))
    | "binary_greater" -> ii (fun a b -> if a > b then 1 else 0)
                          |> Option.map (fun v -> Cbool (v = 1))
    | "binary_less_equal" -> ii (fun a b -> if a <= b then 1 else 0)
                             |> Option.map (fun v -> Cbool (v = 1))
    | "binary_greater_equal" -> ii (fun a b -> if a >= b then 1 else 0)
                                |> Option.map (fun v -> Cbool (v = 1))
    | "binary_equal" -> ii (fun a b -> if a = b then 1 else 0)
                        |> Option.map (fun v -> Cbool (v = 1))
    | "unary_not" -> (match args with [| Cbool b |] -> Some (Cbool (not b)) | _ -> None)
    | "int_to_real" -> (match args with [| Cint i |] -> Some (Creal (float_of_int i)) | _ -> None)
    | "unary_sin" -> (match args with [| Creal r |] -> Some (Creal (sin r)) | _ -> None)
    | "unary_cos" -> (match args with [| Creal r |] -> Some (Creal (cos r)) | _ -> None)
    | "unary_minus" -> (match args with [| Creal r |] -> Some (Creal (-.r)) | _ -> None)
    | "checked_unary_minus" ->
      (match args with [| Cint i |] -> Some (Cint (Checked.neg i)) | _ -> None)
    | _ -> None
  with Errors.Runtime_error _ -> None

(* Only immutable scalar constants may be propagated through Copy chains.
   A [Cexpr] constant can hold a packed tensor: propagating it would replace
   distinct materialisations (each its own runtime value under the memory
   pass's acquire/release discipline) with one shared static tensor, and an
   in-place [part_set] on one alias would then corrupt the others — and the
   constant itself — across calls (the paper's E7 static-constants issue,
   found by the differential fuzzer). *)
let propagatable = function
  | Cvoid | Cint _ | Creal _ | Cbool _ | Cstr _ -> true
  | Cexpr _ -> false

let run (p : program) =
  let changed = ref false in
  List.iter
    (fun f ->
       (* map vid -> constant for vars defined as Copy of a constant *)
       let consts : (int, const) Hashtbl.t = Hashtbl.create 16 in
       let subst op =
         match op with
         | Ovar v ->
           (match Hashtbl.find_opt consts v.vid with
            | Some c -> changed := true; Oconst c
            | None -> op)
         | Oconst _ -> op
       in
       (* collect + rewrite until stable inside the function *)
       let folded_branch = ref false in
       let local_changed = ref true in
       while !local_changed do
         local_changed := false;
         List.iter
           (fun b ->
              b.instrs <-
                List.map
                  (fun i ->
                     let i = map_instr_operands subst i in
                     match i with
                     | Copy { dst; src = Oconst c } when propagatable c ->
                       if not (Hashtbl.mem consts dst.vid) then begin
                         Hashtbl.replace consts dst.vid c;
                         local_changed := true
                       end;
                       i
                     | Call { dst; callee = Resolved { base; _ }; args }
                       when Array.for_all (function Oconst _ -> true | Ovar _ -> false) args ->
                       let cargs =
                         Array.map (function Oconst c -> c | Ovar _ -> assert false) args
                       in
                       (match eval_prim base cargs with
                        | Some c ->
                          if not (Hashtbl.mem consts dst.vid) then begin
                            Hashtbl.replace consts dst.vid c;
                            local_changed := true;
                            changed := true
                          end;
                          Copy { dst; src = Oconst c }
                        | None -> i)
                     | _ -> i)
                  b.instrs;
              b.term <- map_term_operands subst b.term;
              (match b.term with
               | Branch { cond = Oconst (Cbool c); if_true; if_false } ->
                 b.term <- Jump (if c then if_true else if_false);
                 folded_branch := true;
                 changed := true;
                 local_changed := true
               | _ -> ()))
           f.blocks
       done;
       (* a folded branch can cut blocks off the CFG; drop them at once so
          the no-orphan invariant holds after every pass, not only after
          the next simplify-cfg run *)
       if !folded_branch then ignore (Opt_simplify_cfg.drop_unreachable f))
    p.funcs;
  !changed
