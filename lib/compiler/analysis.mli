(** CFG analyses shared by the optimisation and obligation passes:
    dominators (Cooper–Harvey–Kennedy), the loop headers derived from back
    edges (used by {!Abort_pass}, paper §4.5), and per-block liveness (used
    by {!Memory_pass} and {!Mutability_pass}). *)

type cfg = {
  order : int array;                  (** reverse postorder of block labels *)
  preds : (int, int list) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;
  idom : (int, int) Hashtbl.t;        (** immediate dominators; entry maps to itself *)
}

val build_cfg : Wir.func -> cfg
val dominates : cfg -> int -> int -> bool

val loop_headers : Wir.func -> cfg -> int list
(** Labels that are the target of a back edge (their source being dominated
    by the target): the natural-loop headers where abort checks go. *)

type loop = {
  lheader : int;       (** header block label *)
  latches : int list;  (** back-edge sources, sorted *)
  lbody : int list;    (** body labels including the header, sorted *)
  ldepth : int;        (** nesting depth, 1 = outermost *)
}

val natural_loops : Wir.func -> cfg -> loop list
(** Natural loops from back edges; loops sharing a header are merged.
    Sorted by header label. *)

val loop_contains : loop -> int -> bool

val innermost : loop list -> loop -> bool
(** [innermost loops l]: no distinct loop of [loops] is nested inside [l]. *)

val ensure_preheader : Wir.func -> header:int -> latches:int list -> int
(** Label of the loop's preheader, creating one (splitting the entry edges
    with a fresh block that forwards the header's parameters) unless a
    unique fall-through entry predecessor already qualifies.  Must not be
    called on the entry block. *)

val def_table : Wir.func -> (int, Wir.instr) Hashtbl.t
(** Defining instruction of each variable id (block parameters excluded). *)

val chase_copies : (int, Wir.instr) Hashtbl.t -> Wir.var -> Wir.var
(** Follow SSA [Copy] chains from [def_table] to the root variable. *)

val resolved_def : (int, Wir.instr) Hashtbl.t -> Wir.var -> Wir.instr option
(** The defining instruction after chasing copies. *)

val incoming_jumps : Wir.func -> int -> (int * Wir.jump) list
(** All (source label, jump) edges in the function targeting a label. *)

val entry_consts_ge :
  Wir.func -> latches:int list -> label:int -> pos:int -> bound:int ->
  depth:int -> bool
(** Does every value reaching parameter [pos] of [label] over non-[latches]
    edges come from an integer constant [>= bound]?  Traces through
    forwarding block parameters up to 3 - [depth] levels; call with
    [~depth:0]. *)

val live_out : Wir.func -> (int, (int, unit) Hashtbl.t) Hashtbl.t
(** Variable ids live out of each block. *)

val live_in : Wir.func -> (int, (int, unit) Hashtbl.t) Hashtbl.t
(** Variable ids live into each block (excluding the block's own
    parameters). *)

val use_counts : Wir.func -> (int, int) Hashtbl.t
(** Total number of uses of each variable id in the function. *)
