open Wir

(* Gradual agreement: a type check only fires when both sides are ground.
   Mid-inference the IR legitimately carries unification variables, and
   passes may introduce untyped instructions that a later inference run
   types (paper §4.5). *)
let agree a b = (not (Types.is_ground a)) || (not (Types.is_ground b)) || Types.equal a b

let ty_str = function
  | None -> "?"
  | Some t -> Types.to_string t

let check_func f =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (match f.blocks with
   | [] -> err "%s: function has no blocks" f.fname
   | _ -> ());
  if f.blocks <> [] then begin
    let entry_label = (List.hd f.blocks).label in
    (* ---- structure: unique labels ---- *)
    let labels = Hashtbl.create 16 in
    List.iter
      (fun b ->
         if Hashtbl.mem labels b.label then
           err "%s: duplicate block b%d" f.fname b.label
         else Hashtbl.add labels b.label b)
      f.blocks;
    (* ---- structure: single static assignment ---- *)
    let defs : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let define v label =
      if Hashtbl.mem defs v.vid then
        err "%s: variable %%%d defined twice (second in b%d)" f.fname v.vid label
      else Hashtbl.add defs v.vid ()
    in
    List.iter
      (fun b ->
         Array.iter (fun v -> define v b.label) b.bparams;
         List.iter
           (fun i -> List.iter (fun v -> define v b.label) (instr_defs i))
           b.instrs)
      f.blocks;
    (* ---- entry-block discipline ---- *)
    (match f.blocks with
     | e :: _ when Array.length e.bparams > 0 ->
       err "%s: entry block b%d declares %d parameters (must have none)" f.fname
         e.label (Array.length e.bparams)
     | _ -> ());
    List.iter
      (fun b ->
         List.iter
           (fun i ->
              match i with
              | Load_argument { dst; index } ->
                if b.label <> entry_label then
                  err "%s: b%d Load_argument %%%d outside the entry block" f.fname
                    b.label dst.vid;
                if index < 0 || index >= Array.length f.fparams then
                  err "%s: b%d Load_argument index %d out of range (%d parameters)"
                    f.fname b.label index (Array.length f.fparams)
                else begin
                  match dst.vty, f.fparams.(index).vty with
                  | Some dt, Some pt when not (agree dt pt) ->
                    err "%s: b%d Load_argument %d: destination %%%d : %s but \
                         parameter is %s"
                      f.fname b.label index dst.vid (Types.to_string dt)
                      (Types.to_string pt)
                  | _ -> ()
                end
              | _ -> ())
           b.instrs)
      f.blocks;
    (* ---- jumps: targets exist, never the entry, arity and types agree ---- *)
    let check_jump src (j : jump) =
      if j.target = entry_label then
        err "%s: b%d jumps to the entry block b%d" f.fname src j.target;
      match Hashtbl.find_opt labels j.target with
      | None -> err "%s: b%d jumps to missing block b%d" f.fname src j.target
      | Some tgt ->
        if Array.length j.jargs <> Array.length tgt.bparams then
          err "%s: b%d -> b%d passes %d args, block expects %d" f.fname src j.target
            (Array.length j.jargs) (Array.length tgt.bparams)
        else
          Array.iteri
            (fun k arg ->
               match operand_ty arg, tgt.bparams.(k).vty with
               | Some at, Some pt when not (agree at pt) ->
                 err "%s: b%d -> b%d argument %d has type %s, parameter %%%d \
                      expects %s"
                   f.fname src j.target k (Types.to_string at) tgt.bparams.(k).vid
                   (Types.to_string pt)
               | _ -> ())
            j.jargs
    in
    List.iter
      (fun b ->
         match b.term with
         | Jump j -> check_jump b.label j
         | Branch { cond; if_true; if_false } ->
           (match operand_ty cond with
            | Some t when Types.is_ground t && not (Types.equal t Types.boolean) ->
              err "%s: b%d branch condition has type %s (expected %s)" f.fname
                b.label (Types.to_string t) (Types.to_string Types.boolean)
            | _ -> ());
           check_jump b.label if_true;
           check_jump b.label if_false
         | Return op ->
           (match operand_ty op, f.ret_ty with
            | Some ot, Some rt when not (agree ot rt) ->
              err "%s: b%d returns %s but the function is declared %s" f.fname
                b.label (Types.to_string ot) (Types.to_string rt)
            | _ -> ())
         | Unreachable -> ())
      f.blocks;
    (* ---- reachability: no orphan blocks ---- *)
    let reachable = Hashtbl.create 16 in
    let rec visit l =
      if not (Hashtbl.mem reachable l) then begin
        Hashtbl.replace reachable l ();
        match Hashtbl.find_opt labels l with
        | Some b -> List.iter visit (successors b.term)
        | None -> ()
      end
    in
    visit entry_label;
    List.iter
      (fun b ->
         if not (Hashtbl.mem reachable b.label) then
           err "%s: orphan block b%d is unreachable from the entry" f.fname b.label)
      f.blocks;
    (* ---- per-instruction type sanity ---- *)
    List.iter
      (fun b ->
         List.iter
           (fun i ->
              match i with
              | Copy { dst; src } | Copy_value { dst; src } -> (
                match dst.vty, operand_ty src with
                | Some dt, Some st when not (agree dt st) ->
                  err "%s: b%d copy %%%d : %s from operand of type %s" f.fname
                    b.label dst.vid (Types.to_string dt) (Types.to_string st)
                | _ -> ())
              | Abort_poll { stride; _ } ->
                if stride < 2 then
                  err "%s: b%d Abort_poll stride %d (must be >= 2)" f.fname b.label
                    stride
              | _ -> ())
           b.instrs)
      f.blocks;
    (* ---- dominance of uses over reachable blocks ----
       Forward dataflow computing, per block, the set of variables defined
       on *every* path from the entry (initialised to the universe and
       intersected over incoming edges): for block-argument SSA this is
       exactly the set whose definitions dominate the block entry.  Orphan
       blocks are excluded — they were already reported above and have no
       meaningful entry state.

       Sets are dense bitsets over a vid->index table and per-block def
       sets are computed once, outside the fixpoint: the verifier runs
       after every pass, so this inner loop dominates its cost. *)
    let rblocks =
      Array.of_list (List.filter (fun b -> Hashtbl.mem reachable b.label) f.blocks)
    in
    let nblocks = Array.length rblocks in
    let uses_vars ops =
      List.filter_map (function Ovar v -> Some v | Oconst _ -> None) ops
    in
    let vidx : (int, int) Hashtbl.t = Hashtbl.create (Hashtbl.length defs) in
    let register vid =
      if not (Hashtbl.mem vidx vid) then Hashtbl.replace vidx vid (Hashtbl.length vidx)
    in
    Hashtbl.iter (fun vid _ -> register vid) defs;
    (* never-defined variables still need a slot (that stays unset) so their
       uses are reported rather than crashing the index lookup *)
    Array.iter
      (fun b ->
         List.iter
           (fun i -> List.iter (fun v -> register v.vid) (uses_vars (instr_uses i)))
           b.instrs;
         List.iter (fun v -> register v.vid) (uses_vars (term_uses b.term)))
      rblocks;
    let nvars = Hashtbl.length vidx in
    let idx_of v = Hashtbl.find vidx v.vid in
    let mk_set fill = Bytes.make (max 1 nvars) (if fill then '\001' else '\000') in
    let block_pos : (int, int) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri (fun i b -> Hashtbl.replace block_pos b.label i) rblocks;
    let gen = Array.init nblocks (fun _ -> mk_set false) in
    Array.iteri
      (fun i b ->
         let g = gen.(i) in
         Array.iter (fun v -> Bytes.set g (idx_of v) '\001') b.bparams;
         List.iter
           (fun ins -> List.iter (fun v -> Bytes.set g (idx_of v) '\001') (instr_defs ins))
           b.instrs)
      rblocks;
    let in_sets = Array.init nblocks (fun i -> mk_set (i <> 0)) in
    let scratch = mk_set false in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iteri
        (fun i b ->
           (* out = in ∪ gen, built in the scratch set *)
           let inset = in_sets.(i) and g = gen.(i) in
           for k = 0 to Bytes.length scratch - 1 do
             Bytes.unsafe_set scratch k
               (if Bytes.unsafe_get inset k = '\001' || Bytes.unsafe_get g k = '\001'
                then '\001' else '\000')
           done;
           List.iter
             (fun succ ->
                if succ <> entry_label then
                  match Hashtbl.find_opt block_pos succ with
                  | None -> ()
                  | Some j ->
                    let succ_in = in_sets.(j) in
                    for k = 0 to Bytes.length succ_in - 1 do
                      if Bytes.unsafe_get succ_in k = '\001'
                         && Bytes.unsafe_get scratch k = '\000'
                      then begin
                        Bytes.unsafe_set succ_in k '\000';
                        changed := true
                      end
                    done)
             (successors b.term))
        rblocks
    done;
    Array.iteri
      (fun i b ->
         let live = Bytes.copy in_sets.(i) in
         Array.iter (fun v -> Bytes.set live (idx_of v) '\001') b.bparams;
         let use_check where v =
           let k = idx_of v in
           if Bytes.get live k = '\000' then
             if Hashtbl.mem defs v.vid then
               err "%s: b%d %s uses %%%d before its definition dominates it"
                 f.fname b.label where v.vid
             else
               err "%s: b%d %s uses undefined variable %%%d (%s : %s)" f.fname
                 b.label where v.vid v.vname (ty_str v.vty)
         in
         List.iter
           (fun ins ->
              List.iter (use_check "instr") (uses_vars (instr_uses ins));
              List.iter (fun v -> Bytes.set live (idx_of v) '\001') (instr_defs ins))
           b.instrs;
         List.iter (use_check "terminator") (uses_vars (term_uses b.term)))
      rblocks
  end;
  if !errors = [] then Ok () else Error (List.rev !errors)

let check_program p =
  let all =
    List.concat_map
      (fun f -> match check_func f with Ok () -> [] | Error es -> es)
      p.funcs
  in
  (* program level: function references resolve, with matching arity *)
  let arity = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace arity f.fname (Array.length f.fparams))
    p.funcs;
  let all =
    all
    @ List.concat_map
        (fun f ->
           List.concat_map
             (fun b ->
                List.filter_map
                  (fun i ->
                     match i with
                     | Call { callee = Func name; args; _ } -> (
                       match Hashtbl.find_opt arity name with
                       | None ->
                         Some
                           (Printf.sprintf "%s: b%d calls missing function %s"
                              f.fname b.label name)
                       | Some n when n <> Array.length args ->
                         Some
                           (Printf.sprintf
                              "%s: b%d calls %s with %d args (expects %d)" f.fname
                              b.label name (Array.length args) n)
                       | Some _ -> None)
                     | New_closure { fname = name; _ }
                       when not (Hashtbl.mem arity name) ->
                       Some
                         (Printf.sprintf "%s: b%d closes over missing function %s"
                            f.fname b.label name)
                     | _ -> None)
                  b.instrs)
             f.blocks)
        p.funcs
  in
  if all = [] then Ok () else Error all

let assert_ok pass p =
  match check_program p with
  | Ok () -> ()
  | Error es ->
    Wolf_base.Errors.compile_errorf "IR verifier after pass %s:@\n%s" pass
      (String.concat "\n" es)
