open Wir

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Primitives that can raise a runtime failure on well-typed operands:
   integer overflow and division by zero (the checked_ family), Part and
   string bounds, dimension mismatches (the dot_ and array_ families),
   expression coercions, float-to-int conversions.  A dead instruction
   that can fail is still
   observable — the interpreter reports the failure, so compiled code
   must reach it too (the differential fuzzer found exactly this: a dead
   Quotient[x, 0] folded away turned a Failed run into a value). *)
let can_fail base =
  match base with
  (* overflow-only checked arithmetic is removable when dead: on overflow
     the compiled function soft-falls back to the interpreter, whose
     bignum result is exactly what the program computes without the dead
     op, so erasing it cannot change the observable outcome *)
  | "checked_binary_plus" | "checked_binary_subtract"
  | "checked_binary_times" | "checked_unary_minus" | "checked_unary_abs" ->
    false
  | _ ->
    has_prefix "checked_" base || has_prefix "part_" base
    || has_prefix "string_" base || has_prefix "expr_" base
    || has_prefix "dot_" base || has_prefix "array_" base
    || has_prefix "complex_" base
    || (match base with
        | "unary_round" | "unary_floor" | "unary_ceiling" | "unary_truncate"
        | "binary_power" | "binary_power_ri" | "from_character_code"
        | "range" | "range2" -> true
        | _ -> false)

let pure_instr = function
  | Copy _ | New_closure _ | Copy_value _ -> true
  | Call { callee = Resolved { base; _ }; _ } ->
    (* conservative purity: explicit effects (randomness, in-place part
       updates, which can_fail already covers via part_) plus anything
       whose failure is an observable result *)
    not (has_prefix "random" base) && not (can_fail base)
  | Call _ -> false
  | Load_argument _ -> true
  | Kernel_call _ -> false
  | Abort_check | Abort_poll _ | Mem_acquire _ | Mem_release _ -> false

let run (p : program) =
  let changed = ref false in
  List.iter
    (fun f ->
       let pass () =
         let counts = Analysis.use_counts f in
         let used v = Option.value ~default:0 (Hashtbl.find_opt counts v.vid) > 0 in
         let local = ref false in
         (* drop dead pure instructions (never function parameters) *)
         let param_ids =
           Array.to_list f.fparams |> List.map (fun v -> v.vid)
         in
         List.iter
           (fun b ->
              let before = List.length b.instrs in
              b.instrs <-
                List.filter
                  (fun i ->
                     match instr_defs i with
                     | [ dst ]
                       when pure_instr i && (not (used dst))
                         && not (List.mem dst.vid param_ids) ->
                       false
                     | _ -> true)
                  b.instrs;
              if List.length b.instrs <> before then local := true)
           f.blocks;
         (* drop unused block parameters *)
         let counts = Analysis.use_counts f in
         let used_id vid = Option.value ~default:0 (Hashtbl.find_opt counts vid) > 0 in
         List.iter
           (fun b ->
              let keep = Array.map (fun v -> used_id v.vid) b.bparams in
              if Array.exists not keep then begin
                local := true;
                let filter_args args =
                  Array.of_list
                    (List.filteri (fun i _ -> keep.(i)) (Array.to_list args))
                in
                b.bparams <- filter_args b.bparams;
                (* fix all jumps into b *)
                List.iter
                  (fun src ->
                     let fix j =
                       if j.target = b.label then { j with jargs = filter_args j.jargs }
                       else j
                     in
                     src.term <-
                       (match src.term with
                        | Jump j -> Jump (fix j)
                        | Branch { cond; if_true; if_false } ->
                          Branch { cond; if_true = fix if_true; if_false = fix if_false }
                        | t -> t))
                  f.blocks
              end)
           f.blocks;
         !local
       in
       let rec fix () = if pass () then begin changed := true; fix () end in
       fix ())
    p.funcs;
  !changed
