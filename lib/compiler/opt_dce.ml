open Wir

let pure_instr = function
  | Copy _ | New_closure _ | Copy_value _ -> true
  | Call { callee = Resolved { base; _ }; _ } ->
    (* conservative purity: everything except explicit effects; our primitive
       set is effect-free apart from randomness and in-place part updates *)
    not (String.length base >= 6 && String.sub base 0 6 = "random")
    && not (String.length base >= 8 && String.sub base 0 8 = "part_set")
  | Call _ -> false
  | Load_argument _ -> true
  | Kernel_call _ -> false
  | Abort_check | Abort_poll _ | Mem_acquire _ | Mem_release _ -> false

let run (p : program) =
  let changed = ref false in
  List.iter
    (fun f ->
       let pass () =
         let counts = Analysis.use_counts f in
         let used v = Option.value ~default:0 (Hashtbl.find_opt counts v.vid) > 0 in
         let local = ref false in
         (* drop dead pure instructions (never function parameters) *)
         let param_ids =
           Array.to_list f.fparams |> List.map (fun v -> v.vid)
         in
         List.iter
           (fun b ->
              let before = List.length b.instrs in
              b.instrs <-
                List.filter
                  (fun i ->
                     match instr_defs i with
                     | [ dst ]
                       when pure_instr i && (not (used dst))
                         && not (List.mem dst.vid param_ids) ->
                       false
                     | _ -> true)
                  b.instrs;
              if List.length b.instrs <> before then local := true)
           f.blocks;
         (* drop unused block parameters *)
         let counts = Analysis.use_counts f in
         let used_id vid = Option.value ~default:0 (Hashtbl.find_opt counts vid) > 0 in
         List.iter
           (fun b ->
              let keep = Array.map (fun v -> used_id v.vid) b.bparams in
              if Array.exists not keep then begin
                local := true;
                let filter_args args =
                  Array.of_list
                    (List.filteri (fun i _ -> keep.(i)) (Array.to_list args))
                in
                b.bparams <- filter_args b.bparams;
                (* fix all jumps into b *)
                List.iter
                  (fun src ->
                     let fix j =
                       if j.target = b.label then { j with jargs = filter_args j.jargs }
                       else j
                     in
                     src.term <-
                       (match src.term with
                        | Jump j -> Jump (fix j)
                        | Branch { cond; if_true; if_false } ->
                          Branch { cond; if_true = fix if_true; if_false = fix if_false }
                        | t -> t))
                  f.blocks
              end)
           f.blocks;
         !local
       in
       let rec fix () = if pass () then begin changed := true; fix () end in
       fix ())
    p.funcs;
  !changed
