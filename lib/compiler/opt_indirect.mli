(** Indirect-call promotion: rewrite [Call (Indirect c)] where [c] chases to
    a same-function [New_closure] into a direct [Func] call with the captured
    operands prepended, and mark the lifted lambda inlinable.  Member of the
    optimisation fixpoint; feeds {!Opt_inline} (which only sees direct calls)
    and thereby {!Opt_parloop} (whose safety analysis rejects loops with
    indirect calls). *)

val run : Wir.program -> bool
(** Returns whether anything changed. *)
