(** The staged compilation pipeline (paper §4):

    MExpr → macro expansion → binding analysis → WIR (SSA) → type inference
    (TWIR) → function resolution → optimisation → mutability / abort /
    memory-management passes → a typed program ready for any backend.

    Users can inject passes (§4.7) and supply their own macro and type
    environments.  Every stage runs through the instrumented
    {!Pass_manager}: wall-clock time, instruction/block-count deltas,
    post-pass linting and dump-IR-after-pass hooks are recorded uniformly
    (the paper's benchmark suite measures per-pass times, experiment E8). *)

open Wolf_wexpr

type user_pass = {
  pass_name : string;
  pass_run : Wir.program -> unit;
}

type compiled = {
  program : Wir.program;
  resolution : (string, Infer.resolved) Hashtbl.t;
  coptions : Options.t;
  source : Expr.t;
  expanded : Expr.t;           (** after macro expansion (CompileToAST) *)
  timings : (string * float) list;  (** pass name → seconds, per run, in order *)
  stats : Pass_manager.stat list;
      (** aggregated per-pass instrumentation (runs, time, IR deltas) *)
  inplace_updates : int;       (** SetParts proven safe by Mutability_pass *)
}

val dump_hook : (string -> Wir.program -> unit) ref
(** Sink for [Options.dump_after] IR dumps (default: print to stderr). *)

val opt_passes : options:Options.t -> Pass_manager.pass list
(** The optimisation-fixpoint members for the given options (level ≥ 2
    widens the inlining budget). *)

val optimize : options:Options.t -> lint:bool -> Wir.program -> unit
(** Run the optimisation fixpoint alone on an already-typed program. *)

val compile :
  ?options:Options.t ->
  ?type_env:Type_env.t ->
  ?macro_env:Macro.env ->
  ?user_passes:user_pass list ->
  name:string ->
  Expr.t ->
  compiled
(** [compile ~name fexpr] compiles a [Function[…]] expression.
    @raise Wolf_base.Errors.Compile_error on any front-end failure. *)

val compile_to_ast :
  ?options:Options.t -> ?macro_env:Macro.env -> Expr.t -> Mexpr.t
(** The artifact's [CompileToAST]: macro expansion only. *)

val compile_to_wir :
  ?options:Options.t -> ?type_env:Type_env.t -> ?macro_env:Macro.env ->
  name:string -> Expr.t -> Wir.program
(** The artifact's [CompileToIR[…, "OptimizationLevel" -> None]]: untyped
    WIR before inference. *)
