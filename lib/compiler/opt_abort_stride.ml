(* Strided abort-check coalescing (the fig2 abortability-overhead fix).

   Abort_pass inserts an [Abort_check] at every loop header, which costs a
   counter increment, two flag loads and a branch per iteration — enough to
   dominate tight scalar loops (the paper's FNV1a/Histogram gap).  This pass
   removes the per-iteration cost of qualifying loops in one of two ways:

   1. Counted loops — [While[i <= n, ...; i = i + 1]] with a loop-invariant
      bound, integer-constant starts >= 0 and a header-resident guard — are
      strip-mined: the body runs in check-free chunks of at most [stride]
      iterations under a tightened bound, and a new outer chunk loop runs
      the real [Abort_check] once per chunk.  The hot path contains no
      check instructions at all.

   2. Any other qualifying loop keeps a per-iteration instruction, but a
      cheap one: [Abort_poll { stride }], a per-site countdown that runs the
      real check only every [stride] back-edges.

   Either way an [Abort[]] still interrupts the loop within one stride.

   Qualifying loops are innermost and call-free.  Headers of loops that
   contain nested loops keep the immediate check (their trip counts are
   small relative to the work per iteration, and the nested headers poll),
   as do loops making function/indirect/kernel calls (the callee checks at
   its own prologue and headers, and an iteration is expensive anyway).  The
   function prologue check is untouched.

   Runs once, directly after abort-insertion and outside the optimisation
   fixpoint, so poll sites get stable sequential ids. *)

open Wir

let has_call block =
  List.exists
    (function
      | Call { callee = Func _ | Indirect _; _ } | Kernel_call _ -> true
      | _ -> false)
    block.instrs

(* ------------------------------------------------------------------ *)
(* Counted-loop strip-mining.

   Shape recognised (hdr = loop header, already starting with Abort_check):

     hdr(.., i, ..):  c = i <= n          (or i < n; n loop-invariant)
                      Branch c ? body : exit(xargs)
     latches:         jump hdr(.., i + 1, ..)

   with every entry edge passing an integer constant >= 0 for i.  Rewritten
   to (hdr keeps its label and parameters, plus a fresh bound parameter lim;
   body blocks and the exit edge are untouched):

     outer(p..):        Abort_check       (once per chunk)
                        c2 = p_i <= n
                        Branch c2 ? setup : dead
     setup:             rem  = n - p_i    (0 <= p_i <= n: cannot trap)
                        stp  = min(rem, chunk)
                        lim1 = p_i + stp  (<= n: cannot trap)
                        jump hdr(p.., lim1)
     dead:              dl = p_i - 1      (p_i >= 0: cannot trap; only for <=)
                        jump hdr(p.., dl) (guard fails at once -> exit)
     hdr(.., i, .., lim): c = i <= lim    (bound tightened)
                        Branch c ? body : back
     latches:           jump hdr(.., i + 1, .., lim)
     back:              c3 = i <= n       (the original guard, recomputed)
                        Branch c3 ? outer(i..) : exit(xargs)

   The false arm need not leave the loop: [back] recomputes the original
   guard over the same operands, so when it still holds the only effect of
   a chunk boundary is the outer round trip (which forwards every header
   parameter unchanged and recomputes [lim] > i), and when it fails control
   continues exactly where the original false arm went, with the original
   arguments.  This covers short-circuit guards like
   [While[i < 1000 && escaped, ...]], whose exit lives in a join block
   rather than on the header edge.

   Dominance is preserved: hdr still dominates [back] and (when the false
   arm does exit) the exit region, so no uses are rewritten.  The iteration
   sequence of [i] is unchanged, every bounds-check-eliminated access stays
   guarded by [i <= lim <= n], the body runs at most [stride] iterations
   between checks, and a zero-trip entry (start > n) leaves through [dead]
   without executing the body. *)

let strip_mine f (l : Analysis.loop) ~stride =
  let hdr = find_block f l.lheader in
  let in_body = Analysis.loop_contains l in
  let def_of = Analysis.def_table f in
  let loop_defs = Hashtbl.create 32 in
  List.iter
    (fun b ->
       if in_body b.label then begin
         Array.iter (fun v -> Hashtbl.replace loop_defs v.vid ()) b.bparams;
         List.iter
           (fun i ->
              List.iter (fun v -> Hashtbl.replace loop_defs v.vid ()) (instr_defs i))
           b.instrs
       end)
    f.blocks;
  let invariant = function
    | Oconst (Cint _) -> true
    | Ovar v -> not (Hashtbl.mem loop_defs v.vid)
    | Oconst _ -> false
  in
  match hdr.term with
  | Branch { cond = Ovar c; if_true; if_false } when in_body if_true.target -> (
    let uses = Analysis.use_counts f in
    (* the guard must live in the header and feed only this branch, so
       tightening its bound cannot leak into any other value *)
    let guard_in_hdr =
      List.exists
        (fun i -> List.exists (fun v -> v.vid = c.vid) (instr_defs i))
        hdr.instrs
    in
    match Hashtbl.find_opt def_of c.vid with
    | Some
        (Call
           { callee = Resolved { base = ("binary_less" | "binary_less_equal") as base;
                                 mangled };
             args = [| Ovar iv; nv_op |];
             _ })
      when guard_in_hdr
           && Hashtbl.find_opt uses c.vid = Some 1
           && invariant nv_op ->
      let pos = ref (-1) in
      Array.iteri (fun q p -> if p.vid = iv.vid then pos := q) hdr.bparams;
      let steps_by_one =
        !pos >= 0
        && List.for_all
             (fun (src, (j : jump)) ->
                (not (List.mem src l.latches))
                ||
                match j.jargs.(!pos) with
                | Ovar s -> (
                  match Analysis.resolved_def def_of s with
                  | Some
                      (Call
                         { callee = Resolved { base = "checked_binary_plus"; _ };
                           args = [| Ovar i'; Oconst (Cint 1) |];
                           _ }) ->
                    (Analysis.chase_copies def_of i').vid = iv.vid
                  | _ -> false)
                | _ -> false)
             (Analysis.incoming_jumps f l.lheader)
      in
      if
        (not steps_by_one)
        || not
             (Analysis.entry_consts_ge f ~latches:l.latches ~label:l.lheader
                ~pos:!pos ~bound:0 ~depth:0)
      then false
      else begin
        let max_label =
          List.fold_left (fun acc b -> max acc b.label) 0 f.blocks
        in
        let outer_l = max_label + 1 in
        let setup_l = max_label + 2 in
        let dead_l = max_label + 3 in
        let back_l = max_label + 4 in
        let op =
          Array.map (fun v -> fresh_var ~name:v.vname ?ty:v.vty ()) hdr.bparams
        in
        let op_args = Array.map (fun v -> Ovar v) op in
        let suffix =
          String.sub mangled (String.length base)
            (String.length mangled - String.length base)
        in
        let resolved b = Resolved { base = b; mangled = b ^ suffix } in
        let c2 = fresh_var ~name:c.vname ?ty:c.vty () in
        let c3 = fresh_var ~name:c.vname ?ty:c.vty () in
        let rem = fresh_var ~name:"rem" ?ty:iv.vty () in
        let stp = fresh_var ~name:"step" ?ty:iv.vty () in
        let lim1 = fresh_var ~name:"lim" ?ty:iv.vty () in
        let limp = fresh_var ~name:"lim" ?ty:iv.vty () in
        (* i <= lim admits step+1 iterations per chunk; i < lim admits step *)
        let chunk = if base = "binary_less_equal" then stride - 1 else stride in
        let outer =
          { label = outer_l;
            bparams = op;
            instrs =
              [ Abort_check;
                Call
                  { dst = c2;
                    callee = Resolved { base; mangled };
                    args = [| Ovar op.(!pos); nv_op |] } ];
            term =
              Branch
                { cond = Ovar c2;
                  if_true = { target = setup_l; jargs = [||] };
                  if_false = { target = dead_l; jargs = [||] } } }
        in
        let setup =
          { label = setup_l;
            bparams = [||];
            instrs =
              [ Call
                  { dst = rem;
                    callee = resolved "checked_binary_subtract";
                    args = [| nv_op; Ovar op.(!pos) |] };
                Call
                  { dst = stp;
                    callee = resolved "binary_min";
                    args = [| Ovar rem; Oconst (Cint chunk) |] };
                Call
                  { dst = lim1;
                    callee = resolved "checked_binary_plus";
                    args = [| Ovar op.(!pos); Ovar stp |] } ];
            term =
              Jump
                { target = l.lheader;
                  jargs = Array.append op_args [| Ovar lim1 |] } }
        in
        let dead =
          (* a bound that fails the tightened guard immediately: i - 1 for
             <= (i >= 0, so no trap), i itself for < *)
          if base = "binary_less_equal" then begin
            let dl = fresh_var ~name:"lim" ?ty:iv.vty () in
            { label = dead_l;
              bparams = [||];
              instrs =
                [ Call
                    { dst = dl;
                      callee = resolved "checked_binary_subtract";
                      args = [| Ovar op.(!pos); Oconst (Cint 1) |] } ];
              term =
                Jump
                  { target = l.lheader;
                    jargs = Array.append op_args [| Ovar dl |] } }
          end
          else
            { label = dead_l;
              bparams = [||];
              instrs = [];
              term =
                Jump
                  { target = l.lheader;
                    jargs = Array.append op_args [| Ovar op.(!pos) |] } }
        in
        let back =
          { label = back_l;
            bparams = [||];
            instrs =
              [ Call
                  { dst = c3;
                    callee = Resolved { base; mangled };
                    args = [| Ovar iv; nv_op |] } ];
            term =
              Branch
                { cond = Ovar c3;
                  if_true =
                    { target = outer_l;
                      jargs = Array.map (fun v -> Ovar v) hdr.bparams };
                  if_false = if_false } }
        in
        (* entry edges now feed the chunk loop *)
        List.iter
          (fun b ->
             if not (List.mem b.label l.latches) then begin
               let retarget (j : jump) =
                 if j.target = l.lheader then { j with target = outer_l } else j
               in
               b.term <-
                 (match b.term with
                  | Jump j -> Jump (retarget j)
                  | Branch { cond; if_true; if_false } ->
                    Branch
                      { cond;
                        if_true = retarget if_true;
                        if_false = retarget if_false }
                  | (Return _ | Unreachable) as t -> t)
             end)
          f.blocks;
        (* latches forward the chunk bound unchanged *)
        List.iter
          (fun latch ->
             let b = find_block f latch in
             let extend (j : jump) =
               if j.target = l.lheader then
                 { j with jargs = Array.append j.jargs [| Ovar limp |] }
               else j
             in
             b.term <-
               (match b.term with
                | Jump j -> Jump (extend j)
                | Branch { cond; if_true; if_false } ->
                  Branch
                    { cond; if_true = extend if_true; if_false = extend if_false }
                | (Return _ | Unreachable) as t -> t))
          l.latches;
        (* drop the header check, tighten the guard, reroute the exit *)
        hdr.bparams <- Array.append hdr.bparams [| limp |];
        hdr.instrs <-
          List.filter_map
            (fun i ->
               match i with
               | Abort_check -> None
               | Call { dst; callee; args = [| a; _ |] } when dst.vid = c.vid ->
                 Some (Call { dst; callee; args = [| a; Ovar limp |] })
               | i -> Some i)
            hdr.instrs;
        hdr.term <-
          Branch
            { cond = Ovar c;
              if_true;
              if_false = { target = back_l; jargs = [||] } };
        let rec insert = function
          | [] -> [ outer; setup; dead ]
          | b :: rest when b.label = l.lheader ->
            outer :: setup :: dead :: b :: back :: rest
          | b :: rest -> b :: insert rest
        in
        f.blocks <- insert f.blocks;
        true
      end
    | _ -> false)
  | _ -> false

let run ~stride (p : program) =
  let site = ref 0 in
  List.iter
    (fun f ->
       let entry_label = (entry f).label in
       let cfg = Analysis.build_cfg f in
       let loops = Analysis.natural_loops f cfg in
       List.iter
         (fun (l : Analysis.loop) ->
            let call_free =
              List.for_all
                (fun label -> not (has_call (find_block f label)))
                l.lbody
            in
            if l.lheader <> entry_label && Analysis.innermost loops l && call_free
            then begin
              let hdr = find_block f l.lheader in
              match hdr.instrs with
              | Abort_check :: rest ->
                if not (strip_mine f l ~stride) then begin
                  hdr.instrs <- Abort_poll { stride; site = !site } :: rest;
                  incr site
                end
              | _ -> ()
            end)
         loops)
    p.funcs
