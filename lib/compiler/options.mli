(** FunctionCompile options (paper §4.7: macro rules, passes and type-system
    definitions can be predicated on these). *)

type t = {
  abort_handling : bool;     (** insert abort checks (F3); "AbortHandling" *)
  inline_level : int;        (** 0 = off (the paper's 10× Mandelbrot ablation) *)
  kernel_escape : bool;      (** auto-escape unknown functions to the kernel *)
  opt_level : int;           (** 0 = none, 1 = standard TWIR optimisations *)
  static_constants : bool;   (** false = re-materialise constant arrays per
                                 call (the paper's PrimeQ 1.5× issue, E7) *)
  memory_management : bool;  (** insert acquire/release (F7) *)
  lint : bool;               (** run the SSA linter after each pass *)
  verify_each : bool;        (** run the full {!Wir_verify} IR verifier after
                                 every pass and record its time per pass
                                 (wolfc [--verify-each]; always on in fuzz
                                 mode) *)
  self_name : string option; (** name for recursive self-reference (cfib) *)
  target_system : string;    (** e.g. "LLVM", "WVM", "C"; macros may condition on it *)
  dump_after : string list;  (** dump IR after these passes ("all" = every pass) *)
  use_cache : bool;          (** consult the compile cache ({!Compile_cache}) *)
  loop_opts : bool;          (** natural-loop optimisations (LICM, bounds-check
                                 elimination, strided abort polling) at -O1+ *)
  abort_stride : int;        (** back-edges between real abort checks in
                                 innermost call-free loops (1 = every
                                 iteration) *)
  profile : bool;            (** instrument emitted functions with call
                                 counts and self-time
                                 ({!Wolf_obs.Profile}; wolfc
                                 [run --profile]) *)
  parallel_loops : bool;     (** recognise parallelisable counted loops and
                                 lower them onto the domain pool
                                 ({!Opt_parloop}; wolfc
                                 [run --parallel-loops]) *)
}

val default : t
val to_macro_options : t -> (string * Wolf_wexpr.Expr.t) list

val fingerprint : t -> string
(** Stable textual rendering of every field — the options component of a
    compile-cache key. *)
