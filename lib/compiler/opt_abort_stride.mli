(** Rewrites the header [Abort_check] of innermost call-free loops into a
    strided [Abort_poll] that runs the real check every [stride] back-edges.
    Must run after {!Abort_pass}; runs once so poll-site ids are stable. *)

val run : stride:int -> Wir.program -> unit
