(* Loop-invariant code motion plus bounds-check elimination (the loop
   optimisation layer).

   LICM hoists pure, non-trapping instructions whose operands are defined
   outside the loop (or themselves hoisted) into the loop's preheader.
   Hoisting is speculative — the preheader executes even for zero-trip
   loops — so only instructions that cannot raise are moved: Copy, and a
   whitelist of resolved primitives (float arithmetic, comparisons, length
   queries, ...).  Checked integer arithmetic (overflow/division traps) and
   element accesses (range traps) stay put.

   BCE then looks for the canonical counting-loop shape

     i = k (k >= 1); While[i <= n, ... t[[i]] ..., i = i + 1]

   where n = Length[t] (or StringLength[s]) is loop-invariant — after LICM
   has hoisted it when needed — and rewrites the guarded accesses to their
   _unchecked primitives.  Safety argument: i is an SSA header parameter, so
   it is fixed within an iteration; the false arm of the guard leaves the
   loop, so every body block executes only under i <= n; initial values on
   all entry edges are integer constants >= 1 and every latch steps the
   parameter by exactly +1, so 1 <= i <= Length holds at each rewritten
   access. *)

open Wir

(* Pure and non-trapping: safe to execute speculatively in the preheader. *)
let hoistable_base = function
  | "binary_plus" | "binary_subtract" | "binary_times" | "binary_divide"
  | "binary_power" | "binary_power_ri" | "unary_minus" | "unary_abs"
  | "binary_less" | "binary_greater" | "binary_less_equal"
  | "binary_greater_equal" | "binary_equal" | "binary_unequal"
  | "unary_not" | "binary_bitand" | "binary_bitor" | "binary_bitxor"
  | "unary_sin" | "unary_cos" | "unary_tan" | "unary_exp" | "unary_log"
  | "unary_sqrt" | "unary_floor" | "unary_ceiling" | "unary_round"
  | "unary_truncate" | "int_to_real" | "unary_identity_int"
  | "unary_identity_real" | "binary_min" | "binary_max" | "unary_evenq"
  | "unary_oddq" | "unary_boole" | "string_length" | "array_length"
  | "complex_binary_plus" | "complex_binary_subtract"
  | "complex_binary_times" | "complex_abs" | "complex_re" | "complex_im"
  | "complex_make" ->
    true
  | _ -> false

(* Same restriction as CSE: hoist only scalar results so packed-array
   aliasing and the memory pass are untouched. *)
let scalar_result v =
  match v.vty with
  | Some t ->
    (match Types.repr t with
     | Types.Con (("Integer64" | "Real64" | "Boolean" | "String" | "ComplexReal64"), _) ->
       true
     | _ -> false)
  | None -> false

let licm_loop f (l : Analysis.loop) =
  let in_body label = Analysis.loop_contains l label in
  let loop_defs = Hashtbl.create 32 in
  List.iter
    (fun b ->
       if in_body b.label then begin
         Array.iter (fun v -> Hashtbl.replace loop_defs v.vid ()) b.bparams;
         List.iter
           (fun i -> List.iter (fun v -> Hashtbl.replace loop_defs v.vid ()) (instr_defs i))
           b.instrs
       end)
    f.blocks;
  let hoisted_defs = Hashtbl.create 8 in
  let invariant_op = function
    | Oconst _ -> true
    | Ovar v -> (not (Hashtbl.mem loop_defs v.vid)) || Hashtbl.mem hoisted_defs v.vid
  in
  let hoistable = function
    | Copy { src; _ } -> invariant_op src
    | Call { dst; callee = Resolved { base; _ }; args } ->
      hoistable_base base && scalar_result dst && Array.for_all invariant_op args
    | _ -> false
  in
  let hoisted = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun b ->
         if in_body b.label then
           b.instrs <-
             List.filter
               (fun i ->
                  if hoistable i then begin
                    List.iter
                      (fun v -> Hashtbl.replace hoisted_defs v.vid ())
                      (instr_defs i);
                    hoisted := i :: !hoisted;
                    progress := true;
                    false
                  end
                  else true)
               b.instrs)
      f.blocks
  done;
  match List.rev !hoisted with
  | [] -> false
  | instrs ->
    let pre_label = Analysis.ensure_preheader f ~header:l.lheader ~latches:l.latches in
    let pre = find_block f pre_label in
    pre.instrs <- pre.instrs @ instrs;
    true

(* ------------------------------------------------------------------ *)
(* Bounds-check elimination. *)

let chase def_of (v : var) _depth = Analysis.chase_copies def_of v
let resolved_def def_of (v : var) = Analysis.resolved_def def_of v

let bce_loop f (l : Analysis.loop) =
  let in_body label = Analysis.loop_contains l label in
  let def_of = Analysis.def_table f in
  let loop_defs = Hashtbl.create 32 in
  List.iter
    (fun b ->
       if in_body b.label then begin
         Array.iter (fun v -> Hashtbl.replace loop_defs v.vid ()) b.bparams;
         List.iter
           (fun i -> List.iter (fun v -> Hashtbl.replace loop_defs v.vid ()) (instr_defs i))
           b.instrs
       end)
    f.blocks;
  let outside v = not (Hashtbl.mem loop_defs v.vid) in
  let hdr = find_block f l.lheader in
  match hdr.term with
  | Branch { cond = Ovar c; if_true; if_false }
    when in_body if_true.target && not (in_body if_false.target) ->
    (match resolved_def def_of c with
     | Some
         (Call
            { callee = Resolved { base = ("binary_less_equal" | "binary_less"); _ };
              args = [| Ovar iv0; Ovar nv0 |];
              _ }) ->
       let iv = chase def_of iv0 0 in
       let nv = chase def_of nv0 0 in
       let pos = ref (-1) in
       Array.iteri (fun q p -> if p.vid = iv.vid then pos := q) hdr.bparams;
       if !pos < 0 || not (outside nv) then false
       else begin
         let container =
           match resolved_def def_of nv with
           | Some (Call { callee = Resolved { base = "array_length"; _ };
                          args = [| Ovar tv |]; _ })
             when outside (chase def_of tv 0) ->
             Some (`Tensor (chase def_of tv 0))
           | Some (Call { callee = Resolved { base = "string_length"; _ };
                          args = [| Ovar sv |]; _ })
             when outside (chase def_of sv 0) ->
             Some (`Str (chase def_of sv 0))
           | _ -> None
         in
         match container with
         | None -> false
         | Some container ->
           let steps_by_one =
             List.for_all
               (fun latch ->
                  List.for_all
                    (fun (_, j) ->
                       match j.jargs.(!pos) with
                       | Ovar s ->
                         (match resolved_def def_of s with
                          | Some
                              (Call
                                 { callee = Resolved { base = "checked_binary_plus"; _ };
                                   args = [| Ovar i'; Oconst (Cint 1) |];
                                   _ }) ->
                            (chase def_of i' 0).vid = iv.vid
                          | _ -> false)
                       | _ -> false)
                    (List.filter (fun (src, _) -> src = latch)
                       (Analysis.incoming_jumps f l.lheader)))
               l.latches
           in
           if
             (not steps_by_one)
             || not
                  (Analysis.entry_consts_ge f ~latches:l.latches ~label:l.lheader
                     ~pos:!pos ~bound:1 ~depth:0)
           then false
           else begin
             let changed = ref false in
             let uncheck old_base old_mangled new_base =
               let suffix =
                 String.sub old_mangled (String.length old_base)
                   (String.length old_mangled - String.length old_base)
               in
               Resolved { base = new_base; mangled = new_base ^ suffix }
             in
             List.iter
               (fun b ->
                  if in_body b.label && b.label <> l.lheader then
                    b.instrs <-
                      List.map
                        (fun i ->
                           match (i, container) with
                           | ( Call
                                 { dst;
                                   callee = Resolved { base = "part_get_1"; mangled };
                                   args = [| Ovar t'; Ovar i' |] },
                               `Tensor tv )
                             when (chase def_of t' 0).vid = tv.vid
                               && (chase def_of i' 0).vid = iv.vid ->
                             changed := true;
                             Call
                               { dst;
                                 callee = uncheck "part_get_1" mangled "part_get_1_unchecked";
                                 args = [| Ovar t'; Ovar i' |] }
                           | ( Call
                                 { dst;
                                   callee = Resolved { base = "string_byte"; mangled };
                                   args = [| Ovar s'; Ovar i' |] },
                               `Str sv )
                             when (chase def_of s' 0).vid = sv.vid
                               && (chase def_of i' 0).vid = iv.vid ->
                             changed := true;
                             Call
                               { dst;
                                 callee = uncheck "string_byte" mangled "string_byte_unchecked";
                                 args = [| Ovar s'; Ovar i' |] }
                           | _ -> i)
                        b.instrs)
               f.blocks;
             !changed
           end
       end
     | _ -> false)
  | _ -> false

let run (p : program) =
  let changed = ref false in
  List.iter
    (fun f ->
       let entry_label = (entry f).label in
       let cfg = Analysis.build_cfg f in
       let loops = Analysis.natural_loops f cfg in
       (* outermost first, so invariants leave nested loops in one sweep and
          fresh inner preheaders never precede their operands' defs *)
       let loops = List.sort (fun a b -> compare a.Analysis.ldepth b.Analysis.ldepth) loops in
       List.iter
         (fun (l : Analysis.loop) ->
            if l.lheader <> entry_label && licm_loop f l then changed := true)
         loops;
       (* the CFG may have gained preheaders; recompute for BCE *)
       let cfg = Analysis.build_cfg f in
       let loops = Analysis.natural_loops f cfg in
       List.iter
         (fun (l : Analysis.loop) ->
            if l.lheader <> entry_label && bce_loop f l then changed := true)
         loops)
    p.funcs;
  !changed
