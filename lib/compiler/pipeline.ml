open Wolf_wexpr

type user_pass = {
  pass_name : string;
  pass_run : Wir.program -> unit;
}

type compiled = {
  program : Wir.program;
  resolution : (string, Infer.resolved) Hashtbl.t;
  coptions : Options.t;
  source : Expr.t;
  expanded : Expr.t;
  timings : (string * float) list;
  stats : Pass_manager.stat list;
  inplace_updates : int;
}

(* Overridable sink for --dump-after IR dumps (tests capture it; wolfc keeps
   the stderr default so dumps do not mix with the printed result). *)
let dump_hook : (string -> Wir.program -> unit) ref =
  ref (fun name prog ->
      Printf.eprintf "; ---- IR after %s ----\n%s\n%!" name
        (Wir_print.program_to_string prog))

(* Front half shared by the main entry and Wolfram-implementation
   instantiation: macro expand, bind, lower. *)
let front ~options ~macro_env ~name fexpr =
  let expanded = Macro.expand macro_env ~options:(Options.to_macro_options options) fexpr in
  let analyzed = Binding.analyze_function expanded in
  let prog = Lower.lower_function ~options ~name analyzed ~source:fexpr in
  (expanded, prog)

(* The optimisation fixpoint members (paper §4.5).  Level 2 widens the
   inlining budget and lets the fixpoint run longer. *)
let opt_passes ~(options : Options.t) =
  let max_instrs = if options.Options.opt_level >= 2 then 96 else 48 in
  [ Pass_manager.mk "fold" Opt_fold.run;
    Pass_manager.mk "simplify-cfg" Opt_simplify_cfg.run;
    Pass_manager.mk "indirect" Opt_indirect.run;
    Pass_manager.mk "cse" Opt_cse.run ]
  @ (if options.Options.loop_opts then [ Pass_manager.mk "licm" Opt_licm.run ] else [])
  @ [ Pass_manager.mk "dce" Opt_dce.run;
      Pass_manager.mk "bparam-elim" Opt_bparam.run ]
  @ (if options.Options.inline_level > 0 then
       [ Pass_manager.mk "inline" (fun prog -> Opt_inline.run ~max_instrs prog) ]
     else [])

let fixpoint_budget (options : Options.t) =
  if options.Options.opt_level >= 2 then 32 else 16

let optimize ~options ~lint prog =
  let mgr = Pass_manager.create ~lint ~verify:options.Options.verify_each () in
  ignore (Pass_manager.run_fixpoint ~budget:(fixpoint_budget options) mgr
            (opt_passes ~options) prog)

let compile ?(options = Options.default) ?type_env ?macro_env ?(user_passes = []) ~name
    fexpr =
  let env = match type_env with Some e -> e | None -> Stdlib_decls.env () in
  let menv = match macro_env with Some m -> m | None -> Macro.functional_env () in
  let lint = options.Options.lint in
  let mgr =
    Pass_manager.create ~lint ~verify:options.Options.verify_each
      ~dump_after:options.Options.dump_after
      ~dump:(fun n p -> !dump_hook n p) ()
  in
  let expanded, prog =
    Pass_manager.record mgr "macro+binding+lower" (fun () ->
        front ~options ~macro_env:menv ~name fexpr)
  in
  Pass_manager.checkpoint mgr "lower" prog;
  let resolution_ref = ref None in
  ignore
    (Pass_manager.run_pass mgr
       (Pass_manager.mk "type-inference" (fun prog ->
            resolution_ref := Some (Infer.infer ~env ~options prog);
            true))
       prog);
  let resolution =
    match !resolution_ref with Some t -> t | None -> assert false
  in
  (* function resolution: instantiate Wolfram-implemented declarations *)
  let compile_instance ~name body arg_tys ret_ty =
    let _, iprog = front ~options ~macro_env:menv ~name body in
    let main = Wir.main iprog in
    if Array.length main.Wir.fparams <> Array.length arg_tys then
      Wolf_base.Errors.compile_errorf
        "instantiating %s: arity mismatch (%d parameters, %d argument types)" name
        (Array.length main.Wir.fparams) (Array.length arg_tys);
    Array.iteri
      (fun i (v : Wir.var) -> v.Wir.vty <- Some arg_tys.(i))
      main.Wir.fparams;
    main.Wir.ret_ty <- Some ret_ty;
    let sub_table = Infer.infer ~env ~options iprog in
    Hashtbl.iter (Hashtbl.replace resolution) sub_table;
    iprog.Wir.funcs
  in
  ignore
    (Pass_manager.run_pass mgr
       (Pass_manager.of_unit "function-resolution" (fun prog ->
            Resolve.run ~compile_instance ~table:resolution prog))
       prog);
  if options.Options.opt_level > 0 then
    ignore
      (Pass_manager.run_fixpoint ~budget:(fixpoint_budget options) mgr
         (opt_passes ~options) prog);
  if options.Options.parallel_loops && options.Options.opt_level > 0 then
    ignore
      (Pass_manager.run_pass mgr
         (Pass_manager.mk "parallel-loops" Opt_parloop.run)
         prog);
  List.iter
    (fun up ->
       ignore
         (Pass_manager.run_pass mgr
            (Pass_manager.of_unit ("user:" ^ up.pass_name) up.pass_run)
            prog))
    user_passes;
  let inplace = ref 0 in
  ignore
    (Pass_manager.run_pass mgr
       (Pass_manager.mk "mutability" (fun prog ->
            inplace := Mutability_pass.run prog;
            true))
       prog);
  if options.Options.abort_handling then begin
    ignore
      (Pass_manager.run_pass mgr
         (Pass_manager.of_unit "abort-insertion" Abort_pass.run)
         prog);
    if
      options.Options.opt_level > 0 && options.Options.loop_opts
      && options.Options.abort_stride > 1
    then
      ignore
        (Pass_manager.run_pass mgr
           (Pass_manager.of_unit "abort-stride"
              (Opt_abort_stride.run ~stride:options.Options.abort_stride))
           prog)
  end;
  if options.Options.memory_management then
    ignore
      (Pass_manager.run_pass mgr
         (Pass_manager.of_unit "memory-management" Memory_pass.run)
         prog);
  ignore
    (Pass_manager.run_pass mgr
       (Pass_manager.mk "ground-check" (fun prog ->
            Infer.check_ground prog;
            false))
       prog);
  prog.Wir.pmeta <-
    [ ("AbortHandling", string_of_bool options.Options.abort_handling);
      ("InlineLevel", string_of_int options.Options.inline_level);
      ("OptimizationLevel", string_of_int options.Options.opt_level) ]
    @ List.filter
        (fun (k, _) ->
           String.length k >= 8 && String.sub k 0 8 = "parloop.")
        prog.Wir.pmeta;
  {
    program = prog;
    resolution;
    coptions = options;
    source = fexpr;
    expanded;
    timings = Pass_manager.timings mgr;
    stats = Pass_manager.stats mgr;
    inplace_updates = !inplace;
  }

let compile_to_ast ?(options = Options.default) ?macro_env fexpr =
  let menv = match macro_env with Some m -> m | None -> Macro.builtin_env () in
  Mexpr.of_expr (Macro.expand menv ~options:(Options.to_macro_options options) fexpr)

let compile_to_wir ?(options = Options.default) ?type_env ?macro_env ~name fexpr =
  ignore type_env;
  let menv = match macro_env with Some m -> m | None -> Macro.builtin_env () in
  let _, prog = front ~options ~macro_env:menv ~name fexpr in
  prog
