open Wolf_wexpr

type rule = { lhs : Expr.t; rhs : Expr.t }

(* The kernel symbol store.  Logical consistency of an evaluation (read a
   value, use it, maybe write it back) is the kernel lock's job
   (Wolf_base.Kernel_lock, taken at every evaluator entry); this mutex
   additionally makes each individual table operation safe against a
   concurrent resize, so direct store probes from outside an evaluation
   (tooling, tests, [install]) can't corrupt the tables.

   The three tables live behind one mutable [current] pointer so a service
   can give every client its own store: [wolfd] swaps a session's state in
   under the kernel lock, evaluates, and swaps it back out.  Swapping moves
   the tables themselves (never copies them), so the tensor refcount held by
   each own-value slot stays balanced: a slot owns exactly one retain for
   the whole life of its state, whichever state is installed. *)
type state = {
  st_owns : (int, Expr.t) Hashtbl.t;
  st_downs : (int, rule list) Hashtbl.t;
  st_compiled : (int, Wolf_runtime.Rtval.closure) Hashtbl.t;
}

let fresh_state () =
  { st_owns = Hashtbl.create 256; st_downs = Hashtbl.create 256;
    st_compiled = Hashtbl.create 64 }

let current = ref (fresh_state ())
let lock = Mutex.create ()

let[@inline] locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let swap_state st =
  locked (fun () ->
      let prev = !current in
      current := st;
      prev)

let own_value s = locked (fun () -> Hashtbl.find_opt !current.st_owns (Symbol.id s))

(* Own-value slots hold references: packed tensors are reference-counted so
   that indexed assignment copies exactly when another symbol still points
   at the same array (F5).  Acquire before release handles self-assignment. *)
let retain = function Expr.Tensor t -> Tensor.acquire t | _ -> ()
let forget = function Some (Expr.Tensor t) -> Tensor.release t | _ -> ()

let set_own_value s v =
  locked (fun () ->
      retain v;
      forget (Hashtbl.find_opt !current.st_owns (Symbol.id s));
      Hashtbl.replace !current.st_owns (Symbol.id s) v)

let clear_own_value s =
  locked (fun () ->
      forget (Hashtbl.find_opt !current.st_owns (Symbol.id s));
      Hashtbl.remove !current.st_owns (Symbol.id s))

let down_values s =
  locked (fun () -> Option.value ~default:[] (Hashtbl.find_opt !current.st_downs (Symbol.id s)))

let rec count_blanks e =
  match e with
  | Expr.Normal (Expr.Sym h, args)
    when Symbol.equal h Expr.Sy.blank
      || Symbol.equal h Expr.Sy.blank_sequence
      || Symbol.equal h Expr.Sy.blank_null_sequence ->
    1 + Array.fold_left (fun acc a -> acc + count_blanks a) 0 args
  | Expr.Normal (h, args) ->
    count_blanks h + Array.fold_left (fun acc a -> acc + count_blanks a) 0 args
  | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Sym _ | Expr.Tensor _ -> 0

let add_down_value s rule =
  let existing = down_values s in
  let replaced = ref false in
  let updated =
    List.map
      (fun r ->
         if Expr.equal r.lhs rule.lhs then begin replaced := true; rule end
         else r)
      existing
  in
  let rules = if !replaced then updated else existing @ [ rule ] in
  (* Specific-first ordering: literal rules (no blanks) before pattern rules,
     stable within each class so user definition order is otherwise kept. *)
  let rules =
    List.stable_sort (fun a b -> compare (count_blanks a.lhs) (count_blanks b.lhs)) rules
  in
  locked (fun () -> Hashtbl.replace !current.st_downs (Symbol.id s) rules)

let clear_down_values s = locked (fun () -> Hashtbl.remove !current.st_downs (Symbol.id s))

let compiled_value s = locked (fun () -> Hashtbl.find_opt !current.st_compiled (Symbol.id s))
let set_compiled_value s c = locked (fun () -> Hashtbl.replace !current.st_compiled (Symbol.id s) c)
let clear_compiled_value s = locked (fun () -> Hashtbl.remove !current.st_compiled (Symbol.id s))

type snapshot = (Symbol.t * Expr.t option * rule list option) list

let save syms =
  List.map
    (fun s ->
       (s, own_value s, locked (fun () -> Hashtbl.find_opt !current.st_downs (Symbol.id s))))
    syms

let restore snap =
  List.iter
    (fun (s, own, dvs) ->
       (match own with
        | Some v -> set_own_value s v
        | None -> clear_own_value s);
       (match dvs with
        | Some rules -> locked (fun () -> Hashtbl.replace !current.st_downs (Symbol.id s) rules)
        | None -> locked (fun () -> Hashtbl.remove !current.st_downs (Symbol.id s))))
    snap

let clear_all () =
  locked (fun () ->
      Hashtbl.reset !current.st_owns;
      Hashtbl.reset !current.st_downs;
      Hashtbl.reset !current.st_compiled)
