(** Symbol value store.

    Symbols are the mutable part of the language; everything else is
    immutable (objective F5).  Own values are direct bindings ([x = 5]),
    down values are rewrite rules attached to a head ([f[n_] := …]).
    Values live in side tables keyed by symbol id so {!Wolf_wexpr.Symbol}
    stays independent of expression types. *)

open Wolf_wexpr

type rule = { lhs : Expr.t; rhs : Expr.t }

val own_value : Symbol.t -> Expr.t option
val set_own_value : Symbol.t -> Expr.t -> unit
val clear_own_value : Symbol.t -> unit

val down_values : Symbol.t -> rule list
val add_down_value : Symbol.t -> rule -> unit
(** A rule whose [lhs] matches an existing rule's [lhs] structurally replaces
    it (redefinition), otherwise rules are appended in definition order with
    more specific patterns tried first (Wolfram's ordering is approximated by
    pattern-freeness: rules with fewer blanks sort earlier). *)

val clear_down_values : Symbol.t -> unit

val compiled_value : Symbol.t -> Wolf_runtime.Rtval.closure option
(** Hook used by [FunctionCompile] integration: when set, the evaluator
    calls the compiled closure instead of rewriting (objective F1). *)

val set_compiled_value : Symbol.t -> Wolf_runtime.Rtval.closure -> unit
val clear_compiled_value : Symbol.t -> unit

type snapshot

val save : Symbol.t list -> snapshot
(** Capture own/down values for [Block] scoping. *)

val restore : snapshot -> unit

val clear_all : unit -> unit
(** Reset the whole store (test isolation). *)

(** {2 Whole-store swapping (session isolation)}

    The store is one mutable pointer to a triple of tables.  A service that
    wants one kernel state per client ([wolfd]) installs the client's state
    before evaluating and restores the previous one afterwards — always
    under the big kernel lock, so no other evaluation can observe the
    foreign state.  States are moved, never copied: each own-value slot owns
    exactly one tensor retain for its whole life, whichever state is
    currently installed, so swapping preserves the reference-count balance
    that [set_own_value]/[clear_own_value] maintain. *)

type state

val fresh_state : unit -> state
(** A new empty store (no own/down/compiled values — seed constants with
    {!Wolf_kernel.Session.seed_constants} after installing it). *)

val swap_state : state -> state
(** Install [state] as the live store and return the previously live one.
    Callers must hold the big kernel lock (or otherwise guarantee no
    concurrent evaluation) across the install/evaluate/restore window. *)
