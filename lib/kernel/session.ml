open Wolf_wexpr

(* once-only init under a lock: a second domain calling [init] while the
   first is still installing builtins waits instead of seeing a half-filled
   dispatch table *)
let initialized = Atomic.make false
let init_lock = Mutex.create ()

let init () =
  if not (Atomic.get initialized) then begin
    Mutex.lock init_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock init_lock) (fun () ->
        if not (Atomic.get initialized) then begin
          Builtins_core.install ();
          Builtins_math.install ();
          Builtins_list.install ();
          Builtins_func.install ();
          Builtins_string.install ();
          Builtins_more.install ();
          Builtins_symbolic.install ();
          Wolf_runtime.Hooks.set_kernel_eval Eval.eval;
          Atomic.set initialized true
        end)
  end

(* Kernel evaluation is serialized by the big kernel lock: symbol values and
   down values model one global session, so interpreter work is mutually
   exclusive across domains while compilation and compiled code run freely
   in parallel (see DESIGN.md "Threading model"). *)
let eval e =
  init ();
  Wolf_base.Kernel_lock.with_lock (fun () -> Eval.eval e)

let eval_protected e =
  init ();
  Wolf_base.Abort_signal.with_abort_protection (fun () ->
      Wolf_base.Kernel_lock.with_lock (fun () -> Eval.eval e))

let run src = eval (Parser.parse src)

let run_string src = Form.input_form (run src)

(* numeric constants live in the value store; a freshly-installed store
   (reset, or a new [wolfd] session state) needs them reinstated *)
let seed_constants () =
  Values.set_own_value (Symbol.intern "Pi") (Expr.Real Float.pi);
  Values.set_own_value (Symbol.intern "E") (Expr.Real (Float.exp 1.0))

let reset () =
  Values.clear_all ();
  seed_constants ()
