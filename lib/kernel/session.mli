(** Session management: builtin installation, the abort-protected top-level
    evaluation loop the Notebook offers, and parse-and-evaluate helpers. *)

open Wolf_wexpr

val init : unit -> unit
(** Install all builtins and the {!Wolf_runtime.Hooks} evaluator.
    Idempotent. *)

val eval : Expr.t -> Expr.t
(** Evaluate (after [init]); aborts and evaluation errors propagate. *)

val eval_protected : Expr.t -> (Expr.t, exn) result
(** Top-level Notebook semantics: a user abort (or error) returns the prompt
    with session state intact — possibly mutated by the aborted computation,
    as the paper specifies (F3). *)

val run : string -> Expr.t
(** Parse then evaluate. *)

val run_string : string -> string
(** Parse, evaluate, print in InputForm; convenience for tests/examples. *)

val reset : unit -> unit
(** Clear all user definitions (test isolation); builtins survive. *)

val seed_constants : unit -> unit
(** Install the numeric constants ([Pi], [E]) into the currently live
    {!Values} store — called by {!reset} and by [wolfd] when it installs a
    brand-new per-session state. *)
