open Wolf_wexpr

let install () =
  Eval.register "StringLength" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| Expr.Str s |] -> Some (Expr.Int (String.length s))
      | _ -> None);
  Eval.register "StringJoin" ~attrs:[ Attributes.Flat; Attributes.One_identity ]
    (fun _ args ->
       let parts =
         Array.to_list args
         |> List.map (function Expr.Str s -> Some s | _ -> None)
       in
       if List.for_all Option.is_some parts then
         Some (Expr.Str (String.concat "" (List.map Option.get parts)))
       else None);
  Eval.register "StringByte" (fun _ args ->
      (* 1-indexed byte, matching the compiled runtime's string_byte prim;
         out-of-range stays symbolic like the other string builtins *)
      match args with
      | [| Expr.Str s; Expr.Int i |] when i >= 1 && i <= String.length s ->
        Some (Expr.Int (Char.code s.[i - 1]))
      | _ -> None);
  Eval.register "StringTake" (fun _ args ->
      match args with
      | [| Expr.Str s; Expr.Int n |] ->
        let len = String.length s in
        if n >= 0 && n <= len then Some (Expr.Str (String.sub s 0 n))
        else if n < 0 && -n <= len then Some (Expr.Str (String.sub s (len + n) (-n)))
        else None
      | _ -> None);
  Eval.register "StringDrop" (fun _ args ->
      match args with
      | [| Expr.Str s; Expr.Int n |] ->
        let len = String.length s in
        if n >= 0 && n <= len then Some (Expr.Str (String.sub s n (len - n)))
        else if n < 0 && -n <= len then Some (Expr.Str (String.sub s 0 (len + n)))
        else None
      | _ -> None);
  Eval.register "StringReverse" (fun _ args ->
      match args with
      | [| Expr.Str s |] ->
        let n = String.length s in
        Some (Expr.Str (String.init n (fun i -> s.[n - 1 - i])))
      | _ -> None);
  Eval.register "ToCharacterCode" (fun _ args ->
      match args with
      | [| Expr.Str s |] ->
        Some
          (Expr.Tensor
             (Tensor.of_int_array (Array.init (String.length s) (fun i -> Char.code s.[i]))))
      | _ -> None);
  Eval.register "FromCharacterCode" (fun _ args ->
      match args with
      | [| Expr.Int c |] when c >= 0 && c < 256 ->
        Some (Expr.Str (String.make 1 (Char.chr c)))
      | [| e |] ->
        let codes =
          match e with
          | Expr.Tensor t when Tensor.is_int t && Tensor.rank t = 1 ->
            Some (Array.init (Tensor.flat_length t) (fun i -> Tensor.get_int t i))
          | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
            let ints = Array.map Expr.int_of items in
            if Array.for_all Option.is_some ints then Some (Array.map Option.get ints)
            else None
          | _ -> None
        in
        (match codes with
         | Some cs when Array.for_all (fun c -> c >= 0 && c < 256) cs ->
           Some (Expr.Str (String.init (Array.length cs) (fun i -> Char.chr cs.(i))))
         | _ -> None)
      | _ -> None);
  Eval.register "Characters" (fun _ args ->
      match args with
      | [| Expr.Str s |] ->
        Some
          (Expr.list_a
             (Array.init (String.length s) (fun i -> Expr.Str (String.make 1 s.[i]))))
      | _ -> None);
  Eval.register "StringReplace" (fun _ args ->
      (* literal-string rules only: StringReplace["foobar", "foo" -> "grok"] *)
      let as_rules e =
        let rule = function
          | Expr.Normal (Expr.Sym r, [| Expr.Str from_; Expr.Str to_ |])
            when Symbol.equal r Expr.Sy.rule ->
            Some (from_, to_)
          | _ -> None
        in
        match e with
        | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
          let rs = Array.map rule items in
          if Array.for_all Option.is_some rs then
            Some (Array.to_list (Array.map Option.get rs))
          else None
        | r -> (match rule r with Some p -> Some [ p ] | None -> None)
      in
      let replace_all s (from_, to_) =
        if from_ = "" then s
        else begin
          let b = Buffer.create (String.length s) in
          let fl = String.length from_ in
          let i = ref 0 in
          while !i <= String.length s - fl do
            if String.sub s !i fl = from_ then begin
              Buffer.add_string b to_;
              i := !i + fl
            end
            else begin
              Buffer.add_char b s.[!i];
              incr i
            end
          done;
          Buffer.add_string b (String.sub s !i (String.length s - !i));
          Buffer.contents b
        end
      in
      match args with
      | [| Expr.Str s; rules |] ->
        (match as_rules rules with
         | Some rs -> Some (Expr.Str (List.fold_left replace_all s rs))
         | None -> None)
      | _ -> None);
  Eval.register "ToString" (fun _ args ->
      match args with
      | [| Expr.Str s |] -> Some (Expr.Str s)
      | [| e |] -> Some (Expr.Str (Form.input_form e))
      | _ -> None)
