(* Registry linking JIT-loaded modules to the host: entry closures and
   host-side constants, keyed by mangled name.  Guarded so registrations
   from concurrent JIT loads (and lookups from loading module initialisers)
   never race a table resize. *)
let table : (string, Obj.t) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let register name f =
  Mutex.lock lock;
  Hashtbl.replace table name f;
  Mutex.unlock lock

let lookup name =
  Mutex.lock lock;
  let r = Hashtbl.find_opt table name in
  Mutex.unlock lock;
  r

let clear name =
  Mutex.lock lock;
  Hashtbl.remove table name;
  Mutex.unlock lock
