.PHONY: all build test check bench bench-smoke bench-json smoke clean

all: build

build:
	dune build

test: build
	dune runtest

# check = what CI runs: full build, the whole test suite (including the
# differential corpus), then a quick benchmark smoke run exercising the
# instrumented pipeline and the compile cache, and a quick fig2 pass.
check: build
	dune runtest
	dune exec bench/main.exe -- smoke
	$(MAKE) bench-smoke

bench: build
	dune exec bench/main.exe -- all

# fast fig2 arm; exercises every measured configuration without touching
# the checked-in BENCH_fig2.json (regenerate that with `make bench-json`)
bench-smoke: build
	dune exec bench/main.exe -- fig2 --quick

# full-size fig2 run refreshing the machine-readable record
bench-json: build
	dune exec bench/main.exe -- fig2 --json

smoke: build
	dune exec bench/main.exe -- smoke

clean:
	dune clean
