.PHONY: all build test check bench smoke clean

all: build

build:
	dune build

test: build
	dune runtest

# check = what CI runs: full build, the whole test suite (including the
# differential corpus), then a quick benchmark smoke run exercising the
# instrumented pipeline and the compile cache.
check: build
	dune runtest
	dune exec bench/main.exe -- smoke

bench: build
	dune exec bench/main.exe -- all

smoke: build
	dune exec bench/main.exe -- smoke

clean:
	dune clean
