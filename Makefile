.PHONY: all build test check bench bench-smoke bench-json bench-serve-json bench-tier-json bench-parloop-json bench-build-json smoke fuzz-smoke par-smoke par-loop-smoke obs-smoke serve-smoke tier-smoke build-smoke fuzz clean

all: build

build:
	dune build

test: build
	dune runtest

# check = what CI runs: full build, the whole test suite (including the
# differential corpus and the multi-domain stress tests), a fixed-seed
# differential fuzzing smoke campaign with the IR verifier after every
# pass, the same campaign sharded over 4 domains (must report identical
# tallies), then a quick benchmark smoke run exercising the instrumented
# pipeline and the compile cache, and a quick fig2 pass.
check: build
	dune runtest
	$(MAKE) fuzz-smoke
	$(MAKE) par-smoke
	$(MAKE) par-loop-smoke
	$(MAKE) obs-smoke
	$(MAKE) serve-smoke
	$(MAKE) tier-smoke
	$(MAKE) build-smoke
	dune exec bench/main.exe -- smoke
	$(MAKE) bench-smoke

bench: build
	dune exec bench/main.exe -- all

# fast fig2 arm; exercises every measured configuration without touching
# the checked-in BENCH_fig2.json (regenerate that with `make bench-json`)
bench-smoke: build
	dune exec bench/main.exe -- fig2 --quick

# full-size fig2 run refreshing the machine-readable record
bench-json: build
	dune exec bench/main.exe -- fig2 --json

smoke: build
	dune exec bench/main.exe -- smoke

# fixed-seed differential fuzzing campaign: 200 generated programs run on
# threaded + WVM at O0/O1/O2 against the interpreter, with the full IR
# verifier after every pass; deterministic, so a failure here is replayable
# with the same seed (see EXPERIMENTS.md "Fuzz triage")
fuzz-smoke: build
	dune exec bin/wolfc.exe -- fuzz --seed 1 --count 200 --quiet

# the same fixed-seed campaign sharded over 4 domains: exercises the
# domain-safe core (locked intern/caches, atomic aborts, domain-local
# fuzz hooks) and must produce exactly the tallies of the sequential run
par-smoke: build
	dune exec bin/wolfc.exe -- fuzz --seed 1 --count 200 --quiet --jobs 4

# data-parallel loop smoke (DESIGN.md "Data-parallel loops"): a fixed-seed
# differential campaign through the par arm — every program compiles with
# parallel-loops on and must agree with the interpreter at jobs=1, jobs=4
# (measured schedules) and jobs=4 under forced dynamic chunking, including
# mid-loop Abort[] injection; the campaign fails if the pass parallelises
# zero loops (generator drift guard).  The exported metrics must carry the
# parloop chunk counter and per-loop speedup gauge and pass obs-check, and
# a quick E15 bench pass must prove jobs=4 == jobs=1 outputs
par-loop-smoke: build
	dune exec bin/wolfc.exe -- fuzz --seed 42 --count 500 --quiet \
	  --backends par --jobs 4 --metrics-out /tmp/wolf_parloop_metrics.json
	grep -q 'parloop_chunks_total' /tmp/wolf_parloop_metrics.json
	grep -q 'parloop_speedup' /tmp/wolf_parloop_metrics.json
	dune exec bin/wolfc.exe -- obs-check /tmp/wolf_parloop_metrics.json
	dune exec bench/main.exe -- parloop --quick

# full-size E15 run refreshing the machine-readable record
bench-parloop-json: build
	dune exec bench/main.exe -- parloop --json

# observability smoke: compile and run one benchmark-shaped program with
# tracing, profiling and metrics all on, then validate every output with
# wolfc's own checker — the trace must be well-formed Chrome JSON with
# balanced spans, the metrics export must carry named samples, and a
# 4-domain fuzz slice must produce at least 4 distinct tracks.  Then the
# request-tracing leg: a background wolfd with the flight recorder armed
# gets one slow request over its latency threshold; the daemon must leave
# a dump `wolfc flight` can parse, and its trace must hold flow-stitched
# request spans (>= 2 tracks) each annotated with an outcome.  The daemon
# is invoked by binary path, not `dune exec`, so the backgrounded process
# does not contend for dune's build lock.
obs-smoke: build
	dune exec bin/wolfc.exe -- run \
	  -e 'Function[{Typed[n, "Integer64"]}, Module[{s = 0}, Do[s = s + i*i, {i, n}]; s]]' \
	  --args 100000 --profile --target threaded \
	  --trace-out /tmp/wolf_obs_trace.json \
	  --metrics-out /tmp/wolf_obs_metrics.json \
	  --profile-out /tmp/wolf_obs_profile.json
	dune exec bin/wolfc.exe -- fuzz --seed 1 --count 40 --quiet --jobs 4 \
	  --trace-out /tmp/wolf_obs_par_trace.json
	dune exec bin/wolfc.exe -- obs-check \
	  /tmp/wolf_obs_trace.json /tmp/wolf_obs_metrics.json /tmp/wolf_obs_profile.json
	dune exec bin/wolfc.exe -- obs-check --min-tracks 4 /tmp/wolf_obs_par_trace.json
	rm -rf /tmp/wolf_obs_flight /tmp/wolf_obs_wolfd.sock
	./_build/default/bin/wolfc.exe wolfd --socket /tmp/wolf_obs_wolfd.sock \
	  --quiet --jobs 2 --flight-dir /tmp/wolf_obs_flight \
	  --flight-threshold-ms 50 \
	  --trace-out /tmp/wolf_obs_wolfd_trace.json & \
	for i in $$(seq 1 50); do \
	  test -S /tmp/wolf_obs_wolfd.sock && break; sleep 0.1; done; \
	./_build/default/bin/wolfc.exe connect --socket /tmp/wolf_obs_wolfd.sock \
	  -e 'Total[Range[100]]' >/dev/null; \
	./_build/default/bin/wolfc.exe connect --socket /tmp/wolf_obs_wolfd.sock \
	  -e 'Do[Null, {i, 10000000}]' >/dev/null; \
	./_build/default/bin/wolfc.exe connect --socket /tmp/wolf_obs_wolfd.sock \
	  --shutdown; \
	wait
	test -n "$$(ls /tmp/wolf_obs_flight/*.wfr 2>/dev/null)"
	./_build/default/bin/wolfc.exe flight /tmp/wolf_obs_flight/*.wfr
	./_build/default/bin/wolfc.exe obs-check --min-tracks 2 --require-outcomes \
	  /tmp/wolf_obs_wolfd_trace.json

# service-layer smoke (DESIGN.md "Service layer"): load-test an embedded
# wolfd daemon — 4 concurrent clients, a mixed eval/compile workload, zero
# errors required — then replay a fixed-seed fuzz slice through the daemon
# (the serve oracle arm: byte-identical replies required), and validate the
# daemon trace (client track + worker tracks, balanced spans) and metrics
serve-smoke: build
	dune exec bin/wolfc.exe -- bench serve --clients 4 --requests 200 \
	  --json /tmp/wolf_serve_bench.json \
	  --trace-out /tmp/wolf_serve_trace.json \
	  --metrics-out /tmp/wolf_serve_metrics.json
	dune exec bin/wolfc.exe -- fuzz --seed 1 --count 40 --quiet --backends serve
	dune exec bin/wolfc.exe -- obs-check --min-tracks 2 /tmp/wolf_serve_trace.json
	dune exec bin/wolfc.exe -- obs-check \
	  /tmp/wolf_serve_bench.json /tmp/wolf_serve_metrics.json

# tiered-execution smoke (DESIGN.md "Tiered execution"): a fixed-seed
# differential campaign through the tier arm sharded over 4 domains (the
# tier-0 call, the promotion hand-off, the promoted call and an Abort[]
# raced against the background compile must all agree with the
# interpreter), a quick E14 benchmark pass, then disk-cache persistence
# across two wolfc processes — the second process must revive the first's
# -O2 artifact with zero misses — and a full cache integrity walk
tier-smoke: build
	dune exec bin/wolfc.exe -- fuzz --seed 1 --count 500 --quiet \
	  --backends tier --jobs 4
	dune exec bench/main.exe -- tier --quick
	rm -rf /tmp/wolf_tier_cache
	dune exec bin/wolfc.exe -- run \
	  -e 'Function[{Typed[n, "Integer64"]}, Module[{s = 0}, Do[s = s + i*i, {i, n}]; s]]' \
	  --args 200000 --tier --tier-threshold 1 --repeat 3 \
	  --disk-cache /tmp/wolf_tier_cache --json > /tmp/wolf_tier_run1.json
	grep -q '"writes":1' /tmp/wolf_tier_run1.json
	dune exec bin/wolfc.exe -- run \
	  -e 'Function[{Typed[n, "Integer64"]}, Module[{s = 0}, Do[s = s + i*i, {i, n}]; s]]' \
	  --args 200000 --tier --tier-threshold 1 --repeat 3 \
	  --disk-cache /tmp/wolf_tier_cache --json > /tmp/wolf_tier_run2.json
	grep -q '"misses":0' /tmp/wolf_tier_run2.json
	dune exec bin/wolfc.exe -- cache stat --dir /tmp/wolf_tier_cache
	dune exec bin/wolfc.exe -- cache verify --dir /tmp/wolf_tier_cache

# full-size E14 run refreshing the machine-readable record
bench-tier-json: build
	dune exec bench/main.exe -- tier --json

# standalone-binary smoke (DESIGN.md "Standalone binaries"): wolfc build two
# Figure-2-style programs (scalar result, tensor result), run the shipped
# executables and require stdout byte-identical to the interpreter, check
# the argv-usage exit code (2), then replay a fixed-seed differential
# campaign through the binary oracle arm (300 generated programs built with
# cc, run out-of-process, compared to the interpreter) and a quick E16
# bench pass.  Degrades to a skip message when no C compiler is on PATH
# (the fuzz arm and the bench self-skip on their own).
build-smoke: build
	@if dune exec bin/wolfc.exe -- build \
	    -e 'Function[{Typed[n, "Integer64"]}, Module[{s = 0}, Do[s = s + i*i, {i, n}]; s]]' \
	    -o /tmp/wolf_build_sum >/dev/null 2>/tmp/wolf_build_smoke.err; then \
	  set -e; \
	  /tmp/wolf_build_sum 100000 > /tmp/wolf_build_sum.bin; \
	  dune exec bin/wolfc.exe -- eval \
	    -e 'Function[{Typed[n, "Integer64"]}, Module[{s = 0}, Do[s = s + i*i, {i, n}]; s]][100000]' \
	    > /tmp/wolf_build_sum.ref; \
	  cmp /tmp/wolf_build_sum.bin /tmp/wolf_build_sum.ref; \
	  dune exec bin/wolfc.exe -- build \
	    -e 'Function[{Typed[n, "Integer64"]}, Module[{a = ConstantArray[0, n]}, Do[a[[i]] = i*i, {i, n}]; a]]' \
	    -o /tmp/wolf_build_tab >/dev/null; \
	  /tmp/wolf_build_tab 8 > /tmp/wolf_build_tab.bin; \
	  dune exec bin/wolfc.exe -- eval \
	    -e 'Function[{Typed[n, "Integer64"]}, Module[{a = ConstantArray[0, n]}, Do[a[[i]] = i*i, {i, n}]; a]][8]' \
	    > /tmp/wolf_build_tab.ref; \
	  cmp /tmp/wolf_build_tab.bin /tmp/wolf_build_tab.ref; \
	  st=0; /tmp/wolf_build_sum notanumber 2>/dev/null || st=$$?; \
	  test $$st -eq 2; \
	  echo "build-smoke: binaries byte-identical to the interpreter"; \
	else \
	  grep -q 'no working C compiler' /tmp/wolf_build_smoke.err \
	    && echo "build-smoke: no C compiler; skipping" \
	    || { cat /tmp/wolf_build_smoke.err; exit 1; }; \
	fi
	dune exec bin/wolfc.exe -- fuzz --seed 7 --count 300 --quiet --backends binary
	dune exec bench/main.exe -- build --quick

# full-size E16 run refreshing the machine-readable record
bench-build-json: build
	dune exec bench/main.exe -- build --json

# full-size serve load test refreshing the checked-in record
bench-serve-json: build
	dune exec bin/wolfc.exe -- bench serve --clients 4 --requests 200 \
	  --json BENCH_serve.json

# longer free-running campaign for local bug hunting
fuzz: build
	dune exec bin/wolfc.exe -- fuzz --seed $$RANDOM --count 2000 --corpus test/corpus

clean:
	dune clean
