lib/runtime/rand.ml: Int64
