lib/runtime/rtval.mli: Expr Format Tensor Wolf_wexpr
