lib/runtime/rand.mli:
