lib/runtime/prims.mli: Rtval
