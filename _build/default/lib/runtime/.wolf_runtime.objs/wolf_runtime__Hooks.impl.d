lib/runtime/hooks.ml: Wolf_base Wolf_wexpr
