lib/runtime/prims.ml: Array Char Checked Errors Float Hooks Printf Rand Rtval String Tensor Wolf_base Wolf_wexpr
