lib/runtime/rtval.ml: Array Errors Expr Format List Printf String Symbol Tensor Wolf_base Wolf_wexpr
