lib/runtime/hooks.mli: Wolf_wexpr
