let kernel_eval =
  ref (fun (_ : Wolf_wexpr.Expr.t) : Wolf_wexpr.Expr.t ->
      raise (Wolf_base.Errors.Eval_error "no kernel installed (call Session.init)"))

let set_kernel_eval f = kernel_eval := f
let eval e = !kernel_eval e

let auto_compile_scalar =
  ref (fun (_ : Wolf_wexpr.Expr.t) (_ : Wolf_wexpr.Symbol.t) : (float -> float) option ->
      None)

let auto_compile_enabled = ref true
