(** Late-bound links between compiled code and the interpreter.

    The compiler and its backends never link the kernel directly (the paper:
    "virtually no modifications were needed to the Wolfram Engine"); instead
    the kernel installs its evaluator here at session start, and compiled
    code reaches it for [KernelFunction] escapes (objective F9) and for the
    soft-failure re-evaluation path (objective F2). *)

val kernel_eval : (Wolf_wexpr.Expr.t -> Wolf_wexpr.Expr.t) ref
(** Defaults to a function that raises [Errors.Eval_error]. *)

val set_kernel_eval : (Wolf_wexpr.Expr.t -> Wolf_wexpr.Expr.t) -> unit
val eval : Wolf_wexpr.Expr.t -> Wolf_wexpr.Expr.t

val auto_compile_scalar :
  (Wolf_wexpr.Expr.t -> Wolf_wexpr.Symbol.t -> (float -> float) option) ref
(** Installed by the compiler package: given a scalar expression and its free
    variable, produce a compiled [float -> float] evaluator.  Numerical
    solvers such as [FindRoot] use it for auto-compilation (paper §1: 1.6×
    speedup, experiment E4).  Defaults to [fun _ _ -> None]. *)

val auto_compile_enabled : bool ref
(** Toggles auto-compilation in numerical solvers (on by default, switched
    off by the E4 benchmark's baseline arm). *)
