open Wolf_wexpr
open Wolf_base

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Real of float
  | Complex of float * float
  | Str of string
  | Tensor of Tensor.t
  | Expr of Expr.t
  | Fun of closure

and closure = { arity : int; call : t array -> t }

let mismatch expected got =
  raise
    (Errors.Runtime_error
       (Errors.Invalid_runtime_argument
          (Printf.sprintf "expected %s, got %s" expected got)))

let type_name = function
  | Unit -> "Void"
  | Bool _ -> "Boolean"
  | Int _ -> "Integer64"
  | Real _ -> "Real64"
  | Complex _ -> "ComplexReal64"
  | Str _ -> "String"
  | Tensor t ->
    Printf.sprintf "PackedArray[%s, %d]"
      (if Tensor.is_int t then "Integer64" else "Real64")
      (Tensor.rank t)
  | Expr _ -> "Expression"
  | Fun _ -> "Function"

(* Attempt to pack a rectangular numeric List expression. *)
let try_pack e =
  let rec dims acc = function
    | Expr.Normal (Expr.Sym s, args)
      when Symbol.equal s Expr.Sy.list && Array.length args > 0 ->
      dims (Array.length args :: acc) args.(0)
    | _ -> List.rev acc
  in
  match dims [] e with
  | [] -> None
  | dims_list ->
    let dims = Array.of_list dims_list in
    let total = Array.fold_left ( * ) 1 dims in
    let ints = Array.make total 0 in
    let reals = Array.make total 0.0 in
    let all_int = ref true in
    let pos = ref 0 in
    let exception Not_packed in
    let rec fill level e =
      match e with
      | Expr.Normal (Expr.Sym s, args)
        when Symbol.equal s Expr.Sy.list && level < Array.length dims ->
        if Array.length args <> dims.(level) then raise Not_packed;
        Array.iter (fill (level + 1)) args
      | Expr.Int i when level = Array.length dims ->
        ints.(!pos) <- i; reals.(!pos) <- float_of_int i; incr pos
      | Expr.Real r when level = Array.length dims ->
        all_int := false; reals.(!pos) <- r; incr pos
      | _ -> raise Not_packed
    in
    (match fill 0 e with
     | () ->
       if !all_int then Some (Tensor.create_int dims ints)
       else Some (Tensor.create_real dims reals)
     | exception Not_packed -> None)

let of_expr e =
  match e with
  | Expr.Int i -> Int i
  | Expr.Real r -> Real r
  | Expr.Str s -> Str s
  | Expr.Tensor t -> Tensor t
  | Expr.Sym s when Symbol.equal s Expr.Sy.true_ -> Bool true
  | Expr.Sym s when Symbol.equal s Expr.Sy.false_ -> Bool false
  | Expr.Sym s when Symbol.equal s Expr.Sy.null -> Unit
  | Expr.Normal (Expr.Sym s, [| re; im |]) when Symbol.equal s Expr.Sy.complex ->
    (match Expr.float_of re, Expr.float_of im with
     | Some r, Some i -> Complex (r, i)
     | _ -> Expr e)
  | Expr.Normal (Expr.Sym s, _) when Symbol.equal s Expr.Sy.list ->
    (match try_pack e with Some t -> Tensor t | None -> Expr e)
  | _ -> Expr e

let rec tensor_to_expr t =
  if Tensor.rank t = 1 then begin
    let n = Tensor.flat_length t in
    Expr.list_a
      (Array.init n (fun i ->
           if Tensor.is_int t then Expr.Int (Tensor.get_int t i)
           else Expr.Real (Tensor.get_real t i)))
  end
  else begin
    let n = (Tensor.dims t).(0) in
    Expr.list_a (Array.init n (fun i -> tensor_to_expr (Tensor.slice t i)))
  end

let to_expr = function
  | Unit -> Expr.null
  | Bool b -> Expr.bool b
  | Int i -> Expr.Int i
  | Real r -> Expr.Real r
  | Complex (re, im) ->
    Expr.Normal (Expr.Sym Expr.Sy.complex, [| Expr.Real re; Expr.Real im |])
  | Str s -> Expr.Str s
  | Tensor t -> Expr.Tensor t
  | Expr e -> e
  | Fun _ -> Expr.sym "CompiledClosure"

let equal a b =
  match a, b with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Real x, Real y -> x = y
  | Complex (xr, xi), Complex (yr, yi) -> xr = yr && xi = yi
  | Str x, Str y -> String.equal x y
  | Tensor x, Tensor y -> Tensor.equal x y
  | Expr x, Expr y -> Expr.equal x y
  | Fun _, Fun _ -> false
  | (Unit | Bool _ | Int _ | Real _ | Complex _ | Str _ | Tensor _ | Expr _ | Fun _), _ ->
    false

let pp fmt = function
  | Unit -> Format.pp_print_string fmt "Null"
  | Bool b -> Format.pp_print_string fmt (if b then "True" else "False")
  | Int i -> Format.pp_print_int fmt i
  | Real r -> Format.fprintf fmt "%.17g" r
  | Complex (re, im) -> Format.fprintf fmt "Complex[%.17g, %.17g]" re im
  | Str s -> Format.fprintf fmt "%S" s
  | Tensor t -> Tensor.pp fmt t
  | Expr e -> Expr.pp fmt e
  | Fun f -> Format.fprintf fmt "<closure/%d>" f.arity

let as_int = function Int i -> i | v -> mismatch "Integer64" (type_name v)
let as_real = function
  | Real r -> r
  | Int i -> float_of_int i
  | v -> mismatch "Real64" (type_name v)
let as_bool = function Bool b -> b | v -> mismatch "Boolean" (type_name v)
let as_str = function Str s -> s | v -> mismatch "String" (type_name v)
let as_tensor = function Tensor t -> t | v -> mismatch "PackedArray" (type_name v)
let as_fun = function Fun f -> f | v -> mismatch "Function" (type_name v)
