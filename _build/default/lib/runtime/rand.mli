(** Deterministic splitmix64 PRNG shared by every execution path.

    The interpreter's [RandomReal], the WVM, and compiled code all draw from
    this one stream, so differential tests can compare results across paths
    after [seed]-ing identically. *)

val seed : int -> unit

val next_int64 : unit -> int64

val uniform : unit -> float
(** In [0, 1). *)

val uniform_range : float -> float -> float

val int_range : int -> int -> int
(** Inclusive bounds. *)
