(** Boxed runtime values exchanged between compiled code and its callers.

    The native backends keep machine numbers unboxed inside a compiled
    function; [t] is the representation at function boundaries (argument
    unpacking / result packing, see {!Wolf_compiler.Boxing}) and for
    polymorphic registers. *)

open Wolf_wexpr

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Real of float
  | Complex of float * float
  | Str of string
  | Tensor of Tensor.t
  | Expr of Expr.t                   (** symbolic values, type "Expression" *)
  | Fun of closure                   (** first-class compiled functions *)

and closure = { arity : int; call : t array -> t }

val of_expr : Expr.t -> t
(** Unboxing: numbers, strings, booleans and packed tensors map to their
    machine representations; lists of machine numbers pack; anything else
    stays [Expr]. *)

val to_expr : t -> Expr.t
(** Boxing back into the interpreter's world. *)

val tensor_to_expr : Tensor.t -> Expr.t
(** Unpack a tensor into nested [List] normal expressions (Wolfram's
    [Normal] on packed arrays). *)

val type_name : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val as_int : t -> int
val as_real : t -> float
(** [as_real] coerces [Int]. Both raise [Errors.Runtime_error
    (Invalid_runtime_argument _)] on representation mismatch. *)

val as_bool : t -> bool
val as_str : t -> string
val as_tensor : t -> Tensor.t
val as_fun : t -> closure
