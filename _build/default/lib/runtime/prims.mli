(** Boxed implementations of the compiler's runtime primitives.

    Backends use these for every resolved primitive they do not open-code:
    the WVM for all its operations, the native backends when inlining is
    disabled (the paper's 10× Mandelbrot ablation reproduces exactly this
    dispatch overhead), and as the reference semantics for the open-coded
    fast paths.

    Numerical failures raise [Wolf_base.Errors.Runtime_error], which the
    compiled-function wrapper turns into the soft interpreter fallback. *)

val apply : base:string -> Rtval.t array -> Rtval.t
(** Dispatch on the primitive's base name (e.g. ["checked_binary_plus"]) and
    the runtime shapes of the arguments.
    @raise Wolf_base.Errors.Runtime_error on numerical failure or shape
    mismatch; @raise Invalid_argument on unknown primitives. *)

val known : string -> bool
