(** List and packed-array builtins: construction ([Range], [Table],
    [ConstantArray]), structure ([Length], [First], [Join], …), reductions
    ([Total], [Dot]) and random sampling. *)

val install : unit -> unit

val pack_or_list : Wolf_wexpr.Expr.t array -> Wolf_wexpr.Expr.t
(** Pack a freshly built homogeneous numeric list into a tensor; heterogeneous
    content stays an unpacked [List]. *)
