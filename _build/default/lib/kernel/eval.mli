(** The Wolfram Engine evaluator (the paper's host interpreter, Section 2).

    Implements infinite evaluation: expressions are rewritten until a fixed
    point or a limit is reached, so [y = x; x = 1; y] evaluates to [1].
    Builtins are registered by the [Builtins_*] modules; user definitions are
    down values ({!Values}); compiled functions short-circuit rewriting via
    {!Values.compiled_value} (objective F1). *)

open Wolf_wexpr

type evaluator = Expr.t -> Expr.t

type builtin = evaluator -> Expr.t array -> Expr.t option
(** [fn eval args] returns [None] when the builtin leaves the expression
    unevaluated (symbolic residue), [Some e] to rewrite.  [args] have already
    been evaluated according to the head's Hold attributes. *)

val register : string -> ?attrs:Attributes.t list -> builtin -> unit
val is_builtin : Symbol.t -> bool

val eval : Expr.t -> Expr.t
(** @raise Wolf_base.Abort_signal.Aborted on user abort
    @raise Wolf_base.Errors.Eval_error on exceeded recursion/iteration limits *)

val recursion_limit : int ref
val iteration_limit : int ref

exception Return_value of Expr.t
(** Raised by the [Return] builtin; caught at function application. *)

exception Break_loop
exception Continue_loop

val apply_function : evaluator -> Expr.t -> Expr.t array -> Expr.t
(** Beta-reduce a [Function[…]] expression applied to (already evaluated)
    arguments.  Exposed for [Map]/[Fold]/… builtins. *)
