lib/kernel/builtins_func.mli:
