lib/kernel/builtins_math.ml: Array Attributes Bignum Checked Errors Eval Expr Float List Numeric String Symbol Tensor Values Wolf_base Wolf_wexpr
