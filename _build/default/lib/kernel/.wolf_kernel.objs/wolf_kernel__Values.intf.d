lib/kernel/values.mli: Expr Symbol Wolf_runtime Wolf_wexpr
