lib/kernel/numeric.mli: Expr Wolf_wexpr
