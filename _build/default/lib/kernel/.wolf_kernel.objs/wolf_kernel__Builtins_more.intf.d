lib/kernel/builtins_more.mli:
