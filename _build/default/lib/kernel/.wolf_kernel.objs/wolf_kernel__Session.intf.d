lib/kernel/session.mli: Expr Wolf_wexpr
