lib/kernel/builtins_more.ml: Array Attributes Bignum Buffer Builtins_list Errors Eval Expr Float List Numeric Option Pattern String Symbol Tensor Wolf_base Wolf_runtime Wolf_wexpr
