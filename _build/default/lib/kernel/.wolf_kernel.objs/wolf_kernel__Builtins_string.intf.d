lib/kernel/builtins_string.mli:
