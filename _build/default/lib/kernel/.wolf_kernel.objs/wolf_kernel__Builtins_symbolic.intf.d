lib/kernel/builtins_symbolic.mli:
