lib/kernel/values.ml: Array Expr Hashtbl List Option Symbol Tensor Wolf_runtime Wolf_wexpr
