lib/kernel/eval.ml: Abort_signal Array Attributes Errors Expr Hashtbl List Pattern Symbol Values Wolf_base Wolf_runtime Wolf_wexpr
