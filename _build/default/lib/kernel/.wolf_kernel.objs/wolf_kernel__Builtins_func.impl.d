lib/kernel/builtins_func.ml: Array Errors Eval Expr List Option Pattern Symbol Wolf_base Wolf_runtime Wolf_wexpr
