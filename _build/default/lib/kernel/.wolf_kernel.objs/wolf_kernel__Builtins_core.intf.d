lib/kernel/builtins_core.mli: Eval Expr Symbol Wolf_wexpr
