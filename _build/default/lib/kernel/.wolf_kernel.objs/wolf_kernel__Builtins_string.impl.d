lib/kernel/builtins_string.ml: Array Attributes Buffer Char Eval Expr Form List Option String Symbol Tensor Wolf_wexpr
