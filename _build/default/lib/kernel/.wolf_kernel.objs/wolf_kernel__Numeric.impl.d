lib/kernel/numeric.ml: Array Bignum Checked Errors Expr Float Option Stdlib Symbol Tensor Wolf_base Wolf_wexpr
