lib/kernel/eval.mli: Attributes Expr Symbol Wolf_wexpr
