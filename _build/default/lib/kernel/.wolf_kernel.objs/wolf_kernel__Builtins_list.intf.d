lib/kernel/builtins_list.mli: Wolf_wexpr
