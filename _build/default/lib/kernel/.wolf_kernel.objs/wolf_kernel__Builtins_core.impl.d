lib/kernel/builtins_core.ml: Abort_signal Array Attributes Errors Eval Expr List Numeric Option Pattern Symbol Tensor Values Wolf_base Wolf_wexpr
