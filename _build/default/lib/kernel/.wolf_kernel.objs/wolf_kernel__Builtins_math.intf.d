lib/kernel/builtins_math.mli:
