lib/kernel/builtins_symbolic.ml: Array Attributes Errors Eval Expr Float Form Hashtbl List Numeric Option Pattern String Symbol Wolf_base Wolf_runtime Wolf_wexpr
