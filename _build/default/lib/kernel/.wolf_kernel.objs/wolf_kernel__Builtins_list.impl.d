lib/kernel/builtins_list.ml: Array Attributes Builtins_core Errors Eval Expr Float List Numeric Option Pattern Rand Rtval Symbol Tensor Wolf_base Wolf_runtime Wolf_wexpr
