open Wolf_wexpr
open Wolf_base

(* Fold a commutative numeric operation over evaluated arguments; returns
   None (symbolic residue) as soon as a non-numeric operand appears.  The
   numeric prefix is still folded: Plus[1, 2, x] -> Plus[3, x]. *)
let fold_numeric name op identity _ev args =
  match Array.length args with
  | 0 -> Some identity
  | 1 -> Some args.(0)
  | _ ->
    let numeric, symbolic =
      Array.to_list args |> List.partition Numeric.is_numeric
    in
    (match numeric with
     | [] -> None
     | first :: rest ->
       let folded =
         List.fold_left
           (fun acc x ->
              match op acc x with
              | Some v -> v
              | None -> Errors.eval_errorf "%s: numeric failure" name)
           first rest
       in
       (match symbolic with
        | [] -> Some folded
        | _ ->
          if List.length numeric <= 1 then None
          else Some (Expr.normal (Expr.sym name) (folded :: symbolic))))

let real_fn name f =
  Eval.register name ~attrs:[ Attributes.Listable; Attributes.Numeric_function ]
    (fun _ args ->
       match args with
       | [| Expr.Tensor t |] -> Some (Expr.Tensor (Tensor.map_real f t))
       | [| a |] ->
         (match a with
          | Expr.Real r -> Some (Expr.Real (f r))
          | Expr.Int i -> Some (Expr.Real (f (float_of_int i)))
          | _ -> None)
       | _ -> None)

let int2_fn name f =
  Eval.register name ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| a; b |] ->
        (match Expr.int_of a, Expr.int_of b with
         | Some x, Some y -> Some (f x y)
         | _ -> None)
      | _ -> None)

let comparison name cmp =
  Eval.register name (fun _ args ->
      if Array.length args < 2 then None
      else begin
        (* n-ary chains: a < b < c *)
        let ok = ref true and known = ref true in
        for i = 0 to Array.length args - 2 do
          match Numeric.compare2 args.(i) args.(i + 1) with
          | Some c -> if not (cmp c) then ok := false
          | None ->
            (match args.(i), args.(i + 1) with
             | Expr.Str x, Expr.Str y when name = "Equal" || name = "Unequal" ->
               if not (cmp (String.compare x y)) then ok := false
             | Expr.Sym x, Expr.Sym y
               when (name = "Equal" || name = "Unequal")
                 && (Expr.is_true args.(i) || Expr.is_false args.(i))
                 && (Expr.is_true args.(i + 1) || Expr.is_false args.(i + 1)) ->
               if not (cmp (compare (Symbol.name x) (Symbol.name y))) then ok := false
             | _ -> known := false)
        done;
        if not !known then None else Some (Expr.bool !ok)
      end)

let install () =
  Eval.register "Plus"
    ~attrs:[ Attributes.Flat; Attributes.Orderless; Attributes.Listable;
             Attributes.One_identity; Attributes.Numeric_function; Attributes.Protected ]
    (fold_numeric "Plus" Numeric.add2 (Expr.Int 0));
  Eval.register "Times"
    ~attrs:[ Attributes.Flat; Attributes.Orderless; Attributes.Listable;
             Attributes.One_identity; Attributes.Numeric_function; Attributes.Protected ]
    (fold_numeric "Times" Numeric.mul2 (Expr.Int 1));
  Eval.register "Subtract" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| a; b |] ->
        (match Numeric.sub2 a b with
         | Some v -> Some v
         | None ->
           Some (Expr.apply "Plus" [ a; Expr.apply "Times" [ Expr.Int (-1); b ] ]))
      | _ -> None);
  Eval.register "Minus" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| a |] ->
        (match Numeric.neg a with
         | Some v -> Some v
         | None -> Some (Expr.apply "Times" [ Expr.Int (-1); a ]))
      | _ -> None);
  Eval.register "Divide" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| a; b |] -> Numeric.div2 a b
      | _ -> None);
  Eval.register "Power"
    ~attrs:[ Attributes.Listable; Attributes.One_identity; Attributes.Numeric_function ]
    (fun _ args ->
       match args with
       | [| a; b |] -> Numeric.pow2 a b
       | _ -> None);
  Eval.register "Abs" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with [| a |] -> Numeric.abs a | _ -> None);
  Eval.register "Mod" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| a; b |] ->
        (match Expr.int_of a, Expr.int_of b with
         | Some x, Some y when y <> 0 -> Some (Expr.Int (Checked.modulo x y))
         | _ ->
           (match Expr.float_of a, Expr.float_of b with
            | Some x, Some y when y <> 0.0 ->
              let r = Float.rem x y in
              let r = if r <> 0.0 && (r < 0.0) <> (y < 0.0) then r +. y else r in
              Some (Expr.Real r)
            | _ -> None))
      | _ -> None);
  Eval.register "Quotient" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| a; b |] ->
        (match Expr.int_of a, Expr.int_of b with
         | Some x, Some y when y <> 0 ->
           (* Wolfram Quotient is floor division *)
           let q = if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1 else x / y in
           Some (Expr.Int q)
         | _ -> None)
      | _ -> None);
  Eval.register "Min" ~attrs:[ Attributes.Flat; Attributes.Orderless ] (fun _ args ->
      if Array.length args = 0 then None
      else begin
        let args =
          Array.to_list args
          |> List.concat_map (function
              | Expr.Normal (Expr.Sym l, xs) when Symbol.equal l Expr.Sy.list ->
                Array.to_list xs
              | Expr.Tensor t ->
                List.init (Tensor.flat_length t) (fun i ->
                    if Tensor.is_int t then Expr.Int (Tensor.get_int t i)
                    else Expr.Real (Tensor.get_real t i))
              | a -> [ a ])
        in
        let rec go acc = function
          | [] -> Some acc
          | x :: rest ->
            (match Numeric.compare2 x acc with
             | Some c -> go (if c < 0 then x else acc) rest
             | None -> None)
        in
        match args with [] -> None | first :: rest -> go first rest
      end);
  Eval.register "Max" ~attrs:[ Attributes.Flat; Attributes.Orderless ] (fun _ args ->
      if Array.length args = 0 then None
      else begin
        let args =
          Array.to_list args
          |> List.concat_map (function
              | Expr.Normal (Expr.Sym l, xs) when Symbol.equal l Expr.Sy.list ->
                Array.to_list xs
              | Expr.Tensor t ->
                List.init (Tensor.flat_length t) (fun i ->
                    if Tensor.is_int t then Expr.Int (Tensor.get_int t i)
                    else Expr.Real (Tensor.get_real t i))
              | a -> [ a ])
        in
        let rec go acc = function
          | [] -> Some acc
          | x :: rest ->
            (match Numeric.compare2 x acc with
             | Some c -> go (if c > 0 then x else acc) rest
             | None -> None)
        in
        match args with [] -> None | first :: rest -> go first rest
      end);
  Eval.register "Floor" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| Expr.Real r |] -> Some (Expr.Int (int_of_float (Float.floor r)))
      | [| (Expr.Int _ | Expr.Big _) as i |] -> Some i
      | _ -> None);
  Eval.register "Ceiling" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| Expr.Real r |] -> Some (Expr.Int (int_of_float (Float.ceil r)))
      | [| (Expr.Int _ | Expr.Big _) as i |] -> Some i
      | _ -> None);
  Eval.register "Round" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| Expr.Real r |] -> Some (Expr.Int (Checked.round_half_even r))
      | [| (Expr.Int _ | Expr.Big _) as i |] -> Some i
      | _ -> None);
  Eval.register "IntegerPart" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| Expr.Real r |] -> Some (Expr.Int (int_of_float (Float.trunc r)))
      | [| (Expr.Int _ | Expr.Big _) as i |] -> Some i
      | _ -> None);
  Eval.register "Sqrt" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| Expr.Int i |] when i >= 0 ->
        let r = int_of_float (Float.sqrt (float_of_int i)) in
        if r * r = i then Some (Expr.Int r)
        else Some (Expr.Real (Float.sqrt (float_of_int i)))
      | [| a |] ->
        (match Expr.float_of a with
         | Some r when r >= 0.0 -> Some (Expr.Real (Float.sqrt r))
         | _ -> None)
      | _ -> None);
  real_fn "Sin" sin;
  real_fn "Cos" cos;
  real_fn "Tan" tan;
  real_fn "ArcTan" atan;
  real_fn "ArcSin" asin;
  real_fn "ArcCos" acos;
  real_fn "Exp" exp;
  real_fn "Log" log;
  int2_fn "BitAnd" (fun a b -> Expr.Int (a land b));
  int2_fn "BitOr" (fun a b -> Expr.Int (a lor b));
  int2_fn "BitXor" (fun a b -> Expr.Int (a lxor b));
  int2_fn "BitShiftLeft" (fun a b -> Expr.Int (a lsl b));
  int2_fn "BitShiftRight" (fun a b -> Expr.Int (a asr b));
  comparison "Less" (fun c -> c < 0);
  comparison "Greater" (fun c -> c > 0);
  comparison "LessEqual" (fun c -> c <= 0);
  comparison "GreaterEqual" (fun c -> c >= 0);
  comparison "Equal" (fun c -> c = 0);
  comparison "Unequal" (fun c -> c <> 0);
  Eval.register "And" ~attrs:[ Attributes.Hold_all; Attributes.Flat ] (fun ev args ->
      let rec go i =
        if i >= Array.length args then Some Expr.true_
        else begin
          let v = ev args.(i) in
          if Expr.is_false v then Some Expr.false_
          else if Expr.is_true v then go (i + 1)
          else None
        end
      in
      go 0);
  Eval.register "Or" ~attrs:[ Attributes.Hold_all; Attributes.Flat ] (fun ev args ->
      let rec go i =
        if i >= Array.length args then Some Expr.false_
        else begin
          let v = ev args.(i) in
          if Expr.is_true v then Some Expr.true_
          else if Expr.is_false v then go (i + 1)
          else None
        end
      in
      go 0);
  Eval.register "Not" (fun _ args ->
      match args with
      | [| v |] ->
        if Expr.is_true v then Some Expr.false_
        else if Expr.is_false v then Some Expr.true_
        else None
      | _ -> None);
  Eval.register "Boole" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| v |] ->
        if Expr.is_true v then Some (Expr.Int 1)
        else if Expr.is_false v then Some (Expr.Int 0)
        else None
      | _ -> None);
  let parity name want =
    Eval.register name ~attrs:[ Attributes.Listable ] (fun _ args ->
        match args with
        | [| Expr.Int i |] -> Some (Expr.bool (i land 1 = want))
        | [| Expr.Big b |] ->
          let _, r = Bignum.divmod b (Bignum.of_int 2) in
          Some (Expr.bool (Bignum.is_zero r = (want = 0)))
        | [| _ |] -> Some Expr.false_
        | _ -> None)
  in
  parity "EvenQ" 0;
  parity "OddQ" 1;
  Eval.register "N" (fun _ args ->
      match args with
      | [| a |] -> Numeric.to_real a
      | _ -> None);
  Eval.register "Re" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| Expr.Normal (Expr.Sym c, [| re; _ |]) |] when Symbol.equal c Expr.Sy.complex ->
        Some re
      | [| (Expr.Int _ | Expr.Big _ | Expr.Real _) as a |] -> Some a
      | _ -> None);
  Eval.register "Im" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| Expr.Normal (Expr.Sym c, [| _; im |]) |] when Symbol.equal c Expr.Sy.complex ->
        Some im
      | [| Expr.Int _ | Expr.Big _ |] -> Some (Expr.Int 0)
      | [| Expr.Real _ |] -> Some (Expr.Real 0.0)
      | _ -> None);
  Eval.register "PrimeQ" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| a |] ->
        (match Expr.int_of a with
         | Some n ->
           let n = abs n in
           if n < 2 then Some Expr.false_
           else if n < 4 then Some Expr.true_
           else if n mod 2 = 0 then Some Expr.false_
           else begin
             let rec go d =
               if d * d > n then true
               else if n mod d = 0 then false
               else go (d + 2)
             in
             Some (Expr.bool (go 3))
           end
         | None -> None)
      | _ -> None);
  (* Symbolic constants are treated numerically (DESIGN.md: we reproduce the
     compiler, not the CAS). *)
  Values.set_own_value (Symbol.intern "Pi") (Expr.Real Float.pi);
  Values.set_own_value (Symbol.intern "E") (Expr.Real (Float.exp 1.0))
