open Wolf_wexpr

let initialized = ref false

let init () =
  if not !initialized then begin
    initialized := true;
    Builtins_core.install ();
    Builtins_math.install ();
    Builtins_list.install ();
    Builtins_func.install ();
    Builtins_string.install ();
    Builtins_more.install ();
    Builtins_symbolic.install ();
    Wolf_runtime.Hooks.set_kernel_eval Eval.eval
  end

let eval e =
  init ();
  Eval.eval e

let eval_protected e =
  init ();
  Wolf_base.Abort_signal.with_abort_protection (fun () -> Eval.eval e)

let run src = eval (Parser.parse src)

let run_string src = Form.input_form (run src)

let reset () =
  Values.clear_all ();
  (* numeric constants live in the value store; reinstate them *)
  Values.set_own_value (Symbol.intern "Pi") (Expr.Real Float.pi);
  Values.set_own_value (Symbol.intern "E") (Expr.Real (Float.exp 1.0))
