open Wolf_wexpr
open Wolf_base
open Wolf_runtime

let as_list = function
  | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list -> Some items
  | Expr.Tensor t ->
    (match Rtval.tensor_to_expr t with
     | Expr.Normal (_, items) -> Some items
     | _ -> None)
  | _ -> None

let length = function
  | Expr.Tensor t -> Some ((Tensor.dims t).(0))
  | Expr.Normal (_, items) -> Some (Array.length items)
  | _ -> None

(* Pack a freshly built numeric list when every element is a machine number;
   mirrors the engine's auto-packing of Table/Range/Random* results. *)
let pack_or_list items =
  let n = Array.length items in
  if n = 0 then Expr.list_a items
  else begin
    let all_int = Array.for_all (function Expr.Int _ -> true | _ -> false) items in
    if all_int then
      Expr.Tensor
        (Tensor.of_int_array
           (Array.map (function Expr.Int i -> i | _ -> 0) items))
    else begin
      let all_num =
        Array.for_all
          (function Expr.Int _ | Expr.Real _ -> true | _ -> false)
          items
      in
      if all_num then
        Expr.Tensor
          (Tensor.of_real_array
             (Array.map
                (function
                  | Expr.Int i -> float_of_int i
                  | Expr.Real r -> r
                  | _ -> 0.0)
                items))
      else Expr.list_a items
    end
  end

let random_dims ev spec =
  match ev spec with
  | Expr.Int n -> Some [ n ]
  | Expr.Normal (Expr.Sym l, dims) when Symbol.equal l Expr.Sy.list ->
    let ds =
      Array.to_list dims
      |> List.map (fun d ->
          match Expr.int_of d with
          | Some i -> i
          | None -> Errors.eval_errorf "Random*: bad dimension")
    in
    Some ds
  | _ -> None

let build_random_real lo hi dims =
  match dims with
  | [] -> Expr.Real (Rand.uniform_range lo hi)
  | ds ->
    let total = List.fold_left ( * ) 1 ds in
    let flat = Array.init total (fun _ -> Rand.uniform_range lo hi) in
    Expr.Tensor (Tensor.create_real (Array.of_list ds) flat)

let real_range ev bounds =
  match ev bounds with
  | Expr.Normal (Expr.Sym l, [| lo; hi |]) when Symbol.equal l Expr.Sy.list ->
    (match Expr.float_of (ev lo), Expr.float_of (ev hi) with
     | Some l', Some h' -> Some (l', h')
     | _ -> None)
  | e ->
    (match Expr.float_of e with
     | Some h -> Some (0.0, h)
     | None -> None)

let install () =
  Eval.register "Length" (fun _ args ->
      match args with
      | [| e |] ->
        (match length e with
         | Some n -> Some (Expr.Int n)
         | None -> (match e with Expr.Sym _ -> None | _ -> Some (Expr.Int 0)))
      | _ -> None);
  Eval.register "Range" ~attrs:[ Attributes.Listable ] (fun _ args ->
      let mk lo hi step =
        if step = 0 then Errors.eval_errorf "Range: zero step"
        else begin
          let n = if (hi - lo) * step < 0 then 0 else ((hi - lo) / step) + 1 in
          Expr.Tensor (Tensor.of_int_array (Array.init n (fun i -> lo + (i * step))))
        end
      in
      match args with
      | [| Expr.Int n |] -> Some (mk 1 n 1)
      | [| Expr.Int lo; Expr.Int hi |] -> Some (mk lo hi 1)
      | [| Expr.Int lo; Expr.Int hi; Expr.Int s |] -> Some (mk lo hi s)
      | _ -> None);
  Eval.register "Table" ~attrs:[ Attributes.Hold_all ] (fun ev args ->
      match args with
      | [| body; spec |] ->
        let acc = ref [] in
        Builtins_core.iterate ev spec (fun var value ->
            let expr =
              match var with
              | Some v -> Pattern.substitute [ (v, value) ] body
              | None -> body
            in
            acc := ev expr :: !acc);
        Some (pack_or_list (Array.of_list (List.rev !acc)))
      | [| body; spec1; spec2 |] ->
        (* nested table *)
        let acc = ref [] in
        Builtins_core.iterate ev spec1 (fun var value ->
            let inner =
              match var with
              | Some v ->
                Expr.apply "Table" [ Pattern.substitute [ (v, value) ] body; spec2 ]
              | None -> Expr.apply "Table" [ body; spec2 ]
            in
            acc := ev inner :: !acc);
        let rows = Array.of_list (List.rev !acc) in
        (* repack rectangular numeric matrices *)
        let tensors =
          Array.for_all (function Expr.Tensor _ -> true | _ -> false) rows
        in
        if tensors && Array.length rows > 0 then begin
          let ts = Array.map (function Expr.Tensor t -> t | _ -> assert false) rows in
          let d0 = Tensor.dims ts.(0) in
          if Array.for_all (fun t -> Tensor.dims t = d0) ts
          && Array.for_all (fun t -> Tensor.is_int t = Tensor.is_int ts.(0)) ts
          then begin
            let sub = Tensor.flat_length ts.(0) in
            let dims = Array.append [| Array.length rows |] d0 in
            if Tensor.is_int ts.(0) then begin
              let flat = Array.make (Array.length rows * sub) 0 in
              Array.iteri
                (fun i t ->
                   for j = 0 to sub - 1 do flat.((i * sub) + j) <- Tensor.get_int t j done)
                ts;
              Some (Expr.Tensor (Tensor.create_int dims flat))
            end
            else begin
              let flat = Array.make (Array.length rows * sub) 0.0 in
              Array.iteri
                (fun i t ->
                   for j = 0 to sub - 1 do flat.((i * sub) + j) <- Tensor.get_real t j done)
                ts;
              Some (Expr.Tensor (Tensor.create_real dims flat))
            end
          end
          else Some (Expr.list_a rows)
        end
        else Some (Expr.list_a rows)
      | _ -> None);
  Eval.register "ConstantArray" (fun _ args ->
      match args with
      | [| Expr.Int v; Expr.Int n |] when n >= 0 ->
        Some (Expr.Tensor (Tensor.of_int_array (Array.make n v)))
      | [| Expr.Real v; Expr.Int n |] when n >= 0 ->
        Some (Expr.Tensor (Tensor.of_real_array (Array.make n v)))
      | [| v; Expr.Int n |] when n >= 0 ->
        Some (Expr.list_a (Array.make n v))
      | _ -> None);
  Eval.register "First" (fun _ args ->
      match args with
      | [| e |] ->
        (match e with
         | Expr.Tensor _ -> Some (Builtins_core.part_get e [ 1 ])
         | Expr.Normal (_, items) when Array.length items > 0 -> Some items.(0)
         | _ -> None)
      | _ -> None);
  Eval.register "Last" (fun _ args ->
      match args with
      | [| e |] ->
        (match e with
         | Expr.Tensor _ -> Some (Builtins_core.part_get e [ -1 ])
         | Expr.Normal (_, items) when Array.length items > 0 ->
           Some items.(Array.length items - 1)
         | _ -> None)
      | _ -> None);
  Eval.register "Rest" (fun _ args ->
      match args with
      | [| e |] ->
        (match as_list e with
         | Some items when Array.length items > 0 ->
           Some (Expr.list_a (Array.sub items 1 (Array.length items - 1)))
         | _ -> None)
      | _ -> None);
  Eval.register "Most" (fun _ args ->
      match args with
      | [| e |] ->
        (match as_list e with
         | Some items when Array.length items > 0 ->
           Some (Expr.list_a (Array.sub items 0 (Array.length items - 1)))
         | _ -> None)
      | _ -> None);
  Eval.register "Append" (fun _ args ->
      match args with
      | [| e; v |] ->
        (match as_list e with
         | Some items -> Some (pack_or_list (Array.append items [| v |]))
         | None -> None)
      | _ -> None);
  Eval.register "Prepend" (fun _ args ->
      match args with
      | [| e; v |] ->
        (match as_list e with
         | Some items -> Some (pack_or_list (Array.append [| v |] items))
         | None -> None)
      | _ -> None);
  Eval.register "Join" (fun _ args ->
      let parts = Array.to_list args |> List.map as_list in
      if List.for_all Option.is_some parts then
        Some
          (pack_or_list
             (Array.concat (List.map Option.get parts)))
      else None);
  Eval.register "Reverse" (fun _ args ->
      match args with
      | [| e |] ->
        (match as_list e with
         | Some items ->
           let n = Array.length items in
           Some (pack_or_list (Array.init n (fun i -> items.(n - 1 - i))))
         | None -> None)
      | _ -> None);
  Eval.register "Sort" (fun ev args ->
      match args with
      | [| e |] ->
        (match as_list e with
         | Some items ->
           let copy = Array.copy items in
           Array.sort Expr.compare copy;
           Some (pack_or_list copy)
         | None -> None)
      | [| e; f |] ->
        (match as_list e with
         | Some items ->
           let copy = Array.copy items in
           Array.sort
             (fun a b ->
                let r = Eval.apply_function ev f [| a; b |] in
                if Expr.is_true r then -1
                else if Expr.is_false r then 1
                else 0)
             copy;
           Some (pack_or_list copy)
         | None -> None)
      | _ -> None);
  Eval.register "Total" (fun ev args ->
      match args with
      | [| Expr.Tensor t |] ->
        if Tensor.rank t = 1 then
          (match Tensor.total t with
           | `Int i -> Some (Expr.Int i)
           | `Real r -> Some (Expr.Real r))
        else begin
          (* Total over the first level: sum of row sub-tensors *)
          let n = (Tensor.dims t).(0) in
          let acc = ref (Expr.Tensor (Tensor.slice t 0)) in
          for i = 1 to n - 1 do
            match Numeric.add2 !acc (Expr.Tensor (Tensor.slice t i)) with
            | Some v -> acc := v
            | None -> Errors.eval_errorf "Total: bad tensor"
          done;
          Some !acc
        end
      | [| e |] ->
        (match as_list e with
         | Some items ->
           let rec go acc i =
             if i >= Array.length items then Some acc
             else
               match Numeric.add2 acc items.(i) with
               | Some v -> go v (i + 1)
               | None ->
                 (* nested lists: thread through the evaluator's Listable Plus *)
                 go (ev (Expr.apply "Plus" [ acc; items.(i) ])) (i + 1)
           in
           if Array.length items = 0 then Some (Expr.Int 0)
           else go items.(0) 1
         | None -> None)
      | _ -> None);
  Eval.register "Dot" ~attrs:[ Attributes.Flat; Attributes.One_identity ] (fun _ args ->
      match args with
      | [| a; b |] ->
        let to_tensor = function
          | Expr.Tensor t -> Some t
          | e ->
            (match Rtval.of_expr e with
             | Rtval.Tensor t -> Some t
             | _ -> None)
        in
        (match to_tensor a, to_tensor b with
         | Some x, Some y ->
           let r = Tensor.dot x y in
           if Tensor.rank x = 1 && Tensor.rank y = 1 then begin
             (* scalar result *)
             if Tensor.is_int r then Some (Expr.Int (Tensor.get_int r 0))
             else Some (Expr.Real (Tensor.get_real r 0))
           end
           else Some (Expr.Tensor r)
         | _ -> None)
      | _ -> None);
  Eval.register "RandomReal" (fun ev args ->
      match args with
      | [||] -> Some (Expr.Real (Rand.uniform ()))
      | [| bounds |] ->
        (match real_range ev bounds with
         | Some (lo, hi) -> Some (build_random_real lo hi [])
         | None -> None)
      | [| bounds; spec |] ->
        (match real_range ev bounds, random_dims ev spec with
         | Some (lo, hi), Some dims -> Some (build_random_real lo hi dims)
         | _ -> None)
      | _ -> None);
  Eval.register "RandomInteger" (fun ev args ->
      let bounds e =
        match ev e with
        | Expr.Int hi -> Some (0, hi)
        | Expr.Normal (Expr.Sym l, [| lo; hi |]) when Symbol.equal l Expr.Sy.list ->
          (match Expr.int_of lo, Expr.int_of hi with
           | Some l', Some h' -> Some (l', h')
           | _ -> None)
        | _ -> None
      in
      match args with
      | [||] -> Some (Expr.Int (Rand.int_range 0 1))
      | [| b |] ->
        (match bounds b with
         | Some (lo, hi) -> Some (Expr.Int (Rand.int_range lo hi))
         | None -> None)
      | [| b; spec |] ->
        (match bounds b, random_dims ev spec with
         | Some (lo, hi), Some dims ->
           let total = List.fold_left ( * ) 1 dims in
           let flat = Array.init total (fun _ -> Rand.int_range lo hi) in
           Some (Expr.Tensor (Tensor.create_int (Array.of_list dims) flat))
         | _ -> None)
      | _ -> None);
  Eval.register "RandomVariate" (fun ev args ->
      let is_normal_dist = function
        | Expr.Normal (Expr.Sym d, [||]) -> Symbol.name d = "NormalDistribution"
        | Expr.Sym d -> Symbol.name d = "NormalDistribution"
        | _ -> false
      in
      let gauss () =
        let u1 = Rand.uniform () and u2 = Rand.uniform () in
        Float.sqrt (-2.0 *. Float.log (Float.max u1 1e-300))
        *. Float.cos (2.0 *. Float.pi *. u2)
      in
      match args with
      | [| dist |] when is_normal_dist dist -> Some (Expr.Real (gauss ()))
      | [| dist; spec |] when is_normal_dist dist ->
        (match random_dims ev spec with
         | Some dims ->
           let total = List.fold_left ( * ) 1 dims in
           let flat = Array.init total (fun _ -> gauss ()) in
           Some (Expr.Tensor (Tensor.create_real (Array.of_list dims) flat))
         | None -> None)
      | _ -> None);
  Eval.register "SeedRandom" (fun _ args ->
      match args with
      | [| a |] ->
        (match Expr.int_of a with
         | Some n -> Rand.seed n; Some Expr.null
         | None -> None)
      | [||] -> Rand.seed 0; Some Expr.null
      | _ -> None)
