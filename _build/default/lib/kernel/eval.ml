open Wolf_wexpr
open Wolf_base

type evaluator = Expr.t -> Expr.t
type builtin = evaluator -> Expr.t array -> Expr.t option

exception Return_value of Expr.t
exception Break_loop
exception Continue_loop

let builtins : (int, builtin) Hashtbl.t = Hashtbl.create 256

let register name ?(attrs = []) fn =
  let s = Symbol.intern name in
  Symbol.set_attributes s (Attributes.of_list attrs);
  Hashtbl.replace builtins (Symbol.id s) fn

let is_builtin s = Hashtbl.mem builtins (Symbol.id s)

let recursion_limit = ref 4096
let iteration_limit = ref 1_000_000

(* Substitute slots in a pure-function body; does not descend into nested
   Function bodies (their slots belong to the inner function). *)
let rec subst_slots args e =
  match e with
  | Expr.Normal (Expr.Sym s, [| Expr.Int i |]) when Symbol.equal s Expr.Sy.slot ->
    if i >= 1 && i <= Array.length args then args.(i - 1)
    else Errors.eval_errorf "Slot %d out of range (%d arguments)" i (Array.length args)
  | Expr.Normal (Expr.Sym s, _) when Symbol.equal s Expr.Sy.function_ -> e
  | Expr.Normal (h, xs) ->
    Expr.Normal (subst_slots args h, Array.map (subst_slots args) xs)
  | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Sym _ | Expr.Tensor _ -> e

let subst_vars pairs body =
  Pattern.substitute (List.map (fun (s, v) -> (s, v)) pairs) body

let apply_function ev fexpr args =
  match fexpr with
  | Expr.Normal (Expr.Sym f, [| body |]) when Symbol.equal f Expr.Sy.function_ ->
    ev (subst_slots args body)
  | Expr.Normal (Expr.Sym f, [| params; body |]) when Symbol.equal f Expr.Sy.function_ ->
    (* Typed annotations are compiler metadata; the interpreter ignores them *)
    let param_sym = function
      | Expr.Sym s -> s
      | Expr.Normal (Expr.Sym t, [| Expr.Sym s; _ |]) when Symbol.equal t Expr.Sy.typed ->
        s
      | p -> Errors.eval_errorf "Function: invalid parameter %s" (Expr.to_string p)
    in
    let param_syms =
      match params with
      | Expr.Normal (Expr.Sym l, ps) when Symbol.equal l Expr.Sy.list ->
        Array.map param_sym ps
      | p -> [| param_sym p |]
    in
    if Array.length param_syms <> Array.length args then
      Errors.eval_errorf "Function: expected %d arguments, got %d"
        (Array.length param_syms) (Array.length args);
    let pairs = Array.to_list (Array.map2 (fun s a -> (s, a)) param_syms args) in
    ev (subst_vars pairs body)
  | _ -> Errors.eval_errorf "cannot apply %s" (Expr.to_string fexpr)

let splice_sequences args =
  let has_seq =
    Array.exists
      (function
        | Expr.Normal (Expr.Sym s, _) -> Symbol.equal s Expr.Sy.sequence
        | _ -> false)
      args
  in
  if not has_seq then args
  else
    Array.of_list
      (Array.to_list args
       |> List.concat_map (function
           | Expr.Normal (Expr.Sym s, xs) when Symbol.equal s Expr.Sy.sequence ->
             Array.to_list xs
           | a -> [ a ]))

let flatten_same_head head args =
  let needs =
    Array.exists
      (function
        | Expr.Normal (Expr.Sym s, _) -> Symbol.equal s head
        | _ -> false)
      args
  in
  if not needs then args
  else
    Array.of_list
      (Array.to_list args
       |> List.concat_map (function
           | Expr.Normal (Expr.Sym s, xs) when Symbol.equal s head -> Array.to_list xs
           | a -> [ a ]))

let is_list = function
  | Expr.Normal (Expr.Sym s, _) -> Symbol.equal s Expr.Sy.list
  | _ -> false

(* Listable threading over unpacked List arguments. *)
let thread_listable h args =
  let lengths =
    Array.to_list args
    |> List.filter_map (function
        | Expr.Normal (Expr.Sym s, xs) when Symbol.equal s Expr.Sy.list ->
          Some (Array.length xs)
        | _ -> None)
  in
  match lengths with
  | [] -> None
  | n :: rest ->
    if List.exists (fun m -> m <> n) rest then None
    else
      Some
        (Expr.list_a
           (Array.init n (fun i ->
                Expr.Normal
                  ( h,
                    Array.map
                      (fun a ->
                         match a with
                         | Expr.Normal (Expr.Sym s, xs) when Symbol.equal s Expr.Sy.list ->
                           xs.(i)
                         | _ -> a)
                      args ))))

let rec eval_at depth e =
  if depth > !recursion_limit then
    Errors.eval_errorf "RecursionLimit exceeded at depth %d" depth;
  Abort_signal.check ();
  match e with
  | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Tensor _ -> e
  | Expr.Sym s ->
    (match Values.own_value s with
     | Some v -> if Expr.equal v e then e else eval_at (depth + 1) v
     | None -> e)
  | Expr.Normal _ ->
    let rec fixpoint iters e =
      if iters > !iteration_limit then
        Errors.eval_errorf "IterationLimit exceeded";
      let e' = step depth e in
      if e' == e then e
      else if Expr.is_atom e' then eval_at (depth + 1) e'
      else if Expr.equal e' e then e'
      else fixpoint (iters + 1) e'
    in
    fixpoint 0 e

and step depth e =
  match e with
  | Expr.Normal (h0, args0) ->
    let h = eval_at (depth + 1) h0 in
    let attrs =
      match h with
      | Expr.Sym s -> Symbol.attributes s
      | _ -> Attributes.empty
    in
    let hold_all = Attributes.mem Attributes.Hold_all attrs in
    let hold_first = Attributes.mem Attributes.Hold_first attrs in
    let hold_rest = Attributes.mem Attributes.Hold_rest attrs in
    let args =
      Array.mapi
        (fun i a ->
           let held =
             hold_all || (hold_first && i = 0) || (hold_rest && i > 0)
           in
           if held then a else eval_at (depth + 1) a)
        args0
    in
    let args =
      if Attributes.mem Attributes.Sequence_hold attrs then args
      else splice_sequences args
    in
    let args =
      match h with
      | Expr.Sym s when Attributes.mem Attributes.Flat attrs ->
        flatten_same_head s args
      | _ -> args
    in
    let args =
      if Attributes.mem Attributes.Orderless attrs then begin
        let copy = Array.copy args in
        Array.sort Expr.compare copy;
        copy
      end
      else args
    in
    (* Listable threading (unpacked lists; packed tensors are handled by the
       numeric builtins' fast paths). *)
    let threaded =
      if Attributes.mem Attributes.Listable attrs && Array.exists is_list args then
        thread_listable h args
      else None
    in
    (match threaded with
     | Some e' -> e'
     | None ->
       let applied =
         match h with
         | Expr.Sym s -> apply_symbol depth s h args
         | Expr.Normal (Expr.Sym f, _) when Symbol.equal f Expr.Sy.function_ ->
           Some (apply_function (eval_at (depth + 1)) h args)
         | _ -> None
       in
       (match applied with
        | Some e' -> e'
        | None ->
          (* no rewrite: rebuild only when something changed underneath *)
          if h == h0 && args == args0 then e
          else Expr.Normal (h, args)))
  | _ -> e

and apply_symbol depth s h args =
  let ev = eval_at (depth + 1) in
  (* 1. compiled definitions (FunctionCompile integration, F1) *)
  let compiled_result =
    match Values.compiled_value s with
    | Some closure when closure.Wolf_runtime.Rtval.arity = Array.length args ->
      (match closure.Wolf_runtime.Rtval.call (Array.map Wolf_runtime.Rtval.of_expr args) with
       | v -> Some (Wolf_runtime.Rtval.to_expr v)
       | exception Errors.Runtime_error _ -> None (* wrapper handles fallback *))
    | _ -> None
  in
  match compiled_result with
  | Some _ as r -> r
  | None ->
    (* 2. builtin implementations *)
    let builtin_result =
      match Hashtbl.find_opt builtins (Symbol.id s) with
      | Some fn -> fn ev args
      | None -> None
    in
    (match builtin_result with
     | Some _ as r -> r
     | None ->
       (* 3. user down values *)
       let whole = Expr.Normal (h, args) in
       let rec try_rules = function
         | [] -> None
         | { Values.lhs; rhs } :: rest ->
           (match Pattern.match_expr ~eval:ev ~pattern:lhs whole with
            | Some binds ->
              (match ev (Pattern.substitute binds rhs) with
               | v -> Some v
               | exception Return_value v -> Some v)
            | None -> try_rules rest)
       in
       try_rules (Values.down_values s))

let eval e = eval_at 0 e
