(** String builtins.  The paper's FNV1a benchmark iterates over a string's
    UTF-8 bytes; [ToCharacterCode] provides the bytecode compiler's
    integer-vector workaround. *)

val install : unit -> unit
