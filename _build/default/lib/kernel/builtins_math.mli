(** Arithmetic, comparisons, boolean and bitwise operations, elementary
    functions.  Machine integers promote to {!Wolf_base.Bignum} on overflow
    — the behaviour compiled code reverts to under soft failure (F2). *)

val install : unit -> unit
