open Wolf_wexpr
open Wolf_base

let as_items = function
  | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list -> Some items
  | Expr.Tensor t ->
    (match Wolf_runtime.Rtval.tensor_to_expr t with
     | Expr.Normal (_, items) -> Some items
     | _ -> None)
  | _ -> None

let pack = Builtins_list.pack_or_list

(* Wolfram Take/Drop index spec: n (first n), -n (last n), {i, j} (span). *)
let span_of_spec len spec =
  match spec with
  | Expr.Int n when n >= 0 -> Some (0, min n len)
  | Expr.Int n -> Some (max 0 (len + n), len)
  | Expr.Normal (Expr.Sym l, [| Expr.Int i; Expr.Int j |])
    when Symbol.equal l Expr.Sy.list ->
    let i = if i < 0 then len + i + 1 else i in
    let j = if j < 0 then len + j + 1 else j in
    if i >= 1 && j <= len && i <= j + 1 then Some (i - 1, j) else None
  | _ -> None

let rec flatten_all acc e =
  match e with
  | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
    Array.fold_left flatten_all acc items
  | Expr.Tensor _ ->
    (match as_items e with
     | Some items -> Array.fold_left flatten_all acc items
     | None -> e :: acc)
  | _ -> e :: acc

let install () =
  Eval.register "Take" (fun _ args ->
      match args with
      | [| e; spec |] ->
        Option.bind (as_items e) (fun items ->
            Option.map
              (fun (lo, hi) -> pack (Array.sub items lo (hi - lo)))
              (span_of_spec (Array.length items) spec))
      | _ -> None);
  Eval.register "Drop" (fun _ args ->
      match args with
      | [| e; Expr.Int n |] ->
        Option.bind (as_items e) (fun items ->
            let len = Array.length items in
            if n >= 0 && n <= len then Some (pack (Array.sub items n (len - n)))
            else if n < 0 && -n <= len then Some (pack (Array.sub items 0 (len + n)))
            else None)
      | _ -> None);
  Eval.register "Flatten" (fun _ args ->
      match args with
      | [| e |] ->
        (match e with
         | Expr.Normal (Expr.Sym l, _) when Symbol.equal l Expr.Sy.list ->
           Some (pack (Array.of_list (List.rev (flatten_all [] e))))
         | Expr.Tensor _ ->
           Some (pack (Array.of_list (List.rev (flatten_all [] e))))
         | _ -> None)
      | _ -> None);
  Eval.register "Partition" (fun _ args ->
      match args with
      | [| e; Expr.Int n |] when n > 0 ->
        Option.map
          (fun items ->
             let groups = Array.length items / n in
             Expr.list_a
               (Array.init groups (fun g -> pack (Array.sub items (g * n) n))))
          (as_items e)
      | _ -> None);
  Eval.register "Position" (fun ev args ->
      match args with
      | [| e; pat |] ->
        Option.map
          (fun items ->
             let hits = ref [] in
             Array.iteri
               (fun i x ->
                  if Option.is_some (Pattern.match_expr ~eval:ev ~pattern:pat x) then
                    hits := Expr.list [ Expr.Int (i + 1) ] :: !hits)
               items;
             Expr.list (List.rev !hits))
          (as_items e)
      | _ -> None);
  Eval.register "MemberQ" (fun ev args ->
      match args with
      | [| e; pat |] ->
        Option.map
          (fun items ->
             Expr.bool
               (Array.exists
                  (fun x -> Option.is_some (Pattern.match_expr ~eval:ev ~pattern:pat x))
                  items))
          (as_items e)
      | _ -> None);
  Eval.register "DeleteDuplicates" (fun _ args ->
      match args with
      | [| e |] ->
        Option.map
          (fun items ->
             let seen = ref [] in
             Array.iter
               (fun x ->
                  if not (List.exists (Expr.equal x) !seen) then seen := x :: !seen)
               items;
             pack (Array.of_list (List.rev !seen)))
          (as_items e)
      | _ -> None);
  Eval.register "Accumulate" (fun ev args ->
      match args with
      | [| e |] ->
        Option.bind (as_items e) (fun items ->
            if Array.length items = 0 then Some (Expr.list [])
            else begin
              let acc = ref items.(0) in
              let out =
                Array.mapi
                  (fun i x ->
                     if i = 0 then !acc
                     else begin
                       acc := ev (Expr.apply "Plus" [ !acc; x ]);
                       !acc
                     end)
                  items
              in
              Some (pack out)
            end)
      | _ -> None);
  Eval.register "Differences" (fun ev args ->
      match args with
      | [| e |] ->
        Option.bind (as_items e) (fun items ->
            let n = Array.length items in
            if n = 0 then Some (Expr.list [])
            else
              Some
                (pack
                   (Array.init (n - 1) (fun i ->
                        ev (Expr.apply "Subtract" [ items.(i + 1); items.(i) ])))))
      | _ -> None);
  Eval.register "Transpose" (fun _ args ->
      match args with
      | [| Expr.Tensor t |] when Tensor.rank t = 2 ->
        let dims = Tensor.dims t in
        let n = dims.(0) and m = dims.(1) in
        if Tensor.is_int t then begin
          let out = Array.init (n * m) (fun k -> Tensor.get_int t (((k mod n) * m) + (k / n))) in
          Some (Expr.Tensor (Tensor.create_int [| m; n |] out))
        end
        else begin
          let out = Array.init (n * m) (fun k -> Tensor.get_real t (((k mod n) * m) + (k / n))) in
          Some (Expr.Tensor (Tensor.create_real [| m; n |] out))
        end
      | [| Expr.Normal (Expr.Sym l, rows) |]
        when Symbol.equal l Expr.Sy.list && Array.length rows > 0 ->
        (match as_items rows.(0) with
         | Some first ->
           let m = Array.length first in
           let cols =
             Array.init m (fun j ->
                 Expr.list_a
                   (Array.map
                      (fun row ->
                         match as_items row with
                         | Some items when Array.length items = m -> items.(j)
                         | _ -> Errors.eval_errorf "Transpose: ragged rows")
                      rows))
           in
           Some (Expr.list_a cols)
         | None -> None)
      | _ -> None);
  Eval.register "IdentityMatrix" (fun _ args ->
      match args with
      | [| Expr.Int n |] when n > 0 ->
        let flat = Array.make (n * n) 0 in
        for i = 0 to n - 1 do flat.((i * n) + i) <- 1 done;
        Some (Expr.Tensor (Tensor.create_int [| n; n |] flat))
      | _ -> None);
  Eval.register "Norm" (fun _ args ->
      match args with
      | [| e |] ->
        (match Wolf_runtime.Rtval.of_expr e with
         | Wolf_runtime.Rtval.Tensor t when Tensor.rank t = 1 ->
           let s = ref 0.0 in
           for i = 0 to Tensor.flat_length t - 1 do
             let x = Tensor.get_real t i in
             s := !s +. (x *. x)
           done;
           Some (Expr.Real (Float.sqrt !s))
         | _ -> None)
      | _ -> None);
  Eval.register "Mean" (fun ev args ->
      match args with
      | [| e |] ->
        Option.bind (as_items e) (fun items ->
            let n = Array.length items in
            if n = 0 then None
            else
              Some
                (ev
                   (Expr.apply "Divide"
                      [ Expr.normal (Expr.sym "Total") [ e ]; Expr.Int n ])))
      | _ -> None);
  (* integer functions *)
  Eval.register "GCD" ~attrs:[ Attributes.Flat; Attributes.Orderless ] (fun _ args ->
      let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
      let ints = Array.map Expr.int_of args in
      if Array.length args >= 1 && Array.for_all Option.is_some ints then
        Some (Expr.Int (Array.fold_left (fun acc x -> gcd acc (Option.get x)) 0 ints))
      else None);
  Eval.register "LCM" ~attrs:[ Attributes.Flat; Attributes.Orderless ] (fun _ args ->
      let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
      let ints = Array.map Expr.int_of args in
      if Array.length args >= 1 && Array.for_all Option.is_some ints then
        Some
          (Expr.Int
             (Array.fold_left
                (fun acc x ->
                   let x = Option.get x in
                   if acc = 0 || x = 0 then 0 else abs (acc * x) / gcd acc x)
                1 ints))
      else None);
  Eval.register "Factorial" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| a |] ->
        (match Expr.int_of a with
         | Some n when n >= 0 ->
           let rec go acc k =
             if k > n then acc else go (Bignum.mul acc (Bignum.of_int k)) (k + 1)
           in
           let b = go Bignum.one 2 in
           (match Bignum.to_int_opt b with
            | Some i -> Some (Expr.Int i)
            | None -> Some (Expr.Big b))
         | _ -> None)
      | _ -> None);
  Eval.register "Fibonacci" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| a |] ->
        (match Expr.int_of a with
         | Some n when n >= 0 ->
           let rec go a b k =
             if k = 0 then a else go b (Bignum.add a b) (k - 1)
           in
           let b = go Bignum.zero Bignum.one n in
           (match Bignum.to_int_opt b with
            | Some i -> Some (Expr.Int i)
            | None -> Some (Expr.Big b))
         | _ -> None)
      | _ -> None);
  Eval.register "IntegerDigits" (fun _ args ->
      match args with
      | [| a |] ->
        (match Expr.int_of a with
         | Some n ->
           let n = abs n in
           let rec go acc n = if n = 0 then acc else go ((n mod 10) :: acc) (n / 10) in
           let ds = if n = 0 then [ 0 ] else go [] n in
           Some (Expr.Tensor (Tensor.of_int_array (Array.of_list ds)))
         | None -> None)
      | _ -> None);
  Eval.register "FromDigits" (fun _ args ->
      match args with
      | [| e |] ->
        Option.bind (as_items e) (fun items ->
            let ints = Array.map Expr.int_of items in
            if Array.for_all Option.is_some ints then
              Some
                (Expr.Int
                   (Array.fold_left (fun acc d -> (acc * 10) + Option.get d) 0 ints))
            else None)
      | _ -> None);
  Eval.register "Sign" ~attrs:[ Attributes.Listable ] (fun _ args ->
      match args with
      | [| a |] ->
        (match Numeric.compare2 a (Expr.Int 0) with
         | Some c -> Some (Expr.Int (compare c 0))
         | None -> None)
      | _ -> None);
  Eval.register "Clip" (fun _ args ->
      match args with
      | [| x; Expr.Normal (Expr.Sym l, [| lo; hi |]) |] when Symbol.equal l Expr.Sy.list ->
        (match Numeric.compare2 x lo, Numeric.compare2 x hi with
         | Some c, _ when c < 0 -> Some lo
         | _, Some c when c > 0 -> Some hi
         | Some _, Some _ -> Some x
         | _ -> None)
      | _ -> None);
  (* string extras *)
  Eval.register "StringSplit" (fun _ args ->
      match args with
      | [| Expr.Str s; Expr.Str sep |] when sep <> "" ->
        let parts = ref [] and buf = Buffer.create 8 in
        let sl = String.length sep in
        let i = ref 0 in
        while !i < String.length s do
          if !i + sl <= String.length s && String.sub s !i sl = sep then begin
            parts := Buffer.contents buf :: !parts;
            Buffer.clear buf;
            i := !i + sl
          end
          else begin
            Buffer.add_char buf s.[!i];
            incr i
          end
        done;
        parts := Buffer.contents buf :: !parts;
        Some
          (Expr.list
             (List.rev_map (fun p -> Expr.Str p) !parts
              |> List.filter (function Expr.Str "" -> false | _ -> true)))
      | _ -> None);
  Eval.register "StringContainsQ" (fun _ args ->
      match args with
      | [| Expr.Str s; Expr.Str sub |] ->
        let sl = String.length sub and n = String.length s in
        let rec go i = i + sl <= n && (String.sub s i sl = sub || go (i + 1)) in
        Some (Expr.bool (sl = 0 || go 0))
      | _ -> None);
  Eval.register "StringStartsQ" (fun _ args ->
      match args with
      | [| Expr.Str s; Expr.Str p |] ->
        Some
          (Expr.bool
             (String.length p <= String.length s
              && String.sub s 0 (String.length p) = p))
      | _ -> None);
  Eval.register "StringRepeat" (fun _ args ->
      match args with
      | [| Expr.Str s; Expr.Int n |] when n >= 0 ->
        let b = Buffer.create (String.length s * n) in
        for _ = 1 to n do Buffer.add_string b s done;
        Some (Expr.Str (Buffer.contents b))
      | _ -> None)
