(** Higher-order builtins: [Map], [Fold], [Nest]/[NestList], [FixedPoint],
    [Select], [Apply] — the high-level primitives Wolfram programmers use
    instead of loops (Section 2.1 of the paper). *)

val install : unit -> unit
