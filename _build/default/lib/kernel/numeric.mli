(** The interpreter's numeric tower: machine integers that promote to
    arbitrary precision on overflow (the behaviour compiled code falls back
    to under soft failure, F2), reals, complexes, and packed-tensor fast
    paths for elementwise arithmetic. *)

open Wolf_wexpr

val is_numeric : Expr.t -> bool
(** Machine/big integers, reals and [Complex[re, im]] with numeric parts. *)

val add2 : Expr.t -> Expr.t -> Expr.t option
val sub2 : Expr.t -> Expr.t -> Expr.t option
val mul2 : Expr.t -> Expr.t -> Expr.t option
val div2 : Expr.t -> Expr.t -> Expr.t option
(** Integer division is exact when it divides evenly, otherwise produces a
    Real (this repo's substitute for Wolfram rationals; see DESIGN.md). *)

val pow2 : Expr.t -> Expr.t -> Expr.t option
val neg : Expr.t -> Expr.t option
val abs : Expr.t -> Expr.t option

val compare2 : Expr.t -> Expr.t -> int option
(** Numeric comparison; [None] when either side is not a real number. *)

val to_real : Expr.t -> Expr.t option
(** Wolfram's [N]. *)
