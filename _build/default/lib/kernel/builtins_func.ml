open Wolf_wexpr
open Wolf_base

(* Apply a function-ish value: Function[...] beta-reduces, anything else
   (symbol with down values, builtin head) becomes an application that the
   evaluator rewrites. *)
let call ev f args =
  match f with
  | Expr.Normal (Expr.Sym s, _) when Symbol.equal s Expr.Sy.function_ ->
    Eval.apply_function ev f args
  | _ -> ev (Expr.Normal (f, args))

let as_items = function
  | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list -> Some items
  | Expr.Tensor t ->
    (match Wolf_runtime.Rtval.tensor_to_expr t with
     | Expr.Normal (_, items) -> Some items
     | _ -> None)
  | _ -> None

let install () =
  Eval.register "Map" (fun ev args ->
      match args with
      | [| f; e |] ->
        (match e with
         | Expr.Normal (h, items) ->
           Some (Expr.Normal (h, Array.map (fun x -> call ev f [| x |]) items))
         | Expr.Tensor _ ->
           (match as_items e with
            | Some items ->
              Some (Expr.list_a (Array.map (fun x -> call ev f [| x |]) items))
            | None -> None)
         | _ -> None)
      | _ -> None);
  Eval.register "MapIndexed" (fun ev args ->
      match args with
      | [| f; e |] ->
        (match as_items e with
         | Some items ->
           Some
             (Expr.list_a
                (Array.mapi
                   (fun i x -> call ev f [| x; Expr.list [ Expr.Int (i + 1) ] |])
                   items))
         | None -> None)
      | _ -> None);
  Eval.register "Apply" (fun ev args ->
      match args with
      | [| f; e |] ->
        (match e with
         | Expr.Normal (_, items) -> Some (call ev f items)
         | Expr.Tensor _ ->
           (match as_items e with
            | Some items -> Some (call ev f items)
            | None -> None)
         | _ -> None)
      | _ -> None);
  Eval.register "Fold" (fun ev args ->
      match args with
      | [| f; init; e |] ->
        (match as_items e with
         | Some items ->
           Some (Array.fold_left (fun acc x -> call ev f [| acc; x |]) init items)
         | None -> None)
      | [| f; e |] ->
        (match as_items e with
         | Some items when Array.length items > 0 ->
           let rest = Array.sub items 1 (Array.length items - 1) in
           Some (Array.fold_left (fun acc x -> call ev f [| acc; x |]) items.(0) rest)
         | _ -> None)
      | _ -> None);
  Eval.register "FoldList" (fun ev args ->
      match args with
      | [| f; init; e |] ->
        (match as_items e with
         | Some items ->
           let acc = ref init in
           let out =
             Array.append [| init |]
               (Array.map (fun x -> acc := call ev f [| !acc; x |]; !acc) items)
           in
           Some (Expr.list_a out)
         | None -> None)
      | _ -> None);
  Eval.register "Nest" (fun ev args ->
      match args with
      | [| f; x; n |] ->
        (match Expr.int_of n with
         | Some k when k >= 0 ->
           let rec go acc i = if i = 0 then acc else go (call ev f [| acc |]) (i - 1) in
           Some (go x k)
         | _ -> None)
      | _ -> None);
  Eval.register "NestList" (fun ev args ->
      match args with
      | [| f; x; n |] ->
        (match Expr.int_of n with
         | Some k when k >= 0 ->
           let out = Array.make (k + 1) x in
           for i = 1 to k do out.(i) <- call ev f [| out.(i - 1) |] done;
           Some (Expr.list_a out)
         | _ -> None)
      | _ -> None);
  Eval.register "NestWhile" (fun ev args ->
      match args with
      | [| f; x; test |] ->
        let rec go acc iters =
          if iters > !Eval.iteration_limit then
            Errors.eval_errorf "NestWhile: iteration limit"
          else if Expr.is_true (call ev test [| acc |]) then
            go (call ev f [| acc |]) (iters + 1)
          else acc
        in
        Some (go x 0)
      | _ -> None);
  Eval.register "FixedPoint" (fun ev args ->
      match args with
      | [| f; x |] ->
        let rec go acc iters =
          if iters > 65536 then Errors.eval_errorf "FixedPoint: no convergence"
          else begin
            let next = call ev f [| acc |] in
            if Expr.equal next acc then acc else go next (iters + 1)
          end
        in
        Some (go x 0)
      | _ -> None);
  Eval.register "Select" (fun ev args ->
      match args with
      | [| e; pred |] ->
        (match as_items e with
         | Some items ->
           let kept =
             Array.to_list items
             |> List.filter (fun x -> Expr.is_true (call ev pred [| x |]))
           in
           Some (Expr.list kept)
         | None -> None)
      | _ -> None);
  Eval.register "Count" (fun ev args ->
      match args with
      | [| e; pat |] ->
        (match as_items e with
         | Some items ->
           let n =
             Array.to_list items
             |> List.filter (fun x ->
                 Option.is_some (Pattern.match_expr ~eval:ev ~pattern:pat x))
             |> List.length
           in
           Some (Expr.Int n)
         | None -> None)
      | _ -> None);
  Eval.register "AllTrue" (fun ev args ->
      match args with
      | [| e; pred |] ->
        (match as_items e with
         | Some items ->
           Some (Expr.bool (Array.for_all (fun x -> Expr.is_true (call ev pred [| x |])) items))
         | None -> None)
      | _ -> None);
  Eval.register "AnyTrue" (fun ev args ->
      match args with
      | [| e; pred |] ->
        (match as_items e with
         | Some items ->
           Some (Expr.bool (Array.exists (fun x -> Expr.is_true (call ev pred [| x |])) items))
         | None -> None)
      | _ -> None)
