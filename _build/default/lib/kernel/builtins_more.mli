(** Second tier of the builtin library: list structure ([Take], [Drop],
    [Flatten], [Partition], [Position], [Transpose], …), integer functions
    ([GCD], [Factorial], [IntegerDigits], …) and statistics — the wide
    coverage that makes interpreted programs (and their compiled
    counterparts) natural to write. *)

val install : unit -> unit
