(** Control flow, scoping constructs, assignments and [Part] access.
    Loaded into the evaluator registry by {!Session.init}. *)

open Wolf_wexpr

val install : unit -> unit

val part_get : Expr.t -> int list -> Expr.t
(** Wolfram [Part] extraction (1-based, negative counts from the end), over
    both unpacked lists and packed tensors.  Shared with other builtin
    modules.  @raise Wolf_base.Errors.Runtime_error on range errors. *)

val part_set : Expr.t -> int list -> Expr.t -> Expr.t
(** Functional part update; packed tensors go through copy-on-write. *)

val iterate :
  Eval.evaluator -> Expr.t -> (Symbol.t option -> Expr.t -> unit) -> unit
(** Run a Wolfram iterator spec ([n], [{i, n}], [{i, lo, hi, step}]) calling
    the body with the iteration variable (if any) and its current value. *)
