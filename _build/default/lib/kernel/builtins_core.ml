open Wolf_wexpr
open Wolf_base

let ( let* ) = Option.bind

let sym_of = function Expr.Sym s -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Part access                                                         *)

let list_index args i =
  let n = Array.length args in
  let j = if i < 0 then n + i else i - 1 in
  if i = 0 || j < 0 || j >= n then
    raise (Errors.Runtime_error (Errors.Part_out_of_range (i, n)))
  else j

let rec part_get e idxs =
  match idxs with
  | [] -> e
  | i :: rest ->
    (match e with
     | Expr.Tensor t ->
       let j = Tensor.normalize_index t i in
       if Tensor.rank t = 1 then begin
         if rest <> [] then
           Errors.eval_errorf "Part: depth exceeds tensor rank";
         if Tensor.is_int t then Expr.Int (Tensor.get_int t j)
         else Expr.Real (Tensor.get_real t j)
       end
       else part_get (Expr.Tensor (Tensor.slice t j)) rest
     | Expr.Normal (h, args) ->
       if i = 0 then begin
         if rest <> [] then Errors.eval_errorf "Part: cannot index into head";
         h
       end
       else part_get args.(list_index args i) rest
     | _ -> Errors.eval_errorf "Part: %s has no parts" (Expr.to_string e))

let rec part_set e idxs v =
  match idxs with
  | [] -> v
  | i :: rest ->
    (match e with
     | Expr.Tensor t ->
       (* copy-on-write: mutate in place only when we hold the sole ref *)
       let t = Tensor.ensure_unique t in
       let j = Tensor.normalize_index t i in
       if Tensor.rank t = 1 then begin
         if rest <> [] then Errors.eval_errorf "Part: depth exceeds tensor rank";
         (match v with
          | Expr.Int x -> Tensor.set_int t j x
          | Expr.Real x -> Tensor.set_real t j x
          | _ -> Errors.eval_errorf "Part: cannot store %s in packed array"
                   (Expr.to_string v));
         Expr.Tensor t
       end
       else begin
         let sub = part_set (Expr.Tensor (Tensor.slice t j)) rest v in
         (match sub with
          | Expr.Tensor st -> Tensor.set_slice t j st
          | _ -> Errors.eval_errorf "Part: bad packed-array update");
         Expr.Tensor t
       end
     | Expr.Normal (h, args) ->
       let j = list_index args i in
       let copy = Array.copy args in
       copy.(j) <- part_set args.(j) rest v;
       Expr.Normal (h, copy)
     | _ -> Errors.eval_errorf "Part: %s has no parts" (Expr.to_string e))

(* ------------------------------------------------------------------ *)
(* Assignment                                                          *)

let eval_indices ev idxs =
  List.map
    (fun ix ->
       match Expr.int_of (ev ix) with
       | Some i -> i
       | None -> Errors.eval_errorf "Part: non-integer index %s" (Expr.to_string ix))
    idxs

let do_set ev ~delayed lhs rhs =
  match lhs with
  | Expr.Sym s ->
    if Symbol.has_attribute s Attributes.Protected then
      Errors.eval_errorf "Set: symbol %s is Protected" (Symbol.name s);
    let value = if delayed then rhs else ev rhs in
    Values.set_own_value s value;
    Some (if delayed then Expr.null else value)
  | Expr.Normal (Expr.Sym p, pargs)
    when Symbol.equal p Expr.Sy.part && Array.length pargs >= 2 ->
    (* a[[i]] = v mutates the symbol's stored value *)
    let* target = sym_of pargs.(0) in
    let current =
      match Values.own_value target with
      | Some v -> v
      | None -> Errors.eval_errorf "Part: %s has no value" (Symbol.name target)
    in
    let idxs = eval_indices ev (Array.to_list (Array.sub pargs 1 (Array.length pargs - 1))) in
    let value = ev rhs in
    let updated = part_set current idxs value in
    Values.set_own_value target updated;
    Some value
  | Expr.Normal (Expr.Sym f, _) ->
    if Eval.is_builtin f && Symbol.has_attribute f Attributes.Protected then
      Errors.eval_errorf "Set: %s is Protected" (Symbol.name f);
    let value = if delayed then rhs else ev rhs in
    Values.add_down_value f { Values.lhs; rhs = value };
    Some (if delayed then Expr.null else value)
  | _ -> Errors.eval_errorf "Set: invalid assignment target %s" (Expr.to_string lhs)

let numeric_update name op ev args =
  match args with
  | [| Expr.Sym s; amount |] ->
    let current =
      match Values.own_value s with
      | Some v -> v
      | None -> Errors.eval_errorf "%s: %s has no value" name (Symbol.name s)
    in
    let amount = ev amount in
    (match op current amount with
     | Some updated ->
       Values.set_own_value s updated;
       Some updated
     | None -> Errors.eval_errorf "%s: non-numeric value" name)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Scoping                                                             *)

let scope_bindings ev inits =
  match inits with
  | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
    Array.to_list items
    |> List.map (function
        | Expr.Sym v -> (v, None)
        | Expr.Normal (Expr.Sym st, [| Expr.Sym v; init |])
          when Symbol.equal st Expr.Sy.set ->
          (v, Some (ev init))
        | e -> Errors.eval_errorf "invalid scoping binding %s" (Expr.to_string e))
  | e -> Errors.eval_errorf "invalid scoping variable list %s" (Expr.to_string e)

let module_builtin ev args =
  match args with
  | [| inits; body |] ->
    let bindings = scope_bindings ev inits in
    let renames =
      List.map
        (fun (v, init) ->
           let fresh = Symbol.fresh (Symbol.name v) in
           (match init with
            | Some value -> Values.set_own_value fresh value
            | None -> ());
           (v, Expr.Sym fresh))
        bindings
    in
    Some (ev (Pattern.substitute renames body))
  | _ -> None

let block_builtin ev args =
  match args with
  | [| inits; body |] ->
    let bindings = scope_bindings ev inits in
    let snapshot = Values.save (List.map fst bindings) in
    List.iter
      (fun (v, init) ->
         Values.clear_down_values v;
         match init with
         | Some value -> Values.set_own_value v value
         | None -> Values.clear_own_value v)
      bindings;
    let restore () = Values.restore snapshot in
    (match ev body with
     | result -> restore (); Some result
     | exception e -> restore (); raise e)
  | _ -> None

let with_builtin ev args =
  match args with
  | [| inits; body |] ->
    let bindings = scope_bindings ev inits in
    let substs =
      List.map
        (function
          | (v, Some value) -> (v, value)
          | (v, None) ->
            Errors.eval_errorf "With: %s needs an initial value" (Symbol.name v))
        bindings
    in
    Some (ev (Pattern.substitute substs body))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Control flow                                                        *)

let if_builtin ev args =
  match args with
  | [| cond; then_ |] ->
    let c = ev cond in
    if Expr.is_true c then Some (ev then_)
    else if Expr.is_false c then Some Expr.null
    else None
  | [| cond; then_; else_ |] ->
    let c = ev cond in
    if Expr.is_true c then Some (ev then_)
    else if Expr.is_false c then Some (ev else_)
    else None
  | [| cond; then_; else_; other |] ->
    let c = ev cond in
    if Expr.is_true c then Some (ev then_)
    else if Expr.is_false c then Some (ev else_)
    else Some (ev other)
  | _ -> None

let while_builtin ev args =
  let cond, body =
    match args with
    | [| cond |] -> (cond, Expr.null)
    | [| cond; body |] -> (cond, body)
    | _ -> Errors.eval_errorf "While: wrong argument count"
  in
  let rec loop () =
    if Expr.is_true (ev cond) then begin
      (match ev body with
       | _ -> ()
       | exception Eval.Continue_loop -> ());
      loop ()
    end
  in
  (match loop () with () -> () | exception Eval.Break_loop -> ());
  Some Expr.null

(* Iterator spec: {i, n} | {i, lo, hi} | {i, lo, hi, step} | {n}. *)
let iterator_spec ev spec =
  match spec with
  | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
    let num e =
      match ev e with
      | Expr.Int i -> `I i
      | Expr.Real r -> `R r
      | e -> Errors.eval_errorf "iterator bound %s is not numeric" (Expr.to_string e)
    in
    (match items with
     | [| Expr.Sym v; hi |] -> (Some v, `I 1, num hi, `I 1)
     | [| Expr.Sym v; lo; hi |] -> (Some v, num lo, num hi, `I 1)
     | [| Expr.Sym v; lo; hi; step |] -> (Some v, num lo, num hi, num step)
     | [| hi |] -> (None, `I 1, num hi, `I 1)
     | _ -> Errors.eval_errorf "invalid iterator %s" (Expr.to_string spec))
  | hi ->
    (match ev hi with
     | Expr.Int n -> (None, `I 1, `I n, `I 1)
     | e -> Errors.eval_errorf "invalid iterator %s" (Expr.to_string e))

let iterate ev spec f =
  let var, lo, hi, step = iterator_spec ev spec in
  let as_r = function `I i -> float_of_int i | `R r -> r in
  let all_int = match lo, hi, step with `I _, `I _, `I _ -> true | _ -> false in
  if all_int then begin
    let lo = (match lo with `I i -> i | `R _ -> 0) in
    let hi = (match hi with `I i -> i | `R _ -> 0) in
    let step = (match step with `I i -> i | `R _ -> 1) in
    if step = 0 then Errors.eval_errorf "iterator step is zero";
    let i = ref lo in
    while (step > 0 && !i <= hi) || (step < 0 && !i >= hi) do
      f var (Expr.Int !i);
      i := !i + step
    done
  end
  else begin
    let lo = as_r lo and hi = as_r hi and step = as_r step in
    if step = 0.0 then Errors.eval_errorf "iterator step is zero";
    let x = ref lo in
    while (step > 0.0 && !x <= hi +. 1e-12) || (step < 0.0 && !x >= hi -. 1e-12) do
      f var (Expr.Real !x);
      x := !x +. step
    done
  end

let loop_body ev var value body =
  let expr =
    match var with
    | Some v -> Pattern.substitute [ (v, value) ] body
    | None -> body
  in
  match ev expr with
  | _ -> ()
  | exception Eval.Continue_loop -> ()

let do_builtin ev args =
  match args with
  | [| body; spec |] ->
    (match iterate ev spec (fun var value -> loop_body ev var value body) with
     | () -> ()
     | exception Eval.Break_loop -> ());
    Some Expr.null
  | _ -> None

let for_builtin ev args =
  match args with
  | [| init; cond; incr |] | [| init; cond; incr; _ |] ->
    let body = if Array.length args = 4 then args.(3) else Expr.null in
    ignore (ev init);
    let rec loop () =
      if Expr.is_true (ev cond) then begin
        (match ev body with
         | _ -> ()
         | exception Eval.Continue_loop -> ());
        ignore (ev incr);
        loop ()
      end
    in
    (match loop () with () -> () | exception Eval.Break_loop -> ());
    Some Expr.null
  | _ -> None

let install () =
  Eval.register "CompoundExpression" ~attrs:[ Attributes.Hold_all ] (fun ev args ->
      let n = Array.length args in
      let result = ref Expr.null in
      Array.iteri (fun i a -> if i < n then result := ev a) args;
      Some !result);
  Eval.register "Set" ~attrs:[ Attributes.Hold_first; Attributes.Sequence_hold ] (fun ev args ->
      match args with
      | [| lhs; rhs |] -> do_set ev ~delayed:false lhs rhs
      | _ -> None);
  Eval.register "SetDelayed" ~attrs:[ Attributes.Hold_all; Attributes.Sequence_hold ] (fun ev args ->
      match args with
      | [| lhs; rhs |] -> do_set ev ~delayed:true lhs rhs
      | _ -> None);
  Eval.register "Increment" ~attrs:[ Attributes.Hold_first ] (fun ev args ->
      match args with
      | [| Expr.Sym _ |] ->
        let old = ref Expr.null in
        let r =
          numeric_update "Increment"
            (fun c a -> old := c; Numeric.add2 c a)
            ev
            [| args.(0); Expr.Int 1 |]
        in
        (match r with Some _ -> Some !old | None -> None)
      | _ -> None);
  Eval.register "Decrement" ~attrs:[ Attributes.Hold_first ] (fun ev args ->
      match args with
      | [| Expr.Sym _ |] ->
        let old = ref Expr.null in
        let r =
          numeric_update "Decrement"
            (fun c a -> old := c; Numeric.sub2 c a)
            ev
            [| args.(0); Expr.Int 1 |]
        in
        (match r with Some _ -> Some !old | None -> None)
      | _ -> None);
  Eval.register "PreIncrement" ~attrs:[ Attributes.Hold_first ] (fun ev args ->
      match args with
      | [| target |] -> numeric_update "PreIncrement" Numeric.add2 ev [| target; Expr.Int 1 |]
      | _ -> None);
  Eval.register "AddTo" ~attrs:[ Attributes.Hold_first ] (numeric_update "AddTo" Numeric.add2);
  Eval.register "SubtractFrom" ~attrs:[ Attributes.Hold_first ]
    (numeric_update "SubtractFrom" Numeric.sub2);
  Eval.register "TimesBy" ~attrs:[ Attributes.Hold_first ] (numeric_update "TimesBy" Numeric.mul2);
  Eval.register "DivideBy" ~attrs:[ Attributes.Hold_first ] (numeric_update "DivideBy" Numeric.div2);
  Eval.register "Unset" ~attrs:[ Attributes.Hold_first ] (fun _ args ->
      match args with
      | [| Expr.Sym s |] -> Values.clear_own_value s; Some Expr.null
      | _ -> None);
  Eval.register "Clear" ~attrs:[ Attributes.Hold_all ] (fun _ args ->
      Array.iter
        (function
          | Expr.Sym s -> Values.clear_own_value s; Values.clear_down_values s
          | _ -> ())
        args;
      Some Expr.null);
  Eval.register "Part" (fun ev args ->
      if Array.length args < 2 then None
      else begin
        let target = args.(0) in
        match target with
        | Expr.Sym _ -> None (* unevaluated symbol: stay symbolic *)
        | _ ->
          let idxs = eval_indices ev (Array.to_list (Array.sub args 1 (Array.length args - 1))) in
          Some (part_get target idxs)
      end);
  Eval.register "Module" ~attrs:[ Attributes.Hold_all ] module_builtin;
  Eval.register "Block" ~attrs:[ Attributes.Hold_all ] block_builtin;
  Eval.register "With" ~attrs:[ Attributes.Hold_all ] with_builtin;
  Eval.register "If" ~attrs:[ Attributes.Hold_rest ] if_builtin;
  Eval.register "While" ~attrs:[ Attributes.Hold_all ] while_builtin;
  Eval.register "Do" ~attrs:[ Attributes.Hold_all ] do_builtin;
  Eval.register "For" ~attrs:[ Attributes.Hold_all ] for_builtin;
  Eval.register "Which" ~attrs:[ Attributes.Hold_all ] (fun ev args ->
      let n = Array.length args in
      if n mod 2 <> 0 then None
      else begin
        let rec go i =
          if i >= n then Some Expr.null
          else begin
            let c = ev args.(i) in
            if Expr.is_true c then Some (ev args.(i + 1))
            else if Expr.is_false c then go (i + 2)
            else None
          end
        in
        go 0
      end);
  Eval.register "Switch" ~attrs:[ Attributes.Hold_rest ] (fun ev args ->
      if Array.length args < 3 then None
      else begin
        let subject = args.(0) in
        let rec go i =
          if i + 1 >= Array.length args then Some Expr.null
          else
            match Pattern.match_expr ~eval:ev ~pattern:args.(i) subject with
            | Some binds -> Some (ev (Pattern.substitute binds args.(i + 1)))
            | None -> go (i + 2)
        in
        go 1
      end);
  Eval.register "Return" (fun _ args ->
      match args with
      | [||] -> raise (Eval.Return_value Expr.null)
      | [| v |] -> raise (Eval.Return_value v)
      | _ -> None);
  Eval.register "Break" (fun _ _ -> raise Eval.Break_loop);
  Eval.register "Continue" (fun _ _ -> raise Eval.Continue_loop);
  Eval.register "Abort" (fun _ _ ->
      Abort_signal.request ();
      Abort_signal.check ();
      None);
  Eval.register "Hold" ~attrs:[ Attributes.Hold_all ] (fun _ _ -> None);
  Eval.register "HoldComplete" ~attrs:[ Attributes.Hold_all ] (fun _ _ -> None);
  Eval.register "Evaluate" (fun _ args ->
      match args with [| e |] -> Some e | _ -> None);
  Eval.register "Identity" (fun _ args ->
      match args with [| e |] -> Some e | _ -> None);
  (* Function is inert but must hold its parameters and body. *)
  Eval.register "Function" ~attrs:[ Attributes.Hold_all ] (fun _ _ -> None)
