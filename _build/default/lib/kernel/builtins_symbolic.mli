(** Symbolic-computation builtins: structural predicates, rule application
    ([ReplaceAll]), symbolic differentiation ([D]) and the [FindRoot]
    numerical solver whose auto-compilation hook reproduces the paper's 1.6×
    claim (experiment E4). *)

val install : unit -> unit
