open Wolf_wexpr
open Wolf_base

let rules_of e =
  let rule = function
    | Expr.Normal (Expr.Sym r, [| lhs; rhs |])
      when Symbol.equal r Expr.Sy.rule || Symbol.equal r Expr.Sy.rule_delayed ->
      Some (lhs, rhs)
    | _ -> None
  in
  match e with
  | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
    let rs = Array.map rule items in
    if Array.for_all Option.is_some rs then
      Some (Array.to_list (Array.map Option.get rs))
    else None
  | r -> (match rule r with Some p -> Some [ p ] | None -> None)

(* ------------------------------------------------------------------ *)
(* Symbolic differentiation                                            *)

let sym_e name args = Expr.apply name args
let num n = Expr.Int n

let rec d expr x =
  match expr with
  | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Tensor _ -> num 0
  | Expr.Sym s -> if Symbol.equal s x then num 1 else num 0
  | Expr.Normal (Expr.Sym h, args) ->
    (match Symbol.name h, args with
     | "Plus", _ -> sym_e "Plus" (Array.to_list (Array.map (fun a -> d a x) args))
     | "Times", _ ->
       (* n-ary product rule *)
       let terms =
         Array.to_list
           (Array.mapi
              (fun i _ ->
                 let factors =
                   Array.to_list
                     (Array.mapi (fun j a -> if i = j then d a x else a) args)
                 in
                 sym_e "Times" factors)
              args)
       in
       sym_e "Plus" terms
     | "Subtract", [| a; b |] -> sym_e "Subtract" [ d a x; d b x ]
     | "Divide", [| a; b |] ->
       sym_e "Divide"
         [ sym_e "Subtract" [ sym_e "Times" [ d a x; b ]; sym_e "Times" [ a; d b x ] ];
           sym_e "Times" [ b; b ] ]
     | "Power", [| u; (Expr.Int _ | Expr.Real _ as n) |] ->
       sym_e "Times"
         [ n; sym_e "Power" [ u; sym_e "Plus" [ n; num (-1) ] ]; d u x ]
     | "Power", [| u; v |] ->
       (* general case: u^v * (v' log u + v u'/u) *)
       sym_e "Times"
         [ expr;
           sym_e "Plus"
             [ sym_e "Times" [ d v x; sym_e "Log" [ u ] ];
               sym_e "Divide" [ sym_e "Times" [ v; d u x ]; u ] ] ]
     | "Sin", [| u |] -> sym_e "Times" [ sym_e "Cos" [ u ]; d u x ]
     | "Cos", [| u |] ->
       sym_e "Times" [ num (-1); sym_e "Sin" [ u ]; d u x ]
     | "Tan", [| u |] ->
       sym_e "Divide" [ d u x; sym_e "Power" [ sym_e "Cos" [ u ]; num 2 ] ]
     | "Exp", [| u |] -> sym_e "Times" [ expr; d u x ]
     | "Log", [| u |] -> sym_e "Divide" [ d u x; u ]
     | "Sqrt", [| u |] ->
       sym_e "Divide" [ d u x; sym_e "Times" [ num 2; expr ] ]
     | _, _ ->
       if Pattern.free_of expr x then num 0
       else sym_e "D" [ expr; Expr.Sym x ])
  | Expr.Normal (_, _) ->
    if Pattern.free_of expr x then num 0 else sym_e "D" [ expr; Expr.Sym x ]

(* ------------------------------------------------------------------ *)
(* FindRoot (Newton's method with symbolic derivative)                 *)

let substitute_eval ev expr x v =
  match ev (Pattern.substitute [ (x, Expr.Real v) ] expr) with
  | Expr.Real r -> r
  | Expr.Int i -> float_of_int i
  | e -> Errors.eval_errorf "FindRoot: non-numeric value %s" (Expr.to_string e)

(* FindRoot is called repeatedly on the same equation in sessions (and in
   benchmark E4); the symbolic derivative and the evaluators (compiled or
   interpreted) are cached per (equation, variable, auto-compile mode). *)
let root_cache :
  (int, (Expr.t * Symbol.t * bool * (float -> float) * (float -> float)) list ref)
    Hashtbl.t =
  Hashtbl.create 16

let find_root ev f x x0 =
  let f =
    match f with
    | Expr.Normal (Expr.Sym eq, [| lhs; rhs |]) when Symbol.name eq = "Equal" ->
      Expr.apply "Subtract" [ lhs; rhs ]
    | _ -> f
  in
  (* symbolic pre-evaluation resolves constants (E, Pi) so the equation is
     both differentiable and auto-compilable *)
  let f = ev f in
  let auto = !Wolf_runtime.Hooks.auto_compile_enabled in
  let key = Expr.hash f in
  let bucket =
    match Hashtbl.find_opt root_cache key with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.add root_cache key b;
      b
  in
  let cached =
    List.find_opt
      (fun (f', x', auto', _, _) -> auto' = auto && Symbol.equal x' x && Expr.equal f' f)
      !bucket
  in
  let eval_f, eval_f' =
    match cached with
    | Some (_, _, _, ef, ef') -> (ef, ef')
    | None ->
      let fprime = ev (d f x) in
      let pair =
        if auto then begin
          match
            !Wolf_runtime.Hooks.auto_compile_scalar f x,
            !Wolf_runtime.Hooks.auto_compile_scalar fprime x
          with
          | Some cf, Some cf' -> (cf, cf')
          | _ ->
            ((fun v -> substitute_eval ev f x v),
             fun v -> substitute_eval ev fprime x v)
        end
        else
          ((fun v -> substitute_eval ev f x v),
           fun v -> substitute_eval ev fprime x v)
      in
      bucket := (f, x, auto, fst pair, snd pair) :: !bucket;
      pair
  in
  let rec newton v iters =
    if iters > 100 then v
    else begin
      let fv = eval_f v in
      if Float.abs fv < 1e-14 then v
      else begin
        let f'v = eval_f' v in
        if f'v = 0.0 then Errors.eval_errorf "FindRoot: zero derivative"
        else begin
          let next = v -. (fv /. f'v) in
          if Float.abs (next -. v) < 1e-14 then next else newton next (iters + 1)
        end
      end
    end
  in
  newton x0 0

let install () =
  Eval.register "Head" (fun _ args ->
      match args with [| e |] -> Some (Expr.head e) | _ -> None);
  Eval.register "AtomQ" (fun _ args ->
      match args with [| e |] -> Some (Expr.bool (Expr.is_atom e)) | _ -> None);
  Eval.register "IntegerQ" (fun _ args ->
      match args with
      | [| (Expr.Int _ | Expr.Big _) |] -> Some Expr.true_
      | [| _ |] -> Some Expr.false_
      | _ -> None);
  Eval.register "StringQ" (fun _ args ->
      match args with
      | [| Expr.Str _ |] -> Some Expr.true_
      | [| _ |] -> Some Expr.false_
      | _ -> None);
  Eval.register "ListQ" (fun _ args ->
      match args with
      | [| Expr.Tensor _ |] -> Some Expr.true_
      | [| Expr.Normal (Expr.Sym l, _) |] when Symbol.equal l Expr.Sy.list ->
        Some Expr.true_
      | [| _ |] -> Some Expr.false_
      | _ -> None);
  Eval.register "NumberQ" (fun _ args ->
      match args with
      | [| e |] -> Some (Expr.bool (Numeric.is_numeric e))
      | _ -> None);
  Eval.register "NumericQ" (fun _ args ->
      match args with
      | [| e |] -> Some (Expr.bool (Numeric.is_numeric e))
      | _ -> None);
  Eval.register "TrueQ" (fun _ args ->
      match args with [| e |] -> Some (Expr.bool (Expr.is_true e)) | _ -> None);
  Eval.register "SameQ" (fun _ args ->
      if Array.length args < 2 then Some Expr.true_
      else begin
        let ok = ref true in
        for i = 0 to Array.length args - 2 do
          if not (Expr.equal args.(i) args.(i + 1)) then ok := false
        done;
        Some (Expr.bool !ok)
      end);
  Eval.register "UnsameQ" (fun _ args ->
      match args with
      | [| a; b |] -> Some (Expr.bool (not (Expr.equal a b)))
      | _ -> None);
  Eval.register "FreeQ" (fun _ args ->
      match args with
      | [| e; Expr.Sym s |] -> Some (Expr.bool (Pattern.free_of e s))
      | _ -> None);
  Eval.register "MatchQ" (fun ev args ->
      match args with
      | [| e; pat |] ->
        Some (Expr.bool (Option.is_some (Pattern.match_expr ~eval:ev ~pattern:pat e)))
      | _ -> None);
  Eval.register "ReplaceAll" (fun ev args ->
      match args with
      | [| e; rules |] ->
        (match rules_of rules with
         | Some rs -> Some (ev (Pattern.replace_all ~eval:ev ~rules:rs e))
         | None -> None)
      | _ -> None);
  Eval.register "ReplaceRepeated" (fun ev args ->
      match args with
      | [| e; rules |] ->
        (match rules_of rules with
         | Some rs -> Some (ev (Pattern.replace_repeated ~eval:ev ~rules:rs e))
         | None -> None)
      | _ -> None);
  Eval.register "D" (fun ev args ->
      match args with
      | [| f; Expr.Sym x |] -> Some (ev (d f x))
      | [| f; Expr.Normal (Expr.Sym l, [| Expr.Sym x; n |]) |]
        when Symbol.equal l Expr.Sy.list ->
        (match Expr.int_of n with
         | Some k when k >= 0 ->
           let rec go e i = if i = 0 then e else go (ev (d e x)) (i - 1) in
           Some (go f k)
         | _ -> None)
      | _ -> None);
  Eval.register "FindRoot" ~attrs:[ Attributes.Hold_all ] (fun ev args ->
      match args with
      | [| f; Expr.Normal (Expr.Sym l, [| Expr.Sym x; x0 |]) |]
        when Symbol.equal l Expr.Sy.list ->
        (match Expr.float_of (ev x0) with
         | Some v0 ->
           let root = find_root ev f x v0 in
           Some (Expr.list [ Expr.apply "Rule" [ Expr.Sym x; Expr.Real root ] ])
         | None -> None)
      | _ -> None);
  Eval.register "KernelFunction" (fun _ _ ->
      (* In the interpreter a KernelFunction escape is the identity: the code
         is already running in the kernel.  Compiled code lowers it to a
         callback (objective F9). *)
      None);
  Eval.register "Print" (fun _ args ->
      let parts =
        Array.to_list args
        |> List.map (function Expr.Str s -> s | e -> Form.input_form e)
      in
      print_endline (String.concat "" parts);
      Some Expr.null);
  Eval.register "Throw" (fun _ args ->
      match args with
      | [| v |] -> raise (Errors.Eval_error ("uncaught Throw: " ^ Expr.to_string v))
      | _ -> None)
