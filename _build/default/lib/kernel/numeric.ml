open Wolf_wexpr
open Wolf_base

type num =
  | NInt of int
  | NBig of Bignum.t
  | NReal of float
  | NComplex of float * float
  | NTensor of Tensor.t

let classify e =
  match e with
  | Expr.Int i -> Some (NInt i)
  | Expr.Big b -> Some (NBig b)
  | Expr.Real r -> Some (NReal r)
  | Expr.Tensor t -> Some (NTensor t)
  | Expr.Normal (Expr.Sym s, [| re; im |]) when Symbol.equal s Expr.Sy.complex ->
    (match Expr.float_of re, Expr.float_of im with
     | Some r, Some i -> Some (NComplex (r, i))
     | _ -> None)
  | _ -> None

let is_numeric e = Option.is_some (classify e)

let of_big b =
  match Bignum.to_int_opt b with
  | Some i -> Expr.Int i
  | None -> Expr.Big b

let complex re im =
  if im = 0.0 then Expr.Real re
  else Expr.Normal (Expr.Sym Expr.Sy.complex, [| Expr.Real re; Expr.Real im |])

let big_of = function
  | NInt i -> Bignum.of_int i
  | NBig b -> b
  | NReal _ | NComplex _ | NTensor _ -> assert false

let real_of = function
  | NInt i -> float_of_int i
  | NBig b ->
    (match Bignum.to_int_opt b with
     | Some i -> float_of_int i
     | None -> float_of_string (Bignum.to_string b))
  | NReal r -> r
  | NComplex _ | NTensor _ -> assert false

let complex_of = function
  | NComplex (r, i) -> (r, i)
  | n -> (real_of n, 0.0)

(* Elementwise tensor combination; scalar operands broadcast. *)
let tensor_zip fi fr a b =
  match a, b with
  | NTensor x, NTensor y ->
    if Tensor.dims x <> Tensor.dims y then None
    else if Tensor.is_int x && Tensor.is_int y then begin
      let n = Tensor.flat_length x in
      let out = Array.make n 0 in
      (try
         for i = 0 to n - 1 do out.(i) <- fi (Tensor.get_int x i) (Tensor.get_int y i) done;
         Some (Expr.Tensor (Tensor.create_int (Array.copy (Tensor.dims x)) out))
       with Errors.Runtime_error _ -> None)
    end
    else begin
      let n = Tensor.flat_length x in
      let out = Array.make n 0.0 in
      for i = 0 to n - 1 do out.(i) <- fr (Tensor.get_real x i) (Tensor.get_real y i) done;
      Some (Expr.Tensor (Tensor.create_real (Array.copy (Tensor.dims x)) out))
    end
  | NTensor x, (NInt _ | NBig _ | NReal _) ->
    let s = real_of b and si = (match b with NInt i -> Some i | _ -> None) in
    if Tensor.is_int x && si <> None then begin
      let k = Option.get si in
      let n = Tensor.flat_length x in
      let out = Array.make n 0 in
      (try
         for i = 0 to n - 1 do out.(i) <- fi (Tensor.get_int x i) k done;
         Some (Expr.Tensor (Tensor.create_int (Array.copy (Tensor.dims x)) out))
       with Errors.Runtime_error _ -> None)
    end
    else begin
      let n = Tensor.flat_length x in
      let out = Array.make n 0.0 in
      for i = 0 to n - 1 do out.(i) <- fr (Tensor.get_real x i) s done;
      Some (Expr.Tensor (Tensor.create_real (Array.copy (Tensor.dims x)) out))
    end
  | (NInt _ | NBig _ | NReal _), NTensor _ ->
    (* handled by flipping in the callers that are commutative; for the
       non-commutative ones we rebuild via map *)
    None
  | _ -> None

let arith ~int_op ~big_op ~real_op ~complex_op a b =
  match classify a, classify b with
  | Some na, Some nb ->
    (match na, nb with
     | NComplex _, _ | _, NComplex _ ->
       let (ar, ai) = complex_of na and (br, bi) = complex_of nb in
       let (rr, ri) = complex_op (ar, ai) (br, bi) in
       Some (complex rr ri)
     | NReal _, (NInt _ | NBig _ | NReal _) | (NInt _ | NBig _), NReal _ ->
       Some (Expr.Real (real_op (real_of na) (real_of nb)))
     | NInt x, NInt y ->
       (match int_op x y with
        | Some v -> Some (Expr.Int v)
        | None -> Some (of_big (big_op (Bignum.of_int x) (Bignum.of_int y))))
     | (NInt _ | NBig _), (NInt _ | NBig _) ->
       Some (of_big (big_op (big_of na) (big_of nb)))
     | NTensor _, _ | _, NTensor _ ->
       let fi x y =
         match int_op x y with
         | Some v -> v
         | None -> raise (Errors.Runtime_error Errors.Integer_overflow)
       in
       (match tensor_zip fi real_op na nb with
        | Some r -> Some r
        | None ->
          (* scalar ⊕ tensor (tensor_zip only broadcasts on the right) *)
          (match na, nb with
           | (NInt _ | NBig _ | NReal _), NTensor t ->
             let s = real_of na in
             Some (Expr.Tensor (Tensor.map_real (fun x -> real_op s x) t))
           | _ -> None)))
  | _ -> None

let add2 a b =
  arith a b
    ~int_op:Checked.add_opt ~big_op:Bignum.add ~real_op:( +. )
    ~complex_op:(fun (ar, ai) (br, bi) -> (ar +. br, ai +. bi))

let sub2 a b =
  arith a b
    ~int_op:Checked.sub_opt ~big_op:Bignum.sub ~real_op:( -. )
    ~complex_op:(fun (ar, ai) (br, bi) -> (ar -. br, ai -. bi))

let mul2 a b =
  arith a b
    ~int_op:Checked.mul_opt ~big_op:Bignum.mul ~real_op:( *. )
    ~complex_op:(fun (ar, ai) (br, bi) -> ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br)))

let div2 a b =
  match classify a, classify b with
  | Some (NInt x), Some (NInt y) when y <> 0 ->
    if x mod y = 0 then Some (Expr.Int (x / y))
    else Some (Expr.Real (float_of_int x /. float_of_int y))
  | Some ((NInt _ | NBig _) as na), Some ((NInt _ | NBig _) as nb) ->
    let bx = big_of na and by = big_of nb in
    if Bignum.is_zero by then None
    else begin
      let q, r = Bignum.divmod bx by in
      if Bignum.is_zero r then Some (of_big q)
      else Some (Expr.Real (real_of na /. real_of nb))
    end
  | Some (NComplex _ as na), Some nb | Some na, Some (NComplex _ as nb) ->
    let (ar, ai) = complex_of na and (br, bi) = complex_of nb in
    let d = (br *. br) +. (bi *. bi) in
    Some (complex (((ar *. br) +. (ai *. bi)) /. d) (((ai *. br) -. (ar *. bi)) /. d))
  | Some na, Some nb ->
    (match na, nb with
     | NTensor _, _ | _, NTensor _ ->
       arith a b
         ~int_op:(fun x y -> if y <> 0 && x mod y = 0 then Some (x / y) else None)
         ~big_op:(fun x y -> fst (Bignum.divmod x y))
         ~real_op:( /. )
         ~complex_op:(fun _ _ -> (nan, nan))
     | _ -> Some (Expr.Real (real_of na /. real_of nb)))
  | _ -> None

let pow2 a b =
  match classify a, classify b with
  | Some (NInt x), Some (NInt y) when y >= 0 ->
    (match Checked.pow x y with
     | v -> Some (Expr.Int v)
     | exception Errors.Runtime_error Errors.Integer_overflow ->
       Some (of_big (Bignum.pow (Bignum.of_int x) y)))
  | Some ((NBig _) as na), Some (NInt y) when y >= 0 ->
    Some (of_big (Bignum.pow (big_of na) y))
  | Some (NComplex _ as na), Some (NInt y) ->
    let (r, i) = complex_of na in
    let rec go (ar, ai) n =
      if n = 0 then (1.0, 0.0)
      else begin
        let (br, bi) = go (ar, ai) (n / 2) in
        let (sr, si) = ((br *. br) -. (bi *. bi), 2.0 *. br *. bi) in
        if n land 1 = 1 then ((sr *. ar) -. (si *. ai), (sr *. ai) +. (si *. ar))
        else (sr, si)
      end
    in
    if y >= 0 then begin
      let (rr, ri) = go (r, i) y in
      Some (complex rr ri)
    end
    else None
  | Some na, Some nb ->
    (match na, nb with
     | NTensor _, _ | _, NTensor _ -> None
     | _ -> Some (Expr.Real (Float.pow (real_of na) (real_of nb))))
  | _ -> None

let neg e = mul2 (Expr.Int (-1)) e

let abs e =
  match classify e with
  | Some (NInt i) ->
    if i = min_int then Some (of_big (Bignum.abs (Bignum.of_int i)))
    else Some (Expr.Int (Stdlib.abs i))
  | Some (NBig b) -> Some (of_big (Bignum.abs b))
  | Some (NReal r) -> Some (Expr.Real (Float.abs r))
  | Some (NComplex (r, i)) -> Some (Expr.Real (Float.hypot r i))
  | Some (NTensor t) -> Some (Expr.Tensor (Tensor.map_real Float.abs t))
  | None -> None

let compare2 a b =
  match classify a, classify b with
  | Some na, Some nb ->
    (match na, nb with
     | NComplex _, _ | _, NComplex _ | NTensor _, _ | _, NTensor _ -> None
     | (NInt _ | NBig _), (NInt _ | NBig _) ->
       Some (Bignum.compare (big_of na) (big_of nb))
     | _ -> Some (Float.compare (real_of na) (real_of nb)))
  | _ -> None

let to_real e =
  match classify e with
  | Some (NInt _ | NBig _ | NReal _ as n) -> Some (Expr.Real (real_of n))
  | Some (NComplex _) -> Some e
  | Some (NTensor t) -> Some (Expr.Tensor (Tensor.to_real t))
  | None -> None
