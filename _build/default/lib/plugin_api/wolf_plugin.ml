let table : (string, Obj.t) Hashtbl.t = Hashtbl.create 16

let register name f = Hashtbl.replace table name f
let lookup name = Hashtbl.find_opt table name
let clear name = Hashtbl.remove table name
