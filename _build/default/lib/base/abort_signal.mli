(** User-abort signalling (objective F3).

    The Wolfram Notebook lets the user abort a running evaluation without
    killing the session.  The interpreter polls this flag between rewrite
    steps; compiled code polls it at loop headers and function prologues
    (inserted by {!Wolf_compiler.Abort_pass}). *)

exception Aborted

val request : unit -> unit
(** Ask the current evaluation to stop at its next abort check. *)

val clear : unit -> unit

val requested : unit -> bool

val check : unit -> unit
(** @raise Aborted if an abort was requested (the flag stays set so nested
    evaluations unwind; the session clears it when it regains control). *)

val checks_performed : unit -> int
(** Number of [check] calls since the last [reset_stats]; used by tests and
    the abort-overhead ablation to observe where checks were inserted. *)

val reset_stats : unit -> unit

val abort_after : int -> unit
(** Test hook: arrange for the [n]-th subsequent check to trigger an abort,
    simulating a user pressing interrupt mid-evaluation. *)

val with_abort_protection : (unit -> 'a) -> ('a, exn) result

(** {2 Cells for generated code}

    JIT-emitted abort checks poll these refs inline (a handful of loads per
    loop iteration) and only call {!check} on the slow path.  Not for
    general use. *)

val internal_flag : bool ref
val internal_count : int ref
val internal_trigger : int ref
(** Run a thunk, catching [Aborted] (and clearing the flag), so a session can
    return to its prompt with its state intact. *)
