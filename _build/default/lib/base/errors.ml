type runtime_failure =
  | Integer_overflow
  | Division_by_zero
  | Part_out_of_range of int * int
  | Invalid_runtime_argument of string

exception Runtime_error of runtime_failure
exception Compile_error of string
exception Eval_error of string

let describe_failure = function
  | Integer_overflow -> "IntegerOverflow"
  | Division_by_zero -> "DivisionByZero"
  | Part_out_of_range (i, n) -> Printf.sprintf "PartOutOfRange[%d, %d]" i n
  | Invalid_runtime_argument s -> Printf.sprintf "InvalidArgument[%s]" s

let compile_errorf fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt
let eval_errorf fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt
