type t = int ref

let create () = ref 0
let next t = incr t; !t
let reset t = t := 0
