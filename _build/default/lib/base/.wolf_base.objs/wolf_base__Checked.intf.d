lib/base/checked.mli:
