lib/base/bignum.mli: Format
