lib/base/errors.ml: Format Printf
