lib/base/id_gen.mli:
