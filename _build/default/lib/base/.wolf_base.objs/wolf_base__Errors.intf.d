lib/base/errors.mli: Format
