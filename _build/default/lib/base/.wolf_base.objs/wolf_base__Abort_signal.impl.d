lib/base/abort_signal.ml:
