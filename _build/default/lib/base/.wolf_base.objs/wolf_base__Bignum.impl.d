lib/base/bignum.ml: Array Buffer Format Hashtbl List Printf String
