lib/base/abort_signal.mli:
