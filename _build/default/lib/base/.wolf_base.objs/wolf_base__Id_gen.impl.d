lib/base/id_gen.ml:
