lib/base/checked.ml: Errors Float
