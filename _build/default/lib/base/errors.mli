(** Error taxonomy shared by the interpreter, compiler and runtimes. *)

(** Runtime numerical failures that trigger the soft-failure fallback
    (objective F2): the compiled-function wrapper catches [Runtime_error]
    and re-evaluates with the interpreter. *)
type runtime_failure =
  | Integer_overflow
  | Division_by_zero
  | Part_out_of_range of int * int  (** requested index, length *)
  | Invalid_runtime_argument of string

exception Runtime_error of runtime_failure

(** Compile-time failures: the pipeline reports these instead of producing
    code; callers may fall back to the interpreter (gradual compilation). *)
exception Compile_error of string

(** Interpreter-level evaluation failure (malformed arguments etc.).  The
    interpreter generally returns expressions unevaluated instead, but hard
    misuse of builtins raises this. *)
exception Eval_error of string

val describe_failure : runtime_failure -> string
val compile_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
val eval_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
