(** Monotonic id supplies (MExpr node ids, SSA variable ids, gensym serials). *)

type t

val create : unit -> t
val next : t -> int
val reset : t -> unit
