(* Sign-magnitude representation.  The magnitude is a little-endian array of
   base-10^9 limbs with no trailing zero limb; zero is the empty array with
   sign 0.  Base 10^9 keeps products of limbs inside a 63-bit [int] and makes
   decimal conversion trivial; the interpreter only reaches these numbers
   after a machine-integer overflow, so raw speed is not a concern. *)

let base = 1_000_000_000
let base_digits = 9

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }
let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then zero
  else if hi = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (hi + 1) }

let of_int i =
  if i = 0 then zero
  else begin
    let sign = if i < 0 then -1 else 1 in
    (* min_int negation overflows, so accumulate on negative values. *)
    let rec limbs acc i =
      if i = 0 then acc
      else limbs ((-(i mod base)) :: acc) (i / base)
    in
    let l = List.rev (limbs [] (if i < 0 then i else -i)) in
    { sign; mag = Array.of_list l }
  end

let one = of_int 1
let minus_one = of_int (-1)
let sign n = n.sign
let is_zero n = n.sign = 0

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = !carry + (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) in
    if s >= base then (r.(i) <- s - base; carry := 1) else (r.(i) <- s; carry := 0)
  done;
  r

(* Precondition: cmp_mag a b >= 0. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - !borrow - (if i < lb then b.(i) else 0) in
    if s < 0 then (r.(i) <- s + base; borrow := 1) else (r.(i) <- s; borrow := 0)
  done;
  r

let neg n = if n.sign = 0 then n else { n with sign = -n.sign }
let abs n = if n.sign < 0 then neg n else n

let rec add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> add b a
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.mag.(j)) + !carry in
        r.(i + j) <- cur mod base;
        carry := cur / base
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur mod base;
        carry := cur / base;
        incr k
      done
    done;
    normalize (a.sign * b.sign) r
  end

(* Magnitude division by long division on limbs: the partial remainder always
   fits in two limbs' worth of value per step because we divide limb by limb
   using the top of the divisor, then correct.  For simplicity (and because
   these paths are cold) we use repeated schoolbook division where the divisor
   has one limb, and binary-search quotient digits otherwise. *)
let divmod_mag_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem * base) + a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, !rem)

let mul_mag_small a d =
  if d = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * d) + !carry in
      r.(i) <- cur mod base;
      carry := cur / base
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry mod base;
      carry := !carry / base;
      incr k
    done;
    r
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else if cmp_mag a.mag b.mag < 0 then (zero, a)
  else if Array.length b.mag = 1 then begin
    let q, r = divmod_mag_small a.mag b.mag.(0) in
    let quo = normalize (a.sign * b.sign) q in
    let rem = if r = 0 then zero else normalize a.sign [| r |] in
    (quo, rem)
  end
  else begin
    (* Schoolbook long division, binary-searching each quotient limb. *)
    let la = Array.length a.mag and lb = Array.length b.mag in
    let q = Array.make (la - lb + 1) 0 in
    let rem = ref zero in
    let babs = abs b in
    for i = la - 1 downto 0 do
      (* rem := rem * base + a.mag.(i) *)
      let shifted =
        if is_zero !rem then [||]
        else begin
          let m = !rem.mag in
          let r = Array.make (Array.length m + 1) 0 in
          Array.blit m 0 r 1 (Array.length m);
          r
        end
      in
      let shifted = if Array.length shifted = 0 && a.mag.(i) = 0 then [||]
        else begin
          let r = if Array.length shifted = 0 then [| 0 |] else shifted in
          r.(0) <- a.mag.(i); r
        end
      in
      rem := normalize 1 (Array.copy shifted);
      if i <= la - lb then begin
        (* binary search d in [0, base) with d*b <= rem *)
        let lo = ref 0 and hi = ref (base - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi + 1) / 2 in
          let prod = normalize 1 (mul_mag_small babs.mag mid) in
          if compare prod !rem <= 0 then lo := mid else hi := mid - 1
        done;
        q.(i) <- !lo;
        if !lo > 0 then
          rem := sub !rem (normalize 1 (mul_mag_small babs.mag !lo))
      end
    done;
    let quo = normalize (a.sign * b.sign) q in
    let rem = if is_zero !rem then zero else { !rem with sign = a.sign } in
    (quo, rem)
  end

let pow b e =
  if e < 0 then invalid_arg "Bignum.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let to_int_opt n =
  match n.sign with
  | 0 -> Some 0
  | s ->
    (* Accumulate negatively so that min_int is representable. *)
    let rec go acc i =
      if i < 0 then Some acc
      else if acc < min_int / base then None
      else begin
        let acc' = (acc * base) - n.mag.(i) in
        if acc' > acc then None else go acc' (i - 1)
      end
    in
    (match go 0 (Array.length n.mag - 1) with
     | None -> None
     | Some v ->
       if s < 0 then Some v
       else if v = min_int then None
       else Some (-v))

let to_string n =
  if n.sign = 0 then "0"
  else begin
    let b = Buffer.create 16 in
    if n.sign < 0 then Buffer.add_char b '-';
    let hi = Array.length n.mag - 1 in
    Buffer.add_string b (string_of_int n.mag.(hi));
    for i = hi - 1 downto 0 do
      Buffer.add_string b (Printf.sprintf "%09d" n.mag.(i))
    done;
    Buffer.contents b
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bignum.of_string: empty";
  let neg_p = s.[0] = '-' in
  let start = if neg_p || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Bignum.of_string: no digits";
  String.iter
    (fun c -> if not (c >= '0' && c <= '9') && c <> '-' && c <> '+' then
        invalid_arg "Bignum.of_string: non-digit")
    s;
  let ndigits = len - start in
  let nlimbs = (ndigits + base_digits - 1) / base_digits in
  let mag = Array.make nlimbs 0 in
  let pos = ref len in
  for i = 0 to nlimbs - 1 do
    let lo = max start (!pos - base_digits) in
    mag.(i) <- int_of_string (String.sub s lo (!pos - lo));
    pos := lo
  done;
  normalize (if neg_p then -1 else 1) mag

let hash n = Hashtbl.hash (n.sign, n.mag)
let pp fmt n = Format.pp_print_string fmt (to_string n)
