let overflow () = raise (Errors.Runtime_error Errors.Integer_overflow)
let div_zero () = raise (Errors.Runtime_error Errors.Division_by_zero)

let add_opt a b =
  let s = a + b in
  (* Overflow iff operands share a sign that the sum does not. *)
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then None else Some s

let sub_opt a b =
  let s = a - b in
  if (a >= 0) <> (b >= 0) && (s >= 0) <> (a >= 0) then None else Some s

let mul_opt a b =
  if a = 0 || b = 0 then Some 0
  else begin
    let p = a * b in
    if p / b <> a || (a = -1 && b = min_int) || (b = -1 && a = min_int) then None
    else Some p
  end

let add a b = match add_opt a b with Some v -> v | None -> overflow ()
let sub a b = match sub_opt a b with Some v -> v | None -> overflow ()
let mul a b = match mul_opt a b with Some v -> v | None -> overflow ()
let neg a = if a = min_int then overflow () else -a

(* Wolfram's Quotient is floored division *)
let quotient a b =
  if b = 0 then div_zero ()
  else if a = min_int && b = -1 then overflow ()
  else begin
    let q = a / b in
    if (a < 0) <> (b < 0) && a mod b <> 0 then q - 1 else q
  end

let modulo a b =
  if b = 0 then div_zero ()
  else begin
    (* Wolfram's Mod has the sign of the divisor. *)
    let r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then r + b else r
  end

(* Round half to even, as Wolfram's Round *)
let round_half_even r =
  let f = Float.rem r 1.0 in
  if Float.abs f = 0.5 then int_of_float (2.0 *. Float.round (r /. 2.0))
  else int_of_float (Float.round r)

let pow b e =
  if e < 0 then raise (Errors.Runtime_error (Errors.Invalid_runtime_argument "Power: negative exponent"));
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      if e lsr 1 = 0 then acc else go acc (mul b b) (e lsr 1)
    end
  in
  go 1 b e
