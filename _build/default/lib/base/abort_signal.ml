exception Aborted

let flag = ref false
let count = ref 0
let trigger_at = ref (-1)

let request () = flag := true
let clear () = flag := false; trigger_at := -1
let requested () = !flag

let check () =
  incr count;
  if !trigger_at >= 0 && !count >= !trigger_at then begin
    trigger_at := -1;
    flag := true
  end;
  if !flag then raise Aborted

let checks_performed () = !count
let reset_stats () = count := 0
let abort_after n = trigger_at := !count + n

let internal_flag = flag
let internal_count = count
let internal_trigger = trigger_at

let with_abort_protection f =
  match f () with
  | v -> Ok v
  | exception Aborted -> clear (); Error Aborted
  | exception e -> clear (); Error e
