(** Overflow-checked machine-integer arithmetic.

    The paper's runtime checks every machine numerical operation and raises a
    numeric exception that propagates to the compiled function's wrapper,
    which then reverts to the interpreter (soft failure, F2).  The interpreter
    uses the same detection to promote to arbitrary precision instead. *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val neg : int -> int
val quotient : int -> int -> int
val modulo : int -> int -> int
(** All raise [Wolf_base.Errors.Runtime_error Integer_overflow] on overflow
    and [Runtime_error Division_by_zero] on zero divisors. *)

val pow : int -> int -> int
(** [pow b e] with [e >= 0]; checked at every step. *)

val round_half_even : float -> int
(** Wolfram's [Round]: ties go to the even integer. *)

val add_opt : int -> int -> int option
val sub_opt : int -> int -> int option
val mul_opt : int -> int -> int option
(** Non-raising variants used by the interpreter's bignum promotion. *)
