(** Arbitrary-precision signed integers.

    Built from scratch because the sealed environment has no [zarith]; used by
    the interpreter to honour the Wolfram Language's automatic promotion to
    arbitrary precision when machine arithmetic overflows (the paper's soft
    numerical failure mode, objective F2). *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

(** [to_int_opt n] is [Some i] when [n] fits in an OCaml [int]. *)
val to_int_opt : t -> int option

val of_string : string -> t
(** Accepts an optional leading ['-'] followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod a b = (q, r)] with [a = q*b + r] and
    [r] carrying the sign of [a] (C semantics, matching [Stdlib.( / )]).
    @raise Division_by_zero when [b] is zero. *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative exponent. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
