(** Threaded-code native backend.

    Compiles TWIR into OCaml closures over typed register files: machine
    integers and reals live unboxed in [int array] / [float array] register
    banks; strings, arrays, expressions and closures in a boxed bank.  Each
    basic block becomes one fused closure returning the next block index, so
    execution has no per-instruction dispatch — only the residual indirect
    call per emitted operation.

    Hot scalar primitives are open-coded against the unboxed banks when
    [inline_level > 0]; with inlining disabled every primitive goes through
    the boxed {!Wolf_runtime.Prims} dispatch, which is exactly the overhead
    the paper's inlining ablation measures (E5). *)

open Wolf_runtime

val compile : Wolf_compiler.Pipeline.compiled -> Rtval.closure
(** Compile the program's main function (the other program functions are
    compiled as call targets).  The closure raises
    [Wolf_base.Errors.Runtime_error] on numerical failure and
    [Wolf_base.Abort_signal.Aborted] on user abort. *)
