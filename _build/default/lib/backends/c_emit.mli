(** Standalone C export (objective F10, the
    [FunctionCompileExportString[…, "C"]] analogue).

    Emits a self-contained C translation unit: a miniature tensor runtime,
    overflow-checked arithmetic via compiler builtins, and one C function per
    program function with the CFG rendered as labelled blocks and gotos.  As
    in the paper's standalone mode, interpreter integration and abortability
    are disabled: programs using [KernelCall] or [Expression] values are
    rejected, and [AbortCheck]s are elided. *)

type emitted = {
  source : string;
  entry_name : string;      (** C symbol of the compiled entry point *)
}

val emit : Wolf_compiler.Pipeline.compiled -> (emitted, string) result

val emit_with_driver :
  Wolf_compiler.Pipeline.compiled -> args:Wolf_runtime.Rtval.t list ->
  (emitted, string) result
(** Additionally emits a [main] that calls the entry with the given scalar
    arguments and prints the result — used by the differential test that
    compiles the export with the system C compiler and compares output. *)
