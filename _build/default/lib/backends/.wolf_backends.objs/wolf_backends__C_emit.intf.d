lib/backends/c_emit.mli: Wolf_compiler Wolf_runtime
