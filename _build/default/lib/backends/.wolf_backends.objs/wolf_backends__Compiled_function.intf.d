lib/backends/compiled_function.mli: Expr Rtval Types Wolf_compiler Wolf_runtime Wolf_wexpr
