lib/backends/ocaml_emit.ml: Analysis Array Buffer Float Hashtbl List Pipeline Printf Rtval String Types Wir Wolf_compiler Wolf_runtime
