lib/backends/native.mli: Rtval Wolf_compiler Wolf_runtime
