lib/backends/native.ml: Abort_signal Array Char Checked Errors Float Hashtbl Hooks List Options Pipeline Prims Printf Rtval String Types Wir Wolf_base Wolf_compiler Wolf_runtime Wolf_wexpr
