lib/backends/jit.mli: Rtval Wolf_compiler Wolf_runtime
