lib/backends/compiled_function.ml: Array Errors Expr Hooks List Option Printf Rtval Tensor Types Wolf_base Wolf_compiler Wolf_runtime Wolf_wexpr
