lib/backends/ocaml_emit.mli: Wolf_compiler Wolf_runtime
