lib/backends/jit.ml: Array Dynlink Filename List Obj Ocaml_emit Option Printexc Printf Rtval String Sys Unix Wolf_compiler Wolf_plugin Wolf_runtime
