lib/backends/wvm.mli: Expr Rtval Wolf_runtime Wolf_wexpr
