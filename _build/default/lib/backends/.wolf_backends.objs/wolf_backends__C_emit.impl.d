lib/backends/c_emit.ml: Array Buffer Hashtbl List Option Pipeline Printf String Types Wir Wolf_compiler Wolf_runtime
