(** OCaml source emission from TWIR — the code generator behind the
    ocamlopt JIT ({!Jit}) and the [FunctionCompileExportString[…,"OCaml"]]
    analogue.

    Each program function becomes a typed OCaml function; basic blocks
    become mutually recursive local functions whose parameters are the block
    parameters plus the block's live-in variables, so SSA dominance maps
    onto lexical scope and jumps become tail calls.  Machine numbers stay
    unboxed; open-coded primitives mirror {!Native}'s fast paths; anything
    else dispatches through [Wolf_runtime.Prims]. *)

type emitted = {
  source : string;            (** complete OCaml compilation unit *)
  entry_symbol : string;      (** Wolf_plugin registration key of the entry *)
  constants : (string * Wolf_runtime.Rtval.t) list;
      (** plugin-table constants the host must register before loading *)
}

val emit : module_name:string -> Wolf_compiler.Pipeline.compiled -> emitted
