(** Function/type declaration environments (paper §4.4).

    Declarations are polymorphic, qualified, and overloadable by arity and
    type.  Multiple environments can be resident; users extend the builtin
    environment (objective F6) and pass theirs at FunctionCompile time. *)

open Wolf_wexpr

type impl =
  | Prim of string
      (** runtime primitive; the backend dispatches on the primitive's base
          name plus the resolved argument types (mangled like the paper's
          [checked_binary_plus_Integer64_Integer64]) *)
  | Wolfram of Expr.t
      (** implementation written in the Wolfram Language, compiled and
          monomorphised on demand by function resolution (like the paper's
          [Min] example) *)
  | External of string  (** resolved by name only (already-compiled code) *)

type decl = {
  dname : string;
  scheme : Types.scheme;
  impl : impl;
  inline : bool;        (** eligible for the inlining pass *)
}

type t

val create : ?parent:t -> string -> t
val name : t -> string

val declare : t -> string -> ?inline:bool -> Types.scheme -> impl -> unit
(** Overloads accumulate; redeclaring an identical scheme replaces. *)

val declare_wolfram : t -> string -> spec:Expr.t -> body:Expr.t -> unit
(** The paper's [tyEnv["declareFunction", f, Typed[spec]@Function[…]]]. *)

val lookup : t -> string -> decl list
(** All overloads, own declarations first (more specific environments win),
    in declaration order (the specificity order used by
    AlternativeConstraint resolution). *)

val builtin : unit -> t
(** The default environment bundled with the compiler: arithmetic,
    comparisons, packed-array / string / expression primitives.  Fresh copy
    each call so user extensions stay isolated. *)
