open Wolf_wexpr
open Wolf_base

type param = {
  psym : Symbol.t;
  pspec : Types.scheme option;
}

type analyzed = {
  params : param list;
  ret_spec : Types.scheme option;
  body : Expr.t;
  locals : Symbol.t list;
  escaped : Symbol.t list;
}

let parse_param e =
  match e with
  | Expr.Sym s -> { psym = s; pspec = None }
  | Expr.Normal (Expr.Sym t, [| Expr.Sym s; spec |]) when Symbol.equal t Expr.Sy.typed ->
    { psym = s; pspec = Some (Types.parse_spec spec) }
  | _ -> Errors.compile_errorf "invalid function parameter: %s" (Expr.to_string e)

let param_list e =
  match e with
  | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
    Array.to_list items |> List.map parse_param
  | single -> [ parse_param single ]

(* Highest slot index used outside nested Functions. *)
let max_slot body =
  let rec go acc e =
    match e with
    | Expr.Normal (Expr.Sym s, [| Expr.Int i |]) when Symbol.equal s Expr.Sy.slot ->
      max acc i
    | Expr.Normal (Expr.Sym f, _) when Symbol.equal f Expr.Sy.function_ -> acc
    | Expr.Normal (h, args) -> Array.fold_left go (go acc h) args
    | _ -> acc
  in
  go 0 body

let subst_slots names body =
  let rec go e =
    match e with
    | Expr.Normal (Expr.Sym s, [| Expr.Int i |]) when Symbol.equal s Expr.Sy.slot ->
      if i >= 1 && i <= Array.length names then Expr.Sym names.(i - 1)
      else Errors.compile_errorf "Slot %d exceeds argument count" i
    | Expr.Normal (Expr.Sym f, _) when Symbol.equal f Expr.Sy.function_ -> e
    | Expr.Normal (h, args) -> Expr.Normal (go h, Array.map go args)
    | _ -> e
  in
  go body

(* Normalise a Function expression to Function[{p1,…}, body] with named,
   possibly Typed, parameters. *)
let normalize_function fexpr =
  match fexpr with
  | Expr.Normal (Expr.Sym f, [| body |]) when Symbol.equal f Expr.Sy.function_ ->
    let n = max_slot body in
    let names = Array.init n (fun i -> Symbol.fresh (Printf.sprintf "slot%d" (i + 1))) in
    let params = Expr.list_a (Array.map (fun s -> Expr.Sym s) names) in
    Expr.Normal (Expr.Sym f, [| params; subst_slots names body |])
  | Expr.Normal (Expr.Sym f, [| _; _ |]) when Symbol.equal f Expr.Sy.function_ -> fexpr
  | _ -> Errors.compile_errorf "expected Function[…], got %s" (Expr.to_string fexpr)

let free_symbols e ~bound =
  let acc = ref [] in
  let add s =
    if not (List.exists (Symbol.equal s) bound)
    && not (List.exists (Symbol.equal s) !acc)
    then acc := s :: !acc
  in
  let rec go e =
    match e with
    | Expr.Sym s -> add s
    | Expr.Normal (h, args) -> go h; Array.iter go args
    | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Tensor _ -> ()
  in
  go e;
  List.rev !acc

let analyze_function fexpr =
  let fexpr =
    match fexpr with
    | Expr.Normal (Expr.Sym t, [| f; spec |]) when Symbol.equal t Expr.Sy.typed ->
      (* Typed[Function[...], retspec]; annotate and continue *)
      ignore spec;
      f
    | f -> f
  in
  let normalized = normalize_function fexpr in
  let params_e, body0 =
    match normalized with
    | Expr.Normal (_, [| p; b |]) -> (p, b)
    | _ -> assert false
  in
  let params = param_list params_e in
  let locals = ref [] in
  let escaped : (int, Symbol.t) Hashtbl.t = Hashtbl.create 8 in

  (* Flatten scoping constructs; [scope] maps user symbols to their renamed
     unique versions in the current lexical environment. *)
  let rec walk scope e =
    match e with
    | Expr.Sym s ->
      (match List.assoc_opt (Symbol.id s) scope with
       | Some fresh -> Expr.Sym fresh
       | None -> e)
    | Expr.Normal (Expr.Sym m, [| vars; body |])
      when Symbol.equal m Expr.Sy.module_ || Symbol.equal m Expr.Sy.block ->
      (* In fully compiled code Block behaves like Module (no global symbol
         table to shadow); the paper's compiler does the same. *)
      flatten_scope scope vars body
    | Expr.Normal (Expr.Sym w, [| vars; body |]) when Symbol.equal w Expr.Sy.with_ ->
      substitute_scope scope vars body
    | Expr.Normal (Expr.Sym f, _) when Symbol.equal f Expr.Sy.function_ ->
      nested_function scope e
    | Expr.Normal (h, args) -> Expr.Normal (walk scope h, Array.map (walk scope) args)
    | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Tensor _ -> e

  and flatten_scope scope vars body =
    let items =
      match vars with
      | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
        Array.to_list items
      | e -> Errors.compile_errorf "invalid Module variables: %s" (Expr.to_string e)
    in
    let inits = ref [] in
    let scope' =
      List.fold_left
        (fun scope item ->
           match item with
           | Expr.Sym v ->
             let fresh = Symbol.fresh (Symbol.name v) in
             locals := fresh :: !locals;
             (Symbol.id v, fresh) :: scope
           | Expr.Normal (Expr.Sym st, [| Expr.Sym v; init |])
             when Symbol.equal st Expr.Sy.set ->
             (* the init is evaluated in the outer scope *)
             let init' = walk scope init in
             let fresh = Symbol.fresh (Symbol.name v) in
             locals := fresh :: !locals;
             inits := Expr.apply "Set" [ Expr.Sym fresh; init' ] :: !inits;
             (Symbol.id v, fresh) :: scope
           | e -> Errors.compile_errorf "invalid Module binding: %s" (Expr.to_string e))
        scope items
    in
    let body' = walk scope' body in
    match List.rev !inits with
    | [] -> body'
    | inits -> Expr.apply "CompoundExpression" (inits @ [ body' ])

  and substitute_scope scope vars body =
    let items =
      match vars with
      | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
        Array.to_list items
      | e -> Errors.compile_errorf "invalid With variables: %s" (Expr.to_string e)
    in
    let substs =
      List.map
        (function
          | Expr.Normal (Expr.Sym st, [| Expr.Sym v; init |])
            when Symbol.equal st Expr.Sy.set ->
            (v, walk scope init)
          | e -> Errors.compile_errorf "With variables need values: %s" (Expr.to_string e))
        items
    in
    walk scope (Pattern.substitute substs body)

  and nested_function scope fexpr =
    let normalized = normalize_function fexpr in
    let params_e, body =
      match normalized with
      | Expr.Normal (_, [| p; b |]) -> (p, b)
      | _ -> assert false
    in
    let inner_params = param_list params_e in
    (* rename inner parameters apart *)
    let renames =
      List.map (fun p -> (Symbol.id p.psym, Symbol.fresh (Symbol.name p.psym))) inner_params
    in
    let scope' = renames @ scope in
    let body' = walk scope' body in
    (* escape analysis: outer-scope symbols occurring in the inner body *)
    let inner_bound = List.map snd renames in
    List.iter
      (fun s ->
         if List.exists (fun (_, fresh) -> Symbol.equal fresh s) scope
         then Hashtbl.replace escaped (Symbol.id s) s)
      (free_symbols body' ~bound:inner_bound);
    let params' =
      Expr.list
        (List.map2
           (fun p (_, fresh) ->
              match p.pspec with
              | None -> Expr.Sym fresh
              | Some _ ->
                (match fexpr with _ -> Expr.Sym fresh))
           inner_params renames)
    in
    Expr.Normal (Expr.Sym Expr.Sy.function_, [| params'; body' |])
  in

  (* Parameters enter the scope mapped to themselves so nested-capture
     detection treats them like outer bindings. *)
  let init_scope = List.map (fun p -> (Symbol.id p.psym, p.psym)) params in
  let body = walk init_scope body0 in
  {
    params;
    ret_spec = None;
    body;
    locals = List.rev !locals;
    escaped = Hashtbl.fold (fun _ s acc -> s :: acc) escaped [];
  }
