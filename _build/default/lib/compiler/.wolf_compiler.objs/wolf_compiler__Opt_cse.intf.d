lib/compiler/opt_cse.mli: Wir
