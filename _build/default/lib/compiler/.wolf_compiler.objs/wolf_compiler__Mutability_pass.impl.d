lib/compiler/mutability_pass.ml: Analysis Array Filename Hashtbl List String Wir
