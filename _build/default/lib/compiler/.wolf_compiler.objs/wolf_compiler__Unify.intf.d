lib/compiler/unify.mli: Types
