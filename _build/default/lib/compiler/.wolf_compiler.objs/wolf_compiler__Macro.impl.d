lib/compiler/macro.ml: Array Errors Expr Hashtbl List Parser Pattern Printf Symbol Wolf_base Wolf_wexpr
