lib/compiler/type_class.mli: Types
