lib/compiler/wir_print.ml: Array Buffer List Printf String Types Wir Wolf_wexpr
