lib/compiler/analysis.ml: Array Hashtbl List Option Wir
