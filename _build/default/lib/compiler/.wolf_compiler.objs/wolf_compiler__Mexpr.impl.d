lib/compiler/mexpr.ml: Array Expr Form Hashtbl List Option Wolf_base Wolf_wexpr
