lib/compiler/memory_pass.ml: Analysis Hashtbl List Type_class Wir
