lib/compiler/opt_simplify_cfg.ml: Array Hashtbl List Option Wir
