lib/compiler/mexpr.mli: Expr Wolf_wexpr
