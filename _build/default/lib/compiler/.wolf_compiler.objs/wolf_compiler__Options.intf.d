lib/compiler/options.mli: Wolf_wexpr
