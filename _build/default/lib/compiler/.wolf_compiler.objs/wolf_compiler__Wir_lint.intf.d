lib/compiler/wir_lint.mli: Wir
