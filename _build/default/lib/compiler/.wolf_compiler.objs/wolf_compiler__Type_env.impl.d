lib/compiler/type_env.ml: Expr Hashtbl List String Type_class Types Wolf_wexpr
