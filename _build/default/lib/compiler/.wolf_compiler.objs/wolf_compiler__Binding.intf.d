lib/compiler/binding.mli: Expr Symbol Types Wolf_wexpr
