lib/compiler/infer.mli: Hashtbl Options Type_env Types Wir
