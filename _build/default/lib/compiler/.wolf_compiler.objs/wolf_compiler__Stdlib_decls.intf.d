lib/compiler/stdlib_decls.mli: Type_env
