lib/compiler/opt_inline.ml: Array Hashtbl List Wir
