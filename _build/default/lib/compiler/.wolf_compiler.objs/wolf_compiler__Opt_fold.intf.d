lib/compiler/opt_fold.mli: Wir
