lib/compiler/resolve.ml: Hashtbl Infer List Type_env Wir
