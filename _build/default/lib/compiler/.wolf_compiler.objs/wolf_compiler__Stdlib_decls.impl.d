lib/compiler/stdlib_decls.ml: Parser Type_env Wolf_wexpr
