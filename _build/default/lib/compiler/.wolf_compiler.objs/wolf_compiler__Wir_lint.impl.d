lib/compiler/wir_lint.ml: Array Format Hashtbl List Printf String Wir Wolf_base
