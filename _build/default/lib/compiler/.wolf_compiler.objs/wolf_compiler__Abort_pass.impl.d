lib/compiler/abort_pass.ml: Analysis List Wir
