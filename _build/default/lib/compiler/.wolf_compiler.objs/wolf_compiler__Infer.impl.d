lib/compiler/infer.ml: Array Errors Hashtbl List Options Printf String Type_env Types Unify Wir Wolf_base Wolf_wexpr
