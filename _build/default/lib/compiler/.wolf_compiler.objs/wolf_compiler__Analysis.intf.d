lib/compiler/analysis.mli: Hashtbl Wir
