lib/compiler/types.ml: Array Errors Expr Format Id_gen List Option Printf String Symbol Wolf_base Wolf_wexpr
