lib/compiler/type_class.ml: Hashtbl List String Types
