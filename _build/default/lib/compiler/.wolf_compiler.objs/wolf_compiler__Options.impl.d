lib/compiler/options.ml: Wolf_wexpr
