lib/compiler/mutability_pass.mli: Wir
