lib/compiler/opt_fold.ml: Array Checked Errors Hashtbl List Option Wir Wolf_base
