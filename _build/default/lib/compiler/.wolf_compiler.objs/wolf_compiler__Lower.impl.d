lib/compiler/lower.ml: Array Binding Errors Expr Hashtbl Id_gen List Option Options Printf String Symbol Types Wir Wolf_base Wolf_runtime Wolf_wexpr
