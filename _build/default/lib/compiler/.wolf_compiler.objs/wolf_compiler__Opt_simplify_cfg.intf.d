lib/compiler/opt_simplify_cfg.mli: Wir
