lib/compiler/opt_dce.ml: Analysis Array Hashtbl List Option String Wir
