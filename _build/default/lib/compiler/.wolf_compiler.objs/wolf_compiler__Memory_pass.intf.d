lib/compiler/memory_pass.mli: Wir
