lib/compiler/unify.ml: Array List Printf String Type_class Types
