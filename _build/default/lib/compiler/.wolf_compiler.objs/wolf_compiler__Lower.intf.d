lib/compiler/lower.mli: Binding Expr Options Wir Wolf_wexpr
