lib/compiler/wir.mli: Expr Types Wolf_wexpr
