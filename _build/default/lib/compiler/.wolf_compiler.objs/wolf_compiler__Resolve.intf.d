lib/compiler/resolve.mli: Hashtbl Infer Types Wir Wolf_wexpr
