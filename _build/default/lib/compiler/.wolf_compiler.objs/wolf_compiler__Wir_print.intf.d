lib/compiler/wir_print.mli: Wir
