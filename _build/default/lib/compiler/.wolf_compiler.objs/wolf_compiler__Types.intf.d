lib/compiler/types.mli: Format Wolf_wexpr
