lib/compiler/macro.mli: Expr Wolf_wexpr
