lib/compiler/wir.ml: Array Expr List Printf String Tensor Types Wolf_base Wolf_wexpr
