lib/compiler/type_env.mli: Expr Types Wolf_wexpr
