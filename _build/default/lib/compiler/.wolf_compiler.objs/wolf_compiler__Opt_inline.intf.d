lib/compiler/opt_inline.mli: Wir
