lib/compiler/pipeline.mli: Expr Hashtbl Infer Macro Mexpr Options Type_env Wir Wolf_wexpr
