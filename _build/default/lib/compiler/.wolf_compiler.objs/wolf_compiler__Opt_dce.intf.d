lib/compiler/opt_dce.mli: Wir
