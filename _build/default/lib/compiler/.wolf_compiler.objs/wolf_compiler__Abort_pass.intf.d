lib/compiler/abort_pass.mli: Wir
