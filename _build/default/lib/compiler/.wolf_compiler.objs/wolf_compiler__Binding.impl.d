lib/compiler/binding.ml: Array Errors Expr Hashtbl List Pattern Printf Symbol Types Wolf_base Wolf_wexpr
