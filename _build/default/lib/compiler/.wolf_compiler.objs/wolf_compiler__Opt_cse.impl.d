lib/compiler/opt_cse.ml: Analysis Array Hashtbl List String Types Wir Wolf_wexpr
