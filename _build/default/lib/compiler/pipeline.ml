open Wolf_wexpr

type user_pass = {
  pass_name : string;
  pass_run : Wir.program -> unit;
}

type compiled = {
  program : Wir.program;
  resolution : (string, Infer.resolved) Hashtbl.t;
  coptions : Options.t;
  source : Expr.t;
  expanded : Expr.t;
  timings : (string * float) list;
  inplace_updates : int;
}

let timed timings name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  timings := (name, Unix.gettimeofday () -. t0) :: !timings;
  r

(* Front half shared by the main entry and Wolfram-implementation
   instantiation: macro expand, bind, lower. *)
let front ~options ~macro_env ~name fexpr =
  let expanded = Macro.expand macro_env ~options:(Options.to_macro_options options) fexpr in
  let analyzed = Binding.analyze_function expanded in
  let prog = Lower.lower_function ~options ~name analyzed ~source:fexpr in
  (expanded, prog)

let optimize ~options ~lint prog =
  let budget = ref 16 in
  let changed = ref true in
  while !changed && !budget > 0 do
    decr budget;
    changed := false;
    if Opt_fold.run prog then changed := true;
    if lint then Wir_lint.assert_ok "fold" prog;
    if Opt_simplify_cfg.run prog then changed := true;
    if lint then Wir_lint.assert_ok "simplify-cfg" prog;
    if Opt_cse.run prog then changed := true;
    if lint then Wir_lint.assert_ok "cse" prog;
    if Opt_dce.run prog then changed := true;
    if lint then Wir_lint.assert_ok "dce" prog;
    if options.Options.inline_level > 0 then begin
      if Opt_inline.run ~max_instrs:48 prog then changed := true;
      if lint then Wir_lint.assert_ok "inline" prog
    end
  done

let compile ?(options = Options.default) ?type_env ?macro_env ?(user_passes = []) ~name
    fexpr =
  let env = match type_env with Some e -> e | None -> Stdlib_decls.env () in
  let menv = match macro_env with Some m -> m | None -> Macro.functional_env () in
  let timings = ref [] in
  let expanded, prog =
    timed timings "macro+binding+lower" (fun () -> front ~options ~macro_env:menv ~name fexpr)
  in
  let lint = options.Options.lint in
  if lint then Wir_lint.assert_ok "lower" prog;
  let resolution =
    timed timings "type-inference" (fun () -> Infer.infer ~env ~options prog)
  in
  if lint then Wir_lint.assert_ok "infer" prog;
  (* function resolution: instantiate Wolfram-implemented declarations *)
  let compile_instance ~name body arg_tys ret_ty =
    let _, iprog = front ~options ~macro_env:menv ~name body in
    let main = Wir.main iprog in
    if Array.length main.Wir.fparams <> Array.length arg_tys then
      Wolf_base.Errors.compile_errorf
        "instantiating %s: arity mismatch (%d parameters, %d argument types)" name
        (Array.length main.Wir.fparams) (Array.length arg_tys);
    Array.iteri
      (fun i (v : Wir.var) -> v.Wir.vty <- Some arg_tys.(i))
      main.Wir.fparams;
    main.Wir.ret_ty <- Some ret_ty;
    let sub_table = Infer.infer ~env ~options iprog in
    Hashtbl.iter (Hashtbl.replace resolution) sub_table;
    iprog.Wir.funcs
  in
  timed timings "function-resolution" (fun () ->
      Resolve.run ~compile_instance ~table:resolution prog);
  if lint then Wir_lint.assert_ok "resolve" prog;
  if options.Options.opt_level > 0 then
    timed timings "optimization" (fun () -> optimize ~options ~lint prog);
  List.iter
    (fun up -> timed timings ("user:" ^ up.pass_name) (fun () -> up.pass_run prog))
    user_passes;
  let inplace =
    timed timings "mutability" (fun () -> Mutability_pass.run prog)
  in
  if lint then Wir_lint.assert_ok "mutability" prog;
  if options.Options.abort_handling then begin
    timed timings "abort-insertion" (fun () -> Abort_pass.run prog);
    if lint then Wir_lint.assert_ok "abort" prog
  end;
  if options.Options.memory_management then begin
    timed timings "memory-management" (fun () -> Memory_pass.run prog);
    if lint then Wir_lint.assert_ok "memory" prog
  end;
  timed timings "ground-check" (fun () -> Infer.check_ground prog);
  prog.Wir.pmeta <-
    [ ("AbortHandling", string_of_bool options.Options.abort_handling);
      ("InlineLevel", string_of_int options.Options.inline_level);
      ("OptimizationLevel", string_of_int options.Options.opt_level) ];
  {
    program = prog;
    resolution;
    coptions = options;
    source = fexpr;
    expanded;
    timings = List.rev !timings;
    inplace_updates = inplace;
  }

let compile_to_ast ?(options = Options.default) ?macro_env fexpr =
  let menv = match macro_env with Some m -> m | None -> Macro.builtin_env () in
  Mexpr.of_expr (Macro.expand menv ~options:(Options.to_macro_options options) fexpr)

let compile_to_wir ?(options = Options.default) ?type_env ?macro_env ~name fexpr =
  ignore type_env;
  let menv = match macro_env with Some m -> m | None -> Macro.builtin_env () in
  let _, prog = front ~options ~macro_env:menv ~name fexpr in
  prog
