(** Mutability semantics (paper §4.5, objective F5).

    [x = {…}; …; y[[1]] = 3] must copy only if the target aliases another
    value that is used later.  Alias information (which SSA names may refer
    to the same packed array) and liveness decide, per [SetPart]:

    - target provably unaliased and dead after the update → the update is
      marked in-place ([part_set_*_inplace]), skipping even the runtime
      reference-count check;
    - otherwise the runtime copy-on-write check remains, with the reference
      counts maintained by {!Memory_pass} making it exact.

    The conservative static criterion for in-place: the target is defined by
    a fresh allocation or a previous [SetPart] in the same function, is
    never copied from, and this [SetPart] is its only remaining use. *)

val run : Wir.program -> int
(** Returns the number of updates proven safe to run in place. *)
