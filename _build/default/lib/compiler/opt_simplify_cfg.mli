(** CFG clean-up (the paper's dead-branch deletion and basic-block fusion):
    unreachable blocks are dropped, single-predecessor blocks are fused into
    that predecessor when it ends in an unconditional jump, and trivial
    forwarding blocks are threaded. *)

val run : Wir.program -> bool
