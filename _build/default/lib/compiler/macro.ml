open Wolf_wexpr
open Wolf_base

type options = (string * Expr.t) list

type rule = {
  lhs : Expr.t;
  rhs : Expr.t;
  condition : (options -> bool) option;
}

type env = {
  menv_name : string;
  parent : env option;
  rules : (string, rule list ref) Hashtbl.t;
}

let create_env ?parent name = { menv_name = name; parent; rules = Hashtbl.create 32 }

let register env head ?condition pairs =
  let rules = List.map (fun (lhs, rhs) -> { lhs; rhs; condition }) pairs in
  match Hashtbl.find_opt env.rules head with
  | Some cell -> cell := !cell @ rules
  | None -> Hashtbl.add env.rules head (ref rules)

let rec rules_for env head =
  let own =
    match Hashtbl.find_opt env.rules head with
    | Some cell -> !cell
    | None -> []
  in
  match env.parent with
  | Some p -> own @ rules_for p head
  | None -> own

(* Pattern-variable names of a rule's left-hand side: binders in the
   template that are pattern variables belong to the user's code and must
   not be renamed (e.g. the Do iterator rule intentionally binds [var]). *)
let rec pattern_vars e acc =
  match e with
  | Expr.Normal (Expr.Sym p, [| Expr.Sym name; sub |])
    when Symbol.equal p Expr.Sy.pattern ->
    pattern_vars sub (Symbol.id name :: acc)
  | Expr.Normal (h, args) ->
    Array.fold_left (fun acc a -> pattern_vars a acc) (pattern_vars h acc) args
  | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Sym _ | Expr.Tensor _ ->
    acc

(* Hygiene: rename every macro-introduced binder in the TEMPLATE before user
   code is substituted in, so macro-introduced bindings can never capture
   user variables and vice versa. *)
let hygienify ~keep rhs =
  let rec rename_scopes e =
    match e with
    | Expr.Normal (Expr.Sym h, [| vars; body |])
      when Symbol.equal h Expr.Sy.module_ || Symbol.equal h Expr.Sy.with_ ->
      let bindings =
        match vars with
        | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
          Array.to_list items
          |> List.filter_map (function
              | Expr.Sym v -> Some v
              | Expr.Normal (Expr.Sym st, [| Expr.Sym v; _ |])
                when Symbol.equal st Expr.Sy.set ->
                Some v
              | _ -> None)
        | _ -> []
      in
      let bindings =
        List.filter (fun v -> not (List.mem (Symbol.id v) keep)) bindings
      in
      let renames = List.map (fun v -> (v, Expr.Sym (Symbol.fresh (Symbol.name v)))) bindings in
      let vars' = Pattern.substitute renames vars in
      let body' = Pattern.substitute renames body in
      Expr.Normal (Expr.Sym h, [| rename_scopes vars'; rename_scopes body' |])
    | Expr.Normal (h, args) -> Expr.Normal (rename_scopes h, Array.map rename_scopes args)
    | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Sym _ | Expr.Tensor _ -> e
  in
  rename_scopes rhs

let try_rules env options e =
  match Expr.head_name e with
  | None -> None
  | Some head ->
    let applicable = rules_for env head in
    List.find_map
      (fun r ->
         let enabled = match r.condition with None -> true | Some c -> c options in
         if not enabled then None
         else
           match Pattern.match_expr ~pattern:r.lhs e with
           | Some binds ->
             let template = hygienify ~keep:(pattern_vars r.lhs []) r.rhs in
             Some (Pattern.substitute binds template)
           | None -> None)
      applicable

let expand env ?(options = []) expr =
  let budget = ref 10_000 in
  let spend () =
    decr budget;
    if !budget < 0 then
      Errors.compile_errorf "macro expansion did not terminate (10000 rewrites)"
  in
  (* Depth-first: expand children to fixpoint, then the node itself; if the
     node rewrites, recurse on the result. *)
  let rec expand_node e =
    let e =
      match e with
      | Expr.Normal (h, args) ->
        let h' = expand_node h in
        let args' = Array.map expand_node args in
        if h' == h && Array.for_all2 ( == ) args' args then e
        else Expr.Normal (h', args')
      | _ -> e
    in
    match try_rules env options e with
    | Some e' ->
      spend ();
      expand_node e'
    | None -> e
  in
  expand_node expr

(* ------------------------------------------------------------------ *)
(* Builtin rules                                                       *)

let p src = Parser.parse src

let builtin_env () =
  let env = create_env "builtin-macros" in
  (* And/Or short-circuiting (the paper's worked example, §4.2) *)
  register env "And"
    [ (p "And[x_]", p "x");
      (p "And[False, ___]", p "False");
      (p "And[True, rest__]", p "And[rest]");
      (p "And[x_, y_]", p "If[x, y, False]");
      (p "And[x_, y_, rest__]", p "And[And[x, y], rest]") ];
  register env "Or"
    [ (p "Or[x_]", p "x");
      (p "Or[True, ___]", p "True");
      (p "Or[False, rest__]", p "Or[rest]");
      (p "Or[x_, y_]", p "If[x, True, y]");
      (p "Or[x_, y_, rest__]", p "Or[Or[x, y], rest]") ];
  (* n-ary arithmetic to binary *)
  register env "Plus"
    [ (p "Plus[x_]", p "x");
      (p "Plus[x_, y_, rest__]", p "Plus[Plus[x, y], rest]") ];
  register env "Times"
    [ (p "Times[x_]", p "x");
      (p "Times[x_, y_, rest__]", p "Times[Times[x, y], rest]") ];
  register env "StringJoin"
    [ (p "StringJoin[x_, y_, rest__]", p "StringJoin[StringJoin[x, y], rest]") ];
  (* update-operator desugaring; the extra read-back is dead-code-eliminated
     when the operator's value is unused *)
  register env "Increment"
    [ (p "Increment[x_Symbol]", p "CompoundExpression[Set[x, Plus[x, 1]], Subtract[x, 1]]") ];
  register env "Decrement"
    [ (p "Decrement[x_Symbol]", p "CompoundExpression[Set[x, Subtract[x, 1]], Plus[x, 1]]") ];
  register env "PreIncrement"
    [ (p "PreIncrement[x_Symbol]", p "CompoundExpression[Set[x, Plus[x, 1]], x]") ];
  register env "AddTo" [ (p "AddTo[x_Symbol, v_]", p "Set[x, Plus[x, v]]") ];
  register env "SubtractFrom" [ (p "SubtractFrom[x_Symbol, v_]", p "Set[x, Subtract[x, v]]") ];
  register env "TimesBy" [ (p "TimesBy[x_Symbol, v_]", p "Set[x, Times[x, v]]") ];
  register env "DivideBy" [ (p "DivideBy[x_Symbol, v_]", p "Set[x, Divide[x, v]]") ];
  (* comparison chains *)
  List.iter
    (fun name ->
       register env name
         [ (p (Printf.sprintf "%s[a_, b_, rest__]" name),
            p (Printf.sprintf "And[%s[a, b], %s[b, rest]]" name name)) ])
    [ "Less"; "Greater"; "LessEqual"; "GreaterEqual"; "Equal" ];
  (* always-safe AST-level optimisations *)
  register env "If"
    [ (p "If[True, t_]", p "t");
      (p "If[True, t_, _]", p "t");
      (p "If[False, _, e_]", p "e");
      (p "If[False, _]", p "Null") ];
  register env "Power" [ (p "Power[x_, 1]", p "x") ];
  (* loop sugar *)
  register env "Do"
    [ (p "Do[body_, {var_Symbol, n_}]", p "Do[body, {var, 1, n, 1}]");
      (p "Do[body_, {var_Symbol, lo_, hi_}]", p "Do[body, {var, lo, hi, 1}]");
      (p "Do[body_, {var_Symbol, lo_, hi_, step_}]",
       p "Module[{var = lo}, While[var <= hi, body; var = var + step]]");
      (p "Do[body_, {n_}]",
       p "Module[{i$do = 0}, While[i$do < n, body; i$do = i$do + 1]]");
      (p "Do[body_, n_Integer]",
       p "Module[{i$do = 0}, While[i$do < n, body; i$do = i$do + 1]]") ];
  register env "For"
    [ (p "For[init_, cond_, incr_, body_]",
       p "CompoundExpression[init, While[cond, CompoundExpression[body, incr]]]");
      (p "For[init_, cond_, incr_]",
       p "CompoundExpression[init, While[cond, incr]]") ];
  env

(* Functional constructs compile by desugaring to loops; Map keeps the
   element type (the a -> a form), which covers the common numeric uses.
   Separate from [builtin_env] so tools inspecting pure desugaring (and user
   environments layered on the builtins) are unaffected. *)
let functional_env () =
  let env = create_env ~parent:(builtin_env ()) "functional-macros" in
  register env "Nest"
    [ (p "Nest[f_, x0_, n_]",
       p "Module[{acc$m = x0, i$m = 0}, \
            While[i$m < n, acc$m = f[acc$m]; i$m = i$m + 1]; \
            acc$m]") ];
  register env "Fold"
    [ (p "Fold[f_, init_, lst_]",
       p "Module[{acc$m = init, i$m = 1, n$m = Length[lst]}, \
            While[i$m <= n$m, acc$m = f[acc$m, lst[[i$m]]]; i$m = i$m + 1]; \
            acc$m]") ];
  register env "Map"
    [ (p "Map[f_, lst_]",
       p "Module[{out$m = lst, i$m = 1, n$m = Length[lst]}, \
            While[i$m <= n$m, out$m[[i$m]] = f[lst[[i$m]]]; i$m = i$m + 1]; \
            out$m]") ];
  env
