open Wir

let const_key = function
  | Cvoid -> "v"
  | Cint i -> "i" ^ string_of_int i
  | Creal r -> "r" ^ string_of_float r
  | Cbool b -> "b" ^ string_of_bool b
  | Cstr s -> "s" ^ s
  | Cexpr e -> "e" ^ Wolf_wexpr.Expr.to_string e

let op_key = function
  | Ovar v -> "%" ^ string_of_int v.vid
  | Oconst c -> const_key c

(* Value types where sharing is unobservable (scalars). Packed arrays and
   expressions are excluded: de-duplicating them would change aliasing. *)
let scalar_result v =
  match v.vty with
  | Some t ->
    (match Types.repr t with
     | Types.Con (("Integer64" | "Real64" | "Boolean" | "String" | "ComplexReal64"), _) ->
       true
     | _ -> false)
  | None -> false

let pure_base base =
  not (String.length base >= 6 && String.sub base 0 6 = "random")
  && not (String.length base >= 8 && String.sub base 0 8 = "part_set")

let run (p : program) =
  let changed = ref false in
  List.iter
    (fun f ->
       let cfg = Analysis.build_cfg f in
       (* available expressions propagate down the dominator tree: a value
          computed in a dominator is in scope at every dominated use *)
       let avail_at : (int, (string, var) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
       let replacements : (int, var) Hashtbl.t = Hashtbl.create 8 in
       let subst op =
         match op with
         | Ovar v ->
           (match Hashtbl.find_opt replacements v.vid with
            | Some w -> changed := true; Ovar w
            | None -> op)
         | Oconst _ -> op
       in
       Array.iter
         (fun label ->
            let b = Wir.find_block f label in
            let entry_label = (Wir.entry f).label in
            let inherited =
              if label = entry_label then Hashtbl.create 16
              else
                match Hashtbl.find_opt cfg.Analysis.idom label with
                | Some idom when idom <> label ->
                  (match Hashtbl.find_opt avail_at idom with
                   | Some h -> Hashtbl.copy h
                   | None -> Hashtbl.create 16)
                | _ -> Hashtbl.create 16
            in
            let available = inherited in
            b.instrs <-
              List.map
                (fun i ->
                   let i = map_instr_operands subst i in
                   match i with
                   | Call { dst; callee = Resolved { mangled; base }; args }
                     when pure_base base && scalar_result dst ->
                     let key =
                       mangled ^ "("
                       ^ String.concat "," (Array.to_list (Array.map op_key args))
                       ^ ")"
                     in
                     (match Hashtbl.find_opt available key with
                      | Some prior ->
                        (* keep a Copy so uses in later blocks stay defined *)
                        Hashtbl.replace replacements dst.vid prior;
                        changed := true;
                        Copy { dst; src = Ovar prior }
                      | None ->
                        Hashtbl.replace available key dst;
                        i)
                   | _ -> i)
                b.instrs;
            b.term <- map_term_operands subst b.term;
            Hashtbl.replace avail_at label available)
         cfg.Analysis.order)
    p.funcs;
  !changed
