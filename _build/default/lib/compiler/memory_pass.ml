open Wir

let managed_var v =
  match v.vty with
  | Some t -> Type_class.member "MemoryManaged" ~ty:t
  | None -> false

let managed_op = function
  | Ovar v -> managed_var v
  | Oconst _ -> false

let run (p : program) =
  List.iter
    (fun f ->
       let live_out = Analysis.live_out f in
       (* only aliasing copies open a new reference; releasing anything else
          (parameters, fresh results) would decrement counts the caller or
          the allocation itself still owns *)
       let acquired : (int, unit) Hashtbl.t = Hashtbl.create 8 in
       List.iter
         (fun b ->
            List.iter
              (function
                | Copy { dst; src } when managed_var dst && managed_op src ->
                  Hashtbl.replace acquired dst.vid ()
                | _ -> ())
              b.instrs)
         f.blocks;
       List.iter
         (fun b ->
            let out = Hashtbl.find live_out b.label in
            (* last textual use index of each managed var within this block *)
            let last_use : (int, int) Hashtbl.t = Hashtbl.create 8 in
            List.iteri
              (fun idx i ->
                 List.iter
                   (function
                     | Ovar v when managed_var v -> Hashtbl.replace last_use v.vid idx
                     | _ -> ())
                   (instr_uses i))
              b.instrs;
            (* uses in the terminator transfer ownership along the edge *)
            List.iter
              (function
                | Ovar v -> Hashtbl.remove last_use v.vid
                | Oconst _ -> ())
              (term_uses b.term);
            let new_instrs = ref [] in
            List.iteri
              (fun idx i ->
                 (* an aliasing definition opens a second reference *)
                 (match i with
                  | Copy { dst; src } when managed_var dst && managed_op src ->
                    new_instrs := Mem_acquire (Ovar dst) :: i :: !new_instrs
                  | _ -> new_instrs := i :: !new_instrs);
                 (* close intervals that end here *)
                 List.iter
                   (function
                     | Ovar v
                       when Hashtbl.mem acquired v.vid
                         && Hashtbl.find_opt last_use v.vid = Some idx
                         && not (Hashtbl.mem out v.vid) ->
                       new_instrs := Mem_release (Ovar v) :: !new_instrs
                     | _ -> ())
                   (instr_uses i))
              b.instrs;
            b.instrs <- List.rev !new_instrs)
         f.blocks)
    p.funcs
