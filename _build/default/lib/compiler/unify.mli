(** Destructive unification with an undo trail, the engine beneath the
    EqualityConstraint solver.  Binding a qualified type variable checks its
    type-class qualifiers; variable-variable bindings merge qualifiers. *)

val unify : Types.t -> Types.t -> (unit, string) result

val speculate : (unit -> 'a option) -> 'a option
(** Run a thunk; when it returns [None] (or raises), roll back all bindings
    it made.  Used to test AlternativeConstraint candidates. *)

val commit_depth : unit -> int
(** Current trail depth (diagnostics/tests). *)
