(** The compiler's type language (paper Section 4.4).

    TypeSpecifiers are atomic constructors ("Integer64"), compound
    constructors ("PackedArray"["Real64", 1]), type-level literals, function
    types, and (qualified) polymorphic types.  Type variables are mutable
    unification cells carrying their pending type-class qualifiers. *)

type t =
  | Con of string * t array      (** constructor application *)
  | Lit of int                   (** type-level integer literal (ranks) *)
  | Fun of t array * t
  | Var of tv ref

and tv =
  | Unbound of { id : int; mutable classes : string list }
  | Link of t

(** A polymorphic declaration: quantified variable ids with their class
    qualifiers, and the body.  Schemes are closed: every [Var] in [body]
    refers to a quantified id. *)
type scheme = { vars : (int * string list) list; body : t }

val int64 : t
val real64 : t
val complex64 : t
val boolean : t
val string_ : t
val expression : t
val void : t
val packed : t -> int -> t
val packed_t : t -> t -> t
val fn : t list -> t -> t

val fresh_var : ?classes:string list -> unit -> t
val mono : t -> scheme

val forall : string list list -> (t list -> t) -> scheme
(** [forall [cls_a; cls_b] (fun [a; b] -> …)] builds a polymorphic scheme
    with one quantified variable per qualifier list. *)

val repr : t -> t
(** Follow [Link]s to the representative. *)

val occurs : int -> t -> bool

val parse_spec : Wolf_wexpr.Expr.t -> scheme
(** Parse a TypeSpecifier expression:
    ["Integer64"], ["MachineInteger"] (alias), ["PackedArray"["Real64", 1]],
    [{"Integer64","Integer64"} -> "Real64"],
    [TypeForAll[{"a"}, {"a"} -> "Real64"]],
    [TypeForAll[{"a"}, {Element["a", "Ordered"]}, {"a","a"} -> "a"]],
    [TypeLiteral[n, "Integer64"]].
    @raise Wolf_base.Errors.Compile_error on malformed specs. *)

val instantiate : scheme -> t
(** Replace quantified variables with fresh unification variables that carry
    the scheme's qualifiers. *)

val equal : t -> t -> bool
(** Structural equality after [repr] (no unification). *)

val is_ground : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val mangle : t -> string
(** Stable name component for monomorphisation ("I64", "PA_R64_1", …). *)
