open Wir

type cfg = {
  order : int array;
  preds : (int, int list) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;
  idom : (int, int) Hashtbl.t;
}

let build_cfg f =
  let succs = Hashtbl.create 16 and preds = Hashtbl.create 16 in
  List.iter
    (fun b ->
       let ss = successors b.term in
       Hashtbl.replace succs b.label ss;
       List.iter
         (fun s ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt preds s) in
            Hashtbl.replace preds s (b.label :: cur))
         ss)
    f.blocks;
  List.iter
    (fun b ->
       if not (Hashtbl.mem preds b.label) then Hashtbl.replace preds b.label [])
    f.blocks;
  (* reverse postorder from entry *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter dfs (Option.value ~default:[] (Hashtbl.find_opt succs l));
      post := l :: !post
    end
  in
  let entry_label = (entry f).label in
  dfs entry_label;
  let order = Array.of_list !post in
  (* Cooper–Harvey–Kennedy iterative dominators *)
  let rpo_index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace rpo_index l i) order;
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom entry_label entry_label;
  let intersect a b =
    let rec go a b =
      if a = b then a
      else begin
        let ia = Hashtbl.find rpo_index a and ib = Hashtbl.find rpo_index b in
        if ia > ib then go (Hashtbl.find idom a) b
        else go a (Hashtbl.find idom b)
      end
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun l ->
         if l <> entry_label then begin
           let ps =
             List.filter (Hashtbl.mem idom) (Hashtbl.find preds l)
             |> List.filter (Hashtbl.mem rpo_index)
           in
           match ps with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if Hashtbl.find_opt idom l <> Some new_idom then begin
               Hashtbl.replace idom l new_idom;
               changed := true
             end
           end)
      order
  done;
  { order; preds; succs; idom }

let dominates cfg a b =
  (* does a dominate b? *)
  let rec go b =
    if a = b then true
    else
      match Hashtbl.find_opt cfg.idom b with
      | Some d when d <> b -> go d
      | _ -> false
  in
  go b

let loop_headers f cfg =
  let headers = Hashtbl.create 8 in
  List.iter
    (fun b ->
       List.iter
         (fun succ -> if dominates cfg succ b.label then Hashtbl.replace headers succ ())
         (successors b.term))
    f.blocks;
  Hashtbl.fold (fun l () acc -> l :: acc) headers []
  |> List.sort compare

let op_var_ids ops =
  List.filter_map (function Ovar v -> Some v.vid | Oconst _ -> None) ops

let liveness f =
  let cfg = build_cfg f in
  let live_in : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let live_out_t : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
       Hashtbl.replace live_in b.label (Hashtbl.create 8);
       Hashtbl.replace live_out_t b.label (Hashtbl.create 8))
    f.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate blocks in postorder (reverse of rpo) for fast convergence *)
    for i = Array.length cfg.order - 1 downto 0 do
      let l = cfg.order.(i) in
      let b = Wir.find_block f l in
      let out = Hashtbl.find live_out_t l in
      List.iter
        (fun s ->
           match Hashtbl.find_opt live_in s with
           | Some si ->
             Hashtbl.iter
               (fun v () ->
                  if not (Hashtbl.mem out v) then begin
                    Hashtbl.replace out v ();
                    changed := true
                  end)
               si
           | None -> ())
        (Hashtbl.find cfg.succs l);
      (* in = (out - defs) + uses, walking instructions backwards *)
      let live = Hashtbl.copy out in
      List.iter (fun v -> Hashtbl.replace live v ()) (op_var_ids (term_uses b.term));
      List.iter
        (fun i ->
           List.iter (fun v -> Hashtbl.remove live v.vid) (instr_defs i);
           List.iter (fun v -> Hashtbl.replace live v ()) (op_var_ids (instr_uses i)))
        (List.rev b.instrs);
      Array.iter (fun v -> Hashtbl.remove live v.vid) b.bparams;
      let inn = Hashtbl.find live_in l in
      Hashtbl.iter
        (fun v () ->
           if not (Hashtbl.mem inn v) then begin
             Hashtbl.replace inn v ();
             changed := true
           end)
        live
    done
  done;
  (live_in, live_out_t)

let live_out f = snd (liveness f)
let live_in f = fst (liveness f)

let use_counts f =
  let counts = Hashtbl.create 64 in
  let bump op =
    match op with
    | Ovar v ->
      Hashtbl.replace counts v.vid (1 + Option.value ~default:0 (Hashtbl.find_opt counts v.vid))
    | Oconst _ -> ()
  in
  List.iter
    (fun b ->
       List.iter (fun i -> List.iter bump (instr_uses i)) b.instrs;
       List.iter bump (term_uses b.term))
    f.blocks;
  counts
