open Wolf_wexpr
open Wolf_base

type t =
  | Con of string * t array
  | Lit of int
  | Fun of t array * t
  | Var of tv ref

and tv =
  | Unbound of { id : int; mutable classes : string list }
  | Link of t

type scheme = { vars : (int * string list) list; body : t }

let con0 name = Con (name, [||])
let int64 = con0 "Integer64"
let real64 = con0 "Real64"
let complex64 = con0 "ComplexReal64"
let boolean = con0 "Boolean"
let string_ = con0 "String"
let expression = con0 "Expression"
let void = con0 "Void"
let packed elt rank = Con ("PackedArray", [| elt; Lit rank |])
let packed_t elt rank = Con ("PackedArray", [| elt; rank |])
let fn args ret = Fun (Array.of_list args, ret)

let counter = Id_gen.create ()

let fresh_var ?(classes = []) () =
  Var (ref (Unbound { id = Id_gen.next counter; classes }))

let mono t = { vars = []; body = t }

let forall class_lists build =
  let entries =
    List.map
      (fun classes ->
         let id = Id_gen.next counter in
         ((id, classes), Var (ref (Unbound { id; classes }))))
      class_lists
  in
  let body = build (List.map snd entries) in
  { vars = List.map fst entries; body }

let rec repr t =
  match t with
  | Var ({ contents = Link u } as r) ->
    let u' = repr u in
    r := Link u';
    u'
  | _ -> t

let rec occurs id t =
  match repr t with
  | Var { contents = Unbound u } -> u.id = id
  | Var { contents = Link _ } -> assert false
  | Con (_, args) -> Array.exists (occurs id) args
  | Fun (args, ret) -> Array.exists (occurs id) args || occurs id ret
  | Lit _ -> false

(* ------------------------------------------------------------------ *)
(* TypeSpecifier parsing                                               *)

let atomic_alias = function
  | "MachineInteger" | "Integer" | "Integer64" -> Some "Integer64"
  | "Real" | "Real64" | "MachineReal" -> Some "Real64"
  | "ComplexReal64" | "Complex" -> Some "ComplexReal64"
  | "Boolean" | "Bool" -> Some "Boolean"
  | "String" | "UTF8String" -> Some "String"
  | "Expression" | "InertExpression" -> Some "Expression"
  | "Void" | "Null" -> Some "Void"
  | _ -> None

let rec parse_spec spec =
  let bad e = Errors.compile_errorf "invalid TypeSpecifier: %s" (Expr.to_string e) in
  (* Collect type-variable names (strings bound by TypeForAll). *)
  let rec parse env e =
    match e with
    | Expr.Str name ->
      (match List.assoc_opt name env with
       | Some v -> v
       | None ->
         (match atomic_alias name with
          | Some canonical -> con0 canonical
          | None -> con0 name))
    | Expr.Normal (Expr.Str name, args) ->
      let name = Option.value (atomic_alias name) ~default:name in
      let name = if name = "Tensor" then "PackedArray" else name in
      Con (name, Array.map (parse env) args)
    | Expr.Int n -> Lit n
    | Expr.Normal (Expr.Sym r, [| Expr.Normal (Expr.Sym l, args); ret |])
      when Symbol.equal r Expr.Sy.rule && Symbol.equal l Expr.Sy.list ->
      Fun (Array.map (parse env) args, parse env ret)
    | Expr.Normal (Expr.Sym r, [| arg; ret |]) when Symbol.equal r Expr.Sy.rule ->
      Fun ([| parse env arg |], parse env ret)
    | Expr.Normal (Expr.Sym tl, [| Expr.Int n; _ |]) when Symbol.name tl = "TypeLiteral" ->
      Lit n
    | Expr.Normal (Expr.Sym ts, [| inner |]) when Symbol.name ts = "TypeSpecifier" ->
      parse env inner
    | _ -> bad e
  in
  let var_names list_expr =
    match list_expr with
    | Expr.Normal (Expr.Sym l, names) when Symbol.equal l Expr.Sy.list ->
      Array.to_list names
      |> List.map (function Expr.Str n -> n | e -> bad e)
    | Expr.Str n -> [ n ]
    | e -> bad e
  in
  let quals quals_expr =
    (* {Element["a", "Ordered"], ...} *)
    let one = function
      | Expr.Normal (Expr.Sym el, [| Expr.Str v; Expr.Str c |])
        when Symbol.name el = "Element" ->
        (v, c)
      | e -> bad e
    in
    match quals_expr with
    | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
      Array.to_list items |> List.map one
    | e -> [ one e ]
  in
  let build names qualifiers body_expr =
    let env_entries =
      List.map
        (fun n ->
           let classes =
             List.filter_map (fun (v, c) -> if v = n then Some c else None) qualifiers
           in
           let id = Id_gen.next counter in
           (n, id, classes))
        names
    in
    let env =
      List.map
        (fun (n, id, classes) -> (n, Var (ref (Unbound { id; classes }))))
        env_entries
    in
    let body = parse env body_expr in
    (* Re-express as a closed scheme: quantified ids with their classes. *)
    { vars = List.map (fun (_, id, classes) -> (id, classes)) env_entries; body }
  in
  match spec with
  | Expr.Normal (Expr.Sym fa, [| names; body |]) when Symbol.name fa = "TypeForAll" ->
    build (var_names names) [] body
  | Expr.Normal (Expr.Sym fa, [| names; qs; body |]) when Symbol.name fa = "TypeForAll" ->
    build (var_names names) (quals qs) body
  | Expr.Normal (Expr.Sym ts, [| inner |]) when Symbol.name ts = "TypeSpecifier" ->
    parse_spec inner
  | e -> { vars = []; body = parse [] e }

(* ------------------------------------------------------------------ *)

let instantiate scheme =
  match scheme.vars with
  | [] -> scheme.body
  | vars ->
    let mapping =
      List.map (fun (id, classes) -> (id, fresh_var ~classes ())) vars
    in
    let rec go t =
      match repr t with
      | Var { contents = Unbound u } ->
        (match List.assoc_opt u.id mapping with
         | Some fresh -> fresh
         | None -> t)
      | Var { contents = Link _ } -> assert false
      | Con (name, args) -> Con (name, Array.map go args)
      | Fun (args, ret) -> Fun (Array.map go args, go ret)
      | Lit _ as t -> t
    in
    go scheme.body

let rec equal a b =
  match repr a, repr b with
  | Con (n1, a1), Con (n2, a2) ->
    String.equal n1 n2 && Array.length a1 = Array.length a2
    && (let rec go i = i >= Array.length a1 || (equal a1.(i) a2.(i) && go (i + 1)) in
        go 0)
  | Lit x, Lit y -> x = y
  | Fun (a1, r1), Fun (a2, r2) ->
    Array.length a1 = Array.length a2
    && (let rec go i = i >= Array.length a1 || (equal a1.(i) a2.(i) && go (i + 1)) in
        go 0)
    && equal r1 r2
  | Var r1, Var r2 -> r1 == r2
  | (Con _ | Lit _ | Fun _ | Var _), _ -> false

let rec is_ground t =
  match repr t with
  | Var _ -> false
  | Lit _ -> true
  | Con (_, args) -> Array.for_all is_ground args
  | Fun (args, ret) -> Array.for_all is_ground args && is_ground ret

let rec to_string t =
  match repr t with
  | Con (name, [||]) -> Printf.sprintf "%S" name
  | Con (name, args) ->
    Printf.sprintf "%S[%s]" name
      (String.concat ", " (Array.to_list (Array.map to_string args)))
  | Lit n -> string_of_int n
  | Fun (args, ret) ->
    Printf.sprintf "{%s} -> %s"
      (String.concat ", " (Array.to_list (Array.map to_string args)))
      (to_string ret)
  | Var { contents = Unbound u } ->
    let quals = match u.classes with
      | [] -> ""
      | cs -> Printf.sprintf "∈%s" (String.concat "&" cs)
    in
    Printf.sprintf "α%d%s" u.id quals
  | Var { contents = Link _ } -> assert false

let pp fmt t = Format.pp_print_string fmt (to_string t)

let short_name = function
  | "Integer64" -> "I64"
  | "Real64" -> "R64"
  | "ComplexReal64" -> "C64"
  | "Boolean" -> "B"
  | "String" -> "S"
  | "Expression" -> "E"
  | "Void" -> "V"
  | n -> n

let rec mangle t =
  match repr t with
  | Con ("PackedArray", [| elt; Lit r |]) -> Printf.sprintf "PA_%s_%d" (mangle elt) r
  | Con (name, [||]) -> short_name name
  | Con (name, args) ->
    Printf.sprintf "%s_%s" (short_name name)
      (String.concat "_" (Array.to_list (Array.map mangle args)))
  | Lit n -> string_of_int n
  | Fun (args, ret) ->
    Printf.sprintf "F%s_%s"
      (String.concat "" (Array.to_list (Array.map mangle args)))
      (mangle ret)
  | Var { contents = Unbound u } -> Printf.sprintf "a%d" u.id
  | Var { contents = Link _ } -> assert false
