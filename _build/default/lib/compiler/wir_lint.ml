open Wir

let check_func f =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* single definition *)
  let defs : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let define v where =
    if Hashtbl.mem defs v.vid then
      err "%s: variable %%%d defined twice (second at %s)" f.fname v.vid where
    else Hashtbl.add defs v.vid where
  in
  (* function parameters are declared in [fparams] and defined by their
     Load_argument instructions in the entry block *)
  List.iter
    (fun b ->
       Array.iter (fun v -> define v (Printf.sprintf "b%d params" b.label)) b.bparams;
       List.iter
         (fun i ->
            List.iter (fun v -> define v (Printf.sprintf "b%d" b.label)) (instr_defs i))
         b.instrs)
    f.blocks;
  (* block labels unique, jump targets exist with matching arity *)
  let labels = Hashtbl.create 16 in
  List.iter
    (fun b ->
       if Hashtbl.mem labels b.label then err "%s: duplicate block b%d" f.fname b.label
       else Hashtbl.add labels b.label b)
    f.blocks;
  let check_jump src j =
    match Hashtbl.find_opt labels j.target with
    | None -> err "%s: b%d jumps to missing block b%d" f.fname src j.target
    | Some tgt ->
      if Array.length j.jargs <> Array.length tgt.bparams then
        err "%s: b%d -> b%d passes %d args, block expects %d" f.fname src j.target
          (Array.length j.jargs) (Array.length tgt.bparams)
  in
  List.iter
    (fun b ->
       match b.term with
       | Jump j -> check_jump b.label j
       | Branch { if_true; if_false; _ } ->
         check_jump b.label if_true;
         check_jump b.label if_false
       | Return _ | Unreachable -> ())
    f.blocks;
  (* dominance of uses: approximate with a forward dataflow over reachable
     definitions (sound for block-arg SSA: defs flow along CFG edges) *)
  let block_ids = List.map (fun b -> b.label) f.blocks in
  let avail_in : (int, unit) Hashtbl.t -> int -> bool = Hashtbl.mem in
  let in_sets : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let universe = Hashtbl.fold (fun vid _ acc -> vid :: acc) defs [] in
  List.iter
    (fun l ->
       let h = Hashtbl.create 64 in
       (* initialise to the full set except for the entry block *)
       (match f.blocks with
        | e :: _ when e.label = l -> ()
        | _ -> List.iter (fun vid -> Hashtbl.replace h vid ()) universe);
       Hashtbl.add in_sets l h)
    block_ids;
  let changed = ref true in
  let entry_label = match f.blocks with b :: _ -> b.label | [] -> -1 in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
         let in_set = Hashtbl.find in_sets b.label in
         let out = Hashtbl.copy in_set in
         Array.iter (fun v -> Hashtbl.replace out v.vid ()) b.bparams;
         List.iter
           (fun i -> List.iter (fun v -> Hashtbl.replace out v.vid ()) (instr_defs i))
           b.instrs;
         List.iter
           (fun succ ->
              if succ <> entry_label then begin
                let succ_in = Hashtbl.find in_sets succ in
                (* intersect: remove anything not in out *)
                let to_remove =
                  Hashtbl.fold
                    (fun vid _ acc -> if Hashtbl.mem out vid then acc else vid :: acc)
                    succ_in []
                in
                if to_remove <> [] then begin
                  changed := true;
                  List.iter (Hashtbl.remove succ_in) to_remove
                end
              end)
           (successors b.term))
      f.blocks
  done;
  List.iter
    (fun b ->
       let live = Hashtbl.copy (Hashtbl.find in_sets b.label) in
       Array.iter (fun v -> Hashtbl.replace live v.vid ()) b.bparams;
       let use_check where op =
         match op with
         | Ovar v ->
           if not (avail_in live v.vid) then
             err "%s: b%d %s uses %%%d before definition" f.fname b.label where v.vid
         | Oconst _ -> ()
       in
       List.iter
         (fun i ->
            List.iter (use_check "instr") (instr_uses i);
            List.iter (fun v -> Hashtbl.replace live v.vid ()) (instr_defs i))
         b.instrs;
       List.iter (use_check "terminator") (term_uses b.term))
    f.blocks;
  if !errors = [] then Ok () else Error (List.rev !errors)

let check_program p =
  let all =
    List.concat_map
      (fun f -> match check_func f with Ok () -> [] | Error es -> es)
      p.funcs
  in
  (* function references resolve *)
  let names = List.map (fun f -> f.fname) p.funcs in
  let all =
    all
    @ List.concat_map
        (fun f ->
           List.concat_map
             (fun b ->
                List.filter_map
                  (fun i ->
                     match i with
                     | Call { callee = Func name; _ } | New_closure { fname = name; _ }
                       when not (List.mem name names) ->
                       Some (Printf.sprintf "%s: reference to missing function %s" f.fname name)
                     | _ -> None)
                  b.instrs)
             f.blocks)
        p.funcs
  in
  if all = [] then Ok () else Error all

let assert_ok pass p =
  match check_program p with
  | Ok () -> ()
  | Error es ->
    Wolf_base.Errors.compile_errorf "SSA lint after pass %s:@\n%s" pass
      (String.concat "\n" es)
