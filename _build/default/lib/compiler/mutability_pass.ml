open Wir

(* Definitions that produce a fresh, unaliased value. *)
let fresh_def = function
  | Call { callee = Resolved { base; _ }; _ } ->
    (match base with
     | "range" | "range2" | "constant_array_int" | "constant_array_real"
     | "constant_array_int2" | "constant_array_real2" | "array_take"
     | "to_character_code" | "array_reverse" | "array_join" | "array_append" ->
       true
     | _ ->
       String.length base >= 8 && String.sub base 0 8 = "part_set")
  | _ -> false

let run (p : program) =
  let promoted = ref 0 in
  List.iter
    (fun f ->
       (* defs of each var, counts of uses, and whether a var is ever
          aliased (used by a Copy, closure capture, jump argument or call
          that could retain it beyond this update) *)
       let def_instr : (int, instr) Hashtbl.t = Hashtbl.create 32 in
       let aliased : (int, unit) Hashtbl.t = Hashtbl.create 16 in
       List.iter
         (fun b ->
            List.iter
              (fun i ->
                 List.iter (fun v -> Hashtbl.replace def_instr v.vid i) (instr_defs i);
                 match i with
                 | Copy { src = Ovar v; _ } | Copy_value { src = Ovar v; _ } ->
                   Hashtbl.replace aliased v.vid ()
                 | New_closure { captured; _ } ->
                   Array.iter
                     (function Ovar v -> Hashtbl.replace aliased v.vid () | _ -> ())
                     captured
                 | _ -> ())
              b.instrs;
            List.iter
              (function Ovar v -> Hashtbl.replace aliased v.vid () | Oconst _ -> ())
              (term_uses b.term))
         f.blocks;
       let counts = Analysis.use_counts f in
       List.iter
         (fun b ->
            b.instrs <-
              List.map
                (fun i ->
                   match i with
                   | Call { dst; callee = Resolved { base; mangled }; args }
                     when String.length base >= 8
                       && String.sub base 0 8 = "part_set"
                       && not (Filename.check_suffix mangled "_inplace") ->
                     let rec root_def v =
                       match Hashtbl.find_opt def_instr v with
                       | Some (Copy { src = Ovar u; _ })
                         when Hashtbl.find_opt counts u.vid = Some 1 ->
                         root_def u.vid
                       | d -> d
                     in
                     (match args.(0) with
                      | Ovar target
                        when Hashtbl.find_opt counts target.vid = Some 1
                          && (not (Hashtbl.mem aliased target.vid))
                          && (match root_def target.vid with
                              | Some d -> fresh_def d
                              | None -> false) ->
                        incr promoted;
                        Call
                          { dst;
                            callee =
                              Resolved { base; mangled = mangled ^ "_inplace" };
                            args }
                      | _ -> i)
                   | i -> i)
                b.instrs)
         f.blocks)
    p.funcs;
  !promoted
