(** Dead code elimination: removes pure instructions whose results are
    unused and unused block parameters (with the matching jump arguments),
    iterating to a fixed point. *)

val run : Wir.program -> bool
