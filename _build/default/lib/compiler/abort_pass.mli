(** Abortable evaluation (paper §4.5, objective F3): instead of checking
    after every instruction — which would inhibit optimisation — an abort
    check is inserted at the head of every natural loop (computed from the
    dominator tree) and in every function prologue (recursion, e.g. cfib). *)

val run : Wir.program -> unit
