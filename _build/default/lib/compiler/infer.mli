(** Constraint-based type inference over the WIR (paper §4.4).

    Phase 1 walks the IR generating constraints: equalities (unified eagerly),
    and AlternativeConstraints for overloaded operations, linked through
    shared type variables.  Phase 2 solves: each round speculatively unifies
    every remaining candidate of every alternative, discarding candidates
    that can no longer apply; singleton alternatives commit.  When a round
    makes no progress, the most specific (first-declared) surviving candidate
    of the most-constrained alternative commits — the paper's ordering of
    matched types.  Remaining ambiguity or emptiness is a compile error.

    Resolution results are written back: [Call Prim] callees become
    [Call Resolved] with their mangled monomorphic name, and the returned
    table maps mangled names to the declaration chosen, for function
    resolution (§4.5) to instantiate. *)

type resolved = {
  rdecl : Type_env.decl;
  rarg_tys : Types.t array;
  rret_ty : Types.t;
}

val infer :
  env:Type_env.t -> options:Options.t -> Wir.program ->
  (string, resolved) Hashtbl.t
(** Mutates variable types in place (WIR → TWIR).
    @raise Wolf_base.Errors.Compile_error on type errors. *)

val check_ground : Wir.program -> unit
(** Code generation precondition: every variable's type is fully resolved
    ("a compile error is issued if any variable type is missing", §4.6). *)
