open Wir

let run ~compile_instance ~table (p : program) =
  (* Instantiate each Wolfram-implemented declaration once per mangled name. *)
  let instantiated : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec process () =
    let todo =
      Hashtbl.fold
        (fun mangled (info : Infer.resolved) acc ->
           match info.rdecl.Type_env.impl with
           | Type_env.Wolfram body when not (Hashtbl.mem instantiated mangled) ->
             (mangled, body, info) :: acc
           | _ -> acc)
        table []
    in
    match todo with
    | [] -> ()
    | work ->
      List.iter
        (fun (mangled, body, (info : Infer.resolved)) ->
           Hashtbl.replace instantiated mangled ();
           let funcs =
             compile_instance ~name:mangled body info.rarg_tys info.rret_ty
           in
           List.iter
             (fun fn -> if Wir.find_func p fn.fname = None then p.funcs <- p.funcs @ [ fn ])
             funcs)
        work;
      (* instance compilation may have resolved further Wolfram calls *)
      process ()
  in
  process ();
  (* Retarget calls to instantiated Wolfram implementations. *)
  List.iter
    (fun f ->
       List.iter
         (fun b ->
            b.instrs <-
              List.map
                (fun i ->
                   match i with
                   | Call { dst; callee = Resolved { mangled; _ }; args }
                     when Hashtbl.mem instantiated mangled ->
                     Call { dst; callee = Func mangled; args }
                   | i -> i)
                b.instrs)
         f.blocks)
    p.funcs
