(** Hygienic pattern-based macro system (paper §4.2).

    Macros desugar high-level constructs to primitive forms and perform
    always-safe AST-level optimisations.  Rules are registered per head in an
    environment; expansion is depth-first and runs to a fixed point.
    Hygiene: scoping constructs introduced by a rule's right-hand side get
    fresh variable names at each expansion, so macro-introduced bindings
    cannot capture user variables. *)

open Wolf_wexpr

type env

type options = (string * Expr.t) list
(** FunctionCompile options macros can be predicated on (e.g. the paper's
    [Conditioned[#TargetSystem === "CUDA" &]] example). *)

val create_env : ?parent:env -> string -> env

val register :
  env -> string -> ?condition:(options -> bool) -> (Expr.t * Expr.t) list -> unit
(** [register env "And" rules] attaches rewrite rules to head [And]; rules
    are tried in order (Wolfram pattern-specificity ordering is the
    registration order, as in {!Wolf_kernel.Values}). *)

val expand : env -> ?options:options -> Expr.t -> Expr.t
(** @raise Wolf_base.Errors.Compile_error if expansion exceeds 10,000
    rewrites (non-terminating macro set). *)

val builtin_env : unit -> env
(** The default environment bundled with the compiler: And/Or
    short-circuiting, n-ary arithmetic flattening, increment/update
    desugaring, comparison chains, and always-safe If/arithmetic folds. *)

val functional_env : unit -> env
(** [builtin_env] extended with loop desugarings for the functional
    primitives ([Nest], [Fold], [Map] over packed arrays with
    element-preserving functions); the pipeline's default. *)
