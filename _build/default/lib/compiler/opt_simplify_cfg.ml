open Wir

let drop_unreachable f =
  let reachable = Hashtbl.create 16 in
  let rec dfs l =
    if not (Hashtbl.mem reachable l) then begin
      Hashtbl.replace reachable l ();
      List.iter dfs (successors (Wir.find_block f l).term)
    end
  in
  dfs (entry f).label;
  let before = List.length f.blocks in
  f.blocks <- List.filter (fun b -> Hashtbl.mem reachable b.label) f.blocks;
  List.length f.blocks <> before

(* Fuse b -> c when b ends in Jump c and c has no other predecessor: the
   jump's arguments substitute for c's parameters. *)
let fuse_once f =
  let pred_count = Hashtbl.create 16 in
  let bump l = Hashtbl.replace pred_count l (1 + Option.value ~default:0 (Hashtbl.find_opt pred_count l)) in
  List.iter (fun b -> List.iter bump (successors b.term)) f.blocks;
  let entry_label = (entry f).label in
  let fused = ref false in
  List.iter
    (fun b ->
       if not !fused then
         match b.term with
         | Jump j when j.target <> b.label && j.target <> entry_label ->
           if Hashtbl.find_opt pred_count j.target = Some 1 then begin
             let c = Wir.find_block f j.target in
             (* substitute c's params with the jump args *)
             let mapping = Hashtbl.create 8 in
             Array.iteri (fun i p -> Hashtbl.replace mapping p.vid j.jargs.(i)) c.bparams;
             let subst op =
               match op with
               | Ovar v ->
                 (match Hashtbl.find_opt mapping v.vid with
                  | Some replacement -> replacement
                  | None -> op)
               | Oconst _ -> op
             in
             b.instrs <- b.instrs @ c.instrs;
             b.term <- c.term;
             f.blocks <- List.filter (fun x -> x.label <> c.label) f.blocks;
             (* c's parameters may be used anywhere c dominated: substitute
                them function-wide *)
             List.iter
               (fun blk ->
                  blk.instrs <- List.map (map_instr_operands subst) blk.instrs;
                  blk.term <- map_term_operands subst blk.term)
               f.blocks;
             fused := true
           end
         | _ -> ())
    f.blocks;
  !fused

let run (p : program) =
  let changed = ref false in
  List.iter
    (fun f ->
       if drop_unreachable f then changed := true;
       while fuse_once f do
         changed := true
       done;
       ignore (drop_unreachable f))
    p.funcs;
  !changed
