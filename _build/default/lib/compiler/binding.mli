(** Binding analysis (paper §4.2, "MExpr Visitor API: Binding Analysis").

    Resolves every scoping construct in a function to be compiled: nested
    [Module]s are flattened, variables renamed apart (so
    [Module[{a=1,b=1}, a+b+Module[{a=3},a]]] becomes a single scope with
    [a], [b], [a1]), [With] substitutes, slots ([#]) of pure functions are
    normalised to named parameters, and escape analysis marks variables
    captured by nested [Function]s for closure conversion (F6/paper §4.2). *)

open Wolf_wexpr

type param = {
  psym : Symbol.t;
  pspec : Types.scheme option;  (** from [Typed[x, "ty"]] annotations *)
}

type analyzed = {
  params : param list;
  ret_spec : Types.scheme option;
  body : Expr.t;
      (** scoping-free: locals are unique symbols initialised with [Set];
          nested [Function]s are normalised to [Function[{vars}, body]] *)
  locals : Symbol.t list;          (** every flattened local, in first-def order *)
  escaped : Symbol.t list;         (** locals/params captured by an inner Function *)
}

val analyze_function : Expr.t -> analyzed
(** Input: a [Function[…]] expression (optionally [Typed[…]]-annotated
    parameters).  @raise Wolf_base.Errors.Compile_error on malformed input. *)

val free_symbols : Expr.t -> bound:Symbol.t list -> Symbol.t list
(** Free symbols of an expression, for closure-capture computation. *)
