(** Textual WIR/TWIR like the artifact appendix's
    [CompileToIR[…]["toString"]]: one function module per block DAG,
    variables as [%n], types after a colon when present. *)

val operand_to_string : Wir.operand -> string
val instr_to_string : Wir.instr -> string
val func_to_string : Wir.func -> string
val program_to_string : Wir.program -> string
