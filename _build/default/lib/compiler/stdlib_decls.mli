(** The compiler's standard library of Wolfram-implemented declarations
    (paper §4.4's worked examples): polymorphic, qualifier-constrained
    functions written in the Wolfram Language and monomorphised on demand by
    function resolution — exactly how users extend the compiler (F6). *)

val env : unit -> Type_env.t
(** The default environment used by {!Pipeline.compile}: the primitive
    builtin environment extended with [Min]/[Max] (the paper's example),
    [Clip], [Sign], [Mean], [Norm], [ArrayFold] and friends. *)
