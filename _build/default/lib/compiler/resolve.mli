(** Function resolution (paper §4.5): after inference has chosen a
    declaration for every call, declarations implemented in the Wolfram
    Language (like the paper's polymorphic [Min]) are instantiated at their
    monomorphic types, compiled through the same front end, inserted into
    the program under their mangled names, and the calls retargeted.
    Primitive declarations stay as resolved runtime calls. *)

val run :
  compile_instance:
    (name:string -> Wolf_wexpr.Expr.t -> Types.t array -> Types.t -> Wir.func list) ->
  table:(string, Infer.resolved) Hashtbl.t ->
  Wir.program ->
  unit
(** [compile_instance] is supplied by {!Pipeline} (it recursively runs the
    front half of the pipeline on the implementation body). *)
