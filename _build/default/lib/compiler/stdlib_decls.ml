open Wolf_wexpr

let p = Parser.parse

let env () =
  let env = Type_env.create ~parent:(Type_env.builtin ()) "stdlib" in
  (* the paper's Min, verbatim modulo surface syntax (§4.4):
       tyEnv["declareFunction", Min,
         Typed[TypeForAll[{"a"}, {"a" ∈ "Ordered"}, {"a","a"} -> "a"]]@
           Function[{e1, e2}, If[e1 < e2, e1, e2]] *)
  Type_env.declare_wolfram env "Min"
    ~spec:(p {|TypeForAll[{"a"}, {Element["a", "Ordered"]}, {"a", "a"} -> "a"]|})
    ~body:(p "Function[{e1, e2}, If[e1 < e2, e1, e2]]");
  Type_env.declare_wolfram env "Max"
    ~spec:(p {|TypeForAll[{"a"}, {Element["a", "Ordered"]}, {"a", "a"} -> "a"]|})
    ~body:(p "Function[{e1, e2}, If[e1 < e2, e2, e1]]");
  (* and the paper's container form: Min over any rank-1 packed array *)
  Type_env.declare_wolfram env "Min"
    ~spec:(p {|TypeForAll[{"a"}, {Element["a", "Ordered"], Element["a", "Number"]},
                {"PackedArray"["a", 1]} -> "a"]|})
    ~body:(p {|Function[{arry},
                Module[{m = arry[[1]], i = 2, n = Length[arry]},
                 While[i <= n, If[arry[[i]] < m, m = arry[[i]]]; i = i + 1];
                 m]]|});
  Type_env.declare_wolfram env "Max"
    ~spec:(p {|TypeForAll[{"a"}, {Element["a", "Ordered"], Element["a", "Number"]},
                {"PackedArray"["a", 1]} -> "a"]|})
    ~body:(p {|Function[{arry},
                Module[{m = arry[[1]], i = 2, n = Length[arry]},
                 While[i <= n, If[arry[[i]] > m, m = arry[[i]]]; i = i + 1];
                 m]]|});
  Type_env.declare_wolfram env "Clip"
    ~spec:(p {|TypeForAll[{"a"}, {Element["a", "Ordered"]}, {"a", "a", "a"} -> "a"]|})
    ~body:(p "Function[{x, lo, hi}, If[x < lo, lo, If[x > hi, hi, x]]]");
  Type_env.declare_wolfram env "Sign"
    ~spec:(p {|TypeSpecifier[{"Integer64"} -> "Integer64"]|})
    ~body:(p "Function[{x}, If[x > 0, 1, If[x < 0, -1, 0]]]");
  Type_env.declare_wolfram env "Sign"
    ~spec:(p {|TypeSpecifier[{"Real64"} -> "Integer64"]|})
    ~body:(p "Function[{x}, If[x > 0.0, 1, If[x < 0.0, -1, 0]]]");
  Type_env.declare_wolfram env "Mean"
    ~spec:(p {|TypeSpecifier[{"PackedArray"["Real64", 1]} -> "Real64"]|})
    ~body:(p "Function[{v}, Total[v] / N[Length[v]]]");
  Type_env.declare_wolfram env "Norm"
    ~spec:(p {|TypeSpecifier[{"PackedArray"["Real64", 1]} -> "Real64"]|})
    ~body:(p {|Function[{v},
                Module[{s = 0.0, i = 1, n = Length[v]},
                 While[i <= n, s = s + v[[i]]*v[[i]]; i = i + 1];
                 Sqrt[s]]]|});
  Type_env.declare_wolfram env "Fibonacci"
    ~spec:(p {|TypeSpecifier[{"Integer64"} -> "Integer64"]|})
    ~body:(p {|Function[{n},
                Module[{a = 0, b = 1, i = 0, t = 0},
                 While[i < n, t = a + b; a = b; b = t; i = i + 1];
                 a]]|});
  Type_env.declare_wolfram env "GCD"
    ~spec:(p {|TypeSpecifier[{"Integer64", "Integer64"} -> "Integer64"]|})
    ~body:(p {|Function[{a0, b0},
                Module[{a = Abs[a0], b = Abs[b0], t = 0},
                 While[b != 0, t = Mod[a, b]; a = b; b = t];
                 a]]|});
  env
