(** Function inlining on the TWIR (paper §4.5: functions marked inlinable
    are inlined at resolution; §6 shows disabling it costs 10× on tight
    loops).  A call is inlined when the callee is marked [finline], is not
    (mutually) recursive, and is small; the callee's blocks are cloned with
    fresh variables, [Load_argument]s become copies of the actual arguments,
    and returns jump to the split continuation block. *)

val run : max_instrs:int -> Wir.program -> bool
