let table : (string, string list ref) Hashtbl.t = Hashtbl.create 32

let declare name ~members =
  match Hashtbl.find_opt table name with
  | Some existing ->
    existing := List.sort_uniq String.compare (members @ !existing)
  | None -> Hashtbl.add table name (ref members)

let constructor_name ty =
  match Types.repr ty with
  | Types.Con (name, _) -> Some name
  | Types.Lit _ | Types.Fun _ | Types.Var _ -> None

let member cls ~ty =
  match constructor_name ty with
  | Some name ->
    (match Hashtbl.find_opt table cls with
     | Some members -> List.mem name !members
     | None -> false)
  | None -> false

let satisfiable cls ~ty =
  match Types.repr ty with
  | Types.Var _ -> true
  | _ -> member cls ~ty

let classes_of ty =
  Hashtbl.fold
    (fun cls _ acc -> if member cls ~ty then cls :: acc else acc)
    table []
  |> List.sort String.compare

let install_builtin () =
  declare "Integral" ~members:[ "Integer64" ];
  declare "Reals" ~members:[ "Integer64"; "Real64" ];
  declare "Ordered" ~members:[ "Integer64"; "Real64"; "String" ];
  declare "Number" ~members:[ "Integer64"; "Real64"; "ComplexReal64" ];
  declare "Indexed" ~members:[ "PackedArray"; "Expression" ];
  declare "MemoryManaged" ~members:[ "PackedArray"; "Expression"; "String" ];
  declare "Container" ~members:[ "PackedArray" ];
  declare "Equatable"
    ~members:[ "Integer64"; "Real64"; "ComplexReal64"; "Boolean"; "String"; "Expression" ]
