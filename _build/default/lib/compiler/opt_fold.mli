(** Sparse conditional constant propagation, simplified: copies of constants
    propagate into uses, pure resolved primitives with constant arguments
    fold, and branches on constant conditions become jumps (dead-branch
    deletion happens in {!Opt_simplify_cfg}).  Iterates to a fixed point. *)

val run : Wir.program -> bool
(** Returns true when anything changed. *)
