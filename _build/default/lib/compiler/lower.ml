open Wolf_wexpr
open Wolf_base
open Wir

(* Locals assigned (Set / indexed Set) within an expression, not descending
   into nested Function bodies: used to compute join/loop block parameters. *)
let assigned_ids e =
  let acc : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec go e =
    match e with
    | Expr.Normal (Expr.Sym s, [| lhs; rhs |]) when Symbol.equal s Expr.Sy.set ->
      (match lhs with
       | Expr.Sym v -> Hashtbl.replace acc (Symbol.id v) ()
       | Expr.Normal (Expr.Sym p, pargs)
         when Symbol.equal p Expr.Sy.part && Array.length pargs >= 1 ->
         (match pargs.(0) with
          | Expr.Sym v -> Hashtbl.replace acc (Symbol.id v) ()
          | _ -> ());
         Array.iter go pargs
       | _ -> go lhs);
      go rhs
    | Expr.Normal (Expr.Sym f, _) when Symbol.equal f Expr.Sy.function_ -> ()
    | Expr.Normal (h, args) -> go h; Array.iter go args
    | Expr.Int _ | Expr.Big _ | Expr.Real _ | Expr.Str _ | Expr.Sym _ | Expr.Tensor _ -> ()
  in
  go e;
  acc

type ctx = {
  options : Options.t;
  prog_funcs : func list ref;           (* accumulated lifted functions *)
  self : string option;                 (* recursive self-reference name *)
  fn_name : string;
  label_gen : Id_gen.t;
  mutable cur : block;
  mutable blocks : block list;          (* reverse order *)
  env : (int, operand) Hashtbl.t;       (* local symbol id -> current SSA value *)
  names : (int, string) Hashtbl.t;      (* local symbol id -> display name *)
}

let new_block ctx ?(params = [||]) () =
  let b =
    { label = Id_gen.next ctx.label_gen; bparams = params; instrs = []; term = Unreachable }
  in
  ctx.blocks <- b :: ctx.blocks;
  b

let emit ctx i = ctx.cur.instrs <- ctx.cur.instrs @ [ i ]

let emit_call ctx ?name callee args =
  let dst = fresh_var ?name () in
  emit ctx (Call { dst; callee; args });
  Ovar dst

let set_term ctx t = ctx.cur.term <- t

let define ctx sym op = Hashtbl.replace ctx.env (Symbol.id sym) op

let lookup ctx sym =
  match Hashtbl.find_opt ctx.env (Symbol.id sym) with
  | Some op -> Some op
  | None -> None

(* The sorted list of env symbols assigned within [exprs]: these become block
   parameters at joins. *)
let join_vars ctx exprs =
  let assigned = Hashtbl.create 8 in
  List.iter
    (fun e -> Hashtbl.iter (fun id () -> Hashtbl.replace assigned id ()) (assigned_ids e))
    exprs;
  Hashtbl.fold
    (fun id () acc -> if Hashtbl.mem ctx.env id then id :: acc else acc)
    assigned []
  |> List.sort compare

let display_name ctx id =
  match Hashtbl.find_opt ctx.names id with
  | Some n -> n
  | None -> "v"

let current_values ctx ids =
  Array.of_list (List.map (fun id -> Hashtbl.find ctx.env id) ids)

let bind_params ctx ids params =
  List.iteri (fun i id -> Hashtbl.replace ctx.env id (Ovar params.(i))) ids

let make_params ctx ids =
  Array.of_list (List.map (fun id -> fresh_var ~name:(display_name ctx id) ()) ids)

let rec lower ctx (e : Expr.t) : operand =
  match e with
  | Expr.Int i -> Oconst (Cint i)
  | Expr.Real r -> Oconst (Creal r)
  | Expr.Str s -> Oconst (Cstr s)
  | Expr.Big _ -> Oconst (Cexpr e)
  | Expr.Tensor _ ->
    if ctx.options.static_constants then Oconst (Cexpr e)
    else
      (* E7 ablation: materialise the constant on every evaluation *)
      emit_call ctx ~name:"const" (Prim "MaterializeConstant") [| Oconst (Cexpr e) |]
  | Expr.Sym s ->
    (match lookup ctx s with
     | Some op -> op
     | None ->
       if Expr.is_true e then Oconst (Cbool true)
       else if Expr.is_false e then Oconst (Cbool false)
       else if Symbol.equal s Expr.Sy.null then Oconst Cvoid
       else Oconst (Cexpr e) (* free symbol: an inert expression constant *))
  | Expr.Normal (Expr.Sym h, args) -> lower_normal ctx h args e
  | Expr.Normal (Expr.Normal (Expr.Sym kf, [| f |]), args)
    when Symbol.equal kf Expr.Sy.kernel_function ->
    let dst = fresh_var ~name:"kernel" () in
    let ops = Array.map (lower ctx) args in
    emit ctx (Kernel_call { dst; head = f; args = ops });
    Ovar dst
  | Expr.Normal (hd, args) ->
    (* applied expression (e.g. Function literal applied immediately) *)
    let f = lower ctx hd in
    let ops = Array.map (lower ctx) args in
    emit_call ctx (Indirect f) ops

and lower_normal ctx h args whole =
  let hname = Symbol.name h in
  match hname, args with
  | "CompoundExpression", _ ->
    let n = Array.length args in
    if n = 0 then Oconst Cvoid
    else begin
      Array.iteri (fun i a -> if i < n - 1 then lower_stmt ctx a) args;
      lower ctx args.(n - 1)
    end
  | "Set", [| lhs; rhs |] -> lower_set ctx lhs rhs
  | "If", [| cond |] -> lower_if ctx ~value:false cond Expr.null Expr.null
  | "If", [| cond; t |] -> lower_if ctx ~value:false cond t Expr.null
  | "If", [| cond; t; f |] -> lower_if ctx ~value:true cond t f
  | "While", [| cond |] -> lower_while ctx cond Expr.null
  | "While", [| cond; body |] -> lower_while ctx cond body
  | "Typed", [| inner; spec |] ->
    let op = lower ctx inner in
    let scheme = Types.parse_spec spec in
    (match op with
     | Ovar v -> v.vty <- Some (Types.instantiate scheme)
     | Oconst _ -> ());
    op
  | "List", _ ->
    (* literal homogeneous lists compile to packed-array constants; general
       list construction stays a kernel-level operation *)
    (match Wolf_runtime.Rtval.of_expr whole with
     | Wolf_runtime.Rtval.Tensor t ->
       lower ctx (Expr.Tensor t)
     | _ ->
       Errors.compile_errorf
         "general List construction is not compilable; use ConstantArray and Part           assignment, or a literal numeric list")
  | "Part", _ when Array.length args >= 2 ->
    let ops = Array.map (lower ctx) args in
    emit_call ctx ~name:"part" (Prim "Part") ops
  | "Function", _ -> lower_closure ctx whole
  | "KernelFunction", [| f |] ->
    (* a first-class kernel escape: wrap as closure over a Kernel_call *)
    lower_kernel_closure ctx f
  | "Return", _ ->
    Errors.compile_errorf "Return is not supported in compiled code; restructure with If"
  | _ ->
    (* function application *)
    let callee =
      match lookup ctx h with
      | Some op -> Indirect op
      | None ->
        (match ctx.self with
         | Some self when String.equal self hname -> Func ctx.fn_name
         | _ -> Prim hname)
    in
    let ops = Array.map (lower ctx) args in
    emit_call ctx ~name:(String.lowercase_ascii hname) callee ops

(* Statement position: the value is discarded, so If/While joins carry no
   result parameter and branches may have unrelated types. *)
and lower_stmt ctx e =
  match e with
  | Expr.Normal (Expr.Sym h, args) ->
    (match Symbol.name h, args with
     | "CompoundExpression", _ -> Array.iter (lower_stmt ctx) args
     | "If", [| cond; t |] -> ignore (lower_if ctx ~value:false cond t Expr.null)
     | "If", [| cond; t; f |] -> ignore (lower_if ctx ~value:false cond t f)
     | _ -> ignore (lower ctx e))
  | _ -> ignore (lower ctx e)

and lower_set ctx lhs rhs =
  match lhs with
  | Expr.Sym v ->
    let value = lower ctx rhs in
    (* emit an explicit Copy so the definition is visible in the IR and the
       display name survives *)
    let dst = fresh_var ~name:(Symbol.name v) () in
    emit ctx (Copy { dst; src = value });
    Hashtbl.replace ctx.names (Symbol.id v) (Symbol.name v);
    define ctx v (Ovar dst);
    Ovar dst
  | Expr.Normal (Expr.Sym p, pargs)
    when Symbol.equal p Expr.Sy.part && Array.length pargs >= 2 ->
    (match pargs.(0) with
     | Expr.Sym v ->
       let target =
         match lookup ctx v with
         | Some op -> op
         | None ->
           Errors.compile_errorf "Part assignment to uninitialised %s" (Symbol.name v)
       in
       let idxs = Array.map (lower ctx) (Array.sub pargs 1 (Array.length pargs - 1)) in
       let value = lower ctx rhs in
       let updated =
         emit_call ctx ~name:(Symbol.name v)
           (Prim "SetPart")
           (Array.concat [ [| target |]; idxs; [| value |] ])
       in
       define ctx v updated;
       value
     | e -> Errors.compile_errorf "unsupported Part assignment target %s" (Expr.to_string e))
  | e -> Errors.compile_errorf "unsupported assignment target %s" (Expr.to_string e)

and lower_if ctx ~value cond then_e else_e =
  let cond_op = lower ctx cond in
  let join_ids = join_vars ctx [ then_e; else_e ] in
  let then_blk = new_block ctx () in
  let else_blk = new_block ctx () in
  let result_param = fresh_var ~name:"if" () in
  let var_params = make_params ctx join_ids in
  let join_params =
    if value then Array.append [| result_param |] var_params else var_params
  in
  let join_blk = new_block ctx ~params:join_params () in
  set_term ctx
    (Branch
       { cond = cond_op;
         if_true = { target = then_blk.label; jargs = [||] };
         if_false = { target = else_blk.label; jargs = [||] } });
  let branch target_env branch_blk branch_e =
    Hashtbl.reset ctx.env;
    Hashtbl.iter (fun k v -> Hashtbl.replace ctx.env k v) target_env;
    ctx.cur <- branch_blk;
    let v = if value then lower ctx branch_e else (lower_stmt ctx branch_e; Oconst Cvoid) in
    let vars = current_values ctx join_ids in
    let jargs = if value then Array.append [| v |] vars else vars in
    set_term ctx (Jump { target = join_blk.label; jargs })
  in
  let saved = Hashtbl.copy ctx.env in
  branch saved then_blk then_e;
  branch saved else_blk else_e;
  ctx.cur <- join_blk;
  bind_params ctx join_ids var_params;
  if value then Ovar result_param else Oconst Cvoid

and lower_while ctx cond body =
  let loop_ids = join_vars ctx [ cond; body ] in
  let header_params = make_params ctx loop_ids in
  let header = new_block ctx ~params:header_params () in
  set_term ctx (Jump { target = header.label; jargs = current_values ctx loop_ids });
  ctx.cur <- header;
  bind_params ctx loop_ids header_params;
  let cond_op = lower ctx cond in
  (* the condition may itself contain assignments/new blocks; the branch is
     emitted from wherever condition lowering ended *)
  let body_blk = new_block ctx () in
  let exit_blk = new_block ctx () in
  set_term ctx
    (Branch
       { cond = cond_op;
         if_true = { target = body_blk.label; jargs = [||] };
         if_false = { target = exit_blk.label; jargs = [||] } });
  (* remember the environment as the failing condition sees it: this is what
     the exit block may use *)
  let env_at_test = Hashtbl.copy ctx.env in
  ctx.cur <- body_blk;
  lower_stmt ctx body;
  set_term ctx (Jump { target = header.label; jargs = current_values ctx loop_ids });
  ctx.cur <- exit_blk;
  Hashtbl.reset ctx.env;
  Hashtbl.iter (fun k v -> Hashtbl.replace ctx.env k v) env_at_test;
  Oconst Cvoid

and lower_closure ctx fexpr =
  (* [fexpr] is a normalised Function[{params}, body]; lift it *)
  let params_e, body =
    match fexpr with
    | Expr.Normal (_, [| p; b |]) -> (p, b)
    | _ -> Errors.compile_errorf "malformed inner Function"
  in
  let param_syms =
    match params_e with
    | Expr.Normal (Expr.Sym l, items) when Symbol.equal l Expr.Sy.list ->
      Array.to_list items
      |> List.map (function
          | Expr.Sym s -> s
          | e -> Errors.compile_errorf "bad closure parameter %s" (Expr.to_string e))
    | Expr.Sym s -> [ s ]
    | e -> Errors.compile_errorf "bad closure parameters %s" (Expr.to_string e)
  in
  (* captured = free symbols of body bound in the enclosing environment *)
  let free = Binding.free_symbols body ~bound:param_syms in
  let captured =
    List.filter_map
      (fun s -> match lookup ctx s with Some op -> Some (s, op) | None -> None)
      free
  in
  let lifted_name = Printf.sprintf "%s`lambda%d" ctx.fn_name (Id_gen.next ctx.label_gen) in
  (* build the lifted function: params = captured ++ params *)
  let cap_params =
    List.map (fun (s, _) -> (s, fresh_var ~name:(Symbol.name s) ())) captured
  in
  let arg_params = List.map (fun s -> (s, fresh_var ~name:(Symbol.name s) ())) param_syms in
  let inner_entry_params = Array.of_list (List.map snd (cap_params @ arg_params)) in
  let inner_entry =
    { label = 0; bparams = [||]; instrs = []; term = Unreachable }
  in
  let inner_ctx =
    {
      options = ctx.options;
      prog_funcs = ctx.prog_funcs;
      self = ctx.self;
      fn_name = lifted_name;
      label_gen = Id_gen.create ();
      cur = inner_entry;
      blocks = [ inner_entry ];
      env = Hashtbl.create 16;
      names = Hashtbl.create 16;
    }
  in
  ignore (Id_gen.next inner_ctx.label_gen); (* label 0 = entry *)
  List.iteri
    (fun i (s, v) ->
       inner_ctx.cur.instrs <- inner_ctx.cur.instrs @ [ Load_argument { dst = v; index = i } ];
       Hashtbl.replace inner_ctx.env (Symbol.id s) (Ovar v);
       Hashtbl.replace inner_ctx.names (Symbol.id s) (Symbol.name s))
    (cap_params @ arg_params);
  let result = lower inner_ctx body in
  inner_ctx.cur.term <- Return result;
  let lifted =
    {
      fname = lifted_name;
      fparams = inner_entry_params;
      ret_ty = None;
      blocks = List.rev inner_ctx.blocks;
      finline = false;
      fsource = Some fexpr;
    }
  in
  ctx.prog_funcs := !(ctx.prog_funcs) @ [ lifted ];
  let dst = fresh_var ~name:"closure" () in
  emit ctx
    (New_closure
       { dst; fname = lifted_name; captured = Array.of_list (List.map snd captured) });
  Ovar dst

and lower_kernel_closure ctx f =
  ignore ctx;
  Errors.compile_errorf
    "first-class KernelFunction is not supported; apply it directly: KernelFunction[%s][…]"
    (Expr.to_string f)

let lower_function ~options ~name (analyzed : Binding.analyzed) ~source =
  let entry = { label = 0; bparams = [||]; instrs = []; term = Unreachable } in
  let prog_funcs = ref [] in
  let ctx =
    {
      options;
      prog_funcs;
      self = options.Options.self_name;
      fn_name = name;
      label_gen = Id_gen.create ();
      cur = entry;
      blocks = [ entry ];
      env = Hashtbl.create 32;
      names = Hashtbl.create 32;
    }
  in
  ignore (Id_gen.next ctx.label_gen);
  let fparams =
    Array.of_list
      (List.mapi
         (fun i (p : Binding.param) ->
            let ty = Option.map Types.instantiate p.pspec in
            let v = fresh_var ~name:(Symbol.name p.psym) ?ty () in
            ctx.cur.instrs <- ctx.cur.instrs @ [ Load_argument { dst = v; index = i } ];
            Hashtbl.replace ctx.env (Symbol.id p.psym) (Ovar v);
            Hashtbl.replace ctx.names (Symbol.id p.psym) (Symbol.name p.psym);
            v)
         analyzed.params)
  in
  List.iter
    (fun l -> Hashtbl.replace ctx.names (Symbol.id l) (Symbol.name l))
    analyzed.locals;
  let result = lower ctx analyzed.body in
  ctx.cur.term <- Return result;
  let fn =
    {
      fname = name;
      fparams;
      ret_ty = None;
      blocks = List.rev ctx.blocks;
      finline = true;
      fsource = Some source;
    }
  in
  { funcs = fn :: !prog_funcs; pmeta = [] }
