(** Automatic memory management (paper §4.5, objective F7).

    Variables of memory-managed types (the "MemoryManaged" type class:
    packed arrays, expressions, strings) get [MemoryAcquire] where an
    aliasing definition opens a new live interval and [MemoryRelease] at the
    interval's end.  Both are no-ops for unmanaged scalars.  The reference
    counts drive the runtime's copy-on-write: two live names for one packed
    array force [SetPart] to copy, preserving mutability semantics (F5). *)

val run : Wir.program -> unit
