(** CFG analyses shared by the optimisation and obligation passes:
    dominators (Cooper–Harvey–Kennedy), the loop headers derived from back
    edges (used by {!Abort_pass}, paper §4.5), and per-block liveness (used
    by {!Memory_pass} and {!Mutability_pass}). *)

type cfg = {
  order : int array;                  (** reverse postorder of block labels *)
  preds : (int, int list) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;
  idom : (int, int) Hashtbl.t;        (** immediate dominators; entry maps to itself *)
}

val build_cfg : Wir.func -> cfg
val dominates : cfg -> int -> int -> bool

val loop_headers : Wir.func -> cfg -> int list
(** Labels that are the target of a back edge (their source being dominated
    by the target): the natural-loop headers where abort checks go. *)

val live_out : Wir.func -> (int, (int, unit) Hashtbl.t) Hashtbl.t
(** Variable ids live out of each block. *)

val live_in : Wir.func -> (int, (int, unit) Hashtbl.t) Hashtbl.t
(** Variable ids live into each block (excluding the block's own
    parameters). *)

val use_counts : Wir.func -> (int, int) Hashtbl.t
(** Total number of uses of each variable id in the function. *)
