(** Type classes group types implementing the same methods and act as
    qualifiers on polymorphic declarations (paper §4.4: "Integral",
    "Ordered", "Reals", "Indexed", "MemoryManaged", …). *)

val declare : string -> members:string list -> unit
(** Declare (or extend) a class by constructor-name membership. *)

val member : string -> ty:Types.t -> bool
(** Is the (ground, representative) type a member of the class?
    Unbound type variables are not members. *)

val satisfiable : string -> ty:Types.t -> bool
(** Could the type still satisfy the class: true for unbound variables that
    carry no contradicting evidence, [member] otherwise. *)

val classes_of : Types.t -> string list
(** All declared classes the ground type belongs to. *)

val install_builtin : unit -> unit
(** Register the default classes of the builtin type environment. *)
