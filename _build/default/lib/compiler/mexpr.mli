(** MExpr: the compiler's AST (paper §4.2).

    Wraps kernel expressions with node identity so that arbitrary metadata
    can be attached to any node (used for source tracking, binding results,
    and error reporting), plus a visitor API for analyses. *)

open Wolf_wexpr

type t = private { id : int; desc : desc }

and desc =
  | Atom of Expr.t
  | Node of t * t array

val of_expr : Expr.t -> t
val to_expr : t -> Expr.t

val atom : Expr.t -> t
val node : t -> t array -> t

val set_prop : t -> string -> string -> unit
val get_prop : t -> string -> string option
val props : t -> (string * string) list

val visit : pre:(t -> unit) -> ?post:(t -> unit) -> t -> unit
(** Depth-first traversal calling [pre] on entry and [post] on exit. *)

val map : (t -> t option) -> t -> t
(** Bottom-up rewriting: children first, then the whole node is offered to
    the callback ([None] keeps it). *)

val to_string : t -> string
(** InputForm, like the artifact's [CompileToAST[…]["toString"]]. *)
