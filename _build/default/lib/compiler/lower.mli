(** Lowering MExpr → WIR (paper §4.3).

    The input has been macro-expanded and binding-analysed: scoping is
    flattened, locals are unique symbols, control flow is [If] / [While] /
    [CompoundExpression] / [Set].  Lowering goes straight to SSA: mutable
    locals become block parameters at control-flow joins (the block-argument
    formulation of the on-the-fly SSA construction the paper cites). *)

open Wolf_wexpr

val lower_function :
  options:Options.t ->
  name:string ->
  Binding.analyzed ->
  source:Expr.t ->
  Wir.program
(** Produces a program whose first function is [name]; nested [Function]s
    are lambda-lifted into additional program functions with their captured
    variables prepended (closure conversion, §4.2's escape analysis feeds
    this).  @raise Wolf_base.Errors.Compile_error on unsupported constructs
    (unless [options.kernel_escape] allows falling back to the kernel). *)
