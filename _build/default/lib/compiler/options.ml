type t = {
  abort_handling : bool;
  inline_level : int;
  kernel_escape : bool;
  opt_level : int;
  static_constants : bool;
  memory_management : bool;
  lint : bool;
  self_name : string option;
  target_system : string;
}

let default = {
  abort_handling = true;
  inline_level = 1;
  kernel_escape = false;
  opt_level = 1;
  static_constants = true;
  memory_management = true;
  lint = true;
  self_name = None;
  target_system = "LLVM";
}

let to_macro_options t =
  [ ("AbortHandling", Wolf_wexpr.Expr.bool t.abort_handling);
    ("TargetSystem", Wolf_wexpr.Expr.str t.target_system);
    ("InlineLevel", Wolf_wexpr.Expr.int t.inline_level) ]
