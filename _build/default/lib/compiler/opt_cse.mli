(** Common sub-expression elimination over pure resolved calls and copies,
    propagated along the dominator tree (a value computed in a dominator is available in every block it dominates).  Safe on the TWIR
    because resolved primitives are referentially transparent; it is *not*
    run on expression-typed operands where the language's mutability
    semantics could observe sharing (paper §4.3's copy-propagation caveat). *)

val run : Wir.program -> bool
