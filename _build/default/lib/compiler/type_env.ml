open Wolf_wexpr

type impl =
  | Prim of string
  | Wolfram of Expr.t
  | External of string

type decl = {
  dname : string;
  scheme : Types.scheme;
  impl : impl;
  inline : bool;
}

type t = {
  env_name : string;
  parent : t option;
  decls : (string, decl list ref) Hashtbl.t;
}

let create ?parent name = { env_name = name; parent; decls = Hashtbl.create 64 }
let name t = t.env_name

let scheme_equal a b =
  (* conservative: identical printed form (schemes are closed) *)
  String.equal (Types.to_string a.Types.body) (Types.to_string b.Types.body)
  && List.length a.vars = List.length b.vars

let declare t name ?(inline = false) scheme impl =
  let d = { dname = name; scheme; impl; inline } in
  match Hashtbl.find_opt t.decls name with
  | Some cell ->
    let replaced = ref false in
    let updated =
      List.map
        (fun existing ->
           if scheme_equal existing.scheme scheme then begin
             replaced := true;
             d
           end
           else existing)
        !cell
    in
    cell := if !replaced then updated else !cell @ [ d ]
  | None -> Hashtbl.add t.decls name (ref [ d ])

let declare_wolfram t name ~spec ~body =
  declare t name ~inline:true (Types.parse_spec spec) (Wolfram body)

let rec lookup t name =
  let own =
    match Hashtbl.find_opt t.decls name with
    | Some cell -> !cell
    | None -> []
  in
  match t.parent with
  | Some p -> own @ lookup p name
  | None -> own

(* ------------------------------------------------------------------ *)
(* Builtin environment                                                 *)

let i64 = Types.int64
let r64 = Types.real64
let c64 = Types.complex64
let bool_t = Types.boolean
let str_t = Types.string_
let expr_t = Types.expression
let _void_t = Types.void
let pa elt rank = Types.packed elt rank
let fn args ret = Types.mono (Types.fn args ret)

let numeric_binary env name prim =
  (* overload order = specificity order used when alternatives remain *)
  declare env name (fn [ i64; i64 ] i64) (Prim ("checked_binary_" ^ prim));
  declare env name (fn [ r64; r64 ] r64) (Prim ("binary_" ^ prim));
  declare env name (fn [ c64; c64 ] c64) (Prim ("complex_binary_" ^ prim));
  declare env name (fn [ expr_t; expr_t ] expr_t) (Prim ("expr_binary_" ^ prim));
  (* mixed int/real promote *)
  declare env name (fn [ i64; r64 ] r64) (Prim ("binary_" ^ prim));
  declare env name (fn [ r64; i64 ] r64) (Prim ("binary_" ^ prim));
  (* elementwise packed-array forms *)
  let pa_scheme =
    Types.forall [ [ "Number" ]; [] ] (function
        | [ a; n ] -> Types.fn [ Types.packed_t a n; Types.packed_t a n ] (Types.packed_t a n)
        | _ -> assert false)
  in
  declare env name pa_scheme (Prim ("array_binary_" ^ prim));
  let pa_scalar =
    Types.forall [ [ "Number" ]; [] ] (function
        | [ a; n ] -> Types.fn [ Types.packed_t a n; a ] (Types.packed_t a n)
        | _ -> assert false)
  in
  declare env name pa_scalar (Prim ("array_scalar_" ^ prim))

let unary_real env name prim =
  declare env name (fn [ r64 ] r64) (Prim ("unary_" ^ prim));
  declare env name (fn [ i64 ] r64) (Prim ("unary_" ^ prim));
  declare env name (fn [ expr_t ] expr_t) (Prim ("expr_unary_" ^ prim));
  let pa_scheme =
    Types.forall [ [ "Reals" ]; [] ] (function
        | [ a; n ] -> Types.fn [ Types.packed_t a n ] (Types.packed_t r64 n)
        | _ -> assert false)
  in
  declare env name pa_scheme (Prim ("array_unary_" ^ prim))

let comparison env name prim =
  let scheme =
    Types.forall [ [ "Ordered" ] ] (function
        | [ a ] -> Types.fn [ a; a ] bool_t
        | _ -> assert false)
  in
  declare env name scheme (Prim ("binary_" ^ prim));
  declare env name (fn [ i64; r64 ] bool_t) (Prim ("binary_" ^ prim));
  declare env name (fn [ r64; i64 ] bool_t) (Prim ("binary_" ^ prim))

let builtin () =
  Type_class.install_builtin ();
  let env = create "builtin" in
  numeric_binary env "Plus" "plus";
  numeric_binary env "Subtract" "subtract";
  numeric_binary env "Times" "times";
  (* Divide: real division; exact integer division is Quotient *)
  declare env "Divide" (fn [ r64; r64 ] r64) (Prim "binary_divide");
  declare env "Divide" (fn [ i64; r64 ] r64) (Prim "binary_divide");
  declare env "Divide" (fn [ r64; i64 ] r64) (Prim "binary_divide");
  declare env "Divide" (fn [ c64; c64 ] c64) (Prim "complex_binary_divide");
  declare env "Minus" (fn [ i64 ] i64) (Prim "checked_unary_minus");
  declare env "Minus" (fn [ r64 ] r64) (Prim "unary_minus");
  declare env "Power" (fn [ i64; i64 ] i64) (Prim "checked_binary_power");
  declare env "Power" (fn [ r64; i64 ] r64) (Prim "binary_power_ri");
  declare env "Power" (fn [ r64; r64 ] r64) (Prim "binary_power");
  declare env "Power" (fn [ c64; i64 ] c64) (Prim "complex_binary_power");
  declare env "Mod" (fn [ i64; i64 ] i64) (Prim "checked_binary_mod");
  declare env "Quotient" (fn [ i64; i64 ] i64) (Prim "checked_binary_quotient");
  comparison env "Less" "less";
  comparison env "Greater" "greater";
  comparison env "LessEqual" "less_equal";
  comparison env "GreaterEqual" "greater_equal";
  let equatable name prim =
    let scheme =
      Types.forall [ [ "Equatable" ] ] (function
          | [ a ] -> Types.fn [ a; a ] bool_t
          | _ -> assert false)
    in
    declare env name scheme (Prim ("binary_" ^ prim));
    declare env name (fn [ i64; r64 ] bool_t) (Prim ("binary_" ^ prim));
    declare env name (fn [ r64; i64 ] bool_t) (Prim ("binary_" ^ prim))
  in
  equatable "Equal" "equal";
  equatable "Unequal" "unequal";
  equatable "SameQ" "equal";
  equatable "UnsameQ" "unequal";
  declare env "Not" (fn [ bool_t ] bool_t) (Prim "unary_not");
  declare env "Abs" (fn [ i64 ] i64) (Prim "checked_unary_abs");
  declare env "Abs" (fn [ r64 ] r64) (Prim "unary_abs");
  declare env "Abs" (fn [ c64 ] r64) (Prim "complex_abs");
  declare env "Re" (fn [ c64 ] r64) (Prim "complex_re");
  declare env "Im" (fn [ c64 ] r64) (Prim "complex_im");
  declare env "Complex" (fn [ r64; r64 ] c64) (Prim "complex_make");
  unary_real env "Sin" "sin";
  unary_real env "Cos" "cos";
  unary_real env "Tan" "tan";
  unary_real env "Exp" "exp";
  unary_real env "Log" "log";
  unary_real env "Sqrt" "sqrt";
  declare env "Floor" (fn [ r64 ] i64) (Prim "unary_floor");
  declare env "Floor" (fn [ i64 ] i64) (Prim "unary_identity_int");
  declare env "Ceiling" (fn [ r64 ] i64) (Prim "unary_ceiling");
  declare env "Ceiling" (fn [ i64 ] i64) (Prim "unary_identity_int");
  declare env "Round" (fn [ r64 ] i64) (Prim "unary_round");
  declare env "Round" (fn [ i64 ] i64) (Prim "unary_identity_int");
  declare env "IntegerPart" (fn [ r64 ] i64) (Prim "unary_truncate");
  declare env "N" (fn [ i64 ] r64) (Prim "int_to_real");
  declare env "N" (fn [ r64 ] r64) (Prim "unary_identity_real");
  declare env "Min" (fn [ i64; i64 ] i64) (Prim "binary_min");
  declare env "Min" (fn [ r64; r64 ] r64) (Prim "binary_min");
  declare env "Max" (fn [ i64; i64 ] i64) (Prim "binary_max");
  declare env "Max" (fn [ r64; r64 ] r64) (Prim "binary_max");
  List.iter
    (fun (nm, prim) -> declare env nm (fn [ i64; i64 ] i64) (Prim prim))
    [ ("BitAnd", "binary_bitand"); ("BitOr", "binary_bitor");
      ("BitXor", "binary_bitxor"); ("BitShiftLeft", "binary_shiftleft");
      ("BitShiftRight", "binary_shiftright") ];
  declare env "EvenQ" (fn [ i64 ] bool_t) (Prim "unary_evenq");
  declare env "OddQ" (fn [ i64 ] bool_t) (Prim "unary_oddq");
  declare env "Boole" (fn [ bool_t ] i64) (Prim "unary_boole");
  (* packed arrays *)
  let pa1 =
    Types.forall [ [ "Number" ] ] (function
        | [ a ] -> Types.fn [ pa a 1; i64 ] a
        | _ -> assert false)
  in
  declare env "Part" pa1 (Prim "part_get_1");
  let pa2 =
    Types.forall [ [ "Number" ] ] (function
        | [ a ] -> Types.fn [ pa a 2; i64; i64 ] a
        | _ -> assert false)
  in
  declare env "Part" pa2 (Prim "part_get_2");
  let pa2row =
    Types.forall [ [ "Number" ] ] (function
        | [ a ] -> Types.fn [ pa a 2; i64 ] (pa a 1)
        | _ -> assert false)
  in
  declare env "Part" pa2row (Prim "part_get_row");
  declare env "Part" (fn [ expr_t; i64 ] expr_t) (Prim "expr_part");
  let set1 =
    Types.forall [ [ "Number" ] ] (function
        | [ a ] -> Types.fn [ pa a 1; i64; a ] (pa a 1)
        | _ -> assert false)
  in
  declare env "SetPart" set1 (Prim "part_set_1");
  let set2 =
    Types.forall [ [ "Number" ] ] (function
        | [ a ] -> Types.fn [ pa a 2; i64; i64; a ] (pa a 2)
        | _ -> assert false)
  in
  declare env "SetPart" set2 (Prim "part_set_2");
  let len =
    Types.forall [ [ "Number" ]; [] ] (function
        | [ a; n ] -> Types.fn [ Types.packed_t a n ] i64
        | _ -> assert false)
  in
  declare env "Length" len (Prim "array_length");
  declare env "Length" (fn [ expr_t ] i64) (Prim "expr_length");
  let total =
    Types.forall [ [ "Number" ] ] (function
        | [ a ] -> Types.fn [ pa a 1 ] a
        | _ -> assert false)
  in
  declare env "Total" total (Prim "array_total");
  declare env "Dot" (fn [ pa r64 2; pa r64 2 ] (pa r64 2)) (Prim "dot_mm");
  declare env "Dot" (fn [ pa r64 2; pa r64 1 ] (pa r64 1)) (Prim "dot_mv");
  declare env "Dot" (fn [ pa r64 1; pa r64 1 ] r64) (Prim "dot_vv");
  declare env "Dot" (fn [ pa i64 1; pa i64 1 ] i64) (Prim "dot_vv_int");
  let take =
    Types.forall [ [ "Number" ] ] (function
        | [ a ] -> Types.fn [ pa a 1; i64 ] (pa a 1)
        | _ -> assert false)
  in
  declare env "Take" take (Prim "array_take");
  declare env "ConstantArray" (fn [ r64; i64; i64 ] (pa r64 2))
    (Prim "constant_array_real2");
  declare env "ConstantArray" (fn [ i64; i64; i64 ] (pa i64 2))
    (Prim "constant_array_int2");
  declare env "Range" (fn [ i64 ] (pa i64 1)) (Prim "range");
  declare env "Range" (fn [ i64; i64 ] (pa i64 1)) (Prim "range2");
  declare env "ConstantArray" (fn [ i64; i64 ] (pa i64 1)) (Prim "constant_array_int");
  declare env "ConstantArray" (fn [ r64; i64 ] (pa r64 1)) (Prim "constant_array_real");
  let rev =
    Types.forall [ [ "Number" ] ] (function
        | [ a ] -> Types.fn [ pa a 1 ] (pa a 1)
        | _ -> assert false)
  in
  declare env "Reverse" rev (Prim "array_reverse");
  let join =
    Types.forall [ [ "Number" ] ] (function
        | [ a ] -> Types.fn [ pa a 1; pa a 1 ] (pa a 1)
        | _ -> assert false)
  in
  declare env "Join" join (Prim "array_join");
  let append =
    Types.forall [ [ "Number" ] ] (function
        | [ a ] -> Types.fn [ pa a 1; a ] (pa a 1)
        | _ -> assert false)
  in
  declare env "Append" append (Prim "array_append");
  (* strings: the new compiler has builtin support (paper §6 FNV1a) *)
  declare env "StringLength" (fn [ str_t ] i64) (Prim "string_length");
  declare env "StringJoin" (fn [ str_t; str_t ] str_t) (Prim "string_join");
  declare env "ToCharacterCode" (fn [ str_t ] (pa i64 1)) (Prim "to_character_code");
  declare env "FromCharacterCode" (fn [ pa i64 1 ] str_t) (Prim "from_character_code");
  declare env "StringByte" (fn [ str_t; i64 ] i64) (Prim "string_byte");
  declare env "StringTake" (fn [ str_t; i64 ] str_t) (Prim "string_take");
  (* randomness, shared stream with the interpreter *)
  declare env "RandomReal" (fn [] r64) (Prim "random_real");
  declare env "RandomReal" (fn [ Types.packed r64 1 ] r64) (Prim "random_real_range");
  declare env "RandomInteger" (fn [ i64 ] i64) (Prim "random_integer");
  (* expression escapes (symbolic compute, F8) *)
  declare env "ToExpression" (fn [ i64 ] expr_t) (Prim "int_to_expr");
  declare env "ToExpression" (fn [ r64 ] expr_t) (Prim "real_to_expr");
  declare env "FromExpression" (fn [ expr_t ] i64) (Prim "expr_to_int");
  env
