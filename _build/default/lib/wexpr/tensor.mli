(** Packed numeric arrays with reference counting and copy-on-write.

    Mirrors the Wolfram Engine's packed arrays: the interpreter uses
    reference counts to decide whether a mutation ([a[[3]] = -20]) may happen
    in place or must copy (objective F5); the compiler's memory-management
    pass emits explicit acquire/release on these counts (objective F7). *)

type data =
  | Ints of int array
  | Reals of float array

type t = private {
  dims : int array;          (** row-major; product equals data length *)
  data : data;
  mutable refcount : int;
}

val create_int : int array -> int array -> t
val create_real : int array -> float array -> t
(** @raise Invalid_argument if the dimensions do not match the data length. *)

val of_int_array : int array -> t
val of_real_array : float array -> t
val of_real_matrix : float array array -> t

val rank : t -> int
val dims : t -> int array
val flat_length : t -> int
val is_int : t -> bool

val acquire : t -> unit
val release : t -> unit
val refcount : t -> int

val copy : t -> t
(** Deep copy with refcount 1. *)

val ensure_unique : t -> t
(** Copy-on-write: returns [t] itself when [refcount t <= 1], otherwise
    releases one reference and returns a fresh copy. *)

val get_int : t -> int -> int
val get_real : t -> int -> float
(** Flat accessors; [get_real] on an integer tensor converts. *)

val set_int : t -> int -> int -> unit
val set_real : t -> int -> float -> unit
(** In-place flat mutation.  Callers are responsible for uniqueness. *)

val normalize_index : t -> int -> int
(** Wolfram [Part] semantics: 1-based, negative counts from the end.
    Returns a 0-based flat-major first-axis index.
    @raise Wolf_base.Errors.Runtime_error on out-of-range. *)

val slice : t -> int -> t
(** [slice t i] is the [i]-th (0-based) sub-tensor along the first axis;
    for rank-1 tensors use [get_int]/[get_real] instead.  The slice is a
    fresh tensor (packed arrays are rectangular so slicing copies). *)

val set_slice : t -> int -> t -> unit

val equal : t -> t -> bool
val map_real : (float -> float) -> t -> t
val to_real : t -> t

val dot : t -> t -> t
(** Vector·vector, matrix·vector and matrix·matrix products; the
    matrix-matrix case runs a blocked ikj dgemm.  This single kernel is the
    repo's stand-in for MKL: every execution path (interpreter, WVM,
    compiled code, hand-written baseline) calls it, reproducing the paper's
    Dot benchmark setup. *)

val total : t -> [ `Int of int | `Real of float ]
val pp : Format.formatter -> t -> unit
