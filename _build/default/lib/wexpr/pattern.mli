(** Wolfram pattern matching.

    Supports the forms the paper's programs and macro rules use:
    [Blank]/[BlankSequence]/[BlankNullSequence] (optionally head-restricted),
    named patterns [Pattern[x, …]], [Condition[pat, test]] and
    [PatternTest[pat, f]] (both need an evaluator, supplied by the caller),
    plus literal structural matching with backtracking over sequence
    patterns.  Orderless/Flat pattern matching is not implemented (DESIGN.md
    non-goals). *)

type bindings = (Symbol.t * Expr.t) list
(** Sequence variables bind to [Sequence[…]] expressions which are spliced
    by {!substitute}. *)

val match_expr :
  ?eval:(Expr.t -> Expr.t) -> pattern:Expr.t -> Expr.t -> bindings option
(** [eval] is required for [Condition]/[PatternTest]; without it those
    patterns never match. *)

val substitute : bindings -> Expr.t -> Expr.t
(** Capture-unaware substitution of bound names, splicing sequences into
    argument lists (macro hygiene is handled a level up, in
    {!Wolf_compiler.Macro}). *)

val apply_rule :
  ?eval:(Expr.t -> Expr.t) -> lhs:Expr.t -> rhs:Expr.t -> Expr.t -> Expr.t option

val replace_all :
  ?eval:(Expr.t -> Expr.t) -> rules:(Expr.t * Expr.t) list -> Expr.t -> Expr.t
(** Outermost-first, single sweep ([/.] semantics): the first rule that
    matches a subexpression rewrites it and that subexpression is not
    revisited. *)

val replace_repeated :
  ?eval:(Expr.t -> Expr.t) -> rules:(Expr.t * Expr.t) list -> Expr.t -> Expr.t
(** [//.]: sweep until a fixed point (bounded; raises [Eval_error] beyond
    65536 sweeps). *)

val free_of : Expr.t -> Symbol.t -> bool
(** [free_of e s] is true when symbol [s] does not occur in [e]. *)
