type t = { id : int; name : string; mutable attrs : Attributes.set }

let table : (string, t) Hashtbl.t = Hashtbl.create 512
let counter = Wolf_base.Id_gen.create ()

let intern name =
  match Hashtbl.find_opt table name with
  | Some s -> s
  | None ->
    let s = { id = Wolf_base.Id_gen.next counter; name; attrs = Attributes.empty } in
    Hashtbl.add table name s;
    s

let fresh base =
  let rec try_serial () =
    let n = Wolf_base.Id_gen.next counter in
    let name = Printf.sprintf "%s$%d" base n in
    if Hashtbl.mem table name then try_serial ()
    else begin
      let s = { id = n; name; attrs = Attributes.empty } in
      Hashtbl.add table name s;
      s
    end
  in
  try_serial ()

let name s = s.name
let id s = s.id
let equal a b = a == b
let compare a b = Stdlib.compare a.id b.id
let hash s = s.id
let attributes s = s.attrs
let set_attributes s a = s.attrs <- a
let add_attribute s a = s.attrs <- Attributes.add a s.attrs
let has_attribute s a = Attributes.mem a s.attrs
let pp fmt s = Format.pp_print_string fmt s.name
