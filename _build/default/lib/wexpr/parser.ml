open Lexer

exception Parse_error of string

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let errorf fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let expect st tok what =
  if peek st = tok then advance st
  else errorf "expected %s, found %a" what Lexer.pp_token (peek st)

let int_expr text =
  match int_of_string_opt text with
  | Some i -> Expr.Int i
  | None -> Expr.Big (Wolf_base.Bignum.of_string text)

let blank_expr (name, count, head) =
  let blank_head =
    match count with
    | 1 -> Expr.Sy.blank
    | 2 -> Expr.Sy.blank_sequence
    | _ -> Expr.Sy.blank_null_sequence
  in
  let blank =
    match head with
    | None -> Expr.Normal (Expr.Sym blank_head, [||])
    | Some h -> Expr.Normal (Expr.Sym blank_head, [| Expr.sym h |])
  in
  match name with
  | None -> blank
  | Some nm -> Expr.Normal (Expr.Sym Expr.Sy.pattern, [| Expr.sym nm; blank |])

(* Binding powers (Wolfram-ish precedence, higher binds tighter). *)
let infix_lbp = function
  | ";" -> 10
  | "=" | ":=" | "+=" | "-=" | "*=" | "/=" -> 40
  | "//" -> 70
  | "/." | "//." -> 110
  | "/;" -> 130
  | "->" | ":>" -> 120
  | "||" -> 215
  | "&&" -> 225
  | "==" | "!=" | "<" | ">" | "<=" | ">=" | "===" | "=!=" -> 290
  | "+" | "-" -> 310
  | "*" | "/" -> 400
  | "." -> 490
  | "^" -> 590
  | "<>" -> 600
  | "?" -> 680
  | "/@" | "@@" -> 620
  | "@" -> 640
  | _ -> 0

let right_assoc = function
  | "=" | ":=" | "+=" | "-=" | "*=" | "/=" | "->" | ":>" | "^" | "/@" | "@@" | "@" -> true
  | _ -> false

let binary_head = function
  | "=" -> "Set" | ":=" -> "SetDelayed"
  | "+=" -> "AddTo" | "-=" -> "SubtractFrom" | "*=" -> "TimesBy" | "/=" -> "DivideBy"
  | "/." -> "ReplaceAll" | "//." -> "ReplaceRepeated"
  | "->" -> "Rule" | ":>" -> "RuleDelayed"
  | "/;" -> "Condition"
  | "?" -> "PatternTest"
  | "==" -> "Equal" | "!=" -> "Unequal"
  | "<" -> "Less" | ">" -> "Greater" | "<=" -> "LessEqual" | ">=" -> "GreaterEqual"
  | "===" -> "SameQ" | "=!=" -> "UnsameQ"
  | "^" -> "Power" | "." -> "Dot" | "/" -> "Divide"
  | op -> errorf "no head for operator %s" op

(* Operators folded into one n-ary application when chained. *)
let nary_head = function
  | "+" -> Some "Plus"
  | "*" -> Some "Times"
  | "&&" -> Some "And"
  | "||" -> Some "Or"
  | "<>" -> Some "StringJoin"
  | "<" -> Some "Less" | ">" -> Some "Greater"
  | "<=" -> Some "LessEqual" | ">=" -> Some "GreaterEqual"
  | "==" -> Some "Equal"
  | _ -> None

let rec parse_expr st rbp =
  let lhs = parse_prefix st in
  parse_infix st lhs rbp

and parse_prefix st =
  match peek st with
  | INT text -> advance st; int_expr text
  | REAL r -> advance st; Expr.Real r
  | STRING s -> advance st; Expr.Str s
  | SYMBOL s -> advance st; Expr.sym s
  | BLANKS (name, count, head) -> advance st; blank_expr (name, count, head)
  | SLOT i -> advance st; Expr.apply "Slot" [ Expr.Int i ]
  | LPAREN ->
    advance st;
    let e = parse_expr st 0 in
    expect st RPAREN ")";
    e
  | LBRACE ->
    advance st;
    let items = parse_comma_list st RBRACE in
    expect st RBRACE "}";
    Expr.list items
  | OP "-" ->
    advance st;
    (match parse_expr st 480 with
     | Expr.Int i -> Expr.Int (-i)
     | Expr.Real r -> Expr.Real (-.r)
     | Expr.Big b -> Expr.Big (Wolf_base.Bignum.neg b)
     | e -> Expr.apply "Times" [ Expr.Int (-1); e ])
  | OP "+" -> advance st; parse_expr st 480
  | OP "!" ->
    advance st;
    let e = parse_expr st 230 in
    Expr.apply "Not" [ e ]
  | t -> errorf "unexpected token %a" Lexer.pp_token t

and parse_comma_list st closer =
  if peek st = closer then []
  else begin
    let rec go acc =
      let e = parse_expr st 0 in
      if peek st = COMMA then begin advance st; go (e :: acc) end
      else List.rev (e :: acc)
    in
    go []
  end

and parse_infix st lhs rbp =
  match peek st with
  | LBRACKET when rbp < 700 ->
    advance st;
    let args = parse_comma_list st RBRACKET in
    expect st RBRACKET "]";
    parse_infix st (Expr.normal lhs args) rbp
  | LLBRACKET when rbp < 700 ->
    advance st;
    let idx = parse_comma_list st RBRACKET in
    expect st RBRACKET "]] (first)";
    expect st RBRACKET "]] (second)";
    parse_infix st (Expr.normal (Expr.Sym Expr.Sy.part) (lhs :: idx)) rbp
  | OP "&" when rbp < 90 ->
    advance st;
    parse_infix st (Expr.normal (Expr.Sym Expr.Sy.function_) [ lhs ]) rbp
  | OP "++" when rbp < 660 ->
    advance st;
    parse_infix st (Expr.apply "Increment" [ lhs ]) rbp
  | OP "--" when rbp < 660 ->
    advance st;
    parse_infix st (Expr.apply "Decrement" [ lhs ]) rbp
  | OP ";" when rbp < 10 ->
    advance st;
    let rec gather acc =
      match peek st with
      | EOF | RPAREN | RBRACKET | RBRACE | COMMA -> List.rev (Expr.null :: acc)
      | _ ->
        let e = parse_expr st 10 in
        if peek st = OP ";" then begin advance st; gather (e :: acc) end
        else List.rev (e :: acc)
    in
    let exprs = gather [ lhs ] in
    parse_infix st (Expr.normal (Expr.Sym Expr.Sy.compound) exprs) rbp
  | OP op when infix_lbp op > rbp && infix_lbp op > 0 ->
    advance st;
    let lbp = infix_lbp op in
    let next_rbp = if right_assoc op then lbp - 1 else lbp in
    let lhs =
      match op with
      | "//" ->
        let f = parse_expr st lbp in
        Expr.normal f [ lhs ]
      | "@" ->
        let arg = parse_expr st next_rbp in
        Expr.normal lhs [ arg ]
      | "/@" ->
        let arg = parse_expr st next_rbp in
        Expr.apply "Map" [ lhs; arg ]
      | "@@" ->
        let arg = parse_expr st next_rbp in
        Expr.apply "Apply" [ lhs; arg ]
      | "-" ->
        let rhs = parse_expr st lbp in
        Expr.apply "Subtract" [ lhs; rhs ]
      | _ ->
        let rhs = parse_expr st next_rbp in
        (match nary_head op with
         | Some h ->
           (* Chain same-operator runs into one n-ary head: a+b+c = Plus[a,b,c]. *)
           let operands = List.rev (chain_collect st op next_rbp [ rhs ]) in
           Expr.apply h (lhs :: operands)
         | None -> Expr.apply (binary_head op) [ lhs; rhs ])
    in
    parse_infix st lhs rbp
  | _ -> lhs

and chain_collect st op next_rbp acc =
  if peek st = OP op then begin
    advance st;
    let e = parse_expr st next_rbp in
    chain_collect st op next_rbp (e :: acc)
  end
  else acc

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr st 0 in
  (match peek st with
   | EOF -> ()
   | t -> errorf "trailing input at %a" Lexer.pp_token t);
  e

let parse_opt src =
  match parse src with
  | e -> Ok e
  | exception Parse_error msg -> Error msg
  | exception Lexer.Lex_error (msg, off) ->
    Error (Printf.sprintf "%s at offset %d" msg off)
