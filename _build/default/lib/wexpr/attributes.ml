type t =
  | Hold_all
  | Hold_first
  | Hold_rest
  | Listable
  | Flat
  | Orderless
  | One_identity
  | Protected
  | Sequence_hold
  | Numeric_function

let bit = function
  | Hold_all -> 1
  | Hold_first -> 2
  | Hold_rest -> 4
  | Listable -> 8
  | Flat -> 16
  | Orderless -> 32
  | One_identity -> 64
  | Protected -> 128
  | Sequence_hold -> 256
  | Numeric_function -> 512

type set = int

let empty = 0
let add a s = s lor bit a
let remove a s = s land lnot (bit a)
let mem a s = s land bit a <> 0
let of_list l = List.fold_left (fun s a -> add a s) empty l

let all =
  [ Hold_all; Hold_first; Hold_rest; Listable; Flat; Orderless; One_identity;
    Protected; Sequence_hold; Numeric_function ]

let to_list s = List.filter (fun a -> mem a s) all

let name = function
  | Hold_all -> "HoldAll"
  | Hold_first -> "HoldFirst"
  | Hold_rest -> "HoldRest"
  | Listable -> "Listable"
  | Flat -> "Flat"
  | Orderless -> "Orderless"
  | One_identity -> "OneIdentity"
  | Protected -> "Protected"
  | Sequence_hold -> "SequenceHold"
  | Numeric_function -> "NumericFunction"

let of_name s = List.find_opt (fun a -> name a = s) all
