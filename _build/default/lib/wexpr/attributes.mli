(** Symbol attributes controlling evaluation (Section 2.1 of the paper:
    the evaluator consults attributes before evaluating arguments). *)

type t =
  | Hold_all        (** none of the arguments are evaluated *)
  | Hold_first
  | Hold_rest
  | Listable        (** the function threads over list arguments *)
  | Flat            (** nested applications are flattened: f[f[a],b] = f[a,b] *)
  | Orderless       (** arguments are sorted canonically *)
  | One_identity    (** f[x] = x for pattern purposes *)
  | Protected       (** user assignments are rejected *)
  | Sequence_hold   (** Sequence[] arguments are not spliced *)
  | Numeric_function

type set

val empty : set
val add : t -> set -> set
val remove : t -> set -> set
val mem : t -> set -> bool
val of_list : t list -> set
val to_list : set -> t list
val name : t -> string
val of_name : string -> t option
