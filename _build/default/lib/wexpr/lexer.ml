type token =
  | INT of string
  | REAL of float
  | STRING of string
  | SYMBOL of string
  | BLANKS of string option * int * string option
  | SLOT of int
  | LBRACKET | RBRACKET
  | LLBRACKET
  | LBRACE | RBRACE
  | LPAREN | RPAREN
  | COMMA
  | OP of string
  | EOF

exception Lex_error of string * int

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_sym_char c = is_alpha c || is_digit c || c = '$'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let peek off = if !pos + off < n then Some src.[!pos + off] else None in
  let error msg = raise (Lex_error (msg, !pos)) in

  let rec skip_comment depth =
    if !pos >= n then error "unterminated comment"
    else if peek 0 = Some '(' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      skip_comment (depth + 1)
    end
    else if peek 0 = Some '*' && peek 1 = Some ')' then begin
      pos := !pos + 2;
      if depth > 1 then skip_comment (depth - 1)
    end
    else begin
      incr pos;
      skip_comment depth
    end
  in

  let scan_symbol_name () =
    let start = !pos in
    while !pos < n && is_sym_char src.[!pos] do incr pos done;
    String.sub src start (!pos - start)
  in

  let scan_blanks name =
    (* cursor sits on the first '_' *)
    let underscores = ref 0 in
    while peek 0 = Some '_' && !underscores < 3 do incr underscores; incr pos done;
    let head =
      match peek 0 with
      | Some c when is_alpha c || c = '$' -> Some (scan_symbol_name ())
      | Some _ | None -> None
    in
    emit (BLANKS (name, !underscores, head))
  in

  let scan_number () =
    let start = !pos in
    while !pos < n && is_digit src.[!pos] do incr pos done;
    let is_real = ref false in
    (* A '.' is part of the number only when not a Dot operator: "2.x" lexes
       as 2. followed by x, matching Wolfram. *)
    if peek 0 = Some '.' && (match peek 1 with Some c -> not (is_digit c) | None -> true)
    then begin is_real := true; incr pos end
    else if peek 0 = Some '.' && (match peek 1 with Some c -> is_digit c | None -> false)
    then begin
      is_real := true;
      incr pos;
      while !pos < n && is_digit src.[!pos] do incr pos done
    end;
    (match peek 0 with
     | Some ('e' | 'E') ->
       let save = !pos in
       incr pos;
       (match peek 0 with Some ('+' | '-') -> incr pos | Some _ | None -> ());
       if (match peek 0 with Some c -> is_digit c | None -> false) then begin
         is_real := true;
         while !pos < n && is_digit src.[!pos] do incr pos done
       end
       else pos := save
     | Some _ | None -> ());
    let text = String.sub src start (!pos - start) in
    if !is_real then emit (REAL (float_of_string text)) else emit (INT text)
  in

  let scan_string () =
    incr pos; (* opening quote *)
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match src.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (match peek 0 with
           | Some 'n' -> Buffer.add_char b '\n'; incr pos
           | Some 't' -> Buffer.add_char b '\t'; incr pos
           | Some '\\' -> Buffer.add_char b '\\'; incr pos
           | Some '"' -> Buffer.add_char b '"'; incr pos
           | Some c -> Buffer.add_char b c; incr pos
           | None -> error "dangling escape");
          go ()
        | c -> Buffer.add_char b c; incr pos; go ()
    in
    go ();
    emit (STRING (Buffer.contents b))
  in

  (* Longest-match operator table; sorted by descending length at use site. *)
  let operators =
    [ "//."; "==="; "=!=";
      ":="; "=="; "!="; "<="; ">="; "&&"; "||"; "->"; ":>"; "/@"; "@@";
      "//"; "/;"; "/."; "<>"; "++"; "--"; "+="; "-="; "*="; "/=";
      "+"; "-"; "*"; "/"; "^"; "="; "<"; ">"; "!"; "&"; "@"; ";"; "?"; "." ]
  in
  let try_operator () =
    let rest = n - !pos in
    let matching =
      List.find_opt
        (fun op ->
           let l = String.length op in
           l <= rest && String.sub src !pos l = op)
        operators
    in
    match matching with
    | Some op -> pos := !pos + String.length op; emit (OP op); true
    | None -> false
  in

  let rec loop () =
    if !pos >= n then emit EOF
    else begin
      (match src.[!pos] with
       | ' ' | '\t' | '\n' | '\r' -> incr pos
       | '(' when peek 1 = Some '*' -> pos := !pos + 2; skip_comment 1
       | '(' -> incr pos; emit LPAREN
       | ')' -> incr pos; emit RPAREN
       | '{' -> incr pos; emit LBRACE
       | '}' -> incr pos; emit RBRACE
       | '[' when peek 1 = Some '[' -> pos := !pos + 2; emit LLBRACKET
       | '[' -> incr pos; emit LBRACKET
       | ']' -> incr pos; emit RBRACKET
       | ',' -> incr pos; emit COMMA
       | '"' -> scan_string ()
       | '#' ->
         incr pos;
         let start = !pos in
         while !pos < n && is_digit src.[!pos] do incr pos done;
         if !pos > start then emit (SLOT (int_of_string (String.sub src start (!pos - start))))
         else emit (SLOT 1)
       | '_' -> scan_blanks None
       | c when is_digit c -> scan_number ()
       | c when is_alpha c || c = '$' ->
         let name = scan_symbol_name () in
         if peek 0 = Some '_' then scan_blanks (Some name)
         else emit (SYMBOL name)
       | _ ->
         if not (try_operator ()) then
           error (Printf.sprintf "unexpected character %C" src.[!pos]));
      match !toks with
      | EOF :: _ -> ()
      | _ -> loop ()
    end
  in
  loop ();
  List.rev !toks

let pp_token fmt = function
  | INT s -> Format.fprintf fmt "INT(%s)" s
  | REAL r -> Format.fprintf fmt "REAL(%g)" r
  | STRING s -> Format.fprintf fmt "STRING(%S)" s
  | SYMBOL s -> Format.fprintf fmt "SYMBOL(%s)" s
  | BLANKS (name, k, head) ->
    Format.fprintf fmt "BLANKS(%s,%d,%s)"
      (Option.value name ~default:"") k (Option.value head ~default:"")
  | SLOT i -> Format.fprintf fmt "SLOT(%d)" i
  | LBRACKET -> Format.pp_print_string fmt "["
  | RBRACKET -> Format.pp_print_string fmt "]"
  | LLBRACKET -> Format.pp_print_string fmt "[["
  | LBRACE -> Format.pp_print_string fmt "{"
  | RBRACE -> Format.pp_print_string fmt "}"
  | LPAREN -> Format.pp_print_string fmt "("
  | RPAREN -> Format.pp_print_string fmt ")"
  | COMMA -> Format.pp_print_string fmt ","
  | OP s -> Format.fprintf fmt "OP(%s)" s
  | EOF -> Format.pp_print_string fmt "EOF"
