(** Pratt parser from concrete Wolfram-subset syntax to {!Expr.t}.

    Coverage matches the programs that appear in the paper: function calls
    [f[x]], lists, [Part] ([[…]]), scoping constructs, pure functions
    ([#]/[&]), rules, patterns, the arithmetic / relational / boolean / apply
    operator set, and assignment forms.  Implicit multiplication by
    juxtaposition is not supported (write [a*b]). *)

exception Parse_error of string

val parse : string -> Expr.t
(** Parse a complete expression; trailing input is an error. *)

val parse_opt : string -> (Expr.t, string) result
