lib/wexpr/lexer.mli: Format
