lib/wexpr/pattern.mli: Expr Symbol
