lib/wexpr/symbol.mli: Attributes Format
