lib/wexpr/parser.mli: Expr
