lib/wexpr/expr.ml: Array Float Format Hashtbl Stdlib String Symbol Tensor Wolf_base
