lib/wexpr/lexer.ml: Buffer Format List Option Printf String
