lib/wexpr/symbol.ml: Attributes Format Hashtbl Printf Stdlib Wolf_base
