lib/wexpr/pattern.ml: Array Expr List Sy Symbol Wolf_base
