lib/wexpr/tensor.ml: Array Errors Format String Wolf_base
