lib/wexpr/tensor.mli: Format
