lib/wexpr/attributes.ml: List
