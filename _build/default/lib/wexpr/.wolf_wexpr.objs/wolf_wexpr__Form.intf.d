lib/wexpr/form.mli: Expr Format
