lib/wexpr/attributes.mli:
