lib/wexpr/form.ml: Array Expr Format String Symbol Tensor
