lib/wexpr/parser.ml: Expr Format Lexer List Printf Wolf_base
