lib/wexpr/expr.mli: Format Symbol Tensor Wolf_base
