(** Hand-written lexer for the Wolfram Language subset.

    Adjacency-sensitive forms (pattern blanks like [x_Integer], slots [#2],
    part brackets [[ ]]) are resolved here so the parser stays a plain Pratt
    parser over tokens. *)

type token =
  | INT of string                  (** decimal digits; may exceed machine range *)
  | REAL of float
  | STRING of string
  | SYMBOL of string
  | BLANKS of string option * int * string option
      (** [BLANKS (name, n, head)] for [name? _{n} head?]:
          [x_Integer] = [(Some "x", 1, Some "Integer")], [__] = [(None, 2, None)]. *)
  | SLOT of int
  | LBRACKET | RBRACKET
  | LLBRACKET                      (** [[[], the Part opener *)
  | LBRACE | RBRACE
  | LPAREN | RPAREN
  | COMMA
  | OP of string                   (** operator spelling, e.g. "+"; ":="; "/@" *)
  | EOF

exception Lex_error of string * int  (** message, byte offset *)

val tokenize : string -> token list
val pp_token : Format.formatter -> token -> unit
