(** Expression output forms.

    [full_form] prints the canonical [head[args…]] notation (always
    re-parseable).  [input_form] prints operator notation like the paper's
    listings ([a + b*c], [x_Integer], [#1 &]); any head without operator
    syntax falls back to FullForm notation. *)

val full_form : Expr.t -> string
val input_form : Expr.t -> string
val pp_input : Format.formatter -> Expr.t -> unit
