open Expr

type bindings = (Symbol.t * Expr.t) list

let no_eval : (Expr.t -> Expr.t) option = None

let head_matches restriction e =
  match restriction with
  | None -> true
  | Some h -> Expr.equal (Expr.head e) (Sym h)

let bind_check name value binds k =
  match List.find_opt (fun (s, _) -> Symbol.equal s name) binds with
  | Some (_, existing) -> if Expr.equal existing value then k binds else None
  | None -> k ((name, value) :: binds)

(* A pattern's multiplicity once Pattern/Condition/PatternTest wrappers are
   stripped: ordinary patterns consume exactly one argument, sequence blanks
   consume a segment. *)
let rec multiplicity p =
  match p with
  | Normal (Sym s, [| _; sub |]) when Symbol.equal s Sy.pattern -> multiplicity sub
  | Normal (Sym s, [| sub; _ |])
    when Symbol.equal s Sy.condition || Symbol.equal s Sy.pattern_test ->
    multiplicity sub
  | Normal (Sym s, _) when Symbol.equal s Sy.blank_sequence -> `Segment 1
  | Normal (Sym s, _) when Symbol.equal s Sy.blank_null_sequence -> `Segment 0
  | _ -> `One

let rec substitute binds e =
  match e with
  | Sym s ->
    (match List.find_opt (fun (b, _) -> Symbol.equal b s) binds with
     | Some (_, v) -> v
     | None -> e)
  | Int _ | Big _ | Real _ | Str _ | Tensor _ -> e
  | Normal (h, args) ->
    let h' = substitute binds h in
    let pieces =
      Array.to_list args
      |> List.concat_map (fun a ->
          match substitute binds a with
          | Normal (Sym s, seq) when Symbol.equal s Sy.sequence -> Array.to_list seq
          | a' -> [ a' ])
    in
    Expr.normal h' pieces

let rec match_one : type a.
  eval:(Expr.t -> Expr.t) option -> Expr.t -> Expr.t -> bindings ->
  (bindings -> a option) -> a option =
  fun ~eval p e binds k ->
  match p with
  | Normal (Sym s, [| Sym name; sub |]) when Symbol.equal s Sy.pattern ->
    match_one ~eval sub e binds (fun b -> bind_check name e b k)
  | Normal (Sym s, pargs)
    when (Symbol.equal s Sy.blank
          || Symbol.equal s Sy.blank_sequence
          || Symbol.equal s Sy.blank_null_sequence)
      && Array.length pargs <= 1 ->
    let restriction =
      match pargs with
      | [| Sym h |] -> Some h
      | _ -> None
    in
    if head_matches restriction e then k binds else None
  | Normal (Sym s, [| sub; test |]) when Symbol.equal s Sy.condition ->
    match_one ~eval sub e binds (fun b ->
        match eval with
        | None -> None
        | Some ev -> if Expr.is_true (ev (substitute b test)) then k b else None)
  | Normal (Sym s, [| sub; f |]) when Symbol.equal s Sy.pattern_test ->
    match_one ~eval sub e binds (fun b ->
        match eval with
        | None -> None
        | Some ev ->
          if Expr.is_true (ev (Normal (substitute b f, [| e |]))) then k b else None)
  | Normal (ph, pargs) ->
    (match e with
     | Normal (eh, eargs) ->
       match_one ~eval ph eh binds (fun b -> match_seq ~eval pargs 0 eargs 0 b k)
     | Int _ | Big _ | Real _ | Str _ | Sym _ | Tensor _ -> None)
  | Int _ | Big _ | Real _ | Str _ | Sym _ | Tensor _ ->
    if Expr.equal p e then k binds else None

and match_seq : type a.
  eval:(Expr.t -> Expr.t) option -> Expr.t array -> int -> Expr.t array -> int ->
  bindings -> (bindings -> a option) -> a option =
  fun ~eval pats pi exprs ei binds k ->
  if pi >= Array.length pats then begin
    if ei >= Array.length exprs then k binds else None
  end
  else begin
    let p = pats.(pi) in
    match multiplicity p with
    | `One ->
      if ei >= Array.length exprs then None
      else
        match_one ~eval p exprs.(ei) binds (fun b ->
            match_seq ~eval pats (pi + 1) exprs (ei + 1) b k)
    | `Segment minlen ->
      let remaining = Array.length exprs - ei in
      (* Shortest-first, Wolfram's default segment search order. *)
      let rec try_len len =
        if len > remaining then None
        else begin
          let segment = Array.sub exprs ei len in
          let seq = Normal (Sym Sy.sequence, segment) in
          let attempt =
            match_segment ~eval p segment seq binds (fun b ->
                match_seq ~eval pats (pi + 1) exprs (ei + len) b k)
          in
          match attempt with
          | Some _ as r -> r
          | None -> try_len (len + 1)
        end
      in
      try_len minlen
  end

(* Match the wrappers around a sequence blank against a captured segment. *)
and match_segment : type a.
  eval:(Expr.t -> Expr.t) option -> Expr.t -> Expr.t array -> Expr.t ->
  bindings -> (bindings -> a option) -> a option =
  fun ~eval p segment seq binds k ->
  match p with
  | Normal (Sym s, [| Sym name; sub |]) when Symbol.equal s Sy.pattern ->
    match_segment ~eval sub segment seq binds (fun b -> bind_check name seq b k)
  | Normal (Sym s, [| sub; test |]) when Symbol.equal s Sy.condition ->
    match_segment ~eval sub segment seq binds (fun b ->
        match eval with
        | None -> None
        | Some ev -> if Expr.is_true (ev (substitute b test)) then k b else None)
  | Normal (Sym s, [| sub; f |]) when Symbol.equal s Sy.pattern_test ->
    match_segment ~eval sub segment seq binds (fun b ->
        match eval with
        | None -> None
        | Some ev ->
          let ok =
            Array.for_all
              (fun e -> Expr.is_true (ev (Normal (substitute b f, [| e |]))))
              segment
          in
          if ok then k b else None)
  | Normal (Sym s, pargs)
    when (Symbol.equal s Sy.blank_sequence || Symbol.equal s Sy.blank_null_sequence)
      && Array.length pargs <= 1 ->
    let restriction = match pargs with [| Sym h |] -> Some h | _ -> None in
    if Array.for_all (head_matches restriction) segment then k binds else None
  | _ -> None

let match_expr ?eval ~pattern e =
  let eval = match eval with Some _ -> eval | None -> no_eval in
  match_one ~eval pattern e [] (fun b -> Some b)

let apply_rule ?eval ~lhs ~rhs e =
  match match_expr ?eval ~pattern:lhs e with
  | Some binds -> Some (substitute binds rhs)
  | None -> None

let rec replace_all ?eval ~rules e =
  let applied =
    List.find_map (fun (lhs, rhs) -> apply_rule ?eval ~lhs ~rhs e) rules
  in
  match applied with
  | Some e' -> e'
  | None ->
    (match e with
     | Normal (h, args) ->
       Normal (replace_all ?eval ~rules h, Array.map (replace_all ?eval ~rules) args)
     | Int _ | Big _ | Real _ | Str _ | Sym _ | Tensor _ -> e)

let replace_repeated ?eval ~rules e =
  let rec go e n =
    if n > 65536 then
      raise (Wolf_base.Errors.Eval_error "ReplaceRepeated: no fixed point")
    else begin
      let e' = replace_all ?eval ~rules e in
      if Expr.equal e e' then e else go e' (n + 1)
    end
  in
  go e 0

let rec free_of e s =
  match e with
  | Sym x -> not (Symbol.equal x s)
  | Int _ | Big _ | Real _ | Str _ | Tensor _ -> true
  | Normal (h, args) -> free_of h s && Array.for_all (fun a -> free_of a s) args
