(* Hand-written implementations — the "highly tuned hand-written C" every
   Figure 2 bar is normalised against (DESIGN.md substitution: hand-written
   OCaml over unboxed arrays plays that role).  Dot calls the same dgemm
   kernel as every other path, reproducing the paper's MKL setup. *)

open Wolf_wexpr

let fnv1a (s : string) =
  let hash = ref 2166136261 in
  for i = 0 to String.length s - 1 do
    hash := ((!hash lxor Char.code (String.unsafe_get s i)) * 16777619) land 0xFFFFFFFF
  done;
  !hash

let mandelbrot x0 x1 y0 y1 step =
  let total = ref 0 in
  let x = ref x0 in
  while !x <= x1 do
    let y = ref y0 in
    while !y <= y1 do
      let zr = ref 0.0 and zi = ref 0.0 and iters = ref 0 in
      while !iters < 1000 && (!zr *. !zr) +. (!zi *. !zi) < 4.0 do
        let t = (!zr *. !zr) -. (!zi *. !zi) +. !x in
        zi := (2.0 *. !zr *. !zi) +. !y;
        zr := t;
        incr iters
      done;
      total := !total + !iters;
      y := !y +. step
    done;
    x := !x +. step
  done;
  !total

let dot a b = Tensor.dot a b

let blur img n =
  let out = Array.make (n * n) 0.0 in
  let get i j = Tensor.get_real img ((i * n) + j) in
  for i = 1 to n - 2 do
    for j = 1 to n - 2 do
      out.((i * n) + j) <-
        (get (i - 1) (j - 1) +. (2.0 *. get (i - 1) j) +. get (i - 1) (j + 1)
         +. (2.0 *. get i (j - 1)) +. (4.0 *. get i j) +. (2.0 *. get i (j + 1))
         +. get (i + 1) (j - 1) +. (2.0 *. get (i + 1) j) +. get (i + 1) (j + 1))
        /. 16.0
    done
  done;
  Tensor.create_real [| n; n |] out

let histogram data =
  let n = Tensor.flat_length data in
  let bins = Array.make 256 0 in
  for i = 0 to n - 1 do
    let b = Tensor.get_int data i in
    bins.(b) <- bins.(b) + 1
  done;
  Tensor.of_int_array bins

let powmod b0 e0 m =
  let result = ref 1 and b = ref (b0 mod m) and e = ref e0 in
  while !e > 0 do
    if !e land 1 = 1 then result := !result * !b mod m;
    b := !b * !b mod m;
    e := !e asr 1
  done;
  !result

let mr_prime k =
  if k < 2 then 0
  else if k < 4 then 1
  else if k land 1 = 0 then 0
  else begin
    let d = ref (k - 1) and s = ref 0 in
    while !d land 1 = 0 do
      d := !d asr 1;
      incr s
    done;
    let witness a =
      if a mod k = 0 then true
      else begin
        let x = ref (powmod a !d k) in
        if !x = 1 || !x = k - 1 then true
        else begin
          let found = ref false and r = ref 1 in
          while !r < !s && not !found do
            x := !x * !x mod k;
            if !x = k - 1 then found := true;
            incr r
          done;
          !found
        end
      end
    in
    if witness 2 && witness 3 then 1 else 0
  end

(* seed-table constant, pasted into the hand-written code like the paper's C *)
let primeq_count ~seed limit =
  let seedn = Tensor.flat_length seed in
  let count = ref 0 in
  for k = 2 to limit do
    if k <= seedn then count := !count + Tensor.get_int seed (k - 1)
    else count := !count + mr_prime k
  done;
  !count

(* Text-book functional quicksort with a comparator closure and the same
   copying structure as the compiled program (immutability semantics). *)
let rec qsort cmp (lst : int array) =
  let n = Array.length lst in
  if n <= 1 then lst
  else begin
    let pivot = lst.(0) in
    let left = Array.make n 0 and right = Array.make n 0 in
    let nl = ref 0 and nr = ref 0 in
    for i = 1 to n - 1 do
      let v = lst.(i) in
      if cmp v pivot then begin
        left.(!nl) <- v;
        incr nl
      end
      else begin
        right.(!nr) <- v;
        incr nr
      end
    done;
    let ls = qsort cmp (Array.sub left 0 !nl) in
    let rs = qsort cmp (Array.sub right 0 !nr) in
    Array.concat [ ls; [| pivot |]; rs ]
  end

let random_walk len =
  let out = Array.make ((len + 1) * 2) 0.0 in
  let x = ref 0.0 and y = ref 0.0 in
  for i = 1 to len do
    let arg = Wolf_runtime.Rand.uniform_range 0.0 (2.0 *. Float.pi) in
    x := !x -. cos arg;
    y := !y +. sin arg;
    out.(i * 2) <- !x;
    out.((i * 2) + 1) <- !y
  done;
  Tensor.create_real [| len + 1; 2 |] out
