(* Table 1 of the paper: objectives F1–F10 probed by running actual programs
   on both compilers.  Each probe returns the observed support level; the
   bench target prints them as the paper's feature matrix and the test suite
   asserts them (experiment E2). *)

open Wolf_wexpr
open Wolf_compiler
module B = Wolf_backends

type support = Full | Partial | None_

let glyph = function Full -> "+" | Partial -> "*" | None_ -> "x"

let probe f = match f () with v -> v | exception _ -> None_

let quiet f =
  let saved = !B.Compiled_function.quiet in
  B.Compiled_function.quiet := true;
  Fun.protect ~finally:(fun () -> B.Compiled_function.quiet := saved) f

(* F1: compiled functions are called transparently by the interpreter *)
let f1_new () =
  Wolfram.init ();
  let cf =
    Wolfram.function_compile ~target:Wolfram.Threaded ~name:"feat_double"
      (Parser.parse {|Function[{Typed[x, "MachineInteger"]}, 2*x]|})
  in
  Wolfram.install "FeatDouble" cf;
  if Expr.equal (Wolfram.interpret "FeatDouble[21] + 0") (Expr.Int 42) then Full else None_

let f1_wvm () =
  let w = B.Wvm.compile (Parser.parse {|Function[{Typed[x, "MachineInteger"]}, 2*x]|}) in
  if Expr.equal (B.Wvm.call w [| Expr.Int 21 |]) (Expr.Int 42) then Full else None_

(* F2: overflow reverts to the interpreter, which promotes to bignum
   (the paper's cfib[200] demonstration; factorial keeps the fallback
   re-evaluation linear) *)
let fact_src =
  {|Function[{Typed[n, "MachineInteger"]},
     Module[{acc = 1, i = 1}, While[i <= n, acc = acc*i; i = i + 1]; acc]]|}

let f2_new () =
  quiet (fun () ->
      let cf =
        Wolfram.function_compile ~target:Wolfram.Threaded ~name:"cfact"
          (Parser.parse fact_src)
      in
      (* 20! fits in a machine word; 25! overflows and must still be exact *)
      match Wolfram.call cf [ Expr.Int 20 ], Wolfram.call cf [ Expr.Int 25 ] with
      | Expr.Int _, Expr.Big b
        when Wolf_base.Bignum.to_string b = "15511210043330985984000000" ->
        Full
      | _ -> None_)

let f2_wvm () =
  quiet (fun () ->
      (* overflow in WVM arithmetic reverts the call to the interpreter *)
      let w = B.Wvm.compile (Parser.parse {|Function[{Typed[x, "MachineInteger"]}, x*x]|}) in
      match B.Wvm.call w [| Expr.Int 4611686018427387904 |] with
      | Expr.Big _ -> Full
      | _ -> None_)

(* F3: a user abort interrupts a compiled loop without killing the session *)
let f3_new () =
  let cf =
    Wolfram.function_compile ~target:Wolfram.Threaded ~name:"feat_spin"
      (Parser.parse
         {|Function[{Typed[n, "MachineInteger"]}, Module[{i = 0}, While[i < n, i = i + 1]; i]]|})
  in
  Wolf_base.Abort_signal.clear ();
  Wolf_base.Abort_signal.abort_after 10;
  let result =
    match Wolfram.call_values cf [ Wolf_runtime.Rtval.Int 1000000000 ] with
    | _ -> None_
    | exception Wolf_base.Abort_signal.Aborted -> Full
  in
  Wolf_base.Abort_signal.clear ();
  result

let f3_wvm () =
  let w =
    B.Wvm.compile
      (Parser.parse
         {|Function[{Typed[n, "MachineInteger"]}, Module[{i = 0}, While[i < n, i = i + 1]; i]]|})
  in
  Wolf_base.Abort_signal.clear ();
  Wolf_base.Abort_signal.abort_after 10;
  let result =
    match B.Wvm.call_values w [| Wolf_runtime.Rtval.Int 1000000000 |] with
    | _ -> None_
    | exception Wolf_base.Abort_signal.Aborted -> Full
  in
  Wolf_base.Abort_signal.clear ();
  result

(* F4: multiple backends *)
let f4_new () =
  let src = {|Function[{Typed[x, "MachineInteger"]}, x + 1]|} in
  let c = Pipeline.compile ~name:"feat_backends" (Parser.parse src) in
  let ok_threaded = match B.Native.compile c with _ -> true | exception _ -> false in
  let ok_c = match B.C_emit.emit c with Ok _ -> true | Error _ -> false in
  let ok_ocaml =
    match B.Ocaml_emit.emit ~module_name:"Feat" c with _ -> true | exception _ -> false
  in
  if ok_threaded && ok_c && ok_ocaml then Full else Partial

let f4_wvm () = Partial (* WVM or C only, per the paper's Table 1 *)

(* F5: mutability semantics — b = a; a[[3]] = -20 must not change b *)
let f5_new () =
  let cf =
    Wolfram.function_compile ~target:Wolfram.Threaded ~name:"feat_mut"
      (Parser.parse
         {|Function[{Typed[a0, "PackedArray"["Integer64", 1]]},
            Module[{a = a0, b = 0},
             b = a[[3]];
             a[[3]] = -20;
             b - a[[3]]]]|})
  in
  (* b kept the old value 3: 3 - (-20) = 23 *)
  match Wolfram.call cf [ Parser.parse "{1, 2, 3}" ] with
  | Expr.Int 23 -> Full
  | _ -> None_

let f5_wvm () = Partial (* correct but via eager copying (paper: ⋆) *)

(* F6: user-extensible types/functions in the type environment *)
let f6_new () =
  let env = Type_env.create ~parent:(Type_env.builtin ()) "user" in
  Type_env.declare_wolfram env "UserTwice"
    ~spec:(Parser.parse {|TypeForAll[{"a"}, {Element["a", "Number"]}, {"a"} -> "a"]|})
    ~body:(Parser.parse {|Function[{x}, x + x]|});
  let cf =
    Wolfram.function_compile ~target:Wolfram.Threaded ~type_env:env ~name:"feat_user"
      (Parser.parse {|Function[{Typed[x, "MachineInteger"]}, UserTwice[x] + 1]|})
  in
  match Wolfram.call cf [ Expr.Int 10 ] with
  | Expr.Int 21 -> Full
  | _ -> None_

let f6_wvm () = None_ (* fixed datatypes, not extensible (paper: ✗) *)

(* F7: automatic memory management — acquire/release are placed and balance *)
let f7_new () =
  let c =
    Pipeline.compile ~name:"feat_mem"
      (Parser.parse
         {|Function[{Typed[a0, "PackedArray"["Integer64", 1]]},
            Module[{a = a0, b = 0}, b = a[[1]]; b]]|})
  in
  let acquires = ref 0 and releases = ref 0 in
  List.iter
    (fun f ->
       List.iter
         (fun (b : Wir.block) ->
            List.iter
              (function
                | Wir.Mem_acquire _ -> incr acquires
                | Wir.Mem_release _ -> incr releases
                | _ -> ())
              b.Wir.instrs)
         f.Wir.blocks)
    c.Pipeline.program.Wir.funcs;
  if !acquires > 0 && !acquires = !releases then Full else Partial

let f7_wvm () = Partial

(* F8: symbolic computation on the "Expression" type *)
let f8_new () =
  let cf =
    Wolfram.function_compile ~target:Wolfram.Threaded ~name:"feat_sym"
      (Parser.parse
         {|Function[{Typed[a, "Expression"], Typed[b, "Expression"]}, a + b]|})
  in
  let r1 = Wolfram.call cf [ Expr.Int 1; Expr.Int 2 ] in
  let r2 = Wolfram.call cf [ Expr.sym "x"; Expr.sym "y" ] in
  if Expr.equal r1 (Expr.Int 3) && Expr.equal r2 (Parser.parse "x + y") then Full
  else None_

let f8_wvm () = None_

(* F9: gradual compilation via KernelFunction escapes *)
let f9_new () =
  Wolfram.init ();
  ignore (Wolfram.interpret "featNine[x_] := x*x + 1");
  let cf =
    Wolfram.function_compile ~target:Wolfram.Threaded ~name:"feat_kernel"
      (Parser.parse
         {|Function[{Typed[x, "MachineInteger"]},
            Module[{e = KernelFunction[featNine][x]}, FromExpression[e] + 1]]|})
  in
  match Wolfram.call cf [ Expr.Int 3 ] with
  | Expr.Int 11 -> Full
  | _ -> None_

let f9_wvm () =
  (* the WVM escapes unsupported expressions to the interpreter implicitly *)
  Wolfram.init ();
  ignore (Wolfram.interpret "featNine[x_] := x*x + 1");
  let w =
    B.Wvm.compile
      (Parser.parse {|Function[{Typed[x, "MachineInteger"]}, featNine[x] + 1]|})
  in
  match B.Wvm.call w [| Expr.Int 3 |] with
  | Expr.Int 11 -> Full
  | _ -> None_

(* F10: standalone export *)
let f10_new () =
  let src = {|Function[{Typed[x, "MachineInteger"]}, x*x + 1]|} in
  match Wolfram.export_string ~format:`C src with
  | Ok _ ->
    if B.Jit.available () then begin
      let path = Filename.temp_file "wolf_export" ".cmxs" in
      match Wolfram.export_library ~path src with
      | Ok _ -> Full
      | Error _ -> Partial
    end
    else Partial
  | Error _ -> None_

let f10_wvm () = Partial (* C export only (paper: ⋆) *)

let all () =
  Wolfram.init ();
  quiet (fun () ->
      [ ("F1 Integration with Interpreter", probe f1_new, probe f1_wvm);
        ("F2 Soft Failure Mode", probe f2_new, probe f2_wvm);
        ("F3 Abortable Evaluation", probe f3_new, probe f3_wvm);
        ("F4 Backends Support", probe f4_new, probe f4_wvm);
        ("F5 Mutability Semantics", probe f5_new, probe f5_wvm);
        ("F6 Extensible User Types", probe f6_new, probe f6_wvm);
        ("F7 Memory Management", probe f7_new, probe f7_wvm);
        ("F8 Symbolic Compute", probe f8_new, probe f8_wvm);
        ("F9 Gradual Compilation", probe f9_new, probe f9_wvm);
        ("F10 Standalone Export", probe f10_new, probe f10_wvm) ])
