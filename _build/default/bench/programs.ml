(* The seven benchmarks of the paper's Figure 2, written in the Wolfram
   Language subset, plus the Figure 1 random walk and the FindRoot equation
   (experiments E1, E3, E4 in DESIGN.md).  Each benchmark provides the
   source for the new compiler and, where representable, the bytecode
   compiler variant (FNV1a uses the paper's integer-vector workaround;
   QSort cannot be expressed at all, reproducing L1). *)

open Wolf_wexpr

(* ------------------------------------------------------------------ *)

let fnv1a_src = {|
Function[{Typed[s, "String"]},
 Module[{hash = 2166136261, i = 1, n = StringLength[s]},
  While[i <= n,
   hash = BitAnd[BitXor[hash, StringByte[s, i]] * 16777619, 4294967295];
   i = i + 1];
  hash]]
|}

(* The bytecode compiler cannot touch strings: the paper's workaround
   represents them as an integer vector of character codes. *)
let fnv1a_wvm_src = {|
Function[{Typed[codes, "PackedArray"["Integer64", 1]]},
 Module[{hash = 2166136261, i = 1, n = Length[codes]},
  While[i <= n,
   hash = BitAnd[BitXor[hash, codes[[i]]] * 16777619, 4294967295];
   i = i + 1];
  hash]]
|}

let mandelbrot_src = {|
Function[{Typed[x0, "Real64"], Typed[x1, "Real64"],
          Typed[y0, "Real64"], Typed[y1, "Real64"], Typed[step, "Real64"]},
 Module[{total = 0, x = x0, y = y0, zr = 0.0, zi = 0.0, t = 0.0, iters = 0},
  While[x <= x1,
   y = y0;
   While[y <= y1,
    zr = 0.0; zi = 0.0; iters = 0;
    While[iters < 1000 && zr*zr + zi*zi < 4.0,
     t = zr*zr - zi*zi + x;
     zi = 2.0*zr*zi + y;
     zr = t;
     iters = iters + 1];
    total = total + iters;
    y = y + step];
   x = x + step];
  total]]
|}

let dot_src = {|
Function[{Typed[a, "PackedArray"["Real64", 2]], Typed[b, "PackedArray"["Real64", 2]]},
 a . b]
|}

let blur_src = {|
Function[{Typed[img, "PackedArray"["Real64", 2]], Typed[n, "MachineInteger"]},
 Module[{out = img*0.0, i = 2, j = 2},
  While[i < n,
   j = 2;
   While[j < n,
    out[[i, j]] =
      (img[[i-1, j-1]] + 2.0*img[[i-1, j]] + img[[i-1, j+1]]
       + 2.0*img[[i, j-1]] + 4.0*img[[i, j]] + 2.0*img[[i, j+1]]
       + img[[i+1, j-1]] + 2.0*img[[i+1, j]] + img[[i+1, j+1]]) / 16.0;
    j = j + 1];
   i = i + 1];
  out]]
|}

let histogram_src = {|
Function[{Typed[data, "PackedArray"["Integer64", 1]]},
 Module[{bins = ConstantArray[0, 256], i = 1, n = Length[data], b = 0},
  While[i <= n,
   b = data[[i]] + 1;
   bins[[b]] = bins[[b]] + 1;
   i = i + 1];
  bins]]
|}

(* PrimeQ: Miller–Rabin (witnesses 2 and 3 are exact below 1,373,653) with a
   2^14 seed table embedded as a constant array (paper §6).  PowerMod64 and
   MillerRabinPrimeQ64 are declared in the type environment with Wolfram
   implementations, exercising function resolution's instantiation path. *)
let powmod_spec = {|TypeSpecifier[{"Integer64", "Integer64", "Integer64"} -> "Integer64"]|}
let powmod_impl = {|
Function[{b0, e0, m},
 Module[{result = 1, b = Mod[b0, m], e = e0},
  While[e > 0,
   If[Mod[e, 2] == 1, result = Mod[result*b, m]];
   b = Mod[b*b, m];
   e = Quotient[e, 2]];
  result]]
|}

let mrprime_spec = {|TypeSpecifier[{"Integer64"} -> "Integer64"]|}
let mrprime_impl = {|
Function[{k},
 If[k < 2, 0,
  If[k < 4, 1,
   If[Mod[k, 2] == 0, 0,
    Module[{d = k - 1, s = 0, prime = 1, wi = 1, a = 0, x = 0, r = 0, found = 0,
            witnesses = {2, 3}},
     While[Mod[d, 2] == 0, d = Quotient[d, 2]; s = s + 1];
     While[wi <= 2 && prime == 1,
      a = witnesses[[wi]];
      If[Mod[a, k] != 0,
       x = PowerMod64[a, d, k];
       If[x != 1 && x != k - 1,
        found = 0; r = 1;
        While[r < s && found == 0,
         x = Mod[x*x, k];
         If[x == k - 1, found = 1];
         r = r + 1];
        If[found == 0, prime = 0]]];
      wi = wi + 1];
     prime]]]]]
|}

(* limit and the constant seed table are baked in via substitution *)
let primeq_template = {|
Function[{Typed[limit, "MachineInteger"]},
 Module[{count = 0, k = 2, seed = SeedTableConstant, seedn = 0},
  seedn = Length[seed];
  While[k <= limit,
   If[k <= seedn,
    count = count + seed[[k]],
    count = count + MillerRabinPrimeQ64[k]];
   k = k + 1];
  count]]
|}

let seed_table_size = 16384 (* 2^14, as in the paper *)

let make_seed_table () =
  (* primality table computed "by the interpreter" (here: directly) *)
  let sieve = Array.make (seed_table_size + 1) true in
  sieve.(0) <- false;
  if seed_table_size >= 1 then sieve.(1) <- false;
  for i = 2 to seed_table_size do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= seed_table_size do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  (* 1-indexed in the program: entry k answers "is k prime" *)
  Tensor.of_int_array (Array.init seed_table_size (fun i -> if sieve.(i + 1) then 1 else 0))

let primeq_expr () =
  let table = make_seed_table () in
  let template = Parser.parse primeq_template in
  Pattern.substitute
    [ (Symbol.intern "SeedTableConstant", Expr.Tensor table) ]
    template

let primeq_type_env () =
  let env = Wolf_compiler.Type_env.create ~parent:(Wolf_compiler.Type_env.builtin ()) "primeq" in
  Wolf_compiler.Type_env.declare_wolfram env "PowerMod64"
    ~spec:(Parser.parse powmod_spec) ~body:(Parser.parse powmod_impl);
  Wolf_compiler.Type_env.declare_wolfram env "MillerRabinPrimeQ64"
    ~spec:(Parser.parse mrprime_spec) ~body:(Parser.parse mrprime_impl);
  env

(* QSort as a single compiled program: the comparator is created inside the
   compiled code, so comparator calls are direct (the paper compiles the whole
   program as one unit); recursion goes through the type environment. *)
let qsort_decl_spec = {|TypeSpecifier[{{"Integer64", "Integer64"} -> "Boolean", "PackedArray"["Integer64", 1]} -> "PackedArray"["Integer64", 1]]|}

let qsort_driver_src = {|
Function[{Typed[lst, "PackedArray"["Integer64", 1]]},
 QSortI64[Function[{a, b}, a < b], lst]]
|}

let qsort_src = {|
Function[{Typed[cmp, {"Integer64", "Integer64"} -> "Boolean"],
          Typed[lst, "PackedArray"["Integer64", 1]]},
 Module[{n = Length[lst]},
  If[n <= 1, lst,
   Module[{pivot = lst[[1]], left = ConstantArray[0, n], right = ConstantArray[0, n],
           nl = 0, nr = 0, i = 2, v = 0},
    While[i <= n,
     v = lst[[i]];
     If[cmp[v, pivot],
      (nl = nl + 1; left[[nl]] = v),
      (nr = nr + 1; right[[nr]] = v)];
     i = i + 1];
    Join[Append[qsort[cmp, Take[left, nl]], pivot], qsort[cmp, Take[right, nr]]]]]]]
|}

(* same body with recursion through the declared name *)
let qsort_impl_src = {|
Function[{cmp, lst},
 Module[{n = Length[lst]},
  If[n <= 1, lst,
   Module[{pivot = lst[[1]], left = ConstantArray[0, n], right = ConstantArray[0, n],
           nl = 0, nr = 0, i = 2, v = 0},
    While[i <= n,
     v = lst[[i]];
     If[cmp[v, pivot],
      (nl = nl + 1; left[[nl]] = v),
      (nr = nr + 1; right[[nr]] = v)];
     i = i + 1];
    Join[Append[QSortI64[cmp, Take[left, nl]], pivot],
         QSortI64[cmp, Take[right, nr]]]]]]]
|}

let less_fn_src = {|Function[{Typed[a, "MachineInteger"], Typed[b, "MachineInteger"]}, a < b]|}

let qsort_type_env () =
  let env =
    Wolf_compiler.Type_env.create ~parent:(Wolf_compiler.Type_env.builtin ()) "qsort"
  in
  Wolf_compiler.Type_env.declare_wolfram env "QSortI64"
    ~spec:(Parser.parse qsort_decl_spec)
    ~body:(Parser.parse qsort_impl_src);
  env

(* ------------------------------------------------------------------ *)
(* Figure 1 random walk (E3)                                           *)

let random_walk_interpreted_src = {|
Function[{len},
 NestList[
  Module[{arg = RandomReal[{0, 2*Pi}]}, {-Cos[arg], Sin[arg]} + #]&,
  {0.0, 0.0},
  len]]
|}

(* Loop form for the compilers: same draws from the shared PRNG, packed
   output.  6.283185307179586 = 2π (the WVM has no symbolic constants). *)
let random_walk_compiled_src = {|
Function[{Typed[len, "MachineInteger"]},
 Module[{out = ConstantArray[0.0, len + 1, 2], x = 0.0, y = 0.0, i = 1, arg = 0.0},
  While[i <= len,
   arg = RandomReal[{0.0, 6.283185307179586}];
   x = x - Cos[arg];
   y = y + Sin[arg];
   out[[i + 1, 1]] = x;
   out[[i + 1, 2]] = y;
   i = i + 1];
  out]]
|}

(* FindRoot equation (E4) *)
let findroot_src = "FindRoot[Sin[x] + E^x, {x, 0}]"

(* ------------------------------------------------------------------ *)
(* Input generators (all paths share the deterministic PRNG stream)    *)

let fnv_string n =
  Wolf_runtime.Rand.seed 7;
  String.init n (fun _ -> Char.chr (33 + Wolf_runtime.Rand.int_range 0 90))

let random_matrix n =
  Wolf_runtime.Rand.seed 11;
  Tensor.create_real [| n; n |]
    (Array.init (n * n) (fun _ -> Wolf_runtime.Rand.uniform ()))

let random_image n =
  Wolf_runtime.Rand.seed 13;
  Tensor.create_real [| n; n |]
    (Array.init (n * n) (fun _ -> Wolf_runtime.Rand.uniform ()))

let histogram_data n =
  Wolf_runtime.Rand.seed 17;
  Tensor.of_int_array (Array.init n (fun _ -> Wolf_runtime.Rand.int_range 0 255))

let sorted_list n = Tensor.of_int_array (Array.init n (fun i -> i + 1))
