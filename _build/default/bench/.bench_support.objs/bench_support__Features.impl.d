bench/features.ml: Expr Filename Fun List Parser Pipeline Type_env Wir Wolf_backends Wolf_base Wolf_compiler Wolf_runtime Wolf_wexpr Wolfram
