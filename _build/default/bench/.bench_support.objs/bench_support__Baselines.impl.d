bench/baselines.ml: Array Char Float String Tensor Wolf_runtime Wolf_wexpr
